package ipmgo

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/ipmparse"
	"ipmgo/internal/parallel"
	"ipmgo/internal/workloads"
)

// faultPlanRankDeath is the e2e scenario: transient ECC errors on rank 1
// (recovered by the retry layer) and rank 2 of 4 killed mid-run.
const faultPlanRankDeath = `{
	"seed": 11,
	"faults": [
		{"type": "cuda", "rank": 1, "at": "20ms", "code": "ecc", "count": 2},
		{"type": "rank-death", "rank": 2, "at": "60ms"}
	]
}`

// runFaultScenario executes the fault-demo workload on 4 ranks under the
// given plan and returns the result plus the rendered banner and XML log.
func runFaultScenario(t *testing.T, planJSON string) (*cluster.Result, []byte, []byte) {
	t.Helper()
	plan, err := faultsim.Parse([]byte(planJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Dirac(4, 1)
	// Skip the 1.29s context-init sleep so mid-run fault times land
	// inside the iteration loop, not inside the first cudaMalloc.
	cfg.GPU.ContextInit = 0
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Faults = plan
	cfg.Command = "./faultdemo"
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		workloads.FaultDemo(env, workloads.DefaultFaultDemo())
	})
	if err != nil {
		t.Fatal(err)
	}
	var banner, xml bytes.Buffer
	if err := ipm.WriteBanner(&banner, res.Profile, ipm.BannerOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := ipm.WriteXML(&xml, res.Profile); err != nil {
		t.Fatal(err)
	}
	return res, banner.Bytes(), xml.Bytes()
}

// TestRankDeathEndToEnd is the acceptance scenario: rank 2 of 4 is killed
// mid-run; the remaining ranks complete, a partial profile with explicit
// degraded-fidelity markers is written, and ipmparse reconstructs it.
func TestRankDeathEndToEnd(t *testing.T) {
	res, banner, xmlLog := runFaultScenario(t, faultPlanRankDeath)

	// The job finished: no truncation, every surviving rank ran to the end.
	if res.Truncated != "" {
		t.Fatalf("run truncated: %s", res.Truncated)
	}
	if len(res.Lost) != 1 || res.Lost[0].Rank != 2 {
		t.Fatalf("Lost = %+v, want rank 2 only", res.Lost)
	}
	if !strings.Contains(res.Lost[0].Reason, "rank death") {
		t.Errorf("loss reason = %q", res.Lost[0].Reason)
	}
	if res.FaultsInjected < 2 {
		t.Errorf("FaultsInjected = %d, want >= 2", res.FaultsInjected)
	}
	if res.Retries < 1 {
		t.Errorf("Retries = %d: transient ECC faults were not retried", res.Retries)
	}

	// The profile holds all four ranks, with rank 2 flagged lost and the
	// survivors carrying full call profiles.
	jp := res.Profile
	if len(jp.Ranks) != 4 {
		t.Fatalf("profile ranks = %d", len(jp.Ranks))
	}
	if !jp.Degraded() {
		t.Error("profile not marked degraded")
	}
	for _, rp := range jp.Ranks {
		if rp.Rank == 2 {
			if !rp.Lost || !strings.Contains(rp.LostReason, "rank death") {
				t.Errorf("rank 2 profile not marked lost: %+v", rp.LostReason)
			}
			continue
		}
		if rp.Lost {
			t.Errorf("surviving rank %d marked lost (%s)", rp.Rank, rp.LostReason)
		}
		if rp.FuncTime("cudaMemcpy(H2D)") == 0 {
			t.Errorf("surviving rank %d has no monitored calls", rp.Rank)
		}
	}
	// Survivors saw the broken communicator: MPI errors are counted in
	// the hash table, and the banner says so.
	if jp.TotalErrors() == 0 {
		t.Error("no error-counted calls despite a dead peer")
	}

	for _, want := range []string{"degraded fidelity", "lost at", "error status"} {
		if !strings.Contains(string(banner), want) {
			t.Errorf("banner missing %q:\n%s", want, banner)
		}
	}
	if !strings.Contains(string(xmlLog), `status="lost"`) {
		t.Error("XML log missing lost-rank marker")
	}

	// ipmparse reconstructs the partial profile from the log.
	jp2, rep, err := ipmparse.LoadTolerant(bytes.NewReader(xmlLog))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated || rep.TasksRecovered != 4 {
		t.Errorf("reparse: truncated=%v recovered=%d", rep.Truncated, rep.TasksRecovered)
	}
	lost := jp2.LostRanks()
	if len(lost) != 1 || lost[0].Rank != 2 {
		t.Errorf("reparsed LostRanks = %+v", lost)
	}
	var reBanner bytes.Buffer
	if err := ipmparse.WriteBanner(&reBanner, jp2, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reBanner.String(), "degraded fidelity") {
		t.Error("reconstructed banner lost the degraded-fidelity warning")
	}
}

// TestRankDeathDeterminism asserts the acceptance property: the fault
// scenario is byte-identical across repeated runs and across -j worker
// counts.
func TestRankDeathDeterminism(t *testing.T) {
	_, banner0, xml0 := runFaultScenario(t, faultPlanRankDeath)
	_, banner1, xml1 := runFaultScenario(t, faultPlanRankDeath)
	if !bytes.Equal(banner0, banner1) {
		t.Error("banner differs between identical runs")
	}
	if !bytes.Equal(xml0, xml1) {
		t.Error("XML log differs between identical runs")
	}

	// Across worker counts: the same 4 scenario replicas produce the same
	// bytes whether run sequentially (-j 1) or 4-way parallel (-j 4).
	run := func(workers int) [][]byte {
		out := make([][]byte, 4)
		if err := parallel.RunAll(4, workers, func(i int) error {
			_, _, xml := runFaultScenario(t, faultPlanRankDeath)
			out[i] = xml
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(4)
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Errorf("replica %d differs between -j 1 and -j 4", i)
		}
		if !bytes.Equal(seq[i], xml0) {
			t.Errorf("replica %d differs from the reference run", i)
		}
	}
}

// TestWatchdogRecoversHungDevice checks the hung-stream path: a hanging
// device loss silences a rank's completions; the virtual-time watchdog
// turns the stall into an explicit rank death and the job still produces
// a profile.
func TestWatchdogRecoversHungDevice(t *testing.T) {
	const plan = `{
		"seed": 3,
		"watchdog": {"interval": "20ms", "hang_timeout": "150ms"},
		"faults": [
			{"type": "cuda", "rank": 3, "at": "60ms", "code": "device-lost", "call": "cudaStreamSynchronize", "hang": true}
		]
	}`
	res, banner, _ := runFaultScenario(t, plan)
	if res.Truncated != "" {
		t.Fatalf("watchdog failed to unwedge the run: %s", res.Truncated)
	}
	if len(res.Lost) != 1 || res.Lost[0].Rank != 3 {
		t.Fatalf("Lost = %+v, want rank 3", res.Lost)
	}
	if !strings.Contains(res.Lost[0].Reason, "watchdog") {
		t.Errorf("loss reason = %q, want watchdog kill", res.Lost[0].Reason)
	}
	if !strings.Contains(string(banner), "degraded fidelity") {
		t.Error("banner missing degraded-fidelity warning")
	}
}

// TestStragglerSkewIsDeterministic checks the straggler fault: the skewed
// rank's compute stretches (visible in its wallclock) and the run stays
// byte-identical.
func TestStragglerSkewIsDeterministic(t *testing.T) {
	const plan = `{
		"seed": 5,
		"faults": [{"type": "straggler", "rank": 1, "factor": 3.0}]
	}`
	res, _, xml0 := runFaultScenario(t, plan)
	if len(res.Lost) != 0 {
		t.Fatalf("straggler run lost ranks: %+v", res.Lost)
	}
	// Rank 1's compute is 3x slower; everyone waits for it in the
	// collectives, so the whole job stretches past the fault-free run.
	base := cluster.Dirac(4, 1)
	base.GPU.ContextInit = 0
	base.Monitor = true
	base.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	base.Command = "./faultdemo"
	baseRes, err := cluster.Run(base, func(env *cluster.Env) {
		workloads.FaultDemo(env, workloads.DefaultFaultDemo())
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wallclock <= baseRes.Wallclock+50*time.Millisecond {
		t.Errorf("straggler wallclock %v not visibly slower than baseline %v", res.Wallclock, baseRes.Wallclock)
	}
	_, _, xml1 := runFaultScenario(t, plan)
	if !bytes.Equal(xml0, xml1) {
		t.Error("straggler run not byte-identical")
	}
}

// TestMonitorPanicFault checks the monitor-panic fault: the guard
// recovers it, the run completes, and the profile reports the internal
// error.
func TestMonitorPanicFault(t *testing.T) {
	const plan = `{
		"seed": 9,
		"faults": [{"type": "monitor-panic", "rank": 0, "at": "30ms"}]
	}`
	res, banner, _ := runFaultScenario(t, plan)
	if len(res.Lost) != 0 {
		t.Fatalf("monitor panic killed ranks: %+v", res.Lost)
	}
	if got := res.Profile.MonitorErrors(); got != 1 {
		t.Errorf("MonitorErrors = %d, want 1", got)
	}
	if !strings.Contains(string(banner), "monitor-internal error") {
		t.Errorf("banner missing monitor-internal warning:\n%s", banner)
	}
}
