package ipmgo

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"ipmgo/internal/cluster"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/telemetry"
	"ipmgo/internal/workloads"
)

// runSquareTelemetry runs the Fig. 3 square workload with the streaming
// telemetry layer attached and returns the recorder and registry.
func runSquareTelemetry(t *testing.T) (*telemetry.Recorder, *telemetry.Registry) {
	t.Helper()
	rec := telemetry.NewRecorder(1 << 16)
	reg := telemetry.NewRegistry()
	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Telemetry = rec
	cfg.Metrics = reg
	cfg.Command = "./square"
	if _, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.Square(env, workloads.DefaultSquare()); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return rec, reg
}

// TestTraceEndToEnd drives the square workload through the full stack and
// checks the exported Perfetto trace: byte-identical across runs, valid
// JSON, and carrying the expected host/device tracks.
func TestTraceEndToEnd(t *testing.T) {
	rec1, _ := runSquareTelemetry(t)
	rec2, _ := runSquareTelemetry(t)
	if rec1.Dropped() != 0 {
		t.Errorf("spans dropped: %d (capacity too small for square)", rec1.Dropped())
	}
	if rec1.Total() == 0 {
		t.Fatal("no spans recorded")
	}

	var a, b bytes.Buffer
	if err := telemetry.WriteChromeTrace(&a, rec1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteChromeTrace(&b, rec2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("trace output differs between identical runs")
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	threads := map[string]bool{}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			name, _ := ev.Args["name"].(string)
			if ev.Name == "process_name" {
				procs[name] = true
			} else {
				threads[name] = true
			}
		case "X":
			cats[ev.Cat] = true
		}
	}
	for _, p := range []string{"rank0", "gpu0"} {
		if !procs[p] {
			t.Errorf("trace missing process %q (have %v)", p, procs)
		}
	}
	for _, th := range []string{"cpu", "strm00", "copyH2D", "copyD2H"} {
		if !threads[th] {
			t.Errorf("trace missing thread %q (have %v)", th, threads)
		}
	}
	// The square run exercises host-blocking calls, async launches, kernel
	// execution, and copy-engine transfers.
	for _, c := range []string{"sync", "async", "kernel", "copy"} {
		if !cats[c] {
			t.Errorf("trace missing span class %q (have %v)", c, cats)
		}
	}
}

// TestMetricsEndToEnd scrapes the /metrics endpoint after a monitored run
// and checks the expected families, including the monitor self-metrics.
func TestMetricsEndToEnd(t *testing.T) {
	_, reg := runSquareTelemetry(t)
	if reg.Publishes() < 2 {
		t.Errorf("Publishes = %d, want >= 2 (periodic tick + final)", reg.Publishes())
	}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"ipm_calls_total",
		"ipm_call_seconds_total",
		"ipm_wallclock_seconds",
		"ipm_host_idle_seconds",
		"ipm_gpu_exec_seconds",
		"ipm_table_load_factor",
		"ipm_table_probes_total",
		"ipm_gpu_busy_seconds",
		"ipm_telemetry_spans_total",
		"ipm_sim_seconds",
		"ipm_observe_latency_ns_bucket",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("scrape missing %s:\n%s", family, firstLines(text, 40))
		}
	}
	// The square program's dominant signature must be present with labels.
	if !strings.Contains(text, `ipm_calls_total{rank="0",name="cudaMemcpy(D2H)"`) {
		t.Errorf("scrape missing labelled cudaMemcpy(D2H) sample")
	}
	// The observe-latency histogram actually observed events.
	if !strings.Contains(text, "ipm_observe_latency_ns_count") {
		t.Errorf("scrape missing observe-latency count")
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
