package ipmgo

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/advisor"
	"ipmgo/internal/cluster"
	"ipmgo/internal/cube"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/ipmparse"
	"ipmgo/internal/workloads"
)

// TestEndToEndPipeline exercises the full production workflow: run a
// monitored job on the simulated cluster, write the XML profiling log,
// parse it back (ipm_parse), and generate every report format — asserting
// the data stays consistent across the whole chain.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Run monitored HPL on 4 nodes.
	cfg := cluster.Dirac(4, 1)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = "./xhpl.cuda"
	cfg.NoiseSeed = 99
	cfg.NoiseAmp = 0.02
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.HPL(env, workloads.HPLConfig{Iterations: 10, Scale: 0.02}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	original := res.Profile

	// 2. Write the XML log, as the monitored job does at termination.
	var xml strings.Builder
	if err := ipm.WriteXML(&xml, original); err != nil {
		t.Fatal(err)
	}

	// 3. Parse it back (ipm_parse).
	parsed, err := ipmparse.Load(strings.NewReader(xml.String()))
	if err != nil {
		t.Fatal(err)
	}

	// The parsed profile preserves the aggregate picture.
	if parsed.NTasks() != original.NTasks() || parsed.Nodes != original.Nodes {
		t.Fatalf("layout drifted: %d/%d vs %d/%d",
			parsed.NTasks(), parsed.Nodes, original.NTasks(), original.Nodes)
	}
	if d := parsed.Wallclock() - original.Wallclock(); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("wallclock drifted by %v", d)
	}
	for _, name := range []string{"cudaLaunch", "MPI_Bcast", ipm.ExecStreamName(1), "cudaEventSynchronize"} {
		a := original.FuncSpread(name).Total
		b := parsed.FuncSpread(name).Total
		if d := a - b; d < -10*time.Microsecond || d > 10*time.Microsecond {
			t.Errorf("%s drifted: %v vs %v", name, a, b)
		}
	}

	// 4. Every report format generates and carries the headline content.
	var banner strings.Builder
	if err := ipmparse.WriteBanner(&banner, parsed, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(banner.String(), "mpi_tasks : 4 on 4 nodes") {
		t.Error("banner lost job layout")
	}

	var html strings.Builder
	if err := ipmparse.WriteHTML(&html, parsed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "dgemm_nn_e_kernel") {
		t.Error("HTML lost kernel rows")
	}

	var cubeOut strings.Builder
	if err := ipmparse.WriteCUBE(&cubeOut, parsed); err != nil {
		t.Fatal(err)
	}
	doc, err := cube.Parse(strings.NewReader(cubeOut.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.System.Machine.Nodes) != 4 {
		t.Errorf("CUBE system tree has %d nodes", len(doc.System.Machine.Nodes))
	}

	// 5. The advisor runs on the parsed profile and, for this async-clean
	// HPL, does not flag missed overlap.
	findings := advisor.Analyze(parsed, advisor.Thresholds{})
	for _, f := range findings {
		if f.Rule == "missed-overlap" {
			t.Errorf("async HPL flagged for missed overlap: %v", f)
		}
	}
}

// TestEndToEndSquareMatchesPaperBanner locks the Fig. 6 reproduction: the
// square example's banner regenerated through the full pipeline shows the
// paper's characteristic numbers.
func TestEndToEndSquareMatchesPaperBanner(t *testing.T) {
	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = "./cuda.ipm"
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.Square(env, workloads.DefaultSquare()); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var xml strings.Builder
	if err := ipm.WriteXML(&xml, res.Profile); err != nil {
		t.Fatal(err)
	}
	jp, err := ipmparse.Load(strings.NewReader(xml.String()))
	if err != nil {
		t.Fatal(err)
	}
	var banner strings.Builder
	if err := ipmparse.WriteBanner(&banner, jp, false); err != nil {
		t.Fatal(err)
	}
	out := banner.String()
	// The three Fig. 6 signature rows, with the paper's magnitudes.
	for _, want := range []string{
		"# cudaMalloc                         1.29",
		"# @CUDA_EXEC_STRM00                  1.15",
		"# @CUDA_HOST_IDLE                    1.15",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("banner missing %q:\n%s", want, out)
		}
	}
	// D2H separated from the implicit wait: well under 0.01 s.
	if strings.Contains(out, "# cudaMemcpy(D2H)                    1.1") {
		t.Error("D2H still carries the kernel wait with host-idle detection on")
	}
}
