// Command wrapgen emits IPM wrapper source from the built-in CUDA runtime
// specification (see internal/wrapgen), in either the dynamic
// (interface-decorator / LD_PRELOAD analogue) or static (ld --wrap
// analogue) form the paper's generator supports.
//
// Usage:
//
//	wrapgen [-mode dynamic|static] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"ipmgo/internal/wrapgen"
)

func main() {
	mode := flag.String("mode", "dynamic", "wrapper style: dynamic or static")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var m wrapgen.Mode
	switch *mode {
	case "dynamic":
		m = wrapgen.Dynamic
	case "static":
		m = wrapgen.Static
	default:
		fmt.Fprintf(os.Stderr, "wrapgen: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	src, err := wrapgen.Generate(wrapgen.CUDARuntimeSpec(), m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrapgen:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wrapgen:", err)
		os.Exit(1)
	}
}
