// Command experiments regenerates every table and figure of the paper's
// evaluation and writes the results to a directory.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-out DIR] [-only NAME]
//
// NAME is one of fig4 fig5 fig6 fig7 table1 fig8 fig9 fig10 fig11.
// Without -only, every experiment runs. -quick selects scaled-down
// configurations (minutes -> seconds); the default reproduces the paper's
// full setup.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ipmgo/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiment variants")
	seed := flag.Int64("seed", 2011, "noise seed for ensemble experiments")
	out := flag.String("out", "results", "output directory")
	only := flag.String("only", "", "run a single experiment (fig4..fig11, table1)")
	flag.Parse()

	if err := run(*quick, *seed, *out, *only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(quick bool, seed int64, outDir, only string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	o := experiments.Options{Quick: quick, Seed: seed}

	write := func(name, content string) error {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	type exp struct {
		name string
		fn   func() error
	}
	all := []exp{
		{"fig4", func() error {
			s, err := experiments.Fig4(o)
			if err != nil {
				return err
			}
			return write("fig4_banner_host_timing.txt", s)
		}},
		{"fig5", func() error {
			s, err := experiments.Fig5(o)
			if err != nil {
				return err
			}
			return write("fig5_banner_kernel_timing.txt", s)
		}},
		{"fig6", func() error {
			s, err := experiments.Fig6(o)
			if err != nil {
				return err
			}
			return write("fig6_banner_host_idle.txt", s)
		}},
		{"fig7", func() error {
			s, err := experiments.Fig7(o)
			if err != nil {
				return err
			}
			return write("fig7_monitoring_timeline.txt", s)
		}},
		{"table1", func() error {
			rows, err := experiments.Table1(o)
			if err != nil {
				return err
			}
			return write("table1_kernel_timing_accuracy.txt", experiments.FormatTable1(rows))
		}},
		{"fig8", func() error {
			r, err := experiments.Fig8(o)
			if err != nil {
				return err
			}
			return write("fig8_hpl_dilation.txt", experiments.FormatFig8(r))
		}},
		{"fig9", func() error {
			r, err := experiments.Fig9(o)
			if err != nil {
				return err
			}
			if err := write("fig9_hpl_profile.txt", experiments.FormatFig9(r)); err != nil {
				return err
			}
			return write("fig9_hpl_profile.cube", r.CUBE)
		}},
		{"fig10", func() error {
			rows, err := experiments.Fig10(o)
			if err != nil {
				return err
			}
			return write("fig10_paratec_scaling.txt", experiments.FormatFig10(rows))
		}},
		{"fig11", func() error {
			r, err := experiments.Fig11(o)
			if err != nil {
				return err
			}
			return write("fig11_amber_profile.txt", experiments.FormatFig11(r))
		}},
	}

	for _, e := range all {
		if only != "" && e.name != only {
			continue
		}
		start := time.Now()
		fmt.Printf("== %s ==\n", e.name)
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("   done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
