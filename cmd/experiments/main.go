// Command experiments regenerates every table and figure of the paper's
// evaluation and writes the results to a directory.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-out DIR] [-only NAME] [-j N]
//
// NAME is one of fig4 fig5 fig6 fig7 table1 fig8 fig9 fig10 fig11.
// Without -only, every experiment runs. -quick selects scaled-down
// configurations (minutes -> seconds); the default reproduces the paper's
// full setup. -j bounds the worker pool (default: one worker per CPU):
// independent figures run concurrently, and the ensemble experiments
// (fig8, fig10, table1) additionally spread their trials over the pool.
// Every trial owns a private DES engine and seeded RNGs, so the files
// under -out are byte-identical for any -j.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ipmgo/internal/devmodel"
	"ipmgo/internal/experiments"
	"ipmgo/internal/parallel"
	"ipmgo/internal/telemetry"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiment variants")
	seed := flag.Int64("seed", 2011, "noise seed for ensemble experiments")
	out := flag.String("out", "results", "output directory")
	only := flag.String("only", "", "run a single experiment (fig4..fig11, table1)")
	jobs := flag.Int("j", parallel.DefaultWorkers(), "max concurrent simulations (ensembles and figures)")
	metricsAddr := flag.String("metrics-addr", "", "serve a Prometheus /metrics endpoint on this address while experiments run")
	queue := flag.Bool("queue", false, "model the driver command-submission queue in every job")
	queueFlush := flag.Int("queue-flush", 0, "queue flush depth in commands (implies -queue; 0 = default)")
	queueFlushUS := flag.Int("queue-flush-us", 0, "queue flush timer in virtual microseconds (implies -queue; 0 = default, negative disables)")
	device := flag.String("device", "", "device backend for every job's GPUs (default: the Dirac C2050; see -list-devices)")
	listDevices := flag.Bool("list-devices", false, "list the registered device backends and exit")
	flag.Parse()

	if *listDevices {
		devmodel.WriteList(os.Stdout)
		return
	}
	var dev devmodel.Spec
	if *device != "" {
		var ok bool
		if dev, ok = devmodel.Lookup(*device); !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown device %q; registered backends:\n", *device)
			devmodel.WriteList(os.Stderr)
			os.Exit(2)
		}
	}

	q := queueSettings{
		enabled:  *queue || *queueFlush != 0 || *queueFlushUS != 0,
		depth:    *queueFlush,
		interval: time.Duration(*queueFlushUS) * time.Microsecond,
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: metrics:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", ln.Addr())
	}

	if err := run(*quick, *seed, *out, *only, *jobs, reg, q, dev); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// queueSettings carries the command-queue flags into the run options.
type queueSettings struct {
	enabled  bool
	depth    int
	interval time.Duration
}

// writeFn persists one named artifact and logs the path.
type writeFn func(name, content string) error

func run(quick bool, seed int64, outDir, only string, jobs int, reg *telemetry.Registry, q queueSettings, dev devmodel.Spec) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if jobs < 1 {
		jobs = 1
	}
	o := experiments.Options{
		Quick: quick, Seed: seed, Workers: jobs, Metrics: reg,
		Queue: q.enabled, QueueFlushDepth: q.depth, QueueFlushInterval: q.interval,
		Device: dev,
	}

	type exp struct {
		name string
		fn   func(write writeFn) error
	}
	all := []exp{
		{"fig4", func(write writeFn) error {
			s, err := experiments.Fig4(o)
			if err != nil {
				return err
			}
			return write("fig4_banner_host_timing.txt", s)
		}},
		{"fig5", func(write writeFn) error {
			s, err := experiments.Fig5(o)
			if err != nil {
				return err
			}
			return write("fig5_banner_kernel_timing.txt", s)
		}},
		{"fig6", func(write writeFn) error {
			s, err := experiments.Fig6(o)
			if err != nil {
				return err
			}
			return write("fig6_banner_host_idle.txt", s)
		}},
		{"fig7", func(write writeFn) error {
			s, err := experiments.Fig7(o)
			if err != nil {
				return err
			}
			return write("fig7_monitoring_timeline.txt", s)
		}},
		{"table1", func(write writeFn) error {
			rows, err := experiments.Table1(o)
			if err != nil {
				return err
			}
			return write("table1_kernel_timing_accuracy.txt", experiments.FormatTable1(rows))
		}},
		{"fig8", func(write writeFn) error {
			r, err := experiments.Fig8(o)
			if err != nil {
				return err
			}
			return write("fig8_hpl_dilation.txt", experiments.FormatFig8(r))
		}},
		{"fig9", func(write writeFn) error {
			r, err := experiments.Fig9(o)
			if err != nil {
				return err
			}
			if err := write("fig9_hpl_profile.txt", experiments.FormatFig9(r)); err != nil {
				return err
			}
			return write("fig9_hpl_profile.cube", r.CUBE)
		}},
		{"fig10", func(write writeFn) error {
			rows, err := experiments.Fig10(o)
			if err != nil {
				return err
			}
			return write("fig10_paratec_scaling.txt", experiments.FormatFig10(rows))
		}},
		{"fig11", func(write writeFn) error {
			r, err := experiments.Fig11(o)
			if err != nil {
				return err
			}
			return write("fig11_amber_profile.txt", experiments.FormatFig11(r))
		}},
	}

	selected := all[:0]
	for _, e := range all {
		if only == "" || e.name == only {
			selected = append(selected, e)
		}
	}
	if only != "" && len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", only)
	}

	// Independent figures run concurrently on the same pool the ensemble
	// trials use. Each experiment buffers its log lines and flushes them
	// as one block on completion, so concurrent runs don't interleave
	// output mid-experiment; the artifact files are written to distinct
	// paths and are byte-identical for any -j.
	var stdoutMu sync.Mutex
	return parallel.RunAll(len(selected), jobs, func(i int) error {
		e := selected[i]
		var log strings.Builder
		write := func(name, content string) error {
			path := filepath.Join(outDir, name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(&log, "wrote %s\n", path)
			return nil
		}
		start := time.Now()
		err := e.fn(write)
		stdoutMu.Lock()
		fmt.Printf("== %s ==\n%s", e.name, log.String())
		if err == nil {
			fmt.Printf("   done in %v\n", time.Since(start).Round(time.Millisecond))
		}
		stdoutMu.Unlock()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		return nil
	})
}
