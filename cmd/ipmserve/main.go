// Command ipmserve is the center-wide profile store and query service:
// the ingestion layer that turns single-job IPM XML logs into
// workload-level views (paper Section II — IPM runs on every job, and
// the value is in aggregating thousands of profiles).
//
// Usage:
//
//	ipmserve [-addr :8080] [-wal results/profstore.wal] [-compact-every N]
//
// Endpoints:
//
//	POST /ingest?id=&tags=a,b   ingest one IPM XML log (tolerant parse)
//	POST /compact               fold snapshot+WAL and truncate the log
//	GET  /jobs[?sel=&format=html]
//	GET  /job/{id}
//	GET  /agg[?sel=tag:T&top=N&format=html]
//	GET  /regress?base=&head=[&threshold=PCT&format=html]
//	GET  /healthz               liveness; /readyz = writable (503 when
//	                            draining or degraded read-only)
//	GET  /metrics               Prometheus text format
//
// Selectors are a job id, "tag:T" or "cmd:C"; /regress compares two
// jobs or two tag-sets per call-site signature.
//
// SIGTERM/SIGINT trigger graceful shutdown: /readyz flips to 503, in-
// flight requests drain, the WAL is flushed and fsynced, and with
// -snapshot-on-exit the corpus is compacted before exit.
//
// With -peers the member joins a cluster: ingest is routed to the R
// consistent-hash owners of each job id (acked at majority quorum) and
// /agg, /regress and /jobs are answered by parallel scatter-gather over
// compact per-job rollups, byte-identical to a single node holding the
// whole corpus. Every member is a router; -self names this member's own
// base URL within -peers.
//
// With -selftest the command runs the built-in load generator instead
// of serving; with -soak it runs the kill/restart durability harness,
// re-executing itself as the server child and repeatedly SIGKILLing it
// mid-ingest; with -soak-cluster it does the same to a whole cluster,
// SIGKILLing rotating members mid-ingest while workers retry through
// the surviving routers. All exit non-zero on any violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/profstore"
	"ipmgo/internal/storecluster"
	"ipmgo/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	wal := flag.String("wal", "", "append-only WAL path; empty = in-memory store")
	walSync := flag.Int("wal-sync", 1, "fsync the WAL every N appends (1 = every acked ingest is on disk)")
	compactEvery := flag.Int("compact-every", 0, "snapshot+truncate the WAL after N appends (0 = only via POST /compact)")
	snapOnExit := flag.Bool("snapshot-on-exit", false, "compact the WAL into a snapshot during graceful shutdown")
	diskFaults := flag.String("disk-faults", "", "JSON disk-fault plan injected into the WAL write path (see testdata/faults/)")
	selftest := flag.Bool("selftest", false, "run the load generator + determinism checks and exit")
	withPprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling a live store)")
	jobs := flag.Int("selftest-jobs", 120, "selftest: synthetic profiles to ingest")
	workers := flag.Int("selftest-workers", 8, "selftest: concurrent ingest workers")
	soak := flag.Bool("soak", false, "run the kill/restart soak harness and exit")
	soakJobs := flag.Int("soak-jobs", 200, "soak: synthetic profiles to ingest")
	soakWorkers := flag.Int("soak-workers", 4, "soak: concurrent ingest workers")
	soakCycles := flag.Int("soak-cycles", 3, "soak: SIGKILL/restart cycles")
	soakTimeout := flag.Duration("soak-timeout", 120*time.Second, "soak: wall-clock budget")
	peersFlag := flag.String("peers", "", "comma-separated member base URLs; non-empty enables cluster mode")
	selfFlag := flag.String("self", "", "this member's base URL within -peers (default http://<addr> when addr names a host)")
	replicas := flag.Int("replicas", 2, "cluster: copies per job (acked at majority quorum)")
	peerFaults := flag.String("peer-faults", "", "JSON peer-fault plan injected into the peer transport (see testdata/faults/)")
	tracePath := flag.String("trace", "", "write a Chrome trace of cluster scatter/forward spans here on shutdown")
	soakCluster := flag.Bool("soak-cluster", false, "run the cluster kill/restart soak harness and exit")
	soakMembers := flag.Int("soak-members", 3, "soak-cluster: cluster size")
	soakReplicas := flag.Int("soak-replicas", 2, "soak-cluster: copies per job")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	if *selftest {
		rep, err := profstore.SelfTest(profstore.SelfTestOptions{
			Jobs: *jobs, Workers: *workers, Logf: logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve: selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("selftest ok: %d jobs, %d ranks, ingest %.1f MB/s end to end, %d concurrent queries, /agg %d bytes, WAL recovered %d records\n",
			rep.Jobs, rep.Ranks, rep.IngestMBPerSec(), rep.Queries, rep.AggBytes, rep.WALRecovered)
		return
	}

	if *soak {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve:", err)
			os.Exit(1)
		}
		rep, err := profstore.Soak(profstore.SoakOptions{
			ServerCmd: []string{exe},
			Jobs:      *soakJobs, Workers: *soakWorkers, Cycles: *soakCycles,
			CompactEvery: *compactEvery, Timeout: *soakTimeout, Logf: logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve: soak FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("soak ok: %d jobs acked (%d retried through kill windows), %d kills, %d restarts, /agg byte-identical (%d bytes), %v\n",
			rep.Acked, rep.Retried, rep.Kills, rep.Restarts, rep.AggBytes, rep.Elapsed.Round(time.Millisecond))
		return
	}

	if *soakCluster {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve:", err)
			os.Exit(1)
		}
		rep, err := storecluster.SoakCluster(storecluster.SoakClusterOptions{
			ServerCmd: []string{exe},
			Members:   *soakMembers, Replicas: *soakReplicas,
			Jobs: *soakJobs, Workers: *soakWorkers, Cycles: *soakCycles,
			CompactEvery: *compactEvery, Timeout: *soakTimeout, Logf: logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve: soak-cluster FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("soak-cluster ok: %d members (R=%d), %d jobs acked (%d retried through kill windows), %d kills, %d restarts, queries byte-identical on all members (/agg %d bytes), %v\n",
			rep.Members, rep.Replicas, rep.Acked, rep.Retried, rep.Kills, rep.Restarts, rep.AggBytes, rep.Elapsed.Round(time.Millisecond))
		return
	}

	var store *profstore.Store
	if *wal != "" {
		opts := profstore.StoreOptions{
			SyncEvery:    *walSync,
			CompactEvery: *compactEvery,
			OnSnapshot: func(info profstore.SnapshotInfo, err error) {
				if err != nil {
					logf("ipmserve: background compaction failed: %v", err)
					return
				}
				logf("ipmserve: compacted %d job(s) into %s (%d stale record(s) dropped)",
					info.Jobs, info.Path, info.Dropped)
			},
		}
		if *diskFaults != "" {
			plan, err := faultsim.LoadDiskPlan(*diskFaults)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipmserve:", err)
				os.Exit(1)
			}
			opts.WrapWAL = func(inner profstore.WriteSyncer) profstore.WriteSyncer {
				return plan.Wrap(inner)
			}
			logf("ipmserve: WAL disk-fault injection armed from %s (%d fault(s))", *diskFaults, len(plan.Faults))
		}
		var st profstore.RecoveryStats
		var err error
		store, st, err = profstore.OpenStore(*wal, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve:", err)
			os.Exit(1)
		}
		if st.SnapshotSeq != 0 {
			logf("ipmserve: WAL %s: %d job(s) recovered (%d from snapshot %d, %d WAL record(s) replayed), %d skipped",
				*wal, st.Recovered, st.SnapshotJobs, st.SnapshotSeq, st.WALRecords, st.Skipped)
		} else {
			logf("ipmserve: WAL %s: %d job(s) recovered, %d record(s) skipped", *wal, st.Recovered, st.Skipped)
		}
	} else {
		store = profstore.New()
		logf("ipmserve: in-memory store (no -wal; corpus is lost on exit)")
	}
	defer store.Close()

	reg := telemetry.NewRegistry()
	srv := profstore.NewServer(store, reg)
	handler := srv.Handler()

	// Cluster mode: wrap the single-node surface with the router. Routed
	// endpoints (/ingest, /agg, /regress, /jobs, /job/{id}) fan out to
	// the ring owners; everything else still hits the local handler.
	var recorder *telemetry.Recorder
	if *peersFlag != "" {
		members := strings.Split(*peersFlag, ",")
		for i := range members {
			members[i] = strings.TrimSpace(members[i])
		}
		self := *selfFlag
		if self == "" && !strings.HasPrefix(*addr, ":") {
			self = "http://" + *addr
		}
		if self == "" {
			fmt.Fprintln(os.Stderr, "ipmserve: cluster mode needs -self (or an -addr with an explicit host)")
			os.Exit(1)
		}
		var transport http.RoundTripper
		if *peerFaults != "" {
			plan, err := faultsim.LoadPeerPlan(*peerFaults)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipmserve:", err)
				os.Exit(1)
			}
			transport = plan.Wrap(nil)
			logf("ipmserve: peer-fault injection armed from %s (%d fault(s))", *peerFaults, len(plan.Faults))
		}
		recorder = telemetry.NewRecorder(4096)
		cl, err := storecluster.New(storecluster.Config{
			Self:      self,
			Members:   members,
			Replicas:  *replicas,
			Store:     store,
			Local:     handler,
			Registry:  reg,
			Recorder:  recorder,
			Transport: transport,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve:", err)
			os.Exit(1)
		}
		handler = cl.Handler()
		logf("ipmserve: cluster member %s of %d (replicas=%d)", self, len(cl.Ring().Members()), *replicas)
	}
	if *withPprof {
		// The store handler owns "/"; route only the pprof subtree past it
		// so profiling a live server never shadows a query endpoint.
		app := handler
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
				mux.ServeHTTP(w, r)
				return
			}
			app.ServeHTTP(w, r)
		})
		logf("ipmserve: pprof enabled under /debug/pprof/")
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmserve:", err)
		os.Exit(1)
	}
	logf("ipmserve: serving on http://%s/ (%d job(s) loaded)", ln.Addr(), store.Len())

	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "ipmserve:", err)
		os.Exit(1)
	case sig := <-sigc:
		// Graceful shutdown: stop advertising readiness, drain in-flight
		// requests, then flush (and optionally compact) the WAL. A second
		// signal — or the drain deadline — forces the exit; the WAL makes
		// even that safe.
		logf("ipmserve: %v: draining", sig)
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		go func() {
			<-sigc
			cancel()
		}()
		if err := hs.Shutdown(ctx); err != nil {
			logf("ipmserve: drain cut short: %v", err)
		}
		cancel()
		if *snapOnExit {
			if info, err := store.Snapshot(); err != nil {
				logf("ipmserve: snapshot on exit failed: %v", err)
			} else {
				logf("ipmserve: compacted %d job(s) into %s", info.Jobs, info.Path)
			}
		}
		if *tracePath != "" && recorder != nil {
			if f, err := os.Create(*tracePath); err != nil {
				logf("ipmserve: trace: %v", err)
			} else {
				spans := recorder.Snapshot()
				if err := telemetry.WriteChromeTrace(f, spans); err != nil {
					logf("ipmserve: writing trace: %v", err)
				} else {
					logf("ipmserve: wrote %d span(s) to %s", len(spans), *tracePath)
				}
				f.Close()
			}
		}
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve: closing store:", err)
			os.Exit(1)
		}
		logf("ipmserve: WAL flushed, bye")
	}
}
