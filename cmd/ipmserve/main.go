// Command ipmserve is the center-wide profile store and query service:
// the ingestion layer that turns single-job IPM XML logs into
// workload-level views (paper Section II — IPM runs on every job, and
// the value is in aggregating thousands of profiles).
//
// Usage:
//
//	ipmserve [-addr :8080] [-wal results/profstore.wal]
//
// Endpoints:
//
//	POST /ingest?id=&tags=a,b   ingest one IPM XML log (tolerant parse)
//	GET  /jobs[?sel=&format=html]
//	GET  /job/{id}
//	GET  /agg[?sel=tag:T&top=N&format=html]
//	GET  /regress?base=&head=[&threshold=PCT&format=html]
//	GET  /metrics               Prometheus text format
//
// Selectors are a job id, "tag:T" or "cmd:C"; /regress compares two
// jobs or two tag-sets per call-site signature.
//
// With -selftest the command runs the built-in load generator instead
// of serving: it ingests a synthetic corpus concurrently while querying
// /agg, then proves query determinism across reads and across a WAL
// kill/recover cycle, exiting non-zero on any violation.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"ipmgo/internal/profstore"
	"ipmgo/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	wal := flag.String("wal", "", "append-only WAL path; empty = in-memory store")
	selftest := flag.Bool("selftest", false, "run the load generator + determinism checks and exit")
	withPprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling a live store)")
	jobs := flag.Int("selftest-jobs", 120, "selftest: synthetic profiles to ingest")
	workers := flag.Int("selftest-workers", 8, "selftest: concurrent ingest workers")
	flag.Parse()

	if *selftest {
		rep, err := profstore.SelfTest(profstore.SelfTestOptions{
			Jobs: *jobs, Workers: *workers,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve: selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("selftest ok: %d jobs, %d ranks, ingest %.1f MB/s end to end, %d concurrent queries, /agg %d bytes, WAL recovered %d records\n",
			rep.Jobs, rep.Ranks, rep.IngestMBPerSec(), rep.Queries, rep.AggBytes, rep.WALRecovered)
		return
	}

	var store *profstore.Store
	if *wal != "" {
		var recovered, skipped int
		var err error
		store, recovered, skipped, err = profstore.Open(*wal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ipmserve: WAL %s: %d job(s) recovered, %d record(s) skipped\n",
			*wal, recovered, skipped)
	} else {
		store = profstore.New()
		fmt.Fprintln(os.Stderr, "ipmserve: in-memory store (no -wal; corpus is lost on exit)")
	}
	defer store.Close()

	srv := profstore.NewServer(store, telemetry.NewRegistry())
	handler := srv.Handler()
	if *withPprof {
		// The store handler owns "/"; route only the pprof subtree past it
		// so profiling a live server never shadows a query endpoint.
		app := handler
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
				mux.ServeHTTP(w, r)
				return
			}
			app.ServeHTTP(w, r)
		})
		fmt.Fprintln(os.Stderr, "ipmserve: pprof enabled under /debug/pprof/")
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ipmserve: serving on http://%s/ (%d job(s) loaded)\n", ln.Addr(), store.Len())
	if err := http.Serve(ln, handler); err != nil {
		fmt.Fprintln(os.Stderr, "ipmserve:", err)
		os.Exit(1)
	}
}
