// Command benchjson turns `go test -bench` output into a JSON benchmark
// record. It reads the benchmark text from stdin, echoes every line
// through unchanged (so it can sit in a pipe without hiding the run),
// and writes a map of benchmark name to metrics to the file given by -o:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH.json
//
// Only lines in the standard result shape are recorded:
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name. Sub-benchmark
// segments of the form key=value (BenchmarkClusterIngest/shards=4) are
// additionally lifted into a "labels" map on the record; the full name
// remains the snapshot key, so every variant is gated independently by
// -threshold. B/op and allocs/op
// are present only when the run used -benchmem; absent metrics are
// omitted from the JSON (encoded as null via pointers would be noise —
// they are simply left at zero with "hasMem": false).
//
// When the run used -count N, the same benchmark appears N times; the
// snapshot keeps the line with the lowest ns/op. The minimum is the
// standard noise-floor estimator for microbenchmarks: scheduling and
// frequency jitter only ever add time, so the fastest repetition is the
// closest to the code's true cost.
//
// With -compare OLD.json the command additionally prints a ns/op delta
// table for every benchmark present in both the old snapshot and the
// current run, so successive PR snapshots (BENCH_pr1.json,
// BENCH_pr2.json, ...) can be diffed in CI:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH_pr2.json -compare BENCH_pr1.json
//
// With -threshold PCT (alongside -compare) the command becomes a CI
// gate: any benchmark whose ns/op — or, when both snapshots carry
// -benchmem metrics, allocs/op — regressed by more than PCT percent is
// listed and the command exits non-zero (see `make bench-check`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line's metrics.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"` // present when the benchmark used b.SetBytes
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	HasMem      bool    `json:"has_mem"` // true when -benchmem metrics were present
	// Labels are the key=value sub-benchmark segments of the name
	// (BenchmarkClusterIngest/shards=4 → {"shards": "4"}), so snapshot
	// consumers can select variants without re-parsing names. The full
	// name, labels included, stays the map key: each variant is compared
	// and gated separately.
	Labels map[string]string `json:"labels,omitempty"`
}

func main() {
	out := flag.String("o", "", "output JSON file (required)")
	compare := flag.String("compare", "", "previous snapshot to print ns/op deltas against")
	threshold := flag.Float64("threshold", 0, "with -compare: exit non-zero when any ns/op regression exceeds this percentage")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o FILE is required")
		os.Exit(2)
	}
	results := make(map[string]Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, r, ok := parseLine(line); ok {
			if prev, seen := results[name]; !seen || r.NsPerOp < prev.NsPerOp {
				results[name] = r
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if err := writeJSON(*out, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(results), *out)
	if *compare != "" {
		regressed, err := printComparison(os.Stderr, *compare, results, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: compare:", err)
			os.Exit(1)
		}
		if *threshold > 0 && len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: %d benchmark(s) regressed beyond %.1f%%:\n", len(regressed), *threshold)
			for _, n := range regressed {
				fmt.Fprintf(os.Stderr, "benchjson:   %s\n", n)
			}
			os.Exit(3)
		}
	}
}

// printComparison renders a ns/op delta table between a previous snapshot
// and the current results, for the benchmarks present in both, and
// returns the names whose regression exceeds threshold percent (empty
// when threshold is zero).
func printComparison(w io.Writer, oldPath string, cur map[string]Result, threshold float64) ([]string, error) {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		return nil, err
	}
	old := make(map[string]Result)
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", oldPath, err)
	}
	names := make([]string, 0, len(cur))
	for n := range cur {
		if _, ok := old[n]; ok {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(w, "benchjson: no common benchmarks with %s\n", oldPath)
		return nil, nil
	}
	sort.Strings(names)
	var regressed []string
	fmt.Fprintf(w, "benchjson: ns/op and allocs/op vs %s\n", oldPath)
	fmt.Fprintf(w, "%-50s %12s %12s %10s %12s %10s\n", "benchmark", "old ns/op", "new ns/op", "ns delta", "allocs delta", "MB/s")
	for _, n := range names {
		o, c := old[n], cur[n]
		bad := false
		delta := "n/a"
		if o.NsPerOp > 0 {
			pct := 100 * (c.NsPerOp - o.NsPerOp) / o.NsPerOp
			delta = fmt.Sprintf("%+.1f%%", pct)
			if threshold > 0 && pct > threshold {
				bad = true
			}
		}
		// Gate allocation counts too: allocs/op is near-deterministic, so a
		// regression there is a code change, not scheduler noise.
		allocDelta := "n/a"
		if o.HasMem && c.HasMem && o.AllocsPerOp > 0 {
			pct := 100 * float64(c.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp)
			allocDelta = fmt.Sprintf("%+.1f%%", pct)
			if threshold > 0 && pct > threshold {
				bad = true
			}
		}
		// Throughput is informational (it moves inversely with ns/op,
		// which is already gated): shown when either snapshot carries it.
		mbs := "n/a"
		switch {
		case o.MBPerSec > 0 && c.MBPerSec > 0:
			mbs = fmt.Sprintf("%.0f->%.0f", o.MBPerSec, c.MBPerSec)
		case c.MBPerSec > 0:
			mbs = fmt.Sprintf("%.0f", c.MBPerSec)
		}
		line := fmt.Sprintf("%-50s %12.2f %12.2f %10s %12s %10s", n, o.NsPerOp, c.NsPerOp, delta, allocDelta, mbs)
		if bad {
			line += " <-- REGRESSION"
			regressed = append(regressed, n)
		}
		fmt.Fprintln(w, line)
	}
	return regressed, nil
}

// parseLine extracts a benchmark result from one output line. Returns
// ok=false for everything that is not a result line (headers, PASS, ok).
func parseLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r := Result{Iterations: iters}
	name := f[0]
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	// Lift key=value sub-benchmark segments (b.Run("shards=4", ...))
	// into structured labels.
	for _, seg := range strings.Split(name, "/")[1:] {
		if k, v, ok := strings.Cut(seg, "="); ok && k != "" {
			if r.Labels == nil {
				r.Labels = make(map[string]string)
			}
			r.Labels[k] = v
		}
	}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
				seen = true
			}
		case "MB/s":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.MBPerSec = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
				r.HasMem = true
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
				r.HasMem = true
			}
		}
	}
	if !seen {
		return "", Result{}, false
	}
	return name, r, true
}

func writeJSON(path string, results map[string]Result) error {
	// Deterministic key order: marshal via a sorted intermediate so the
	// file diffs cleanly between runs.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, n := range names {
		b, err := json.Marshal(results[n])
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "  %q: %s", n, b)
		if i < len(names)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
