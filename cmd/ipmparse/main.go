// Command ipmparse reimplements IPM's ipm_parse utility: it reads an XML
// profiling log produced by a monitored run (e.g. ipmrun -xml) and emits
// one of several report formats.
//
// Usage:
//
//	ipmparse -format banner|full|html|cube|advise [-o FILE] LOG.xml
//
// The advise format runs the performance advisor (internal/advisor) on
// the profile and prints guidance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipmgo/internal/advisor"
	"ipmgo/internal/ipmparse"
)

func main() {
	format := flag.String("format", "banner", "output format: banner, full, html, cube, advise, regions")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ipmparse [-format banner|full|html|cube] [-o FILE] LOG.xml")
		os.Exit(2)
	}

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmparse:", err)
		os.Exit(1)
	}
	defer in.Close()

	jp, err := ipmparse.Load(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmparse:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmparse:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "banner":
		err = ipmparse.WriteBanner(w, jp, false)
	case "full":
		err = ipmparse.WriteBanner(w, jp, true)
	case "html":
		err = ipmparse.WriteHTML(w, jp)
	case "cube":
		err = ipmparse.WriteCUBE(w, jp)
	case "advise":
		report := advisor.Report(advisor.Analyze(jp, advisor.Thresholds{})) + "\n" +
			advisor.FormatProjections(advisor.Projections(jp))
		_, err = io.WriteString(w, report)
	case "regions":
		err = ipmparse.WriteRegions(w, jp)
	default:
		fmt.Fprintf(os.Stderr, "ipmparse: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmparse:", err)
		os.Exit(1)
	}
}
