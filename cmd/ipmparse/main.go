// Command ipmparse reimplements IPM's ipm_parse utility: it reads an XML
// profiling log produced by a monitored run (e.g. ipmrun -xml) and emits
// one of several report formats.
//
// Usage:
//
//	ipmparse -format banner|full|html|cube|advise [-o FILE] LOG.xml
//
// The advise format runs the performance advisor (internal/advisor) on
// the profile and prints guidance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipmgo/internal/advisor"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmparse"
)

func main() {
	format := flag.String("format", "banner", "output format: banner, full, html, cube, advise, regions")
	out := flag.String("o", "", "output file (default stdout)")
	strict := flag.Bool("strict", false, "reject malformed logs instead of salvaging partial reports")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ipmparse [-format banner|full|html|cube] [-strict] [-o FILE] LOG.xml")
		os.Exit(2)
	}

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmparse:", err)
		os.Exit(1)
	}
	defer in.Close()

	// Tolerant by default: the log of a job whose ranks died mid-write is
	// exactly the log most worth parsing. -strict restores hard failure.
	var jp *ipm.JobProfile
	if *strict {
		jp, err = ipmparse.Load(in)
	} else {
		var rep *ipm.ParseReport
		jp, rep, err = ipmparse.LoadTolerant(in)
		if rep != nil {
			for _, w := range rep.Warnings {
				fmt.Fprintln(os.Stderr, "ipmparse: warning:", w)
			}
			if rep.Truncated {
				fmt.Fprintf(os.Stderr, "ipmparse: warning: log truncated; recovered %d of %d task(s)\n",
					rep.TasksRecovered, rep.TasksDeclared)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmparse:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmparse:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "banner":
		err = ipmparse.WriteBanner(w, jp, false)
	case "full":
		err = ipmparse.WriteBanner(w, jp, true)
	case "html":
		err = ipmparse.WriteHTML(w, jp)
	case "cube":
		err = ipmparse.WriteCUBE(w, jp)
	case "advise":
		report := advisor.Report(advisor.Analyze(jp, advisor.Thresholds{})) + "\n" +
			advisor.FormatProjections(advisor.Projections(jp))
		_, err = io.WriteString(w, report)
	case "regions":
		err = ipmparse.WriteRegions(w, jp)
	default:
		fmt.Fprintf(os.Stderr, "ipmparse: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmparse:", err)
		os.Exit(1)
	}
}
