// Command ipmrun executes one of the bundled workload models on the
// simulated Dirac cluster under IPM monitoring and writes the profiling
// banner to stdout and the XML profiling log to a file — the workflow of
// running a monitored job on the real machine.
//
// Usage:
//
//	ipmrun [flags] WORKLOAD
//
// WORKLOAD is one of: square, blackscholes, fdtd3d, mersennetwister,
// montecarlo, concurrentkernels, eigenvalues, quasirandomgenerator, scan,
// hpl, paratec, paratec-mkl, amber, faultdemo.
//
// With -faults PLAN.json the run executes under a deterministic fault
// plan (internal/faultsim): injected CUDA errors, stragglers, rank
// deaths, monitor panics. The faultdemo workload is written to degrade
// gracefully under any of them.
//
// With -device NAME every node's GPU uses the named device backend from
// the devmodel registry (-list-devices prints them); the default is the
// Dirac cluster's Tesla C2050. Backends with a power model attribute
// per-call-site energy into the profile.
//
// With -ingest URL the finished profile is additionally POSTed to a
// running ipmserve (cmd/ipmserve) with capped-backoff retry; a dead or
// flaky server degrades to a warning and never fails the run.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/devmodel"
	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/profstore"
	"ipmgo/internal/telemetry"
	"ipmgo/internal/workloads"
)

func main() {
	nodes := flag.Int("nodes", 1, "number of cluster nodes")
	rpn := flag.Int("ranks-per-node", 1, "MPI ranks per node (share the node's GPU)")
	device := flag.String("device", "c2050", "device backend for every node's GPU (see -list-devices)")
	listDevices := flag.Bool("list-devices", false, "list the registered device backends and exit")
	kernelTiming := flag.Bool("kernel-timing", true, "enable GPU kernel timing (KTT)")
	hostIdle := flag.Bool("host-idle", true, "enable implicit host blocking measurement")
	fullBanner := flag.Bool("full", false, "write the full parallel banner")
	xmlOut := flag.String("xml", "", "write the XML profiling log to this file")
	seed := flag.Int64("seed", 2011, "noise seed")
	iterations := flag.Int("iterations", 0, "override workload iterations/steps (0 = default)")
	scale := flag.Float64("scale", 1.0, "duration scale for HPL")
	traceOut := flag.String("trace", "", "write a Perfetto-loadable Chrome trace JSON to this file")
	traceCap := flag.Int("trace-cap", telemetry.DefaultCapacity, "telemetry ring capacity in spans (oldest dropped beyond)")
	metricsAddr := flag.String("metrics-addr", "", "serve a Prometheus /metrics endpoint on this address (e.g. :9090)")
	hold := flag.Duration("hold", 0, "keep the /metrics endpoint up this long after the run")
	queue := flag.Bool("queue", false, "model the driver command-submission queue (per-context batching)")
	queueFlush := flag.Int("queue-flush", 0, "queue flush depth in commands (implies -queue; 0 = default)")
	queueFlushUS := flag.Int("queue-flush-us", 0, "queue flush timer in virtual microseconds (implies -queue; 0 = default, negative disables)")
	faults := flag.String("faults", "", "JSON fault plan (see internal/faultsim); activates deterministic fault injection")
	ingest := flag.String("ingest", "", "POST the finished profile to this ipmserve URL (e.g. http://localhost:8080)")
	ingestTags := flag.String("ingest-tags", "", "comma-separated tags attached to the ingested profile")
	ingestID := flag.String("ingest-id", "", "job id for the ingested profile (default: derived from content)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file")
	flag.Parse()

	if *listDevices {
		devmodel.WriteList(os.Stdout)
		return
	}
	dev, ok := devmodel.Lookup(*device)
	if !ok {
		fmt.Fprintf(os.Stderr, "ipmrun: unknown device %q; registered backends:\n", *device)
		devmodel.WriteList(os.Stderr)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmrun: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ipmrun: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipmrun: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile reflects retained allocations
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "ipmrun: memprofile:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "allocation profile written to %s\n", *memProfile)
		}()
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ipmrun [flags] WORKLOAD")
		flag.PrintDefaults()
		os.Exit(2)
	}
	name := strings.ToLower(flag.Arg(0))

	cfg := cluster.Dirac(*nodes, *rpn)
	cfg.Device = dev
	cfg.GPU = dev.GPU
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: *kernelTiming, HostIdle: *hostIdle}
	cfg.NoiseSeed = *seed
	cfg.NoiseAmp = 0.01
	cfg.Command = "./" + name
	if *queue || *queueFlush != 0 || *queueFlushUS != 0 {
		cfg.Queue = true
		cfg.QueueFlushDepth = *queueFlush
		cfg.QueueFlushInterval = time.Duration(*queueFlushUS) * time.Microsecond
	}

	if *faults != "" {
		plan, err := faultsim.LoadFile(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmrun: faults:", err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}

	var rec *telemetry.Recorder
	if *traceOut != "" {
		rec = telemetry.NewRecorder(*traceCap)
		cfg.Telemetry = rec
	}
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		cfg.Metrics = reg
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmrun: metrics:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", ln.Addr())
	}

	app, err := selectWorkload(name, &cfg, *iterations, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmrun:", err)
		os.Exit(2)
	}

	res, err := cluster.Run(cfg, app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipmrun:", err)
		os.Exit(1)
	}

	if cfg.Faults != nil {
		fmt.Fprintf(os.Stderr, "faults: %d injected, %d retried, %d gave up, %d rank(s) lost\n",
			res.FaultsInjected, res.Retries, res.GaveUp, len(res.Lost))
		for _, l := range res.Lost {
			fmt.Fprintf(os.Stderr, "faults: rank %d lost at %v: %s\n", l.Rank, l.At, l.Reason)
		}
		if res.Truncated != "" {
			fmt.Fprintln(os.Stderr, "faults: run truncated:", res.Truncated)
		}
	}

	if err := ipm.WriteBanner(os.Stdout, res.Profile, ipm.BannerOptions{Full: *fullBanner}); err != nil {
		fmt.Fprintln(os.Stderr, "ipmrun: banner:", err)
		os.Exit(1)
	}
	if *xmlOut != "" {
		f, err := os.Create(*xmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := ipm.WriteXML(f, res.Profile); err != nil {
			fmt.Fprintln(os.Stderr, "ipmrun: xml:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "profiling log written to %s\n", *xmlOut)
	}
	if rec != nil {
		spans := rec.Snapshot()
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipmrun:", err)
			os.Exit(1)
		}
		if err := telemetry.WriteChromeTraceCounters(f, spans, rec.CounterSnapshot()); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "ipmrun: trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ipmrun: trace:", err)
			os.Exit(1)
		}
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d of %d spans dropped (raise -trace-cap for a complete trace)\n", d, rec.Total())
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans) — open in https://ui.perfetto.dev\n", *traceOut, len(spans))
	}
	if *ingest != "" {
		// The post rides the same capped-backoff schedule the fault model
		// uses for transient CUDA errors (faultsim.RetryPolicy); a store
		// that stays down costs a warning, never the run: the profile is
		// already safe on stdout/-xml.
		var tags []string
		if *ingestTags != "" {
			tags = strings.Split(*ingestTags, ",")
		}
		poster := &profstore.Poster{
			URL: *ingest,
			Policy: faultsim.RetryPolicy{
				MaxAttempts: 5,
				Backoff:     faultsim.Dur(200 * time.Millisecond),
				MaxBackoff:  faultsim.Dur(2 * time.Second),
			},
			Reg: reg, // ipm_ingest_{posts,retries,failures}_total on -metrics-addr
		}
		id, attempts, err := poster.PostProfile(res.Profile, *ingestID, tags)
		st := poster.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: ingest to %s failed after %d attempt(s) (%d retried, %d failed): %v (run unaffected)\n",
				*ingest, attempts, st.Retries, st.Failures, err)
		} else if st.Retries > 0 {
			fmt.Fprintf(os.Stderr, "profile ingested as %s after %d attempt(s) (%d retried)\n", id, attempts, st.Retries)
		} else {
			fmt.Fprintf(os.Stderr, "profile ingested as %s (%d attempt(s))\n", id, attempts)
		}
	}
	if reg != nil && *hold > 0 {
		fmt.Fprintf(os.Stderr, "holding /metrics for %v\n", *hold)
		time.Sleep(*hold)
	}
}

func selectWorkload(name string, cfg *cluster.Config, iterations int, scale float64) (func(*cluster.Env), error) {
	for _, b := range workloads.SDKSuite() {
		if strings.ToLower(b.Name) == name {
			bench := b
			return func(env *cluster.Env) {
				if err := bench.Run(env); err != nil {
					panic(err)
				}
			}, nil
		}
	}
	switch name {
	case "faultdemo":
		d := workloads.DefaultFaultDemo()
		if iterations > 0 {
			d.Steps = iterations
		}
		return func(env *cluster.Env) {
			// FaultDemo degrades instead of failing: the report is the
			// per-rank outcome, surfaced through the profile's error
			// counters rather than a process exit.
			workloads.FaultDemo(env, d)
		}, nil
	case "square":
		return func(env *cluster.Env) {
			if err := workloads.Square(env, workloads.DefaultSquare()); err != nil {
				panic(err)
			}
		}, nil
	case "hpl":
		h := workloads.DefaultHPL()
		if iterations > 0 {
			h.Iterations = iterations
		}
		h.Scale = scale
		return func(env *cluster.Env) {
			if err := workloads.HPL(env, h); err != nil {
				panic(err)
			}
		}, nil
	case "paratec", "paratec-mkl":
		cfg.LibCostOnly = true
		p := workloads.DefaultParatec(name == "paratec")
		if iterations > 0 {
			p.Iterations = iterations
		}
		return func(env *cluster.Env) {
			if err := workloads.Paratec(env, p); err != nil {
				panic(err)
			}
		}, nil
	case "amber":
		cfg.Runtime = workloads.AmberRuntimeOptions()
		a := workloads.DefaultAmber()
		if iterations > 0 {
			a.Steps = iterations
		}
		return func(env *cluster.Env) {
			if err := workloads.Amber(env, a); err != nil {
				panic(err)
			}
		}, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}
