package ipmgo

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"

	"ipmgo/internal/ipm"
	"ipmgo/internal/profstore"
	"ipmgo/internal/storecluster"
	"ipmgo/internal/telemetry"
)

// The cluster e2e scenario extends `make serve-e2e` to cluster mode: a
// real 3-member ipmserve cluster over loopback HTTP, WAL-backed like
// production, ingesting through rotating routers — then every member
// must answer /agg, /jobs and /regress byte-identically to a single
// never-sharded store, including after one member is torn down and
// recovered from its WAL. Run with -race; `make verify` does.

// clusterMembersOn stands up n WAL-backed cluster members on loopback
// listeners and returns their base URLs, stores and HTTP servers.
func clusterMembersOn(t *testing.T, n, replicas int, dir string) ([]string, []*profstore.Store, []*http.Server) {
	t.Helper()
	urls := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	stores := make([]*profstore.Store, n)
	servers := make([]*http.Server, n)
	for i := 0; i < n; i++ {
		store, _, err := profstore.OpenStore(
			filepath.Join(dir, fmt.Sprintf("member%d.wal", i)),
			profstore.StoreOptions{SyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = store
		reg := telemetry.NewRegistry()
		cl, err := storecluster.New(storecluster.Config{
			Self:     urls[i],
			Members:  urls,
			Replicas: replicas,
			Store:    store,
			Local:    profstore.NewServer(store, reg).Handler(),
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: cl.Handler()}
		servers[i] = hs
		go hs.Serve(listeners[i])
		t.Cleanup(func() {
			hs.Close()
			store.Close()
		})
	}
	return urls, stores, servers
}

// TestServeE2EClusterByteIdentity ingests a synthetic corpus through
// rotating routers of a 3-member R=2 cluster and demands every member
// answer the full query surface byte-identically to a single-node
// store holding the whole corpus — then reopens one member's WAL into
// a fresh store and demands the same again, proving a shard restart
// preserves the cluster-wide bytes.
func TestServeE2EClusterByteIdentity(t *testing.T) {
	// Reference: one plain store, same documents.
	ref := profstore.New()
	defer ref.Close()
	refURL := serveOn(t, profstore.NewServer(ref, telemetry.NewRegistry()))

	dir := t.TempDir()
	urls, stores, servers := clusterMembersOn(t, 3, 2, dir)

	const nDocs = 9
	for i := 0; i < nDocs; i++ {
		var buf bytes.Buffer
		if err := ipm.WriteXML(&buf, profstore.SyntheticProfile(2011, i)); err != nil {
			t.Fatal(err)
		}
		xml := buf.Bytes()
		tags := []string{"e2e", fmt.Sprintf("batch:%d", i%2)}
		if _, err := ref.Ingest(xml, profstore.DeriveID(xml), tags); err != nil {
			t.Fatal(err)
		}
		poster := &profstore.Poster{URL: urls[i%len(urls)]}
		if _, err := poster.PostXML(xml, "", tags); err != nil {
			t.Fatalf("cluster ingest %d: %v", i, err)
		}
	}

	queries := []string{
		"/agg",
		"/agg?sel=tag:e2e&top=4",
		"/jobs",
		"/regress?base=tag:batch:0&head=tag:batch:1&threshold=5",
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range queries {
			want := mustGet(t, refURL+q)
			for m, u := range urls {
				if got := mustGet(t, u+q); !bytes.Equal(got, want) {
					t.Errorf("%s: %s via member %d differs from single-node reference:\ngot:\n%s\nwant:\n%s", stage, q, m, got, want)
				}
			}
		}
	}
	check("live cluster")

	// Restart member 0: recover its shard from the WAL into a fresh
	// store served at the same ring position. The pre-restart memo
	// epoch is unreachable by construction (boot-stamped), so the
	// recovered member cannot serve a stale cached rollup.
	before := stores[0].Len()
	servers[0].Close() // free the address before the rebind below
	if err := stores[0].Close(); err != nil {
		t.Fatal(err)
	}
	recovered, st, err := profstore.OpenStore(
		filepath.Join(dir, "member0.wal"), profstore.StoreOptions{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if st.Recovered != before {
		t.Fatalf("member 0 recovered %d job(s), want %d", st.Recovered, before)
	}
	// Rebind the member's listener with the recovered store.
	reg := telemetry.NewRegistry()
	cl, err := storecluster.New(storecluster.Config{
		Self:     urls[0],
		Members:  urls,
		Replicas: 2,
		Store:    recovered,
		Local:    profstore.NewServer(recovered, reg).Handler(),
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", urls[0][len("http://"):])
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: cl.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	check("after member restart")
}
