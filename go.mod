module ipmgo

go 1.22
