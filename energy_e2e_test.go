package ipmgo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ipmgo/internal/cluster"
	"ipmgo/internal/devmodel"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/parallel"
	"ipmgo/internal/profstore"
	"ipmgo/internal/workloads"
)

// This file is the acceptance test for the device-backend registry and
// the power model: for every registered backend, energy attribution must
// be byte-identical across ensemble worker counts and ingest orders, and
// the legacy (zero-Device) path must stay energy-free.

// runSquareOn runs the square workload on one node of the named backend
// and returns the XML profiling log.
func runSquareOn(t testing.TB, backend string, seed int64) []byte {
	t.Helper()
	dev, ok := devmodel.Lookup(backend)
	if !ok {
		t.Fatalf("backend %q not registered", backend)
	}
	cfg := cluster.Dirac(1, 1)
	cfg.Device = dev
	cfg.GPU = dev.GPU
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = "./square." + backend
	cfg.NoiseSeed = seed
	cfg.NoiseAmp = 0.01
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.Square(env, workloads.DefaultSquare()); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var xml bytes.Buffer
	if err := ipm.WriteXML(&xml, res.Profile); err != nil {
		t.Fatal(err)
	}
	return xml.Bytes()
}

// TestEnergyDeterminismAcrossWorkers is the acceptance property: for
// each backend, an ensemble of runs produces byte-identical XML (joules
// included) at -j 1 and -j 4, and /agg reports the same per-job
// energy_joules for any ingest order.
func TestEnergyDeterminismAcrossWorkers(t *testing.T) {
	for _, backend := range devmodel.Names() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			const n = 4
			ensemble := func(workers int) [][]byte {
				xmls := make([][]byte, n)
				if err := parallel.RunAll(n, workers, func(i int) error {
					xmls[i] = runSquareOn(t, backend, int64(i+1))
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				return xmls
			}
			seq := ensemble(1)
			par := ensemble(4)
			for i := range seq {
				if !bytes.Equal(seq[i], par[i]) {
					t.Fatalf("run %d XML differs between -j 1 and -j 4", i)
				}
			}

			// The XML actually carries energy for powered backends.
			dev, _ := devmodel.Lookup(backend)
			if !dev.Power.Zero() && !bytes.Contains(seq[0], []byte("energy_total=")) {
				t.Error("powered backend wrote no energy_total attribute")
			}
			if !bytes.Contains(seq[0], []byte(`device="`+dev.GPU.Name+`"`)) {
				t.Errorf("XML does not name device %q", dev.GPU.Name)
			}

			// /agg energy is identical for forward and reverse ingest order.
			aggFor := func(order []int) []byte {
				store := profstore.New()
				for _, i := range order {
					if _, err := store.Ingest(seq[i], fmt.Sprintf("sq-%d", i), nil); err != nil {
						t.Fatal(err)
					}
				}
				b, err := json.Marshal(store.Aggregate(profstore.AggOptions{}))
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			fwd := aggFor([]int{0, 1, 2, 3})
			rev := aggFor([]int{3, 2, 1, 0})
			if !bytes.Equal(fwd, rev) {
				t.Errorf("/agg differs by ingest order:\nfwd: %s\nrev: %s", fwd, rev)
			}
			var rep struct {
				EnergyJoules float64 `json:"energy_joules"`
				JobEnergy    []struct {
					EnergyJoules float64 `json:"energy_joules"`
				} `json:"job_energy"`
			}
			if err := json.Unmarshal(fwd, &rep); err != nil {
				t.Fatal(err)
			}
			if !dev.Power.Zero() {
				if rep.EnergyJoules <= 0 {
					t.Error("/agg energy_joules is zero for a powered backend")
				}
				if len(rep.JobEnergy) != n {
					t.Errorf("/agg job_energy has %d rows, want %d", len(rep.JobEnergy), n)
				}
			}
		})
	}
}

// TestEnergyLegacyConfigsStayUnpowered pins the compatibility contract:
// a Config built without a Device backend attributes no energy, names no
// device, and its banner keeps the pre-registry gpu line.
func TestEnergyLegacyConfigsStayUnpowered(t *testing.T) {
	cfg := cluster.Dirac(1, 1)
	cfg.Device = devmodel.Spec{} // ad-hoc config, as pre-registry callers built
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = "./square"
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.Square(env, workloads.DefaultSquare()); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Profile.TotalEnergy(); e != 0 {
		t.Errorf("legacy run attributed %d nJ", e)
	}
	if d := res.Profile.DeviceName(); d != "" {
		t.Errorf("legacy run named device %q", d)
	}
	var xml bytes.Buffer
	if err := ipm.WriteXML(&xml, res.Profile); err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"energy_total=", "energy=", "device="} {
		if bytes.Contains(xml.Bytes(), []byte(attr)) {
			t.Errorf("legacy XML carries %s", attr)
		}
	}
	var banner strings.Builder
	if err := ipm.WriteBanner(&banner, res.Profile, ipm.BannerOptions{Full: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(banner.String(), "# gpu       : 1 devices") {
		t.Error("legacy banner lost the bare device count")
	}
	if strings.Contains(banner.String(), "# energy") {
		t.Error("legacy banner grew an energy line")
	}
}

// TestBannerNamesDeviceBackend pins satellite behaviour: runs that pick
// a backend derive the banner's gpu line and energy row from the active
// spec rather than a baked-in device string.
func TestBannerNamesDeviceBackend(t *testing.T) {
	xml := runSquareOn(t, "a100", 7)
	jp, _, err := ipm.ParseXMLTolerant(bytes.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	var banner strings.Builder
	if err := ipm.WriteBanner(&banner, jp, ipm.BannerOptions{Full: true}); err != nil {
		t.Fatal(err)
	}
	out := banner.String()
	if !strings.Contains(out, "# gpu       : 1 x A100-SXM4-40GB") {
		t.Errorf("banner does not name the A100 backend:\n%s", out)
	}
	if !strings.Contains(out, "# energy    : ") {
		t.Errorf("banner has no energy line:\n%s", out)
	}
}
