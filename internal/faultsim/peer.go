package faultsim

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"syscall"
)

// Peer-fault injection: the network twin of the disk plan. A PeerPlan
// wraps the http.RoundTripper a cluster router reaches its members
// through and fails deterministic requests to chosen hosts — the
// connection-refused shape a SIGKILLed or partitioned ipmserve member
// presents. Plans are keyed by per-host request index, not wall time, so
// a test injects the same outage at the same fan-out step every run.

// Peer fault kinds.
const (
	// PeerUnreachable fails the request before it leaves: connection
	// refused, as from a dead member.
	PeerUnreachable = "unreachable"
)

// PeerFault is one injected peer outage.
type PeerFault struct {
	// Host selects the request stream by URL host ("127.0.0.1:9001");
	// "*" matches every host.
	Host string `json:"host"`
	// At is the 1-based index of the request to Host at (and, while the
	// occurrence budget lasts, after) which the fault fires.
	At int `json:"at"`
	// Kind is the failure mode; only "unreachable" today.
	Kind string `json:"kind"`
	// Count bounds the occurrences: 0 means one, -1 means sticky (the
	// member stays dead rather than blipping).
	Count int `json:"count,omitempty"`
}

// PeerPlan is a deterministic schedule of peer outages.
type PeerPlan struct {
	Comment string      `json:"comment,omitempty"`
	Faults  []PeerFault `json:"faults"`
}

// ParsePeerPlan decodes and validates a JSON peer-fault plan.
func ParsePeerPlan(data []byte) (*PeerPlan, error) {
	var p PeerPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultsim: parsing peer plan: %w", err)
	}
	for i, f := range p.Faults {
		if f.Host == "" {
			return nil, fmt.Errorf("faultsim: peer fault %d: empty host", i)
		}
		if f.Kind != PeerUnreachable {
			return nil, fmt.Errorf("faultsim: peer fault %d: unknown kind %q", i, f.Kind)
		}
		if f.At < 1 {
			return nil, fmt.Errorf("faultsim: peer fault %d: at must be >= 1 (request index)", i)
		}
		if f.Count < -1 {
			return nil, fmt.Errorf("faultsim: peer fault %d: bad count %d", i, f.Count)
		}
	}
	return &p, nil
}

// LoadPeerPlan reads a peer-fault plan from a JSON file.
func LoadPeerPlan(path string) (*PeerPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultsim: reading peer plan: %w", err)
	}
	return ParsePeerPlan(data)
}

// armedPeer is one peer fault with its remaining occurrence budget.
type armedPeer struct {
	f    PeerFault
	left int // -1 = sticky
}

// FaultyTransport injects the plan's outages into an inner RoundTripper.
// Safe for concurrent use: routers fan out to peers in parallel.
type FaultyTransport struct {
	inner http.RoundTripper

	mu       sync.Mutex
	armed    []armedPeer
	requests map[string]int // per-host request count, 1-based
	injected int64
}

// Wrap builds the fault-injecting wrapper around inner (nil means
// http.DefaultTransport).
func (p *PeerPlan) Wrap(inner http.RoundTripper) *FaultyTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	ft := &FaultyTransport{inner: inner, requests: make(map[string]int)}
	for _, f := range p.Faults {
		left := f.Count
		if left == 0 {
			left = 1
		}
		ft.armed = append(ft.armed, armedPeer{f: f, left: left})
	}
	return ft
}

// Injected returns the number of faults delivered so far.
func (ft *FaultyTransport) Injected() int64 {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.injected
}

// pick consumes one occurrence of the first armed fault eligible for the
// n-th request to host.
func (ft *FaultyTransport) pick(host string, n int) *PeerFault {
	for i := range ft.armed {
		a := &ft.armed[i]
		if (a.f.Host != host && a.f.Host != "*") || a.left == 0 || n < a.f.At {
			continue
		}
		if a.left > 0 {
			a.left--
		}
		ft.injected++
		return &a.f
	}
	return nil
}

// RoundTrip passes the request to the inner transport unless an outage
// is due for its host.
func (ft *FaultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	ft.mu.Lock()
	ft.requests[host]++
	f := ft.pick(host, ft.requests[host])
	ft.mu.Unlock()
	if f != nil {
		return nil, fmt.Errorf("faultsim: injected peer outage for %s: %w", host, syscall.ECONNREFUSED)
	}
	return ft.inner.RoundTrip(req)
}
