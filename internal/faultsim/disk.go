package faultsim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"syscall"
)

// Disk-fault injection: the storage twin of the CUDA Injector. A
// FaultyWriter wraps the WriteSyncer a durable store appends through
// (in practice profstore's WAL file) and fails deterministic operations
// according to a DiskPlan — EIO on write or fsync, a short write, or a
// full disk. Plans are keyed by operation index, not wall time, so a
// test or soak run injects the same fault at the same append every run.

// WriteSyncer is the write-plus-fsync surface a durable log appends
// through. *os.File satisfies it; so does FaultyWriter, which is the
// point: the wrapper is transparent to the store.
type WriteSyncer interface {
	io.Writer
	Sync() error
}

// Disk fault kinds.
const (
	DiskEIO   = "eio"   // the operation fails with EIO
	DiskShort = "short" // a write stops halfway (io.ErrShortWrite)
	DiskFull  = "full"  // the operation fails with ENOSPC
)

// DiskFault is one injected storage fault.
type DiskFault struct {
	// Op selects the operation stream: "write" or "sync".
	Op string `json:"op"`
	// At is the 1-based index of the Op-type operation at (and, while
	// the occurrence budget lasts, after) which the fault fires.
	At int `json:"at"`
	// Kind is the failure mode: "eio", "short" (write only) or "full".
	Kind string `json:"kind"`
	// Count bounds the occurrences: 0 means one, -1 means sticky (every
	// eligible operation fails — a dead disk rather than a glitch).
	Count int `json:"count,omitempty"`
}

// DiskPlan is a deterministic schedule of storage faults.
type DiskPlan struct {
	Comment string      `json:"comment,omitempty"`
	Faults  []DiskFault `json:"faults"`
}

// ParseDiskPlan decodes and validates a JSON disk-fault plan.
func ParseDiskPlan(data []byte) (*DiskPlan, error) {
	var p DiskPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultsim: parsing disk plan: %w", err)
	}
	for i, f := range p.Faults {
		switch f.Op {
		case "write", "sync":
		default:
			return nil, fmt.Errorf("faultsim: disk fault %d: unknown op %q (want write or sync)", i, f.Op)
		}
		switch f.Kind {
		case DiskEIO, DiskFull:
		case DiskShort:
			if f.Op != "write" {
				return nil, fmt.Errorf("faultsim: disk fault %d: kind short applies only to writes", i)
			}
		default:
			return nil, fmt.Errorf("faultsim: disk fault %d: unknown kind %q", i, f.Kind)
		}
		if f.At < 1 {
			return nil, fmt.Errorf("faultsim: disk fault %d: at must be >= 1 (operation index)", i)
		}
		if f.Count < -1 {
			return nil, fmt.Errorf("faultsim: disk fault %d: bad count %d", i, f.Count)
		}
	}
	return &p, nil
}

// LoadDiskPlan reads a disk-fault plan from a JSON file.
func LoadDiskPlan(path string) (*DiskPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultsim: reading disk plan: %w", err)
	}
	return ParseDiskPlan(data)
}

// armedDisk is one disk fault with its remaining occurrence budget.
type armedDisk struct {
	f    DiskFault
	left int // -1 = sticky
}

// FaultyWriter injects the plan's faults into an inner WriteSyncer.
// Not safe for concurrent use on its own; the store's WAL mutex already
// serialises appends, which is the seam it is meant to wrap.
type FaultyWriter struct {
	inner  WriteSyncer
	armed  []armedDisk
	writes int // operations seen per stream, 1-based after increment
	syncs  int

	injected int64
}

// Wrap builds the fault-injecting wrapper around inner.
func (p *DiskPlan) Wrap(inner WriteSyncer) *FaultyWriter {
	fw := &FaultyWriter{inner: inner}
	for _, f := range p.Faults {
		left := f.Count
		if left == 0 {
			left = 1
		}
		fw.armed = append(fw.armed, armedDisk{f: f, left: left})
	}
	return fw
}

// Injected returns the number of faults delivered so far.
func (fw *FaultyWriter) Injected() int64 { return fw.injected }

// pick returns the first armed fault eligible for the op at index n,
// consuming one occurrence.
func (fw *FaultyWriter) pick(op string, n int) *DiskFault {
	for i := range fw.armed {
		a := &fw.armed[i]
		if a.f.Op != op || a.left == 0 || n < a.f.At {
			continue
		}
		if a.left > 0 {
			a.left--
		}
		fw.injected++
		return &a.f
	}
	return nil
}

func diskErr(kind string) error {
	switch kind {
	case DiskFull:
		return fmt.Errorf("faultsim: injected disk full: %w", syscall.ENOSPC)
	default:
		return fmt.Errorf("faultsim: injected I/O error: %w", syscall.EIO)
	}
}

// Write passes through to the inner writer unless a write fault is due.
// A short write commits half the buffer for real — the torn-record shape
// a crash mid-append leaves on disk — before reporting failure.
func (fw *FaultyWriter) Write(b []byte) (int, error) {
	fw.writes++
	f := fw.pick("write", fw.writes)
	if f == nil {
		return fw.inner.Write(b)
	}
	if f.Kind == DiskShort {
		n, err := fw.inner.Write(b[:len(b)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return 0, diskErr(f.Kind)
}

// Sync passes through unless a sync fault is due.
func (fw *FaultyWriter) Sync() error {
	fw.syncs++
	if f := fw.pick("sync", fw.syncs); f != nil {
		return diskErr(f.Kind)
	}
	return fw.inner.Sync()
}
