package faultsim

import (
	"errors"
	"testing"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
)

func TestParsePlan(t *testing.T) {
	spec := `{
		"seed": 42,
		"watchdog": {"interval": "100ms", "hang_timeout": 0.5},
		"retry": {"max_attempts": 4, "backoff": "50us"},
		"faults": [
			{"type": "cuda", "rank": 1, "at": "100ms", "code": "ecc", "count": 2},
			{"type": "cuda", "rank": -1, "code": "launch", "prob": 0.1},
			{"type": "straggler", "rank": 3, "factor": 1.8},
			{"type": "rank-death", "rank": 2, "at": "250ms"},
			{"type": "monitor-panic", "rank": 0, "at": "10ms"}
		]
	}`
	p, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Faults) != 5 {
		t.Fatalf("plan = %+v", p)
	}
	if got := p.Watchdog.IntervalOrDefault(); got != 100*time.Millisecond {
		t.Errorf("interval = %v", got)
	}
	if got := p.Watchdog.HangTimeoutOrDefault(); got != 500*time.Millisecond {
		t.Errorf("hang timeout from float seconds = %v", got)
	}
	if got := p.SkewFor(3); got != 1.8 {
		t.Errorf("SkewFor(3) = %v", got)
	}
	if got := p.SkewFor(0); got != 1.0 {
		t.Errorf("SkewFor(0) = %v", got)
	}
	at, ok := p.DeathFor(2)
	if !ok || at != 250*time.Millisecond {
		t.Errorf("DeathFor(2) = %v, %v", at, ok)
	}
	if _, ok := p.DeathFor(1); ok {
		t.Error("DeathFor(1) found a death")
	}
	if got := p.MonitorPanicsFor(0); len(got) != 1 || got[0] != 10*time.Millisecond {
		t.Errorf("MonitorPanicsFor(0) = %v", got)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		`{"faults": [{"type": "nope", "rank": 0}]}`,
		`{"faults": [{"type": "cuda", "rank": 0, "code": "bogus"}]}`,
		`{"faults": [{"type": "cuda", "rank": 0, "code": "ecc", "prob": 2}]}`,
		`{"faults": [{"type": "straggler", "rank": 0}]}`,
		`{"faults": [{"type": "cuda", "rank": -2, "code": "ecc"}]}`,
		`{"unknown_field": 1}`,
		`{"faults": [{"type": "cuda", "rank": 0, "code": "ecc", "at": "xyz"}]}`,
	}
	for _, spec := range bad {
		if _, err := Parse([]byte(spec)); err == nil {
			t.Errorf("Parse accepted %s", spec)
		}
	}
}

func TestDurRoundTrip(t *testing.T) {
	var d Dur
	if err := d.UnmarshalJSON([]byte(`"1.5s"`)); err != nil || d.D() != 1500*time.Millisecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`0.25`)); err != nil || d.D() != 250*time.Millisecond {
		t.Fatalf("seconds form: %v %v", d, err)
	}
	b, err := Dur(250 * time.Millisecond).MarshalJSON()
	if err != nil || string(b) != `"250ms"` {
		t.Fatalf("marshal: %s %v", b, err)
	}
}

// TestInjectorDeterminism checks two injectors built from the same plan
// deliver identical fault streams, and different ranks draw independent
// streams.
func TestInjectorDeterminism(t *testing.T) {
	p, err := Parse([]byte(`{"seed": 7, "faults": [
		{"type": "cuda", "rank": -1, "code": "ecc", "prob": 0.3},
		{"type": "cuda", "rank": -1, "at": "50ms", "code": "launch", "call": "cudaLaunch", "count": 1}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	calls := []string{"cudaMemcpy", "cudaLaunch", "cudaMemset", "cudaLaunch", "cudaMalloc"}
	stream := func(rank int) []string {
		in := p.Injector(rank)
		var out []string
		for i, c := range calls {
			now := time.Duration(i*20) * time.Millisecond
			if err := in.Inject(c, now); err != nil {
				out = append(out, err.Error())
			} else {
				out = append(out, "")
			}
		}
		return out
	}
	a, b := stream(1), stream(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank 1 streams diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// The targeted launch fault fires exactly once for every rank: at the
	// first cudaLaunch at/after 50ms.
	for rank := 0; rank < 4; rank++ {
		in := p.Injector(rank)
		if err := in.Inject("cudaLaunch", 10*time.Millisecond); errors.Is(err, cudart.ErrLaunchFailure) {
			t.Errorf("rank %d: launch fault fired before its time", rank)
		}
		if err := in.Inject("cudaMemcpy", 60*time.Millisecond); errors.Is(err, cudart.ErrLaunchFailure) {
			t.Errorf("rank %d: launch fault fired on wrong call", rank)
		}
		if err := in.Inject("cudaLaunch", 60*time.Millisecond); !errors.Is(err, cudart.ErrLaunchFailure) {
			t.Errorf("rank %d: launch fault missing: %v", rank, err)
		}
		if err := in.Inject("cudaLaunch", 70*time.Millisecond); errors.Is(err, cudart.ErrLaunchFailure) {
			t.Errorf("rank %d: one-shot fault fired twice", rank)
		}
	}
}

// TestInjectorDeviceLost checks the loud (fail-fast) device loss: once
// the device is lost, every later call fast-fails with the sticky error.
func TestInjectorDeviceLost(t *testing.T) {
	p, err := Parse([]byte(`{"faults": [
		{"type": "cuda", "rank": 0, "at": "10ms", "code": "device-lost"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector(0)
	hung := 0
	in.OnDeviceLost(func() { hung++ })
	if err := in.Inject("cudaMemcpy", 5*time.Millisecond); err != nil {
		t.Fatalf("fault before its time: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := in.Inject("cudaMemcpy", 20*time.Millisecond); !errors.Is(err, cudart.ErrDeviceLost) {
			t.Fatalf("call %d after loss = %v", i, err)
		}
	}
	if hung != 0 {
		t.Fatalf("OnDeviceLost fired %d times without hang mode", hung)
	}
	if in.Injected() != 3 {
		t.Fatalf("Injected() = %d", in.Injected())
	}
}

// TestInjectorDeviceLostHang checks the silent (hanging) device loss:
// the triggering call fails and fires the hang callback once; later
// calls pass the injection gate untouched so they can strand on the
// dead device's never-firing completions.
func TestInjectorDeviceLostHang(t *testing.T) {
	p, err := Parse([]byte(`{"faults": [
		{"type": "cuda", "rank": 0, "at": "10ms", "code": "device-lost", "hang": true}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector(0)
	hung := 0
	in.OnDeviceLost(func() { hung++ })
	if err := in.Inject("cudaMemcpy", 20*time.Millisecond); !errors.Is(err, cudart.ErrDeviceLost) {
		t.Fatalf("triggering call = %v, want device lost", err)
	}
	for i := 0; i < 3; i++ {
		if err := in.Inject("cudaMemcpy", 25*time.Millisecond); err != nil {
			t.Fatalf("call %d after silent loss = %v, want nil (call should hang, not fail)", i, err)
		}
	}
	if hung != 1 {
		t.Fatalf("OnDeviceLost fired %d times, want 1", hung)
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1 (only the triggering call counts)", in.Injected())
	}
}

// TestRetryPolicyBackoff checks the capped exponential schedule.
func TestRetryPolicyBackoff(t *testing.T) {
	r := RetryPolicy{Backoff: Dur(100 * time.Microsecond), MaxBackoff: Dur(500 * time.Microsecond)}
	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond}
	for i, w := range want {
		if got := r.BackoffFor(i); got != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", i, got, w)
		}
	}
	if (RetryPolicy{}).Attempts() != 3 {
		t.Error("default attempts != 3")
	}
}

// flaky is a minimal cudart.API stub failing the first n Memcpy calls.
type flaky struct {
	cudart.API // panics if an unstubbed method is hit
	failLeft   int
	calls      int
	cleared    int
	sticky     error
}

func (f *flaky) Memcpy(dst, src cudart.Ptr, n int64, kind cudart.MemcpyKind) error {
	f.calls++
	if f.failLeft > 0 {
		f.failLeft--
		f.sticky = &cudart.Error{Code: cudart.CodeECCUncorrectable, Detail: "injected"}
		return f.sticky
	}
	return nil
}

func (f *flaky) GetLastError() error {
	f.cleared++
	err := f.sticky
	f.sticky = nil
	return err
}

// TestResilientRetries checks retry-until-success, give-up on budget
// exhaustion, non-retryable passthrough, and backoff consuming virtual
// time.
func TestResilientRetries(t *testing.T) {
	eng := des.NewEngine()
	eng.Spawn("app", func(p *des.Proc) {
		f := &flaky{failLeft: 2}
		r := NewResilient(f, p, RetryPolicy{MaxAttempts: 3, Backoff: Dur(time.Millisecond), MaxBackoff: Dur(time.Second)})
		start := p.Now()
		if err := r.Memcpy(cudart.Ptr{}, cudart.Ptr{}, 8, cudart.MemcpyHostToDevice); err != nil {
			t.Fatalf("retry did not recover: %v", err)
		}
		if f.calls != 3 || r.Retries() != 2 || r.GaveUp() != 0 {
			t.Fatalf("calls=%d retries=%d gaveUp=%d", f.calls, r.Retries(), r.GaveUp())
		}
		if f.cleared != 1 || f.sticky != nil {
			t.Fatalf("sticky error not consumed after successful retry (cleared=%d)", f.cleared)
		}
		// 1ms + 2ms of backoff.
		if got := p.Now() - start; got != 3*time.Millisecond {
			t.Fatalf("backoff consumed %v of virtual time, want 3ms", got)
		}

		// Budget exhaustion.
		f2 := &flaky{failLeft: 10}
		r2 := NewResilient(f2, p, RetryPolicy{MaxAttempts: 3})
		err := r2.Memcpy(cudart.Ptr{}, cudart.Ptr{}, 8, cudart.MemcpyHostToDevice)
		if !errors.Is(err, cudart.ErrECCUncorrectable) {
			t.Fatalf("exhausted retry = %v", err)
		}
		if f2.calls != 3 || r2.GaveUp() != 1 {
			t.Fatalf("calls=%d gaveUp=%d", f2.calls, r2.GaveUp())
		}

		// Disabled policy: single attempt.
		f3 := &flaky{failLeft: 1}
		r3 := NewResilient(f3, p, RetryPolicy{Disable: true})
		if err := r3.Memcpy(cudart.Ptr{}, cudart.Ptr{}, 8, cudart.MemcpyHostToDevice); err == nil {
			t.Fatal("disabled retry recovered")
		}
		if f3.calls != 1 {
			t.Fatalf("disabled retry made %d calls", f3.calls)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
