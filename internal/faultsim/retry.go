package faultsim

import (
	"errors"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
)

// Retryable reports whether an error is a transient CUDA fault worth
// retrying: ECC uncorrectable and launch failure. Device loss is never
// retryable.
func Retryable(err error) bool {
	return errors.Is(err, cudart.ErrECCUncorrectable) ||
		errors.Is(err, cudart.ErrLaunchFailure)
}

// Resilient decorates a cudart.API with transparent retry of transient
// faults, using capped exponential backoff in virtual time. It sits
// *outside* the monitoring decorator (app → Resilient → ipmcuda.Monitor
// → Runtime), so every attempt — including the failing ones — is
// observed and counted by IPM, exactly as a retry macro in application
// code would be.
//
// Only idempotent operations are retried. In particular the raw
// ConfigureCall/SetupArgument/Launch triple passes through untouched
// (a failed Launch consumes its configuration, so blind retry cannot
// succeed); LaunchKernel, which re-expands the whole triple, is retried.
type Resilient struct {
	inner  cudart.API
	proc   *des.Proc
	policy RetryPolicy

	retries int64
	gaveUp  int64
}

var _ cudart.API = (*Resilient)(nil)

// NewResilient wraps api with the retry policy. proc supplies virtual
// time for backoff sleeps.
func NewResilient(api cudart.API, proc *des.Proc, policy RetryPolicy) *Resilient {
	return &Resilient{inner: api, proc: proc, policy: policy}
}

// Retries returns the number of retry attempts performed.
func (r *Resilient) Retries() int64 { return r.retries }

// GaveUp returns the number of calls that still failed after exhausting
// the attempt budget.
func (r *Resilient) GaveUp() int64 { return r.gaveUp }

// do runs fn, retrying transient failures with capped backoff. On a
// successful retry the sticky error left behind by the failed attempts
// is consumed, so the application does not later observe a stale fault.
func (r *Resilient) do(fn func() error) error {
	err := fn()
	if r.policy.Disable {
		return err
	}
	attempt := 0
	for err != nil && Retryable(err) && attempt < r.policy.Attempts()-1 {
		r.retries++
		r.proc.Sleep(r.policy.BackoffFor(attempt))
		attempt++
		err = fn()
	}
	if err != nil {
		if Retryable(err) {
			r.gaveUp++
		}
		return err
	}
	if attempt > 0 {
		r.inner.GetLastError()
	}
	return nil
}

// Memory management.

func (r *Resilient) Malloc(n int64) (cudart.DevPtr, error) {
	var p cudart.DevPtr
	err := r.do(func() error { var e error; p, e = r.inner.Malloc(n); return e })
	return p, err
}

func (r *Resilient) Free(p cudart.DevPtr) error { return r.inner.Free(p) }

func (r *Resilient) HostAlloc(n int64) ([]byte, error) {
	var b []byte
	err := r.do(func() error { var e error; b, e = r.inner.HostAlloc(n); return e })
	return b, err
}

func (r *Resilient) Memcpy(dst, src cudart.Ptr, n int64, kind cudart.MemcpyKind) error {
	return r.do(func() error { return r.inner.Memcpy(dst, src, n, kind) })
}

func (r *Resilient) MemcpyAsync(dst, src cudart.Ptr, n int64, kind cudart.MemcpyKind, s cudart.Stream) error {
	return r.do(func() error { return r.inner.MemcpyAsync(dst, src, n, kind, s) })
}

func (r *Resilient) MemcpyToSymbol(symbol string, src []byte) error {
	return r.do(func() error { return r.inner.MemcpyToSymbol(symbol, src) })
}

func (r *Resilient) Memset(p cudart.DevPtr, value byte, n int64) error {
	return r.do(func() error { return r.inner.Memset(p, value, n) })
}

func (r *Resilient) MemGetInfo() (free, total int64, err error) {
	err = r.do(func() error { var e error; free, total, e = r.inner.MemGetInfo(); return e })
	return free, total, err
}

// Kernel launch.

func (r *Resilient) ConfigureCall(grid, block cudart.Dim3, sharedMem int64, s cudart.Stream) error {
	return r.inner.ConfigureCall(grid, block, sharedMem, s)
}

func (r *Resilient) SetupArgument(arg any, size, offset int64) error {
	return r.inner.SetupArgument(arg, size, offset)
}

func (r *Resilient) Launch(fn *cudart.Func) error { return r.inner.Launch(fn) }

func (r *Resilient) LaunchKernel(fn *cudart.Func, grid, block cudart.Dim3, s cudart.Stream, args ...any) error {
	return r.do(func() error { return r.inner.LaunchKernel(fn, grid, block, s, args...) })
}

// Streams.

func (r *Resilient) StreamCreate() (cudart.Stream, error) {
	var s cudart.Stream
	err := r.do(func() error { var e error; s, e = r.inner.StreamCreate(); return e })
	return s, err
}

func (r *Resilient) StreamDestroy(s cudart.Stream) error { return r.inner.StreamDestroy(s) }

func (r *Resilient) StreamSynchronize(s cudart.Stream) error {
	return r.do(func() error { return r.inner.StreamSynchronize(s) })
}

// Events.

func (r *Resilient) EventCreate() (cudart.Event, error) {
	var ev cudart.Event
	err := r.do(func() error { var e error; ev, e = r.inner.EventCreate(); return e })
	return ev, err
}

func (r *Resilient) EventRecord(ev cudart.Event, s cudart.Stream) error {
	return r.do(func() error { return r.inner.EventRecord(ev, s) })
}

func (r *Resilient) EventQuery(ev cudart.Event) error { return r.inner.EventQuery(ev) }

func (r *Resilient) EventSynchronize(ev cudart.Event) error {
	return r.do(func() error { return r.inner.EventSynchronize(ev) })
}

func (r *Resilient) EventElapsedTime(start, stop cudart.Event) (time.Duration, error) {
	return r.inner.EventElapsedTime(start, stop)
}

func (r *Resilient) EventDestroy(ev cudart.Event) error { return r.inner.EventDestroy(ev) }

// Device management and synchronisation.

func (r *Resilient) ThreadSynchronize() error {
	return r.do(func() error { return r.inner.ThreadSynchronize() })
}

func (r *Resilient) GetDeviceCount() (int, error) { return r.inner.GetDeviceCount() }

func (r *Resilient) GetDeviceProperties() (cudart.DeviceProp, error) {
	return r.inner.GetDeviceProperties()
}

func (r *Resilient) GetDevice() (int, error) { return r.inner.GetDevice() }

func (r *Resilient) SetDevice(dev int) error { return r.inner.SetDevice(dev) }

func (r *Resilient) GetLastError() error { return r.inner.GetLastError() }

func (r *Resilient) PeekAtLastError() error { return r.inner.PeekAtLastError() }
