package faultsim

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"syscall"
	"testing"
)

// memWS is an in-memory WriteSyncer recording what reached the "disk".
type memWS struct {
	buf   bytes.Buffer
	syncs int
}

func (m *memWS) Write(b []byte) (int, error) { return m.buf.Write(b) }
func (m *memWS) Sync() error                 { m.syncs++; return nil }

func TestDiskPlanValidation(t *testing.T) {
	bad := []string{
		`{"faults":[{"op":"read","at":1,"kind":"eio"}]}`,
		`{"faults":[{"op":"write","at":0,"kind":"eio"}]}`,
		`{"faults":[{"op":"write","at":1,"kind":"rot"}]}`,
		`{"faults":[{"op":"sync","at":1,"kind":"short"}]}`,
		`{"faults":[{"op":"write","at":1,"kind":"eio","count":-2}]}`,
		`not json`,
	}
	for _, s := range bad {
		if _, err := ParseDiskPlan([]byte(s)); err == nil {
			t.Errorf("plan %s parsed without error", s)
		}
	}
	good := `{"comment":"c","faults":[{"op":"write","at":3,"kind":"short"},{"op":"sync","at":1,"kind":"full","count":-1}]}`
	if _, err := ParseDiskPlan([]byte(good)); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestFaultyWriterDeterministicFiring(t *testing.T) {
	plan, err := ParseDiskPlan([]byte(`{"faults":[{"op":"write","at":3,"kind":"eio"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		m := &memWS{}
		fw := plan.Wrap(m)
		for i := 1; i <= 5; i++ {
			_, err := fw.Write([]byte("x"))
			if i == 3 {
				if !errors.Is(err, syscall.EIO) {
					t.Fatalf("run %d write %d: err = %v, want EIO", run, i, err)
				}
			} else if err != nil {
				t.Fatalf("run %d write %d failed: %v", run, i, err)
			}
		}
		if got := m.buf.String(); got != "xxxx" {
			t.Errorf("run %d: disk holds %q, want 4 writes through", run, got)
		}
		if fw.Injected() != 1 {
			t.Errorf("run %d: injected = %d, want 1", run, fw.Injected())
		}
	}
}

func TestFaultyWriterShortWriteCommitsHalf(t *testing.T) {
	plan, err := ParseDiskPlan([]byte(`{"faults":[{"op":"write","at":1,"kind":"short"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	m := &memWS{}
	fw := plan.Wrap(m)
	n, werr := fw.Write([]byte("abcdefgh"))
	if werr != io.ErrShortWrite || n != 4 {
		t.Fatalf("short write: n=%d err=%v, want 4, ErrShortWrite", n, werr)
	}
	if m.buf.String() != "abcd" {
		t.Errorf("disk holds %q, want the torn half %q", m.buf.String(), "abcd")
	}
}

func TestFaultyWriterStickySyncFull(t *testing.T) {
	plan, err := ParseDiskPlan([]byte(`{"faults":[{"op":"sync","at":2,"kind":"full","count":-1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	m := &memWS{}
	fw := plan.Wrap(m)
	if err := fw.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	for i := 2; i <= 4; i++ {
		if err := fw.Sync(); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("sync %d: err = %v, want sticky ENOSPC", i, err)
		}
	}
	if m.syncs != 1 {
		t.Errorf("inner syncs = %d, want 1", m.syncs)
	}
}

// TestSampleDiskPlansParse keeps the shipped disk-fault recipes valid:
// every testdata/faults/disk_*.json must load.
func TestSampleDiskPlansParse(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "testdata", "faults", "disk_*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no sample disk plans found: %v", err)
	}
	for _, m := range matches {
		p, err := LoadDiskPlan(m)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if len(p.Faults) == 0 || p.Comment == "" {
			t.Errorf("%s: sample plans must carry faults and a comment", m)
		}
	}
}
