package faultsim

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
)

func TestParsePeerPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"valid", `{"faults":[{"host":"127.0.0.1:9001","at":1,"kind":"unreachable"}]}`, true},
		{"wildcard sticky", `{"faults":[{"host":"*","at":3,"kind":"unreachable","count":-1}]}`, true},
		{"empty host", `{"faults":[{"host":"","at":1,"kind":"unreachable"}]}`, false},
		{"bad kind", `{"faults":[{"host":"h","at":1,"kind":"slow"}]}`, false},
		{"bad at", `{"faults":[{"host":"h","at":0,"kind":"unreachable"}]}`, false},
		{"bad count", `{"faults":[{"host":"h","at":1,"kind":"unreachable","count":-2}]}`, false},
		{"bad json", `{`, false},
	}
	for _, tc := range cases {
		_, err := ParsePeerPlan([]byte(tc.json))
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
		}
	}
}

func TestFaultyTransportInjectsByHostAndIndex(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	host := srv.Listener.Addr().String()

	plan, err := ParsePeerPlan([]byte(`{"faults":[
		{"host":"` + host + `","at":2,"kind":"unreachable"},
		{"host":"other:1","at":1,"kind":"unreachable","count":-1}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	ft := plan.Wrap(nil)
	client := &http.Client{Transport: ft}

	// Request 1 to the server passes, request 2 is refused, request 3
	// passes again (single occurrence consumed).
	for i, wantErr := range []bool{false, true, false} {
		resp, err := client.Get(srv.URL + "/x")
		if wantErr {
			if err == nil {
				resp.Body.Close()
				t.Fatalf("request %d: expected injected outage", i+1)
			}
			if !errors.Is(err, syscall.ECONNREFUSED) {
				t.Fatalf("request %d: error = %v, want ECONNREFUSED", i+1, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d: %v", i+1, err)
		}
		resp.Body.Close()
	}
	if got := ft.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1 (the other:1 fault must not fire)", got)
	}
}

func TestFaultyTransportStickyWildcard(t *testing.T) {
	plan, err := ParsePeerPlan([]byte(`{"faults":[{"host":"*","at":1,"kind":"unreachable","count":-1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: plan.Wrap(nil)}
	for i := 0; i < 3; i++ {
		if _, err := client.Get("http://192.0.2.1:1/x"); err == nil {
			t.Fatalf("request %d: sticky wildcard outage did not fire", i+1)
		}
	}
}
