// Package faultsim injects deterministic, seeded faults into the
// simulation substrate: CUDA errors (transient and sticky) via the
// cudart injection seam, straggler nodes via a per-rank clock-skew
// multiplier, rank death, and monitor-internal panics.
//
// Everything is keyed to virtual time plus a seeded per-rank PRNG —
// never the wall clock — so any fault scenario is byte-identical across
// runs and across `-j` worker counts. A plan is a JSON document loaded
// with LoadFile (the `-faults` flag of cmd/ipmrun):
//
//	{
//	  "seed": 42,
//	  "faults": [
//	    {"type": "cuda", "rank": 1, "at": "100ms", "code": "ecc", "count": 2},
//	    {"type": "straggler", "rank": 3, "factor": 1.8},
//	    {"type": "rank-death", "rank": 2, "at": "250ms"}
//	  ]
//	}
package faultsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"
)

// Dur is a time.Duration that unmarshals from either a Go duration
// string ("1.5s", "250ms") or a bare number of seconds, and marshals as
// a duration string.
type Dur time.Duration

// D returns the underlying duration.
func (d Dur) D() time.Duration { return time.Duration(d) }

func (d Dur) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as a string ("250ms").
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings or float seconds.
func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faultsim: bad duration %q: %v", s, err)
		}
		*d = Dur(parsed)
		return nil
	}
	secs, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("faultsim: bad duration %s", b)
	}
	*d = Dur(time.Duration(secs * float64(time.Second)))
	return nil
}

// Fault kinds.
const (
	KindCUDA         = "cuda"          // inject a CUDA error code
	KindStraggler    = "straggler"     // multiply a rank's host compute time
	KindRankDeath    = "rank-death"    // kill a rank at a virtual time
	KindMonitorPanic = "monitor-panic" // panic inside the monitor (guard test)
)

// CUDA fault codes (the Code field of a "cuda" fault).
const (
	CodeECC        = "ecc"         // cudaErrorECCUncorrectable (transient, retryable)
	CodeLaunch     = "launch"      // cudaErrorLaunchFailure (transient, retryable)
	CodeDeviceLost = "device-lost" // cudaErrorDeviceLost (sticky, fatal)
)

// AllRanks as a Fault.Rank targets every rank.
const AllRanks = -1

// Fault is one injected failure. Which fields matter depends on Type:
//
//	cuda:          Rank, At, Code, Call (optional symbol filter),
//	               Count (occurrences; 0 = once, unless Prob set),
//	               Prob (per-call probability; with Count 0 = unbounded),
//	               Hang (device-lost only: the triggering call fails loudly,
//	               then the device dies silently — later calls pass the
//	               injection gate and strand on completions that never
//	               fire, producing a genuine hung stream for the watchdog;
//	               without Hang every later call fast-fails with the
//	               sticky device-lost error instead)
//	straggler:     Rank, Factor (compute-time multiplier, e.g. 1.8)
//	rank-death:    Rank, At
//	monitor-panic: Rank, At
type Fault struct {
	Type   string  `json:"type"`
	Rank   int     `json:"rank"`
	At     Dur     `json:"at,omitempty"`
	Code   string  `json:"code,omitempty"`
	Call   string  `json:"call,omitempty"`
	Count  int     `json:"count,omitempty"`
	Prob   float64 `json:"prob,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Hang   bool    `json:"hang,omitempty"`
}

// Watchdog configures the cluster harness's virtual-time hang detector.
type Watchdog struct {
	Disable     bool `json:"disable,omitempty"`
	Interval    Dur  `json:"interval,omitempty"`     // default 250ms
	HangTimeout Dur  `json:"hang_timeout,omitempty"` // default 2s
}

// IntervalOrDefault returns the polling interval.
func (w Watchdog) IntervalOrDefault() time.Duration {
	if w.Interval > 0 {
		return w.Interval.D()
	}
	return 250 * time.Millisecond
}

// HangTimeoutOrDefault returns the no-progress window after which a rank
// is declared hung.
func (w Watchdog) HangTimeoutOrDefault() time.Duration {
	if w.HangTimeout > 0 {
		return w.HangTimeout.D()
	}
	return 2 * time.Second
}

// RetryPolicy configures transparent retry of transient CUDA faults.
type RetryPolicy struct {
	Disable     bool `json:"disable,omitempty"`
	MaxAttempts int  `json:"max_attempts,omitempty"` // default 3
	Backoff     Dur  `json:"backoff,omitempty"`      // default 100µs
	MaxBackoff  Dur  `json:"max_backoff,omitempty"`  // default 10ms
}

// Attempts returns the total attempt budget per call.
func (r RetryPolicy) Attempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 3
}

// BackoffFor returns the capped exponential delay before retry attempt
// (attempt 0 is the first retry).
func (r RetryPolicy) BackoffFor(attempt int) time.Duration {
	base := r.Backoff.D()
	if base <= 0 {
		base = 100 * time.Microsecond
	}
	maxB := r.MaxBackoff.D()
	if maxB <= 0 {
		maxB = 10 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= maxB {
			return maxB
		}
	}
	if d > maxB {
		return maxB
	}
	return d
}

// Plan is a complete fault scenario. The zero plan injects nothing.
type Plan struct {
	Seed     int64       `json:"seed"`
	Watchdog Watchdog    `json:"watchdog,omitempty"`
	Retry    RetryPolicy `json:"retry,omitempty"`
	Faults   []Fault     `json:"faults"`
}

// Parse decodes a JSON plan, rejecting unknown fields, and validates it.
func Parse(b []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faultsim: parse plan: %v", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile reads and parses a plan file.
func LoadFile(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultsim: %v", err)
	}
	return Parse(b)
}

// Validate checks the plan for structural errors.
func (p *Plan) Validate() error {
	for i, f := range p.Faults {
		where := fmt.Sprintf("faultsim: fault %d (%s)", i, f.Type)
		switch f.Type {
		case KindCUDA:
			switch f.Code {
			case CodeECC, CodeLaunch, CodeDeviceLost:
			default:
				return fmt.Errorf("%s: unknown code %q", where, f.Code)
			}
			if f.Prob < 0 || f.Prob > 1 {
				return fmt.Errorf("%s: prob %v out of [0,1]", where, f.Prob)
			}
			if f.Count < 0 {
				return fmt.Errorf("%s: negative count", where)
			}
		case KindStraggler:
			if f.Factor <= 0 {
				return fmt.Errorf("%s: factor must be > 0, got %v", where, f.Factor)
			}
		case KindRankDeath, KindMonitorPanic:
			if f.At < 0 {
				return fmt.Errorf("%s: negative time", where)
			}
		default:
			return fmt.Errorf("%s: unknown fault type", where)
		}
		if f.Rank < AllRanks {
			return fmt.Errorf("%s: bad rank %d", where, f.Rank)
		}
	}
	return nil
}

// appliesTo reports whether the fault targets the rank.
func (f Fault) appliesTo(rank int) bool {
	return f.Rank == AllRanks || f.Rank == rank
}

// SkewFor returns the rank's compute-time multiplier: the product of all
// straggler factors targeting it, or 1 when none do.
func (p *Plan) SkewFor(rank int) float64 {
	skew := 1.0
	for _, f := range p.Faults {
		if f.Type == KindStraggler && f.appliesTo(rank) {
			skew *= f.Factor
		}
	}
	return skew
}

// DeathFor returns the earliest scheduled death time for the rank.
func (p *Plan) DeathFor(rank int) (time.Duration, bool) {
	var at time.Duration
	found := false
	for _, f := range p.Faults {
		if f.Type != KindRankDeath || !f.appliesTo(rank) {
			continue
		}
		if !found || f.At.D() < at {
			at = f.At.D()
			found = true
		}
	}
	return at, found
}

// MonitorPanicsFor returns the scheduled monitor-panic times for the
// rank, in plan order.
func (p *Plan) MonitorPanicsFor(rank int) []time.Duration {
	var out []time.Duration
	for _, f := range p.Faults {
		if f.Type == KindMonitorPanic && f.appliesTo(rank) {
			out = append(out, f.At.D())
		}
	}
	return out
}
