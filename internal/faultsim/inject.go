package faultsim

import (
	"math/rand"
	"time"

	"ipmgo/internal/cudart"
)

// armedFault is one CUDA fault with its remaining occurrence budget.
type armedFault struct {
	f    Fault
	err  error
	left int // -1 = unbounded
}

// Injector produces the CUDA error stream for one rank. It plugs into
// cudart.Options.Inject and is fully deterministic: randomness comes
// from a PRNG seeded by (plan seed, rank), and fault arming is keyed to
// the virtual-time argument of each injection query.
type Injector struct {
	rank  int
	rng   *rand.Rand
	armed []armedFault

	lost         bool
	lostSilent   bool // Hang mode: dead device swallows calls instead of failing them
	lostErr      error
	onDeviceLost func()

	injected int64
}

// mix folds the rank into the plan seed (splitmix64-style) so every rank
// draws an independent, reproducible stream.
func mix(seed int64, rank int) int64 {
	z := uint64(seed) + uint64(rank+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Injector builds the per-rank injector for the plan. Deterministic
// (scheduled) faults are armed ahead of probabilistic ones so a random
// draw can never mask a fault the plan promises at a specific time.
func (p *Plan) Injector(rank int) *Injector {
	in := &Injector{rank: rank, rng: rand.New(rand.NewSource(mix(p.Seed, rank)))}
	ordered := make([]Fault, 0, len(p.Faults))
	for _, f := range p.Faults {
		if f.Prob == 0 {
			ordered = append(ordered, f)
		}
	}
	for _, f := range p.Faults {
		if f.Prob > 0 {
			ordered = append(ordered, f)
		}
	}
	for _, f := range ordered {
		if f.Type != KindCUDA || !f.appliesTo(rank) {
			continue
		}
		var err error
		left := f.Count
		switch f.Code {
		case CodeECC:
			err = &cudart.Error{Code: cudart.CodeECCUncorrectable, Detail: "injected"}
		case CodeLaunch:
			err = &cudart.Error{Code: cudart.CodeLaunchFailure, Detail: "injected"}
		case CodeDeviceLost:
			err = &cudart.Error{Code: cudart.CodeDeviceLost, Detail: "injected"}
			left = -1 // device loss is sticky: every later call fails
		}
		if left == 0 {
			if f.Prob > 0 {
				left = -1 // probabilistic without a count: unbounded
			} else {
				left = 1 // plain one-shot
			}
		}
		in.armed = append(in.armed, armedFault{f: f, err: err, left: left})
	}
	return in
}

// OnDeviceLost registers a callback run once when a device-lost fault
// with Hang set fires — the cluster harness uses it to mark the gpusim
// device lost so in-flight work hangs.
func (in *Injector) OnDeviceLost(fn func()) { in.onDeviceLost = fn }

// Injected returns the number of faults delivered so far.
func (in *Injector) Injected() int64 { return in.injected }

// Inject implements cudart.Options.Inject: called before every eligible
// runtime call with the symbol name and current virtual time; a non-nil
// return fails the call with that error.
func (in *Injector) Inject(call string, now time.Duration) error {
	if in.lost {
		if in.lostSilent {
			// Hanging loss: later calls are let through to the runtime,
			// where they strand on a device whose completions never fire.
			// Fast-failing them here would let the application notice and
			// route around the loss — the opposite of a hung stream.
			return nil
		}
		in.injected++
		return in.lostErr
	}
	for i := range in.armed {
		a := &in.armed[i]
		if a.left == 0 || now < a.f.At.D() {
			continue
		}
		if a.f.Call != "" && a.f.Call != call {
			continue
		}
		if a.f.Prob > 0 && in.rng.Float64() >= a.f.Prob {
			continue
		}
		if a.left > 0 {
			a.left--
		}
		in.injected++
		if a.f.Code == CodeDeviceLost {
			in.lost = true
			in.lostErr = a.err
			if a.f.Hang {
				in.lostSilent = true
				if in.onDeviceLost != nil {
					in.onDeviceLost()
				}
			}
		}
		return a.err
	}
	return nil
}
