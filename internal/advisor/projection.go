package advisor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ipmgo/internal/ipm"
)

// Projection is a what-if estimate: the wallclock the job would reach if
// one pathology the profile exposes were fixed — the "performance
// modeling" half of the paper's third future-work item. Estimates are
// first-order (Amdahl-style): the targeted time is removed from the
// critical path, everything else is assumed unchanged.
type Projection struct {
	Scenario  string
	Current   time.Duration // per-job wallclock now
	Projected time.Duration // estimated wallclock after the fix
	Speedup   float64
	Detail    string
}

// Projections evaluates the standard what-if scenarios against the
// profile, sorted by descending speedup. Scenarios that do not apply
// (nothing to reclaim) are omitted.
func Projections(jp *ipm.JobProfile) []Projection {
	wall := jp.Wallclock()
	if wall == 0 {
		return nil
	}
	nt := time.Duration(jp.NTasks())
	var out []Projection
	add := func(scenario string, reclaimedPerRank time.Duration, detail string) {
		if reclaimedPerRank <= 0 {
			return
		}
		projected := wall - reclaimedPerRank
		if projected < wall/100 {
			projected = wall / 100
		}
		out = append(out, Projection{
			Scenario:  scenario,
			Current:   wall,
			Projected: projected,
			Speedup:   float64(wall) / float64(projected),
			Detail:    detail,
		})
	}

	// 1. Overlap the implicit host blocking (Section III-C's tuning
	// opportunity): @CUDA_HOST_IDLE disappears from the host timeline.
	idle := jp.FuncSpread(ipm.HostIdleName)
	add("overlap-blocking-transfers", idle.Avg,
		fmt.Sprintf("@CUDA_HOST_IDLE averages %.2fs per rank; asynchronous transfers reclaim it", idle.Avg.Seconds()))

	// 2. Keep operands device-resident: the thunking transfers vanish
	// (the PARATEC direct-wrapper scenario).
	transfers := jp.FuncSpread("cublasSetMatrix").Total + jp.FuncSpread("cublasGetMatrix").Total
	add("device-resident-blas", transfers/nt,
		fmt.Sprintf("cublasSet/GetMatrix average %.2fs per rank; direct wrappers avoid re-transfers",
			(transfers/nt).Seconds()))

	// 3. Perfect load balance: every imbalanced function shrinks from the
	// max-rank time to the average (the critical path follows the max).
	var reclaim time.Duration
	var worst string
	var worstGain time.Duration
	for _, ft := range jp.FuncTotals() {
		if ft.Stats.Total < wall/50 { // ignore noise contributors
			continue
		}
		s := jp.FuncSpread(ft.Name)
		if gain := s.Max - s.Avg; gain > 0 && float64(s.Max) > 1.15*float64(s.Avg) {
			reclaim += gain
			if gain > worstGain {
				worstGain, worst = gain, ft.Name
			}
		}
	}
	if worst != "" {
		add("perfect-load-balance", reclaim,
			fmt.Sprintf("largest contributor %s (max-avg %.2fs)", worst, worstGain.Seconds()))
	}

	// 4. Use the CPU during host-side synchronisation waits (the Amber
	// heterogeneous-implementation suggestion).
	var syncTotal time.Duration
	for _, name := range []string{"cudaThreadSynchronize", "cudaEventSynchronize", "cudaStreamSynchronize"} {
		syncTotal += jp.FuncSpread(name).Total
	}
	add("compute-during-sync", syncTotal/nt,
		fmt.Sprintf("synchronisation waits average %.2fs per rank; a heterogeneous implementation computes through them",
			(syncTotal/nt).Seconds()))

	sort.Slice(out, func(i, j int) bool { return out[i].Speedup > out[j].Speedup })
	return out
}

// FormatProjections renders the projections as text.
func FormatProjections(ps []Projection) string {
	if len(ps) == 0 {
		return "no applicable what-if scenarios\n"
	}
	var sb strings.Builder
	sb.WriteString("What-if projections (first-order estimates):\n")
	for _, p := range ps {
		fmt.Fprintf(&sb, "  %-28s %8.2fs -> %8.2fs (%.2fx)  %s\n",
			p.Scenario, p.Current.Seconds(), p.Projected.Seconds(), p.Speedup, p.Detail)
	}
	return sb.String()
}
