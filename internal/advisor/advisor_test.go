package advisor

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/ipm"
)

// profileWith builds a 2-rank job profile from per-rank entry lists.
func profileWith(wall time.Duration, rank0, rank1 []ipm.Entry) *ipm.JobProfile {
	return ipm.NewJobProfile("app", 2, []ipm.RankProfile{
		{Rank: 0, Host: "n0", Wallclock: wall, Entries: rank0},
		{Rank: 1, Host: "n1", Wallclock: wall, Entries: rank1},
	})
}

func entry(name string, count int64, total time.Duration) ipm.Entry {
	return ipm.Entry{
		Sig:   ipm.Sig{Name: name},
		Stats: ipm.Stats{Count: count, Total: total, Min: total / time.Duration(count), Max: total / time.Duration(count)},
	}
}

func hasRule(fs []Finding, rule string) bool {
	for _, f := range fs {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func TestHostIdleRule(t *testing.T) {
	es := []ipm.Entry{
		entry(ipm.HostIdleName, 10, 3*time.Second),
		entry(ipm.ExecStreamName(0), 10, 4*time.Second),
	}
	jp := profileWith(10*time.Second, es, es)
	fs := Analyze(jp, Thresholds{})
	if !hasRule(fs, "missed-overlap") {
		t.Errorf("missing missed-overlap: %v", fs)
	}
	// Below threshold: no finding.
	quiet := []ipm.Entry{entry(ipm.HostIdleName, 10, 100*time.Millisecond)}
	if fs := Analyze(profileWith(10*time.Second, quiet, quiet), Thresholds{}); hasRule(fs, "missed-overlap") {
		t.Error("missed-overlap fired below threshold")
	}
}

func TestSyncWaitRule(t *testing.T) {
	es := []ipm.Entry{entry("cudaThreadSynchronize", 1000, 2300*time.Millisecond)}
	jp := profileWith(10*time.Second, es, es)
	if fs := Analyze(jp, Thresholds{}); !hasRule(fs, "host-sync-wait") {
		t.Errorf("missing host-sync-wait: %v", fs)
	}
}

func TestThunkingRule(t *testing.T) {
	es := []ipm.Entry{
		entry("cublasSetMatrix", 100, 6*time.Second),
		entry("cublasGetMatrix", 100, 3*time.Second),
		entry(ipm.ExecKernelName(0, "zgemm_kernel"), 100, time.Second),
	}
	jp := profileWith(20*time.Second, es, es)
	fs := Analyze(jp, Thresholds{})
	if !hasRule(fs, "thunking-transfers") {
		t.Errorf("missing thunking-transfers: %v", fs)
	}
	// Balanced transfers: silent.
	ok := []ipm.Entry{
		entry("cublasSetMatrix", 100, time.Second),
		entry(ipm.ExecKernelName(0, "zgemm_kernel"), 100, 5*time.Second),
	}
	if fs := Analyze(profileWith(20*time.Second, ok, ok), Thresholds{}); hasRule(fs, "thunking-transfers") {
		t.Error("thunking-transfers fired on healthy ratio")
	}
}

func TestImbalanceRule(t *testing.T) {
	heavy := entry(ipm.ExecKernelName(0, "ReduceForces"), 100, 4*time.Second)
	light := entry(ipm.ExecKernelName(0, "ReduceForces"), 100, 1*time.Second)
	jp := profileWith(10*time.Second, []ipm.Entry{heavy}, []ipm.Entry{light})
	fs := Analyze(jp, Thresholds{})
	if !hasRule(fs, "load-imbalance") {
		t.Errorf("missing load-imbalance: %v", fs)
	}
	// Tiny contributors are ignored even if imbalanced.
	h2 := entry("MPI_Send", 1, 50*time.Millisecond)
	l2 := entry("MPI_Send", 1, 1*time.Millisecond)
	if fs := Analyze(profileWith(10*time.Second, []ipm.Entry{h2}, []ipm.Entry{l2}), Thresholds{}); hasRule(fs, "load-imbalance") {
		t.Error("load-imbalance fired on a negligible contributor")
	}
	// Single-rank profiles cannot be imbalanced.
	single := ipm.NewJobProfile("app", 1, []ipm.RankProfile{{Rank: 0, Wallclock: time.Second, Entries: []ipm.Entry{heavy}}})
	if fs := Analyze(single, Thresholds{}); hasRule(fs, "load-imbalance") {
		t.Error("load-imbalance fired on single rank")
	}
}

func TestCommShareRule(t *testing.T) {
	es := []ipm.Entry{
		entry("MPI_Gather", 20, 3*time.Second),
		entry("MPI_Allreduce", 20, 500*time.Millisecond),
	}
	jp := profileWith(10*time.Second, es, es)
	fs := Analyze(jp, Thresholds{})
	if !hasRule(fs, "communication-bound") {
		t.Fatalf("missing communication-bound: %v", fs)
	}
	for _, f := range fs {
		if f.Rule == "communication-bound" && !strings.Contains(f.Message, "MPI_Gather") {
			t.Errorf("worst offender not named: %s", f.Message)
		}
	}
}

func TestGPUUtilisationRule(t *testing.T) {
	busy := []ipm.Entry{entry(ipm.ExecStreamName(0), 100, 5*time.Second)}
	jp := profileWith(10*time.Second, busy, busy)
	fs := Analyze(jp, Thresholds{})
	if !hasRule(fs, "gpu-utilisation") || hasRule(fs, "gpu-underutilised") {
		t.Errorf("healthy GPU misreported: %v", fs)
	}
	idle := []ipm.Entry{entry(ipm.ExecStreamName(0), 100, 500*time.Millisecond)}
	fs = Analyze(profileWith(10*time.Second, idle, idle), Thresholds{})
	if !hasRule(fs, "gpu-underutilised") {
		t.Errorf("idle GPU not flagged: %v", fs)
	}
	// No kernel timing at all: silent.
	none := []ipm.Entry{entry("cudaMalloc", 1, time.Millisecond)}
	fs = Analyze(profileWith(10*time.Second, none, none), Thresholds{})
	if hasRule(fs, "gpu-utilisation") || hasRule(fs, "gpu-underutilised") {
		t.Errorf("GPU rules fired without kernel data: %v", fs)
	}
}

func TestStartupCostRule(t *testing.T) {
	es := []ipm.Entry{entry("cudaGetDeviceCount", 2, time.Second)}
	jp := profileWith(10*time.Second, es, es)
	if fs := Analyze(jp, Thresholds{}); !hasRule(fs, "expensive-initialisation") {
		t.Errorf("missing expensive-initialisation: %v", fs)
	}
	// Cheap per-call initialisation: silent.
	ok := []ipm.Entry{entry("cudaGetDeviceCount", 1000, time.Second)}
	if fs := Analyze(profileWith(10*time.Second, ok, ok), Thresholds{}); hasRule(fs, "expensive-initialisation") {
		t.Error("expensive-initialisation fired on cheap calls")
	}
}

func TestFindingsSortedBySeverity(t *testing.T) {
	es := []ipm.Entry{
		entry(ipm.HostIdleName, 10, 3*time.Second),        // warning
		entry(ipm.ExecStreamName(0), 10, 5*time.Second),   // info (utilisation)
		entry("cudaThreadSynchronize", 10, 2*time.Second), // advice
	}
	fs := Analyze(profileWith(10*time.Second, es, es), Thresholds{})
	for i := 1; i < len(fs); i++ {
		if fs[i].Severity > fs[i-1].Severity {
			t.Fatalf("findings not sorted: %v", fs)
		}
	}
}

func TestReportRendering(t *testing.T) {
	if out := Report(nil); !strings.Contains(out, "no findings") {
		t.Error("empty report wrong")
	}
	fs := []Finding{{Severity: Warning, Rule: "x", Message: "y"}}
	if out := Report(fs); !strings.Contains(out, "[WARNING] x: y") {
		t.Errorf("report = %q", out)
	}
	if Severity(42).String() != "?" {
		t.Error("unknown severity")
	}
}
