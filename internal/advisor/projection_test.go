package advisor

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/ipm"
)

func TestProjectionHostIdle(t *testing.T) {
	es := []ipm.Entry{entry(ipm.HostIdleName, 10, 4*time.Second)}
	jp := profileWith(10*time.Second, es, es)
	ps := Projections(jp)
	if len(ps) == 0 {
		t.Fatal("no projections")
	}
	p := ps[0]
	if p.Scenario != "overlap-blocking-transfers" {
		t.Fatalf("top scenario = %s", p.Scenario)
	}
	// 10s wall, 4s per-rank idle reclaimed -> 6s, speedup 1.67.
	if p.Projected != 6*time.Second {
		t.Errorf("projected = %v, want 6s", p.Projected)
	}
	if p.Speedup < 1.66 || p.Speedup > 1.68 {
		t.Errorf("speedup = %.3f", p.Speedup)
	}
}

func TestProjectionDeviceResidentBLAS(t *testing.T) {
	es := []ipm.Entry{
		entry("cublasSetMatrix", 100, 3*time.Second),
		entry("cublasGetMatrix", 100, 1*time.Second),
	}
	jp := profileWith(10*time.Second, es, es)
	ps := Projections(jp)
	found := false
	for _, p := range ps {
		if p.Scenario == "device-resident-blas" {
			found = true
			if p.Projected != 6*time.Second { // (3+1)s per rank reclaimed
				t.Errorf("projected = %v", p.Projected)
			}
		}
	}
	if !found {
		t.Errorf("missing device-resident-blas: %v", ps)
	}
}

func TestProjectionLoadBalance(t *testing.T) {
	heavy := entry(ipm.ExecKernelName(0, "ReduceForces"), 10, 6*time.Second)
	light := entry(ipm.ExecKernelName(0, "ReduceForces"), 10, 2*time.Second)
	jp := profileWith(10*time.Second, []ipm.Entry{heavy}, []ipm.Entry{light})
	ps := Projections(jp)
	for _, p := range ps {
		if p.Scenario == "perfect-load-balance" {
			// max 6, avg 4 -> reclaim 2s.
			if p.Projected != 8*time.Second {
				t.Errorf("projected = %v, want 8s", p.Projected)
			}
			if !strings.Contains(p.Detail, "ReduceForces") {
				t.Errorf("detail = %s", p.Detail)
			}
			return
		}
	}
	t.Errorf("missing perfect-load-balance: %v", ps)
}

func TestProjectionSyncCompute(t *testing.T) {
	es := []ipm.Entry{entry("cudaThreadSynchronize", 100, 3*time.Second)}
	jp := profileWith(10*time.Second, es, es)
	ps := Projections(jp)
	for _, p := range ps {
		if p.Scenario == "compute-during-sync" {
			if p.Projected != 7*time.Second {
				t.Errorf("projected = %v", p.Projected)
			}
			return
		}
	}
	t.Errorf("missing compute-during-sync: %v", ps)
}

func TestProjectionsSortedAndBounded(t *testing.T) {
	es := []ipm.Entry{
		entry(ipm.HostIdleName, 10, 9900*time.Millisecond), // nearly the whole wall
		entry("cudaThreadSynchronize", 10, time.Second),
	}
	jp := profileWith(10*time.Second, es, es)
	ps := Projections(jp)
	for i := 1; i < len(ps); i++ {
		if ps[i].Speedup > ps[i-1].Speedup {
			t.Fatal("projections not sorted")
		}
	}
	// Projection never collapses below 1% of current wallclock.
	for _, p := range ps {
		if p.Projected < jp.Wallclock()/100 {
			t.Errorf("%s projected below floor: %v", p.Scenario, p.Projected)
		}
	}
}

func TestProjectionsEmptyProfile(t *testing.T) {
	if ps := Projections(ipm.NewJobProfile("x", 1, nil)); ps != nil {
		t.Errorf("empty profile projections = %v", ps)
	}
	clean := []ipm.Entry{entry("cudaLaunch", 10, time.Millisecond)}
	jp := profileWith(10*time.Second, clean, clean)
	if ps := Projections(jp); len(ps) != 0 {
		t.Errorf("clean profile projections = %v", ps)
	}
	if out := FormatProjections(nil); !strings.Contains(out, "no applicable") {
		t.Error("empty format wrong")
	}
	if out := FormatProjections([]Projection{{Scenario: "s", Speedup: 2}}); !strings.Contains(out, "What-if") {
		t.Error("format missing header")
	}
}
