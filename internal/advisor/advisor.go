// Package advisor implements the paper's third future-work item: "using
// the derived monitoring data for performance modeling and advanced
// guidance to users on the merits or pitfalls of accelerating their
// applications".
//
// It analyses an aggregated IPM job profile with rules distilled from the
// paper's own case studies: the implicit-host-blocking analysis of
// Section III-C, the thunking-transfer observation of the PARATEC study,
// the cudaThreadSynchronize and load-imbalance findings of the Amber
// study, and the communication-scaling issue (1)-(6) checklist of the
// introduction.
package advisor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ipmgo/internal/ipm"
)

// Severity ranks findings.
type Severity int

const (
	Info Severity = iota
	Advice
	Warning
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "INFO"
	case Advice:
		return "ADVICE"
	case Warning:
		return "WARNING"
	}
	return "?"
}

// Finding is one piece of guidance.
type Finding struct {
	Severity Severity
	Rule     string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Rule, f.Message)
}

// Thresholds tune the rules; zero values select the defaults.
type Thresholds struct {
	HostIdlePct     float64 // missed-overlap alarm (default 5%)
	SyncWaitPct     float64 // host-side synchronisation alarm (default 15%)
	CommPct         float64 // MPI share alarm (default 25%)
	ImbalanceFactor float64 // max/avg alarm (default 1.3)
	TransferRatio   float64 // library transfer/compute alarm (default 1.5)
	LowGPUPct       float64 // under-utilised accelerator (default 20%)
}

func (t Thresholds) withDefaults() Thresholds {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&t.HostIdlePct, 5)
	def(&t.SyncWaitPct, 15)
	def(&t.CommPct, 25)
	def(&t.ImbalanceFactor, 1.3)
	def(&t.TransferRatio, 1.5)
	def(&t.LowGPUPct, 20)
	return t
}

// Analyze runs every rule against the profile and returns findings sorted
// by descending severity (stable within a severity).
func Analyze(jp *ipm.JobProfile, th Thresholds) []Finding {
	th = th.withDefaults()
	var out []Finding
	rules := []func(*ipm.JobProfile, Thresholds) []Finding{
		ruleHostIdle,
		ruleSyncWait,
		ruleThunkingTransfers,
		ruleImbalance,
		ruleCommShare,
		ruleGPUUtilisation,
		ruleStartupCost,
	}
	for _, r := range rules {
		out = append(out, r(jp, th)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// Report renders findings as text.
func Report(findings []Finding) string {
	if len(findings) == 0 {
		return "no findings: the profile shows no obvious accelerator or communication pathologies\n"
	}
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func wallOf(jp *ipm.JobProfile) time.Duration { return jp.WallclockSpread().Total }

func pct(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// ruleHostIdle flags missed CPU/GPU overlap (Section III-C): significant
// @CUDA_HOST_IDLE means synchronous transfers silently absorb kernel
// waits.
func ruleHostIdle(jp *ipm.JobProfile, th Thresholds) []Finding {
	p := jp.HostIdlePercent()
	if p < th.HostIdlePct {
		return nil
	}
	return []Finding{{
		Severity: Warning,
		Rule:     "missed-overlap",
		Message: fmt.Sprintf("@CUDA_HOST_IDLE is %.1f%% of wallclock: synchronous memory transfers "+
			"implicitly block behind kernels; switch to cudaMemcpyAsync on a stream (pinned host "+
			"memory) and overlap host work, or move MPI communication into the gap", p),
	}}
}

// ruleSyncWait flags heavy host-side synchronisation (the Amber finding:
// 22.5% of wallclock in cudaThreadSynchronize).
func ruleSyncWait(jp *ipm.JobProfile, th Thresholds) []Finding {
	var syncTime time.Duration
	for _, name := range []string{"cudaThreadSynchronize", "cudaEventSynchronize", "cudaStreamSynchronize", "cuCtxSynchronize"} {
		syncTime += jp.FuncSpread(name).Total
	}
	p := pct(syncTime, wallOf(jp))
	if p < th.SyncWaitPct {
		return nil
	}
	return []Finding{{
		Severity: Advice,
		Rule:     "host-sync-wait",
		Message: fmt.Sprintf("%.1f%% of wallclock is spent waiting in explicit synchronisation calls; "+
			"in a fully heterogeneous implementation the CPU could compute during this time", p),
	}}
}

// ruleThunkingTransfers flags the PARATEC pattern: blocking
// cublasSetMatrix/GetMatrix transfers dwarfing the accelerated kernels.
func ruleThunkingTransfers(jp *ipm.JobProfile, th Thresholds) []Finding {
	transfer := jp.FuncSpread("cublasSetMatrix").Total +
		jp.FuncSpread("cublasGetMatrix").Total +
		jp.FuncSpread("cublasSetVector").Total +
		jp.FuncSpread("cublasGetVector").Total
	if transfer == 0 {
		return nil
	}
	var kernels time.Duration
	for _, ft := range jp.FuncTotals() {
		if strings.HasPrefix(ft.Name, "@CUDA_EXEC_STRM") && strings.Contains(ft.Name, ":") &&
			(strings.Contains(ft.Name, "gemm") || strings.Contains(ft.Name, "trsm") ||
				strings.Contains(ft.Name, "axpy") || strings.Contains(ft.Name, "gemv")) {
			kernels += ft.Stats.Total
		}
	}
	if kernels == 0 || float64(transfer)/float64(kernels) < th.TransferRatio {
		return nil
	}
	return []Finding{{
		Severity: Warning,
		Rule:     "thunking-transfers",
		Message: fmt.Sprintf("blocking CUBLAS data movement (%.1fs) dwarfs the accelerated BLAS kernels "+
			"(%.1fs, %.1fx): the thunking wrappers re-transfer operands on every call; keep matrices "+
			"resident on the device with the direct wrappers, or overlap with simultaneous CPU BLAS",
			transfer.Seconds(), kernels.Seconds(), float64(transfer)/float64(kernels)),
	}}
}

// ruleImbalance flags per-kernel and per-MPI-call load imbalance (the
// Amber ReduceForces/ClearForces finding).
func ruleImbalance(jp *ipm.JobProfile, th Thresholds) []Finding {
	if jp.NTasks() < 2 {
		return nil
	}
	var out []Finding
	wall := wallOf(jp)
	for _, ft := range jp.FuncTotals() {
		// Only flag contributors of at least 2% wallclock.
		if float64(ft.Stats.Total) < 0.02*float64(wall) {
			continue
		}
		imb := jp.Imbalance(ft.Name)
		if imb >= th.ImbalanceFactor {
			out = append(out, Finding{
				Severity: Advice,
				Rule:     "load-imbalance",
				Message: fmt.Sprintf("%s is imbalanced across ranks (max/avg %.2fx); redistributing "+
					"this work would shorten the critical path", ft.Name, imb),
			})
		}
	}
	return out
}

// ruleCommShare flags MPI dominating the run (the PARATEC 256-process
// regime).
func ruleCommShare(jp *ipm.JobProfile, th Thresholds) []Finding {
	p := jp.CommPercent()
	if p < th.CommPct {
		return nil
	}
	// Name the worst offender.
	worst := ""
	var worstT time.Duration
	for _, ft := range jp.FuncTotals() {
		if strings.HasPrefix(ft.Name, "MPI_") && ft.Stats.Total > worstT {
			worst, worstT = ft.Name, ft.Stats.Total
		}
	}
	return []Finding{{
		Severity: Warning,
		Rule:     "communication-bound",
		Message: fmt.Sprintf("MPI consumes %.1f%% of wallclock (largest: %s at %.1fs total); the job has "+
			"scaled past its sweet spot — fewer processes, hierarchical collectives, or communication "+
			"overlap are indicated", p, worst, worstT.Seconds()),
	}}
}

// ruleGPUUtilisation reports the accelerator utilisation headline and
// flags an idle GPU.
func ruleGPUUtilisation(jp *ipm.JobProfile, th Thresholds) []Finding {
	p := jp.GPUPercent()
	if p == 0 {
		return nil // no kernel timing data
	}
	if p < th.LowGPUPct {
		return []Finding{{
			Severity: Advice,
			Rule:     "gpu-underutilised",
			Message: fmt.Sprintf("kernels occupy the GPU only %.1f%% of wallclock; unless transfers or "+
				"host phases are irreducible, the accelerator mostly idles — consider larger offload "+
				"granularity or keeping more of the pipeline on the device", p),
		}}
	}
	return []Finding{{
		Severity: Info,
		Rule:     "gpu-utilisation",
		Message:  fmt.Sprintf("GPU kernels cover %.1f%% of wallclock", p),
	}}
}

// ruleStartupCost flags expensive runtime initialisation patterns (the
// Amber cudaGetDeviceCount finding: 16.7s across 32 calls).
func ruleStartupCost(jp *ipm.JobProfile, th Thresholds) []Finding {
	var out []Finding
	for _, name := range []string{"cudaGetDeviceCount", "cudaMalloc", "cuInit"} {
		s := jp.FuncSpread(name)
		if s.Total == 0 {
			continue
		}
		var count int64
		for _, ft := range jp.FuncTotals() {
			if ft.Name == name {
				count = ft.Stats.Count
			}
		}
		if count == 0 {
			continue
		}
		perCall := s.Total / time.Duration(count)
		if perCall > 100*time.Millisecond && float64(s.Total) > 0.02*float64(wallOf(jp)) {
			out = append(out, Finding{
				Severity: Advice,
				Rule:     "expensive-initialisation",
				Message: fmt.Sprintf("%s averages %.0f ms per call (%.1fs total over %d calls); runtime "+
					"initialisation is leaking into the steady state — query once and cache",
					name, float64(perCall)/float64(time.Millisecond), s.Total.Seconds(), count),
			})
		}
	}
	return out
}
