package profstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// ingestN ingests n synthetic docs and returns their content ids.
func ingestN(t *testing.T, s *Store, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		xml := syntheticXML(t, 7, i)
		j, err := s.Ingest(xml, "", []string{"snap"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	return ids
}

func TestSnapshotCompactsAndRecovers(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "store.wal")
	s, _, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ids := ingestN(t, s, 5)
	// Replace one job (same id, same bytes): the duplicate WAL record
	// must compact away.
	if _, err := s.Ingest(syntheticXML(t, 7, 0), ids[0], []string{"snap"}); err != nil {
		t.Fatal(err)
	}
	before := aggJSON(t, s)

	info, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Jobs != 5 || info.Dropped != 1 {
		t.Errorf("snapshot info = %+v, want seq 1, 5 jobs, 1 dropped duplicate", info)
	}
	if st, err := os.Stat(wal); err != nil || st.Size() != 0 {
		t.Errorf("WAL not truncated after snapshot: %v, %d bytes", err, st.Size())
	}
	if s.PendingWALRecords() != 0 || s.SnapshotSeq() != 1 {
		t.Errorf("pending=%d seq=%d after snapshot", s.PendingWALRecords(), s.SnapshotSeq())
	}

	// The store stays writable after compaction; new appends land in the
	// truncated WAL (re-ingesting doc 0 replaces, so the corpus stays 5).
	ingestN(t, s, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st.SnapshotSeq != 1 || st.SnapshotJobs != 5 || st.WALRecords != 1 || st.Skipped != 0 {
		t.Errorf("recovery stats = %+v, want snapshot 1 with 5 jobs + 1 WAL record", st)
	}
	if s2.Len() != 5 {
		t.Fatalf("recovered %d jobs, want 5", s2.Len())
	}
	if got := s2.Get(ids[0]); got == nil || len(got.Tags) != 1 || got.Tags[0] != "snap" {
		t.Fatalf("job metadata lost through compaction: %+v", got)
	}
	if !bytes.Equal(before, aggJSON(t, s2)) {
		t.Error("aggregate differs after snapshot+WAL recovery")
	}
}

// TestSnapshotCrashWindows replays the on-disk states a crash can leave
// at each step of the snapshot protocol and requires recovery to land
// on the same corpus every time.
func TestSnapshotCrashWindows(t *testing.T) {
	const jobs = 4
	// canonical renders the corpus a clean store derives from the docs.
	canonical := func(t *testing.T) []byte {
		s := New()
		ingestN(t, s, jobs)
		return aggJSON(t, s)
	}

	cases := []struct {
		name string
		// mangle simulates the crash given the WAL path, the pre-snapshot
		// WAL image and the live snapshot path.
		mangle      func(t *testing.T, wal string, preWAL []byte, snap string)
		wantSkipped int
		wantJobs    int
	}{
		{
			// Crash before the rename: only a .tmp exists alongside the
			// intact WAL. It must be ignored (and cleaned up).
			name: "tmp-left-behind",
			mangle: func(t *testing.T, wal string, preWAL []byte, snap string) {
				if err := os.Rename(snap, snap+".tmp"); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(wal, preWAL, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantJobs: jobs,
		},
		{
			// Crash between rename and WAL truncate: snapshot AND the full
			// pre-snapshot WAL both present. Replay must be idempotent.
			name: "rename-before-truncate",
			mangle: func(t *testing.T, wal string, preWAL []byte, snap string) {
				if err := os.WriteFile(wal, preWAL, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantJobs: jobs,
		},
		{
			// Bit rot inside the snapshot: the damaged record is detected
			// and counted, the rest of the corpus survives.
			name: "corrupt-snapshot-record",
			mangle: func(t *testing.T, wal string, preWAL []byte, snap string) {
				img, err := os.ReadFile(snap)
				if err != nil {
					t.Fatal(err)
				}
				img[walHeaderSize+8] ^= 0xff
				if err := os.WriteFile(snap, img, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSkipped: 1,
			wantJobs:    jobs - 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wal := filepath.Join(t.TempDir(), "store.wal")
			s, _, err := OpenStore(wal, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ingestN(t, s, jobs)
			preWAL, err := os.ReadFile(wal)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Snapshot(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			tc.mangle(t, wal, preWAL, snapshotPath(wal, 1))

			s2, st, err := OpenStore(wal, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if st.Skipped != tc.wantSkipped {
				t.Errorf("skipped %d record(s), want %d", st.Skipped, tc.wantSkipped)
			}
			if s2.Len() != tc.wantJobs {
				t.Fatalf("recovered %d jobs, want %d", s2.Len(), tc.wantJobs)
			}
			if tc.wantJobs == jobs && !bytes.Equal(canonical(t), aggJSON(t, s2)) {
				t.Error("aggregate differs from the clean-corpus answer")
			}
			if tc.name == "tmp-left-behind" {
				if _, err := os.Stat(snapshotPath(wal, 1) + ".tmp"); !errors.Is(err, os.ErrNotExist) {
					t.Error("stray snapshot .tmp not cleaned up at open")
				}
			}
		})
	}
}

func TestSnapshotSeqAdvancesAndPrunes(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "store.wal")
	s, _, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ingestN(t, s, 2)
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(syntheticXML(t, 7, 99), "", nil); err != nil {
		t.Fatal(err)
	}
	info, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 2 || info.Jobs != 3 {
		t.Errorf("second snapshot = %+v, want seq 2 covering 3 jobs", info)
	}
	if _, err := os.Stat(snapshotPath(wal, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Error("superseded snapshot 1 not pruned")
	}
	if _, err := os.Stat(snapshotPath(wal, 2)); err != nil {
		t.Errorf("live snapshot 2 missing: %v", err)
	}
	if s.Snapshots() != 2 {
		t.Errorf("Snapshots() = %d, want 2", s.Snapshots())
	}
}

func TestCompactEveryTriggersInBackground(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "store.wal")
	snapc := make(chan error, 4)
	s, _, err := OpenStore(wal, StoreOptions{
		CompactEvery: 3,
		OnSnapshot:   func(_ SnapshotInfo, err error) { snapc <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ingestN(t, s, 3)
	select {
	case err := <-snapc:
		if err != nil {
			t.Fatalf("background compaction failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("compaction did not trigger at CompactEvery appends")
	}
	if s.Snapshots() != 1 || s.SnapshotSeq() != 1 {
		t.Errorf("snapshots=%d seq=%d after auto-compaction", s.Snapshots(), s.SnapshotSeq())
	}
}
