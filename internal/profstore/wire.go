package profstore

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"ipmgo/internal/ipm"
)

// The shard rollup wire format: how a cluster member ships its local
// per-job pre-aggregations to a scatter-gather router without ever
// putting raw XML on the wire. One WireJob is the exact image of a
// (*Job, *rollup) pair — every duration an integer nanosecond count,
// every energy an integer nanojoule count, maps flattened to
// name-sorted slices — so encode/decode round-trips losslessly and a
// router that merges decoded WireJobs with AggregateJobs/RegressJobs
// produces byte-identical output to a single node holding the whole
// corpus (FuzzRollupWire enforces exactly that).
//
// Because job ids are content hashes, replicas of the same job on
// different members serialise to identical WireJobs; the router dedups
// by id, which makes the merge independent of replication factor,
// member count and which replica answered first.

// WireStats is ipm.Stats on the wire: field-for-field, durations as
// integer nanoseconds. Short keys keep a member's rollup payload small
// next to the XML it summarises.
type WireStats struct {
	Count       int64 `json:"c,omitempty"`
	Total       int64 `json:"t,omitempty"`
	Min         int64 `json:"mn,omitempty"`
	Max         int64 `json:"mx,omitempty"`
	Errors      int64 `json:"e,omitempty"`
	Submits     int64 `json:"s,omitempty"`
	SubmitStall int64 `json:"ss,omitempty"`
	Energy      int64 `json:"en,omitempty"`
}

func toWireStats(st ipm.Stats) WireStats {
	return WireStats{
		Count: st.Count, Total: int64(st.Total),
		Min: int64(st.Min), Max: int64(st.Max),
		Errors: st.Errors, Submits: st.Submits,
		SubmitStall: int64(st.SubmitStall), Energy: st.Energy,
	}
}

func (w WireStats) stats() ipm.Stats {
	return ipm.Stats{
		Count: w.Count, Total: time.Duration(w.Total),
		Min: time.Duration(w.Min), Max: time.Duration(w.Max),
		Errors: w.Errors, Submits: w.Submits,
		SubmitStall: time.Duration(w.SubmitStall), Energy: w.Energy,
	}
}

// WireSite is one named stats row (a call site or a kernel).
type WireSite struct {
	Name string `json:"n"`
	WireStats
}

// WireImb is one per-job imbalance row.
type WireImb struct {
	Name       string  `json:"n"`
	MaxOverAvg float64 `json:"m"`
	WorstJob   string  `json:"j"`
}

// WireJob is one job's store metadata plus its ingest-time rollup.
type WireJob struct {
	ID       string   `json:"id"`
	Command  string   `json:"cmd,omitempty"`
	Tags     []string `json:"tags,omitempty"`
	Ranks    int      `json:"ranks,omitempty"`
	Salvaged bool     `json:"salv,omitempty"`
	Warnings int      `json:"warn,omitempty"`
	Bytes    int      `json:"bytes,omitempty"`
	Lost     int      `json:"lost,omitempty"`

	Wall   int64 `json:"w,omitempty"`
	GPU    int64 `json:"g,omitempty"`
	Xfer   int64 `json:"x,omitempty"`
	Idle   int64 `json:"i,omitempty"`
	MPI    int64 `json:"mpi,omitempty"`
	Stall  int64 `json:"st,omitempty"`
	Energy int64 `json:"en,omitempty"`

	// Sites and Kernels are the rollup maps flattened in name order (so
	// the encoding of a job is canonical); Imb preserves the rollup's
	// FuncTotals row order.
	Sites   []WireSite `json:"sites,omitempty"`
	Kernels []WireSite `json:"kern,omitempty"`
	Imb     []WireImb  `json:"imb,omitempty"`
}

func wireSites(m map[string]ipm.Stats) []WireSite {
	if len(m) == 0 {
		return nil
	}
	out := make([]WireSite, 0, len(m))
	for name, st := range m {
		out = append(out, WireSite{Name: name, WireStats: toWireStats(st)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sitesMap(ws []WireSite) map[string]ipm.Stats {
	m := make(map[string]ipm.Stats, len(ws))
	for _, w := range ws {
		m[w.Name] = w.stats()
	}
	return m
}

// Wire converts the job to its wire image.
func (j *Job) Wire() WireJob {
	ro := j.roll()
	w := WireJob{
		ID: j.ID, Command: j.Command, Tags: j.Tags,
		Ranks: j.Ranks, Salvaged: j.Salvaged, Warnings: j.Warnings,
		Bytes: j.Bytes, Lost: ro.lostRanks,
		Wall: int64(ro.wall), GPU: int64(ro.gpu), Xfer: int64(ro.xfer),
		Idle: int64(ro.idle), MPI: int64(ro.mpi), Stall: int64(ro.stall),
		Energy:  ro.energy,
		Sites:   wireSites(ro.sites),
		Kernels: wireSites(ro.kernels),
	}
	if len(ro.imb) > 0 {
		w.Imb = make([]WireImb, len(ro.imb))
		for i, ia := range ro.imb {
			w.Imb[i] = WireImb{Name: ia.Name, MaxOverAvg: ia.MaxOverAvg, WorstJob: ia.WorstJob}
		}
	}
	return w
}

// Job reconstructs the (*Job, rollup) pair from the wire image. The
// reconstructed job carries no raw document: it can be selected,
// aggregated and regressed, but Profile() yields an empty profile —
// exactly what a router needs and nothing more.
func (w WireJob) Job() *Job {
	ro := &rollup{
		wall: time.Duration(w.Wall), gpu: time.Duration(w.GPU),
		xfer: time.Duration(w.Xfer), idle: time.Duration(w.Idle),
		mpi: time.Duration(w.MPI), stall: time.Duration(w.Stall),
		energy:    w.Energy,
		lostRanks: w.Lost,
		sites:     sitesMap(w.Sites),
		kernels:   sitesMap(w.Kernels),
	}
	if len(w.Imb) > 0 {
		ro.imb = make([]ImbalanceAgg, len(w.Imb))
		for i, ia := range w.Imb {
			ro.imb[i] = ImbalanceAgg{Name: ia.Name, MaxOverAvg: ia.MaxOverAvg, WorstJob: ia.WorstJob}
		}
	}
	j := &Job{
		ID: w.ID, Command: w.Command, Tags: w.Tags,
		Ranks: w.Ranks, Salvaged: w.Salvaged, Warnings: w.Warnings,
		Bytes: w.Bytes, rollup: ro,
	}
	// Pre-arm the lazy DOM with an empty profile so a stray Profile()
	// call on a wire job degrades instead of parsing nil bytes.
	j.prof = ipm.NewJobProfile(w.Command, w.Ranks, nil)
	return j
}

// WireJobs returns the wire image of the whole corpus, sorted by job id.
// Repeated calls on an unchanged store are served from the epoch-keyed
// memo cache; the returned slice is shared and must not be mutated.
func (s *Store) WireJobs() []WireJob {
	key := memoKey{kind: "wire"}
	ep := s.epoch.Load()
	if v, ok := s.memoLookup(ep, key); ok {
		return v.([]WireJob)
	}
	jobs := s.Select("")
	out := make([]WireJob, len(jobs))
	for i, j := range jobs {
		out[i] = j.Wire()
	}
	s.memoStore(ep, key, out)
	return out
}

// EncodeWireJobs renders the compact one-line JSON body of a
// /shard/rollups response.
func EncodeWireJobs(jobs []WireJob) ([]byte, error) {
	return json.Marshal(jobs)
}

// DecodeWireJobs parses a /shard/rollups body.
func DecodeWireJobs(data []byte) ([]WireJob, error) {
	var out []WireJob
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("profstore: decoding wire rollups: %w", err)
	}
	return out, nil
}

// MergeWireJobs dedups wire jobs by id (first occurrence wins — replicas
// of a content-addressed job are identical) and returns the
// reconstructed jobs sorted by id: the same job list, in the same
// order, that a single store holding the union corpus would Select.
func MergeWireJobs(shards ...[]WireJob) []*Job {
	n := 0
	for _, sh := range shards {
		n += len(sh)
	}
	seen := make(map[string]bool, n)
	out := make([]*Job, 0, n)
	for _, sh := range shards {
		for _, w := range sh {
			if seen[w.ID] {
				continue
			}
			seen[w.ID] = true
			out = append(out, w.Job())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AggregateJobs computes the cross-job rollup over an explicit job list
// — the router-side merge of MergeWireJobs output. Byte-for-byte the
// same report a single store over the same jobs would produce.
func AggregateJobs(jobs []*Job, opts AggOptions) *AggReport {
	return aggregateJobs(jobs, opts)
}

// RegressJobs compares two explicit job lists — the router-side twin of
// Store.Regress.
func RegressJobs(baseJobs, headJobs []*Job, opts RegressOptions) *RegressReport {
	if opts.Threshold <= 0 {
		opts.Threshold = 10
	}
	return regressFrom(baseJobs, headJobs, opts)
}

// FilterJobs applies a job selector (see Store.Select) to an explicit
// job list, preserving order.
func FilterJobs(jobs []*Job, sel string) []*Job {
	match := matcherFor(sel)
	out := make([]*Job, 0, len(jobs))
	for _, j := range jobs {
		if match(j) {
			out = append(out, j)
		}
	}
	return out
}
