package profstore

// Epoch-keyed memo cache for /agg and /regress.
//
// The store's epoch counter advances after every shard insert. A cached
// report is valid only for the epoch it was computed under; the first
// lookup after an ingest misses and recomputes. To never cache a result
// that straddles an ingest, the protocol is capture-compute-recheck:
//
//  1. capture the epoch BEFORE selecting jobs,
//  2. compute the report,
//  3. store it only if the epoch is still the captured one.
//
// If an ingest landed anywhere in between, the recheck fails and the
// (possibly mid-ingest) report is returned to the caller but not cached
// — correct for that caller (a plain walk at that moment could have seen
// the same corpus) and invisible to later ones. On a quiescent store the
// cache therefore always serves exactly what a fresh walk would produce,
// which keeps /agg and /regress byte-identical under concurrency and
// across WAL recovery.
//
// Cached reports are shared between callers: they are never mutated after
// aggregateJobs/Regress builds them.

// memoKey identifies one cacheable query.
type memoKey struct {
	kind string // "agg" or "regress"
	a, b string // selectors
	n    int    // TopN (agg)
	th   float64
}

// memoLookup returns the cached report for key if one was stored under
// epoch ep.
func (s *Store) memoLookup(ep uint64, key memoKey) (any, bool) {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if s.memoEpoch != ep || s.memo == nil {
		return nil, false
	}
	rep, ok := s.memo[key]
	return rep, ok
}

// memoStore caches rep under key iff the store epoch is still ep (see the
// protocol above). Advancing to a new epoch drops every older entry.
func (s *Store) memoStore(ep uint64, key memoKey, rep any) {
	if s.epoch.Load() != ep {
		return // an ingest raced the computation; do not cache
	}
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if s.epoch.Load() != ep {
		return
	}
	if s.memoEpoch != ep || s.memo == nil {
		s.memoEpoch = ep
		s.memo = make(map[memoKey]any)
	}
	s.memo[key] = rep
}
