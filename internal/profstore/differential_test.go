package profstore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ipmgo/internal/ipm"
)

// This file pins the streaming fast path to its semantic reference: for
// every input the scanner accepts, the event-stream rollup, the salvage
// report and the store-level ingest result must be identical to the
// ParseXMLTolerant + computeRollup route. The same harness backs
// FuzzScanVsParse.

// diffCorpus returns every XML fixture the repo carries, plus
// truncations and point mutations of each — the inputs most likely to
// expose a divergence between the scanner's bail-out rules and the
// decoder's actual tolerance.
func diffCorpus(t testing.TB) [][]byte {
	t.Helper()
	var corpus [][]byte
	for _, glob := range []string{"testdata/*.xml", filepath.Join("..", "ipmparse", "testdata", "*.xml")} {
		paths, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			corpus = append(corpus, b)
		}
	}
	if len(corpus) == 0 {
		t.Fatal("no XML fixtures found")
	}
	var derived [][]byte
	for _, doc := range corpus {
		for _, frac := range []int{1, 2, 3, 5, 7} {
			derived = append(derived, doc[:len(doc)*frac/8])
		}
		for _, mut := range []struct {
			off  int
			repl byte
		}{{len(doc) / 3, '<'}, {len(doc) / 2, '"'}, {2 * len(doc) / 3, '&'}, {len(doc) / 4, 0x80}} {
			m := append([]byte(nil), doc...)
			m[mut.off] = mut.repl
			derived = append(derived, m)
		}
	}
	return append(corpus, derived...)
}

// diffScan compares ScanXMLTolerant + rollupSink against
// ParseXMLTolerant + computeRollup on one input. Returns whether the
// fast path engaged.
func diffScan(t testing.TB, data []byte) bool {
	t.Helper()
	if !prescanClean(data) {
		return false // ingest would not offer this input to the scanner
	}
	sink := newRollupSink()
	sink.reset()
	var rep ipm.ParseReport
	ok, serr := ipm.ScanXMLTolerant(data, sink, &rep)
	if !ok {
		return false // bail-out: fallback handles it, nothing to compare
	}
	jp, drep, derr := ipm.ParseXMLTolerant(bytes.NewReader(data))
	if (serr == nil) != (derr == nil) || (serr != nil && serr.Error() != derr.Error()) {
		t.Fatalf("scan error %v, parse error %v\ninput: %q", serr, derr, data)
	}
	if serr != nil {
		return true
	}
	if !reflect.DeepEqual(rep.Warnings, drep.Warnings) &&
		!(len(rep.Warnings) == 0 && len(drep.Warnings) == 0) {
		t.Fatalf("warnings diverge\nscan:  %q\nparse: %q\ninput: %q", rep.Warnings, drep.Warnings, data)
	}
	if rep.Truncated != drep.Truncated ||
		rep.TasksRecovered != drep.TasksRecovered ||
		rep.TasksDeclared != drep.TasksDeclared {
		t.Fatalf("report diverges\nscan:  %+v\nparse: %+v\ninput: %q", rep, *drep, data)
	}
	if sink.command != jp.Command {
		t.Fatalf("command %q vs %q\ninput: %q", sink.command, jp.Command, data)
	}
	if sink.tasks != len(jp.Ranks) {
		t.Fatalf("tasks %d vs %d ranks\ninput: %q", sink.tasks, len(jp.Ranks), data)
	}
	got := sink.build("j")
	want := computeRollup(jp, "j")
	if !rollupEqual(got, want) {
		t.Fatalf("rollup diverges\nscan:  %+v\nparse: %+v\ninput: %q", got, want, data)
	}
	return true
}

// rollupEqual compares two rollups field by field; empty and nil maps
// and imbalance slices are interchangeable.
func rollupEqual(a, b *rollup) bool {
	if a.wall != b.wall || a.gpu != b.gpu || a.xfer != b.xfer ||
		a.idle != b.idle || a.mpi != b.mpi || a.stall != b.stall ||
		a.energy != b.energy || a.lostRanks != b.lostRanks {
		return false
	}
	if len(a.sites) != len(b.sites) || len(a.kernels) != len(b.kernels) ||
		len(a.imb) != len(b.imb) {
		return false
	}
	for k, v := range a.sites {
		if b.sites[k] != v {
			return false
		}
	}
	for k, v := range a.kernels {
		if b.kernels[k] != v {
			return false
		}
	}
	for i, v := range a.imb {
		if b.imb[i] != v {
			return false
		}
	}
	return true
}

// diffStore ingests the same document into a streaming store and a
// forced-DOM store and demands identical jobs, errors and /agg output.
func diffStore(t testing.TB, data []byte) {
	t.Helper()
	fast, slow := New(), New()
	slow.forceDOM = true
	jf, errF := fast.Ingest(data, "", []string{"t"})
	js, errS := slow.Ingest(data, "", []string{"t"})
	if (errF == nil) != (errS == nil) || (errF != nil && errF.Error() != errS.Error()) {
		t.Fatalf("ingest error diverges: %v vs %v\ninput: %q", errF, errS, data)
	}
	if errF != nil {
		return
	}
	if jf.ID != js.ID || jf.Command != js.Command || jf.Salvaged != js.Salvaged ||
		jf.Warnings != js.Warnings || jf.Ranks != js.Ranks || jf.Bytes != js.Bytes {
		t.Fatalf("jobs diverge\nfast: %+v\nslow: %+v\ninput: %q", jf, js, data)
	}
	af, _ := json.Marshal(fast.Aggregate(AggOptions{}))
	as, _ := json.Marshal(slow.Aggregate(AggOptions{}))
	if !bytes.Equal(af, as) {
		t.Fatalf("/agg diverges\nfast: %s\nslow: %s\ninput: %q", af, as, data)
	}
}

func TestScanVsParseCorpus(t *testing.T) {
	engaged := 0
	for _, doc := range diffCorpus(t) {
		if diffScan(t, doc) {
			engaged++
		}
		diffStore(t, doc)
	}
	if engaged == 0 {
		t.Fatal("scanner bailed on every fixture: the fast path never runs")
	}
}

// TestScanFastPathEngages pins that the clean fixtures actually take
// the streaming path — without this, a scanner that bails on everything
// would pass every differential test by vacuity.
func TestScanFastPathEngages(t *testing.T) {
	for _, name := range []string{"base.xml", "head.xml"} {
		doc := fixture(t, name)
		sink := newRollupSink()
		sink.reset()
		var rep ipm.ParseReport
		ok, err := ipm.ScanXMLTolerant(doc, sink, &rep)
		if !ok || err != nil {
			t.Errorf("%s: scanner bailed (ok=%v err=%v) on a clean fixture", name, ok, err)
		}
	}
}

// TestFormatIDMatchesDeriveID pins the inlined FNV-1a + hex rendering
// to the exported DeriveID (part of the WAL/API contract).
func TestFormatIDMatchesDeriveID(t *testing.T) {
	for _, in := range []string{"", "ipm", "<ipm_log/>", string(fixture(t, "base.xml"))} {
		h, _ := prescanHash([]byte(in))
		if got, want := formatID(h), DeriveID([]byte(in)); got != want {
			t.Errorf("formatID(%q) = %s, DeriveID = %s", in, got, want)
		}
	}
}

// TestAppendWALRecordMatchesJSON pins the hand-rolled WAL encoder to
// encoding/json byte for byte, including the HTML escaping Marshal
// applies, and its refusal on non-ASCII input.
func TestAppendWALRecordMatchesJSON(t *testing.T) {
	cases := []struct {
		id   string
		tags []string
		xml  string
	}{
		{"j1", nil, "<ipm_log/>"},
		{"j2", []string{"a", "b"}, "<a x=\"1\">text</a>"},
		{"quote\"back\\slash", []string{"<tag>"}, "line1\nline2\r\ttab"},
		{"ctl", nil, "a\x01b\x1fc\x7fd"},
		{"amp", []string{"x&y"}, "<a b=\"1>2\"/>"},
		{"", []string{}, ""},
	}
	for _, tc := range cases {
		rec, ok := appendWALRecord(nil, tc.id, tc.tags, []byte(tc.xml))
		if !ok {
			t.Errorf("fast encoder refused ASCII input %+v", tc)
			continue
		}
		m, err := json.Marshal(walRecord{ID: tc.id, Tags: tc.tags, XML: tc.xml})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, m) {
			t.Errorf("WAL encoding diverges\nfast: %s\njson: %s", rec, m)
		}
	}
	if _, ok := appendWALRecord(nil, "j", nil, []byte("caf\xc3\xa9")); ok {
		t.Error("fast encoder accepted non-ASCII input; Marshal's UTF-8 handling differs")
	}
}

// FuzzScanVsParse is the differential fuzzer: any input the scanner
// accepts must produce the same rollup, warnings and store behavior as
// the DOM route, and any ASCII input must WAL-encode identically to
// encoding/json.
func FuzzScanVsParse(f *testing.F) {
	for _, doc := range diffCorpus(f) {
		if len(doc) <= 8<<10 {
			f.Add(doc)
		}
	}
	f.Add([]byte(`<ipm_log ntasks="2"><task rank="0"><region><func name="MPI_Send" t="1.5"/></region></task></ipm_log>`))
	f.Add([]byte(`<?xml version="1.0" encoding="UTF-8"?><ipm_log/>`))
	f.Add([]byte(`<ipm_log><task rank="0"><task rank="1"></task></ipm_log>`))
	f.Add([]byte(`<ipm_log cmd="a b"><func name="x"/><region></region></ipm_log>`))
	f.Add([]byte(`<ipm_log ntasks="1"><task energy_total="1.5" device="X"><region><func name="k" t="1" energy="0.5"/></region></task></ipm_log>`))
	f.Add([]byte(`<ipm_log ntasks="1"><task><region><func name="k" t="1" energy="2.25"/></region></task></ipm_log>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 16<<10 {
			return
		}
		diffScan(t, data)
		diffStore(t, data)
		if rec, ok := appendWALRecord(nil, "j", []string{"t"}, data); ok {
			m, err := json.Marshal(walRecord{ID: "j", Tags: []string{"t"}, XML: string(data)})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec, m) {
				t.Errorf("WAL encoding diverges\nfast: %s\njson: %s", rec, m)
			}
		}
	})
}
