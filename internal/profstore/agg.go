package profstore

import (
	"sort"
	"strings"
	"time"

	"ipmgo/internal/ipm"
)

// This file computes the cross-job rollups behind GET /agg: the
// workload-level views that motivate running IPM on every job (paper
// Section II). Every slice in the report has a total ordering (time
// descending, then name ascending) and every number is accumulated as an
// integer duration before a single final float conversion, so the same
// corpus renders byte-identically regardless of ingest order, shard
// layout, or how many goroutines filled the store.

// AggOptions selects and sizes an aggregation.
type AggOptions struct {
	Sel  string // job selector (see Store.Select); "" = whole corpus
	TopN int    // rows kept in the top-kernel and imbalance tables (default 10)
}

// CallSiteAgg is one call-site signature rolled up across jobs and ranks.
type CallSiteAgg struct {
	Name     string  `json:"name"`
	Domain   string  `json:"domain"` // MPI / CUDA / CUBLAS / CUFFT / pseudo / other
	Calls    int64   `json:"calls"`
	Errors   int64   `json:"errors,omitempty"`
	Seconds  float64 `json:"seconds"`
	PerCall  float64 `json:"per_call_seconds"`
	WallPct  float64 `json:"wall_pct"`
	Transfer bool    `json:"transfer,omitempty"`
}

// KernelAgg is one GPU kernel rolled up across streams, ranks and jobs.
type KernelAgg struct {
	Kernel   string  `json:"kernel"`
	Launches int64   `json:"launches"`
	Seconds  float64 `json:"seconds"`
}

// ImbalanceAgg reports the worst per-rank load imbalance (max/avg) seen
// for one call site, and the job it occurred in.
type ImbalanceAgg struct {
	Name       string  `json:"name"`
	MaxOverAvg float64 `json:"max_over_avg"`
	WorstJob   string  `json:"worst_job"`
}

// AggReport is the GET /agg response body.
type AggReport struct {
	Selector  string `json:"selector,omitempty"`
	Jobs      int    `json:"jobs"`
	Ranks     int    `json:"ranks"`
	LostRanks int    `json:"lost_ranks,omitempty"`
	Salvaged  int    `json:"salvaged_jobs,omitempty"`

	WallclockSeconds float64 `json:"wallclock_seconds"` // summed over ranks
	GPUSeconds       float64 `json:"gpu_seconds"`
	TransferSeconds  float64 `json:"transfer_seconds"`
	HostIdleSeconds  float64 `json:"host_idle_seconds"`
	MPISeconds       float64 `json:"mpi_seconds"`

	// Fleet fractions of total rank wallclock: how busy the GPUs were
	// and how long hosts sat blocked behind them.
	GPUBusyFraction     float64 `json:"gpu_busy_fraction"`
	HostBlockedFraction float64 `json:"host_blocked_fraction"`

	CallSites  []CallSiteAgg  `json:"call_sites"`
	TopKernels []KernelAgg    `json:"top_kernels"`
	Imbalance  []ImbalanceAgg `json:"imbalance"`
}

// isTransfer classifies a host call site as a host<->device transfer.
func isTransfer(name string) bool {
	return strings.Contains(name, "Memcpy") || strings.Contains(name, "Memset")
}

// isGPUExec matches the per-stream kernel-execution pseudo entries
// (@CUDA_EXEC_STRMxx without a :kernel suffix), the basis of the paper's
// GPU utilisation metric.
func isGPUExec(name string) bool {
	return strings.HasPrefix(name, "@CUDA_EXEC_STRM") && !strings.Contains(name, ":")
}

// kernelOf extracts the kernel name from a per-kernel pseudo entry
// (@CUDA_EXEC_STRMxx:kernel), or "" when the entry is not one.
func kernelOf(name string) string {
	if !strings.HasPrefix(name, "@CUDA_EXEC_STRM") {
		return ""
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return ""
}

// Aggregate computes the cross-job rollup for the selected jobs.
func (s *Store) Aggregate(opts AggOptions) *AggReport {
	jobs := s.Select(opts.Sel)
	return aggregateJobs(jobs, opts)
}

func aggregateJobs(jobs []*Job, opts AggOptions) *AggReport {
	topN := opts.TopN
	if topN <= 0 {
		topN = 10
	}
	rep := &AggReport{Selector: opts.Sel, Jobs: len(jobs)}

	type siteAcc struct {
		stats ipm.Stats
	}
	sites := make(map[string]*siteAcc)
	kernels := make(map[string]*ipm.Stats)
	worst := make(map[string]ImbalanceAgg)

	var wall, gpu, xfer, idle, mpi time.Duration
	for _, job := range jobs {
		jp := job.Profile
		rep.Ranks += len(jp.Ranks)
		rep.LostRanks += len(jp.LostRanks())
		if job.Salvaged {
			rep.Salvaged++
		}
		for _, r := range jp.Ranks {
			wall += r.Wallclock
			for _, e := range r.Entries {
				name := e.Sig.Name
				switch {
				case isGPUExec(name):
					gpu += e.Stats.Total
				case name == ipm.HostIdleName:
					idle += e.Stats.Total
				case e.Sig.Pseudo():
					// Per-kernel pseudo entries are tallied below; other
					// pseudo entries only appear in the call-site table.
				case isTransfer(name):
					xfer += e.Stats.Total
				}
				if ipm.Classify(name) == ipm.DomainMPI {
					mpi += e.Stats.Total
				}
				if k := kernelOf(name); k != "" {
					st, ok := kernels[k]
					if !ok {
						st = &ipm.Stats{}
						kernels[k] = st
					}
					st.Merge(e.Stats)
					continue // per-kernel entries double the stream totals; keep them out of call sites
				}
				acc, ok := sites[name]
				if !ok {
					acc = &siteAcc{}
					sites[name] = acc
				}
				acc.stats.Merge(e.Stats)
			}
		}
		// Per-rank imbalance (max/avg) per call site, worst job wins.
		// Single-rank jobs carry no balance information.
		if len(jp.Ranks) > 1 {
			for _, ft := range jp.FuncTotals() {
				imb := jp.Imbalance(ft.Name)
				w, ok := worst[ft.Name]
				if !ok || imb > w.MaxOverAvg || (imb == w.MaxOverAvg && job.ID < w.WorstJob) {
					worst[ft.Name] = ImbalanceAgg{Name: ft.Name, MaxOverAvg: imb, WorstJob: job.ID}
				}
			}
		}
	}

	rep.WallclockSeconds = wall.Seconds()
	rep.GPUSeconds = gpu.Seconds()
	rep.TransferSeconds = xfer.Seconds()
	rep.HostIdleSeconds = idle.Seconds()
	rep.MPISeconds = mpi.Seconds()
	if wall > 0 {
		rep.GPUBusyFraction = float64(gpu) / float64(wall)
		rep.HostBlockedFraction = float64(idle) / float64(wall)
	}

	rep.CallSites = make([]CallSiteAgg, 0, len(sites))
	for name, acc := range sites {
		row := CallSiteAgg{
			Name:     name,
			Domain:   ipm.Classify(name).String(),
			Calls:    acc.stats.Count,
			Errors:   acc.stats.Errors,
			Seconds:  acc.stats.Total.Seconds(),
			Transfer: !strings.HasPrefix(name, "@") && isTransfer(name),
		}
		if acc.stats.Count > 0 {
			row.PerCall = acc.stats.Avg().Seconds()
		}
		if wall > 0 {
			row.WallPct = 100 * float64(acc.stats.Total) / float64(wall)
		}
		rep.CallSites = append(rep.CallSites, row)
	}
	sort.Slice(rep.CallSites, func(i, j int) bool {
		a, b := rep.CallSites[i], rep.CallSites[j]
		if a.Seconds != b.Seconds {
			return a.Seconds > b.Seconds
		}
		return a.Name < b.Name
	})

	rep.TopKernels = make([]KernelAgg, 0, len(kernels))
	for k, st := range kernels {
		rep.TopKernels = append(rep.TopKernels, KernelAgg{
			Kernel: k, Launches: st.Count, Seconds: st.Total.Seconds(),
		})
	}
	sort.Slice(rep.TopKernels, func(i, j int) bool {
		a, b := rep.TopKernels[i], rep.TopKernels[j]
		if a.Seconds != b.Seconds {
			return a.Seconds > b.Seconds
		}
		return a.Kernel < b.Kernel
	})
	if len(rep.TopKernels) > topN {
		rep.TopKernels = rep.TopKernels[:topN]
	}

	rep.Imbalance = make([]ImbalanceAgg, 0, len(worst))
	for _, w := range worst {
		rep.Imbalance = append(rep.Imbalance, w)
	}
	sort.Slice(rep.Imbalance, func(i, j int) bool {
		a, b := rep.Imbalance[i], rep.Imbalance[j]
		if a.MaxOverAvg != b.MaxOverAvg {
			return a.MaxOverAvg > b.MaxOverAvg
		}
		return a.Name < b.Name
	})
	if len(rep.Imbalance) > topN {
		rep.Imbalance = rep.Imbalance[:topN]
	}
	return rep
}
