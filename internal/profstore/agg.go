package profstore

import (
	"sort"
	"strings"
	"time"

	"ipmgo/internal/ipm"
)

// This file computes the cross-job rollups behind GET /agg: the
// workload-level views that motivate running IPM on every job (paper
// Section II). Every slice in the report has a total ordering (time
// descending, then name ascending) and every number is accumulated as an
// integer duration before a single final float conversion, so the same
// corpus renders byte-identically regardless of ingest order, shard
// layout, or how many goroutines filled the store.

// AggOptions selects and sizes an aggregation.
type AggOptions struct {
	Sel  string // job selector (see Store.Select); "" = whole corpus
	TopN int    // rows kept in the top-kernel and imbalance tables (default 10)
}

// CallSiteAgg is one call-site signature rolled up across jobs and ranks.
type CallSiteAgg struct {
	Name     string  `json:"name"`
	Domain   string  `json:"domain"` // MPI / CUDA / CUBLAS / CUFFT / pseudo / other
	Calls    int64   `json:"calls"`
	Errors   int64   `json:"errors,omitempty"`
	Seconds  float64 `json:"seconds"`
	PerCall  float64 `json:"per_call_seconds"`
	WallPct  float64 `json:"wall_pct"`
	Transfer bool    `json:"transfer,omitempty"`
	// Submits/SubmitStallSeconds surface the driver command-queue layer:
	// how many commands this call site pushed through a submission queue
	// and the total virtual time they waited before device hand-off.
	Submits            int64   `json:"submits,omitempty"`
	SubmitStallSeconds float64 `json:"submit_stall_seconds,omitempty"`
	// EnergyJoules is the device energy attributed to this call site by
	// the power model (zero when the producing runs were unpowered).
	EnergyJoules float64 `json:"energy_joules,omitempty"`
}

// KernelAgg is one GPU kernel rolled up across streams, ranks and jobs.
type KernelAgg struct {
	Kernel   string  `json:"kernel"`
	Launches int64   `json:"launches"`
	Seconds  float64 `json:"seconds"`
}

// ImbalanceAgg reports the worst per-rank load imbalance (max/avg) seen
// for one call site, and the job it occurred in.
type ImbalanceAgg struct {
	Name       string  `json:"name"`
	MaxOverAvg float64 `json:"max_over_avg"`
	WorstJob   string  `json:"worst_job"`
}

// JobEnergyAgg is the per-job energy rollup: total attributed joules and
// the per-rank average. Jobs without energy attribution are omitted.
type JobEnergyAgg struct {
	Job           string  `json:"job"`
	Ranks         int     `json:"ranks"`
	EnergyJoules  float64 `json:"energy_joules"`
	PerRankJoules float64 `json:"per_rank_joules"`
}

// AggReport is the GET /agg response body.
type AggReport struct {
	Selector  string `json:"selector,omitempty"`
	Jobs      int    `json:"jobs"`
	Ranks     int    `json:"ranks"`
	LostRanks int    `json:"lost_ranks,omitempty"`
	Salvaged  int    `json:"salvaged_jobs,omitempty"`

	WallclockSeconds float64 `json:"wallclock_seconds"` // summed over ranks
	GPUSeconds       float64 `json:"gpu_seconds"`
	TransferSeconds  float64 `json:"transfer_seconds"`
	HostIdleSeconds  float64 `json:"host_idle_seconds"`
	MPISeconds       float64 `json:"mpi_seconds"`
	// SubmitStallSeconds sums command-queue submit stall over every rank
	// of every selected job (zero when no job modelled the queue layer).
	SubmitStallSeconds float64 `json:"submit_stall_seconds,omitempty"`
	// EnergyJoules sums attributed device energy over every rank of
	// every selected job (zero when no job carried a power model).
	EnergyJoules float64 `json:"energy_joules,omitempty"`

	// Fleet fractions of total rank wallclock: how busy the GPUs were
	// and how long hosts sat blocked behind them.
	GPUBusyFraction     float64 `json:"gpu_busy_fraction"`
	HostBlockedFraction float64 `json:"host_blocked_fraction"`

	CallSites  []CallSiteAgg  `json:"call_sites"`
	TopKernels []KernelAgg    `json:"top_kernels"`
	Imbalance  []ImbalanceAgg `json:"imbalance"`
	// JobEnergy lists the selected jobs carrying energy attribution, in
	// job-id order (the Select order), so the table is deterministic for
	// any ingest order.
	JobEnergy []JobEnergyAgg `json:"job_energy,omitempty"`
}

// isTransfer classifies a host call site as a host<->device transfer.
func isTransfer(name string) bool {
	return strings.Contains(name, "Memcpy") || strings.Contains(name, "Memset")
}

// isGPUExec matches the per-stream kernel-execution pseudo entries
// (@CUDA_EXEC_STRMxx without a :kernel suffix), the basis of the paper's
// GPU utilisation metric.
func isGPUExec(name string) bool {
	return strings.HasPrefix(name, "@CUDA_EXEC_STRM") && !strings.Contains(name, ":")
}

// kernelOf extracts the kernel name from a per-kernel pseudo entry
// (@CUDA_EXEC_STRMxx:kernel), or "" when the entry is not one.
func kernelOf(name string) string {
	if !strings.HasPrefix(name, "@CUDA_EXEC_STRM") {
		return ""
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return ""
}

// Aggregate computes the cross-job rollup for the selected jobs. Repeated
// aggregations of an unchanged store are served from the epoch-keyed memo
// cache (see memo.go); the returned report is shared and must not be
// mutated.
func (s *Store) Aggregate(opts AggOptions) *AggReport {
	if opts.TopN <= 0 {
		opts.TopN = 10
	}
	key := memoKey{kind: "agg", a: opts.Sel, n: opts.TopN}
	ep := s.epoch.Load()
	if rep, ok := s.memoLookup(ep, key); ok {
		return rep.(*AggReport)
	}
	rep := s.aggregateCold(opts)
	s.memoStore(ep, key, rep)
	return rep
}

// aggregateCold is the uncached aggregation path (also what the cold-path
// benchmark measures).
func (s *Store) aggregateCold(opts AggOptions) *AggReport {
	return aggregateJobs(s.Select(opts.Sel), opts)
}

// aggregateJobs merges the per-job rollups. Each job was reduced once at
// ingest; the query-time cost is proportional to the number of distinct
// call sites and kernels, not the number of rank entries.
func aggregateJobs(jobs []*Job, opts AggOptions) *AggReport {
	topN := opts.TopN
	if topN <= 0 {
		topN = 10
	}
	rep := &AggReport{Selector: opts.Sel, Jobs: len(jobs)}

	sites := make(map[string]*ipm.Stats)
	kernels := make(map[string]*ipm.Stats)
	worst := make(map[string]ImbalanceAgg)

	var wall, gpu, xfer, idle, mpi, stall time.Duration
	var energyNJ int64
	for _, job := range jobs {
		ro := job.roll()
		rep.Ranks += job.Ranks
		rep.LostRanks += ro.lostRanks
		if job.Salvaged {
			rep.Salvaged++
		}
		wall += ro.wall
		gpu += ro.gpu
		xfer += ro.xfer
		idle += ro.idle
		mpi += ro.mpi
		stall += ro.stall
		if ro.energy != 0 {
			energyNJ += ro.energy
			je := JobEnergyAgg{
				Job: job.ID, Ranks: job.Ranks,
				EnergyJoules: float64(ro.energy) / 1e9,
			}
			if job.Ranks > 0 {
				je.PerRankJoules = je.EnergyJoules / float64(job.Ranks)
			}
			rep.JobEnergy = append(rep.JobEnergy, je)
		}
		for name, st := range ro.sites {
			acc, ok := sites[name]
			if !ok {
				acc = &ipm.Stats{}
				sites[name] = acc
			}
			acc.Merge(st)
		}
		for k, st := range ro.kernels {
			acc, ok := kernels[k]
			if !ok {
				acc = &ipm.Stats{}
				kernels[k] = acc
			}
			acc.Merge(st)
		}
		// Per-rank imbalance (max/avg) per call site, worst job wins.
		// Jobs arrive sorted by id (Select) and each rollup lists every
		// site once, so this reproduces the original walk exactly.
		for _, ia := range ro.imb {
			w, ok := worst[ia.Name]
			if !ok || ia.MaxOverAvg > w.MaxOverAvg || (ia.MaxOverAvg == w.MaxOverAvg && ia.WorstJob < w.WorstJob) {
				worst[ia.Name] = ia
			}
		}
	}

	rep.WallclockSeconds = wall.Seconds()
	rep.GPUSeconds = gpu.Seconds()
	rep.TransferSeconds = xfer.Seconds()
	rep.HostIdleSeconds = idle.Seconds()
	rep.MPISeconds = mpi.Seconds()
	rep.SubmitStallSeconds = stall.Seconds()
	rep.EnergyJoules = float64(energyNJ) / 1e9
	if wall > 0 {
		rep.GPUBusyFraction = float64(gpu) / float64(wall)
		rep.HostBlockedFraction = float64(idle) / float64(wall)
	}

	rep.CallSites = make([]CallSiteAgg, 0, len(sites))
	for name, acc := range sites {
		row := CallSiteAgg{
			Name:     name,
			Domain:   ipm.Classify(name).String(),
			Calls:    acc.Count,
			Errors:   acc.Errors,
			Seconds:  acc.Total.Seconds(),
			Transfer: !strings.HasPrefix(name, "@") && isTransfer(name),
			Submits:  acc.Submits,
		}
		row.SubmitStallSeconds = acc.SubmitStall.Seconds()
		row.EnergyJoules = acc.EnergyJoules()
		if acc.Count > 0 {
			row.PerCall = acc.Avg().Seconds()
		}
		if wall > 0 {
			row.WallPct = 100 * float64(acc.Total) / float64(wall)
		}
		rep.CallSites = append(rep.CallSites, row)
	}
	sort.Slice(rep.CallSites, func(i, j int) bool {
		a, b := rep.CallSites[i], rep.CallSites[j]
		if a.Seconds != b.Seconds {
			return a.Seconds > b.Seconds
		}
		return a.Name < b.Name
	})

	rep.TopKernels = make([]KernelAgg, 0, len(kernels))
	for k, st := range kernels {
		rep.TopKernels = append(rep.TopKernels, KernelAgg{
			Kernel: k, Launches: st.Count, Seconds: st.Total.Seconds(),
		})
	}
	sort.Slice(rep.TopKernels, func(i, j int) bool {
		a, b := rep.TopKernels[i], rep.TopKernels[j]
		if a.Seconds != b.Seconds {
			return a.Seconds > b.Seconds
		}
		return a.Kernel < b.Kernel
	})
	if len(rep.TopKernels) > topN {
		rep.TopKernels = rep.TopKernels[:topN]
	}

	rep.Imbalance = make([]ImbalanceAgg, 0, len(worst))
	for _, w := range worst {
		rep.Imbalance = append(rep.Imbalance, w)
	}
	sort.Slice(rep.Imbalance, func(i, j int) bool {
		a, b := rep.Imbalance[i], rep.Imbalance[j]
		if a.MaxOverAvg != b.MaxOverAvg {
			return a.MaxOverAvg > b.MaxOverAvg
		}
		return a.Name < b.Name
	})
	if len(rep.Imbalance) > topN {
		rep.Imbalance = rep.Imbalance[:topN]
	}
	return rep
}
