package profstore

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// The store benchmarks back the tentpole claim that the corpus sustains
// concurrent ingest and aggregation: ingest fans out across shards, and
// aggregation reads run against a live, growing store.

// benchCorpus pre-renders n synthetic XML documents (rendering cost is
// not what is being measured).
func benchCorpus(b *testing.B, n int) [][]byte {
	b.Helper()
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = syntheticXML(b, 42, i)
	}
	return docs
}

// BenchmarkProfstoreIngest measures parallel ingest throughput into the
// sharded store (tolerant parse + WAL-less insert).
func BenchmarkProfstoreIngest(b *testing.B) {
	docs := benchCorpus(b, 64)
	s := New()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			// Distinct ids: measure insert, not replacement, pressure.
			doc := docs[int(i)%len(docs)]
			if _, err := s.Ingest(doc, fmt.Sprintf("j%d", i), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProfstoreIngestStream measures single-goroutine streaming
// ingest over a fixed corpus, reporting MB/s (the paper's operative
// number: what one collector core sustains) alongside ns/op and
// allocs/op. Replacement ingests keep the store size constant so the
// figure isolates the scan → rollup → insert path.
func BenchmarkProfstoreIngestStream(b *testing.B) {
	docs := benchCorpus(b, 64)
	var total int64
	for _, d := range docs {
		total += int64(len(d))
	}
	s := New()
	ids := make([]string, len(docs))
	for i := range ids {
		ids[i] = fmt.Sprintf("j%d", i)
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, doc := range docs {
			if _, err := s.Ingest(doc, ids[j], nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkProfstoreAgg measures full-corpus aggregation over a
// 100-job corpus — deliberately pinned to the uncached path (the
// rollup merge), so the snapshot keeps tracking the real recompute cost
// rather than a memo hit.
func BenchmarkProfstoreAgg(b *testing.B) {
	docs := benchCorpus(b, 100)
	s := New()
	for i, doc := range docs {
		if _, err := s.Ingest(doc, fmt.Sprintf("j%d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.aggregateCold(AggOptions{TopN: 10}); rep.Jobs != 100 {
			b.Fatalf("jobs = %d", rep.Jobs)
		}
	}
}

// BenchmarkProfstoreAggCached measures repeated /agg on an unchanged
// store: after the first computation every call is an epoch-checked memo
// hit. The acceptance bar is ≥10× faster than BenchmarkProfstoreAgg.
func BenchmarkProfstoreAggCached(b *testing.B) {
	docs := benchCorpus(b, 100)
	s := New()
	for i, doc := range docs {
		if _, err := s.Ingest(doc, fmt.Sprintf("j%d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	s.Aggregate(AggOptions{}) // prime the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Aggregate(AggOptions{}); rep.Jobs != 100 {
			b.Fatalf("jobs = %d", rep.Jobs)
		}
	}
}

// BenchmarkProfstoreAggUnderIngest measures aggregation latency while
// parallel writers keep mutating the store — the mixed workload the
// per-shard RWMutex design exists for.
func BenchmarkProfstoreAggUnderIngest(b *testing.B) {
	docs := benchCorpus(b, 64)
	s := New()
	for i, doc := range docs {
		if _, err := s.Ingest(doc, fmt.Sprintf("j%d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	defer close(stop)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Replacement ingests: constant store size, live write load.
				id := fmt.Sprintf("j%d", i%len(docs))
				if _, err := s.Ingest(docs[i%len(docs)], id, nil); err != nil {
					return
				}
				_ = w
			}
		}(w)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Aggregate(AggOptions{}); rep.Jobs != len(docs) {
			b.Fatalf("jobs = %d", rep.Jobs)
		}
	}
}
