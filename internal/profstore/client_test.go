package profstore

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/telemetry"
)

// flakyHandler fails the first n requests with 503, then delegates.
type flakyHandler struct {
	fails atomic.Int64
	next  http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.fails.Add(-1) >= 0 {
		http.Error(w, "catching fire", http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

func TestPosterRetriesTransientFailures(t *testing.T) {
	store := New()
	fh := &flakyHandler{next: NewServer(store, telemetry.NewRegistry()).Handler()}
	fh.fails.Store(2)
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var slept []time.Duration
	p := &Poster{
		URL:    ts.URL,
		Policy: faultsim.RetryPolicy{MaxAttempts: 4, Backoff: faultsim.Dur(time.Millisecond), MaxBackoff: faultsim.Dur(4 * time.Millisecond)},
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	id, attempts, err := p.PostProfile(SyntheticProfile(3, 0), "", []string{"retry"})
	if err != nil {
		t.Fatalf("post failed despite retry budget: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two 503s then success)", attempts)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Errorf("backoff schedule = %v, want [1ms 2ms]", slept)
	}
	if got := store.Get(id); got == nil || got.Tags[0] != "retry" {
		t.Errorf("profile not stored under %s", id)
	}
}

func TestPosterGivesUpAfterBudget(t *testing.T) {
	fh := &flakyHandler{next: http.NotFoundHandler()}
	fh.fails.Store(100)
	ts := httptest.NewServer(fh)
	defer ts.Close()

	p := &Poster{URL: ts.URL, Policy: faultsim.RetryPolicy{MaxAttempts: 3},
		Sleep: func(time.Duration) {}}
	_, attempts, err := p.PostProfile(SyntheticProfile(3, 1), "", nil)
	if err == nil {
		t.Fatal("post against a dead server succeeded")
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want the full budget of 3", attempts)
	}
}

func TestPosterDoesNotRetryPermanentRejection(t *testing.T) {
	// A 400 (unparseable body) must not be retried: it fails identically
	// every time.
	store := New()
	ts := httptest.NewServer(NewServer(store, telemetry.NewRegistry()).Handler())
	defer ts.Close()

	p := &Poster{URL: ts.URL, Policy: faultsim.RetryPolicy{MaxAttempts: 5},
		Sleep: func(time.Duration) { t.Error("slept before a permanent failure") }}
	attempts, err := p.PostXML([]byte("not xml"), "", nil)
	if err == nil || attempts != 1 {
		t.Errorf("attempts = %d err = %v, want 1 attempt and an error", attempts, err)
	}
	if !strings.Contains(err.Error(), "400") {
		t.Errorf("error does not surface the status: %v", err)
	}
}

func TestPosterURLForms(t *testing.T) {
	p := &Poster{URL: "http://host:1234"}
	u, err := p.ingestURL("j1", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if u != "http://host:1234/ingest?id=j1&tags=a%2Cb" {
		t.Errorf("ingestURL = %s", u)
	}
	p = &Poster{URL: "http://host:1234/ingest"}
	if u, _ = p.ingestURL("", nil); u != "http://host:1234/ingest" {
		t.Errorf("explicit /ingest URL rewritten: %s", u)
	}
}

// readonlyHandler answers 503 + Retry-After for the first n requests —
// a store degraded to read-only — then recovers.
type readonlyHandler struct {
	fails atomic.Int64
	next  http.Handler
}

func (h *readonlyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.fails.Add(-1) >= 0 {
		w.Header().Set("Retry-After", "2")
		http.Error(w, "read-only", http.StatusServiceUnavailable)
		return
	}
	h.next.ServeHTTP(w, r)
}

// TestPosterHonorsRetryAfter: a 503 with Retry-After is a live-but-
// degraded store, not a dead one — the client must sleep the advertised
// delay on its separate, patient budget and succeed once the store
// recovers, even with no transient-retry budget at all.
func TestPosterHonorsRetryAfter(t *testing.T) {
	store := New()
	h := &readonlyHandler{next: NewServer(store, telemetry.NewRegistry()).Handler()}
	h.fails.Store(2)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var slept []time.Duration
	p := &Poster{
		URL:    ts.URL,
		Policy: faultsim.RetryPolicy{MaxAttempts: 1}, // zero transient retries
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	id, attempts, err := p.PostProfile(SyntheticProfile(9, 0), "", nil)
	if err != nil {
		t.Fatalf("post through read-only window failed: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two 503s then success)", attempts)
	}
	if len(slept) != 2 || slept[0] != 2*time.Second || slept[1] != 2*time.Second {
		t.Errorf("slept %v, want the advertised [2s 2s]", slept)
	}
	if store.Get(id) == nil {
		t.Error("profile not stored after recovery")
	}
	st := p.Stats()
	if st.Posts != 1 || st.Retries != 2 || st.Failures != 0 {
		t.Errorf("stats = %+v, want 1 post, 2 retries, 0 failures", st)
	}
}

func TestPosterReadOnlyBudgetBounded(t *testing.T) {
	h := &readonlyHandler{}
	h.fails.Store(1000) // never recovers
	ts := httptest.NewServer(h)
	defer ts.Close()

	sleeps := 0
	p := &Poster{
		URL:              ts.URL,
		Policy:           faultsim.RetryPolicy{MaxAttempts: 1},
		ReadOnlyAttempts: 3,
		Sleep:            func(time.Duration) { sleeps++ },
	}
	attempts, err := p.PostXML(syntheticXML(t, 9, 1), "", nil)
	if err == nil {
		t.Fatal("post against a permanently read-only store succeeded")
	}
	if attempts != 3 || sleeps != 2 {
		t.Errorf("attempts = %d sleeps = %d, want the 3-attempt read-only budget", attempts, sleeps)
	}
	if st := p.Stats(); st.Failures != 1 {
		t.Errorf("failures = %d, want 1", st.Failures)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"":     0,
		"0":    0,
		"3":    3 * time.Second,
		" 7 ":  7 * time.Second,
		"3600": maxRetryAfter, // capped: don't stall a job epilogue for an hour
		"soon": 0,
		"-2":   0,
	}
	for in, want := range cases {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}
