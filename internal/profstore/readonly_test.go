package profstore

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/telemetry"
)

// faultyStore opens a WAL store whose append path is wrapped by the
// given disk-fault plan.
func faultyStore(t *testing.T, planJSON string) (*Store, string) {
	t.Helper()
	plan, err := faultsim.ParseDiskPlan([]byte(planJSON))
	if err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(t.TempDir(), "store.wal")
	s, _, err := OpenStore(wal, StoreOptions{
		WrapWAL: func(inner WriteSyncer) WriteSyncer { return plan.Wrap(inner) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, wal
}

// TestWALFaultFlipsReadOnly drives the store into an injected EIO on
// the third WAL append: the failing ingest and everything after it must
// return ErrReadOnly, queries must keep working, and the two
// acknowledged ingests must survive a reopen without the fault.
func TestWALFaultFlipsReadOnly(t *testing.T) {
	s, wal := faultyStore(t, `{"faults":[{"op":"write","at":3,"kind":"eio","count":-1}]}`)
	for i := 0; i < 2; i++ {
		if _, err := s.Ingest(syntheticXML(t, 5, i), "", nil); err != nil {
			t.Fatalf("ingest %d before the fault: %v", i, err)
		}
	}
	if ro, _ := s.ReadOnly(); ro {
		t.Fatal("store read-only before any fault fired")
	}
	if _, err := s.Ingest(syntheticXML(t, 5, 2), "", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ingest at the injected EIO: %v, want ErrReadOnly", err)
	}
	ro, reason := s.ReadOnly()
	if !ro || !strings.Contains(reason, "append failed") {
		t.Errorf("ReadOnly() = %v, %q after WAL EIO", ro, reason)
	}
	if _, err := s.Ingest(syntheticXML(t, 5, 3), "", nil); !errors.Is(err, ErrReadOnly) {
		t.Errorf("ingest after degradation: %v, want ErrReadOnly", err)
	}
	if s.WALErrors() == 0 {
		t.Error("WAL failure not counted")
	}
	// Reads keep working on the degraded store; no acked job was lost.
	if s.Len() != 2 {
		t.Errorf("degraded corpus len %d, want the 2 acked jobs", s.Len())
	}
	before := aggJSON(t, s)
	if _, err := s.Snapshot(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("snapshot on degraded store: %v, want ErrReadOnly", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("closing degraded store: %v", err)
	}

	s2, st, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st.Recovered != 2 || s2.Len() != 2 {
		t.Fatalf("recovered %d jobs (stats %+v), want both acked ingests", s2.Len(), st)
	}
	if !bytes.Equal(before, aggJSON(t, s2)) {
		t.Error("aggregate differs after recovering the degraded store's WAL")
	}
}

// TestShortWriteDegradesWithoutCorruption injects a torn append (half
// the frame reaches disk): the store degrades, and replay detects the
// torn frame by CRC instead of mistaking it for data.
func TestShortWriteDegradesWithoutCorruption(t *testing.T) {
	s, wal := faultyStore(t, `{"faults":[{"op":"write","at":2,"kind":"short"}]}`)
	if _, err := s.Ingest(syntheticXML(t, 5, 0), "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(syntheticXML(t, 5, 1), "", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("torn append: %v, want ErrReadOnly", err)
	}
	s.Close()

	s2, st, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st.Recovered != 1 || st.Skipped != 1 {
		t.Errorf("recovery stats %+v, want 1 recovered + 1 torn frame skipped", st)
	}
}

// TestServerReadOnlySurface exercises the HTTP view of degradation:
// ingest answers 503 with Retry-After, /readyz flips, /metrics exposes
// the gauge, and reads still answer 200.
func TestServerReadOnlySurface(t *testing.T) {
	s, _ := faultyStore(t, `{"faults":[{"op":"sync","at":2,"kind":"full","count":-1}]}`)
	defer s.Close()
	srv := NewServer(s, telemetry.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(doc []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/ingest", "application/xml", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(syntheticXML(t, 6, 0)); resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: %d", resp.StatusCode)
	}
	resp := post(syntheticXML(t, 6, 1)) // injected ENOSPC on fsync
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest at disk-full: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz on degraded store: %v %d, want 503", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz must stay 200 (process is alive): %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if body, err := httpGet(ts.URL + "/metrics"); err != nil {
		t.Error(err)
	} else if !strings.Contains(string(body), MetricReadonly+" 1") {
		t.Errorf("/metrics missing %s 1", MetricReadonly)
	}
	if _, err := httpGet(ts.URL + "/agg"); err != nil {
		t.Errorf("reads must survive degradation: %v", err)
	}
}

// TestCompactEndpoint drives POST /compact and checks the WAL actually
// shrank.
func TestCompactEndpoint(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "store.wal")
	s, _, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ingestN(t, s, 3)
	srv := NewServer(s, telemetry.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /compact: %d", resp.StatusCode)
	}
	if st, err := os.Stat(wal); err != nil || st.Size() != 0 {
		t.Errorf("WAL not truncated by /compact: %v, %d bytes", err, st.Size())
	}
	if _, err := os.Stat(snapshotPath(wal, 1)); err != nil {
		t.Errorf("snapshot 1 missing after /compact: %v", err)
	}
	// /readyz stays 200: compaction is routine maintenance, not distress.
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after compact: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}
