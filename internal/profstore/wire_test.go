package profstore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ipmgo/internal/ipm"
)

// fixedSyntheticXML renders one deterministic synthetic profile — the
// second shard's corpus in the wire fuzz target.
func fixedSyntheticXML(t testing.TB, i int) []byte {
	var buf bytes.Buffer
	if err := ipm.WriteXML(&buf, SyntheticProfile(2011, i)); err != nil {
		t.Fatalf("rendering synthetic profile: %v", err)
	}
	return buf.Bytes()
}

func reportJSON(t testing.TB, v any) string {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// FuzzRollupWire proves the shard rollup wire format faithful: for any
// ingestible document, splitting the corpus across two stores, shipping
// both halves through EncodeWireJobs/DecodeWireJobs and merging at a
// router produces the identical /agg (and /regress) reports as one
// store holding everything — the byte-identity contract cluster mode
// rests on.
func FuzzRollupWire(f *testing.F) {
	for _, name := range []string{"base.xml", "head.xml", "energy.xml", "submit.xml"} {
		if data, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(data)
		}
	}
	f.Add(fixedSyntheticXML(f, 7))
	f.Add([]byte("<ipm_log><job username=\"u\" nhosts=\"1\"></job></ipm_log>"))

	f.Fuzz(func(t *testing.T, doc []byte) {
		// Reference: one store with the fuzz doc and a fixed companion.
		companion := fixedSyntheticXML(t, 3)
		single := New()
		if _, err := single.Ingest(doc, "", []string{"fuzz"}); err != nil {
			t.Skip() // unparseable either way; nothing to compare
		}
		if _, err := single.Ingest(companion, "", []string{"fixed"}); err != nil {
			t.Fatalf("companion ingest: %v", err)
		}
		wantAgg := reportJSON(t, single.Aggregate(AggOptions{}))
		wantRegress := reportJSON(t, single.Regress(RegressOptions{Base: "tag:fuzz", Head: "tag:fixed"}))

		// Cluster: the two documents on separate shards, rollups shipped
		// over the wire and merged router-side.
		s1, s2 := New(), New()
		if _, err := s1.Ingest(doc, "", []string{"fuzz"}); err != nil {
			t.Fatalf("shard ingest diverged from reference: %v", err)
		}
		if _, err := s2.Ingest(companion, "", []string{"fixed"}); err != nil {
			t.Fatalf("companion ingest: %v", err)
		}
		var shards [][]WireJob
		for _, s := range []*Store{s1, s2} {
			enc, err := EncodeWireJobs(s.WireJobs())
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			dec, err := DecodeWireJobs(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			// The wire format must be a fixed point: re-encoding the
			// decoded jobs yields the same bytes.
			re, err := EncodeWireJobs(dec)
			if err != nil || !bytes.Equal(enc, re) {
				t.Fatalf("wire encoding is not canonical (err=%v)", err)
			}
			shards = append(shards, dec)
		}
		merged := MergeWireJobs(shards...)
		if got := reportJSON(t, AggregateJobs(merged, AggOptions{})); got != wantAgg {
			t.Errorf("merged /agg differs from single-store aggregation\ngot:  %s\nwant: %s", got, wantAgg)
		}
		base := FilterJobs(merged, "tag:fuzz")
		head := FilterJobs(merged, "tag:fixed")
		if got := reportJSON(t, RegressJobs(base, head, RegressOptions{Base: "tag:fuzz", Head: "tag:fixed"})); got != wantRegress {
			t.Errorf("merged /regress differs from single-store comparison\ngot:  %s\nwant: %s", got, wantRegress)
		}
	})
}

// TestWireJobsMemoized: repeated WireJobs on a quiet store returns the
// cached slice; an ingest invalidates it.
func TestWireJobsMemoized(t *testing.T) {
	s := New()
	if _, err := s.Ingest(fixedSyntheticXML(t, 0), "", nil); err != nil {
		t.Fatal(err)
	}
	a := s.WireJobs()
	b := s.WireJobs()
	if len(a) != 1 || len(b) != 1 || &a[0] != &b[0] {
		t.Error("WireJobs not served from the epoch memo on a quiet store")
	}
	if _, err := s.Ingest(fixedSyntheticXML(t, 1), "", nil); err != nil {
		t.Fatal(err)
	}
	if c := s.WireJobs(); len(c) != 2 {
		t.Errorf("WireJobs after ingest = %d jobs, want 2", len(c))
	}
}

// TestWireJobRoundTripFields: the reconstructed job preserves the store
// metadata /jobs-independent queries read.
func TestWireJobRoundTripFields(t *testing.T) {
	s := New()
	job, err := s.Ingest(fixedSyntheticXML(t, 4), "", []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	got := job.Wire().Job()
	if got.ID != job.ID || got.Command != job.Command || got.Ranks != job.Ranks ||
		got.Salvaged != job.Salvaged || got.Warnings != job.Warnings || got.Bytes != job.Bytes {
		t.Errorf("round-tripped job metadata differs: %+v vs %+v", got, job)
	}
	if len(got.Tags) != 2 || got.Tags[0] != "a" || got.Tags[1] != "b" {
		t.Errorf("round-tripped tags = %v", got.Tags)
	}
}

// TestReopenBootstampsEpoch is the restart-cache regression test: a
// store reopened over the same WAL must never report an epoch any
// earlier store generation used, so no (epoch, rollup) pair can
// validate across a restart; and the memo still works within one
// generation.
func TestReopenBootstampsEpoch(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "profiles.wal")
	s1, _, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Ingest(fixedSyntheticXML(t, 0), "", []string{"boot"}); err != nil {
		t.Fatal(err)
	}
	e1 := s1.Epoch()
	rep1 := s1.Aggregate(AggOptions{})
	if s1.Aggregate(AggOptions{}) != rep1 {
		t.Error("memo miss on a quiet store (same generation)")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st.Recovered != 1 {
		t.Fatalf("recovered %d records, want 1", st.Recovered)
	}
	e2 := s2.Epoch()
	if e2 == e1 {
		t.Fatalf("reopened store reuses epoch %d: a pre-restart cached rollup would validate", e1)
	}
	// The recovered corpus still aggregates correctly and memoizes.
	rep2 := s2.Aggregate(AggOptions{})
	if reportJSON(t, rep2) != reportJSON(t, rep1) {
		t.Error("recovered aggregation differs from pre-restart one")
	}
	if s2.Aggregate(AggOptions{}) != rep2 {
		t.Error("memo miss on recovered store")
	}
}
