package profstore

import (
	"slices"
	"sync"
	"time"

	"ipmgo/internal/ipm"
)

// This file is the streaming ingest hot path: one pass over the raw XML
// computes the content-hash id, the per-job rollup and the WAL record,
// with all scratch state pooled and reused across uploads. The
// byte-level scan itself lives in ipm.ScanXMLTolerant; everything here
// is the reduction that used to run over the JobProfile DOM
// (computeRollup) re-expressed as a ScanSink, plus the cleanliness
// prescan that decides whether the fast path applies at all.
//
// Correctness rests on two properties, both enforced by differential
// tests and FuzzScanVsParse:
//
//  1. the scanner's event stream matches ParseXMLTolerant on every
//     input it accepts (see scan.go for the bail-out contract), and
//  2. folding entries per name first and merging the per-name subtotals
//     afterwards yields the same rollup as computeRollup's flat fold —
//     ipm.Stats.Merge is commutative and associative over non-empty
//     operands, zero-count operands contribute nothing, and the
//     unconditional duration sums are plain integer addition.

// cleanByte marks the bytes on which the fast scanner is byte-exact
// with encoding/xml: printable ASCII plus tab/LF/CR, minus '&' (entity
// expansion rewrites the text).
var cleanByte = func() (t [256]bool) {
	for c := 0x20; c < 0x7f; c++ {
		t[c] = true
	}
	t['\t'], t['\n'], t['\r'] = true, true, true
	t['&'] = false
	return
}()

// fnv1aOffset/fnv1aPrime are the FNV-1a 64-bit parameters, matching
// hash/fnv (and therefore DeriveID).
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

// prescanHash walks the document once, computing the FNV-1a content
// hash (the derived job id) and the fast-path cleanliness verdict in
// the same pass.
func prescanHash(xml []byte) (hash uint64, clean bool) {
	h := uint64(fnv1aOffset)
	clean = true
	for _, b := range xml {
		h = (h ^ uint64(b)) * fnv1aPrime
		clean = clean && cleanByte[b]
	}
	return h, clean
}

// prescanClean is prescanHash without the hash, for ingests that supply
// an id; it exits at the first disqualifying byte.
func prescanClean(xml []byte) bool {
	for _, b := range xml {
		if !cleanByte[b] {
			return false
		}
	}
	return true
}

// formatID renders a content hash as the derived job id, equal to
// DeriveID's fmt.Sprintf("j%016x", h) without the fmt round trip.
func formatID(h uint64) string {
	const hex = "0123456789abcdef"
	var b [17]byte
	b[0] = 'j'
	for i := 16; i >= 1; i-- {
		b[i] = hex[h&0xf]
		h >>= 4
	}
	return string(b[:])
}

// nameAcc accumulates everything the rollup needs about one call-site
// name: the merged Stats (sites/kernels tables), the unconditional
// duration sum (gpu/idle/xfer/mpi classification and the imbalance
// total), and the per-task fold behind the max/avg imbalance.
type nameAcc struct {
	name   string
	kernel string // kernelOf(name), computed once at interning

	run uint64 // last sink run that touched this acc (lazy reset)

	merged ipm.Stats
	raw    time.Duration // unconditional sum of entry totals

	// Per-task imbalance fold: curSum accumulates within the task
	// numbered lastTask; crossing into a new task folds it into
	// maxSum/seen. Mirrors spreadOf over per-rank FuncTime values.
	curSum   time.Duration
	lastTask int
	maxSum   time.Duration
	seen     int
}

// fold closes the pending per-task sum, if any.
func (a *nameAcc) fold() {
	if a.lastTask == 0 {
		return
	}
	if a.seen == 0 || a.curSum > a.maxSum {
		a.maxSum = a.curSum
	}
	a.seen++
	a.curSum = 0
	a.lastTask = 0
}

// maxAccCache bounds the cross-ingest name cache; a scratch that has
// seen more distinct names than this is reset wholesale rather than
// growing without bound on adversarial corpora.
const maxAccCache = 4096

// rollupSink reduces a scan's event stream straight into rollup form.
// It is reused across ingests via the scratch pool: the accs map
// persists (interned names, allocated nameAccs) while per-run state is
// reset lazily through the run counter.
type rollupSink struct {
	run  uint64
	accs map[string]*nameAcc
	list []*nameAcc // accs touched this run, in first-appearance order

	cmds map[string]string // interned command strings

	// Per-run document state.
	command   string
	taskIdx   int
	tasks     int
	wall      time.Duration
	gpu       time.Duration
	xfer      time.Duration
	idle      time.Duration
	mpi       time.Duration
	lostRanks int

	// Submit-stall fold. The task-level attribute wins when present;
	// logs predating it fall back to summing the entry attributes —
	// mirroring FromXML's re-derivation, so scanning stays differential
	// with the parse path.
	stall          time.Duration
	taskStall      time.Duration
	taskEntryStall time.Duration

	// Energy fold, same task-attribute-wins contract as submit stall.
	energy          int64
	taskEnergy      int64
	taskEntryEnergy int64
}

func newRollupSink() *rollupSink {
	return &rollupSink{
		accs: make(map[string]*nameAcc),
		cmds: make(map[string]string),
	}
}

// reset prepares the sink for a new document without discarding the
// interned name cache.
func (k *rollupSink) reset() {
	k.run++
	k.list = k.list[:0]
	k.command = ""
	k.taskIdx = 0
	k.tasks = 0
	k.wall, k.gpu, k.xfer, k.idle, k.mpi = 0, 0, 0, 0, 0
	k.lostRanks = 0
	k.stall, k.taskStall, k.taskEntryStall = 0, 0, 0
	k.energy, k.taskEnergy, k.taskEntryEnergy = 0, 0, 0
	if len(k.accs) > maxAccCache {
		k.accs = make(map[string]*nameAcc)
	}
	if len(k.cmds) > maxAccCache {
		k.cmds = make(map[string]string)
	}
}

func (k *rollupSink) Header(h *ipm.ScanHeader) {
	cmd, ok := k.cmds[string(h.Command)] // no-alloc []byte map key lookup
	if !ok {
		cmd = string(h.Command)
		k.cmds[cmd] = cmd
	}
	k.command = cmd
}

func (k *rollupSink) TaskStart(t *ipm.ScanTask) {
	k.taskIdx++
	k.wall += t.Wallclock
	k.taskStall = t.SubmitStall
	k.taskEntryStall = 0
	k.taskEnergy = t.Energy
	k.taskEntryEnergy = 0
	if t.Lost {
		k.lostRanks++
	}
}

func (k *rollupSink) TaskEnd() {
	k.tasks++
	if k.taskStall != 0 {
		k.stall += k.taskStall
	} else {
		k.stall += k.taskEntryStall
	}
	k.taskStall, k.taskEntryStall = 0, 0
	if k.taskEnergy != 0 {
		k.energy += k.taskEnergy
	} else {
		k.energy += k.taskEntryEnergy
	}
	k.taskEnergy, k.taskEntryEnergy = 0, 0
}

// lookup returns the accumulator for name, interning it on first sight
// and lazily resetting stale per-run state.
func (k *rollupSink) lookup(name []byte) *nameAcc {
	acc := k.accs[string(name)] // no-alloc []byte map key lookup
	if acc == nil {
		n := string(name)
		acc = &nameAcc{name: n, kernel: kernelOf(n)}
		k.accs[n] = acc
	}
	if acc.run != k.run {
		acc.run = k.run
		acc.merged = ipm.Stats{}
		acc.raw, acc.curSum, acc.maxSum = 0, 0, 0
		acc.lastTask, acc.seen = 0, 0
		k.list = append(k.list, acc)
	}
	return acc
}

func (k *rollupSink) Entry(e *ipm.ScanEntry) {
	name := e.Name
	total := e.Total
	// The classification switch of computeRollup, on raw bytes.
	switch {
	case isGPUExecB(name):
		k.gpu += total
	case string(name) == ipm.HostIdleName:
		k.idle += total
	case len(name) > 0 && name[0] == '@':
		// Other pseudo entries: tallied only via sites/kernels below.
	case isTransferB(name):
		k.xfer += total
	}
	if hasPrefixB(name, "MPI_") { // Classify == DomainMPI ('@' wins first, but "MPI_" excludes it)
		k.mpi += total
	}

	acc := k.lookup(name)
	if acc.lastTask != k.taskIdx {
		acc.fold()
		acc.lastTask = k.taskIdx
	}
	acc.curSum += total
	acc.raw += total
	k.taskEntryStall += e.SubmitStall
	k.taskEntryEnergy += e.Energy
	acc.merged.Merge(ipm.Stats{
		Count: e.Count, Total: e.Total, Min: e.Min, Max: e.Max, Errors: e.Errors,
		Submits: e.Submits, SubmitStall: e.SubmitStall, Energy: e.Energy,
	})
}

func hasPrefixB(b []byte, p string) bool {
	return len(b) >= len(p) && string(b[:len(p)]) == p
}

func containsB(b []byte, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(b); i++ {
		if string(b[i:i+len(sub)]) == sub {
			return true
		}
	}
	return false
}

// isTransferB / isGPUExecB are the byte-slice twins of agg.go's
// classifiers.
func isTransferB(b []byte) bool { return containsB(b, "Memcpy") || containsB(b, "Memset") }

func isGPUExecB(b []byte) bool {
	return hasPrefixB(b, "@CUDA_EXEC_STRM") && !containsB(b, ":")
}

// build materializes the accumulated state into the immutable rollup,
// byte-identical to computeRollup over the equivalent JobProfile.
func (k *rollupSink) build(jobID string) *rollup {
	ro := &rollup{
		wall: k.wall, gpu: k.gpu, xfer: k.xfer, idle: k.idle, mpi: k.mpi,
		stall:     k.stall,
		energy:    k.energy,
		lostRanks: k.lostRanks,
		sites:     make(map[string]ipm.Stats),
		kernels:   make(map[string]ipm.Stats),
	}
	for _, acc := range k.list {
		acc.fold()
		if acc.kernel != "" {
			st := ro.kernels[acc.kernel]
			st.Merge(acc.merged)
			ro.kernels[acc.kernel] = st
			continue
		}
		ro.sites[acc.name] = acc.merged
	}
	if k.tasks > 1 {
		// FuncTotals order: merged total descending, then name — the
		// comparator is a total order (names are unique), so any sort
		// reproduces it.
		slices.SortFunc(k.list, func(a, b *nameAcc) int {
			switch {
			case a.merged.Total != b.merged.Total:
				if a.merged.Total > b.merged.Total {
					return -1
				}
				return 1
			case a.name < b.name:
				return -1
			case a.name > b.name:
				return 1
			}
			return 0
		})
		for _, acc := range k.list {
			// spreadOf over per-rank FuncTime: ranks without the name
			// contribute zeros, so the max is clamped at zero when any
			// rank missed it.
			max := acc.maxSum
			if acc.seen < k.tasks && max < 0 {
				max = 0
			}
			avg := acc.raw / time.Duration(k.tasks)
			mo := 0.0
			if avg != 0 {
				mo = float64(max) / float64(avg)
			}
			ro.imb = append(ro.imb, ImbalanceAgg{
				Name: acc.name, MaxOverAvg: mo, WorstJob: jobID,
			})
		}
	}
	return ro
}

// ingestScratch is the pooled per-ingest working set: the sink, the
// scanner's parse report (its warning slice's backing array is reused)
// and the WAL encode buffer.
type ingestScratch struct {
	sink   *rollupSink
	rep    ipm.ParseReport
	walBuf []byte
}

var scratchPool = sync.Pool{
	New: func() any { return &ingestScratch{sink: newRollupSink()} },
}

// resetReport clears a recycled ParseReport, keeping the warning
// slice's capacity.
func resetReport(rep *ipm.ParseReport) {
	rep.Warnings = rep.Warnings[:0]
	rep.Truncated = false
	rep.TasksRecovered = 0
	rep.TasksDeclared = 0
}

// appendJSONBytes appends s as a JSON string literal, byte-identical
// to how json.Marshal renders a Go string: the two-character escapes
// for quote/backslash/\n\r\t, \u00xx for '<', '>', '&' (HTML escaping
// is on for Marshal) and remaining control bytes, ASCII raw. ok=false
// (buffer contents then unusable) for non-ASCII bytes, where Marshal's
// UTF-8 validation takes over — callers fall back to json.Marshal for
// the whole record.
func appendJSONBytes[T string | []byte](buf []byte, s T) ([]byte, bool) {
	const hex = "0123456789abcdef"
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c == '<' || c == '>' || c == '&' || c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		case c < 0x80:
			buf = append(buf, c)
		default:
			return buf, false
		}
	}
	return append(buf, '"'), true
}

// appendWALRecord renders walRecord{id, tags, xml} exactly as
// json.Marshal would, without the reflection walk or the intermediate
// string(xml) copy — the frame payload for finishFrame. ok=false means
// some field needs encoding/json's full escaping.
func appendWALRecord(buf []byte, id string, tags []string, xml []byte) ([]byte, bool) {
	var ok bool
	buf = append(buf, `{"id":`...)
	if buf, ok = appendJSONBytes(buf, id); !ok {
		return buf, false
	}
	if len(tags) > 0 { // tags,omitempty
		buf = append(buf, `,"tags":[`...)
		for i, t := range tags {
			if i > 0 {
				buf = append(buf, ',')
			}
			if buf, ok = appendJSONBytes(buf, t); !ok {
				return buf, false
			}
		}
		buf = append(buf, ']')
	}
	buf = append(buf, `,"xml":`...)
	if buf, ok = appendJSONBytes(buf, xml); !ok {
		return buf, false
	}
	return append(buf, '}'), true
}
