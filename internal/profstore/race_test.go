package profstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ipmgo/internal/ipm"
)

// syntheticXML renders synthetic job i as IPM XML bytes.
func syntheticXML(t testing.TB, seed uint64, i int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ipm.WriteXML(&buf, SyntheticProfile(seed, i)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConcurrentIngestAndQuery is the store-level race test run under
// `make race`: many writers ingesting while readers aggregate, regress
// and list — with -race this proves the shard locking is sound.
func TestConcurrentIngestAndQuery(t *testing.T) {
	const jobs, writers, readers = 100, 8, 4
	s := New()

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				tags := []string{fmt.Sprintf("batch:%d", i%2)}
				if _, err := s.Ingest(syntheticXML(t, 7, i), "", tags); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s.Aggregate(AggOptions{})
				s.Regress(RegressOptions{Base: "tag:batch:0", Head: "tag:batch:1"})
				s.List()
				s.Len()
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	close(done)
	rg.Wait()

	if s.Len() != jobs {
		t.Fatalf("store holds %d jobs, want %d", s.Len(), jobs)
	}
	// The finished corpus aggregates deterministically.
	a1 := aggJSON(t, s)
	a2 := aggJSON(t, s)
	if !bytes.Equal(a1, a2) {
		t.Error("aggregate differs across two reads of the same corpus")
	}
}

// TestConcurrentStreamVsDOMIngest runs the same corpus through a
// streaming store and a forced-DOM store, both under concurrent ingest
// with live /agg readers, and demands byte-identical aggregates. Under
// -race this doubles as the proof that the pooled scan scratch is safe
// across goroutines.
func TestConcurrentStreamVsDOMIngest(t *testing.T) {
	const jobs, writers = 60, 8
	build := func(forceDOM bool) []byte {
		s := New()
		s.forceDOM = forceDOM
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if _, err := s.Ingest(syntheticXML(t, 13, i), "", nil); err != nil {
						t.Error(err)
						return
					}
					s.Aggregate(AggOptions{})
				}
			}()
		}
		for i := 0; i < jobs; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		return aggJSON(t, s)
	}
	fast := build(false)
	slow := build(true)
	if !bytes.Equal(fast, slow) {
		t.Errorf("streaming and DOM ingest disagree:\nstream:\n%s\ndom:\n%s", fast, slow)
	}
}

// TestAggregateMatchesAcrossIngestPartitioning ingests the same corpus
// with 1 and with 8 workers and demands identical aggregate bytes —
// the -j-invariance property the ensemble driver established, extended
// to the store.
func TestAggregateMatchesAcrossIngestPartitioning(t *testing.T) {
	const jobs = 40
	build := func(workers int) []byte {
		s := New()
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					if _, err := s.Ingest(syntheticXML(t, 11, i), "", nil); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		for i := 0; i < jobs; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		return aggJSON(t, s)
	}
	seq := build(1)
	par := build(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("aggregate depends on ingest concurrency:\n-j1:\n%s\n-j8:\n%s", seq, par)
	}
}
