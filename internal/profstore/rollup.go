package profstore

import (
	"time"

	"ipmgo/internal/ipm"
)

// rollup is the per-job pre-aggregation computed once at ingest: every
// quantity Aggregate and Regress need from a job, reduced from the
// per-rank entry walk to a handful of maps. Because ipm.Stats.Merge is
// commutative and associative (integer sums plus zero-count-guarded
// min/max) and every float in a report is derived only after the final
// integer merge, merging rollups job-by-job is byte-identical to the
// original walk over every rank entry — in any merge order.
//
// A rollup is immutable once built; concurrent aggregations may read it
// without locking.
type rollup struct {
	wall  time.Duration // summed rank wallclock
	gpu   time.Duration // @CUDA_EXEC_STRMxx stream totals
	xfer  time.Duration // host-side Memcpy/Memset call-site totals
	idle  time.Duration // @CUDA_HOST_IDLE
	mpi   time.Duration // DomainMPI call sites
	stall time.Duration // command-queue submit stall summed over ranks

	// energy is the job's attributed device energy in integer
	// nanojoules, summed over ranks; zero for jobs from unpowered runs.
	energy int64

	lostRanks int

	// sites accumulates per call-site stats with per-kernel pseudo
	// entries excluded — the exact filter Aggregate's call-site table and
	// Regress's siteTotals share.
	sites map[string]ipm.Stats
	// kernels accumulates the per-kernel pseudo entries
	// (@CUDA_EXEC_STRMxx:kernel) by kernel name.
	kernels map[string]ipm.Stats
	// imb is the per call-site imbalance (max/avg over ranks), one row
	// per distinct site, in FuncTotals order. Empty for single-rank jobs,
	// which carry no balance information.
	imb []ImbalanceAgg
}

// computeRollup reduces one job profile. jobID labels the imbalance rows.
func computeRollup(jp *ipm.JobProfile, jobID string) *rollup {
	ro := &rollup{
		sites:   make(map[string]ipm.Stats),
		kernels: make(map[string]ipm.Stats),
	}
	for _, r := range jp.Ranks {
		ro.wall += r.Wallclock
		ro.stall += r.SubmitStall
		ro.energy += r.Energy
		if r.Lost {
			ro.lostRanks++
		}
		for _, e := range r.Entries {
			name := e.Sig.Name
			switch {
			case isGPUExec(name):
				ro.gpu += e.Stats.Total
			case name == ipm.HostIdleName:
				ro.idle += e.Stats.Total
			case e.Sig.Pseudo():
				// Per-kernel pseudo entries are tallied below; other
				// pseudo entries only appear in the call-site table.
			case isTransfer(name):
				ro.xfer += e.Stats.Total
			}
			if ipm.Classify(name) == ipm.DomainMPI {
				ro.mpi += e.Stats.Total
			}
			if k := kernelOf(name); k != "" {
				st := ro.kernels[k]
				st.Merge(e.Stats)
				ro.kernels[k] = st
				continue // per-kernel entries double the stream totals; keep them out of call sites
			}
			st := ro.sites[name]
			st.Merge(e.Stats)
			ro.sites[name] = st
		}
	}
	if len(jp.Ranks) > 1 {
		for _, ft := range jp.FuncTotals() {
			ro.imb = append(ro.imb, ImbalanceAgg{
				Name: ft.Name, MaxOverAvg: jp.Imbalance(ft.Name), WorstJob: jobID,
			})
		}
	}
	return ro
}

// roll returns the job's rollup, computing one on the fly (without
// caching, to stay race-free on shared Jobs) for jobs that were built
// outside Store.ingest.
func (j *Job) roll() *rollup {
	if j.rollup != nil {
		return j.rollup
	}
	return computeRollup(j.Profile(), j.ID)
}
