package profstore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func fixture(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestIngestDerivedIDIsIdempotent(t *testing.T) {
	s := New()
	doc := fixture(t, "base.xml")
	j1, err := s.Ingest(doc, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Ingest(doc, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != j2.ID {
		t.Errorf("same bytes, different ids: %s vs %s", j1.ID, j2.ID)
	}
	if s.Len() != 1 {
		t.Errorf("store holds %d jobs, want 1 (re-ingest must replace)", s.Len())
	}
	if s.Replaced() != 1 || s.Ingests() != 2 {
		t.Errorf("replaced=%d ingests=%d, want 1/2", s.Replaced(), s.Ingests())
	}
	if s.RankCount() != 2 {
		t.Errorf("ranks = %d, want 2", s.RankCount())
	}
}

func TestSelectors(t *testing.T) {
	s := New()
	if _, err := s.Ingest(fixture(t, "base.xml"), "base", []string{"nightly", "v1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(fixture(t, "head.xml"), "head", []string{"nightly", "v2"}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		sel  string
		want int
	}{
		{"", 2}, {"base", 1}, {"head", 1}, {"nope", 0},
		{"tag:nightly", 2}, {"tag:v1", 1}, {"tag:v2", 1}, {"tag:other", 0},
		{"cmd:./relax", 2}, {"cmd:./hpl", 0},
	} {
		if got := len(s.Select(tc.sel)); got != tc.want {
			t.Errorf("Select(%q) = %d jobs, want %d", tc.sel, got, tc.want)
		}
	}
	// Selection order is id-sorted regardless of ingest order.
	jobs := s.Select("tag:nightly")
	if jobs[0].ID != "base" || jobs[1].ID != "head" {
		t.Errorf("selection not id-sorted: %s, %s", jobs[0].ID, jobs[1].ID)
	}
}

func TestIngestSalvagesTruncatedLog(t *testing.T) {
	s := New()
	doc := fixture(t, "base.xml")
	cut := doc[:len(doc)*2/3] // mid-document truncation, as a dead rank writes
	j, err := s.Ingest(cut, "", nil)
	if err != nil {
		t.Fatalf("tolerant ingest rejected a truncated log: %v", err)
	}
	if !j.Salvaged {
		t.Error("truncated log not flagged as salvaged")
	}
	if s.Salvaged() != 1 {
		t.Errorf("salvaged counter = %d, want 1", s.Salvaged())
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	s := New()
	if _, err := s.Ingest([]byte("<html>not ipm</html>"), "", nil); err == nil {
		t.Error("ingest accepted a document with no ipm_log root")
	}
	if s.Len() != 0 || s.Ingests() != 0 {
		t.Errorf("failed ingest mutated the store: len=%d ingests=%d", s.Len(), s.Ingests())
	}
}

func TestTagNormalisation(t *testing.T) {
	s := New()
	j, err := s.Ingest(fixture(t, "base.xml"), "", []string{" b", "a", "b", "", "a "})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b"}
	if len(j.Tags) != 2 || j.Tags[0] != want[0] || j.Tags[1] != want[1] {
		t.Errorf("tags = %q, want %q", j.Tags, want)
	}
}

// aggJSON renders the store's full-corpus aggregate as the /agg JSON body.
func aggJSON(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Aggregate(AggOptions{})); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWALRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "store.wal")

	s, recovered, skipped, err := Open(wal)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 || skipped != 0 {
		t.Fatalf("fresh WAL reported %d/%d records", recovered, skipped)
	}
	if _, err := s.Ingest(fixture(t, "base.xml"), "base", []string{"nightly"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(fixture(t, "head.xml"), "head", []string{"today"}); err != nil {
		t.Fatal(err)
	}
	before := aggJSON(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill/reload: the recovered corpus must answer byte-identically.
	s2, recovered, skipped, err := Open(wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if recovered != 2 || skipped != 0 {
		t.Fatalf("recovered %d skipped %d, want 2/0", recovered, skipped)
	}
	if got := s2.Get("head"); got == nil || len(got.Tags) != 1 || got.Tags[0] != "today" {
		t.Fatalf("job metadata lost across recovery: %+v", got)
	}
	after := aggJSON(t, s2)
	if !bytes.Equal(before, after) {
		t.Errorf("aggregate differs after WAL recovery:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestWALSkipsTornRecord(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "store.wal")
	s, _, _, err := Open(wal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(fixture(t, "base.xml"), "base", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, non-JSON tail.
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"torn","xml":"<ipm_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, recovered, skipped, err := Open(wal)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if recovered != 1 || skipped != 1 {
		t.Errorf("recovered %d skipped %d, want 1 recovered and 1 torn record skipped", recovered, skipped)
	}
	if s2.Len() != 1 || s2.Get("base") == nil {
		t.Errorf("intact record lost: len=%d", s2.Len())
	}
}

func TestDeriveIDStable(t *testing.T) {
	// The content-derived id is part of the WAL/API contract: changing
	// the hash silently forks every existing corpus.
	if got := DeriveID([]byte("ipm")); got != "j2bc204192bf1b723" {
		t.Errorf("DeriveID changed: %s", got)
	}
}
