package profstore

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipmgo/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newTestServer stands up the full HTTP surface over a fresh in-memory
// store with the base/head fixtures ingested under known ids and tags.
func newTestServer(t *testing.T) (*httptest.Server, *Store) {
	t.Helper()
	store := New()
	if _, err := store.Ingest(fixture(t, "base.xml"), "base", []string{"nightly"}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Ingest(fixture(t, "head.xml"), "head", []string{"today"}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, telemetry.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, store
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// checkGolden compares body with the checked-in golden JSON fixture
// (go test -update rewrites them).
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("%s differs from golden:\ngot:\n%s\nwant:\n%s", name, body, want)
	}
}

func TestAggGolden(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/agg")
	if code != http.StatusOK {
		t.Fatalf("/agg: %d: %s", code, body)
	}
	checkGolden(t, "agg.golden.json", body)

	// Byte-identical on a second read.
	_, again := get(t, ts.URL+"/agg")
	if !bytes.Equal(body, again) {
		t.Error("/agg differs between two reads of the same corpus")
	}
}

func TestAggGoldenIngestOrderInvariant(t *testing.T) {
	// The same corpus ingested in the opposite order must render the
	// same /agg bytes.
	store := New()
	if _, err := store.Ingest(fixture(t, "head.xml"), "head", []string{"today"}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Ingest(fixture(t, "base.xml"), "base", []string{"nightly"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store, telemetry.NewRegistry()).Handler())
	defer ts.Close()
	_, body := get(t, ts.URL+"/agg")
	checkGolden(t, "agg.golden.json", body)
}

func TestRegressGolden(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/regress?base=base&head=head&threshold=10")
	if code != http.StatusOK {
		t.Fatalf("/regress: %d: %s", code, body)
	}
	checkGolden(t, "regress.golden.json", body)

	// MPI_Allreduce got slower per call, the memcpys faster; the new
	// cudaStreamSynchronize site exists only in head.
	s := string(body)
	for _, want := range []string{
		`"name": "MPI_Allreduce"`,
		`"status": "regressed"`,
		`"status": "improved"`,
		`"status": "head-only"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("/regress response missing %s", want)
		}
	}
}

func TestRegressTagSets(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/regress?base=tag:nightly&head=tag:today")
	if code != http.StatusOK {
		t.Fatalf("tag-set regress: %d: %s", code, body)
	}
	if !strings.Contains(string(body), `"base_jobs": 1`) {
		t.Errorf("tag selector did not resolve: %s", body)
	}
}

func TestRegressErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, url := range []string{
		"/regress",                                  // missing params
		"/regress?base=base&head=nope",              // head matches nothing
		"/regress?base=base&head=head&threshold=-1", // bad threshold
	} {
		if code, _ := get(t, ts.URL+url); code == http.StatusOK {
			t.Errorf("GET %s succeeded, want error", url)
		}
	}
}

func TestJobsAndJobEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("/jobs: %d", code)
	}
	if !strings.Contains(string(body), `"id": "base"`) || !strings.Contains(string(body), `"id": "head"`) {
		t.Errorf("/jobs missing ingested ids: %s", body)
	}
	code, body = get(t, ts.URL+"/job/base")
	if code != http.StatusOK {
		t.Fatalf("/job/base: %d", code)
	}
	if !strings.Contains(string(body), `"expected_ranks": 2`) {
		t.Errorf("/job/base detail incomplete: %s", body)
	}
	if code, _ = get(t, ts.URL+"/job/nope"); code != http.StatusNotFound {
		t.Errorf("/job/nope = %d, want 404", code)
	}
}

func TestHTMLViews(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, url := range []string{"/agg?format=html", "/jobs?format=html", "/regress?base=base&head=head&format=html", "/"} {
		code, body := get(t, ts.URL+url)
		if code != http.StatusOK {
			t.Errorf("GET %s: %d", url, code)
			continue
		}
		if !strings.Contains(string(body), "<html>") {
			t.Errorf("GET %s did not render HTML", url)
		}
	}
}

func TestIngestEndpointAndMetrics(t *testing.T) {
	ts, store := newTestServer(t)

	// Ingest a salvaged (truncated) document over HTTP.
	doc := fixture(t, "base.xml")
	resp, err := http.Post(ts.URL+"/ingest?id=cut&tags=partial", "application/xml",
		bytes.NewReader(doc[:len(doc)*2/3]))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"salvaged": true`) {
		t.Errorf("salvage not surfaced in ingest response: %s", body)
	}
	if store.Len() != 3 {
		t.Errorf("store holds %d jobs, want 3", store.Len())
	}

	// A garbage body is a counted parse error.
	resp, err = http.Post(ts.URL+"/ingest", "application/xml", strings.NewReader("nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage ingest = %d, want 400", resp.StatusCode)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	m := string(metrics)
	for _, want := range []string{
		MetricIngest + " 3",
		fmt.Sprintf("%s %d", MetricIngestBytes, store.IngestedBytes()),
		MetricSalvaged + " 1",
		MetricParseErrors + " 1",
		MetricJobs + " 3",
		fmt.Sprintf(`%s{endpoint="ingest"} 2`, MetricQueries),
		MetricQuerySecs + "_bucket",
		MetricQuerySecs + "_count",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q:\n%s", want, m)
		}
	}
}

func TestIngestBodyLimit(t *testing.T) {
	ts, _ := newTestServer(t)
	huge := bytes.Repeat([]byte("x"), maxIngestBytes+2)
	resp, err := http.Post(ts.URL+"/ingest", "application/xml", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized ingest = %d, want 413", resp.StatusCode)
	}
}
