package profstore

import (
	"errors"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// TestCloseDuringConcurrentIngest is the lifecycle race test run under
// `make race`: closing the store while ingest workers hammer it must
// yield only clean results — every Ingest either succeeds (it beat the
// close) or returns ErrClosed; never a write to a closed file, never a
// panic.
func TestCloseDuringConcurrentIngest(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "store.wal")
	s, _, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				_, err := s.Ingest(syntheticXML(t, 11, w*1000+i), "", nil)
				if err == nil {
					continue
				}
				if !errors.Is(err, ErrClosed) {
					t.Errorf("worker %d: ingest error %v, want ErrClosed", w, err)
				}
				return
			}
		}(w)
	}
	close(start)
	// Let the workers land some ingests, then close under fire.
	for s.Ingests() < 16 {
		runtime.Gosched()
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close under concurrent ingest: %v", err)
	}
	wg.Wait()

	// Idempotent close, and a clean ErrClosed ever after.
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := s.Ingest(syntheticXML(t, 11, 0), "", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after close: %v, want ErrClosed", err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Errorf("snapshot after close: %v, want ErrClosed", err)
	}

	// Everything acked before the close is on disk.
	s2, st, err := OpenStore(wal, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st.Skipped != 0 {
		t.Errorf("clean close left %d torn record(s)", st.Skipped)
	}
	if s2.Len() == 0 {
		t.Error("acked ingests lost across close/reopen")
	}
}

func TestCloseInMemoryStore(t *testing.T) {
	s := New()
	if _, err := s.Ingest(syntheticXML(t, 3, 0), "", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(syntheticXML(t, 3, 1), "", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after close: %v, want ErrClosed", err)
	}
	// Queries keep answering over the frozen corpus.
	if s.Len() != 1 {
		t.Errorf("corpus len %d after close, want 1", s.Len())
	}
}
