package profstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
)

// The WAL frame format (version 1). Every record the store appends is
// wrapped in a fixed 13-byte header:
//
//	offset  size  field
//	0       4     magic  F5 'I' 'P' 'W'
//	4       1     version (1)
//	5       4     payload length, little-endian
//	9       4     CRC32C (Castagnoli) of the payload, little-endian
//	13      len   payload: the walRecord JSON object
//
// followed by one '\n' outside the checksum, so the file stays roughly
// line-structured for debugging. The payload is the same JSON object the
// legacy (PR 4–7) JSONL WAL stored one per line; replay accepts both
// formats interleaved in one file, which is what an old WAL appended to
// by a new server looks like. A record whose frame is torn (crash
// mid-append), whose checksum mismatches (bit rot), or whose JSON/XML no
// longer ingests is skipped and counted — never silently truncating the
// records behind it: the scanner resynchronises at the next frame magic
// or line boundary.
const (
	walMagic0     = 0xf5 // first magic byte: never starts a legacy JSON line
	walVersion    = 1
	walHeaderSize = 13
	// maxWALPayload bounds a frame's claimed length: maxIngestBytes of
	// XML expands at most 6x under JSON escaping, plus id/tags slack.
	maxWALPayload = 6*maxIngestBytes + 1<<20
)

var walMagic = [4]byte{walMagic0, 'I', 'P', 'W'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame wraps payload in a version-1 WAL frame.
func appendFrame(buf, payload []byte) []byte {
	var hdr [walHeaderSize]byte
	copy(hdr[:4], walMagic[:])
	hdr[4] = walVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return append(buf, '\n')
}

// finishFrame backfills the frame header of a buffer laid out as
// [walHeaderSize bytes of placeholder][payload] — the in-place twin of
// appendFrame for the pooled ingest path — and appends the trailing
// newline.
func finishFrame(buf []byte) []byte {
	payload := buf[walHeaderSize:]
	copy(buf[:4], walMagic[:])
	buf[4] = walVersion
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[9:13], crc32.Checksum(payload, castagnoli))
	return append(buf, '\n')
}

// walScan iterates the records of a WAL (or snapshot) image, calling fn
// with each structurally valid record and the payload bytes it was
// decoded from. It returns the number of records skipped as torn,
// corrupt or undecodable. The scan never fails: any byte sequence
// terminates, which FuzzWALReplay leans on.
func walScan(data []byte, fn func(rec *walRecord, payload []byte)) (skipped int) {
	pos := 0
	handle := func(payload []byte) {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			skipped++
			return
		}
		fn(&rec, payload)
	}
	// resync advances past a bad region: to the next frame magic or just
	// past the next newline (a legacy record boundary), whichever comes
	// first after from.
	resync := func(from int) int {
		for i := from; i < len(data); i++ {
			if data[i] == walMagic0 {
				return i
			}
			if data[i] == '\n' {
				return i + 1
			}
		}
		return len(data)
	}
	for pos < len(data) {
		if data[pos] == walMagic0 {
			// Framed record. Any header/CRC violation counts one skip and
			// resynchronises after the magic byte.
			h := data[pos:]
			if len(h) >= walHeaderSize && bytes.Equal(h[:4], walMagic[:]) && h[4] == walVersion {
				plen := int(binary.LittleEndian.Uint32(h[5:9]))
				if plen >= 0 && plen <= maxWALPayload && walHeaderSize+plen <= len(h) {
					payload := h[walHeaderSize : walHeaderSize+plen]
					if crc32.Checksum(payload, castagnoli) == binary.LittleEndian.Uint32(h[9:13]) {
						handle(payload)
						pos += walHeaderSize + plen
						if pos < len(data) && data[pos] == '\n' {
							pos++
						}
						continue
					}
				}
			}
			skipped++
			pos = resync(pos + 1)
			continue
		}
		// Legacy JSONL record: one line, tolerating a missing final
		// newline (the classic torn tail).
		end := bytes.IndexByte(data[pos:], '\n')
		var line []byte
		if end < 0 {
			line = data[pos:]
			pos = len(data)
		} else {
			line = data[pos : pos+end]
			pos += end + 1
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		handle(line)
	}
	return skipped
}

// replayImage re-ingests every record of a WAL or snapshot image.
// recovered counts successful ingests (including replacements of
// already-seen ids); skipped counts torn/corrupt frames, undecodable
// records and records whose XML no longer ingests; records is the
// number of structurally valid records seen.
func (s *Store) replayImage(data []byte) (recovered, skipped, records int) {
	failed := 0
	bad := walScan(data, func(rec *walRecord, _ []byte) {
		records++
		if _, err := s.ingest([]byte(rec.XML), rec.ID, rec.Tags, false); err != nil {
			failed++
			return
		}
		recovered++
	})
	return recovered, bad + failed, records
}
