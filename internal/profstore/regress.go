package profstore

import (
	"sort"

	"ipmgo/internal/ipm"
)

// This file implements GET /regress: comparing two jobs — or two
// tag-sets, e.g. a nightly tag against today's — per call-site
// signature. The regression metric is per-call time (Total/Count),
// which is invariant to how many jobs each side aggregates, so a
// tag-set of 30 runs compares cleanly against one of 5.

// RegressOptions selects the two sides and the flagging threshold.
type RegressOptions struct {
	Base      string  // selector for the baseline side
	Head      string  // selector for the candidate side
	Threshold float64 // regression threshold in percent (default 10)
}

// RegressRow compares one call-site signature across the two sides.
type RegressRow struct {
	Name        string  `json:"name"`
	BaseCalls   int64   `json:"base_calls"`
	HeadCalls   int64   `json:"head_calls"`
	BaseSeconds float64 `json:"base_seconds"`
	HeadSeconds float64 `json:"head_seconds"`
	BasePerCall float64 `json:"base_per_call_seconds"`
	HeadPerCall float64 `json:"head_per_call_seconds"`
	// Base/HeadEnergyJoules compare attributed device energy per side;
	// zero (and omitted) for signatures from unpowered runs.
	BaseEnergyJoules float64 `json:"base_energy_joules,omitempty"`
	HeadEnergyJoules float64 `json:"head_energy_joules,omitempty"`
	// DeltaPct is the per-call time change in percent; meaningful only
	// when the signature appears on both sides with base time > 0.
	DeltaPct  float64 `json:"delta_pct"`
	Regressed bool    `json:"regressed,omitempty"`
	// Status distinguishes comparable rows from one-sided ones:
	// "ok", "regressed", "improved", "base-only", "head-only".
	Status string `json:"status"`
}

// RegressReport is the GET /regress response body.
type RegressReport struct {
	Base        string       `json:"base"`
	Head        string       `json:"head"`
	BaseJobs    int          `json:"base_jobs"`
	HeadJobs    int          `json:"head_jobs"`
	Threshold   float64      `json:"threshold_pct"`
	Regressions int          `json:"regressions"`
	Rows        []RegressRow `json:"rows"`
}

// siteTotals rolls up per-call-site stats (name level, kernels excluded
// the same way Aggregate excludes them) for one side of the comparison.
// The per-job reduction happened at ingest; this only merges rollups.
func siteTotals(jobs []*Job) map[string]ipm.Stats {
	out := make(map[string]ipm.Stats)
	for _, job := range jobs {
		for name, st := range job.roll().sites {
			cur := out[name]
			cur.Merge(st)
			out[name] = cur
		}
	}
	return out
}

// Regress compares the base selection against the head selection.
// Repeated comparisons of an unchanged store are served from the
// epoch-keyed memo cache (see memo.go); the returned report is shared and
// must not be mutated.
func (s *Store) Regress(opts RegressOptions) *RegressReport {
	if opts.Threshold <= 0 {
		opts.Threshold = 10
	}
	key := memoKey{kind: "regress", a: opts.Base, b: opts.Head, th: opts.Threshold}
	ep := s.epoch.Load()
	if rep, ok := s.memoLookup(ep, key); ok {
		return rep.(*RegressReport)
	}
	rep := s.regressCold(opts)
	s.memoStore(ep, key, rep)
	return rep
}

// regressCold is the uncached comparison path.
func (s *Store) regressCold(opts RegressOptions) *RegressReport {
	return regressFrom(s.Select(opts.Base), s.Select(opts.Head), opts)
}

// regressFrom compares two explicit job lists. Split from the Store so a
// cluster router can run the identical comparison over jobs merged from
// shard rollups (see RegressJobs in wire.go).
func regressFrom(baseJobs, headJobs []*Job, opts RegressOptions) *RegressReport {
	base := siteTotals(baseJobs)
	head := siteTotals(headJobs)

	rep := &RegressReport{
		Base: opts.Base, Head: opts.Head,
		BaseJobs: len(baseJobs), HeadJobs: len(headJobs),
		Threshold: opts.Threshold,
	}

	names := make([]string, 0, len(base)+len(head))
	for n := range base {
		names = append(names, n)
	}
	for n := range head {
		if _, ok := base[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	for _, n := range names {
		b, inBase := base[n]
		h, inHead := head[n]
		row := RegressRow{
			Name:        n,
			BaseCalls:   b.Count,
			HeadCalls:   h.Count,
			BaseSeconds: b.Total.Seconds(),
			HeadSeconds: h.Total.Seconds(),
			BasePerCall: b.Avg().Seconds(),
			HeadPerCall: h.Avg().Seconds(),

			BaseEnergyJoules: b.EnergyJoules(),
			HeadEnergyJoules: h.EnergyJoules(),
		}
		switch {
		case !inBase:
			row.Status = "head-only"
		case !inHead:
			row.Status = "base-only"
		case b.Total <= 0 || b.Count == 0:
			row.Status = "ok"
		default:
			row.DeltaPct = 100 * (row.HeadPerCall - row.BasePerCall) / row.BasePerCall
			switch {
			case row.DeltaPct > opts.Threshold:
				row.Status = "regressed"
				row.Regressed = true
				rep.Regressions++
			case row.DeltaPct < -opts.Threshold:
				row.Status = "improved"
			default:
				row.Status = "ok"
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
