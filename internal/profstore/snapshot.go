package profstore

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SnapshotInfo describes one completed snapshot.
type SnapshotInfo struct {
	Seq     uint64 `json:"seq"`
	Jobs    int    `json:"jobs"`    // live records written
	Bytes   int64  `json:"bytes"`   // snapshot file size
	Dropped int    `json:"dropped"` // stale or dead records compacted away
	Path    string `json:"path"`
}

// snapshotPath names snapshot seq for the store at walPath. The fixed
// width keeps lexical and numeric order aligned for ls-debuggability.
func snapshotPath(walPath string, seq uint64) string {
	return fmt.Sprintf("%s.snapshot-%08d", walPath, seq)
}

// latestSnapshot returns the newest snapshot seq and path for walPath,
// or (0, ""). Stray .tmp files from a crash mid-snapshot are removed:
// they were never renamed into place, so no recovery depends on them.
func latestSnapshot(walPath string) (uint64, string) {
	matches, _ := filepath.Glob(walPath + ".snapshot-*")
	var bestSeq uint64
	best := ""
	for _, m := range matches {
		if strings.HasSuffix(m, ".tmp") {
			os.Remove(m)
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(m, walPath+".snapshot-"), 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		if seq > bestSeq {
			bestSeq, best = seq, m
		}
	}
	return bestSeq, best
}

// Snapshot compacts the durable state: it folds the current snapshot
// and WAL into snapshot-<seq+1> — one framed record per live job, last
// write per id winning, sorted by id — written atomically (temp file,
// fsync, rename, directory fsync), then truncates the WAL. Ingests are
// blocked for the duration; queries are not. The durable XML bytes
// carry over verbatim, so replay semantics cannot drift.
//
// Crash windows, all safe:
//
//   - before the rename: the .tmp file is ignored (and removed) at the
//     next open; recovery uses the previous snapshot plus the full WAL.
//   - after the rename, before the WAL truncate: recovery loads the new
//     snapshot and then replays WAL records it already contains —
//     re-ingest is idempotent (same id, same bytes), so the corpus and
//     every query answer are unchanged.
//   - after the truncate: the compacted steady state.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	var info SnapshotInfo
	if s.closed {
		return info, ErrClosed
	}
	if s.wal == nil {
		return info, fmt.Errorf("profstore: snapshot: store has no WAL")
	}
	if s.readonly.Load() {
		return info, s.readOnlyErr()
	}
	seq := s.snapSeq.Load() + 1
	info.Seq = seq

	// Make every acknowledged append visible to the read pass below.
	if err := s.syncWAL(); err != nil {
		s.walErrors.Add(1)
		s.setReadOnly(fmt.Sprintf("WAL fsync failed: %v", err))
		return info, fmt.Errorf("profstore: snapshot: syncing WAL: %v: %w", err, ErrReadOnly)
	}

	// Fold previous snapshot + WAL: last record per id wins, and only
	// ids still live in the store are kept (records whose XML failed
	// replay, for instance, compact away).
	recs := make(map[string][]byte)
	total := 0
	fold := func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		walScan(data, func(rec *walRecord, payload []byte) {
			total++
			recs[rec.ID] = append([]byte(nil), payload...)
		})
		return nil
	}
	if prev := s.snapSeq.Load(); prev != 0 {
		if err := fold(snapshotPath(s.walPath, prev)); err != nil {
			return info, fmt.Errorf("profstore: snapshot: reading previous snapshot: %w", err)
		}
	}
	if err := fold(s.walPath); err != nil {
		return info, fmt.Errorf("profstore: snapshot: reading WAL: %w", err)
	}
	ids := make([]string, 0, len(recs))
	for id := range recs {
		if s.Get(id) != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	info.Jobs = len(ids)
	info.Dropped = total - len(ids)

	final := snapshotPath(s.walPath, seq)
	tmp := final + ".tmp"
	write := func() error {
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		w := bufio.NewWriterSize(f, 1<<20)
		var frame []byte
		for _, id := range ids {
			frame = appendFrame(frame[:0], recs[id])
			if _, err := w.Write(frame); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if st, err := f.Stat(); err == nil {
			info.Bytes = st.Size()
		}
		return f.Close()
	}
	if err := write(); err != nil {
		os.Remove(tmp)
		return info, fmt.Errorf("profstore: snapshot: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return info, fmt.Errorf("profstore: snapshot: %w", err)
	}
	syncDir(filepath.Dir(final))
	info.Path = final

	// The snapshot is durable; the WAL records it covers retire. A
	// truncate failure leaves nothing lost — snapshot + untruncated WAL
	// replay idempotently — but the write path is now suspect.
	if err := s.truncateWAL(); err != nil {
		s.walErrors.Add(1)
		s.setReadOnly(fmt.Sprintf("WAL truncate failed: %v", err))
		return info, fmt.Errorf("profstore: snapshot: truncating WAL: %v: %w", err, ErrReadOnly)
	}
	s.snapSeq.Store(seq)
	s.snapshots.Add(1)
	s.walAppends.Store(0)

	// Older snapshots are superseded; removal is best-effort hygiene.
	if matches, err := filepath.Glob(s.walPath + ".snapshot-*"); err == nil {
		for _, m := range matches {
			if m == final || strings.HasSuffix(m, ".tmp") {
				continue
			}
			if old, err := strconv.ParseUint(strings.TrimPrefix(m, s.walPath+".snapshot-"), 10, 64); err == nil && old < seq {
				os.Remove(m)
			}
		}
	}
	return info, nil
}

func (s *Store) syncWAL() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.walW.Sync(); err != nil {
		return err
	}
	s.unsynced = 0
	return nil
}

func (s *Store) truncateWAL() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	s.unsynced = 0
	return s.wal.Sync()
}

// syncDir fsyncs a directory so a rename within it is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
