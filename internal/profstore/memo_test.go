package profstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// memoStore builds a store with n synthetic jobs.
func memoTestStore(t *testing.T, n int) *Store {
	t.Helper()
	s := New()
	for i := 0; i < n; i++ {
		if _, err := s.Ingest(syntheticXML(t, 42, i), fmt.Sprintf("j%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func jsonOf(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAggMemoHit: repeated aggregation of an unchanged store returns the
// cached report, byte-identical to the cold path.
func TestAggMemoHit(t *testing.T) {
	s := memoTestStore(t, 8)
	first := s.Aggregate(AggOptions{})
	second := s.Aggregate(AggOptions{})
	if first != second {
		t.Error("second Aggregate on unchanged store did not hit the memo")
	}
	cold := s.aggregateCold(AggOptions{TopN: 10})
	if !bytes.Equal(jsonOf(t, second), jsonOf(t, cold)) {
		t.Error("memoized report differs from cold-path report")
	}
}

// TestAggMemoInvalidatedOnIngest: any ingest — new id or replacement —
// must drop cached reports.
func TestAggMemoInvalidatedOnIngest(t *testing.T) {
	s := memoTestStore(t, 4)
	before := s.Aggregate(AggOptions{})
	if before.Jobs != 4 {
		t.Fatalf("jobs = %d", before.Jobs)
	}

	if _, err := s.Ingest(syntheticXML(t, 42, 99), "j99", nil); err != nil {
		t.Fatal(err)
	}
	after := s.Aggregate(AggOptions{})
	if after == before {
		t.Error("Aggregate served a stale memo after ingest")
	}
	if after.Jobs != 5 {
		t.Errorf("jobs after ingest = %d, want 5", after.Jobs)
	}
	if !bytes.Equal(jsonOf(t, after), jsonOf(t, s.aggregateCold(AggOptions{TopN: 10}))) {
		t.Error("post-ingest report differs from cold path")
	}

	// Replacement ingest (same id, different content) must invalidate too.
	cached := s.Aggregate(AggOptions{})
	if _, err := s.Ingest(syntheticXML(t, 7, 0), "j99", nil); err != nil {
		t.Fatal(err)
	}
	replaced := s.Aggregate(AggOptions{})
	if replaced == cached {
		t.Error("Aggregate served a stale memo after replacement ingest")
	}
	if !bytes.Equal(jsonOf(t, replaced), jsonOf(t, s.aggregateCold(AggOptions{TopN: 10}))) {
		t.Error("post-replacement report differs from cold path")
	}
}

// TestAggMemoKeyedBySelectorAndTopN: different query shapes do not share
// cache entries.
func TestAggMemoKeyedBySelectorAndTopN(t *testing.T) {
	s := memoTestStore(t, 4)
	all := s.Aggregate(AggOptions{})
	one := s.Aggregate(AggOptions{Sel: "j0"})
	if one.Jobs != 1 || all.Jobs != 4 {
		t.Fatalf("jobs = %d / %d, want 1 / 4", one.Jobs, all.Jobs)
	}
	top1 := s.Aggregate(AggOptions{TopN: 1})
	if len(top1.TopKernels) > 1 {
		t.Errorf("TopN=1 returned %d kernels", len(top1.TopKernels))
	}
	// Default TopN and explicit 10 are the same query.
	if s.Aggregate(AggOptions{TopN: 10}) != all {
		t.Error("TopN 0 (default) and TopN 10 did not share a cache entry")
	}
}

// TestRegressMemo: same contract for /regress.
func TestRegressMemo(t *testing.T) {
	s := memoTestStore(t, 4)
	opts := RegressOptions{Base: "j0", Head: "j1"}
	first := s.Regress(opts)
	if second := s.Regress(opts); second != first {
		t.Error("second Regress on unchanged store did not hit the memo")
	}
	if !bytes.Equal(jsonOf(t, first), jsonOf(t, s.regressCold(RegressOptions{Base: "j0", Head: "j1", Threshold: 10}))) {
		t.Error("memoized regress differs from cold path")
	}
	if _, err := s.Ingest(syntheticXML(t, 42, 50), "j50", nil); err != nil {
		t.Fatal(err)
	}
	if after := s.Regress(opts); after == first {
		t.Error("Regress served a stale memo after ingest")
	}
}

// TestAggMemoConcurrentIngest hammers Aggregate while writers mutate the
// store, then verifies the quiescent store answers byte-identically to a
// freshly built one — the cache must never pin a mid-ingest view.
func TestAggMemoConcurrentIngest(t *testing.T) {
	const jobs = 32
	docs := make([][]byte, jobs)
	for i := range docs {
		docs[i] = syntheticXML(t, 42, i)
	}

	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < jobs; i += 4 {
				if _, err := s.Ingest(docs[i], fmt.Sprintf("j%d", i), nil); err != nil {
					t.Error(err)
					return
				}
				s.Aggregate(AggOptions{})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.Aggregate(AggOptions{})
		}
	}()
	wg.Wait()
	<-done

	ref := New()
	for i, doc := range docs {
		if _, err := ref.Ingest(doc, fmt.Sprintf("j%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	got := jsonOf(t, s.Aggregate(AggOptions{}))
	want := jsonOf(t, ref.Aggregate(AggOptions{}))
	if !bytes.Equal(got, want) {
		t.Error("quiescent store (post-concurrency) does not match a fresh build")
	}
}
