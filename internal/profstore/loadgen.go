package profstore

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/telemetry"
)

// This file is the load generator behind `ipmserve -selftest` and the
// serve e2e tests: it stands up a real HTTP server over a WAL-backed
// store, ingests a deterministic synthetic corpus from many goroutines
// while query workers hammer /agg and /jobs, and then proves the two
// acceptance properties end to end: query output is byte-identical
// across repeated reads, and byte-identical again after the store is
// killed and recovered from its WAL.

// splitmix64 steps the PRNG behind the synthetic corpus — the same
// generator faultsim uses, chosen for determinism across platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

var synthKernels = []string{"dgemm_nt", "relax", "pme_forces", "fft3d", "scan_up"}
var synthCommands = []string{"./hpl", "./amber", "./paratec", "./square"}

// SyntheticProfile builds a deterministic synthetic job profile: job i
// always yields the same ranks, call sites and durations, so a corpus
// of N synthetic jobs has one canonical /agg answer.
func SyntheticProfile(seed uint64, i int) *ipm.JobProfile {
	s := splitmix64(seed ^ uint64(i)*0x9e3779b97f4a7c15)
	nranks := 2 + int(s%7)
	kernel := synthKernels[int(s>>8)%len(synthKernels)]
	command := synthCommands[i%len(synthCommands)]
	ranks := make([]ipm.RankProfile, nranks)
	for r := range ranks {
		u := splitmix64(s ^ uint64(r)*0xbf58476d1ce4e5b9)
		us := func(scale uint64) time.Duration { // bounded pseudo-random microseconds
			u = splitmix64(u)
			return time.Duration(u%scale+1) * time.Microsecond
		}
		launches := int64(20 + u%60)
		kexec := time.Duration(launches) * us(400)
		h2d := time.Duration(launches) * us(40)
		d2h := time.Duration(launches) * us(40)
		idle := kexec * 9 / 10
		mpiT := time.Duration(launches) * us(25)
		wall := kexec + h2d + d2h + mpiT + us(300_000)
		mk := func(name string, bytes, count int64, total time.Duration) ipm.Entry {
			st := ipm.Stats{Count: count, Total: total, Min: total / time.Duration(count), Max: total / time.Duration(count)}
			return ipm.Entry{Sig: ipm.Sig{Name: name, Bytes: bytes, Region: ipm.GlobalRegion}, Stats: st}
		}
		ranks[r] = ipm.RankProfile{
			Rank: r, Host: fmt.Sprintf("dirac%d", r+1), Wallclock: wall,
			Entries: []ipm.Entry{
				mk(ipm.ExecStreamName(0), 0, launches, kexec),
				mk(ipm.ExecKernelName(0, kernel), 0, launches, kexec),
				mk(ipm.HostIdleName, 0, 2*launches, idle),
				mk("cudaMemcpy(H2D)", 1<<17, launches, h2d),
				mk("cudaMemcpy(D2H)", 1<<17, launches, d2h),
				mk("cudaLaunch", 0, launches, time.Duration(launches)*5*time.Microsecond),
				mk("MPI_Allreduce", 8, launches/2+1, mpiT),
			},
		}
	}
	return ipm.NewJobProfile(command, nranks, ranks)
}

// SelfTestOptions sizes a load-generator run.
type SelfTestOptions struct {
	Jobs    int    // synthetic profiles to ingest (default 120)
	Workers int    // concurrent ingest workers (default 8)
	Readers int    // concurrent query workers during ingest (default 4)
	Seed    uint64 // corpus seed (default 2011)
	Dir     string // WAL directory (default: a fresh temp dir, removed after)
	Logf    func(format string, args ...any)
}

// SelfTestReport summarises a load-generator run.
type SelfTestReport struct {
	Jobs          int
	Ranks         int
	Queries       int64
	AggBytes      int
	IngestBytes   int64 // XML bytes posted through /ingest
	WALRecovered  int
	WALSkipped    int
	IngestElapsed time.Duration
}

// IngestMBPerSec is the end-to-end ingest throughput the run sustained:
// XML bytes posted over the wall-clock ingest phase (which includes the
// HTTP round trips and the concurrent query load).
func (r *SelfTestReport) IngestMBPerSec() float64 {
	if r.IngestElapsed <= 0 {
		return 0
	}
	return float64(r.IngestBytes) / 1e6 / r.IngestElapsed.Seconds()
}

// SelfTest runs the full ingest/query/recover cycle and returns an
// error on any determinism violation. It is the implementation of
// `ipmserve -selftest` and is also driven (race-enabled) by the serve
// e2e test.
func SelfTest(opts SelfTestOptions) (*SelfTestReport, error) {
	if opts.Jobs <= 0 {
		opts.Jobs = 120
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Readers <= 0 {
		opts.Readers = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 2011
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "profstore-selftest")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	walPath := filepath.Join(dir, "profstore.wal")

	store, _, _, err := Open(walPath)
	if err != nil {
		return nil, err
	}
	srv := NewServer(store, telemetry.NewRegistry())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		store.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	logf("selftest: serving on %s, ingesting %d jobs with %d workers", base, opts.Jobs, opts.Workers)

	rep := &SelfTestReport{Jobs: opts.Jobs}
	start := time.Now()
	var queries atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	record := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr
	}

	// Query workers: hammer the read endpoints while the corpus grows.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for q := 0; q < opts.Readers; q++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			paths := []string{"/agg", "/jobs", "/agg?format=html", "/metrics"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if _, err := httpGet(base + paths[i%len(paths)]); err != nil {
					record(fmt.Errorf("selftest: query during ingest: %w", err))
					return
				}
				queries.Add(1)
			}
		}()
	}

	// Ingest workers: each renders and posts its share of the synthetic
	// corpus, counting the XML bytes that cross the wire so the report
	// can state the end-to-end ingest throughput.
	poster := &Poster{URL: base, Policy: faultsim.RetryPolicy{MaxAttempts: 4}}
	jobs := make(chan int)
	var ingestBytes atomic.Int64
	var writers sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			var buf bytes.Buffer
			for i := range jobs {
				buf.Reset()
				if err := ipm.WriteXML(&buf, SyntheticProfile(opts.Seed, i)); err != nil {
					record(fmt.Errorf("selftest: encoding job %d: %w", i, err))
					return
				}
				xml := buf.Bytes()
				tags := []string{"selftest", fmt.Sprintf("batch:%d", i%2)}
				if _, err := poster.PostXML(xml, DeriveID(xml), tags); err != nil {
					record(fmt.Errorf("selftest: ingest job %d: %w", i, err))
					return
				}
				ingestBytes.Add(int64(len(xml)))
			}
		}()
	}
	for i := 0; i < opts.Jobs; i++ {
		jobs <- i
	}
	close(jobs)
	writers.Wait()
	close(done)
	readers.Wait()
	rep.IngestElapsed = time.Since(start)
	rep.Queries = queries.Load()
	rep.IngestBytes = ingestBytes.Load()
	if err := failed(); err != nil {
		hs.Close()
		store.Close()
		return rep, err
	}
	if store.Len() != opts.Jobs {
		hs.Close()
		store.Close()
		return rep, fmt.Errorf("selftest: store holds %d jobs, want %d", store.Len(), opts.Jobs)
	}
	rep.Ranks = store.RankCount()

	// Determinism across repeated queries on the live store.
	aggURL := base + "/agg?sel=tag:selftest"
	regURL := base + "/regress?base=tag:batch:0&head=tag:batch:1&threshold=5"
	agg1, err := httpGet(aggURL)
	record(err)
	agg2, err := httpGet(aggURL)
	record(err)
	reg1, err := httpGet(regURL)
	record(err)
	reg2, err := httpGet(regURL)
	record(err)
	if err := failed(); err != nil {
		hs.Close()
		store.Close()
		return rep, err
	}
	if !bytes.Equal(agg1, agg2) {
		hs.Close()
		store.Close()
		return rep, fmt.Errorf("selftest: /agg differs between two reads of the same corpus")
	}
	if !bytes.Equal(reg1, reg2) {
		hs.Close()
		store.Close()
		return rep, fmt.Errorf("selftest: /regress differs between two reads of the same corpus")
	}
	rep.AggBytes = len(agg1)

	// Kill and recover: the WAL replay must reproduce the corpus and
	// answer /agg and /regress byte-identically.
	hs.Close()
	if err := store.Close(); err != nil {
		return rep, err
	}
	store2, recovered, skipped, err := Open(walPath)
	if err != nil {
		return rep, err
	}
	defer store2.Close()
	rep.WALRecovered, rep.WALSkipped = recovered, skipped
	if store2.Len() != opts.Jobs {
		return rep, fmt.Errorf("selftest: WAL recovery yielded %d jobs, want %d", store2.Len(), opts.Jobs)
	}
	srv2 := NewServer(store2, telemetry.NewRegistry())
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	defer hs2.Close()
	base2 := "http://" + ln2.Addr().String()
	agg3, err := httpGet(base2 + "/agg?sel=tag:selftest")
	if err != nil {
		return rep, err
	}
	reg3, err := httpGet(base2 + "/regress?base=tag:batch:0&head=tag:batch:1&threshold=5")
	if err != nil {
		return rep, err
	}
	if !bytes.Equal(agg1, agg3) {
		return rep, fmt.Errorf("selftest: /agg differs after WAL recovery (%d vs %d bytes)", len(agg1), len(agg3))
	}
	if !bytes.Equal(reg1, reg3) {
		return rep, fmt.Errorf("selftest: /regress differs after WAL recovery")
	}
	logf("selftest: %d jobs (%d ranks, %.1f MB) ingested in %v (%.1f MB/s end to end), %d queries served concurrently, /agg deterministic (%d bytes) incl. after WAL recovery of %d records",
		rep.Jobs, rep.Ranks, float64(rep.IngestBytes)/1e6, rep.IngestElapsed.Round(time.Millisecond), rep.IngestMBPerSec(), rep.Queries, rep.AggBytes, recovered)
	return rep, nil
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}
