package profstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/telemetry"
)

// This file is the ingest client side: how a finished run posts its
// profile to a (possibly flaky) center-wide store. It reuses the
// fault model's capped-exponential RetryPolicy — the same schedule
// faultsim.Resilient applies to transient CUDA faults — because the
// failure mode is the same: a transient infrastructure hiccup that a
// bounded number of spaced retries rides out, and that must degrade
// into a warning rather than fail the job.
//
// One failure mode gets special treatment: a 503 with a Retry-After
// header is the store saying "up, but not accepting writes right now"
// (read-only degradation, shutdown drain). That is not a dead server —
// the client honors the advertised delay and retries on a separate,
// more patient budget instead of burning its transient-failure attempts.

// Client metric names (published when Poster.Reg is set).
const (
	MetricIngestPosts     = "ipm_ingest_posts_total"
	MetricIngestRetries   = "ipm_ingest_retries_total"
	MetricIngestFailures  = "ipm_ingest_failures_total"
	MetricIngestConnReuse = "ipm_ingest_conn_reuse_total"
)

// sharedTransport is the one pooled keep-alive transport every Poster
// and cluster peer client in the process rides on. A run epilogue posts
// one document and exits, but ipmserve routers, the soak harness and the
// benches post thousands — without a shared pool each Poster value
// (historically constructed per post site) dialed fresh connections.
// The pool is sized for a small cluster fan-out, not a browser: many
// concurrent posts to the same few member URLs.
var sharedTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        64,
	MaxIdleConnsPerHost: 16,
	IdleConnTimeout:     90 * time.Second,
}

// connReuses counts connections handed out of the shared pool that had
// already served a request (httptrace GotConn with Reused set).
var connReuses atomic.Int64

// ConnReuseTotal returns how many requests on the shared transport were
// served over a reused keep-alive connection.
func ConnReuseTotal() int64 { return connReuses.Load() }

// reuseCountingTransport wraps a RoundTripper with an httptrace hook
// that increments connReuses whenever the connection was pooled.
type reuseCountingTransport struct {
	inner http.RoundTripper
}

func (t reuseCountingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				connReuses.Add(1)
			}
		},
	}
	req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
	return t.inner.RoundTrip(req)
}

// SharedClient returns an HTTP client on the process-wide pooled
// keep-alive transport, with connection reuse counted into
// ipm_ingest_conn_reuse_total. The default for Poster and the cluster
// peer clients.
func SharedClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: reuseCountingTransport{inner: sharedTransport},
	}
}

// CountingTransport wraps an explicit RoundTripper (a test server's
// client transport, a faultsim peer plan) with the same reuse counting
// SharedClient applies to the shared pool; nil wraps the shared pooled
// transport itself.
func CountingTransport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = sharedTransport
	}
	return reuseCountingTransport{inner: inner}
}

// maxRetryAfter caps how long the client believes a Retry-After header;
// a degraded store advertising an hour should not stall a job epilogue.
const maxRetryAfter = 10 * time.Second

// PosterStats are the cumulative counters of one Poster.
type PosterStats struct {
	Posts    int64 // documents posted (success or final failure)
	Retries  int64 // extra attempts beyond the first, per document
	Failures int64 // documents that exhausted every attempt
}

// Poster posts IPM XML profiles to an ipmserve /ingest endpoint with
// capped-backoff retry.
type Poster struct {
	// URL is the server base ("http://host:port") or the full /ingest URL.
	URL string
	// Policy is the retry schedule; the zero value means 3 attempts with
	// 100µs..10ms capped exponential backoff (faultsim defaults).
	Policy faultsim.RetryPolicy
	// ReadOnlyAttempts bounds the retries spent on 503+Retry-After
	// responses (a degraded or draining store). 0 means 8. These do not
	// consume the transient-failure budget in Policy.
	ReadOnlyAttempts int
	// Client is the HTTP client; nil uses a 10s-timeout default.
	Client *http.Client
	// Sleep is the backoff sleep, injectable for tests; nil = time.Sleep.
	// Unlike Resilient this runs after the simulation, so it waits in
	// wall time, not virtual time.
	Sleep func(time.Duration)
	// Reg, when non-nil, receives the poster counters as
	// ipm_ingest_{posts,retries,failures}_total on every post.
	Reg *telemetry.Registry

	posts    atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64
}

// Stats returns the cumulative post/retry/failure counters.
func (p *Poster) Stats() PosterStats {
	return PosterStats{
		Posts:    p.posts.Load(),
		Retries:  p.retries.Load(),
		Failures: p.failures.Load(),
	}
}

// publish pushes the counters into the registry (no-op without one).
func (p *Poster) publish() {
	if p.Reg == nil {
		return
	}
	st := p.Stats()
	p.Reg.Publish("ingestclient", []telemetry.Sample{
		{Name: MetricIngestPosts, Help: "Profiles posted to the store (success or final failure).", Type: "counter", Value: float64(st.Posts)},
		{Name: MetricIngestRetries, Help: "Ingest attempts beyond the first.", Type: "counter", Value: float64(st.Retries)},
		{Name: MetricIngestFailures, Help: "Profiles that exhausted every ingest attempt.", Type: "counter", Value: float64(st.Failures)},
		{Name: MetricIngestConnReuse, Help: "Requests on the shared transport served over a reused keep-alive connection.", Type: "counter", Value: float64(ConnReuseTotal())},
	})
}

// ingestURL builds the final /ingest URL with id and tags parameters.
func (p *Poster) ingestURL(id string, tags []string) (string, error) {
	base := p.URL
	if !strings.Contains(base, "/ingest") {
		base = strings.TrimSuffix(base, "/") + "/ingest"
	}
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("profstore: bad ingest URL %q: %v", p.URL, err)
	}
	q := u.Query()
	if id != "" {
		q.Set("id", id)
	}
	if len(tags) > 0 {
		q.Set("tags", strings.Join(tags, ","))
	}
	u.RawQuery = q.Encode()
	return u.String(), nil
}

// retryableStatus reports whether an HTTP status is worth retrying:
// server-side failures and throttling, never client errors (a 400 will
// fail identically on every attempt).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// PostXML posts one XML document, retrying transient failures with the
// capped backoff schedule and honoring Retry-After on 503s from a
// degraded store. It returns the attempts made alongside the final
// error, so the caller can log how hard the post had to try.
func (p *Poster) PostXML(xml []byte, id string, tags []string) (attempts int, err error) {
	attempts, _, err = p.PostXMLResult(xml, id, tags)
	return attempts, err
}

// PostXMLResult is PostXML returning the server's response body as well
// — the cluster router forwards a replica's IngestResponse verbatim so
// a routed ingest answers byte-identically to a direct one.
func (p *Poster) PostXMLResult(xml []byte, id string, tags []string) (attempts int, body []byte, err error) {
	target, err := p.ingestURL(id, tags)
	if err != nil {
		return 0, nil, err
	}
	client := p.Client
	if client == nil {
		client = SharedClient(10 * time.Second)
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	p.posts.Add(1)
	defer func() {
		if attempts > 1 {
			p.retries.Add(int64(attempts - 1))
		}
		if err != nil {
			p.failures.Add(1)
		}
		p.publish()
	}()
	budget := p.Policy.Attempts()
	roBudget := p.ReadOnlyAttempts
	if roBudget <= 0 {
		roBudget = 8
	}
	for attempt, roAttempt := 0, 0; ; {
		attempts++
		body, err = postOnce(client, target, xml)
		if err == nil {
			return attempts, body, nil
		}
		var se *statusError
		if errors.As(err, &se) {
			if se.retryAfter > 0 && se.code == http.StatusServiceUnavailable {
				// The store is alive but not writable (read-only
				// degradation or shutdown drain): wait as told, on the
				// patient budget.
				if p.Policy.Disable || roAttempt >= roBudget-1 {
					return attempts, nil, err
				}
				roAttempt++
				sleep(se.retryAfter)
				continue
			}
			if !retryableStatus(se.code) {
				return attempts, nil, err // permanent rejection
			}
		}
		if p.Policy.Disable || attempt >= budget-1 {
			return attempts, nil, err
		}
		sleep(p.Policy.BackoffFor(attempt))
		attempt++
	}
}

// PostProfile serialises a profile to IPM XML and posts it.
func (p *Poster) PostProfile(jp *ipm.JobProfile, id string, tags []string) (string, int, error) {
	var buf bytes.Buffer
	if err := ipm.WriteXML(&buf, jp); err != nil {
		return "", 0, fmt.Errorf("profstore: encoding profile: %w", err)
	}
	xml := buf.Bytes()
	if id == "" {
		id = DeriveID(xml)
	}
	attempts, err := p.PostXML(xml, id, tags)
	return id, attempts, err
}

// HTTPStatus returns the HTTP status a PostXML failure carried, or 0
// when the failure never got a response (transport error). Cluster
// routers use it to tell a permanent peer rejection (relay the 4xx)
// from a retryable outage (answer 503).
func HTTPStatus(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	return 0
}

// IsLifecycleErr reports whether an ingest failure is the store's fault
// (closed or degraded read-only — retryable against a replica or after
// an operator fix) rather than the document's.
func IsLifecycleErr(err error) bool {
	return errors.Is(err, ErrReadOnly) || errors.Is(err, ErrClosed)
}

// statusError is a non-2xx ingest response.
type statusError struct {
	code       int
	body       string
	retryAfter time.Duration // parsed Retry-After header, 0 if absent
}

func (e *statusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.code, e.body)
}

// parseRetryAfter reads an integer-seconds Retry-After value, capped at
// maxRetryAfter. (The HTTP-date form is not produced by ipmserve and is
// ignored.)
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

func postOnce(client *http.Client, target string, xml []byte) ([]byte, error) {
	resp, err := client.Post(target, "application/xml", bytes.NewReader(xml))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &statusError{
			code:       resp.StatusCode,
			body:       strings.TrimSpace(string(body)),
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return body, nil
}
