package profstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
)

// This file is the ingest client side: how a finished run posts its
// profile to a (possibly flaky) center-wide store. It reuses the
// fault model's capped-exponential RetryPolicy — the same schedule
// faultsim.Resilient applies to transient CUDA faults — because the
// failure mode is the same: a transient infrastructure hiccup that a
// bounded number of spaced retries rides out, and that must degrade
// into a warning rather than fail the job.

// Poster posts IPM XML profiles to an ipmserve /ingest endpoint with
// capped-backoff retry.
type Poster struct {
	// URL is the server base ("http://host:port") or the full /ingest URL.
	URL string
	// Policy is the retry schedule; the zero value means 3 attempts with
	// 100µs..10ms capped exponential backoff (faultsim defaults).
	Policy faultsim.RetryPolicy
	// Client is the HTTP client; nil uses a 10s-timeout default.
	Client *http.Client
	// Sleep is the backoff sleep, injectable for tests; nil = time.Sleep.
	// Unlike Resilient this runs after the simulation, so it waits in
	// wall time, not virtual time.
	Sleep func(time.Duration)
}

// ingestURL builds the final /ingest URL with id and tags parameters.
func (p *Poster) ingestURL(id string, tags []string) (string, error) {
	base := p.URL
	if !strings.Contains(base, "/ingest") {
		base = strings.TrimSuffix(base, "/") + "/ingest"
	}
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("profstore: bad ingest URL %q: %v", p.URL, err)
	}
	q := u.Query()
	if id != "" {
		q.Set("id", id)
	}
	if len(tags) > 0 {
		q.Set("tags", strings.Join(tags, ","))
	}
	u.RawQuery = q.Encode()
	return u.String(), nil
}

// retryableStatus reports whether an HTTP status is worth retrying:
// server-side failures and throttling, never client errors (a 400 will
// fail identically on every attempt).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// PostXML posts one XML document, retrying transient failures with the
// capped backoff schedule. It returns the attempts made alongside the
// final error, so the caller can log how hard the post had to try.
func (p *Poster) PostXML(xml []byte, id string, tags []string) (attempts int, err error) {
	target, err := p.ingestURL(id, tags)
	if err != nil {
		return 0, err
	}
	client := p.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	budget := p.Policy.Attempts()
	for attempt := 0; ; attempt++ {
		attempts++
		err = postOnce(client, target, xml)
		if err == nil {
			return attempts, nil
		}
		var se *statusError
		if errors.As(err, &se) && !retryableStatus(se.code) {
			return attempts, err // permanent rejection
		}
		if p.Policy.Disable || attempt >= budget-1 {
			return attempts, err
		}
		sleep(p.Policy.BackoffFor(attempt))
	}
}

// PostProfile serialises a profile to IPM XML and posts it.
func (p *Poster) PostProfile(jp *ipm.JobProfile, id string, tags []string) (string, int, error) {
	var buf bytes.Buffer
	if err := ipm.WriteXML(&buf, jp); err != nil {
		return "", 0, fmt.Errorf("profstore: encoding profile: %w", err)
	}
	xml := buf.Bytes()
	if id == "" {
		id = DeriveID(xml)
	}
	attempts, err := p.PostXML(xml, id, tags)
	return id, attempts, err
}

// statusError is a non-2xx ingest response.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.code, e.body)
}

func postOnce(client *http.Client, target string, xml []byte) error {
	resp, err := client.Post(target, "application/xml", bytes.NewReader(xml))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{code: resp.StatusCode, body: strings.TrimSpace(string(body))}
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
