package profstore

import (
	"bytes"
	"encoding/json"
	"testing"
)

// tinyDoc renders a minimal ingestable profile for WAL-structure tests,
// where record framing — not profile content — is under test.
func tinyDoc(i int) []byte {
	return []byte(`<ipm_log ntasks="1" cmd="doc` + string(rune('a'+i)) + `"><task rank="0"></task></ipm_log>`)
}

// framedWAL renders n framed records with deterministic ids and returns
// the image plus each record's [start, end) byte range.
func framedWAL(n int) (data []byte, bounds [][2]int) {
	for i := 0; i < n; i++ {
		m, err := json.Marshal(walRecord{ID: DeriveID(tinyDoc(i)), XML: string(tinyDoc(i))})
		if err != nil {
			panic(err)
		}
		start := len(data)
		data = appendFrame(data, m)
		bounds = append(bounds, [2]int{start, len(data)})
	}
	return data, bounds
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"id":"a","xml":"<ipm_log/>"}`)
	frame := appendFrame(nil, payload)
	if len(frame) != walHeaderSize+len(payload)+1 {
		t.Fatalf("frame length %d, want header+payload+newline", len(frame))
	}
	// finishFrame over [placeholder][payload] must agree byte for byte
	// with appendFrame: they are the pooled and unpooled encoders of the
	// same format.
	buf := append(make([]byte, walHeaderSize), payload...)
	if got := finishFrame(buf); !bytes.Equal(got, frame) {
		t.Errorf("finishFrame diverges from appendFrame:\n%x\n%x", got, frame)
	}
	var decoded []walRecord
	skipped := walScan(frame, func(rec *walRecord, _ []byte) {
		decoded = append(decoded, *rec)
	})
	if skipped != 0 || len(decoded) != 1 || decoded[0].ID != "a" {
		t.Errorf("round trip: skipped=%d decoded=%+v", skipped, decoded)
	}
}

// TestWALTruncationEveryOffset cuts a framed WAL at every byte offset —
// the space of crashes mid-append — and requires that replay never
// panics, never over-recovers, and always recovers every record whose
// bytes fully survived the cut.
func TestWALTruncationEveryOffset(t *testing.T) {
	data, bounds := framedWAL(3)
	for cut := 0; cut <= len(data); cut++ {
		whole := 0
		for _, b := range bounds {
			// The trailing newline is cosmetic: a record is complete
			// once header+payload survived.
			if cut >= b[1]-1 {
				whole++
			}
		}
		s := New()
		recovered, _, _ := s.replayImage(data[:cut])
		if recovered < whole {
			t.Fatalf("cut at %d: recovered %d, want at least the %d complete records", cut, recovered, whole)
		}
		if recovered > len(bounds) {
			t.Fatalf("cut at %d: recovered %d from a %d-record WAL", cut, recovered, len(bounds))
		}
	}
}

// TestWALBitFlips corrupts every in-frame byte in turn: the damage must
// always be detected and counted, at most the damaged record may be
// lost, and neighbours survive. (Occasionally even the damaged record
// survives: the resync scan can land on its JSON payload and salvage it
// through the CRC-less legacy-line path — detected, not lost.)
func TestWALBitFlips(t *testing.T) {
	data, bounds := framedWAL(3)
	for _, b := range bounds {
		for off := b[0]; off < b[1]-1; off++ { // skip the uncommitted '\n'
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x40
			s := New()
			recovered, skipped, _ := s.replayImage(mut)
			if recovered < len(bounds)-1 || recovered > len(bounds) {
				t.Fatalf("flip at %d: recovered %d of %d, want all but at most the damaged record",
					off, recovered, len(bounds))
			}
			if skipped < 1 {
				t.Fatalf("flip at %d: damage not counted (skipped=%d)", off, skipped)
			}
		}
	}
}

// TestWALLegacyFramedInterleave replays a WAL that mixes the PR 4–7
// JSONL format with framed records — an old corpus appended to by a new
// server — including a torn legacy tail.
func TestWALLegacyFramedInterleave(t *testing.T) {
	var data []byte
	legacy := func(i int) []byte {
		m, err := json.Marshal(walRecord{ID: DeriveID(tinyDoc(i)), Tags: []string{"old"}, XML: string(tinyDoc(i))})
		if err != nil {
			t.Fatal(err)
		}
		return append(m, '\n')
	}
	data = append(data, legacy(0)...)
	m1, _ := json.Marshal(walRecord{ID: DeriveID(tinyDoc(1)), XML: string(tinyDoc(1))})
	data = appendFrame(data, m1)
	data = append(data, legacy(2)...)
	data = append(data, `{"id":"torn","xml":"<ipm_`...) // crash mid-append, old format

	s := New()
	recovered, skipped, records := s.replayImage(data)
	if recovered != 3 || skipped != 1 || records != 3 {
		t.Fatalf("interleaved replay: recovered=%d skipped=%d records=%d, want 3/1/3",
			recovered, skipped, records)
	}
	if j := s.Get(DeriveID(tinyDoc(0))); j == nil || len(j.Tags) != 1 || j.Tags[0] != "old" {
		t.Errorf("legacy record metadata lost: %+v", j)
	}
}

// FuzzWALReplay throws arbitrary bytes at the replay path: it must
// never panic, its accounting must be internally consistent, and a
// second replay of the same image must land on the identical corpus.
func FuzzWALReplay(f *testing.F) {
	framed, _ := framedWAL(2)
	f.Add(framed)
	f.Add(framed[:len(framed)/2])
	legacy, _ := json.Marshal(walRecord{ID: "l", XML: `<ipm_log/>`})
	f.Add(append(legacy, '\n'))
	f.Add(append(append([]byte{}, legacy...), framed...))
	bitrot := append([]byte(nil), framed...)
	bitrot[walHeaderSize+3] ^= 0xff
	f.Add(bitrot)
	f.Add([]byte{walMagic0, 'I', 'P', 'W', walVersion, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		s := New()
		recovered, skipped, records := s.replayImage(data)
		if recovered > records {
			t.Fatalf("recovered %d of %d structurally valid records", recovered, records)
		}
		if skipped < records-recovered {
			t.Fatalf("lost records unaccounted: recovered=%d records=%d skipped=%d",
				recovered, records, skipped)
		}
		// recovered = corpus + replacements, exactly.
		if got := int64(s.Len()) + s.Replaced(); got != int64(recovered) {
			t.Fatalf("recovered=%d but len+replaced=%d", recovered, got)
		}
		s2 := New()
		r2, sk2, rec2 := s2.replayImage(data)
		if r2 != recovered || sk2 != skipped || rec2 != records || s2.Len() != s.Len() {
			t.Fatalf("replay is not deterministic: (%d,%d,%d,len %d) vs (%d,%d,%d,len %d)",
				recovered, skipped, records, s.Len(), r2, sk2, rec2, s2.Len())
		}
		if s.Len() > 0 {
			if !bytes.Equal(aggJSON(t, s), aggJSON(t, s2)) {
				t.Fatal("two replays of the same image aggregate differently")
			}
		}
	})
}
