//go:build !race

package profstore

import "testing"

// TestIngestSteadyStateAllocs pins the streaming ingest allocation
// budget. The scratch pool and interned-name cache make a warmed-up
// ingest nearly allocation-free: what remains is the Job value, the
// retained raw copy of the document, the tag slice and the rollup's
// output maps. The bound is deliberately loose (the measured figure is
// ~17) but far below the ~1100 allocs/op of the DOM route — a
// regression back to per-token boxing trips it immediately.
//
// Excluded under -race: the race runtime adds bookkeeping allocations
// that would make the pin meaningless.
func TestIngestSteadyStateAllocs(t *testing.T) {
	doc := syntheticXML(t, 42, 0)
	s := New()
	if _, err := s.Ingest(doc, "warm", nil); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := s.Ingest(doc, "warm", nil); err != nil {
			t.Fatal(err)
		}
	})
	if got > 40 {
		t.Errorf("steady-state ingest allocates %.1f allocs/op, want <= 40 "+
			"(streaming fast path disengaged?)", got)
	}
}
