package profstore

import (
	"math"
	"testing"
)

// near compares float seconds with a nanosecond of slack: every stall is
// accumulated as an integer time.Duration and converted once, so the
// only tolerance needed is the attr-parsing float->Duration rounding.
func near(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

// TestIngestSubmitStall proves command-queue submit accounting survives
// store ingest: per-site Submits/SubmitStallSeconds and the report-level
// total must surface in /agg, identically on the streaming and DOM
// paths. The fixture's rank 0 carries the task-level submit_stall_total
// attribute (which wins), rank 1 only per-func submit attrs (summed).
func TestIngestSubmitStall(t *testing.T) {
	const (
		rank0Stall = 0.0105                   // task attr on rank 0
		rank1Stall = 0.0042 + 0.0031 + 0.0028 // entry-sum re-derive on rank 1
	)
	for _, tc := range []struct {
		name     string
		forceDOM bool
	}{{"streaming", false}, {"dom", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s := New()
			s.forceDOM = tc.forceDOM
			if _, err := s.Ingest(fixture(t, "submit.xml"), "submit", nil); err != nil {
				t.Fatal(err)
			}
			rep := s.Aggregate(AggOptions{})
			if !near(rep.SubmitStallSeconds, rank0Stall+rank1Stall) {
				t.Errorf("SubmitStallSeconds = %v, want %v", rep.SubmitStallSeconds, rank0Stall+rank1Stall)
			}
			want := map[string]struct {
				submits int64
				stall   float64
			}{
				"cudaLaunch":      {80, 0.003 + 0.0028},
				"cudaMemcpy(H2D)": {80, 0.004 + 0.0042},
				"cudaMemcpy(D2H)": {80, 0.0035 + 0.0031},
				"cudaMalloc":      {0, 0},
				"MPI_Allreduce":   {0, 0},
				"@CUDA_HOST_IDLE": {0, 0},
			}
			seen := map[string]bool{}
			for _, row := range rep.CallSites {
				w, ok := want[row.Name]
				if !ok {
					continue
				}
				seen[row.Name] = true
				if row.Submits != w.submits || !near(row.SubmitStallSeconds, w.stall) {
					t.Errorf("%s: submits=%d stall=%v, want %d/%v",
						row.Name, row.Submits, row.SubmitStallSeconds, w.submits, w.stall)
				}
			}
			for name := range want {
				if !seen[name] {
					t.Errorf("call site %s missing from /agg", name)
				}
			}
		})
	}
}

// TestIngestNoSubmitAttrs pins the pre-queue report shape: a fixture
// without submit attributes aggregates to zero stall everywhere, so old
// corpora render exactly as before (omitempty drops the JSON fields).
func TestIngestNoSubmitAttrs(t *testing.T) {
	s := New()
	if _, err := s.Ingest(fixture(t, "base.xml"), "base", nil); err != nil {
		t.Fatal(err)
	}
	rep := s.Aggregate(AggOptions{})
	if rep.SubmitStallSeconds != 0 {
		t.Errorf("SubmitStallSeconds = %v for a pre-queue report, want 0", rep.SubmitStallSeconds)
	}
	for _, row := range rep.CallSites {
		if row.Submits != 0 || row.SubmitStallSeconds != 0 {
			t.Errorf("%s carries submit stats (%d, %v) from a pre-queue report",
				row.Name, row.Submits, row.SubmitStallSeconds)
		}
	}
}
