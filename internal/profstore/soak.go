package profstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/telemetry"
)

// This file is the kill/restart soak harness behind `ipmserve -soak` /
// `make soak`: the durability twin of the SelfTest load generator. It
// launches a real ipmserve child process over a WAL in a scratch
// directory, sustains concurrent ingest against it, and SIGKILLs the
// child mid-ingest at deterministic points in the ack stream —
// restarting it each time — before a final SIGTERM to prove graceful
// shutdown. The run is gated on the acceptance criteria from the
// durability design:
//
//   - zero lost acknowledged jobs: every profile the server acked with
//     a 2xx before any kill is present after the last recovery;
//   - byte-identical queries: the recovered corpus answers /agg and
//     /regress exactly like a never-killed in-process reference store
//     over the same documents.
//
// Content-derived ids make the comparison exact even for documents that
// were persisted but killed before the ack: the client retries them and
// the re-ingest replaces the job with identical bytes.

// SoakOptions sizes a kill/restart soak run.
type SoakOptions struct {
	// ServerCmd is the argv of the child server; the harness appends
	// -addr, -wal and -compact-every. Typically the running ipmserve
	// binary itself (os.Executable).
	ServerCmd []string
	Jobs      int           // synthetic profiles to ingest (default 200)
	Workers   int           // concurrent ingest workers (default 4)
	Cycles    int           // SIGKILL/restart cycles (default 3)
	// CompactEvery is forwarded to the child so snapshots and WAL
	// truncation happen under fire (default 32 appends; -1 disables).
	CompactEvery int
	Timeout      time.Duration // wall-clock budget (default 120s)
	Seed         uint64        // corpus seed (default 2011)
	Dir          string        // scratch dir (default: fresh temp, removed)
	Logf         func(format string, args ...any)
}

// SoakReport summarises a soak run.
type SoakReport struct {
	Jobs     int
	Kills    int
	Restarts int
	Acked    int           // jobs acknowledged with a 2xx
	Retried  int64         // posts that needed more than one round
	AggBytes int           // size of the (verified identical) /agg body
	Elapsed  time.Duration
}

// soakChild is the managed ipmserve subprocess.
type soakChild struct {
	argv []string
	addr string
	wal  string
	cmd  *exec.Cmd
}

func (c *soakChild) start() error {
	args := append(append([]string{}, c.argv[1:]...), "-addr", c.addr, "-wal", c.wal)
	cmd := exec.Command(c.argv[0], args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("soak: starting server: %w", err)
	}
	c.cmd = cmd
	return nil
}

// waitReady polls /readyz until the child accepts writes.
func (c *soakChild) waitReady(deadline time.Time) error {
	url := "http://" + c.addr + "/readyz"
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("soak: server at %s not ready before deadline", c.addr)
}

// kill SIGKILLs the child — no flush, no goodbye; the crash being
// simulated — and reaps it.
func (c *soakChild) kill() {
	c.cmd.Process.Kill()
	c.cmd.Wait()
	c.cmd = nil
}

// terminate sends SIGTERM and requires a clean exit: the graceful
// shutdown path (drain, flush, snapshot) must finish with status 0.
func (c *soakChild) terminate(deadline time.Time) error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("soak: SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		c.cmd = nil
		if err != nil {
			return fmt.Errorf("soak: server exited uncleanly after SIGTERM: %w", err)
		}
		return nil
	case <-time.After(time.Until(deadline)):
		c.cmd.Process.Kill()
		<-done
		c.cmd = nil
		return fmt.Errorf("soak: server did not exit within deadline after SIGTERM")
	}
}

// Soak runs the kill/restart soak. Any lost acknowledged job, query
// divergence from the reference store, or unclean shutdown is an error.
func Soak(opts SoakOptions) (*SoakReport, error) {
	if len(opts.ServerCmd) == 0 {
		return nil, fmt.Errorf("soak: ServerCmd is required")
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 200
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Cycles <= 0 {
		opts.Cycles = 3
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 32
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 2011
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "profstore-soak")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	start := time.Now()
	deadline := start.Add(opts.Timeout)
	rep := &SoakReport{Jobs: opts.Jobs}

	// Reserve a port for the child (and its restarts) by binding and
	// releasing it; Go listeners set SO_REUSEADDR, so the rebinds race
	// nothing but our own dead process.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr

	// Render the corpus once: the same bytes go to the child and the
	// in-process reference store.
	type doc struct {
		xml  []byte
		id   string
		tags []string
	}
	docs := make([]doc, opts.Jobs)
	ref := New()
	for i := range docs {
		var buf bytes.Buffer
		if err := ipm.WriteXML(&buf, SyntheticProfile(opts.Seed, i)); err != nil {
			return rep, fmt.Errorf("soak: encoding job %d: %w", i, err)
		}
		xml := append([]byte(nil), buf.Bytes()...)
		d := doc{xml: xml, id: DeriveID(xml), tags: []string{"soak", fmt.Sprintf("batch:%d", i%2)}}
		docs[i] = d
		if _, err := ref.Ingest(d.xml, d.id, d.tags); err != nil {
			return rep, fmt.Errorf("soak: reference ingest %d: %w", i, err)
		}
	}

	cmd := append(append([]string{}, opts.ServerCmd...),
		"-compact-every", fmt.Sprint(opts.CompactEvery), "-snapshot-on-exit")
	child := &soakChild{argv: cmd, addr: addr, wal: filepath.Join(dir, "soak.wal")}
	if err := child.start(); err != nil {
		return rep, err
	}
	defer func() {
		if child.cmd != nil {
			child.kill()
		}
	}()
	if err := child.waitReady(deadline); err != nil {
		return rep, err
	}
	logf("soak: serving on %s (wal %s), %d jobs, %d workers, %d kill cycles",
		base, child.wal, opts.Jobs, opts.Workers, opts.Cycles)

	// Ingest workers: each owns a shard of the corpus and retries every
	// document until the server acks it — riding out the kill windows.
	// Acked ids are recorded only on a 2xx: the zero-loss gate below is
	// exactly "acked implies present after recovery".
	var (
		acked   atomic.Int64
		retried atomic.Int64
		ackMu   sync.Mutex
		ackedID = make(map[string]bool, opts.Jobs)
	)
	errc := make(chan error, opts.Workers+1)
	var workers sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			poster := &Poster{
				URL: base,
				Policy: faultsim.RetryPolicy{
					MaxAttempts: 2,
					Backoff:     faultsim.Dur(10 * time.Millisecond),
					MaxBackoff:  faultsim.Dur(100 * time.Millisecond),
				},
				Client: &http.Client{Timeout: 5 * time.Second},
			}
			for i := w; i < len(docs); i += opts.Workers {
				d := docs[i]
				rounds := 0
				for {
					if time.Now().After(deadline) {
						errc <- fmt.Errorf("soak: deadline while ingesting job %d", i)
						return
					}
					_, err := poster.PostXML(d.xml, d.id, d.tags)
					if err == nil {
						break
					}
					rounds++
					time.Sleep(25 * time.Millisecond) // server is restarting
				}
				if rounds > 0 {
					retried.Add(1)
				}
				ackMu.Lock()
				ackedID[d.id] = true
				ackMu.Unlock()
				acked.Add(1)
			}
		}(w)
	}

	// Killer: SIGKILL the child each time the ack stream crosses the
	// next threshold — evenly spaced so every cycle lands mid-ingest —
	// then restart it and let recovery replay snapshot + WAL.
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for c := 1; c <= opts.Cycles; c++ {
			threshold := int64(c * opts.Jobs / (opts.Cycles + 1))
			for acked.Load() < threshold {
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("soak: deadline waiting for kill threshold %d", threshold)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			logf("soak: cycle %d/%d: SIGKILL at %d acked job(s)", c, opts.Cycles, acked.Load())
			child.kill()
			rep.Kills++
			if err := child.start(); err != nil {
				errc <- err
				return
			}
			if err := child.waitReady(deadline); err != nil {
				errc <- err
				return
			}
			rep.Restarts++
		}
	}()

	workers.Wait()
	<-killerDone
	rep.Acked = int(acked.Load())
	rep.Retried = retried.Load()
	select {
	case err := <-errc:
		return rep, err
	default:
	}

	// Graceful exit under SIGTERM, then one more cold recovery: the
	// verified corpus below has survived both crash and clean shutdown.
	if err := child.terminate(deadline); err != nil {
		return rep, err
	}
	if err := child.start(); err != nil {
		return rep, err
	}
	if err := child.waitReady(deadline); err != nil {
		return rep, err
	}
	rep.Restarts++

	// Gate 1: zero lost acknowledged jobs.
	jobsBody, err := httpGet(base + "/jobs")
	if err != nil {
		return rep, err
	}
	var metas []JobMeta
	if err := json.Unmarshal(jobsBody, &metas); err != nil {
		return rep, fmt.Errorf("soak: decoding /jobs: %w", err)
	}
	present := make(map[string]bool, len(metas))
	for _, m := range metas {
		present[m.ID] = true
	}
	lost := 0
	for id := range ackedID {
		if !present[id] {
			lost++
		}
	}
	if lost > 0 {
		return rep, fmt.Errorf("soak: %d acknowledged job(s) lost across %d kill(s)", lost, rep.Kills)
	}
	if len(metas) != opts.Jobs {
		return rep, fmt.Errorf("soak: recovered corpus holds %d jobs, want %d", len(metas), opts.Jobs)
	}

	// Gate 2: byte-identical queries versus the never-killed reference.
	refSrv := NewServer(ref, telemetry.NewRegistry())
	refLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	refHS := &http.Server{Handler: refSrv.Handler()}
	go refHS.Serve(refLn)
	defer refHS.Close()
	refBase := "http://" + refLn.Addr().String()
	for _, q := range []string{
		"/agg?sel=tag:soak",
		"/jobs",
		"/regress?base=tag:batch:0&head=tag:batch:1&threshold=5",
	} {
		got, err := httpGet(base + q)
		if err != nil {
			return rep, err
		}
		want, err := httpGet(refBase + q)
		if err != nil {
			return rep, err
		}
		if !bytes.Equal(got, want) {
			return rep, fmt.Errorf("soak: %s differs from the never-killed reference (%d vs %d bytes)", q, len(got), len(want))
		}
		if q == "/jobs" {
			continue
		}
		if rep.AggBytes == 0 {
			rep.AggBytes = len(got)
		}
	}

	if err := child.terminate(deadline); err != nil {
		return rep, err
	}
	rep.Elapsed = time.Since(start)
	logf("soak: ok — %d jobs acked (%d retried through kill windows), %d kills, %d restarts, queries byte-identical, in %v",
		rep.Acked, rep.Retried, rep.Kills, rep.Restarts, rep.Elapsed.Round(time.Millisecond))
	return rep, nil
}
