package profstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ipmgo/internal/telemetry"
)

// Server wraps a Store with the HTTP query surface of cmd/ipmserve and
// its Prometheus self-metrics. All responses are deterministic for a
// fixed corpus: JSON is rendered from fully-sorted report structs, and
// the HTML views iterate the same slices.
type Server struct {
	store *Store
	reg   *telemetry.Registry
	lat   *telemetry.Histogram

	// draining flips /readyz to 503 during graceful shutdown so a load
	// balancer stops routing before the listener closes.
	draining atomic.Bool

	parseErrors atomic.Int64
	httpErrors  atomic.Int64
	queries     [qCount]atomic.Int64
}

// query classes for the per-endpoint counters.
const (
	qIngest = iota
	qJobs
	qJob
	qAgg
	qRegress
	qCompact
	qCount
)

var queryNames = [qCount]string{"ingest", "jobs", "job", "agg", "regress", "compact"}

// Metric family names served on /metrics.
const (
	MetricIngest      = "profstore_ingest_total"
	MetricIngestBytes = "ipm_ingest_bytes_total"
	MetricSalvaged    = "profstore_ingest_salvaged_total"
	MetricReplaced    = "profstore_ingest_replaced_total"
	MetricParseErrors = "profstore_parse_errors_total"
	MetricHTTPErrors  = "profstore_http_errors_total"
	MetricJobs        = "profstore_jobs"
	MetricRanks       = "profstore_ranks"
	MetricQueries     = "profstore_queries_total"
	MetricQuerySecs   = "profstore_query_seconds"
	MetricReadonly    = "ipm_store_readonly"
	MetricWALErrors   = "profstore_wal_errors_total"
	MetricSnapshots   = "profstore_snapshots_total"
	MetricSnapErrors  = "profstore_snapshot_errors_total"
	MetricWALPending  = "profstore_wal_appends_since_snapshot"
	MetricRecovered   = "profstore_wal_recovered_records"
	MetricSkipped     = "profstore_wal_skipped_records"
)

// retryAfterSeconds is the backoff hint sent with every 503: long
// enough to shed load from a degraded store, short enough that clients
// notice an operator remount quickly.
const retryAfterSeconds = 5

// NewServer builds the HTTP layer over store, registering its query
// latency histogram with reg (which also serves /metrics).
func NewServer(store *Store, reg *telemetry.Registry) *Server {
	return &Server{
		store: store,
		reg:   reg,
		lat: reg.Histogram(MetricQuerySecs, "Profile store query latency.",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}),
	}
}

// publishMetrics snapshots the store and server counters into the
// registry; called before every /metrics render so scrapes always see
// current values.
func (s *Server) publishMetrics() {
	readonly, _ := s.store.ReadOnly()
	recovered, skipped := s.store.RecoveryCounts()
	samples := []telemetry.Sample{
		{Name: MetricIngest, Help: "Profiles ingested (including re-ingests).", Type: "counter", Value: float64(s.store.Ingests())},
		{Name: MetricIngestBytes, Help: "XML bytes ingested (including re-ingests).", Type: "counter", Value: float64(s.store.IngestedBytes())},
		{Name: MetricSalvaged, Help: "Ingested profiles the tolerant parser had to salvage.", Type: "counter", Value: float64(s.store.Salvaged())},
		{Name: MetricReplaced, Help: "Ingests that replaced an existing job id.", Type: "counter", Value: float64(s.store.Replaced())},
		{Name: MetricParseErrors, Help: "Ingest bodies rejected as unparseable.", Type: "counter", Value: float64(s.parseErrors.Load())},
		{Name: MetricHTTPErrors, Help: "Requests answered with a 4xx/5xx status.", Type: "counter", Value: float64(s.httpErrors.Load())},
		{Name: MetricJobs, Help: "Jobs in the corpus.", Type: "gauge", Value: float64(s.store.Len())},
		{Name: MetricRanks, Help: "Rank snapshots in the corpus.", Type: "gauge", Value: float64(s.store.RankCount())},
		{Name: MetricReadonly, Help: "1 when a WAL failure degraded the store to read-only.", Type: "gauge", Value: boolGauge(readonly)},
		{Name: MetricWALErrors, Help: "WAL write, fsync or truncate failures.", Type: "counter", Value: float64(s.store.WALErrors())},
		{Name: MetricSnapshots, Help: "Snapshot compactions completed.", Type: "counter", Value: float64(s.store.Snapshots())},
		{Name: MetricSnapErrors, Help: "Background snapshot compactions that failed.", Type: "counter", Value: float64(s.store.SnapshotErrors())},
		{Name: MetricWALPending, Help: "WAL records a restart would replay (since last snapshot).", Type: "gauge", Value: float64(s.store.PendingWALRecords())},
		{Name: MetricRecovered, Help: "Records recovered from snapshot+WAL at open.", Type: "gauge", Value: float64(recovered)},
		{Name: MetricSkipped, Help: "Torn or corrupt records skipped at open.", Type: "gauge", Value: float64(skipped)},
	}
	for q := 0; q < qCount; q++ {
		samples = append(samples, telemetry.Sample{
			Name: MetricQueries, Help: "Queries served by endpoint.", Type: "counter",
			Labels: []telemetry.Label{{Key: "endpoint", Value: queryNames[q]}},
			Value:  float64(s.queries[q].Load()),
		})
	}
	s.reg.Publish("profstore", samples)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// SetDraining marks the server as shutting down: /readyz answers 503 so
// load balancers drain, while in-flight and follow-up queries still
// complete against the live mux.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// observe records one served query in the counters and the latency
// histogram.
func (s *Server) observe(q int, start time.Time) {
	s.queries[q].Add(1)
	s.lat.Observe(time.Since(start).Seconds())
}

// Handler returns the route mux: the query surface plus /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /job/{id}", s.handleJob)
	mux.HandleFunc("GET /agg", s.handleAgg)
	mux.HandleFunc("GET /regress", s.handleRegress)
	mux.HandleFunc("POST /compact", s.handleCompact)
	// /healthz: liveness — the process is up and serving queries.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /readyz: readiness to accept writes — 503 while draining for
	// shutdown or degraded to read-only, so ingest clients and load
	// balancers route away while dashboards keep reading.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if ro, reason := s.store.ReadOnly(); ro {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			http.Error(w, "read-only: "+reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.publishMetrics()
		s.reg.Handler().ServeHTTP(w, r)
	}))
	return mux
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.httpErrors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// writeJSON renders v as indented JSON (deterministic: struct fields in
// declaration order, every slice pre-sorted).
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.httpErrors.Add(1)
	}
}

// IngestResponse is the POST /ingest response body.
type IngestResponse struct {
	ID       string   `json:"id"`
	Ranks    int      `json:"ranks"`
	Salvaged bool     `json:"salvaged"`
	Warnings int      `json:"warnings"`
	Tags     []string `json:"tags,omitempty"`
}

// maxIngestBytes bounds one ingest body (a center-wide store must not be
// OOM-able by a single malformed client).
const maxIngestBytes = 64 << 20

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.observe(qIngest, start)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBytes+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxIngestBytes {
		s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxIngestBytes)
		return
	}
	var tags []string
	if t := r.URL.Query().Get("tags"); t != "" {
		tags = strings.Split(t, ",")
	}
	job, err := s.store.Ingest(body, r.URL.Query().Get("id"), tags)
	if err != nil {
		// Lifecycle errors are the store's problem, not the client's:
		// answer 503 with a retry hint instead of blaming the document.
		if errors.Is(err, ErrReadOnly) || errors.Is(err, ErrClosed) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			s.fail(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		s.parseErrors.Add(1)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, IngestResponse{
		ID: job.ID, Ranks: job.Ranks, Salvaged: job.Salvaged,
		Warnings: job.Warnings, Tags: job.Tags,
	})
}

// JobMeta is one row of the GET /jobs listing.
type JobMeta struct {
	ID               string   `json:"id"`
	Command          string   `json:"command"`
	Tags             []string `json:"tags,omitempty"`
	Ranks            int      `json:"ranks"`
	LostRanks        int      `json:"lost_ranks,omitempty"`
	WallclockSeconds float64  `json:"wallclock_seconds"`
	GPUPercent       float64  `json:"gpu_pct"`
	CommPercent      float64  `json:"comm_pct"`
	Salvaged         bool     `json:"salvaged,omitempty"`
}

func metaOf(j *Job) JobMeta {
	p := j.Profile()
	return JobMeta{
		ID: j.ID, Command: j.Command, Tags: j.Tags, Ranks: j.Ranks,
		LostRanks:        len(p.LostRanks()),
		WallclockSeconds: p.Wallclock().Seconds(),
		GPUPercent:       p.GPUPercent(),
		CommPercent:      p.CommPercent(),
		Salvaged:         j.Salvaged,
	}
}

// JobMetas returns the GET /jobs rows for a selector — the member-side
// payload of the cluster /shard/jobs scatter (metadata requires the
// owning member's raw documents, so the router gathers rows rather than
// recomputing them).
func (s *Store) JobMetas(sel string) []JobMeta {
	jobs := s.Select(sel)
	metas := make([]JobMeta, 0, len(jobs))
	for _, j := range jobs {
		metas = append(metas, metaOf(j))
	}
	return metas
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.observe(qJobs, start)
	metas := s.store.JobMetas(r.URL.Query().Get("sel"))
	if wantsHTML(r) {
		renderHTML(w, jobsTmpl, metas)
		return
	}
	s.writeJSON(w, metas)
}

// JobDetail is the GET /job/{id} response body.
type JobDetail struct {
	JobMeta
	ExpectedRanks int           `json:"expected_ranks"`
	Degraded      bool          `json:"degraded,omitempty"`
	Errors        int64         `json:"errors,omitempty"`
	CallSites     []CallSiteAgg `json:"call_sites"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.observe(qJob, start)
	id := r.PathValue("id")
	job := s.store.Get(id)
	if job == nil {
		s.fail(w, http.StatusNotFound, "no job %q", id)
		return
	}
	agg := aggregateJobs([]*Job{job}, AggOptions{})
	p := job.Profile()
	s.writeJSON(w, JobDetail{
		JobMeta:       metaOf(job),
		ExpectedRanks: p.Expected(),
		Degraded:      p.Degraded(),
		Errors:        p.TotalErrors(),
		CallSites:     agg.CallSites,
	})
}

func (s *Server) handleAgg(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.observe(qAgg, start)
	topN := 0
	if t := r.URL.Query().Get("top"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n <= 0 {
			s.fail(w, http.StatusBadRequest, "bad top=%q", t)
			return
		}
		topN = n
	}
	rep := s.store.Aggregate(AggOptions{Sel: r.URL.Query().Get("sel"), TopN: topN})
	if wantsHTML(r) {
		renderHTML(w, aggTmpl, rep)
		return
	}
	s.writeJSON(w, rep)
}

func (s *Server) handleRegress(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer s.observe(qRegress, start)
	q := r.URL.Query()
	base, head := q.Get("base"), q.Get("head")
	if base == "" || head == "" {
		s.fail(w, http.StatusBadRequest, "base= and head= are required (job id, tag:T or cmd:C)")
		return
	}
	opts := RegressOptions{Base: base, Head: head}
	if t := q.Get("threshold"); t != "" {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil || v <= 0 {
			s.fail(w, http.StatusBadRequest, "bad threshold=%q", t)
			return
		}
		opts.Threshold = v
	}
	rep := s.store.Regress(opts)
	if rep.BaseJobs == 0 || rep.HeadJobs == 0 {
		s.fail(w, http.StatusNotFound, "base matched %d job(s), head %d", rep.BaseJobs, rep.HeadJobs)
		return
	}
	if wantsHTML(r) {
		renderHTML(w, regressTmpl, rep)
		return
	}
	s.writeJSON(w, rep)
}

// handleCompact is the admin trigger for Snapshot(): fold snapshot+WAL
// into a new snapshot and truncate the log, synchronously.
func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	start := time.Now()
	defer s.observe(qCompact, start)
	info, err := s.store.Snapshot()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrReadOnly) || errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		}
		s.fail(w, code, "%v", err)
		return
	}
	s.writeJSON(w, info)
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, indexHTML)
}

// wantsHTML reports whether the request asked for the HTML table view.
func wantsHTML(r *http.Request) bool { return r.URL.Query().Get("format") == "html" }

func renderHTML(w http.ResponseWriter, t *template.Template, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	t.Execute(w, data)
}

// WriteJobsHTML, WriteAggHTML and WriteRegressHTML render the same HTML
// table views the single-node handlers serve with format=html — shared
// with the cluster router so a scattered query's HTML matches too.
func WriteJobsHTML(w http.ResponseWriter, metas []JobMeta)       { renderHTML(w, jobsTmpl, metas) }
func WriteAggHTML(w http.ResponseWriter, rep *AggReport)         { renderHTML(w, aggTmpl, rep) }
func WriteRegressHTML(w http.ResponseWriter, rep *RegressReport) { renderHTML(w, regressTmpl, rep) }

const htmlStyle = `<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-bottom: 2em; }
th, td { border: 1px solid #999; padding: 0.2em 0.6em; text-align: right; }
th { background: #eee; }
td.l, th.l { text-align: left; }
.bad { color: #a00; font-weight: bold; }
.good { color: #070; }
</style>`

const indexHTML = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ipmserve</title>` + htmlStyle + `</head><body>
<h1>IPM profile store</h1>
<ul>
<li><a href="/jobs?format=html">/jobs</a> — ingested profiles (JSON without format=html)</li>
<li><a href="/agg?format=html">/agg</a> — cross-job rollup (sel=, top=)</li>
<li>/regress?base=&amp;head= — per-call-site comparison (threshold=)</li>
<li><a href="/metrics">/metrics</a> — Prometheus metrics</li>
</ul>
<p>POST IPM XML logs to /ingest?tags=a,b to grow the corpus.</p>
</body></html>
`

var jobsTmpl = template.Must(template.New("jobs").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ipmserve: jobs</title>` + htmlStyle + `</head><body>
<h1>Jobs ({{len .}})</h1>
<table>
<tr><th class="l">id</th><th class="l">command</th><th class="l">tags</th><th>ranks</th><th>lost</th><th>wallclock [s]</th><th>%gpu</th><th>%comm</th><th>salvaged</th></tr>
{{range .}}<tr><td class="l"><a href="/job/{{.ID}}">{{.ID}}</a></td><td class="l">{{.Command}}</td><td class="l">{{range .Tags}}{{.}} {{end}}</td><td>{{.Ranks}}</td><td>{{.LostRanks}}</td><td>{{printf "%.3f" .WallclockSeconds}}</td><td>{{printf "%.2f" .GPUPercent}}</td><td>{{printf "%.2f" .CommPercent}}</td><td>{{if .Salvaged}}yes{{end}}</td></tr>
{{end}}</table>
</body></html>
`))

const aggTmplText = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ipmserve: aggregate</title>` + htmlStyle + `</head><body>
<h1>Fleet aggregate{{with .Selector}} ({{.}}){{end}}</h1>
<table>
<tr><th class="l">jobs</th><td>{{.Jobs}}</td></tr>
<tr><th class="l">ranks</th><td>{{.Ranks}} ({{.LostRanks}} lost)</td></tr>
<tr><th class="l">salvaged jobs</th><td>{{.Salvaged}}</td></tr>
<tr><th class="l">wallclock [s]</th><td>{{printf "%.3f" .WallclockSeconds}}</td></tr>
<tr><th class="l">GPU busy</th><td>{{printf "%.2f%%" (mulf .GPUBusyFraction 100)}}</td></tr>
<tr><th class="l">host blocked</th><td>{{printf "%.2f%%" (mulf .HostBlockedFraction 100)}}</td></tr>
<tr><th class="l">transfer [s]</th><td>{{printf "%.4f" .TransferSeconds}}</td></tr>
<tr><th class="l">MPI [s]</th><td>{{printf "%.4f" .MPISeconds}}</td></tr>
</table>
<h2>Call sites</h2>
<table>
<tr><th class="l">name</th><th class="l">domain</th><th>calls</th><th>errors</th><th>time [s]</th><th>per call [s]</th><th>%wall</th></tr>
{{range .CallSites}}<tr><td class="l">{{.Name}}</td><td class="l">{{.Domain}}</td><td>{{.Calls}}</td><td>{{.Errors}}</td><td>{{printf "%.4f" .Seconds}}</td><td>{{printf "%.6f" .PerCall}}</td><td>{{printf "%.2f" .WallPct}}</td></tr>
{{end}}</table>
<h2>Top kernels</h2>
<table>
<tr><th class="l">kernel</th><th>launches</th><th>GPU time [s]</th></tr>
{{range .TopKernels}}<tr><td class="l">{{.Kernel}}</td><td>{{.Launches}}</td><td>{{printf "%.4f" .Seconds}}</td></tr>
{{end}}</table>
<h2>Worst per-rank imbalance (max/avg)</h2>
<table>
<tr><th class="l">name</th><th>max/avg</th><th class="l">worst job</th></tr>
{{range .Imbalance}}<tr><td class="l">{{.Name}}</td><td>{{printf "%.2f" .MaxOverAvg}}</td><td class="l">{{.WorstJob}}</td></tr>
{{end}}</table>
</body></html>
`

var aggTmpl = template.Must(template.New("agg").Funcs(template.FuncMap{
	"mulf": func(a, b float64) float64 { return a * b },
}).Parse(aggTmplText))

var regressTmpl = template.Must(template.New("regress").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ipmserve: regress</title>` + htmlStyle + `</head><body>
<h1>Regression: {{.Base}} &rarr; {{.Head}}</h1>
<p>{{.BaseJobs}} base job(s), {{.HeadJobs}} head job(s), threshold {{printf "%.1f%%" .Threshold}},
<span {{if .Regressions}}class="bad"{{end}}>{{.Regressions}} regression(s)</span>.</p>
<table>
<tr><th class="l">name</th><th>base/call [s]</th><th>head/call [s]</th><th>delta</th><th class="l">status</th></tr>
{{range .Rows}}<tr><td class="l">{{.Name}}</td><td>{{printf "%.6f" .BasePerCall}}</td><td>{{printf "%.6f" .HeadPerCall}}</td><td>{{printf "%+.1f%%" .DeltaPct}}</td><td class="l{{if .Regressed}} bad{{end}}{{if eq .Status "improved"}} good{{end}}">{{.Status}}</td></tr>
{{end}}</table>
</body></html>
`))
