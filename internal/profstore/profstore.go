// Package profstore is the center-wide profile store: the ingestion and
// query layer that turns single-job IPM profiles into workload-level
// views (paper Section II — IPM is deployed on every job at NERSC, and
// the value comes from aggregating thousands of XML logs).
//
// The store is sharded for concurrent ingest (per-shard RWMutex keyed by
// job id hash) and durable via an append-only JSONL write-ahead log: a
// restarted server replays the WAL and recovers its exact corpus, and
// because every query output is deterministically ordered, the recovered
// store answers /agg and /regress byte-identically to the pre-restart
// one.
//
// Profiles enter through the tolerant parser (internal/ipmparse
// semantics): a truncated or corrupt log from a crashed job is salvaged
// rather than rejected, and the concessions made are counted and
// surfaced per job and in the Prometheus metrics.
package profstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ipmgo/internal/ipm"
)

// numShards is the number of lock shards. A power of two so the shard
// index is a mask of the id hash; 16 comfortably exceeds the core counts
// the ingest benchmarks run on.
const numShards = 16

// Job is one ingested profile with its store metadata.
type Job struct {
	ID       string   // deterministic: caller-supplied or content hash
	Tags     []string // sorted, deduplicated
	Command  string   // from the profile header
	Salvaged bool     // tolerant parse made concessions
	Warnings int      // number of parse warnings recorded
	Ranks    int      // rank snapshots recovered
	Bytes    int      // size of the ingested XML document

	// The streaming ingest path never builds the JobProfile DOM; it
	// retains the raw document instead and Profile() parses it lazily on
	// first use (the /jobs and /job/{id} detail paths). The fallback
	// DOM-parse path pre-sets prof and retains nothing.
	raw      []byte
	profOnce sync.Once
	prof     *ipm.JobProfile

	// rollup is the per-job pre-aggregation, computed once at ingest and
	// immutable afterwards (see rollup.go).
	rollup *rollup
}

// Profile returns the job's full DOM profile, parsing the retained
// document on first use. Safe for concurrent callers; the parse runs at
// most once per job.
func (j *Job) Profile() *ipm.JobProfile {
	j.profOnce.Do(func() {
		if j.prof != nil {
			return
		}
		jp, _, err := ipm.ParseXMLTolerant(bytes.NewReader(j.raw))
		if err != nil {
			// Unreachable for documents the streaming scanner accepted
			// (it found the ipm_log root); keep a usable zero profile
			// rather than a nil deref if that invariant ever breaks.
			jp = ipm.NewJobProfile(j.Command, 0, nil)
		}
		j.prof = jp
		j.raw = nil
	})
	return j.prof
}

// shard is one lock-striped partition of the corpus.
type shard struct {
	mu   sync.RWMutex
	jobs map[string]*Job
}

// Store is the sharded, concurrency-safe profile corpus.
type Store struct {
	shards [numShards]shard

	// wal guards the append-only log; nil when the store is in-memory
	// only. Appends are serialised independently of the shard locks so
	// ingests into different shards only contend on the file write.
	walMu sync.Mutex
	wal   *os.File

	jobs     atomic.Int64 // corpus size (gauge)
	ranks    atomic.Int64 // total rank snapshots held (gauge)
	ingests  atomic.Int64 // successful ingests, including replacements
	salvaged atomic.Int64 // ingests the tolerant parser had to salvage
	replaced atomic.Int64 // ingests that replaced an existing job id
	bytesIn  atomic.Int64 // XML bytes successfully ingested

	// forceDOM disables the streaming scan fast path so tests can drive
	// the ParseXMLTolerant fallback on inputs the scanner would accept
	// and compare the two end to end.
	forceDOM bool

	// epoch advances after every shard insert; the memo cache (memo.go)
	// keys cached /agg and /regress reports by it.
	epoch     atomic.Uint64
	memoMu    sync.Mutex
	memoEpoch uint64
	memo      map[memoKey]any
}

// New returns an in-memory store (no WAL).
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].jobs = make(map[string]*Job)
	}
	return s
}

// Open returns a store backed by the append-only WAL at path, replaying
// any existing log first. A torn final record (a crash mid-append) is
// skipped, mirroring how the tolerant parser treats a torn XML log; the
// number of records recovered and skipped is returned.
func Open(path string) (s *Store, recovered, skipped int, err error) {
	s = New()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("profstore: opening WAL: %w", err)
	}
	recovered, skipped, err = s.replay(f)
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, 0, 0, fmt.Errorf("profstore: seeking WAL end: %w", err)
	}
	s.wal = f
	return s, recovered, skipped, nil
}

// Close releases the WAL file, if any.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// walRecord is one JSONL line of the write-ahead log. The raw XML is the
// durable form: replay re-ingests it through the same tolerant parse, so
// a recovered store is bit-for-bit the store that wrote the log.
type walRecord struct {
	ID   string   `json:"id"`
	Tags []string `json:"tags,omitempty"`
	XML  string   `json:"xml"`
}

// replay re-ingests every complete WAL record.
func (s *Store) replay(f *os.File) (recovered, skipped int, err error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn or corrupt record: only trust what parsed cleanly.
			skipped++
			continue
		}
		if _, err := s.ingest([]byte(rec.XML), rec.ID, rec.Tags, false); err != nil {
			skipped++
			continue
		}
		recovered++
	}
	if err := sc.Err(); err != nil {
		return recovered, skipped, fmt.Errorf("profstore: reading WAL: %w", err)
	}
	return recovered, skipped, nil
}

// DeriveID returns the deterministic content-derived job id used when
// the client does not supply one: FNV-1a over the XML bytes. The same
// document always lands under the same id, making ingest idempotent.
func DeriveID(xml []byte) string {
	h := fnv.New64a()
	h.Write(xml)
	return fmt.Sprintf("j%016x", h.Sum64())
}

// normTags sorts, deduplicates and drops empty tags.
func normTags(tags []string) []string {
	out := make([]string, 0, len(tags))
	for _, t := range tags {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return slicesCompact(out)
}

func slicesCompact(in []string) []string {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()&(numShards-1)]
}

// Ingest parses one IPM XML document tolerantly and adds it to the
// corpus (and WAL). An empty id derives one from the content. Returns
// the stored job; the only error is an unrecoverable parse (no ipm_log
// root at all) or a WAL write failure.
func (s *Store) Ingest(xml []byte, id string, tags []string) (*Job, error) {
	return s.ingest(xml, id, tags, true)
}

// ingest is the one-pass streaming write path: a prescan settles the
// content-hash id and whether the zero-copy scanner applies, then a
// single scan over the bytes produces the rollup, the job metadata and
// (via the pooled buffer) the WAL record. Documents off the scanner's
// fast-path grammar — non-ASCII, entities, truncation, decoder
// oddities — take the original ParseXMLTolerant + computeRollup route,
// which is the semantic reference the scanner must agree with
// (FuzzScanVsParse enforces exactly that).
func (s *Store) ingest(xml []byte, id string, tags []string, logIt bool) (*Job, error) {
	sc := scratchPool.Get().(*ingestScratch)
	defer scratchPool.Put(sc)

	var clean bool
	if id == "" {
		var hash uint64
		hash, clean = prescanHash(xml)
		id = formatID(hash) // == DeriveID(xml)
	} else {
		clean = prescanClean(xml)
	}
	if s.forceDOM {
		clean = false
	}

	var (
		ro       *rollup
		jp       *ipm.JobProfile
		command  string
		salvaged bool
		warnings int
		nranks   int
	)
	if clean {
		sc.sink.reset()
		resetReport(&sc.rep)
		if ok, serr := ipm.ScanXMLTolerant(xml, sc.sink, &sc.rep); ok {
			if serr != nil {
				return nil, fmt.Errorf("profstore: ingest: %w", serr)
			}
			ro = sc.sink.build(id)
			command = sc.sink.command
			warnings = len(sc.rep.Warnings)
			salvaged = sc.rep.Truncated || warnings > 0
			nranks = sc.sink.tasks
		}
	}
	if ro == nil {
		var rep *ipm.ParseReport
		var err error
		jp, rep, err = ipm.ParseXMLTolerant(bytes.NewReader(xml))
		if err != nil {
			return nil, fmt.Errorf("profstore: ingest: %w", err)
		}
		ro = computeRollup(jp, id)
		command = jp.Command
		warnings = len(rep.Warnings)
		salvaged = rep.Truncated || warnings > 0
		nranks = len(jp.Ranks)
	}

	job := &Job{
		ID:       id,
		Tags:     normTags(tags),
		Command:  command,
		Salvaged: salvaged,
		Warnings: warnings,
		Ranks:    nranks,
		Bytes:    len(xml),
		prof:     jp,
		rollup:   ro,
	}
	if jp == nil {
		// Streaming path: keep the raw bytes for the lazy DOM parse.
		job.raw = append([]byte(nil), xml...)
	}

	// WAL before store: a record that made it to the log is the ingest;
	// the in-memory insert is recoverable from it but not vice versa.
	if logIt && s.wal != nil {
		rec, fastOK := appendWALRecord(sc.walBuf[:0], id, job.Tags, xml)
		sc.walBuf = rec[:0] // keep the grown buffer for the next ingest
		if !fastOK {
			m, err := json.Marshal(walRecord{ID: id, Tags: job.Tags, XML: string(xml)})
			if err != nil {
				return nil, fmt.Errorf("profstore: encoding WAL record: %w", err)
			}
			rec = append(m, '\n')
		}
		s.walMu.Lock()
		_, werr := s.wal.Write(rec)
		s.walMu.Unlock()
		if werr != nil {
			return nil, fmt.Errorf("profstore: appending WAL: %w", werr)
		}
	}

	sh := s.shardFor(id)
	sh.mu.Lock()
	prev, existed := sh.jobs[id]
	sh.jobs[id] = job
	sh.mu.Unlock()
	// Invalidate cached aggregates only after the job is visible, so a
	// cache miss that follows this bump always sees the new corpus.
	s.epoch.Add(1)

	s.ingests.Add(1)
	s.bytesIn.Add(int64(len(xml)))
	if job.Salvaged {
		s.salvaged.Add(1)
	}
	if existed {
		s.replaced.Add(1)
		s.ranks.Add(int64(job.Ranks - prev.Ranks))
	} else {
		s.jobs.Add(1)
		s.ranks.Add(int64(job.Ranks))
	}
	return job, nil
}

// Get returns the job with the given id, or nil.
func (s *Store) Get(id string) *Job {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.jobs[id]
}

// Len returns the corpus size.
func (s *Store) Len() int { return int(s.jobs.Load()) }

// RankCount returns the total rank snapshots held.
func (s *Store) RankCount() int { return int(s.ranks.Load()) }

// Ingests, Salvaged, Replaced and IngestedBytes expose the ingest
// counters for metrics.
func (s *Store) Ingests() int64       { return s.ingests.Load() }
func (s *Store) Salvaged() int64      { return s.salvaged.Load() }
func (s *Store) Replaced() int64      { return s.replaced.Load() }
func (s *Store) IngestedBytes() int64 { return s.bytesIn.Load() }

// Select resolves a job selector to the matching jobs, sorted by id —
// the deterministic iteration order every aggregate is computed in.
// Selectors:
//
//	""          every job
//	"tag:T"     jobs carrying tag T
//	"cmd:C"     jobs whose command is C
//	anything    the single job with that id (empty result if absent)
func (s *Store) Select(sel string) []*Job {
	var match func(*Job) bool
	switch {
	case sel == "":
		match = func(*Job) bool { return true }
	case strings.HasPrefix(sel, "tag:"):
		want := strings.TrimPrefix(sel, "tag:")
		match = func(j *Job) bool {
			for _, t := range j.Tags {
				if t == want {
					return true
				}
			}
			return false
		}
	case strings.HasPrefix(sel, "cmd:"):
		want := strings.TrimPrefix(sel, "cmd:")
		match = func(j *Job) bool { return j.Command == want }
	default:
		if j := s.Get(sel); j != nil {
			return []*Job{j}
		}
		return nil
	}
	var out []*Job
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, j := range sh.jobs {
			if match(j) {
				out = append(out, j)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// List returns every job's metadata, sorted by id.
func (s *Store) List() []*Job { return s.Select("") }
