// Package profstore is the center-wide profile store: the ingestion and
// query layer that turns single-job IPM profiles into workload-level
// views (paper Section II — IPM is deployed on every job at NERSC, and
// the value comes from aggregating thousands of XML logs).
//
// The store is sharded for concurrent ingest (per-shard RWMutex keyed by
// job id hash) and durable via a checksummed write-ahead log: a
// restarted server loads the newest snapshot, replays the WAL and
// recovers its exact corpus, and because every query output is
// deterministically ordered, the recovered store answers /agg and
// /regress byte-identically to the pre-restart one. Torn or corrupt
// records are detected by the frame CRC, skipped and counted; a WAL
// write or fsync failure degrades the store to an observable read-only
// mode instead of crashing or acking data that never reached disk (see
// DESIGN.md "Durability & recovery").
//
// Profiles enter through the tolerant parser (internal/ipmparse
// semantics): a truncated or corrupt log from a crashed job is salvaged
// rather than rejected, and the concessions made are counted and
// surfaced per job and in the Prometheus metrics.
package profstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipmgo/internal/ipm"
)

// numShards is the number of lock shards. A power of two so the shard
// index is a mask of the id hash; 16 comfortably exceeds the core counts
// the ingest benchmarks run on.
const numShards = 16

// Store lifecycle errors. Both are sentinel-wrapped so callers (the
// HTTP layer, the soak harness) can map them with errors.Is.
var (
	// ErrClosed is returned by Ingest and Snapshot after Close.
	ErrClosed = errors.New("profstore: store is closed")
	// ErrReadOnly is returned once a WAL append or fsync has failed:
	// the corpus stays queryable, but nothing further is acknowledged.
	ErrReadOnly = errors.New("profstore: store is read-only")
)

// WriteSyncer is the append surface of the WAL: writes plus fsync.
// *os.File satisfies it, and so does faultsim.FaultyWriter — the
// disk-fault injection seam plugs in through StoreOptions.WrapWAL
// without either package importing the other's interface.
type WriteSyncer interface {
	io.Writer
	Sync() error
}

// Job is one ingested profile with its store metadata.
type Job struct {
	ID       string   // deterministic: caller-supplied or content hash
	Tags     []string // sorted, deduplicated
	Command  string   // from the profile header
	Salvaged bool     // tolerant parse made concessions
	Warnings int      // number of parse warnings recorded
	Ranks    int      // rank snapshots recovered
	Bytes    int      // size of the ingested XML document

	// The streaming ingest path never builds the JobProfile DOM; it
	// retains the raw document instead and Profile() parses it lazily on
	// first use (the /jobs and /job/{id} detail paths). The fallback
	// DOM-parse path pre-sets prof and retains nothing.
	raw      []byte
	profOnce sync.Once
	prof     *ipm.JobProfile

	// rollup is the per-job pre-aggregation, computed once at ingest and
	// immutable afterwards (see rollup.go).
	rollup *rollup
}

// Profile returns the job's full DOM profile, parsing the retained
// document on first use. Safe for concurrent callers; the parse runs at
// most once per job.
func (j *Job) Profile() *ipm.JobProfile {
	j.profOnce.Do(func() {
		if j.prof != nil {
			return
		}
		jp, _, err := ipm.ParseXMLTolerant(bytes.NewReader(j.raw))
		if err != nil {
			// Unreachable for documents the streaming scanner accepted
			// (it found the ipm_log root); keep a usable zero profile
			// rather than a nil deref if that invariant ever breaks.
			jp = ipm.NewJobProfile(j.Command, 0, nil)
		}
		j.prof = jp
		j.raw = nil
	})
	return j.prof
}

// shard is one lock-striped partition of the corpus.
type shard struct {
	mu   sync.RWMutex
	jobs map[string]*Job
}

// Store is the sharded, concurrency-safe profile corpus.
type Store struct {
	shards [numShards]shard

	// lifeMu is the lifecycle lock: every logged ingest holds it shared
	// for the whole WAL-append + shard-insert sequence, while Close and
	// Snapshot hold it exclusive — so closing can never yank the WAL
	// file out from under an in-flight Add (it waits, then later Adds
	// get ErrClosed), and a snapshot sees a frozen corpus/WAL pair.
	lifeMu sync.RWMutex
	closed bool

	// wal guards the append-only log; nil when the store is in-memory
	// only. Appends are serialised independently of the shard locks so
	// ingests into different shards only contend on the file write.
	// walW is the append path — the raw file, or the fault-injection
	// wrapper from StoreOptions.WrapWAL.
	walMu     sync.Mutex
	wal       *os.File
	walW      WriteSyncer
	walPath   string
	syncEvery int // appends per fsync; 1 = fsync every append
	unsynced  int // appends since the last fsync (guarded by walMu)

	// Read-only degradation: a failed WAL append or fsync flips the
	// store read-only rather than crashing or acknowledging data that
	// never became durable. Queries keep working.
	readonly atomic.Bool
	roReason atomic.Value // string

	// Snapshot + compaction state (snapshot.go).
	snapSeq      atomic.Uint64 // seq of the live snapshot (0 = none)
	snapshots    atomic.Int64  // snapshots completed by this process
	snapErrors   atomic.Int64  // background compactions that failed
	walAppends   atomic.Int64  // WAL records since the last snapshot
	walErrors    atomic.Int64  // failed WAL writes/fsyncs/truncates
	compactEvery int
	compacting   atomic.Bool
	onSnapshot   func(SnapshotInfo, error)

	recoveredAtOpen int
	skippedAtOpen   int

	jobs     atomic.Int64 // corpus size (gauge)
	ranks    atomic.Int64 // total rank snapshots held (gauge)
	ingests  atomic.Int64 // successful ingests, including replacements
	salvaged atomic.Int64 // ingests the tolerant parser had to salvage
	replaced atomic.Int64 // ingests that replaced an existing job id
	bytesIn  atomic.Int64 // XML bytes successfully ingested

	// forceDOM disables the streaming scan fast path so tests can drive
	// the ParseXMLTolerant fallback on inputs the scanner would accept
	// and compare the two end to end.
	forceDOM bool

	// epoch advances after every shard insert; the memo cache (memo.go)
	// keys cached /agg and /regress reports by it.
	epoch     atomic.Uint64
	memoMu    sync.Mutex
	memoEpoch uint64
	memo      map[memoKey]any
}

// New returns an in-memory store (no WAL).
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].jobs = make(map[string]*Job)
	}
	return s
}

// StoreOptions configures a durable store opened with OpenStore.
type StoreOptions struct {
	// WrapWAL, when non-nil, wraps the WAL append path — the disk-fault
	// injection seam. faultsim.(*DiskPlan).Wrap satisfies it
	// structurally.
	WrapWAL func(WriteSyncer) WriteSyncer
	// SyncEvery is the fsync cadence in appends. Values <= 1 (including
	// the zero value) fsync every append: an acknowledged ingest is on
	// disk before the response leaves. Larger values trade the tail of
	// durability against machine crashes for append throughput; process
	// kills (SIGKILL) lose nothing either way, the page cache survives.
	SyncEvery int
	// CompactEvery, when > 0, snapshots the corpus and truncates the
	// WAL in the background once that many records have accumulated
	// since the last snapshot, bounding replay cost at restart.
	CompactEvery int
	// OnSnapshot observes completed (or failed) background compactions.
	OnSnapshot func(SnapshotInfo, error)
}

// RecoveryStats describes what Open/OpenStore rebuilt the corpus from.
type RecoveryStats struct {
	Recovered    int    // records re-ingested (snapshot + WAL)
	Skipped      int    // torn, corrupt or unparseable records dropped
	SnapshotSeq  uint64 // snapshot recovery started from (0 = none)
	SnapshotJobs int    // records recovered from that snapshot
	WALRecords   int    // structurally valid records seen in the WAL
}

// Open returns a store backed by the write-ahead log at path, loading
// the newest snapshot and replaying the log first. A torn final record
// (a crash mid-append) is skipped, mirroring how the tolerant parser
// treats a torn XML log; the number of records recovered and skipped is
// returned.
func Open(path string) (s *Store, recovered, skipped int, err error) {
	s, st, err := OpenStore(path, StoreOptions{})
	if err != nil {
		return nil, 0, 0, err
	}
	return s, st.Recovered, st.Skipped, nil
}

// OpenStore opens the durable store at path with explicit durability,
// compaction and fault-injection options.
func OpenStore(path string, opts StoreOptions) (*Store, RecoveryStats, error) {
	s := New()
	s.walPath = path
	s.syncEvery = opts.SyncEvery
	if s.syncEvery < 1 {
		s.syncEvery = 1
	}
	s.compactEvery = opts.CompactEvery
	s.onSnapshot = opts.OnSnapshot
	var st RecoveryStats

	// Newest intact snapshot first: it holds everything the WAL no
	// longer does.
	if seq, snapPath := latestSnapshot(path); snapPath != "" {
		data, err := os.ReadFile(snapPath)
		if err != nil {
			return nil, st, fmt.Errorf("profstore: reading snapshot: %w", err)
		}
		rec, skip, _ := s.replayImage(data)
		st.SnapshotSeq, st.SnapshotJobs = seq, rec
		st.Recovered += rec
		st.Skipped += skip
		s.snapSeq.Store(seq)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, st, fmt.Errorf("profstore: opening WAL: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, st, fmt.Errorf("profstore: reading WAL: %w", err)
	}
	rec, skip, records := s.replayImage(data)
	st.Recovered += rec
	st.Skipped += skip
	st.WALRecords = records
	// io.ReadAll left the offset at EOF — exactly where appends resume.
	s.wal = f
	s.walW = f
	if opts.WrapWAL != nil {
		s.walW = opts.WrapWAL(f)
	}
	// Replayed records count toward the compaction threshold: a server
	// that restarts mid-interval still compacts on schedule.
	s.walAppends.Store(int64(records))
	s.recoveredAtOpen, s.skippedAtOpen = st.Recovered, st.Skipped

	// Boot-stamp the epoch and drop any memoised rollups. After replay
	// the epoch counter equals the record count — the exact value the
	// pre-restart store reached after ingesting the same records — so any
	// (epoch, rollup) pair that crosses the restart boundary (a cluster
	// router validating member epochs, a memo rebuilt from a loaded
	// snapshot) would wrongly validate against the recovered corpus.
	// Mixing wall-clock nanoseconds with a per-process open counter makes
	// every store generation's epoch space disjoint.
	s.epoch.Store(uint64(time.Now().UnixNano())<<8 | bootEpochs.Add(1)&0xff)
	s.invalidateMemo()
	return s, st, nil
}

// bootEpochs distinguishes stores opened by the same process within one
// clock tick (see the boot-stamp in OpenStore).
var bootEpochs atomic.Uint64

// invalidateMemo unconditionally drops every cached /agg and /regress
// report. The next query recomputes from the live corpus.
func (s *Store) invalidateMemo() {
	s.memoMu.Lock()
	s.memoEpoch = 0
	s.memo = nil
	s.memoMu.Unlock()
}

// Epoch returns the store's current corpus epoch: it changes after every
// insert and never repeats across restarts or reopens.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Close flushes and releases the WAL file, if any. Concurrent ingests
// in flight finish first; later ones return ErrClosed. Idempotent.
func (s *Store) Close() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	var err error
	if !s.readonly.Load() {
		err = s.walW.Sync()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	s.walW = nil
	return err
}

// setReadOnly degrades the store after a WAL failure; the first reason
// wins.
func (s *Store) setReadOnly(reason string) {
	if s.readonly.CompareAndSwap(false, true) {
		s.roReason.Store(reason)
	}
}

func (s *Store) readOnlyErr() error {
	if reason, _ := s.roReason.Load().(string); reason != "" {
		return fmt.Errorf("%w (%s)", ErrReadOnly, reason)
	}
	return ErrReadOnly
}

// ReadOnly reports whether the store has degraded to read-only mode,
// and the triggering failure.
func (s *Store) ReadOnly() (bool, string) {
	if !s.readonly.Load() {
		return false, ""
	}
	reason, _ := s.roReason.Load().(string)
	return true, reason
}

// walRecord is one record of the write-ahead log (the JSON payload of a
// frame, or one line of the legacy JSONL format). The raw XML is the
// durable form: replay re-ingests it through the same tolerant parse, so
// a recovered store is bit-for-bit the store that wrote the log.
type walRecord struct {
	ID   string   `json:"id"`
	Tags []string `json:"tags,omitempty"`
	XML  string   `json:"xml"`
}

// walAppend writes one framed record and applies the fsync policy. Any
// write or sync failure flips the store read-only: the record may be
// torn on disk (replay detects and skips it via the CRC) and nothing
// further gets acknowledged against a log that can no longer hold it.
func (s *Store) walAppend(rec []byte) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if _, err := s.walW.Write(rec); err != nil {
		s.walErrors.Add(1)
		s.setReadOnly(fmt.Sprintf("WAL append failed: %v", err))
		return fmt.Errorf("profstore: appending WAL: %v: %w", err, ErrReadOnly)
	}
	s.unsynced++
	if s.unsynced >= s.syncEvery {
		if err := s.walW.Sync(); err != nil {
			s.walErrors.Add(1)
			s.setReadOnly(fmt.Sprintf("WAL fsync failed: %v", err))
			return fmt.Errorf("profstore: syncing WAL: %v: %w", err, ErrReadOnly)
		}
		s.unsynced = 0
	}
	s.walAppends.Add(1)
	return nil
}

// DeriveID returns the deterministic content-derived job id used when
// the client does not supply one: FNV-1a over the XML bytes. The same
// document always lands under the same id, making ingest idempotent.
func DeriveID(xml []byte) string {
	h := fnv.New64a()
	h.Write(xml)
	return fmt.Sprintf("j%016x", h.Sum64())
}

// normTags sorts, deduplicates and drops empty tags.
func normTags(tags []string) []string {
	out := make([]string, 0, len(tags))
	for _, t := range tags {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return slicesCompact(out)
}

func slicesCompact(in []string) []string {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()&(numShards-1)]
}

// Ingest parses one IPM XML document tolerantly and adds it to the
// corpus (and WAL). An empty id derives one from the content. Returns
// the stored job; the errors are an unrecoverable parse (no ipm_log
// root at all), ErrClosed after Close, and ErrReadOnly once a WAL
// failure has degraded the store.
func (s *Store) Ingest(xml []byte, id string, tags []string) (*Job, error) {
	job, err := s.ingest(xml, id, tags, true)
	if err == nil {
		s.maybeCompact()
	}
	return job, err
}

// maybeCompact triggers one background snapshot when the WAL has grown
// past the compaction threshold. At most one snapshot runs at a time;
// failures are counted and surfaced through OnSnapshot, never fatal to
// the triggering ingest.
func (s *Store) maybeCompact() {
	if s.compactEvery <= 0 || s.walAppends.Load() < int64(s.compactEvery) {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		info, err := s.Snapshot()
		if err != nil {
			s.snapErrors.Add(1)
		}
		if s.onSnapshot != nil {
			s.onSnapshot(info, err)
		}
	}()
}

// ingest is the one-pass streaming write path: a prescan settles the
// content-hash id and whether the zero-copy scanner applies, then a
// single scan over the bytes produces the rollup, the job metadata and
// (via the pooled buffer) the WAL record. Documents off the scanner's
// fast-path grammar — non-ASCII, entities, truncation, decoder
// oddities — take the original ParseXMLTolerant + computeRollup route,
// which is the semantic reference the scanner must agree with
// (FuzzScanVsParse enforces exactly that).
func (s *Store) ingest(xml []byte, id string, tags []string, logIt bool) (*Job, error) {
	if logIt {
		// Shared lifecycle lock for the WAL-append + insert sequence;
		// replay (logIt=false) runs single-threaded inside OpenStore.
		s.lifeMu.RLock()
		defer s.lifeMu.RUnlock()
		if s.closed {
			return nil, ErrClosed
		}
		if s.readonly.Load() {
			return nil, s.readOnlyErr()
		}
	}

	sc := scratchPool.Get().(*ingestScratch)
	defer scratchPool.Put(sc)

	var clean bool
	if id == "" {
		var hash uint64
		hash, clean = prescanHash(xml)
		id = formatID(hash) // == DeriveID(xml)
	} else {
		clean = prescanClean(xml)
	}
	if s.forceDOM {
		clean = false
	}

	var (
		ro       *rollup
		jp       *ipm.JobProfile
		command  string
		salvaged bool
		warnings int
		nranks   int
	)
	if clean {
		sc.sink.reset()
		resetReport(&sc.rep)
		if ok, serr := ipm.ScanXMLTolerant(xml, sc.sink, &sc.rep); ok {
			if serr != nil {
				return nil, fmt.Errorf("profstore: ingest: %w", serr)
			}
			ro = sc.sink.build(id)
			command = sc.sink.command
			warnings = len(sc.rep.Warnings)
			salvaged = sc.rep.Truncated || warnings > 0
			nranks = sc.sink.tasks
		}
	}
	if ro == nil {
		var rep *ipm.ParseReport
		var err error
		jp, rep, err = ipm.ParseXMLTolerant(bytes.NewReader(xml))
		if err != nil {
			return nil, fmt.Errorf("profstore: ingest: %w", err)
		}
		ro = computeRollup(jp, id)
		command = jp.Command
		warnings = len(rep.Warnings)
		salvaged = rep.Truncated || warnings > 0
		nranks = len(jp.Ranks)
	}

	job := &Job{
		ID:       id,
		Tags:     normTags(tags),
		Command:  command,
		Salvaged: salvaged,
		Warnings: warnings,
		Ranks:    nranks,
		Bytes:    len(xml),
		prof:     jp,
		rollup:   ro,
	}
	if jp == nil {
		// Streaming path: keep the raw bytes for the lazy DOM parse.
		job.raw = append([]byte(nil), xml...)
	}

	// WAL before store: a record that made it to the log is the ingest;
	// the in-memory insert is recoverable from it but not vice versa.
	if logIt && s.wal != nil {
		var hdr [walHeaderSize]byte
		buf := append(sc.walBuf[:0], hdr[:]...)
		buf, fastOK := appendWALRecord(buf, id, job.Tags, xml)
		sc.walBuf = buf[:0] // keep the grown buffer for the next ingest
		var rec []byte
		if fastOK {
			rec = finishFrame(buf)
			sc.walBuf = rec[:0]
		} else {
			m, err := json.Marshal(walRecord{ID: id, Tags: job.Tags, XML: string(xml)})
			if err != nil {
				return nil, fmt.Errorf("profstore: encoding WAL record: %w", err)
			}
			rec = appendFrame(nil, m)
		}
		if err := s.walAppend(rec); err != nil {
			return nil, err
		}
	}

	sh := s.shardFor(id)
	sh.mu.Lock()
	prev, existed := sh.jobs[id]
	sh.jobs[id] = job
	sh.mu.Unlock()
	// Invalidate cached aggregates only after the job is visible, so a
	// cache miss that follows this bump always sees the new corpus.
	s.epoch.Add(1)

	s.ingests.Add(1)
	s.bytesIn.Add(int64(len(xml)))
	if job.Salvaged {
		s.salvaged.Add(1)
	}
	if existed {
		s.replaced.Add(1)
		s.ranks.Add(int64(job.Ranks - prev.Ranks))
	} else {
		s.jobs.Add(1)
		s.ranks.Add(int64(job.Ranks))
	}
	return job, nil
}

// Get returns the job with the given id, or nil.
func (s *Store) Get(id string) *Job {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.jobs[id]
}

// Len returns the corpus size.
func (s *Store) Len() int { return int(s.jobs.Load()) }

// RankCount returns the total rank snapshots held.
func (s *Store) RankCount() int { return int(s.ranks.Load()) }

// Ingests, Salvaged, Replaced and IngestedBytes expose the ingest
// counters for metrics.
func (s *Store) Ingests() int64       { return s.ingests.Load() }
func (s *Store) Salvaged() int64      { return s.salvaged.Load() }
func (s *Store) Replaced() int64      { return s.replaced.Load() }
func (s *Store) IngestedBytes() int64 { return s.bytesIn.Load() }

// Durability counters for metrics and the soak harness.
func (s *Store) WALErrors() int64      { return s.walErrors.Load() }
func (s *Store) Snapshots() int64      { return s.snapshots.Load() }
func (s *Store) SnapshotErrors() int64 { return s.snapErrors.Load() }
func (s *Store) SnapshotSeq() uint64   { return s.snapSeq.Load() }

// PendingWALRecords is the number of WAL records a restart would replay
// (records appended or replayed since the last snapshot).
func (s *Store) PendingWALRecords() int64 { return s.walAppends.Load() }

// RecoveryCounts reports what Open rebuilt this store from.
func (s *Store) RecoveryCounts() (recovered, skipped int) {
	return s.recoveredAtOpen, s.skippedAtOpen
}

// matcherFor compiles a job selector (see Select) into a predicate.
// Shared by Store.Select and the router-side FilterJobs so cluster
// scatter-gather filters jobs exactly the way a single node would.
func matcherFor(sel string) func(*Job) bool {
	switch {
	case sel == "":
		return func(*Job) bool { return true }
	case strings.HasPrefix(sel, "tag:"):
		want := strings.TrimPrefix(sel, "tag:")
		return func(j *Job) bool {
			for _, t := range j.Tags {
				if t == want {
					return true
				}
			}
			return false
		}
	case strings.HasPrefix(sel, "cmd:"):
		want := strings.TrimPrefix(sel, "cmd:")
		return func(j *Job) bool { return j.Command == want }
	default:
		return func(j *Job) bool { return j.ID == sel }
	}
}

// Select resolves a job selector to the matching jobs, sorted by id —
// the deterministic iteration order every aggregate is computed in.
// Selectors:
//
//	""          every job
//	"tag:T"     jobs carrying tag T
//	"cmd:C"     jobs whose command is C
//	anything    the single job with that id (empty result if absent)
func (s *Store) Select(sel string) []*Job {
	if sel != "" && !strings.HasPrefix(sel, "tag:") && !strings.HasPrefix(sel, "cmd:") {
		// Single-id selector: direct shard lookup instead of a scan.
		if j := s.Get(sel); j != nil {
			return []*Job{j}
		}
		return nil
	}
	match := matcherFor(sel)
	var out []*Job
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, j := range sh.jobs {
			if match(j) {
				out = append(out, j)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// List returns every job's metadata, sorted by id.
func (s *Store) List() []*Job { return s.Select("") }
