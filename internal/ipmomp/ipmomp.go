// Package ipmomp is IPM's OpenMP monitoring layer: it wraps ompsim
// parallel regions, recording each region's wallclock under
// @OMP_PARALLEL:<name> and the team's barrier wait under @OMP_IDLE — the
// pseudo-entry convention of IPM's OpenMP support, alongside the CUDA
// pseudo-entries of Section III.
package ipmomp

import (
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ompsim"
)

// Pseudo-entry names.
const (
	IdleName = "@OMP_IDLE"
)

// RegionName returns the pseudo-entry for a named parallel region.
func RegionName(name string) string { return "@OMP_PARALLEL:" + name }

// Monitor wraps parallel-region execution with IPM accounting for one
// rank.
type Monitor struct {
	mon *ipm.Monitor
}

// Wrap creates the OpenMP monitoring layer over a rank's monitor.
func Wrap(mon *ipm.Monitor) *Monitor { return &Monitor{mon: mon} }

// Parallel runs a named, monitored parallel region.
func (m *Monitor) Parallel(master *des.Proc, name string, nthreads int, body func(tid int, p *des.Proc)) (ompsim.RegionStats, error) {
	stats, err := ompsim.Parallel(master, nthreads, body)
	if err != nil {
		return stats, err
	}
	m.record(name, stats)
	return stats, nil
}

// For runs a named, monitored statically scheduled parallel loop.
func (m *Monitor) For(master *des.Proc, name string, nthreads, n int, iterCost func(i int) time.Duration) (ompsim.RegionStats, error) {
	stats, err := ompsim.For(master, nthreads, n, iterCost)
	if err != nil {
		return stats, err
	}
	m.record(name, stats)
	return stats, nil
}

func (m *Monitor) record(name string, stats ompsim.RegionStats) {
	m.mon.Observe(RegionName(name), int64(len(stats.ThreadBusy)), stats.Elapsed)
	var idle time.Duration
	for _, d := range stats.ThreadIdle {
		idle += d
	}
	if idle > 0 {
		m.mon.ObserveN(IdleName, 0, ipm.Stats{
			Count: int64(len(stats.ThreadIdle)),
			Total: idle,
			Min:   minOf(stats.ThreadIdle),
			Max:   maxOf(stats.ThreadIdle),
		})
	}
}

func minOf(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds {
		if d < m {
			m = d
		}
	}
	return m
}

func maxOf(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
