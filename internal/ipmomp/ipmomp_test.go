package ipmomp

import (
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/ipm"
)

func run(t *testing.T, fn func(p *des.Proc, m *Monitor)) *ipm.Monitor {
	t.Helper()
	e := des.NewEngine()
	var mon *ipm.Monitor
	e.Spawn("rank0", func(p *des.Proc) {
		mon = ipm.NewMonitor(0, "h", "app", p.Now, 0)
		mon.Start()
		fn(p, Wrap(mon))
		mon.Stop()
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return mon
}

func stat(mon *ipm.Monitor, name string) ipm.Stats {
	var s ipm.Stats
	for _, e := range mon.Table().Entries() {
		if e.Sig.Name == name {
			s.Merge(e.Stats)
		}
	}
	return s
}

func TestMonitoredParallelRegion(t *testing.T) {
	mon := run(t, func(p *des.Proc, m *Monitor) {
		_, err := m.Parallel(p, "forces", 4, func(tid int, tp *des.Proc) {
			tp.Sleep(time.Duration(tid+1) * 10 * time.Millisecond)
		})
		if err != nil {
			t.Error(err)
		}
	})
	region := stat(mon, RegionName("forces"))
	if region.Count != 1 || region.Total != 40*time.Millisecond {
		t.Errorf("region = %+v", region)
	}
	// Idle: (30+20+10+0) = 60ms across the team.
	idle := stat(mon, IdleName)
	if idle.Total != 60*time.Millisecond || idle.Count != 4 {
		t.Errorf("idle = %+v", idle)
	}
	if idle.Max != 30*time.Millisecond {
		t.Errorf("idle max = %v", idle.Max)
	}
	// Pseudo-entries classified correctly.
	if ipm.Classify(RegionName("forces")) != ipm.DomainPseudo {
		t.Error("region entry not pseudo")
	}
}

func TestBalancedRegionNoIdle(t *testing.T) {
	mon := run(t, func(p *des.Proc, m *Monitor) {
		if _, err := m.For(p, "update", 4, 64, func(i int) time.Duration {
			return time.Millisecond
		}); err != nil {
			t.Error(err)
		}
	})
	if idle := stat(mon, IdleName); idle.Count != 0 {
		t.Errorf("balanced loop recorded idle: %+v", idle)
	}
	if region := stat(mon, RegionName("update")); region.Total != 16*time.Millisecond {
		t.Errorf("region = %+v", region)
	}
}

func TestMultipleRegionsAccumulate(t *testing.T) {
	mon := run(t, func(p *des.Proc, m *Monitor) {
		for i := 0; i < 3; i++ {
			m.Parallel(p, "step", 2, func(tid int, tp *des.Proc) {
				tp.Sleep(5 * time.Millisecond)
			})
		}
	})
	if region := stat(mon, RegionName("step")); region.Count != 3 || region.Total != 15*time.Millisecond {
		t.Errorf("region = %+v", region)
	}
}
