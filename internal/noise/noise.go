// Package noise models run-to-run variability (OS jitter, daemons, stray
// processes — the paper's point (6) of factors beyond the developer's
// control). Workload models perturb their host-compute segments through a
// Model so that ensemble experiments such as the paper's Fig. 8 histogram
// show natural variability that monitoring dilation must stay below.
//
// All noise is generated from an explicit seed, keeping every simulation
// reproducible.
package noise

import (
	"math/rand"
	"time"
)

// Model generates multiplicative jitter around nominal durations.
type Model struct {
	rng *rand.Rand
	amp float64
}

// New creates a noise model with the given seed and relative amplitude
// (e.g. 0.005 for ~0.5% jitter). Amplitude <= 0 yields a no-op model.
func New(seed int64, amplitude float64) *Model {
	return &Model{rng: rand.New(rand.NewSource(seed)), amp: amplitude}
}

// Perturb returns d scaled by a factor drawn from N(1, amp), truncated to
// [0.5, 2] so pathological draws cannot make time negative or explode.
func (m *Model) Perturb(d time.Duration) time.Duration {
	if m == nil || m.amp <= 0 || d <= 0 {
		return d
	}
	f := 1 + m.rng.NormFloat64()*m.amp
	if f < 0.5 {
		f = 0.5
	}
	if f > 2 {
		f = 2
	}
	return time.Duration(float64(d) * f)
}

// Uniform returns a uniformly distributed duration in [0, max), for
// modelling staggered arrivals and irregular load imbalance.
func (m *Model) Uniform(max time.Duration) time.Duration {
	if m == nil || max <= 0 {
		return 0
	}
	return time.Duration(m.rng.Int63n(int64(max)))
}

// Factor returns a deterministic per-call multiplicative factor drawn from
// N(1, amp) with the same truncation as Perturb.
func (m *Model) Factor() float64 {
	if m == nil || m.amp <= 0 {
		return 1
	}
	f := 1 + m.rng.NormFloat64()*m.amp
	if f < 0.5 {
		f = 0.5
	}
	if f > 2 {
		f = 2
	}
	return f
}
