package noise

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDeterministicForSeed(t *testing.T) {
	a, b := New(42, 0.01), New(42, 0.01)
	for i := 0; i < 100; i++ {
		if a.Perturb(time.Second) != b.Perturb(time.Second) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZeroAmplitudeIsIdentity(t *testing.T) {
	m := New(1, 0)
	if m.Perturb(3*time.Second) != 3*time.Second {
		t.Error("zero-amp model perturbed")
	}
	if m.Factor() != 1 {
		t.Error("zero-amp factor != 1")
	}
}

func TestNilModelSafe(t *testing.T) {
	var m *Model
	if m.Perturb(time.Second) != time.Second {
		t.Error("nil model perturbed")
	}
	if m.Uniform(time.Second) != 0 {
		t.Error("nil model uniform != 0")
	}
	if m.Factor() != 1 {
		t.Error("nil model factor != 1")
	}
}

func TestPerturbBounded(t *testing.T) {
	m := New(7, 0.5) // huge amplitude to hit truncation
	for i := 0; i < 1000; i++ {
		d := m.Perturb(time.Second)
		if d < 500*time.Millisecond || d > 2*time.Second {
			t.Fatalf("perturbed %v outside [0.5s, 2s]", d)
		}
	}
}

func TestPerturbMeanNearNominal(t *testing.T) {
	m := New(3, 0.005)
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		sum += m.Perturb(time.Second)
	}
	mean := sum / n
	if mean < 990*time.Millisecond || mean > 1010*time.Millisecond {
		t.Errorf("mean = %v, want ~1s", mean)
	}
}

func TestUniformInRange(t *testing.T) {
	m := New(5, 0.01)
	prop := func(ms uint16) bool {
		max := time.Duration(ms+1) * time.Millisecond
		d := m.Uniform(max)
		return d >= 0 && d < max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if m.Uniform(0) != 0 {
		t.Error("Uniform(0) != 0")
	}
}
