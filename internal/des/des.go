// Package des implements a deterministic discrete-event simulation engine
// with virtual time and cooperatively scheduled processes.
//
// The engine owns a monotone virtual clock and a priority queue of events.
// Simulated actors (MPI ranks, host threads) run as processes: goroutines
// that the engine schedules cooperatively so that exactly one process
// executes at any moment. This gives race-free, fully deterministic
// simulations whose outcome depends only on the event timestamps (with
// FIFO sequence numbers breaking ties), never on wall-clock timing.
//
// All timestamps are time.Duration offsets from the start of the run.
//
// Event storage is allocation-free in steady state: event payloads live in
// an engine-owned slot pool recycled through a free list, the priority
// queue is a 4-ary implicit heap over a flat slice of (at, seq, slot)
// entries, and cancelled events are dropped lazily when they surface at
// the root. Because every entry carries a unique sequence number, the
// (at, seq) order is total and the pop order is independent of the heap's
// internal layout — the rewrite is byte-for-byte compatible with the
// container/heap engine it replaced.
package des

import (
	"fmt"
	"sort"
	"time"
)

// Engine is a discrete-event simulation kernel. The zero value is not
// usable; create engines with NewEngine.
//
// An Engine is not safe for concurrent use from multiple goroutines.
// Processes spawned on the engine may freely use the engine because the
// engine guarantees only one of them runs at a time.
type Engine struct {
	now     time.Duration
	seq     uint64
	heap    []heapEnt
	slots   []slot
	free    []int32 // free slot indexes, LIFO
	pending int     // live (scheduled, uncancelled, unfired) events
	yield   chan struct{}
	live    int // processes that have been spawned and not yet finished
	nextID  int
	err     error // first process panic, sticky

	procs []*Proc // every spawned process, for deadlock reports
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Runner is an event payload dispatched without a closure: scheduling a
// Runner stores only the interface pair in the event slot, so callers that
// already own a heap object (a GPU op, a request) can be completed with
// zero per-event allocations.
type Runner interface{ Run() }

// slotKind discriminates the payload stored in an event slot. Dedicated
// kinds for the hot paths (process resume, signal fire, Runner) avoid the
// closure allocation a func()-only design would force on every Sleep,
// Wait wake-up and async completion.
type slotKind uint8

const (
	slotFree slotKind = iota
	slotFn
	slotStep // resume slot.proc
	slotFire // fire slot.sig
	slotRun  // run slot.run
)

// slot holds one scheduled event's payload. Slots are recycled through the
// engine free list; gen increments on every free so stale Event handles
// (and stale heap entries for cancelled events) can be recognised.
type slot struct {
	fn   func()
	proc *Proc
	sig  *Signal
	run  Runner
	gen  uint32
	kind slotKind
}

// heapEnt is one priority-queue entry: the ordering key inline (no pointer
// chase, no interface boxing) plus the slot it resolves to. gen snapshots
// the slot generation at schedule time; a mismatch at pop time means the
// event was cancelled and the entry is dropped.
type heapEnt struct {
	at   time.Duration
	seq  uint64
	slot int32
	gen  uint32
}

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires. The zero Event is inert: Cancel on it is a no-op.
type Event struct {
	e    *Engine
	at   time.Duration
	slot int32
	gen  uint32
}

// At returns the virtual time the event is scheduled for.
func (ev Event) At() time.Duration { return ev.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or cancelling twice) is a no-op: the slot generation has moved on
// and the handle no longer matches.
func (ev Event) Cancel() {
	e := ev.e
	if e == nil {
		return
	}
	s := &e.slots[ev.slot]
	if s.gen != ev.gen || s.kind == slotFree {
		return
	}
	e.freeSlot(ev.slot)
	e.pending--
	// The heap entry stays put; run drops it lazily when it reaches the
	// root and its generation no longer matches.
}

// allocSlot returns a free slot index, growing the pool only when the free
// list is empty.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		i := e.free[n-1]
		e.free = e.free[:n-1]
		return i
	}
	e.slots = append(e.slots, slot{})
	return int32(len(e.slots) - 1)
}

// freeSlot recycles a slot: clear payload references (so fired events do
// not retain closures or processes), bump the generation, push on the free
// list.
func (e *Engine) freeSlot(i int32) {
	s := &e.slots[i]
	s.fn = nil
	s.proc = nil
	s.sig = nil
	s.run = nil
	s.kind = slotFree
	s.gen++
	e.free = append(e.free, i)
}

// push enqueues slot i at time at with the next sequence number.
func (e *Engine) push(at time.Duration, i int32) {
	e.heap = append(e.heap, heapEnt{at: at, seq: e.seq, slot: i, gen: e.slots[i].gen})
	e.seq++
	e.pending++
	e.siftUp(len(e.heap) - 1)
}

// Schedule registers fn to run at virtual time at. Times before the current
// clock are clamped to the current clock (the event runs "immediately",
// after already-queued events with the same timestamp).
func (e *Engine) Schedule(at time.Duration, fn func()) Event {
	if at < e.now {
		at = e.now
	}
	i := e.allocSlot()
	s := &e.slots[i]
	s.kind = slotFn
	s.fn = fn
	e.push(at, i)
	return Event{e: e, at: at, slot: i, gen: s.gen}
}

// ScheduleAfter registers fn to run d from now. Negative d is clamped to 0.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) Event {
	return e.Schedule(e.now+d, fn)
}

// ScheduleRunner registers r.Run to run at virtual time at, storing only
// the interface pair — no closure allocation.
func (e *Engine) ScheduleRunner(at time.Duration, r Runner) Event {
	if at < e.now {
		at = e.now
	}
	i := e.allocSlot()
	s := &e.slots[i]
	s.kind = slotRun
	s.run = r
	e.push(at, i)
	return Event{e: e, at: at, slot: i, gen: s.gen}
}

// scheduleStep enqueues a process resume — the Sleep/Fire/Spawn/Kill hot
// path, allocation-free.
func (e *Engine) scheduleStep(at time.Duration, p *Proc) {
	if at < e.now {
		at = e.now
	}
	i := e.allocSlot()
	e.slots[i].kind = slotStep
	e.slots[i].proc = p
	e.push(at, i)
}

// scheduleFire enqueues a signal fire (FireAt), allocation-free.
func (e *Engine) scheduleFire(at time.Duration, sig *Signal) {
	if at < e.now {
		at = e.now
	}
	i := e.allocSlot()
	e.slots[i].kind = slotFire
	e.slots[i].sig = sig
	e.push(at, i)
}

// DeadlockError is returned by Run when no events remain but processes are
// still blocked.
type DeadlockError struct {
	Now     time.Duration
	Blocked []string // "name: reason" per blocked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at %v: %d process(es) blocked: %v", d.Now, len(d.Blocked), d.Blocked)
}

// HorizonError is returned by RunFor when the horizon is reached with work
// still pending.
type HorizonError struct {
	Horizon time.Duration
	Pending int
}

func (h *HorizonError) Error() string {
	return fmt.Sprintf("des: horizon %v reached with %d event(s) pending", h.Horizon, h.Pending)
}

// Run executes events until the queue is empty and all processes have
// finished. It returns a *DeadlockError if processes remain blocked with no
// pending events, or the panic value of the first process that panicked.
func (e *Engine) Run() error { return e.run(-1) }

// RunFor executes events like Run but stops with a *HorizonError once the
// clock would exceed horizon. It is a safety net for workloads under test.
func (e *Engine) RunFor(horizon time.Duration) error { return e.run(horizon) }

func (e *Engine) run(horizon time.Duration) error {
	for len(e.heap) > 0 {
		root := e.heap[0]
		s := &e.slots[root.slot]
		if s.gen != root.gen {
			// Cancelled: the slot moved on. Drop the stale entry.
			e.popRoot()
			continue
		}
		if horizon >= 0 && root.at > horizon {
			// Next event is beyond the horizon. Report without popping:
			// the queue is left exactly as it was for inspection.
			return &HorizonError{Horizon: horizon, Pending: e.pending}
		}
		e.popRoot()
		e.now = root.at
		e.pending--
		kind, fn, proc, sig, run := s.kind, s.fn, s.proc, s.sig, s.run
		e.freeSlot(root.slot)
		switch kind {
		case slotFn:
			fn()
		case slotStep:
			e.step(proc)
		case slotFire:
			sig.Fire()
		case slotRun:
			run.Run()
		}
		if e.err != nil {
			return e.err
		}
	}
	if e.live > 0 {
		var blocked []string
		for _, p := range e.procs {
			if !p.done && p.blockKind != blockNone {
				blocked = append(blocked, p.name+": "+p.blockReason())
			}
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return nil
}

// Pending reports the number of queued (uncancelled) events in O(1).
func (e *Engine) Pending() int { return e.pending }

// The priority queue is a 4-ary implicit min-heap ordered by (at, seq).
// 4-ary halves the tree depth of a binary heap, and because siftDown
// scans the four children of one parent — 96 contiguous bytes, at most
// two cache lines — the extra comparisons are cheaper than the extra
// levels they remove. Sequence numbers are unique, so the order is total
// and pop order never depends on the heap's internal layout.

func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entLess(ent, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ent
}

// popRoot removes the minimum entry.
func (e *Engine) popRoot() {
	h := e.heap
	n := len(h) - 1
	ent := h[n]
	e.heap = h[:n]
	if n == 0 {
		return
	}
	h = e.heap
	// Sift the former last element down from the root.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := first
		for c := first + 1; c < last; c++ {
			if entLess(h[c], h[min]) {
				min = c
			}
		}
		if !entLess(h[min], ent) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ent
}
