// Package des implements a deterministic discrete-event simulation engine
// with virtual time and cooperatively scheduled processes.
//
// The engine owns a monotone virtual clock and a priority queue of events.
// Simulated actors (MPI ranks, host threads) run as processes: goroutines
// that the engine schedules cooperatively so that exactly one process
// executes at any moment. This gives race-free, fully deterministic
// simulations whose outcome depends only on the event timestamps (with
// FIFO sequence numbers breaking ties), never on wall-clock timing.
//
// All timestamps are time.Duration offsets from the start of the run.
package des

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Engine is a discrete-event simulation kernel. The zero value is not
// usable; create engines with NewEngine.
//
// An Engine is not safe for concurrent use from multiple goroutines.
// Processes spawned on the engine may freely use the engine because the
// engine guarantees only one of them runs at a time.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventHeap
	yield  chan struct{}
	live   int // processes that have been spawned and not yet finished
	nextID int
	err    error // first process panic, sticky

	blocked map[*Proc]string // blocked process -> reason, for deadlock reports
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		yield:   make(chan struct{}),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Event is a handle to a scheduled callback. It can be cancelled before it
// fires.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
}

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() time.Duration { return ev.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Schedule registers fn to run at virtual time at. Times before the current
// clock are clamped to the current clock (the event runs "immediately",
// after already-queued events with the same timestamp).
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter registers fn to run d from now. Negative d is clamped to 0.
func (e *Engine) ScheduleAfter(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// DeadlockError is returned by Run when no events remain but processes are
// still blocked.
type DeadlockError struct {
	Now     time.Duration
	Blocked []string // "name: reason" per blocked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at %v: %d process(es) blocked: %v", d.Now, len(d.Blocked), d.Blocked)
}

// HorizonError is returned by RunFor when the horizon is reached with work
// still pending.
type HorizonError struct {
	Horizon time.Duration
	Pending int
}

func (h *HorizonError) Error() string {
	return fmt.Sprintf("des: horizon %v reached with %d event(s) pending", h.Horizon, h.Pending)
}

// Run executes events until the queue is empty and all processes have
// finished. It returns a *DeadlockError if processes remain blocked with no
// pending events, or the panic value of the first process that panicked.
func (e *Engine) Run() error { return e.run(-1) }

// RunFor executes events like Run but stops with a *HorizonError once the
// clock would exceed horizon. It is a safety net for workloads under test.
func (e *Engine) RunFor(horizon time.Duration) error { return e.run(horizon) }

func (e *Engine) run(horizon time.Duration) error {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		if ev.cancelled {
			continue
		}
		if horizon >= 0 && ev.at > horizon {
			heap.Push(&e.queue, ev) // put back for inspection
			return &HorizonError{Horizon: horizon, Pending: e.queue.Len()}
		}
		e.now = ev.at
		ev.fn()
		if e.err != nil {
			return e.err
		}
	}
	if e.live > 0 {
		var blocked []string
		for p, reason := range e.blocked {
			blocked = append(blocked, p.name+": "+reason)
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return nil
}

// Pending reports the number of queued (uncancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// eventHeap orders events by (time, sequence number).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
