package des

import "time"

// Signal is a one-shot completion notification in virtual time. It starts
// unfired; Fire marks it fired and wakes every waiting process. Signals are
// the basic building block for modelling asynchronous completions (GPU
// operations, MPI requests).
//
// The common case of a single waiter is stored inline (waiter0), so a
// plain submit/wait round-trip allocates nothing beyond the Signal itself
// — and callers that embed the Signal in a pooled struct (see InitSignal)
// allocate nothing at all.
type Signal struct {
	e       *Engine
	name    string
	fired   bool
	firedAt time.Duration
	waiter0 *Proc
	waiters []*Proc // overflow beyond the first waiter, in wait order
	andThen []func()
}

// NewSignal creates an unfired signal. The name appears in deadlock
// diagnostics.
func (e *Engine) NewSignal(name string) *Signal {
	return &Signal{e: e, name: name}
}

// InitSignal (re)initialises s in place as an unfired signal — for signals
// embedded in recycled structs, avoiding the NewSignal allocation.
func (e *Engine) InitSignal(s *Signal, name string) {
	*s = Signal{e: e, name: name}
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the virtual time the signal fired at. It is only
// meaningful once Fired reports true.
func (s *Signal) FiredAt() time.Duration { return s.firedAt }

// Name returns the diagnostic name.
func (s *Signal) Name() string { return s.name }

// addWaiter appends p in wait order, first waiter inline.
func (s *Signal) addWaiter(p *Proc) {
	if s.waiter0 == nil && len(s.waiters) == 0 {
		s.waiter0 = p
		return
	}
	s.waiters = append(s.waiters, p)
}

// Fire marks the signal fired at the current virtual time and schedules
// every waiter to resume (at the same timestamp, in wait order). Firing an
// already-fired signal is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	s.firedAt = s.e.now
	if s.waiter0 != nil {
		s.e.scheduleStep(s.e.now, s.waiter0)
		s.waiter0 = nil
	}
	for _, p := range s.waiters {
		s.e.scheduleStep(s.e.now, p)
	}
	s.waiters = nil
	for _, fn := range s.andThen {
		fn()
	}
	s.andThen = nil
}

// FireAt schedules the signal to fire at virtual time at.
func (s *Signal) FireAt(at time.Duration) { s.e.scheduleFire(at, s) }

// OnFire registers fn to run when the signal fires (immediately if it has
// already fired). Callbacks run in engine context, before waiters resume.
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		fn()
		return
	}
	s.andThen = append(s.andThen, fn)
}
