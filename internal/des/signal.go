package des

import "time"

// Signal is a one-shot completion notification in virtual time. It starts
// unfired; Fire marks it fired and wakes every waiting process. Signals are
// the basic building block for modelling asynchronous completions (GPU
// operations, MPI requests).
type Signal struct {
	e       *Engine
	name    string
	fired   bool
	firedAt time.Duration
	waiters []*Proc
	andThen []func()
}

// NewSignal creates an unfired signal. The name appears in deadlock
// diagnostics.
func (e *Engine) NewSignal(name string) *Signal {
	return &Signal{e: e, name: name}
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the virtual time the signal fired at. It is only
// meaningful once Fired reports true.
func (s *Signal) FiredAt() time.Duration { return s.firedAt }

// Name returns the diagnostic name.
func (s *Signal) Name() string { return s.name }

// Fire marks the signal fired at the current virtual time and schedules
// every waiter to resume (at the same timestamp, in wait order). Firing an
// already-fired signal is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	s.firedAt = s.e.now
	for _, p := range s.waiters {
		p := p
		s.e.Schedule(s.e.now, func() { s.e.step(p) })
	}
	s.waiters = nil
	for _, fn := range s.andThen {
		fn()
	}
	s.andThen = nil
}

// FireAt schedules the signal to fire at virtual time at.
func (s *Signal) FireAt(at time.Duration) { s.e.Schedule(at, s.Fire) }

// OnFire registers fn to run when the signal fires (immediately if it has
// already fired). Callbacks run in engine context, before waiters resume.
func (s *Signal) OnFire(fn func()) {
	if s.fired {
		fn()
		return
	}
	s.andThen = append(s.andThen, fn)
}
