package des

import (
	"fmt"
	"time"
)

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// engine. At most one process runs at any moment, and it runs only while
// the engine is blocked waiting for it to yield, so processes may use the
// engine and each other's data without locking.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan struct{}
	done   bool

	killed     bool
	killReason string

	// Block-site bookkeeping for deadlock diagnostics. The reason string
	// is only rendered if a deadlock is actually reported, keeping
	// formatting (fmt, string concat) off the Sleep/Wait hot path.
	blockKind uint8
	blockDur  time.Duration
	blockSig  *Signal
}

const (
	blockNone uint8 = iota
	blockSleep
	blockWait
)

// blockReason renders the diagnostic for a blocked process. Cold path:
// called only when building a DeadlockError.
func (p *Proc) blockReason() string {
	switch p.blockKind {
	case blockSleep:
		return fmt.Sprintf("sleeping %v", p.blockDur)
	case blockWait:
		return "waiting on " + p.blockSig.name
	}
	return "blocked"
}

// Killed is the panic value delivered inside a process terminated with
// Kill. The spawner may recover it to implement graceful teardown (a rank
// dying while the rest of the job continues); any other panic value still
// aborts the whole engine.
type Killed struct {
	Reason string
}

func (k Killed) Error() string { return "des: process killed: " + k.Reason }

// Unrecoverable marks the kill signal as something generic recover-and-
// continue guards (e.g. ipm.Monitor.Guard) must re-panic rather than
// swallow: a kill is a control-flow signal, not an internal error.
func (k Killed) Unrecoverable() bool { return true }

// Kill marks the process for termination. Delivery is deterministic: the
// kill is raised as a Killed panic at the process's next scheduling point
// (its current block, or the next Sleep/Wait), via an event at the current
// virtual time, so defers run inside the process goroutine. Killing a
// finished or already-killed process is a no-op.
func (p *Proc) Kill(reason string) {
	if p.done || p.killed {
		return
	}
	p.killed = true
	p.killReason = reason
	p.e.scheduleStep(p.e.now, p)
}

// Spawn creates a process executing fn and schedules it to start at the
// current virtual time. fn receives the process handle; when fn returns the
// process terminates.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, id: e.nextID, name: name, resume: make(chan struct{})}
	e.nextID++
	e.live++
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if p.e.err == nil {
					p.e.err = fmt.Errorf("des: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			p.e.live--
			p.e.yield <- struct{}{}
		}()
		<-p.resume
		fn(p)
	}()
	e.scheduleStep(e.now, p)
	return p
}

// step transfers control to p and waits for it to yield (block or finish).
func (e *Engine) step(p *Proc) {
	if p.done {
		return
	}
	p.blockKind = blockNone
	p.blockSig = nil
	p.resume <- struct{}{}
	<-e.yield
}

// block parks the calling process until the engine resumes it. The caller
// records its block site in p.blockKind/blockDur/blockSig beforehand.
func (p *Proc) block() {
	p.e.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(Killed{Reason: p.killReason})
	}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique id within its engine.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine the process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Sleep advances the process by d of simulated time (e.g. host
// computation). Non-positive d yields without advancing the clock, letting
// other same-timestamp events run first.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.scheduleStep(p.e.now+d, p)
	p.blockKind = blockSleep
	p.blockDur = d
	p.block()
}

// Wait blocks the process until the signal fires. If the signal has
// already fired, Wait returns immediately without consuming virtual time.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	s.addWaiter(p)
	p.blockKind = blockWait
	p.blockSig = s
	p.block()
}

// WaitAll blocks until every signal has fired.
func (p *Proc) WaitAll(sigs ...*Signal) {
	for _, s := range sigs {
		p.Wait(s)
	}
}
