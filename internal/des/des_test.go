package des

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of FIFO order: %v", got)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := NewEngine()
	var at time.Duration = -1
	e.Schedule(time.Second, func() {
		e.Schedule(0, func() { at = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != time.Second {
		t.Errorf("past event ran at %v, want clamped to 1s", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v for cancelled event", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var marks []time.Duration
	e.Spawn("worker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * time.Millisecond)
			marks = append(marks, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestSignalWakesWaiters(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("done")
	var wakeA, wakeB time.Duration
	e.Spawn("a", func(p *Proc) { p.Wait(s); wakeA = p.Now() })
	e.Spawn("b", func(p *Proc) { p.Wait(s); wakeB = p.Now() })
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		s.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeA != 5*time.Millisecond || wakeB != 5*time.Millisecond {
		t.Errorf("wake times = %v, %v; want 5ms", wakeA, wakeB)
	}
}

func TestWaitOnFiredSignalReturnsImmediately(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("pre")
	e.Spawn("p", func(p *Proc) {
		s.Fire()
		before := p.Now()
		p.Wait(s)
		if p.Now() != before {
			t.Errorf("Wait on fired signal advanced clock %v -> %v", before, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFireAt(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("later")
	s.FireAt(42 * time.Millisecond)
	var woke time.Duration
	e.Spawn("p", func(p *Proc) { p.Wait(s); woke = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 42*time.Millisecond {
		t.Errorf("woke at %v, want 42ms", woke)
	}
}

func TestOnFireCallbackOrder(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("cb")
	var order []string
	s.OnFire(func() { order = append(order, "cb") })
	e.Spawn("waiter", func(p *Proc) { p.Wait(s); order = append(order, "waiter") })
	e.Spawn("firer", func(p *Proc) { p.Sleep(time.Millisecond); s.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "cb" || order[1] != "waiter" {
		t.Errorf("order = %v, want [cb waiter]", order)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("never")
	e.Spawn("stuck", func(p *Proc) { p.Wait(s) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 {
		t.Errorf("blocked = %v, want 1 entry", dl.Blocked)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) { panic("boom") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	e.Spawn("looper", func(p *Proc) {
		for {
			p.Sleep(time.Second)
		}
	})
	err := e.RunFor(10 * time.Second)
	var h *HorizonError
	if !errors.As(err, &h) {
		t.Fatalf("err = %v, want HorizonError", err)
	}
	// The blocked process goroutine leaks by design; the engine is dead.
}

func TestWaitAll(t *testing.T) {
	e := NewEngine()
	s1 := e.NewSignal("s1")
	s2 := e.NewSignal("s2")
	s1.FireAt(10 * time.Millisecond)
	s2.FireAt(30 * time.Millisecond)
	var woke time.Duration
	e.Spawn("p", func(p *Proc) { p.WaitAll(s1, s2); woke = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 30*time.Millisecond {
		t.Errorf("woke at %v, want 30ms", woke)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var log []string
		for i := 0; i < 50; i++ {
			i := i
			d := time.Duration(rng.Intn(1000)) * time.Microsecond
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a := run(7)
	b := run(7)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any set of event times, events execute in nondecreasing
// time order and the final clock equals the max event time.
func TestPropEventOrdering(t *testing.T) {
	prop := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		var max time.Duration
		for _, o := range offsets {
			at := time.Duration(o) * time.Microsecond
			if at > max {
				max = at
			}
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		if len(offsets) > 0 && e.Now() != max {
			return false
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sleeping a sequence of durations accumulates exactly.
func TestPropSleepAccumulates(t *testing.T) {
	prop := func(ds []uint16) bool {
		e := NewEngine()
		var total time.Duration
		ok := true
		e.Spawn("p", func(p *Proc) {
			for _, d := range ds {
				dur := time.Duration(d) * time.Nanosecond
				total += dur
				p.Sleep(dur)
				if p.Now() != total {
					ok = false
				}
			}
		})
		return e.Run() == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	ev := e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", e.Pending())
	}
}

func TestCancelStaleHandleAfterReuse(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(time.Second, func() { t.Error("cancelled event ran") })
	stale.Cancel()
	ran := false
	// The freed slot is reused with a bumped generation; the stale handle
	// must not be able to cancel the new occupant.
	fresh := e.Schedule(2*time.Second, func() { ran = true })
	stale.Cancel()
	stale.Cancel() // double-cancel is a no-op too
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("fresh event did not run after stale Cancel")
	}
	// Cancel after fire is also a no-op and must not free a reused slot.
	fresh.Cancel()
	ran2 := false
	e.Schedule(3*time.Second, func() { ran2 = true })
	fresh.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran2 {
		t.Error("event scheduled after run did not fire")
	}
}

func TestZeroEventCancelIsNoop(t *testing.T) {
	var ev Event
	ev.Cancel() // must not panic
}

func TestHorizonLeavesQueueIntact(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, at := range []time.Duration{time.Second, 3 * time.Second, 5 * time.Second} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	err := e.RunFor(2 * time.Second)
	var h *HorizonError
	if !errors.As(err, &h) {
		t.Fatalf("err = %v, want HorizonError", err)
	}
	if h.Pending != 2 {
		t.Errorf("HorizonError.Pending = %d, want 2", h.Pending)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending after horizon = %d, want 2", e.Pending())
	}
	// The horizon hit must not have mutated the queue: a later Run picks
	// up exactly the remaining events, in order.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestPendingAfterFireAndCancel(t *testing.T) {
	e := NewEngine()
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for i := 0; i < 4; i++ {
		evs[i].Cancel()
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending after cancels = %d, want 6", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
}

// Property: interleaved schedules and cancels preserve (at, seq) order of
// the surviving events.
func TestPropCancelPreservesOrder(t *testing.T) {
	prop := func(offsets []uint16, cancelMask []bool) bool {
		e := NewEngine()
		type rec struct {
			at  time.Duration
			idx int
		}
		var want []rec
		var got []int
		for i, o := range offsets {
			i := i
			at := time.Duration(o) * time.Microsecond
			ev := e.Schedule(at, func() { got = append(got, i) })
			if i < len(cancelMask) && cancelMask[i] {
				ev.Cancel()
				continue
			}
			want = append(want, rec{at, i})
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestScheduleFireZeroAllocSteadyState pins the headline property of the
// slot-pool engine: once the pool and heap have grown to working size,
// Schedule + fire allocates nothing.
func TestScheduleFireZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	round := func() {
		base := e.Now()
		for j := 0; j < 256; j++ {
			e.Schedule(base+time.Duration(j)*time.Microsecond, fn)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	round() // grow pool, heap and free list to steady state
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Errorf("schedule+fire steady state = %v allocs/round, want 0", allocs)
	}
}

// TestCancelZeroAllocSteadyState: cancelling recycles through the free
// list without allocating either.
func TestCancelZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	round := func() {
		base := e.Now()
		for j := 0; j < 256; j++ {
			ev := e.Schedule(base+time.Duration(j)*time.Microsecond, fn)
			if j%2 == 1 {
				ev.Cancel()
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	round()
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Errorf("schedule+cancel steady state = %v allocs/round, want 0", allocs)
	}
}

// BenchmarkDESScheduleRun measures the steady-state schedule+fire round
// trip on a warm engine (1000 events per op); allocs/op must stay 0.
func BenchmarkDESScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	run := func() {
		base := e.Now()
		for j := 0; j < 1000; j++ {
			e.Schedule(base+time.Duration(j)*time.Microsecond, fn)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
