package des

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of FIFO order: %v", got)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := NewEngine()
	var at time.Duration = -1
	e.Schedule(time.Second, func() {
		e.Schedule(0, func() { at = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != time.Second {
		t.Errorf("past event ran at %v, want clamped to 1s", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v for cancelled event", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var marks []time.Duration
	e.Spawn("worker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * time.Millisecond)
			marks = append(marks, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestSignalWakesWaiters(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("done")
	var wakeA, wakeB time.Duration
	e.Spawn("a", func(p *Proc) { p.Wait(s); wakeA = p.Now() })
	e.Spawn("b", func(p *Proc) { p.Wait(s); wakeB = p.Now() })
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		s.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeA != 5*time.Millisecond || wakeB != 5*time.Millisecond {
		t.Errorf("wake times = %v, %v; want 5ms", wakeA, wakeB)
	}
}

func TestWaitOnFiredSignalReturnsImmediately(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("pre")
	e.Spawn("p", func(p *Proc) {
		s.Fire()
		before := p.Now()
		p.Wait(s)
		if p.Now() != before {
			t.Errorf("Wait on fired signal advanced clock %v -> %v", before, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFireAt(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("later")
	s.FireAt(42 * time.Millisecond)
	var woke time.Duration
	e.Spawn("p", func(p *Proc) { p.Wait(s); woke = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 42*time.Millisecond {
		t.Errorf("woke at %v, want 42ms", woke)
	}
}

func TestOnFireCallbackOrder(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("cb")
	var order []string
	s.OnFire(func() { order = append(order, "cb") })
	e.Spawn("waiter", func(p *Proc) { p.Wait(s); order = append(order, "waiter") })
	e.Spawn("firer", func(p *Proc) { p.Sleep(time.Millisecond); s.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "cb" || order[1] != "waiter" {
		t.Errorf("order = %v, want [cb waiter]", order)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("never")
	e.Spawn("stuck", func(p *Proc) { p.Wait(s) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 {
		t.Errorf("blocked = %v, want 1 entry", dl.Blocked)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) { panic("boom") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	e.Spawn("looper", func(p *Proc) {
		for {
			p.Sleep(time.Second)
		}
	})
	err := e.RunFor(10 * time.Second)
	var h *HorizonError
	if !errors.As(err, &h) {
		t.Fatalf("err = %v, want HorizonError", err)
	}
	// The blocked process goroutine leaks by design; the engine is dead.
}

func TestWaitAll(t *testing.T) {
	e := NewEngine()
	s1 := e.NewSignal("s1")
	s2 := e.NewSignal("s2")
	s1.FireAt(10 * time.Millisecond)
	s2.FireAt(30 * time.Millisecond)
	var woke time.Duration
	e.Spawn("p", func(p *Proc) { p.WaitAll(s1, s2); woke = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 30*time.Millisecond {
		t.Errorf("woke at %v, want 30ms", woke)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var log []string
		for i := 0; i < 50; i++ {
			i := i
			d := time.Duration(rng.Intn(1000)) * time.Microsecond
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a := run(7)
	b := run(7)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any set of event times, events execute in nondecreasing
// time order and the final clock equals the max event time.
func TestPropEventOrdering(t *testing.T) {
	prop := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		var max time.Duration
		for _, o := range offsets {
			at := time.Duration(o) * time.Microsecond
			if at > max {
				max = at
			}
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		if len(offsets) > 0 && e.Now() != max {
			return false
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sleeping a sequence of durations accumulates exactly.
func TestPropSleepAccumulates(t *testing.T) {
	prop := func(ds []uint16) bool {
		e := NewEngine()
		var total time.Duration
		ok := true
		e.Spawn("p", func(p *Proc) {
			for _, d := range ds {
				dur := time.Duration(d) * time.Nanosecond
				total += dur
				p.Sleep(dur)
				if p.Now() != total {
					ok = false
				}
			}
		})
		return e.Run() == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	ev := e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", e.Pending())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
