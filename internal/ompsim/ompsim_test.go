package ompsim

import (
	"testing"
	"time"

	"ipmgo/internal/des"
)

func run(t *testing.T, fn func(p *des.Proc)) time.Duration {
	t.Helper()
	e := des.NewEngine()
	e.Spawn("rank0", fn)
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func TestParallelForkJoin(t *testing.T) {
	var stats RegionStats
	run(t, func(p *des.Proc) {
		var err error
		stats, err = Parallel(p, 4, func(tid int, tp *des.Proc) {
			tp.Sleep(time.Duration(tid+1) * 10 * time.Millisecond)
		})
		if err != nil {
			t.Error(err)
		}
		// Master resumes only after the slowest thread (40 ms).
		if p.Now() != 40*time.Millisecond {
			t.Errorf("join at %v, want 40ms", p.Now())
		}
	})
	if stats.Elapsed != 40*time.Millisecond {
		t.Errorf("elapsed = %v", stats.Elapsed)
	}
	if stats.ThreadBusy[0] != 10*time.Millisecond || stats.ThreadBusy[3] != 40*time.Millisecond {
		t.Errorf("busy = %v", stats.ThreadBusy)
	}
	if stats.ThreadIdle[0] != 30*time.Millisecond || stats.ThreadIdle[3] != 0 {
		t.Errorf("idle = %v", stats.ThreadIdle)
	}
	// Imbalance: max 40 / avg 25 = 1.6.
	if imb := stats.MaxImbalance(); imb < 1.59 || imb > 1.61 {
		t.Errorf("imbalance = %.3f", imb)
	}
}

func TestThreadsRunConcurrently(t *testing.T) {
	// 4 threads x 10 ms each must take 10 ms, not 40.
	total := run(t, func(p *des.Proc) {
		if _, err := Parallel(p, 4, func(tid int, tp *des.Proc) {
			tp.Sleep(10 * time.Millisecond)
		}); err != nil {
			t.Error(err)
		}
	})
	if total != 10*time.Millisecond {
		t.Errorf("balanced region took %v, want 10ms", total)
	}
}

func TestSingleThreadTeam(t *testing.T) {
	run(t, func(p *des.Proc) {
		stats, err := Parallel(p, 1, func(tid int, tp *des.Proc) {
			if tid != 0 || tp != p {
				t.Error("single-thread region should run on the master")
			}
			tp.Sleep(time.Millisecond)
		})
		if err != nil {
			t.Error(err)
		}
		if stats.Elapsed != time.Millisecond {
			t.Errorf("elapsed = %v", stats.Elapsed)
		}
	})
}

func TestInvalidTeamSize(t *testing.T) {
	run(t, func(p *des.Proc) {
		if _, err := Parallel(p, 0, func(int, *des.Proc) {}); err == nil {
			t.Error("zero-thread team accepted")
		}
	})
}

func TestSharedMemoryVisible(t *testing.T) {
	// Threads write disjoint slots of a shared slice; the master sees all
	// writes after the join.
	run(t, func(p *des.Proc) {
		shared := make([]int, 8)
		if _, err := Parallel(p, 8, func(tid int, tp *des.Proc) {
			tp.Sleep(time.Duration(8-tid) * time.Millisecond)
			shared[tid] = tid * tid
		}); err != nil {
			t.Error(err)
		}
		for i, v := range shared {
			if v != i*i {
				t.Errorf("shared[%d] = %d", i, v)
			}
		}
	})
}

func TestForStaticSchedule(t *testing.T) {
	run(t, func(p *des.Proc) {
		// 100 iterations of 1 ms over 4 threads: 25 ms per thread.
		stats, err := For(p, 4, 100, func(i int) time.Duration { return time.Millisecond })
		if err != nil {
			t.Error(err)
		}
		if stats.Elapsed != 25*time.Millisecond {
			t.Errorf("elapsed = %v, want 25ms", stats.Elapsed)
		}
		if imb := stats.MaxImbalance(); imb != 1 {
			t.Errorf("balanced loop imbalance = %.3f", imb)
		}
	})
}

func TestForUnevenCosts(t *testing.T) {
	run(t, func(p *des.Proc) {
		// Triangular costs: the last chunk dominates under static
		// scheduling.
		stats, err := For(p, 4, 64, func(i int) time.Duration {
			return time.Duration(i) * 100 * time.Microsecond
		})
		if err != nil {
			t.Error(err)
		}
		if imb := stats.MaxImbalance(); imb < 1.5 {
			t.Errorf("triangular loop imbalance = %.3f, want > 1.5", imb)
		}
	})
}
