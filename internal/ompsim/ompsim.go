// Package ompsim simulates OpenMP-style fork/join threading on the
// discrete-event engine: a master process forks a team of worker
// processes for a parallel region and joins them at the implicit barrier.
// IPM's OpenMP monitoring (paper Section II: IPM "has recently been
// extended to cover a number of other domains such as OpenMP") records
// region wallclock and the per-thread idle time at the join barrier;
// internal/ipmomp provides those wrappers.
//
// Threads of one team share the rank's memory (the DES guarantees only
// one process runs at a time, so the body may touch shared data freely)
// and may issue CUDA or I/O calls through the rank's handles.
package ompsim

import (
	"fmt"
	"time"

	"ipmgo/internal/des"
)

// RegionStats describes one executed parallel region.
type RegionStats struct {
	// Elapsed is the region's wallclock (fork to last-thread join).
	Elapsed time.Duration
	// ThreadBusy is each thread's time from region start until it
	// reached the implicit barrier.
	ThreadBusy []time.Duration
	// ThreadIdle is each thread's wait at the implicit barrier
	// (Elapsed - ThreadBusy).
	ThreadIdle []time.Duration
}

// MaxImbalance returns max(busy)/avg(busy), the team's load imbalance.
func (r RegionStats) MaxImbalance() float64 {
	if len(r.ThreadBusy) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, b := range r.ThreadBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	avg := sum / time.Duration(len(r.ThreadBusy))
	if avg == 0 {
		return 0
	}
	return float64(max) / float64(avg)
}

// Parallel runs body on a team of nthreads threads and blocks the master
// until all have reached the implicit barrier, returning the region
// statistics. Thread 0 is the master itself (as in OpenMP); threads
// 1..nthreads-1 are forked processes.
func Parallel(master *des.Proc, nthreads int, body func(tid int, p *des.Proc)) (RegionStats, error) {
	if nthreads < 1 {
		return RegionStats{}, fmt.Errorf("ompsim: team size %d", nthreads)
	}
	eng := master.Engine()
	start := master.Now()
	stats := RegionStats{
		ThreadBusy: make([]time.Duration, nthreads),
		ThreadIdle: make([]time.Duration, nthreads),
	}

	done := make([]*des.Signal, nthreads)
	for tid := 1; tid < nthreads; tid++ {
		tid := tid
		done[tid] = eng.NewSignal("omp-join")
		eng.Spawn(fmt.Sprintf("%s.t%d", master.Name(), tid), func(p *des.Proc) {
			body(tid, p)
			stats.ThreadBusy[tid] = p.Now() - start
			done[tid].Fire()
		})
	}

	// The master executes its own chunk, then waits at the barrier.
	body(0, master)
	stats.ThreadBusy[0] = master.Now() - start
	for tid := 1; tid < nthreads; tid++ {
		master.Wait(done[tid])
	}
	stats.Elapsed = master.Now() - start
	for tid := range stats.ThreadIdle {
		stats.ThreadIdle[tid] = stats.Elapsed - stats.ThreadBusy[tid]
	}
	return stats, nil
}

// For runs a statically scheduled parallel loop: n iterations divided in
// contiguous chunks over nthreads threads, each iteration costing
// iterCost(i) of compute on its thread.
func For(master *des.Proc, nthreads, n int, iterCost func(i int) time.Duration) (RegionStats, error) {
	return Parallel(master, nthreads, func(tid int, p *des.Proc) {
		lo := tid * n / nthreads
		hi := (tid + 1) * n / nthreads
		var total time.Duration
		for i := lo; i < hi; i++ {
			total += iterCost(i)
		}
		p.Sleep(total)
	})
}
