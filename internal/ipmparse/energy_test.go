package ipmparse

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEnergyFixture pins the parser's side of the power model: the
// energy_* attributes round-trip through the tolerant loader with the
// task-attribute-wins fold, and the banner and HTML renderings surface
// the device name and attributed joules.
func TestEnergyFixture(t *testing.T) {
	jp, rep := loadFixture(t, "energy.xml")
	if len(rep.Warnings) != 0 {
		t.Errorf("warnings = %q", rep.Warnings)
	}
	if got := jp.DeviceName(); got != "Tesla C2050" {
		t.Errorf("DeviceName = %q", got)
	}
	// Rank 0 carries a task-level total (76.5 J) that wins over its entry
	// sum (97 J); rank 1 has no task attribute and falls back to the sum
	// of its entry attributes (15.4 + 7.7 + 72.2 J).
	if got := jp.Ranks[0].EnergyJoules(); math.Abs(got-76.5) > 1e-9 {
		t.Errorf("rank 0 energy = %v J, want 76.5", got)
	}
	if got := jp.Ranks[1].EnergyJoules(); math.Abs(got-95.3) > 1e-9 {
		t.Errorf("rank 1 energy = %v J, want 95.3", got)
	}
	if got := jp.TotalEnergyJoules(); math.Abs(got-171.8) > 1e-9 {
		t.Errorf("total energy = %v J, want 171.8", got)
	}

	// The full banner derives its gpu line and energy row from the
	// recorded device, not a baked-in string.
	var banner bytes.Buffer
	if err := WriteBanner(&banner, jp, true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "energy.banner.golden")
	if *update {
		if err := os.WriteFile(golden, banner.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(banner.Bytes(), want) {
		t.Errorf("banner differs from %s:\ngot:\n%s\nwant:\n%s", golden, banner.Bytes(), want)
	}

	// The HTML report grows a device row, a job-wide energy row, and a
	// per-function joules column.
	var html bytes.Buffer
	if err := WriteHTML(&html, jp); err != nil {
		t.Fatal(err)
	}
	// 148.20 is the kernel call site's joules (76 + 72.2 from the two
	// ranks' entry attributes).
	for _, want := range []string{"Tesla C2050", "171.80 J", "energy [J]", "<td>148.20</td>"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}
