package ipmparse

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipmgo/internal/ipm"
)

// Native fuzz targets for the two parser entry points. The contract
// under test: the strict loader may reject anything but must never
// panic, and the tolerant loader — which the profile store feeds with
// arbitrary network input — must never panic AND must always hand back
// a profile the downstream consumers (banner, XML re-encode) can
// process without panicking. `make fuzz` runs a short pass as part of
// `make verify`; longer runs just raise -fuzztime.

// maxFuzzInput caps the document size under fuzz. The interesting bug
// surface is structural (torn tags, bad attributes, interleaved
// regions), all reachable well under this; without a cap the mutator
// drifts toward documents with thousands of bare <task> elements whose
// O(ranks × funcs) banner render drops the exec rate to single digits.
const maxFuzzInput = 16 << 10

// seedCorpus feeds every checked-in fixture plus a couple of
// hand-picked structural edge cases.
func seedCorpus(f *testing.F) {
	f.Helper()
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.xml"))
	if err != nil {
		f.Fatal(err)
	}
	for _, fx := range fixtures {
		data, err := os.ReadFile(fx)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`<?xml version="1.0"?><ipm_log version="2.0" command="./x" ntasks="1" nhosts="1" wallclock="1.0"><task mpi_rank="0" host="h" wallclock="1.0"><region name="ipm_global"><func name="MPI_Barrier" bytes="0" count="1" ttot="0.5" tmin="0.5" tmax="0.5"></func></region></task></ipm_log>`))
	f.Add([]byte(`<ipm_log ntasks="99999999"><task mpi_rank="-5" wallclock="nan">`))
	f.Add([]byte(`<ipm_log><task><region><func name="a" count="9223372036854775807" ttot="1e308"/></region></task></ipm_log>`))
	f.Add([]byte("<ipm_log>\xff\xfe<task"))
	// Energy-attributed profiles: a task-level total with a device stamp,
	// an entry-level fallback, and hostile energy values.
	f.Add([]byte(`<ipm_log ntasks="1"><task mpi_rank="0" energy_total="76.5" device="Tesla C2050"><region><func name="@CUDA_EXEC_STRM00" count="3" ttot="0.4" energy="76.5"/></region></task></ipm_log>`))
	f.Add([]byte(`<ipm_log ntasks="1"><task mpi_rank="0" device="A100-SXM4-40GB"><region><func name="cudaMemcpy(H2D)" count="2" ttot="0.1" energy="1.25"/><func name="square" count="2" ttot="0.2" energy="8.5"/></region></task></ipm_log>`))
	f.Add([]byte(`<ipm_log ntasks="1"><task energy_total="-1e308" device="&#0;"><region><func name="k" energy="nan"/></region></task></ipm_log>`))
}

func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzInput {
			t.Skip("oversized input")
		}
		jp, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if jp == nil {
			t.Fatal("strict Load returned nil profile and nil error")
		}
		// Whatever the strict decoder accepted must survive the full
		// downstream pipeline.
		if err := WriteBanner(io.Discard, jp, true); err != nil {
			t.Fatalf("banner on accepted profile: %v", err)
		}
		if err := ipm.WriteXML(io.Discard, jp); err != nil {
			t.Fatalf("re-encode of accepted profile: %v", err)
		}
	})
}

func FuzzTolerant(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzInput {
			t.Skip("oversized input")
		}
		jp, rep, err := LoadTolerant(bytes.NewReader(data))
		if err != nil {
			// Total rejection is allowed only when there is no ipm_log
			// root at all; it must never coexist with a profile.
			if jp != nil {
				t.Fatal("tolerant load returned both a profile and an error")
			}
			return
		}
		if jp == nil || rep == nil {
			t.Fatal("tolerant load returned nil profile or report without error")
		}
		// Salvaged profiles flow into the profile store and ipm_parse:
		// every downstream consumer must cope with whatever was recovered.
		if err := WriteBanner(io.Discard, jp, true); err != nil {
			t.Fatalf("banner on salvaged profile: %v", err)
		}
		if err := WriteHTML(io.Discard, jp); err != nil {
			t.Fatalf("HTML on salvaged profile: %v", err)
		}
		if err := ipm.WriteXML(io.Discard, jp); err != nil {
			t.Fatalf("re-encode of salvaged profile: %v", err)
		}
		for _, w := range rep.Warnings {
			if strings.TrimSpace(w) == "" {
				t.Fatal("empty warning recorded")
			}
		}
	})
}
