// Package ipmparse reimplements IPM's ipm_parse utility (paper Section
// II): it reads the XML profiling log a monitored run writes and
// regenerates the banner, produces an HTML report suited for permanent
// storage of profiles, or converts the profile to the CUBE format for the
// Scalasca GUI.
package ipmparse

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"

	"ipmgo/internal/cube"
	"ipmgo/internal/ipm"
)

// Load reads an IPM XML profiling log, rejecting malformed input.
func Load(r io.Reader) (*ipm.JobProfile, error) { return ipm.ParseXML(r) }

// LoadTolerant reads an IPM XML profiling log in salvage mode: truncated
// documents (a rank died mid-write), interleaved or unclosed task
// elements, and corrupt attributes are recovered as far as possible, and
// the report describes what was lost. This is how ipm_parse must behave
// on the log of a job that did not end cleanly.
func LoadTolerant(r io.Reader) (*ipm.JobProfile, *ipm.ParseReport, error) {
	return ipm.ParseXMLTolerant(r)
}

// WriteBanner regenerates the termination banner from a parsed log.
func WriteBanner(w io.Writer, jp *ipm.JobProfile, full bool) error {
	return ipm.WriteBanner(w, jp, ipm.BannerOptions{Full: full})
}

// WriteCUBE converts the profile to CUBE XML.
func WriteCUBE(w io.Writer, jp *ipm.JobProfile) error { return cube.Write(w, jp) }

// htmlReport is the template's view model.
type htmlReport struct {
	Command   string
	NTasks    int
	Nodes     int
	Wallclock string
	CommPct   string
	GPUPct    string
	IdlePct   string
	// SubmitStall is the job-wide command-queue submit stall; empty when
	// the run did not model the queue layer, which drops the row.
	SubmitStall string
	// Device names the device backend the profile recorded; Energy is
	// the job-wide attributed energy. Both are empty — dropping their
	// rows — for profiles from unpowered or pre-registry runs.
	Device  string
	Energy  string
	Funcs   []htmlFunc
	Ranks   []htmlRank
	Balance []htmlBalance
}

type htmlFunc struct {
	Name    string
	Time    string
	Count   int64
	PctWall string
	Submits int64
	Stall   string
	Energy  string
}

type htmlRank struct {
	Rank      int
	Host      string
	Wallclock string
	MPI       string
	CUDA      string
}

type htmlBalance struct {
	Name      string
	Min       string
	Avg       string
	Max       string
	Imbalance string
}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>IPM profile: {{.Command}}</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-bottom: 2em; }
th, td { border: 1px solid #999; padding: 0.2em 0.6em; text-align: right; }
th { background: #eee; }
td.l, th.l { text-align: left; }
</style></head><body>
<h1>IPM v2.0 profile</h1>
<table>
<tr><th class="l">command</th><td class="l">{{.Command}}</td></tr>
<tr><th class="l">mpi_tasks</th><td>{{.NTasks}} on {{.Nodes}} nodes</td></tr>
<tr><th class="l">wallclock</th><td>{{.Wallclock}}</td></tr>
<tr><th class="l">%comm</th><td>{{.CommPct}}</td></tr>
<tr><th class="l">%gpu</th><td>{{.GPUPct}}</td></tr>
<tr><th class="l">%host idle</th><td>{{.IdlePct}}</td></tr>
{{if .SubmitStall}}<tr><th class="l">submit stall</th><td>{{.SubmitStall}}</td></tr>
{{end}}{{if .Device}}<tr><th class="l">device</th><td class="l">{{.Device}}</td></tr>
{{end}}{{if .Energy}}<tr><th class="l">energy</th><td>{{.Energy}}</td></tr>
{{end}}</table>
<h2>Events</h2>
<table>
<tr><th class="l">name</th><th>time [s]</th><th>count</th><th>%wall</th><th>submits</th><th>stall [s]</th><th>energy [J]</th></tr>
{{range .Funcs}}<tr><td class="l">{{.Name}}</td><td>{{.Time}}</td><td>{{.Count}}</td><td>{{.PctWall}}</td><td>{{.Submits}}</td><td>{{.Stall}}</td><td>{{.Energy}}</td></tr>
{{end}}</table>
<h2>Tasks</h2>
<table>
<tr><th>rank</th><th class="l">host</th><th>wallclock [s]</th><th>MPI [s]</th><th>CUDA [s]</th></tr>
{{range .Ranks}}<tr><td>{{.Rank}}</td><td class="l">{{.Host}}</td><td>{{.Wallclock}}</td><td>{{.MPI}}</td><td>{{.CUDA}}</td></tr>
{{end}}</table>
<h2>Load balance (top events)</h2>
<table>
<tr><th class="l">name</th><th>min [s]</th><th>avg [s]</th><th>max [s]</th><th>max/avg</th></tr>
{{range .Balance}}<tr><td class="l">{{.Name}}</td><td>{{.Min}}</td><td>{{.Avg}}</td><td>{{.Max}}</td><td>{{.Imbalance}}</td></tr>
{{end}}</table>
</body></html>
`))

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// WriteHTML produces the HTML report form of the profile.
func WriteHTML(w io.Writer, jp *ipm.JobProfile) error {
	wall := jp.WallclockSpread().Total
	rep := htmlReport{
		Command:   jp.Command,
		NTasks:    jp.NTasks(),
		Nodes:     jp.Nodes,
		Wallclock: secs(jp.Wallclock()),
		CommPct:   fmt.Sprintf("%.2f", jp.CommPercent()),
		GPUPct:    fmt.Sprintf("%.2f", jp.GPUPercent()),
		IdlePct:   fmt.Sprintf("%.2f", jp.HostIdlePercent()),
	}
	if st := jp.TotalSubmitStall(); st > 0 {
		rep.SubmitStall = secs(st) + " s"
	}
	rep.Device = jp.DeviceName()
	if e := jp.TotalEnergyJoules(); e > 0 {
		rep.Energy = fmt.Sprintf("%.2f J", e)
	}
	fts := jp.FuncTotals()
	for _, ft := range fts {
		pct := 0.0
		if wall > 0 {
			pct = 100 * float64(ft.Stats.Total) / float64(wall)
		}
		rep.Funcs = append(rep.Funcs, htmlFunc{
			Name:    ft.Name,
			Time:    secs(ft.Stats.Total),
			Count:   ft.Stats.Count,
			PctWall: fmt.Sprintf("%.2f", pct),
			Submits: ft.Stats.Submits,
			Stall:   secs(ft.Stats.SubmitStall),
			Energy:  fmt.Sprintf("%.2f", ft.Stats.EnergyJoules()),
		})
	}
	for _, r := range jp.Ranks {
		rep.Ranks = append(rep.Ranks, htmlRank{
			Rank:      r.Rank,
			Host:      r.Host,
			Wallclock: secs(r.Wallclock),
			MPI:       secs(r.DomainTime(ipm.DomainMPI)),
			CUDA:      secs(r.DomainTime(ipm.DomainCUDA)),
		})
	}
	sort.Slice(rep.Ranks, func(i, j int) bool { return rep.Ranks[i].Rank < rep.Ranks[j].Rank })

	top := fts
	if len(top) > 10 {
		top = top[:10]
	}
	// Balance rows need a per-rank spread for each top event. Collect all
	// of them in one pass over the rank entries rather than re-walking
	// every rank per name (FuncSpread) and then again for the imbalance
	// ratio — on wide jobs that was 2×top×ranks entry scans.
	idx := make(map[string]int, len(top))
	for i, ft := range top {
		idx[ft.Name] = i
	}
	vals := make([][]time.Duration, len(top))
	for i := range vals {
		vals[i] = make([]time.Duration, len(jp.Ranks))
	}
	for ri, r := range jp.Ranks {
		for _, e := range r.Entries {
			if i, ok := idx[e.Sig.Name]; ok {
				vals[i][ri] += e.Stats.Total
			}
		}
	}
	for i, ft := range top {
		// The same min/avg/max fold FuncSpread applies, over the
		// prefetched values; imbalance is max/avg of that spread.
		var min, max, total time.Duration
		if len(vals[i]) > 0 {
			min, max = vals[i][0], vals[i][0]
		}
		for _, v := range vals[i] {
			total += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		var avg time.Duration
		if len(vals[i]) > 0 {
			avg = total / time.Duration(len(vals[i]))
		}
		imb := 0.0
		if avg != 0 {
			imb = float64(max) / float64(avg)
		}
		rep.Balance = append(rep.Balance, htmlBalance{
			Name:      ft.Name,
			Min:       secs(min),
			Avg:       secs(avg),
			Max:       secs(max),
			Imbalance: fmt.Sprintf("%.2f", imb),
		})
	}
	return htmlTmpl.Execute(w, rep)
}
