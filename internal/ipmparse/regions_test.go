package ipmparse

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/ipm"
)

func regionProfile() *ipm.JobProfile {
	mk := func(rank int) ipm.RankProfile {
		return ipm.RankProfile{
			Rank: rank, Host: "n", Wallclock: 10 * time.Second,
			Entries: []ipm.Entry{
				{Sig: ipm.Sig{Name: "MPI_Allreduce", Region: "ortho"},
					Stats: ipm.Stats{Count: 4, Total: 2 * time.Second, Min: time.Millisecond, Max: time.Second}},
				{Sig: ipm.Sig{Name: "cublasZgemm", Region: "subspace"},
					Stats: ipm.Stats{Count: 10, Total: 3 * time.Second, Min: time.Millisecond, Max: time.Second}},
				{Sig: ipm.Sig{Name: "cudaMemcpy(D2H)", Region: "subspace"},
					Stats: ipm.Stats{Count: 10, Total: time.Second, Min: time.Millisecond, Max: time.Second}},
				{Sig: ipm.Sig{Name: "cudaMalloc"},
					Stats: ipm.Stats{Count: 1, Total: time.Second, Min: time.Second, Max: time.Second}},
				{Sig: ipm.Sig{Name: "@CUDA_EXEC_STRM00", Region: "subspace"},
					Stats: ipm.Stats{Count: 10, Total: 9 * time.Second, Min: time.Millisecond, Max: time.Second}},
			},
		}
	}
	return ipm.NewJobProfile("app", 2, []ipm.RankProfile{mk(0), mk(1)})
}

func TestRegionBreakdown(t *testing.T) {
	rows := RegionBreakdown(regionProfile())
	if len(rows) != 3 {
		t.Fatalf("regions = %d, want 3 (subspace, ortho, global)", len(rows))
	}
	// Sorted by total: subspace (8s) first.
	if rows[0].Region != "subspace" || rows[0].Total != 8*time.Second {
		t.Errorf("rows[0] = %+v", rows[0])
	}
	if rows[0].CUBLAS != 6*time.Second || rows[0].CUDA != 2*time.Second {
		t.Errorf("subspace domains = %+v", rows[0])
	}
	// Pseudo entries excluded: @CUDA_EXEC should not inflate subspace.
	if rows[0].Total >= 20*time.Second {
		t.Error("pseudo entries leaked into region totals")
	}
	var ortho RegionRow
	for _, r := range rows {
		if r.Region == "ortho" {
			ortho = r
		}
	}
	if ortho.MPI != 4*time.Second || ortho.Calls != 8 {
		t.Errorf("ortho = %+v", ortho)
	}
}

func TestWriteRegions(t *testing.T) {
	var sb strings.Builder
	if err := WriteRegions(&sb, regionProfile()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"subspace", "ortho", "ipm_global", "CUBLAS(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("regions report missing %q:\n%s", want, out)
		}
	}
}
