package ipmparse

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ipmgo/internal/ipm"
)

// RegionRow summarises one user region (MPI_Pcontrol bracket) across all
// ranks: total host time by domain and call count.
type RegionRow struct {
	Region string
	Total  time.Duration
	MPI    time.Duration
	CUDA   time.Duration
	CUBLAS time.Duration
	CUFFT  time.Duration
	Calls  int64
}

// RegionBreakdown aggregates the profile by region, sorted by descending
// total time. Pseudo-entries are excluded (they describe device activity,
// not host time inside the region).
func RegionBreakdown(jp *ipm.JobProfile) []RegionRow {
	byRegion := make(map[string]*RegionRow)
	for _, r := range jp.Ranks {
		for _, e := range r.Entries {
			sig := e.Sig
			if ipm.Classify(sig.Name) == ipm.DomainPseudo {
				continue
			}
			row, ok := byRegion[sig.Region]
			if !ok {
				row = &RegionRow{Region: sig.Region}
				byRegion[sig.Region] = row
			}
			row.Total += e.Stats.Total
			row.Calls += e.Stats.Count
			switch ipm.Classify(sig.Name) {
			case ipm.DomainMPI:
				row.MPI += e.Stats.Total
			case ipm.DomainCUDA:
				row.CUDA += e.Stats.Total
			case ipm.DomainCUBLAS:
				row.CUBLAS += e.Stats.Total
			case ipm.DomainCUFFT:
				row.CUFFT += e.Stats.Total
			}
		}
	}
	out := make([]RegionRow, 0, len(byRegion))
	for _, row := range byRegion {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// WriteRegions renders the per-region breakdown as text.
func WriteRegions(w io.Writer, jp *ipm.JobProfile) error {
	rows := RegionBreakdown(jp)
	if _, err := fmt.Fprintf(w, "Per-region breakdown (%d regions; host time across %d ranks)\n",
		len(rows), jp.NTasks()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-24s %12s %10s %10s %10s %10s %10s\n",
		"region", "total(s)", "MPI(s)", "CUDA(s)", "CUBLAS(s)", "CUFFT(s)", "calls"); err != nil {
		return err
	}
	for _, r := range rows {
		name := r.Region
		if name == ipm.GlobalRegion {
			name = "ipm_global"
		}
		if _, err := fmt.Fprintf(w, "%-24s %12.3f %10.3f %10.3f %10.3f %10.3f %10d\n",
			name, r.Total.Seconds(), r.MPI.Seconds(), r.CUDA.Seconds(),
			r.CUBLAS.Seconds(), r.CUFFT.Seconds(), r.Calls); err != nil {
			return err
		}
	}
	return nil
}
