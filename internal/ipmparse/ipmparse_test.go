package ipmparse

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/ipm"
)

func sampleProfile() *ipm.JobProfile {
	mk := func(rank int) ipm.RankProfile {
		return ipm.RankProfile{
			Rank:      rank,
			Host:      "dirac1",
			Wallclock: 4 * time.Second,
			Entries: []ipm.Entry{
				{Sig: ipm.Sig{Name: "cudaMemcpy(D2H)", Bytes: 800000},
					Stats: ipm.Stats{Count: 1, Total: 1160 * time.Millisecond, Min: 1160 * time.Millisecond, Max: 1160 * time.Millisecond}},
				{Sig: ipm.Sig{Name: "MPI_Allreduce", Bytes: 8},
					Stats: ipm.Stats{Count: 2, Total: 10 * time.Millisecond, Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}},
				{Sig: ipm.Sig{Name: "@CUDA_EXEC_STRM00"},
					Stats: ipm.Stats{Count: 1, Total: time.Second, Min: time.Second, Max: time.Second}},
			},
		}
	}
	return ipm.NewJobProfile("./cuda.ipm", 2, []ipm.RankProfile{mk(0), mk(1)})
}

func TestLoadFromXML(t *testing.T) {
	var xml strings.Builder
	if err := ipm.WriteXML(&xml, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	jp, err := Load(strings.NewReader(xml.String()))
	if err != nil {
		t.Fatal(err)
	}
	if jp.NTasks() != 2 || jp.Command != "./cuda.ipm" {
		t.Errorf("loaded profile: %d tasks, %q", jp.NTasks(), jp.Command)
	}
}

func TestBannerRegeneration(t *testing.T) {
	var sb strings.Builder
	if err := WriteBanner(&sb, sampleProfile(), false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cudaMemcpy(D2H)") {
		t.Error("banner missing function row")
	}
	sb.Reset()
	if err := WriteBanner(&sb, sampleProfile(), true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mpi_tasks : 2 on 2 nodes") {
		t.Errorf("full banner header missing:\n%s", sb.String())
	}
}

func TestHTMLReport(t *testing.T) {
	var sb strings.Builder
	if err := WriteHTML(&sb, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "IPM v2.0 profile", "cudaMemcpy(D2H)",
		"MPI_Allreduce", "@CUDA_EXEC_STRM00", "Load balance", "dirac1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestCUBEConversion(t *testing.T) {
	var sb strings.Builder
	if err := WriteCUBE(&sb, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<cube version=\"3.0\">") {
		t.Error("not a CUBE document")
	}
}

func TestFullPipelineLogToEverything(t *testing.T) {
	// Write XML -> parse -> banner + html + cube, as ipm_parse does.
	var xml strings.Builder
	if err := ipm.WriteXML(&xml, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	jp, err := Load(strings.NewReader(xml.String()))
	if err != nil {
		t.Fatal(err)
	}
	var banner, html, cub strings.Builder
	if err := WriteBanner(&banner, jp, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTML(&html, jp); err != nil {
		t.Fatal(err)
	}
	if err := WriteCUBE(&cub, jp); err != nil {
		t.Fatal(err)
	}
	if banner.Len() == 0 || html.Len() == 0 || cub.Len() == 0 {
		t.Error("pipeline produced empty output")
	}
}
