package ipmparse

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ipmgo/internal/ipm"
)

func sampleProfile() *ipm.JobProfile {
	mk := func(rank int) ipm.RankProfile {
		return ipm.RankProfile{
			Rank:      rank,
			Host:      "dirac1",
			Wallclock: 4 * time.Second,
			Entries: []ipm.Entry{
				{Sig: ipm.Sig{Name: "cudaMemcpy(D2H)", Bytes: 800000},
					Stats: ipm.Stats{Count: 1, Total: 1160 * time.Millisecond, Min: 1160 * time.Millisecond, Max: 1160 * time.Millisecond}},
				{Sig: ipm.Sig{Name: "MPI_Allreduce", Bytes: 8},
					Stats: ipm.Stats{Count: 2, Total: 10 * time.Millisecond, Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}},
				{Sig: ipm.Sig{Name: "@CUDA_EXEC_STRM00"},
					Stats: ipm.Stats{Count: 1, Total: time.Second, Min: time.Second, Max: time.Second}},
			},
		}
	}
	return ipm.NewJobProfile("./cuda.ipm", 2, []ipm.RankProfile{mk(0), mk(1)})
}

func TestLoadFromXML(t *testing.T) {
	var xml strings.Builder
	if err := ipm.WriteXML(&xml, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	jp, err := Load(strings.NewReader(xml.String()))
	if err != nil {
		t.Fatal(err)
	}
	if jp.NTasks() != 2 || jp.Command != "./cuda.ipm" {
		t.Errorf("loaded profile: %d tasks, %q", jp.NTasks(), jp.Command)
	}
}

func TestBannerRegeneration(t *testing.T) {
	var sb strings.Builder
	if err := WriteBanner(&sb, sampleProfile(), false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cudaMemcpy(D2H)") {
		t.Error("banner missing function row")
	}
	sb.Reset()
	if err := WriteBanner(&sb, sampleProfile(), true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mpi_tasks : 2 on 2 nodes") {
		t.Errorf("full banner header missing:\n%s", sb.String())
	}
}

func TestHTMLReport(t *testing.T) {
	var sb strings.Builder
	if err := WriteHTML(&sb, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "IPM v2.0 profile", "cudaMemcpy(D2H)",
		"MPI_Allreduce", "@CUDA_EXEC_STRM00", "Load balance", "dirac1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

// TestHTMLBalanceMatchesFuncSpread pins the one-pass balance section to
// the per-name reference walk it replaced: every top-event row must
// carry exactly the FuncSpread/Imbalance figures, with unbalanced ranks
// so min, avg and max actually differ.
func TestHTMLBalanceMatchesFuncSpread(t *testing.T) {
	mk := func(rank int, scale time.Duration) ipm.RankProfile {
		return ipm.RankProfile{
			Rank: rank, Host: "n0", Wallclock: 4 * time.Second,
			Entries: []ipm.Entry{
				{Sig: ipm.Sig{Name: "MPI_Allreduce"},
					Stats: ipm.Stats{Count: 1, Total: scale, Min: scale, Max: scale}},
				{Sig: ipm.Sig{Name: "MPI_Wait"},
					Stats: ipm.Stats{Count: 1, Total: 3 * scale, Min: 3 * scale, Max: 3 * scale}},
			},
		}
	}
	jp := ipm.NewJobProfile("./skew", 3, []ipm.RankProfile{
		mk(0, 100*time.Millisecond), mk(1, 700*time.Millisecond), mk(2, 250*time.Millisecond),
	})
	var sb strings.Builder
	if err := WriteHTML(&sb, jp); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, ft := range jp.FuncTotals() {
		s := jp.FuncSpread(ft.Name)
		want := ft.Name + "</td><td>" + secs(s.Min) + "</td><td>" + secs(s.Avg) +
			"</td><td>" + secs(s.Max) + "</td><td>" +
			fmt.Sprintf("%.2f", jp.Imbalance(ft.Name)) + "</td>"
		if !strings.Contains(out, want) {
			t.Errorf("balance row for %s missing or wrong, want fragment %q in:\n%s", ft.Name, want, out)
		}
	}
}

func TestCUBEConversion(t *testing.T) {
	var sb strings.Builder
	if err := WriteCUBE(&sb, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<cube version=\"3.0\">") {
		t.Error("not a CUBE document")
	}
}

func TestFullPipelineLogToEverything(t *testing.T) {
	// Write XML -> parse -> banner + html + cube, as ipm_parse does.
	var xml strings.Builder
	if err := ipm.WriteXML(&xml, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	jp, err := Load(strings.NewReader(xml.String()))
	if err != nil {
		t.Fatal(err)
	}
	var banner, html, cub strings.Builder
	if err := WriteBanner(&banner, jp, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTML(&html, jp); err != nil {
		t.Fatal(err)
	}
	if err := WriteCUBE(&cub, jp); err != nil {
		t.Fatal(err)
	}
	if banner.Len() == 0 || html.Len() == 0 || cub.Len() == 0 {
		t.Error("pipeline produced empty output")
	}
}
