package ipmparse

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipmgo/internal/ipm"
)

var update = flag.Bool("update", false, "rewrite golden files")

// funcCount sums the call count recorded for one function name.
func funcCount(rp ipm.RankProfile, name string) int64 {
	var n int64
	for _, e := range rp.Entries {
		if e.Sig.Name == name {
			n += e.Stats.Count
		}
	}
	return n
}

// loadFixture runs the tolerant loader on one testdata log.
func loadFixture(t *testing.T, name string) (*ipm.JobProfile, *ipm.ParseReport) {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jp, rep, err := LoadTolerant(f)
	if err != nil {
		t.Fatalf("LoadTolerant(%s): %v", name, err)
	}
	return jp, rep
}

// checkGolden regenerates the partial-report banner and compares it with
// the checked-in golden (go test -update rewrites them).
func checkGolden(t *testing.T, name string, jp *ipm.JobProfile) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBanner(&buf, jp, false); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("banner differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestTolerantTruncatedMidTag(t *testing.T) {
	// The strict loader must refuse this log outright.
	f, err := os.Open(filepath.Join("testdata", "truncated_midtag.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(f); err == nil {
		t.Error("strict Load accepted a mid-tag-truncated log")
	}
	f.Close()

	jp, rep := loadFixture(t, "truncated_midtag.xml")
	if !rep.Truncated {
		t.Error("truncation not reported")
	}
	if rep.TasksRecovered != 2 || rep.TasksDeclared != 4 {
		t.Errorf("recovered %d of %d tasks, want 2 of 4", rep.TasksRecovered, rep.TasksDeclared)
	}
	if jp.ExpectedRanks != 4 || jp.Expected() != 4 {
		t.Errorf("ExpectedRanks = %d, want 4", jp.ExpectedRanks)
	}
	if !jp.Degraded() {
		t.Error("partial profile not marked degraded")
	}
	if len(jp.Ranks) != 2 {
		t.Fatalf("ranks = %d", len(jp.Ranks))
	}
	// Rank 0 arrived complete, with its per-call-site error counter.
	if got := jp.Ranks[0].FuncTime("cudaMalloc"); got == 0 {
		t.Error("rank 0 cudaMalloc lost")
	}
	if jp.Ranks[0].Errors != 2 {
		t.Errorf("rank 0 errors = %d, want 2", jp.Ranks[0].Errors)
	}
	// Rank 1 was cut mid-func but keeps its identity and lost marker.
	r1 := jp.Ranks[1]
	if !r1.Lost || r1.LostReason != "fault plan: rank death at 700ms" {
		t.Errorf("rank 1 lost marker not recovered: %+v", r1)
	}
	lost := jp.LostRanks()
	if len(lost) != 1 || lost[0].Rank != 1 {
		t.Errorf("LostRanks = %v", lost)
	}
	checkGolden(t, "truncated_midtag.banner.golden", jp)
}

func TestTolerantInterleavedTasks(t *testing.T) {
	jp, rep := loadFixture(t, "interleaved.xml")
	if rep.TasksRecovered != 2 {
		t.Fatalf("recovered %d tasks, want 2", rep.TasksRecovered)
	}
	var interleaveWarned bool
	for _, w := range rep.Warnings {
		if strings.Contains(w, "not closed before next task") {
			interleaveWarned = true
		}
	}
	if !interleaveWarned {
		t.Errorf("no interleave warning in %q", rep.Warnings)
	}
	// Rank 0's partial content survives alongside rank 1's full task.
	if got := jp.Ranks[0].FuncTime("cudaMalloc"); got == 0 {
		t.Error("rank 0 partial task lost its func entry")
	}
	if got := jp.Ranks[1].FuncTime("MPI_Barrier"); got == 0 {
		t.Error("rank 1 complete task damaged")
	}
	checkGolden(t, "interleaved.banner.golden", jp)
}

func TestTolerantCorruptAttributes(t *testing.T) {
	jp, rep := loadFixture(t, "corrupt_attrs.xml")
	if rep.Truncated {
		t.Error("attribute corruption misreported as truncation")
	}
	if rep.TasksRecovered != 2 {
		t.Fatalf("recovered %d tasks, want 2", rep.TasksRecovered)
	}
	// Three corrupt attributes, three warnings, three zero values.
	if len(rep.Warnings) != 3 {
		t.Errorf("warnings = %q, want 3 entries", rep.Warnings)
	}
	if got := funcCount(jp.Ranks[0], "cudaMalloc"); got != 0 {
		t.Errorf("corrupt count not zeroed: %d", got)
	}
	// The sibling with intact attributes is untouched.
	if got := funcCount(jp.Ranks[0], "cudaMemcpy(H2D)"); got != 40 {
		t.Errorf("intact func damaged: count = %d", got)
	}
	checkGolden(t, "corrupt_attrs.banner.golden", jp)
}

func TestTolerantRejectsNonLog(t *testing.T) {
	if _, _, err := LoadTolerant(strings.NewReader("<html><body>404</body></html>")); err == nil {
		t.Error("tolerant loader accepted a document with no ipm_log root")
	}
	if _, _, err := LoadTolerant(strings.NewReader("")); err == nil {
		t.Error("tolerant loader accepted empty input")
	}
}
