package storecluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/profstore"
	"ipmgo/internal/telemetry"
)

// testCluster is one in-process cluster: N members, each serving its
// cluster handler on a real listener.
type testCluster struct {
	urls    []string
	stores  []*profstore.Store
	members []*Cluster
	servers []*http.Server
}

// startCluster brings up n members with replication r. Listeners are
// reserved first so every member knows the full membership before it
// starts serving.
func startCluster(t *testing.T, n, r int, transport http.RoundTripper) *testCluster {
	t.Helper()
	tc := &testCluster{}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		tc.urls = append(tc.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		store := profstore.New()
		reg := telemetry.NewRegistry()
		local := profstore.NewServer(store, reg).Handler()
		cl, err := New(Config{
			Self:     tc.urls[i],
			Members:  tc.urls,
			Replicas: r,
			Store:    store,
			Local:    local,
			Registry: reg,
			Recorder: telemetry.NewRecorder(1024),
			// Tight retry budget: tests that kill peers should not sit in
			// default backoff.
			Retry:     faultsim.RetryPolicy{MaxAttempts: 3},
			Transport: transport,
			Timeout:   5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: cl.Handler()}
		go srv.Serve(listeners[i])
		tc.stores = append(tc.stores, store)
		tc.members = append(tc.members, cl)
		tc.servers = append(tc.servers, srv)
	}
	t.Cleanup(func() {
		for _, srv := range tc.servers {
			srv.Close()
		}
	})
	return tc
}

// corpusDocs renders nDocs deterministic synthetic profiles in two tag
// batches, the shape /regress compares.
func corpusDocs(nDocs int) (docs [][]byte, tags []string) {
	for i := 0; i < nDocs; i++ {
		var buf bytes.Buffer
		if err := ipm.WriteXML(&buf, profstore.SyntheticProfile(2011, i)); err != nil {
			panic(err)
		}
		docs = append(docs, buf.Bytes())
		tags = append(tags, fmt.Sprintf("clu,batch:%d", i%2))
	}
	return docs, tags
}

func postDoc(t *testing.T, base string, doc []byte, tags string) string {
	t.Helper()
	resp, err := http.Post(base+"/ingest?tags="+tags, "application/xml", bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	return string(body)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func mustGet(t *testing.T, url string) string {
	t.Helper()
	code, body := get(t, url)
	if code != 200 {
		t.Fatalf("GET %s: %d: %s", url, code, body)
	}
	return body
}

// referenceAnswers ingests the corpus into a plain single store and
// renders the reference response bodies through the single-node
// handler's own renderer (an httptest-free in-process server).
func referenceAnswers(t *testing.T, docs [][]byte, tags []string, queries []string) map[string]string {
	t.Helper()
	tc := startCluster(t, 1, 1, nil)
	for i, doc := range docs {
		postDoc(t, tc.urls[0], doc, tags[i])
	}
	out := make(map[string]string, len(queries))
	for _, q := range queries {
		out[q] = mustGet(t, tc.urls[0]+q)
	}
	return out
}

var clusterQueries = []string{
	"/agg",
	"/agg?sel=tag:clu&top=3",
	"/agg?sel=tag:batch:0",
	"/jobs",
	"/jobs?sel=tag:batch:1",
	"/regress?base=tag:batch:0&head=tag:batch:1&threshold=5",
}

// TestClusterByteIdentity is the tentpole acceptance test: /agg,
// /regress and /jobs answer byte-identically on 1-, 2- and 4-member
// clusters, for every router choice, replication factor 1 and 2, and a
// reversed ingest order.
func TestClusterByteIdentity(t *testing.T) {
	docs, tags := corpusDocs(12)
	want := referenceAnswers(t, docs, tags, clusterQueries)

	for _, tt := range []struct {
		members, replicas int
		reverse           bool
	}{
		{1, 1, false},
		{2, 1, false},
		{2, 2, true},
		{4, 2, false},
		{4, 3, true},
	} {
		name := fmt.Sprintf("n=%d/r=%d/reverse=%v", tt.members, tt.replicas, tt.reverse)
		t.Run(name, func(t *testing.T) {
			tc := startCluster(t, tt.members, tt.replicas, nil)
			for i := range docs {
				k := i
				if tt.reverse {
					k = len(docs) - 1 - i
				}
				// Rotate the router so placement does not depend on who
				// accepted the write.
				postDoc(t, tc.urls[k%len(tc.urls)], docs[k], tags[k])
			}
			for _, q := range clusterQueries {
				for ri, router := range tc.urls {
					got := mustGet(t, router+q)
					if got != want[q] {
						t.Errorf("%s via router %d: response differs from single-node reference\ngot:  %.200s\nwant: %.200s", q, ri, got, want[q])
					}
				}
			}
		})
	}
}

// TestClusterReplicationPlacement: every acked job is on exactly the R
// ring owners, and the replicas hold identical wire rollups.
func TestClusterReplicationPlacement(t *testing.T) {
	docs, tags := corpusDocs(10)
	tc := startCluster(t, 3, 2, nil)
	ring := tc.members[0].Ring()
	for i, doc := range docs {
		var resp struct {
			ID string `json:"id"`
		}
		body := postDoc(t, tc.urls[i%3], doc, tags[i])
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatal(err)
		}
		owners := ring.Owners(resp.ID, 2)
		for si, store := range tc.stores {
			has := store.Get(resp.ID) != nil
			shouldHave := owners[0] == tc.urls[si] || owners[1] == tc.urls[si]
			if has != shouldHave {
				t.Errorf("job %s on member %d: present=%v, owner=%v", resp.ID, si, has, shouldHave)
			}
		}
	}
}

// startClusterWithTransportOn rebuilds member i's router over the same
// store and membership but a (fault-injecting) transport, returning the
// handler to drive in-process. The original member keeps serving its
// listener; peers are reached through the new transport.
func startClusterWithTransportOn(t *testing.T, tc *testCluster, i, r int, transport http.RoundTripper) http.Handler {
	t.Helper()
	reg := telemetry.NewRegistry()
	local := profstore.NewServer(tc.stores[i], reg).Handler()
	cl, err := New(Config{
		Self: tc.urls[i], Members: tc.urls, Replicas: r,
		Store: tc.stores[i], Local: local, Registry: reg,
		Retry: faultsim.RetryPolicy{
			MaxAttempts: 2,
			Backoff:     faultsim.Dur(time.Millisecond),
			MaxBackoff:  faultsim.Dur(2 * time.Millisecond),
		},
		Transport: transport,
		Timeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl.Handler()
}

func doReq(t *testing.T, h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestClusterIngestIdempotent: re-posting the same document through a
// different router replaces, never duplicates, and /agg is unchanged.
func TestClusterIngestIdempotent(t *testing.T) {
	docs, tags := corpusDocs(6)
	tc := startCluster(t, 3, 2, nil)
	for i, doc := range docs {
		postDoc(t, tc.urls[0], doc, tags[i])
	}
	before := mustGet(t, tc.urls[1]+"/agg")
	for i, doc := range docs {
		postDoc(t, tc.urls[2], doc, tags[i])
	}
	after := mustGet(t, tc.urls[1]+"/agg")
	if before != after {
		t.Error("re-ingest through another router changed /agg")
	}
	total := 0
	for _, st := range tc.stores {
		total += st.Len()
	}
	if total != 2*len(docs) {
		t.Errorf("total stored copies = %d, want %d (R=2, no duplicates)", total, 2*len(docs))
	}
}

// TestClusterQuorum: with N=3 R=3, one dead owner still acks (2/3
// quorum); two dead owners answer 503 with Retry-After; and strict
// reads answer 503 while a member is unreachable.
func TestClusterQuorum(t *testing.T) {
	docs, _ := corpusDocs(2)
	tc := startCluster(t, 3, 3, nil)

	// Fault plan: requests to member 1 always refused from now on.
	host1 := strings.TrimPrefix(tc.urls[1], "http://")
	plan, err := faultsim.ParsePeerPlan([]byte(fmt.Sprintf(
		`{"faults":[{"host":"%s","at":1,"kind":"unreachable","count":-1}]}`, host1)))
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild member 0's router with the faulty transport; its listener
	// stays as-is, we talk to the Cluster handler directly.
	faulty := startClusterWithTransportOn(t, tc, 0, 3, plan.Wrap(nil))

	// One dead owner of three: quorum 2 still reached.
	resp := doReq(t, faulty, "POST", "/ingest", docs[0])
	if resp.Code != 200 {
		t.Fatalf("ingest with 1 dead owner: %d: %s", resp.Code, resp.Body.String())
	}

	// Reads must be strict: the scatter cannot verify completeness.
	resp = doReq(t, faulty, "GET", "/agg", nil)
	if resp.Code != 503 {
		t.Fatalf("scatter with dead peer: %d, want 503", resp.Code)
	}
	if resp.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// Two dead owners: below quorum, 503 + Retry-After.
	host2 := strings.TrimPrefix(tc.urls[2], "http://")
	plan2, err := faultsim.ParsePeerPlan([]byte(fmt.Sprintf(
		`{"faults":[{"host":"%s","at":1,"kind":"unreachable","count":-1},
		            {"host":"%s","at":1,"kind":"unreachable","count":-1}]}`, host1, host2)))
	if err != nil {
		t.Fatal(err)
	}
	faulty2 := startClusterWithTransportOn(t, tc, 0, 3, plan2.Wrap(nil))
	resp = doReq(t, faulty2, "POST", "/ingest", docs[1])
	if resp.Code != 503 {
		t.Fatalf("ingest with 2 dead owners: %d, want 503: %s", resp.Code, resp.Body.String())
	}
	if resp.Header().Get("Retry-After") == "" {
		t.Error("quorum failure 503 without Retry-After")
	}
}
