package storecluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/profstore"
	"ipmgo/internal/telemetry"
)

// Cluster metric names.
const (
	MetricMembers     = "ipm_cluster_members"
	MetricReplicas    = "ipm_cluster_replicas"
	MetricPeerLatency = "ipm_peer_latency_ns"
	MetricPeerErrors  = "ipm_peer_errors_total"
	MetricPeerReqs    = "ipm_peer_requests_total"
	MetricForwards    = "ipm_cluster_ingest_forwards_total"
	MetricScatters    = "ipm_cluster_scatters_total"
	MetricQuorumFails = "ipm_cluster_quorum_failures_total"
)

// maxIngestBytes mirrors the single-node ingest body cap: the router is
// OOM-safe against the same malformed client a member is.
const maxIngestBytes = 64 << 20

// retryAfterSeconds mirrors the single-node 503 backoff hint.
const retryAfterSeconds = 5

// Config wires one ipmserve member into a cluster.
type Config struct {
	// Self is this member's base URL; must be one of Members.
	Self string
	// Members are all member base URLs, including Self. Order is
	// irrelevant (the ring canonicalises it).
	Members []string
	// Replicas is R, the number of members owning each job id. 0 means 2,
	// clamped to the member count. Writes ack at the majority quorum
	// (R/2+1).
	Replicas int
	// Store is this member's local profile store.
	Store *profstore.Store
	// Local is the single-node HTTP surface over Store
	// (profstore.Server.Handler()); the cluster handler intercepts the
	// routed endpoints and delegates everything else to it.
	Local http.Handler
	// Registry receives the cluster metrics; also used by Local for
	// /metrics.
	Registry *telemetry.Registry
	// Recorder, when non-nil, receives scatter-gather and forward spans
	// for the Chrome-trace export.
	Recorder *telemetry.Recorder
	// Transport overrides the peer HTTP transport (the faultsim.PeerPlan
	// seam); nil uses the shared pooled keep-alive transport.
	Transport http.RoundTripper
	// Timeout bounds one peer request; 0 means 10s.
	Timeout time.Duration
	// Retry is the per-peer retry schedule for forwarded ingest; the zero
	// value is the faultsim default (3 attempts, capped backoff).
	Retry faultsim.RetryPolicy
	// FanOut bounds concurrent peer requests per routed operation; 0
	// means 4.
	FanOut int
}

// Cluster is one member's router: it owns the ring, the peer clients
// and the scatter-gather query surface.
type Cluster struct {
	cfg     Config
	ring    *Ring
	peers   []string // canonical members minus self
	quorum  int
	client  *http.Client
	posters map[string]*profstore.Poster
	start   time.Time

	peerLat *telemetry.HistogramVec
	peerErr *telemetry.Vec
	peerReq *telemetry.Vec

	forwards    atomic.Int64
	scatters    atomic.Int64
	quorumFails atomic.Int64
}

// New validates the config and builds the member's router.
func New(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Members)
	if err != nil {
		return nil, err
	}
	self := false
	for _, m := range ring.Members() {
		if m == cfg.Self {
			self = true
		}
	}
	if !self {
		return nil, fmt.Errorf("storecluster: self %q is not a cluster member %v", cfg.Self, ring.Members())
	}
	if cfg.Store == nil || cfg.Local == nil || cfg.Registry == nil {
		return nil, fmt.Errorf("storecluster: Store, Local and Registry are required")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 1 || cfg.Replicas > ring.Len() {
		if cfg.Replicas > ring.Len() {
			cfg.Replicas = ring.Len()
		} else {
			return nil, fmt.Errorf("storecluster: replicas %d < 1", cfg.Replicas)
		}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.FanOut <= 0 {
		cfg.FanOut = 4
	}
	c := &Cluster{
		cfg:    cfg,
		ring:   ring,
		quorum: cfg.Replicas/2 + 1,
		client: &http.Client{
			Timeout:   cfg.Timeout,
			Transport: profstore.CountingTransport(cfg.Transport),
		},
		posters: make(map[string]*profstore.Poster),
		start:   time.Now(),
		peerLat: cfg.Registry.HistogramVec(MetricPeerLatency,
			"Peer request latency in nanoseconds, by peer base URL.",
			"peer", telemetry.ExpBuckets(1e5, 4, 10)),
		peerErr: cfg.Registry.CounterVec(MetricPeerErrors,
			"Peer requests that failed after retries, by peer base URL.", "peer"),
		peerReq: cfg.Registry.CounterVec(MetricPeerReqs,
			"Peer requests issued (before retries), by peer base URL.", "peer"),
	}
	for _, m := range ring.Members() {
		if m == cfg.Self {
			continue
		}
		c.peers = append(c.peers, m)
		// The /shard prefix keeps a forwarded ingest from being re-routed
		// by the receiving member (Poster appends nothing when the URL
		// already contains /ingest).
		c.posters[m] = &profstore.Poster{
			URL:    m + "/shard/ingest",
			Policy: cfg.Retry,
			Client: c.client,
		}
	}
	return c, nil
}

// Ring exposes the member's ring (for tests and the soak harness).
func (c *Cluster) Ring() *Ring { return c.ring }

// span records one cluster operation into the recorder, if any.
func (c *Cluster) span(track, name string, start time.Time, bytes int64) {
	if c.cfg.Recorder == nil {
		return
	}
	end := time.Now()
	c.cfg.Recorder.Record(telemetry.Span{
		Track: track, Name: name, Class: telemetry.ClassOther,
		Start: start.Sub(c.start), End: end.Sub(c.start), Bytes: bytes,
	})
}

// Handler returns the cluster route mux: routed /ingest, scatter-gather
// queries, the member-local /shard/* surface, and delegation to the
// single-node handler for everything else.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", c.handleIngest)
	mux.HandleFunc("GET /agg", c.handleAgg)
	mux.HandleFunc("GET /regress", c.handleRegress)
	mux.HandleFunc("GET /jobs", c.handleJobs)
	mux.HandleFunc("GET /job/{id}", c.handleJob)
	// The local-only shard surface. /shard/ingest and /shard/job/{id}
	// are path rewrites onto the single-node handler: same parsing, same
	// counters, same response bytes — just exempt from routing.
	mux.HandleFunc("GET /shard/rollups", c.handleShardRollups)
	mux.HandleFunc("GET /shard/jobs", c.handleShardJobs)
	mux.HandleFunc("POST /shard/ingest", c.rewriteLocal("/ingest"))
	mux.HandleFunc("GET /shard/job/{id}", func(w http.ResponseWriter, r *http.Request) {
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/job/" + r.PathValue("id")
		c.cfg.Local.ServeHTTP(w, r2)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		c.publish()
		c.cfg.Local.ServeHTTP(w, r)
	})
	mux.Handle("/", c.cfg.Local)
	return mux
}

func (c *Cluster) rewriteLocal(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r2 := r.Clone(r.Context())
		r2.URL.Path = path
		c.cfg.Local.ServeHTTP(w, r2)
	}
}

// publish pushes the cluster counters into the registry (the Vec and
// HistogramVec families render themselves).
func (c *Cluster) publish() {
	var posts, retries, failures int64
	for _, p := range c.posters {
		st := p.Stats()
		posts += st.Posts
		retries += st.Retries
		failures += st.Failures
	}
	c.cfg.Registry.Publish("storecluster", []telemetry.Sample{
		{Name: MetricMembers, Help: "Cluster member count.", Type: "gauge", Value: float64(c.ring.Len())},
		{Name: MetricReplicas, Help: "Replication factor R.", Type: "gauge", Value: float64(c.cfg.Replicas)},
		{Name: MetricForwards, Help: "Ingest documents forwarded to peer owners.", Type: "counter", Value: float64(posts)},
		{Name: MetricScatters, Help: "Scatter-gather query fan-outs issued.", Type: "counter", Value: float64(c.scatters.Load())},
		{Name: MetricQuorumFails, Help: "Routed ingests that missed the write quorum.", Type: "counter", Value: float64(c.quorumFails.Load())},
		{Name: profstore.MetricIngestRetries, Help: "Ingest attempts beyond the first.", Type: "counter", Value: float64(retries)},
		{Name: profstore.MetricIngestFailures, Help: "Profiles that exhausted every ingest attempt.", Type: "counter", Value: float64(failures)},
		{Name: profstore.MetricIngestConnReuse, Help: "Requests on the shared transport served over a reused keep-alive connection.", Type: "counter", Value: float64(profstore.ConnReuseTotal())},
	})
}

// writeJSON mirrors the single-node renderer byte for byte: indented
// two-space JSON, trailing newline, application/json.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func fail(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func failUnavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	fail(w, http.StatusServiceUnavailable, format, args...)
}

// ---- routed ingest ----

// ownerResult is one owner's outcome for a routed ingest.
type ownerResult struct {
	owner  string
	body   []byte // successful IngestResponse bytes (peers), nil for self
	local  *profstore.Job
	status int // HTTP status of a peer rejection, 0 otherwise
	err    error
}

func (c *Cluster) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBytes+1))
	if err != nil {
		fail(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxIngestBytes {
		fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxIngestBytes)
		return
	}
	var tags []string
	if t := r.URL.Query().Get("tags"); t != "" {
		tags = strings.Split(t, ",")
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		id = profstore.DeriveID(body)
	}
	owners := c.ring.Owners(id, c.cfg.Replicas)

	start := time.Now()
	results := make([]ownerResult, len(owners))
	sem := make(chan struct{}, c.cfg.FanOut)
	var wg sync.WaitGroup
	for i, owner := range owners {
		wg.Add(1)
		go func(i int, owner string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = c.ingestOne(owner, body, id, tags)
		}(i, owner)
	}
	wg.Wait()
	c.span("cluster/ingest", id, start, int64(len(body)))

	acked := 0
	var success *ownerResult
	var rejected *ownerResult // non-retryable 4xx from a peer or parse failure
	for i := range results {
		res := &results[i]
		if res.err == nil {
			acked++
			if success == nil {
				success = res
			}
			continue
		}
		if res.status >= 400 && res.status < 500 {
			rejected = res
		}
	}
	if acked >= c.quorum {
		if success.local != nil {
			writeJSON(w, profstore.IngestResponse{
				ID: success.local.ID, Ranks: success.local.Ranks,
				Salvaged: success.local.Salvaged, Warnings: success.local.Warnings,
				Tags: success.local.Tags,
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(success.body)
		return
	}
	c.quorumFails.Add(1)
	// Every replica of an unparseable document rejects it identically;
	// relay the permanent rejection instead of a retryable 503.
	if acked == 0 && rejected != nil {
		fail(w, rejected.status, "%v", rejected.err)
		return
	}
	failUnavailable(w, "write quorum not reached: %d/%d owners acked (need %d)", acked, len(owners), c.quorum)
}

// ingestOne lands the document on one owner: directly into the local
// store for self, via the retrying Poster for a peer.
func (c *Cluster) ingestOne(owner string, body []byte, id string, tags []string) ownerResult {
	res := ownerResult{owner: owner}
	if owner == c.cfg.Self {
		job, err := c.cfg.Store.Ingest(body, id, tags)
		res.local, res.err = job, err
		if err != nil && !isRetryable(err) {
			res.status = http.StatusBadRequest
		}
		return res
	}
	start := time.Now()
	c.peerReq.With(owner).Add(1)
	c.forwards.Add(1)
	_, respBody, err := c.posters[owner].PostXMLResult(body, id, tags)
	c.peerLat.With(owner).Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		c.peerErr.With(owner).Add(1)
		res.err = err
		res.status = profstore.HTTPStatus(err)
		return res
	}
	res.body = respBody
	return res
}

// isRetryable classifies a local ingest failure the way the HTTP layer
// does: lifecycle errors are the store's fault (503), parse errors the
// client's (400).
func isRetryable(err error) bool {
	return profstore.IsLifecycleErr(err)
}

// ---- scatter-gather queries ----

// peerGet fetches one peer-local URL with the retry schedule, recording
// latency and error metrics.
func (c *Cluster) peerGet(peer, path string) ([]byte, error) {
	var lastErr error
	attempts := c.cfg.Retry.Attempts()
	if c.cfg.Retry.Disable {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Retry.BackoffFor(attempt - 1))
		}
		start := time.Now()
		c.peerReq.With(peer).Add(1)
		resp, err := c.client.Get(peer + path)
		if err != nil {
			c.peerLat.With(peer).Observe(float64(time.Since(start).Nanoseconds()))
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		c.peerLat.With(peer).Observe(float64(time.Since(start).Nanoseconds()))
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode/100 != 2 {
			lastErr = fmt.Errorf("peer returned %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
			if resp.StatusCode < 500 {
				break // permanent
			}
			continue
		}
		return body, nil
	}
	c.peerErr.With(peer).Add(1)
	return nil, fmt.Errorf("storecluster: %s%s: %w", peer, path, lastErr)
}

// scatter fetches path from every peer concurrently (bounded by FanOut)
// and returns the bodies keyed by peer. Reads are strict: any peer
// failure fails the scatter, because a partial merge could silently
// drop that peer's exclusive jobs.
func (c *Cluster) scatter(op, path string) (map[string][]byte, error) {
	c.scatters.Add(1)
	type reply struct {
		peer string
		body []byte
		err  error
	}
	sem := make(chan struct{}, c.cfg.FanOut)
	replies := make(chan reply, len(c.peers))
	for _, peer := range c.peers {
		go func(peer string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			body, err := c.peerGet(peer, path)
			c.span("cluster/"+op, peer, start, int64(len(body)))
			replies <- reply{peer, body, err}
		}(peer)
	}
	out := make(map[string][]byte, len(c.peers))
	var firstErr error
	for range c.peers {
		rep := <-replies
		if rep.err != nil && firstErr == nil {
			firstErr = rep.err
		}
		out[rep.peer] = rep.body
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// localRollups is the member-side payload of /shard/rollups: the wire
// image of the local selection.
func (c *Cluster) localRollups(sel string) []profstore.WireJob {
	if sel == "" {
		return c.cfg.Store.WireJobs()
	}
	jobs := c.cfg.Store.Select(sel)
	out := make([]profstore.WireJob, len(jobs))
	for i, j := range jobs {
		out[i] = j.Wire()
	}
	return out
}

func (c *Cluster) handleShardRollups(w http.ResponseWriter, r *http.Request) {
	body, err := profstore.EncodeWireJobs(c.localRollups(r.URL.Query().Get("sel")))
	if err != nil {
		fail(w, http.StatusInternalServerError, "encoding rollups: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (c *Cluster) handleShardJobs(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(c.cfg.Store.JobMetas(r.URL.Query().Get("sel")))
	if err != nil {
		fail(w, http.StatusInternalServerError, "encoding jobs: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// gatherJobs merges the cluster-wide selection into reconstructed jobs:
// the router-side twin of Store.Select over the union corpus.
func (c *Cluster) gatherJobs(op, sel string) ([]*profstore.Job, error) {
	local := c.localRollups(sel)
	if len(c.peers) == 0 {
		return profstore.MergeWireJobs(local), nil
	}
	bodies, err := c.scatter(op, "/shard/rollups?sel="+queryEscape(sel))
	if err != nil {
		return nil, err
	}
	shards := make([][]profstore.WireJob, 0, len(bodies)+1)
	shards = append(shards, local)
	// Deterministic peer order (map iteration must not influence merge
	// input order; dedup makes it invariant anyway, belt and braces).
	for _, peer := range c.peers {
		wj, err := profstore.DecodeWireJobs(bodies[peer])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", peer, err)
		}
		shards = append(shards, wj)
	}
	return profstore.MergeWireJobs(shards...), nil
}

func (c *Cluster) handleAgg(w http.ResponseWriter, r *http.Request) {
	topN := 0
	if t := r.URL.Query().Get("top"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n <= 0 {
			fail(w, http.StatusBadRequest, "bad top=%q", t)
			return
		}
		topN = n
	}
	sel := r.URL.Query().Get("sel")
	jobs, err := c.gatherJobs("agg", sel)
	if err != nil {
		failUnavailable(w, "scatter failed: %v", err)
		return
	}
	rep := profstore.AggregateJobs(jobs, profstore.AggOptions{Sel: sel, TopN: topN})
	if r.URL.Query().Get("format") == "html" {
		profstore.WriteAggHTML(w, rep)
		return
	}
	writeJSON(w, rep)
}

func (c *Cluster) handleRegress(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	base, head := q.Get("base"), q.Get("head")
	if base == "" || head == "" {
		fail(w, http.StatusBadRequest, "base= and head= are required (job id, tag:T or cmd:C)")
		return
	}
	opts := profstore.RegressOptions{Base: base, Head: head}
	if t := q.Get("threshold"); t != "" {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil || v <= 0 {
			fail(w, http.StatusBadRequest, "bad threshold=%q", t)
			return
		}
		opts.Threshold = v
	}
	baseJobs, err := c.gatherJobs("regress", base)
	if err != nil {
		failUnavailable(w, "scatter failed: %v", err)
		return
	}
	headJobs, err := c.gatherJobs("regress", head)
	if err != nil {
		failUnavailable(w, "scatter failed: %v", err)
		return
	}
	rep := profstore.RegressJobs(baseJobs, headJobs, opts)
	if rep.BaseJobs == 0 || rep.HeadJobs == 0 {
		fail(w, http.StatusNotFound, "base matched %d job(s), head %d", rep.BaseJobs, rep.HeadJobs)
		return
	}
	if q.Get("format") == "html" {
		profstore.WriteRegressHTML(w, rep)
		return
	}
	writeJSON(w, rep)
}

func (c *Cluster) handleJobs(w http.ResponseWriter, r *http.Request) {
	sel := r.URL.Query().Get("sel")
	metas := c.cfg.Store.JobMetas(sel)
	if len(c.peers) > 0 {
		bodies, err := c.scatter("jobs", "/shard/jobs?sel="+queryEscape(sel))
		if err != nil {
			failUnavailable(w, "scatter failed: %v", err)
			return
		}
		seen := make(map[string]bool, len(metas))
		for _, m := range metas {
			seen[m.ID] = true
		}
		for _, peer := range c.peers {
			var peerMetas []profstore.JobMeta
			if err := json.Unmarshal(bodies[peer], &peerMetas); err != nil {
				failUnavailable(w, "scatter failed: %s: %v", peer, err)
				return
			}
			for _, m := range peerMetas {
				if !seen[m.ID] {
					seen[m.ID] = true
					metas = append(metas, m)
				}
			}
		}
		sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
	}
	if r.URL.Query().Get("format") == "html" {
		profstore.WriteJobsHTML(w, metas)
		return
	}
	writeJSON(w, metas)
}

func (c *Cluster) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if c.cfg.Store.Get(id) != nil {
		c.cfg.Local.ServeHTTP(w, r)
		return
	}
	// Not local: ask the owners that aren't us.
	var lastErr error
	for _, owner := range c.ring.Owners(id, c.cfg.Replicas) {
		if owner == c.cfg.Self {
			continue
		}
		start := time.Now()
		body, err := c.peerGet(owner, "/shard/job/"+id)
		c.span("cluster/job", owner, start, int64(len(body)))
		if err == nil {
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
		lastErr = err
	}
	if lastErr != nil && !strings.Contains(lastErr.Error(), "peer returned 404") {
		failUnavailable(w, "forward failed: %v", lastErr)
		return
	}
	fail(w, http.StatusNotFound, "no job %q", id)
}

func queryEscape(s string) string { return url.QueryEscape(s) }
