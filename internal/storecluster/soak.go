package storecluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/profstore"
	"ipmgo/internal/telemetry"
)

// This file is the cluster twin of the single-node kill/restart soak
// (`ipmserve -soak`): it launches N real ipmserve children in cluster
// mode over per-member WALs, sustains concurrent ingest through
// rotating routers, and SIGKILLs a member mid-ingest each cycle —
// restarting it and letting WAL recovery rebuild the shard — before a
// final graceful SIGTERM of the whole fleet. The run is gated on the
// cluster durability contract:
//
//   - zero lost acknowledged jobs: every profile any router acked with
//     a 2xx is present in /jobs after the last recovery;
//   - byte-identical queries from EVERY member: the recovered cluster
//     answers /agg, /jobs and /regress exactly like a never-killed
//     in-process single-node store over the same documents.
//
// Quorum writes make the first gate honest: an ack means R/2+1 owners
// persisted the document before the kill, so any single member's death
// cannot lose it. Content-derived ids make the second gate exact even
// for documents re-posted through a different router after a kill.

// SoakClusterOptions sizes a cluster kill/restart soak run.
type SoakClusterOptions struct {
	// ServerCmd is the argv of the child server; the harness appends
	// -addr, -wal, -peers, -self and -replicas. Typically the running
	// ipmserve binary itself (os.Executable).
	ServerCmd []string
	Members   int // cluster size (default 3)
	Replicas  int // copies per job (default 2)
	Jobs      int // synthetic profiles to ingest (default 120)
	Workers   int // concurrent ingest workers (default 4)
	Cycles    int // SIGKILL/restart cycles (default 3)
	// CompactEvery is forwarded to the children so snapshots and WAL
	// truncation happen under fire (default 32 appends; -1 disables).
	CompactEvery int
	Timeout      time.Duration // wall-clock budget (default 120s)
	Seed         uint64        // corpus seed (default 2011)
	Dir          string        // scratch dir (default: fresh temp, removed)
	Logf         func(format string, args ...any)
}

// SoakClusterReport summarises a cluster soak run.
type SoakClusterReport struct {
	Members  int
	Replicas int
	Jobs     int
	Kills    int
	Restarts int
	Acked    int   // jobs acknowledged with a 2xx by some router
	Retried  int64 // posts that needed more than one round
	AggBytes int   // size of the (verified identical) /agg body
	Elapsed  time.Duration
}

// clusterChild is one managed ipmserve cluster member subprocess.
type clusterChild struct {
	argv []string // full child argv including cluster flags
	addr string
	cmd  *exec.Cmd
}

func (c *clusterChild) start() error {
	cmd := exec.Command(c.argv[0], c.argv[1:]...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("soak-cluster: starting member %s: %w", c.addr, err)
	}
	c.cmd = cmd
	return nil
}

// waitReady polls /readyz until the member accepts writes.
func (c *clusterChild) waitReady(deadline time.Time) error {
	url := "http://" + c.addr + "/readyz"
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("soak-cluster: member %s not ready before deadline", c.addr)
}

// kill SIGKILLs the member — the crash being simulated — and reaps it.
func (c *clusterChild) kill() {
	c.cmd.Process.Kill()
	c.cmd.Wait()
	c.cmd = nil
}

// terminate sends SIGTERM and requires a clean exit.
func (c *clusterChild) terminate(deadline time.Time) error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("soak-cluster: SIGTERM %s: %w", c.addr, err)
	}
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		c.cmd = nil
		if err != nil {
			return fmt.Errorf("soak-cluster: member %s exited uncleanly after SIGTERM: %w", c.addr, err)
		}
		return nil
	case <-time.After(time.Until(deadline)):
		c.cmd.Process.Kill()
		<-done
		c.cmd = nil
		return fmt.Errorf("soak-cluster: member %s did not exit within deadline after SIGTERM", c.addr)
	}
}

// soakGet fetches one URL body, demanding a 200.
func soakGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// SoakCluster runs the cluster kill/restart soak. Any lost acknowledged
// job, query divergence from the single-node reference on any member,
// or unclean shutdown is an error.
func SoakCluster(opts SoakClusterOptions) (*SoakClusterReport, error) {
	if len(opts.ServerCmd) == 0 {
		return nil, fmt.Errorf("soak-cluster: ServerCmd is required")
	}
	if opts.Members <= 0 {
		opts.Members = 3
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > opts.Members {
		opts.Replicas = opts.Members
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 120
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Cycles <= 0 {
		opts.Cycles = 3
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 32
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 2011
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "storecluster-soak")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	start := time.Now()
	deadline := start.Add(opts.Timeout)
	rep := &SoakClusterReport{Members: opts.Members, Replicas: opts.Replicas, Jobs: opts.Jobs}

	// Reserve one port per member by binding and releasing it; Go
	// listeners set SO_REUSEADDR, so the rebinds race nothing but our
	// own dead children.
	addrs := make([]string, opts.Members)
	urls := make([]string, opts.Members)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return rep, err
		}
		addrs[i] = ln.Addr().String()
		urls[i] = "http://" + addrs[i]
		ln.Close()
	}
	peers := strings.Join(urls, ",")

	// Render the corpus once: the same bytes go to the cluster and the
	// in-process single-node reference store.
	type doc struct {
		xml  []byte
		id   string
		tags []string
	}
	docs := make([]doc, opts.Jobs)
	ref := profstore.New()
	for i := range docs {
		var buf bytes.Buffer
		if err := ipm.WriteXML(&buf, profstore.SyntheticProfile(opts.Seed, i)); err != nil {
			return rep, fmt.Errorf("soak-cluster: encoding job %d: %w", i, err)
		}
		xml := append([]byte(nil), buf.Bytes()...)
		d := doc{xml: xml, id: profstore.DeriveID(xml), tags: []string{"soak", fmt.Sprintf("batch:%d", i%2)}}
		docs[i] = d
		if _, err := ref.Ingest(d.xml, d.id, d.tags); err != nil {
			return rep, fmt.Errorf("soak-cluster: reference ingest %d: %w", i, err)
		}
	}

	// Launch the fleet. Every member gets the full membership and its
	// own WAL; restarts reuse the same argv so recovery replays the
	// member's snapshot + WAL into the same ring position.
	children := make([]*clusterChild, opts.Members)
	for i := range children {
		argv := append(append([]string{}, opts.ServerCmd...),
			"-addr", addrs[i],
			"-wal", filepath.Join(dir, fmt.Sprintf("member%d.wal", i)),
			"-peers", peers,
			"-self", urls[i],
			"-replicas", fmt.Sprint(opts.Replicas),
			"-compact-every", fmt.Sprint(opts.CompactEvery),
			"-snapshot-on-exit")
		children[i] = &clusterChild{argv: argv, addr: addrs[i]}
	}
	defer func() {
		for _, c := range children {
			if c.cmd != nil {
				c.kill()
			}
		}
	}()
	for _, c := range children {
		if err := c.start(); err != nil {
			return rep, err
		}
	}
	for _, c := range children {
		if err := c.waitReady(deadline); err != nil {
			return rep, err
		}
	}
	logf("soak-cluster: %d member(s) on %s (replicas=%d), %d jobs, %d workers, %d kill cycles",
		opts.Members, peers, opts.Replicas, opts.Jobs, opts.Workers, opts.Cycles)

	// Ingest workers: each owns a shard of the corpus and retries every
	// document until some router acks it, rotating the router per round
	// so a dead member never wedges a worker. Acked ids are recorded
	// only on a 2xx: the zero-loss gate below is exactly "acked implies
	// present after recovery".
	var (
		acked   atomic.Int64
		retried atomic.Int64
		ackMu   sync.Mutex
		ackedID = make(map[string]bool, opts.Jobs)
	)
	errc := make(chan error, opts.Workers+1)
	var workers sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			posters := make([]*profstore.Poster, opts.Members)
			for m := range posters {
				posters[m] = &profstore.Poster{
					URL: urls[m],
					Policy: faultsim.RetryPolicy{
						MaxAttempts: 2,
						Backoff:     faultsim.Dur(10 * time.Millisecond),
						MaxBackoff:  faultsim.Dur(100 * time.Millisecond),
					},
					Client: &http.Client{Timeout: 5 * time.Second},
				}
			}
			for i := w; i < len(docs); i += opts.Workers {
				d := docs[i]
				rounds := 0
				for {
					if time.Now().After(deadline) {
						errc <- fmt.Errorf("soak-cluster: deadline while ingesting job %d", i)
						return
					}
					_, err := posters[(i+rounds)%opts.Members].PostXML(d.xml, d.id, d.tags)
					if err == nil {
						break
					}
					rounds++
					time.Sleep(25 * time.Millisecond) // a member is restarting
				}
				if rounds > 0 {
					retried.Add(1)
				}
				ackMu.Lock()
				ackedID[d.id] = true
				ackMu.Unlock()
				acked.Add(1)
			}
		}(w)
	}

	// Killer: SIGKILL a rotating victim each time the ack stream
	// crosses the next threshold — evenly spaced so every cycle lands
	// mid-ingest — then restart it and let recovery replay its WAL.
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for c := 1; c <= opts.Cycles; c++ {
			threshold := int64(c * opts.Jobs / (opts.Cycles + 1))
			for acked.Load() < threshold {
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("soak-cluster: deadline waiting for kill threshold %d", threshold)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			victim := (c - 1) % opts.Members
			logf("soak-cluster: cycle %d/%d: SIGKILL member %d at %d acked job(s)", c, opts.Cycles, victim, acked.Load())
			children[victim].kill()
			rep.Kills++
			if err := children[victim].start(); err != nil {
				errc <- err
				return
			}
			if err := children[victim].waitReady(deadline); err != nil {
				errc <- err
				return
			}
			rep.Restarts++
		}
	}()

	workers.Wait()
	<-killerDone
	rep.Acked = int(acked.Load())
	rep.Retried = retried.Load()
	select {
	case err := <-errc:
		return rep, err
	default:
	}

	// Graceful exit of the whole fleet under SIGTERM, then one more
	// cold recovery of every member: the verified corpus below has
	// survived both crash and clean shutdown on every shard.
	for _, c := range children {
		if err := c.terminate(deadline); err != nil {
			return rep, err
		}
	}
	for _, c := range children {
		if err := c.start(); err != nil {
			return rep, err
		}
	}
	for _, c := range children {
		if err := c.waitReady(deadline); err != nil {
			return rep, err
		}
	}
	rep.Restarts += opts.Members

	// Gate 1: zero lost acknowledged jobs, asked through every router
	// (scatter-gather reads are strict, so a 200 also proves every
	// member answered).
	for m, u := range urls {
		jobsBody, err := soakGet(u + "/jobs")
		if err != nil {
			return rep, fmt.Errorf("soak-cluster: member %d: %w", m, err)
		}
		var metas []profstore.JobMeta
		if err := json.Unmarshal(jobsBody, &metas); err != nil {
			return rep, fmt.Errorf("soak-cluster: decoding /jobs from member %d: %w", m, err)
		}
		present := make(map[string]bool, len(metas))
		for _, meta := range metas {
			present[meta.ID] = true
		}
		lost := 0
		for id := range ackedID {
			if !present[id] {
				lost++
			}
		}
		if lost > 0 {
			return rep, fmt.Errorf("soak-cluster: member %d: %d acknowledged job(s) lost across %d kill(s)", m, lost, rep.Kills)
		}
		if len(metas) != opts.Jobs {
			return rep, fmt.Errorf("soak-cluster: member %d sees %d jobs, want %d", m, len(metas), opts.Jobs)
		}
	}

	// Gate 2: byte-identical queries from every member versus the
	// never-killed single-node reference.
	refSrv := profstore.NewServer(ref, telemetry.NewRegistry())
	refLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	refHS := &http.Server{Handler: refSrv.Handler()}
	go refHS.Serve(refLn)
	defer refHS.Close()
	refBase := "http://" + refLn.Addr().String()
	for _, q := range []string{
		"/agg?sel=tag:soak",
		"/jobs",
		"/regress?base=tag:batch:0&head=tag:batch:1&threshold=5",
	} {
		want, err := soakGet(refBase + q)
		if err != nil {
			return rep, err
		}
		for m, u := range urls {
			got, err := soakGet(u + q)
			if err != nil {
				return rep, fmt.Errorf("soak-cluster: member %d: %w", m, err)
			}
			if !bytes.Equal(got, want) {
				return rep, fmt.Errorf("soak-cluster: %s from member %d differs from the never-killed reference (%d vs %d bytes)", q, m, len(got), len(want))
			}
		}
		if strings.HasPrefix(q, "/agg") && rep.AggBytes == 0 {
			rep.AggBytes = len(want)
		}
	}

	for _, c := range children {
		if err := c.terminate(deadline); err != nil {
			return rep, err
		}
	}
	rep.Elapsed = time.Since(start)
	logf("soak-cluster: ok — %d jobs acked (%d retried through kill windows), %d kills, %d restarts, queries byte-identical on all %d members, in %v",
		rep.Acked, rep.Retried, rep.Kills, rep.Restarts, opts.Members, rep.Elapsed.Round(time.Millisecond))
	return rep, nil
}
