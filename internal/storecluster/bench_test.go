package storecluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ipmgo/internal/ipm"
	"ipmgo/internal/profstore"
	"ipmgo/internal/telemetry"
)

// The cluster benchmarks back the tentpole perf claim: ingest
// throughput scales with shard count. Every member persists to its own
// WAL with SyncEvery=1 — the durability configuration `make serve`
// ships — so the per-member bottleneck is the fsync serialization a
// single node cannot escape, and adding shards adds independent WALs
// whose fsyncs overlap. /agg is the counterweight: scatter-gather adds
// peer round-trips per query, so read latency is the price of the
// write scaling.

// benchCluster brings up n WAL-backed members (R=1: placement spread,
// no replication overhead — the pure sharding measurement) and returns
// the member base URLs.
func benchCluster(b *testing.B, n int) []string {
	b.Helper()
	dir := b.TempDir()
	urls := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		store, _, err := profstore.OpenStore(
			filepath.Join(dir, fmt.Sprintf("member%d.wal", i)),
			profstore.StoreOptions{SyncEvery: 1})
		if err != nil {
			b.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		cl, err := New(Config{
			Self:     urls[i],
			Members:  urls,
			Replicas: 1,
			Store:    store,
			Local:    profstore.NewServer(store, reg).Handler(),
			Registry: reg,
			Timeout:  10 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := &http.Server{Handler: cl.Handler()}
		go srv.Serve(listeners[i])
		b.Cleanup(func() {
			srv.Close()
			store.Close()
		})
	}
	return urls
}

// benchDocs pre-renders the corpus (rendering cost is not measured).
func benchDocs(b *testing.B, n int) [][]byte {
	b.Helper()
	docs := make([][]byte, n)
	for i := range docs {
		var buf bytes.Buffer
		if err := ipm.WriteXML(&buf, profstore.SyntheticProfile(42, i)); err != nil {
			b.Fatal(err)
		}
		docs[i] = buf.Bytes()
	}
	return docs
}

// benchSmallDocs renders a corpus of minimal-but-valid IPM logs. The
// ingest benchmark wants the WAL fsync — the per-member serialization
// sharding exists to spread — to dominate, not the XML parse CPU a
// single benchmark core would otherwise saturate; a small document
// keeps the parse in the tens of microseconds so the measured scaling
// is the storage layer's, not the parser's.
func benchSmallDocs(b *testing.B, n int) [][]byte {
	b.Helper()
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = []byte(fmt.Sprintf(
			`<ipm_log version="2.0" command="./bench%d" ntasks="1" nhosts="1" wallclock="1.5">`+
				`<task mpi_rank="0" host="n0" wallclock="1.5"><region name="ipm_global">`+
				`<func name="MPI_Allreduce" bytes="1024" count="%d" ttot="0.25" tmin="0.01" tmax="0.02"></func>`+
				`</region></task></ipm_log>`, i, 10+i))
	}
	return docs
}

func benchPost(client *http.Client, url string, doc []byte) error {
	resp, err := client.Post(url+"/ingest", "application/xml", bytes.NewReader(doc))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest: %d", resp.StatusCode)
	}
	return nil
}

// BenchmarkClusterIngest measures durable ingest throughput end to end
// (HTTP in, consistent-hash placement, WAL append + fsync on the
// owner) at 1 and 4 shards. The corpus is placement-aware-posted: the
// ring is deterministic and public, so a smart client sends each
// document straight to its owner, the way the router itself would, and
// the single benchmark core is not burned re-proxying. With 1 shard
// every fsync serializes behind one WAL's walMu; with 4 shards the
// same write load lands on 4 independent WALs whose fsyncs overlap.
func BenchmarkClusterIngest(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			urls := benchCluster(b, shards)
			docs := benchSmallDocs(b, 64)
			ring, err := NewRing(urls)
			if err != nil {
				b.Fatal(err)
			}
			owner := make([]string, len(docs))
			for i, doc := range docs {
				owner[i] = ring.Owners(profstore.DeriveID(doc), 1)[0]
			}
			client := profstore.SharedClient(10 * time.Second)
			// Warm every member: connections established, ring state hot.
			for i, doc := range docs {
				if err := benchPost(client, owner[i], doc); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			b.SetParallelism(16) // in-flight posts even on one core: fsync is I/O wait
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)) % len(docs)
					if err := benchPost(client, owner[i], docs[i]); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkClusterAgg measures scatter-gather /agg latency at 1 and 4
// shards over a 64-job corpus: per-member rollups are memoized, so the
// measured cost is the wire round-trips plus the router-side merge —
// the read-path price of sharding the writes.
func BenchmarkClusterAgg(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			urls := benchCluster(b, shards)
			docs := benchDocs(b, 64)
			client := profstore.SharedClient(10 * time.Second)
			for i, doc := range docs {
				if err := benchPost(client, urls[i%len(urls)], doc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Get(urls[i%len(urls)] + "/agg?top=5")
				if err != nil {
					b.Fatal(err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || len(body) == 0 {
					b.Fatalf("/agg: %d (%d bytes)", resp.StatusCode, len(body))
				}
			}
		})
	}
}
