// Package storecluster shards the profile store across N ipmserve
// members: a deterministic consistent-hash ring places each
// content-hash job id on R members, any member routes /ingest to the
// owners and answers /agg, /regress and /jobs by parallel
// scatter-gather over compact per-job rollups — never raw XML — and the
// merge is the store's own count-independent rollup merge, so a cluster
// of any size answers byte-identically to a single node holding the
// whole corpus (see DESIGN.md "Cluster mode").
package storecluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerMember is the number of ring points each member projects.
// 128 keeps the placement spread within ~10% of uniform for small
// clusters while the ring stays tiny (N*128 points).
const vnodesPerMember = 128

// ringPoint is one virtual node: the hash position and the index of the
// member (into the canonical member list) that owns it.
type ringPoint struct {
	hash   uint64
	member int
}

// Ring is an immutable consistent-hash ring over member base URLs.
// Placement depends only on the SET of member URLs — the constructor
// canonicalises order — and on FNV-1a, so two processes (or the same
// process across restarts) built from the same membership place every
// job id identically: no map iteration, no seeding, no time.
type Ring struct {
	members []string // canonical: sorted, deduplicated
	points  []ringPoint
}

// hash64 is the ring's one hash function: FNV-1a over the key bytes,
// finished with the splitmix64 mixer. Ring keys are nearly identical
// strings (same URL prefix, small vnode suffix) and raw FNV leaves
// enough structure in the high bits to skew arc lengths badly; the
// finisher's avalanche restores a uniform spread. Deterministic and
// unseeded, like everything else about placement.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRing builds the ring over the given member base URLs. Order and
// duplicates in the input are irrelevant; at least one member is
// required.
func NewRing(members []string) (*Ring, error) {
	canon := append([]string(nil), members...)
	sort.Strings(canon)
	// Deduplicate in place (the list is sorted).
	w := 0
	for i, m := range canon {
		if m == "" {
			return nil, fmt.Errorf("storecluster: empty member URL")
		}
		if i == 0 || m != canon[i-1] {
			canon[w] = m
			w++
		}
	}
	canon = canon[:w]
	if len(canon) == 0 {
		return nil, fmt.Errorf("storecluster: ring needs at least one member")
	}
	r := &Ring{
		members: canon,
		points:  make([]ringPoint, 0, len(canon)*vnodesPerMember),
	}
	for mi, m := range canon {
		for v := 0; v < vnodesPerMember; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m, v)),
				member: mi,
			})
		}
	}
	// Tie-break equal hashes by member index (deterministic even in the
	// astronomically unlikely event of a vnode collision).
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the canonical (sorted) member list. Shared; do not
// mutate.
func (r *Ring) Members() []string { return r.members }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owners returns the base URLs of the R distinct members owning the
// job id, in ring-walk order (the first is the primary). R is clamped
// to the member count.
func (r *Ring) Owners(id string, replicas int) []string {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(r.members) {
		replicas = len(r.members)
	}
	h := hash64(id)
	// First point at or after h, wrapping.
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, replicas)
	seen := make(map[int]bool, replicas)
	for i := 0; len(owners) < replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		owners = append(owners, r.members[p.member])
	}
	return owners
}

// Owns reports whether member is one of the R owners of id.
func (r *Ring) Owns(id, member string, replicas int) bool {
	for _, o := range r.Owners(id, replicas) {
		if o == member {
			return true
		}
	}
	return false
}

// PlacementHash fingerprints the primary placement of a corpus of ids:
// FNV-1a over every (id, primary-owner) pair in id order. Two ring
// implementations — or the same ring in two processes — agree on every
// placement iff the fingerprints match; the ring stability test pins it
// to a golden value.
func (r *Ring) PlacementHash(ids []string) uint64 {
	h := fnv.New64a()
	for _, id := range ids {
		h.Write([]byte(id))
		h.Write([]byte{0})
		h.Write([]byte(r.Owners(id, 1)[0]))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
