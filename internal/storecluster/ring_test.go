package storecluster

import (
	"fmt"
	"testing"
)

// splitmix64 mirrors the loadgen generator: a tiny deterministic PRNG
// for synthesising job-id corpora without seeding dependence.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// corpus returns n content-hash-shaped job ids ("j%016x").
func corpus(n int) []string {
	ids := make([]string, n)
	x := uint64(2011)
	for i := range ids {
		x = splitmix64(x)
		ids[i] = fmt.Sprintf("j%016x", x)
	}
	return ids
}

func membersN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 9001+i)
	}
	return out
}

func mustRing(t *testing.T, members []string) *Ring {
	t.Helper()
	r, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingRemapBound is the consistent-hashing contract: growing or
// shrinking the membership by one remaps only the keys whose arc moved —
// about 1/N of the corpus, never a wholesale reshuffle.
func TestRingRemapBound(t *testing.T) {
	ids := corpus(10000)
	for _, n := range []int{2, 3, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			before := mustRing(t, membersN(n))
			grown := mustRing(t, membersN(n+1))
			// Shrink: drop the first member instead of the last so the test
			// doesn't just undo the growth case.
			shrunk := mustRing(t, membersN(n)[1:])

			movedGrow, movedShrink := 0, 0
			for _, id := range ids {
				b := before.Owners(id, 1)[0]
				if grown.Owners(id, 1)[0] != b {
					movedGrow++
				}
				if n > 1 && shrunk.Owners(id, 1)[0] != b {
					movedShrink++
				}
			}
			// Ideal is len(ids)/(n+1) on growth and len(ids)/n on shrink;
			// 64 vnodes keeps the deviation small. Allow 1.5x.
			maxGrow := 3 * len(ids) / (2 * (n + 1))
			if movedGrow > maxGrow {
				t.Errorf("adding 1 member to %d remapped %d/%d ids (max %d)", n, movedGrow, len(ids), maxGrow)
			}
			if n > 1 {
				maxShrink := 3 * len(ids) / (2 * n)
				if movedShrink > maxShrink {
					t.Errorf("removing 1 member from %d remapped %d/%d ids (max %d)", n, movedShrink, len(ids), maxShrink)
				}
			}
			if movedGrow == 0 {
				t.Error("growth remapped nothing; ring is not consistent-hashing")
			}
		})
	}
}

// TestRingOrderInvariance: placement depends on the member SET only.
func TestRingOrderInvariance(t *testing.T) {
	ids := corpus(10000)
	ms := membersN(4)
	permutations := [][]string{
		{ms[0], ms[1], ms[2], ms[3]},
		{ms[3], ms[2], ms[1], ms[0]},
		{ms[2], ms[0], ms[3], ms[1]},
		{ms[1], ms[3], ms[0], ms[2], ms[1], ms[0]}, // duplicates collapse too
	}
	want := mustRing(t, permutations[0]).PlacementHash(ids)
	for i, perm := range permutations[1:] {
		if got := mustRing(t, perm).PlacementHash(ids); got != want {
			t.Errorf("permutation %d: placement hash %#x, want %#x", i+1, got, want)
		}
	}
}

// TestRingPlacementGolden pins the placement fingerprint of a fixed
// corpus on a fixed membership. The constant was computed once and must
// never drift: a changed value means every already-placed job in a real
// cluster would move, and that a ring built in another process (or a
// future refactor) would disagree with this one.
func TestRingPlacementGolden(t *testing.T) {
	const want = uint64(0xc3174bc76bd5ec15)
	got := mustRing(t, membersN(3)).PlacementHash(corpus(10000))
	if got != want {
		t.Fatalf("placement hash = %#x, want %#x (placement is no longer process-stable)", got, want)
	}
}

// TestRingBalance: 64 vnodes must keep the per-member share of a 10k
// corpus within 2x of ideal — a loose bound, but one a broken hash or a
// sorted-points bug blows through immediately.
func TestRingBalance(t *testing.T) {
	ids := corpus(10000)
	r := mustRing(t, membersN(4))
	counts := map[string]int{}
	for _, id := range ids {
		counts[r.Owners(id, 1)[0]]++
	}
	ideal := len(ids) / r.Len()
	for m, c := range counts {
		if c > 2*ideal || c < ideal/2 {
			t.Errorf("member %s owns %d of %d ids (ideal %d)", m, c, len(ids), ideal)
		}
	}
	if len(counts) != r.Len() {
		t.Errorf("only %d of %d members own anything", len(counts), r.Len())
	}
}

// TestRingOwners: distinct owners, clamping, and determinism of the
// replica walk.
func TestRingOwners(t *testing.T) {
	r := mustRing(t, membersN(3))
	for _, id := range corpus(100) {
		owners := r.Owners(id, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%s, 2) = %v", id, owners)
		}
		// The primary is the first element of every wider walk.
		if r.Owners(id, 1)[0] != owners[0] {
			t.Fatalf("primary of %s unstable across replica counts", id)
		}
		if got := r.Owners(id, 99); len(got) != 3 {
			t.Fatalf("Owners(%s, 99) = %v, want all 3 members", id, got)
		}
		if !r.Owns(id, owners[1], 2) || r.Owns(id, owners[1], 1) {
			t.Fatalf("Owns disagrees with Owners for %s", id)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}); err == nil {
		t.Error("empty member URL accepted")
	}
}
