// Package ipmio is IPM's file-I/O monitoring layer (paper Section II):
// wrappers over the simulated filesystem that time open/read/write/
// close/unlink into the performance hash table, with the transferred
// byte count as the signature attribute — the same anatomy as the MPI
// and CUDA wrappers, applied to the POSIX I/O domain.
package ipmio

import (
	"ipmgo/internal/des"
	"ipmgo/internal/iosim"

	"ipmgo/internal/ipm"
)

// FS wraps an iosim.FS with IPM monitoring; handles it opens are
// monitored too.
type FS struct {
	inner *iosim.FS
	mon   *ipm.Monitor
}

// Wrap interposes IPM between the application and the filesystem.
func Wrap(inner *iosim.FS, mon *ipm.Monitor) *FS {
	return &FS{inner: inner, mon: mon}
}

// Pre-hashed signature handles, one per monitored I/O symbol.
var (
	refOpen   = ipm.NewSigRef("fopen")
	refUnlink = ipm.NewSigRef("unlink")
	refWrite  = ipm.NewSigRef("fwrite")
	refRead   = ipm.NewSigRef("fread")
	refSeek   = ipm.NewSigRef("fseek")
	refClose  = ipm.NewSigRef("fclose")
)

func (f *FS) timed(ref ipm.SigRef, bytes int64, fn func()) {
	begin := f.mon.Now()
	fn()
	f.mon.ObserveRef(ref, bytes, f.mon.Now()-begin)
}

// Open wraps fopen.
func (f *FS) Open(proc *des.Proc, name string, create bool) (*Handle, error) {
	var h *iosim.Handle
	var err error
	f.timed(refOpen, 0, func() { h, err = f.inner.Open(proc, name, create) })
	if err != nil {
		return nil, err
	}
	return &Handle{inner: h, fs: f}, nil
}

// Unlink wraps unlink.
func (f *FS) Unlink(proc *des.Proc, name string) error {
	var err error
	f.timed(refUnlink, 0, func() { err = f.inner.Unlink(proc, name) })
	return err
}

// Handle is a monitored file handle.
type Handle struct {
	inner *iosim.Handle
	fs    *FS
}

// Write wraps fwrite.
func (h *Handle) Write(data []byte) (int, error) {
	var n int
	var err error
	h.fs.timed(refWrite, int64(len(data)), func() { n, err = h.inner.Write(data) })
	return n, err
}

// Read wraps fread.
func (h *Handle) Read(buf []byte) (int, error) {
	var n int
	var err error
	h.fs.timed(refRead, int64(len(buf)), func() { n, err = h.inner.Read(buf) })
	return n, err
}

// SeekTo wraps fseek.
func (h *Handle) SeekTo(offset int64) error {
	var err error
	h.fs.timed(refSeek, 0, func() { err = h.inner.SeekTo(offset) })
	return err
}

// Close wraps fclose.
func (h *Handle) Close() error {
	var err error
	h.fs.timed(refClose, 0, func() { err = h.inner.Close() })
	return err
}

// Size returns the file size (not monitored; no host call in the real
// inventory).
func (h *Handle) Size() int64 { return h.inner.Size() }

// Name returns the file path.
func (h *Handle) Name() string { return h.inner.Name() }
