package ipmio

import (
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/iosim"

	"ipmgo/internal/ipm"
)

func run(t *testing.T, fn func(fs *FS, p *des.Proc)) *ipm.Monitor {
	t.Helper()
	e := des.NewEngine()
	inner := iosim.NewFS(e, iosim.GPFSScratch())
	var mon *ipm.Monitor
	e.Spawn("rank0", func(p *des.Proc) {
		mon = ipm.NewMonitor(0, "dirac1", "app", p.Now, 0)
		mon.Start()
		fn(Wrap(inner, mon), p)
		mon.Stop()
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return mon
}

func stat(mon *ipm.Monitor, name string) (ipm.Stats, int64) {
	var s ipm.Stats
	var bytes int64
	for _, e := range mon.Table().Entries() {
		if e.Sig.Name == name {
			s.Merge(e.Stats)
			bytes = e.Sig.Bytes
		}
	}
	return s, bytes
}

func TestIOEventsRecorded(t *testing.T) {
	mon := run(t, func(fs *FS, p *des.Proc) {
		h, err := fs.Open(p, "/scratch/ckpt", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(make([]byte, 1<<20)); err != nil {
			t.Fatal(err)
		}
		if err := h.SeekTo(0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<20)
		if _, err := h.Read(buf); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink(p, "/scratch/ckpt"); err != nil {
			t.Fatal(err)
		}
	})
	for _, name := range []string{"fopen", "fwrite", "fread", "fseek", "fclose", "unlink"} {
		if s, _ := stat(mon, name); s.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, s.Count)
		}
	}
	// Byte attributes on the data calls.
	if _, bytes := stat(mon, "fwrite"); bytes != 1<<20 {
		t.Errorf("fwrite bytes = %d", bytes)
	}
	// fwrite time reflects the bandwidth model (1 MiB at ~1.2 GB/s).
	if s, _ := stat(mon, "fwrite"); s.Total < 500*time.Microsecond {
		t.Errorf("fwrite total = %v, want ~0.9ms", s.Total)
	}
	// Domain classification: I/O is "other" next to MPI/CUDA.
	if ipm.Classify("fwrite") != ipm.DomainOther {
		t.Error("fwrite misclassified")
	}
}

func TestFunctionalityPreservedUnderMonitoring(t *testing.T) {
	run(t, func(fs *FS, p *des.Proc) {
		h, _ := fs.Open(p, "/f", true)
		h.Write([]byte("abc"))
		h.SeekTo(0)
		buf := make([]byte, 3)
		n, _ := h.Read(buf)
		if n != 3 || string(buf) != "abc" {
			t.Errorf("read = %q", buf[:n])
		}
		if h.Size() != 3 || h.Name() != "/f" {
			t.Error("metadata wrong")
		}
	})
}

func TestErrorsPassThrough(t *testing.T) {
	run(t, func(fs *FS, p *des.Proc) {
		if _, err := fs.Open(p, "/missing", false); err == nil {
			t.Error("missing open accepted")
		}
		if err := fs.Unlink(p, "/missing"); err == nil {
			t.Error("missing unlink accepted")
		}
	})
}
