package experiments

import (
	"fmt"
	"strings"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/ipm"
	"ipmgo/internal/workloads"
)

// Fig11Result holds the Amber PMEMD profile and the headline metrics the
// paper reads off it.
type Fig11Result struct {
	Profile *ipm.JobProfile
	Banner  string

	GPUPct        float64 // paper: 35.96
	ThreadSyncPct float64 // paper: 22.50
	HostIdlePct   float64 // paper: 0.08
	DistinctKerns int     // paper: 39
	// Top kernel shares of total GPU time, by name.
	KernelShare map[string]float64
	// Imbalance (max/avg across ranks) of selected kernels.
	Imbalance map[string]float64
}

// amberGPUTime sums the per-stream exec pseudo entries.
func amberGPUTime(jp *ipm.JobProfile) time.Duration {
	var g time.Duration
	for _, ft := range jp.FuncTotals() {
		if strings.HasPrefix(ft.Name, "@CUDA_EXEC_STRM") && !strings.Contains(ft.Name, ":") {
			g += ft.Stats.Total
		}
	}
	return g
}

// Fig11 runs the Amber model (16 nodes, 10000 steps; quick: 4 nodes, 500
// steps) under full monitoring and extracts the paper's metrics.
func Fig11(o Options) (*Fig11Result, error) {
	nodes, steps := 16, 10000
	if o.Quick {
		// Enough steps that startup (context init, device queries) does
		// not distort the steady-state percentages too far.
		nodes, steps = 4, 2500
	}
	cfg := cluster.Dirac(nodes, 1)
	cfg.Monitor = true
	cfg.CUDA = monitoringFor(true, true)
	cfg.Runtime = workloads.AmberRuntimeOptions()
	cfg.Metrics = o.Metrics
	o.applyQueue(&cfg)
	cfg.Command = "pmemd.cuda_MPI -O -i mdin -c inpcrd.equil"
	cfg.NoiseSeed = o.Seed + 7
	cfg.NoiseAmp = 0.01
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.Amber(env, workloads.AmberConfig{Steps: steps}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		return nil, err
	}
	jp := res.Profile
	jp.Start = "Tue Sep 28 12:35:09 2010"
	jp.Stop = "Tue Sep 28 12:35:55 2010"

	wall := jp.WallclockSpread().Total
	gpu := amberGPUTime(jp)

	out := &Fig11Result{
		Profile:     jp,
		GPUPct:      pct(gpu, wall),
		HostIdlePct: jp.HostIdlePercent(),
		KernelShare: make(map[string]float64),
		Imbalance:   make(map[string]float64),
	}
	out.ThreadSyncPct = pct(jp.FuncSpread("cudaThreadSynchronize").Total, wall)

	kernels := make(map[string]time.Duration)
	for _, ft := range jp.FuncTotals() {
		if i := strings.Index(ft.Name, ":"); i >= 0 && strings.HasPrefix(ft.Name, "@CUDA_EXEC_STRM") {
			k := ft.Name[i+1:]
			if k != "cufft_z2z_kernel" {
				kernels[k] += ft.Stats.Total
			}
		}
	}
	out.DistinctKerns = len(kernels)
	for _, k := range []string{"CalculatePMEOrthogonalNonbondForces", "ReduceForces", "PMEShake", "ClearForces", "PMEUpdate"} {
		out.KernelShare[k] = pct(kernels[k], gpu)
		out.Imbalance[k] = jp.Imbalance(ipm.ExecKernelName(0, k))
	}

	var sb strings.Builder
	if err := ipm.WriteBanner(&sb, jp, ipm.BannerOptions{Full: true, MaxRows: 20}); err != nil {
		return nil, err
	}
	out.Banner = sb.String()
	return out, nil
}

// FormatFig11 renders the banner plus the derived metrics compared to the
// paper's values.
func FormatFig11(r *Fig11Result) string {
	var sb strings.Builder
	sb.WriteString(r.Banner)
	fmt.Fprintf(&sb, "\nDerived metrics (paper values in parentheses):\n")
	fmt.Fprintf(&sb, "  GPU utilisation        : %6.2f %%  (35.96 %%)\n", r.GPUPct)
	fmt.Fprintf(&sb, "  cudaThreadSynchronize  : %6.2f %%  (22.50 %%)\n", r.ThreadSyncPct)
	fmt.Fprintf(&sb, "  host idle              : %6.2f %%  (0.08 %%)\n", r.HostIdlePct)
	fmt.Fprintf(&sb, "  distinct GPU kernels   : %6d    (39)\n", r.DistinctKerns)
	fmt.Fprintf(&sb, "  kernel shares of GPU time:\n")
	for _, k := range []string{"CalculatePMEOrthogonalNonbondForces", "ReduceForces", "PMEShake", "ClearForces", "PMEUpdate"} {
		fmt.Fprintf(&sb, "    %-38s %6.2f %%   imbalance %.2fx\n", k, r.KernelShare[k], r.Imbalance[k])
	}
	fmt.Fprintf(&sb, "  (paper shares: 37/18/10/8/7 %%; ReduceForces/ClearForces imbalance up to 1.55x)\n")
	return sb.String()
}
