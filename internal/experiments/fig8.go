package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/parallel"
	"ipmgo/internal/workloads"
)

// Fig8Result summarises the runtime-dilation ensemble: the distribution
// of HPL runtimes with and without IPM monitoring.
type Fig8Result struct {
	Runs          int
	Bare          []time.Duration
	Monitored     []time.Duration
	MeanBare      time.Duration
	MeanMon       time.Duration
	StddevBare    time.Duration
	StddevMon     time.Duration
	DilationPct   float64 // (meanMon-meanBare)/meanBare * 100
	BelowOneSigma bool    // dilation below the bare run-to-run sigma
}

func meanStd(xs []time.Duration) (time.Duration, time.Duration) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	mean := sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		d := float64(x) - mean
		v += d * d
	}
	v /= float64(len(xs))
	return time.Duration(mean), time.Duration(math.Sqrt(v))
}

// Fig8 runs the HPL ensemble (paper: 120 monitored + 120 bare runs on 16
// nodes) and measures the application-level runtime dilation of
// monitoring. Quick mode uses 12+12 runs at reduced scale.
func Fig8(o Options) (*Fig8Result, error) {
	runs, nodes := 120, 16
	hpl := workloads.DefaultHPL()
	if o.Quick {
		runs, nodes = 12, 4
		hpl.Iterations = 12
		hpl.Scale = 0.05
	}
	res := &Fig8Result{Runs: runs}
	// The 2*runs trials (bare and monitored per ensemble member) are fully
	// independent — each owns its DES engine, noise model and monitors —
	// so they run on the worker pool; Map collects wallclocks by trial
	// index, keeping the ensemble order (and thus the output bytes)
	// identical at any worker count.
	walls, err := parallel.Map(2*runs, o.workers(), func(t int) (time.Duration, error) {
		i, monitored := t/2, t%2 == 1
		cfg := cluster.Dirac(nodes, 1)
		cfg.Monitor = monitored
		cfg.CUDA = monitoringFor(true, true)
		cfg.Metrics = o.Metrics
		o.applyQueue(&cfg)
		cfg.Command = "./xhpl.cuda"
		cfg.NoiseSeed = o.Seed + int64(i) + 1
		cfg.NoiseAmp = 0.03
		r, err := cluster.Run(cfg, func(env *cluster.Env) {
			if err := workloads.HPL(env, hpl); err != nil {
				panic(err)
			}
		})
		if err != nil {
			return 0, fmt.Errorf("fig8 run %d: %w", i, err)
		}
		return r.Wallclock, nil
	})
	if err != nil {
		return nil, err
	}
	for t, w := range walls {
		if t%2 == 1 {
			res.Monitored = append(res.Monitored, w)
		} else {
			res.Bare = append(res.Bare, w)
		}
	}
	res.MeanBare, res.StddevBare = meanStd(res.Bare)
	res.MeanMon, res.StddevMon = meanStd(res.Monitored)
	res.DilationPct = 100 * float64(res.MeanMon-res.MeanBare) / float64(res.MeanBare)
	res.BelowOneSigma = res.MeanMon-res.MeanBare < res.StddevBare
	return res, nil
}

// FormatFig8 renders the result with an ASCII histogram like the paper's
// Fig. 8.
func FormatFig8(r *Fig8Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 8: HPL runtime with and without IPM (%d runs each)\n", r.Runs)
	fmt.Fprintf(&sb, "mean without IPM : %10.3f s  (sigma %.3f s)\n", r.MeanBare.Seconds(), r.StddevBare.Seconds())
	fmt.Fprintf(&sb, "mean with IPM    : %10.3f s  (sigma %.3f s)\n", r.MeanMon.Seconds(), r.StddevMon.Seconds())
	fmt.Fprintf(&sb, "runtime dilation : %10.4f %%  (paper: 0.21 %%)\n", r.DilationPct)
	fmt.Fprintf(&sb, "below run-to-run variability: %v\n\n", r.BelowOneSigma)

	// Shared histogram over both distributions.
	all := append(append([]time.Duration(nil), r.Bare...), r.Monitored...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	lo, hi := all[0], all[len(all)-1]
	const bins = 16
	width := (hi - lo) / bins
	if width <= 0 {
		width = 1
	}
	binOf := func(d time.Duration) int {
		b := int((d - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		return b
	}
	var hb, hm [bins]int
	for _, d := range r.Bare {
		hb[binOf(d)]++
	}
	for _, d := range r.Monitored {
		hm[binOf(d)]++
	}
	fmt.Fprintf(&sb, "%-12s %-24s %-24s\n", "runtime (s)", "without IPM", "with IPM")
	for b := 0; b < bins; b++ {
		center := lo + width*time.Duration(b) + width/2
		fmt.Fprintf(&sb, "%-12.3f %-24s %-24s\n", center.Seconds(),
			strings.Repeat("#", hb[b]), strings.Repeat("*", hm[b]))
	}
	return sb.String()
}
