package experiments

import (
	"fmt"
	"strings"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/ipm"
	"ipmgo/internal/parallel"
	"ipmgo/internal/workloads"
)

// Fig10Row is one bar of the paper's Fig. 10: the wallclock of a PARATEC
// run at one process count, broken down into MPI and CUBLAS contributions
// with the prominent routines separated. All times are per-rank averages.
type Fig10Row struct {
	Procs     int
	Library   string // "CUBLAS" or "MKL"
	Wallclock time.Duration
	MPI       time.Duration
	CUBLAS    time.Duration
	Allreduce time.Duration
	Wait      time.Duration
	Gather    time.Duration
	SetMatrix time.Duration
	GetMatrix time.Duration
	// Zgemm is the on-GPU zgemm kernel time (@CUDA_EXEC pseudo-entry),
	// the "actual zgemm computation" the paper compares the transfer
	// time against.
	Zgemm time.Duration
}

// Fig10 reproduces the PARATEC scaling study: 32/64/128/256 MPI
// processes on 32 nodes with thunking CUBLAS, plus the sequential-MKL
// baseline at 32 processes. The model runs at 1/10 of the paper's
// problem; ratios and the scaling shape are the reproduction targets.
func Fig10(o Options) ([]Fig10Row, error) {
	nodes := 32
	procCounts := []int{32, 64, 128, 256}
	pc := workloads.DefaultParatec(true)
	if o.Quick {
		nodes = 4
		procCounts = []int{4, 8, 16, 32}
		pc.Iterations = 2
		pc.PlaneWaves = 80000
		pc.HostOtherPerIter = 20 * time.Second
		// A larger gather volume moves the endpoint-contention blow-up
		// into the reduced process range.
		pc.GatherBytes = 16 << 20
	}

	run := func(procs int, useCUBLAS bool) (Fig10Row, error) {
		cfg := cluster.Dirac(nodes, procs/nodes)
		cfg.Monitor = true
		cfg.CUDA = monitoringFor(true, true)
		cfg.LibCostOnly = true
		cfg.Metrics = o.Metrics
		o.applyQueue(&cfg)
		cfg.Command = "./paratec.x"
		cfg.NoiseSeed = o.Seed + int64(procs)
		cfg.NoiseAmp = 0.01
		wl := pc
		wl.UseCUBLAS = useCUBLAS
		res, err := cluster.Run(cfg, func(env *cluster.Env) {
			if err := workloads.Paratec(env, wl); err != nil {
				panic(err)
			}
		})
		if err != nil {
			return Fig10Row{}, err
		}
		jp := res.Profile
		n := time.Duration(jp.NTasks())
		lib := "MKL"
		if useCUBLAS {
			lib = "CUBLAS"
		}
		return Fig10Row{
			Procs:     procs,
			Library:   lib,
			Wallclock: jp.Wallclock(),
			MPI:       jp.DomainSpread(ipm.DomainMPI).Total / n,
			CUBLAS:    jp.DomainSpread(ipm.DomainCUBLAS).Total / n,
			Allreduce: jp.FuncSpread("MPI_Allreduce").Total / n,
			Wait:      jp.FuncSpread("MPI_Wait").Total / n,
			Gather:    jp.FuncSpread("MPI_Gather").Total / n,
			SetMatrix: jp.FuncSpread("cublasSetMatrix").Total / n,
			GetMatrix: jp.FuncSpread("cublasGetMatrix").Total / n,
			Zgemm:     jp.FuncSpread(ipm.ExecKernelName(0, "zgemm_kernel")).Total / n,
		}, nil
	}

	// The MKL baseline and the CUBLAS scan points are independent
	// simulations; run them on the worker pool, row order fixed by index.
	type point struct {
		procs  int
		cublas bool
	}
	points := []point{{procCounts[0], false}} // MKL baseline first
	for _, p := range procCounts {
		points = append(points, point{p, true})
	}
	rows, err := parallel.Map(len(points), o.workers(), func(i int) (Fig10Row, error) {
		pt := points[i]
		r, err := run(pt.procs, pt.cublas)
		if err != nil {
			if !pt.cublas {
				return Fig10Row{}, fmt.Errorf("fig10 MKL baseline: %w", err)
			}
			return Fig10Row{}, fmt.Errorf("fig10 p=%d: %w", pt.procs, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig10 renders the scaling table.
func FormatFig10(rows []Fig10Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 10: PARATEC scaling (per-rank averages; paper runs NERSC6-medium,\n")
	fmt.Fprintf(&sb, "this model is calibrated at 1/10 problem scale — compare shapes/ratios)\n\n")
	fmt.Fprintf(&sb, "%6s %8s %10s %9s %9s | %9s %9s %9s | %9s %9s %9s\n",
		"procs", "library", "wall(s)", "MPI(s)", "CUBLAS(s)",
		"allred(s)", "wait(s)", "gather(s)", "setmat(s)", "getmat(s)", "zgemm(s)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6d %8s %10.1f %9.2f %9.2f | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n",
			r.Procs, r.Library, r.Wallclock.Seconds(), r.MPI.Seconds(), r.CUBLAS.Seconds(),
			r.Allreduce.Seconds(), r.Wait.Seconds(), r.Gather.Seconds(),
			r.SetMatrix.Seconds(), r.GetMatrix.Seconds(), r.Zgemm.Seconds())
	}
	if len(rows) >= 2 && rows[0].Library == "MKL" {
		speedup := 100 * (float64(rows[0].Wallclock) - float64(rows[1].Wallclock)) / float64(rows[0].Wallclock)
		fmt.Fprintf(&sb, "\nMKL -> CUBLAS at %d procs: %.1f s -> %.1f s (%.0f%% faster; paper: 1976 -> 1285 s, ~35%%)\n",
			rows[1].Procs, rows[0].Wallclock.Seconds(), rows[1].Wallclock.Seconds(), speedup)
	}
	return sb.String()
}
