package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cube"
	"ipmgo/internal/ipm"
	"ipmgo/internal/workloads"
)

// Fig9Result holds the CUDA+MPI profile of the CUDA-accelerated HPL run:
// the per-kernel, per-stream, per-rank kernel-time breakdown shown in the
// paper's CUBE screenshot, plus the CUBE document itself.
type Fig9Result struct {
	Profile *ipm.JobProfile
	CUBE    string
	// KernelTimes[kernel][rank] is the GPU time of the kernel on the rank.
	KernelTimes map[string][]time.Duration
	// EventSyncPerRank is cudaEventSynchronize time per rank (the paper:
	// two to five seconds per MPI task).
	EventSyncPerRank []time.Duration
	HostIdlePct      float64
}

// Fig9 runs monitored CUDA HPL on 16 nodes and extracts the breakdown.
func Fig9(o Options) (*Fig9Result, error) {
	nodes := 16
	hpl := workloads.DefaultHPL()
	if o.Quick {
		nodes = 4
		hpl.Iterations = 12
		hpl.Scale = 0.05
	}
	cfg := cluster.Dirac(nodes, 1)
	cfg.Monitor = true
	cfg.CUDA = monitoringFor(true, true)
	cfg.Metrics = o.Metrics
	o.applyQueue(&cfg)
	cfg.Command = "./xhpl.cuda"
	cfg.NoiseSeed = o.Seed + 42
	cfg.NoiseAmp = 0.02
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.HPL(env, hpl); err != nil {
			panic(err)
		}
	})
	if err != nil {
		return nil, err
	}
	jp := res.Profile

	out := &Fig9Result{
		Profile:     jp,
		KernelTimes: make(map[string][]time.Duration),
		HostIdlePct: jp.HostIdlePercent(),
	}
	for _, r := range jp.Ranks {
		out.EventSyncPerRank = append(out.EventSyncPerRank, r.FuncTime("cudaEventSynchronize"))
		for _, e := range r.Entries {
			name := e.Sig.Name
			if !strings.HasPrefix(name, "@CUDA_EXEC_STRM") || !strings.Contains(name, ":") {
				continue
			}
			kernel := name[strings.Index(name, ":")+1:]
			if out.KernelTimes[kernel] == nil {
				out.KernelTimes[kernel] = make([]time.Duration, jp.NTasks())
			}
			out.KernelTimes[kernel][r.Rank] += e.Stats.Total
		}
	}
	var sb strings.Builder
	if err := cube.Write(&sb, jp); err != nil {
		return nil, err
	}
	out.CUBE = sb.String()
	return out, nil
}

// FormatFig9 renders the per-kernel per-rank table.
func FormatFig9(r *Fig9Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 9: CUDA+MPI profile of CUDA-accelerated HPL (%d ranks)\n", r.Profile.NTasks())
	fmt.Fprintf(&sb, "wallclock %.2f s, host idle %.4f %% (async transfers)\n\n",
		r.Profile.Wallclock().Seconds(), r.HostIdlePct)

	kernels := make([]string, 0, len(r.KernelTimes))
	for k := range r.KernelTimes {
		kernels = append(kernels, k)
	}
	sort.Slice(kernels, func(i, j int) bool {
		var ti, tj time.Duration
		for _, d := range r.KernelTimes[kernels[i]] {
			ti += d
		}
		for _, d := range r.KernelTimes[kernels[j]] {
			tj += d
		}
		return ti > tj
	})
	fmt.Fprintf(&sb, "%-22s %10s %10s %10s %10s\n", "GPU kernel", "total(s)", "min(s)", "max(s)", "max/avg")
	for _, k := range kernels {
		times := r.KernelTimes[k]
		var total, min, max time.Duration
		min = times[0]
		for _, d := range times {
			total += d
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		avg := total / time.Duration(len(times))
		imb := 0.0
		if avg > 0 {
			imb = float64(max) / float64(avg)
		}
		fmt.Fprintf(&sb, "%-22s %10.2f %10.2f %10.2f %10.3f\n",
			k, total.Seconds(), min.Seconds(), max.Seconds(), imb)
	}

	var syncTotal time.Duration
	minS, maxS := r.EventSyncPerRank[0], r.EventSyncPerRank[0]
	for _, d := range r.EventSyncPerRank {
		syncTotal += d
		if d < minS {
			minS = d
		}
		if d > maxS {
			maxS = d
		}
	}
	fmt.Fprintf(&sb, "\ncudaEventSynchronize per rank: min %.2f s, max %.2f s (paper: 2-5 s)\n",
		minS.Seconds(), maxS.Seconds())
	return sb.String()
}
