package experiments

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true, Seed: 1}

func TestFig456BannersShowProgressiveMetrics(t *testing.T) {
	fig4, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	fig5, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	fig6, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 4: host timing only — no pseudo entries.
	if strings.Contains(fig4, "@CUDA_EXEC_STRM00") || strings.Contains(fig4, "@CUDA_HOST_IDLE") {
		t.Errorf("fig4 has pseudo entries:\n%s", fig4)
	}
	if !strings.Contains(fig4, "cudaMemcpy(D2H)") || !strings.Contains(fig4, "cudaMalloc") {
		t.Errorf("fig4 missing rows:\n%s", fig4)
	}
	// Fig 5: kernel timing appears.
	if !strings.Contains(fig5, "@CUDA_EXEC_STRM00") {
		t.Errorf("fig5 missing kernel timing:\n%s", fig5)
	}
	if strings.Contains(fig5, "@CUDA_HOST_IDLE") {
		t.Errorf("fig5 should not have host idle:\n%s", fig5)
	}
	// Fig 6: host idle appears too.
	if !strings.Contains(fig6, "@CUDA_HOST_IDLE") || !strings.Contains(fig6, "@CUDA_EXEC_STRM00") {
		t.Errorf("fig6 missing pseudo entries:\n%s", fig6)
	}
}

func TestFig7Timeline(t *testing.T) {
	out, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []string{"launch (a)", "record start event (b)", "record stop event (c)",
		"cudaMemcpy (f)", "transfer done (g)", "KTT flush square (h)"} {
		if !strings.Contains(out, step) {
			t.Errorf("fig7 missing step %q:\n%s", step, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		// IPM's event-bracketed timing always exceeds the profiler.
		if r.IPM <= r.Profiler {
			t.Errorf("%s: IPM %v <= profiler %v", r.Benchmark, r.IPM, r.Profiler)
		}
		if r.DiffPercent <= 0 || r.DiffPercent > 3 {
			t.Errorf("%s: diff %.3f%% out of range (0, 3]", r.Benchmark, r.DiffPercent)
		}
	}
	// Shorter kernels suffer larger relative error: scan (0.43 ms) vs
	// eigenvalues (17.8 ms).
	if byName["scan"].DiffPercent <= byName["eigenvalues"].DiffPercent {
		t.Errorf("scan diff %.3f%% should exceed eigenvalues %.3f%%",
			byName["scan"].DiffPercent, byName["eigenvalues"].DiffPercent)
	}
	txt := FormatTable1(rows)
	if !strings.Contains(txt, "BlackScholes") || !strings.Contains(txt, "Diff (%)") {
		t.Error("FormatTable1 output incomplete")
	}
}

func TestFig8DilationBelowVariability(t *testing.T) {
	r, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bare) != r.Runs || len(r.Monitored) != r.Runs {
		t.Fatalf("ensemble sizes: %d/%d", len(r.Bare), len(r.Monitored))
	}
	if r.DilationPct < 0 {
		t.Errorf("negative dilation %.4f%%", r.DilationPct)
	}
	if r.DilationPct > 0.5 {
		t.Errorf("dilation %.4f%% too large", r.DilationPct)
	}
	if !r.BelowOneSigma {
		t.Error("dilation not below run-to-run variability")
	}
	if txt := FormatFig8(r); !strings.Contains(txt, "runtime dilation") {
		t.Error("FormatFig8 output incomplete")
	}
}

func TestFig9Breakdown(t *testing.T) {
	r, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"dgemm_nn_e_kernel", "dgemm_nt_tex_kernel", "dtrsm_gpu_64_mm", "transpose"} {
		times, ok := r.KernelTimes[k]
		if !ok {
			t.Fatalf("kernel %s missing", k)
		}
		if len(times) != r.Profile.NTasks() {
			t.Errorf("kernel %s has %d rank entries", k, len(times))
		}
	}
	// dgemm_nn dominates.
	sum := func(k string) (t_ int64) {
		for _, d := range r.KernelTimes[k] {
			t_ += int64(d)
		}
		return
	}
	if sum("dgemm_nn_e_kernel") <= sum("dgemm_nt_tex_kernel") {
		t.Error("dgemm_nn should dominate")
	}
	if r.HostIdlePct > 0.5 {
		t.Errorf("host idle %.3f%%, want ~0", r.HostIdlePct)
	}
	if !strings.Contains(r.CUBE, "<cube version=\"3.0\">") {
		t.Error("CUBE output missing")
	}
	if txt := FormatFig9(r); !strings.Contains(txt, "cudaEventSynchronize per rank") {
		t.Error("FormatFig9 output incomplete")
	}
}

func TestFig10ScalingShape(t *testing.T) {
	rows, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Library != "MKL" {
		t.Fatalf("rows = %+v", rows)
	}
	mkl, base := rows[0], rows[1]
	// CUBLAS beats MKL at the base process count by roughly a third.
	speedup := (float64(mkl.Wallclock) - float64(base.Wallclock)) / float64(mkl.Wallclock)
	if speedup < 0.15 || speedup > 0.60 {
		t.Errorf("CUBLAS speedup = %.2f, want ~0.35", speedup)
	}
	// Thunking transfers dwarf the zgemm call.
	if base.SetMatrix+base.GetMatrix <= base.Zgemm {
		t.Errorf("transfers %v should dwarf zgemm %v", base.SetMatrix+base.GetMatrix, base.Zgemm)
	}
	// MPI_Gather per rank grows super-linearly with process count.
	first, last := rows[1], rows[len(rows)-1]
	procRatio := float64(last.Procs) / float64(first.Procs)
	gatherRatio := float64(last.Gather) / float64(first.Gather)
	if gatherRatio < 2*procRatio {
		t.Errorf("gather grew %.1fx over %.0fx procs; want super-linear", gatherRatio, procRatio)
	}
	// CUBLAS time stays within a factor ~2 across the sweep (the paper:
	// "relatively constant").
	if r := float64(last.CUBLAS) / float64(first.CUBLAS); r > 2.5 || r < 0.4 {
		t.Errorf("CUBLAS time ratio across sweep = %.2f, want ~constant", r)
	}
	// Wallclock at the largest count turns upward vs the mid-range.
	if rows[len(rows)-1].Wallclock <= rows[len(rows)-2].Wallclock {
		t.Error("largest run should show the MPI blow-up")
	}
	if txt := FormatFig10(rows); !strings.Contains(txt, "MKL -> CUBLAS") {
		t.Error("FormatFig10 output incomplete")
	}
}

func TestFig11Metrics(t *testing.T) {
	r, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.GPUPct < 25 || r.GPUPct > 45 {
		t.Errorf("GPU%% = %.2f, want ~36", r.GPUPct)
	}
	if r.ThreadSyncPct < 12 || r.ThreadSyncPct > 30 {
		t.Errorf("threadSync%% = %.2f, want ~22.5", r.ThreadSyncPct)
	}
	if r.HostIdlePct > 0.5 {
		t.Errorf("host idle %% = %.2f, want ~0", r.HostIdlePct)
	}
	if r.DistinctKerns != 39 {
		t.Errorf("kernels = %d, want 39", r.DistinctKerns)
	}
	// Kernel shares ordered as published.
	shares := r.KernelShare
	if !(shares["CalculatePMEOrthogonalNonbondForces"] > shares["ReduceForces"] &&
		shares["ReduceForces"] > shares["PMEShake"] &&
		shares["PMEShake"] > shares["ClearForces"] &&
		shares["ClearForces"] > shares["PMEUpdate"]) {
		t.Errorf("kernel share ordering wrong: %+v", shares)
	}
	if shares["CalculatePMEOrthogonalNonbondForces"] < 30 || shares["CalculatePMEOrthogonalNonbondForces"] > 44 {
		t.Errorf("nonbond share = %.2f, want ~37", shares["CalculatePMEOrthogonalNonbondForces"])
	}
	if imb := r.Imbalance["ReduceForces"]; imb < 1.3 || imb > 1.8 {
		t.Errorf("ReduceForces imbalance = %.2f, want ~1.55", imb)
	}
	if imb := r.Imbalance["PMEShake"]; imb > 1.1 {
		t.Errorf("PMEShake imbalance = %.2f, want balanced", imb)
	}
	if !strings.Contains(r.Banner, "##IPMv2.0") {
		t.Error("banner missing")
	}
	if txt := FormatFig11(r); !strings.Contains(txt, "Derived metrics") {
		t.Error("FormatFig11 output incomplete")
	}
}

// TestEnsembleParallelMatchesSerial is the race-enabled parallel-driver
// test: the fig8 ensemble at workers=4 must produce exactly the results
// of the serial run. Each trial owns a private DES engine and RNGs, so
// any divergence (or a -race report) means shared state leaked between
// concurrent simulations.
func TestEnsembleParallelMatchesSerial(t *testing.T) {
	serial, err := Fig8(Options{Quick: true, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig8(Options{Quick: true, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Bare) != len(par.Bare) || len(serial.Monitored) != len(par.Monitored) {
		t.Fatalf("trial counts differ: %d/%d vs %d/%d",
			len(serial.Bare), len(serial.Monitored), len(par.Bare), len(par.Monitored))
	}
	for i := range serial.Bare {
		if serial.Bare[i] != par.Bare[i] {
			t.Errorf("bare run %d: serial %v, parallel %v", i, serial.Bare[i], par.Bare[i])
		}
	}
	for i := range serial.Monitored {
		if serial.Monitored[i] != par.Monitored[i] {
			t.Errorf("monitored run %d: serial %v, parallel %v", i, serial.Monitored[i], par.Monitored[i])
		}
	}
	if FormatFig8(serial) != FormatFig8(par) {
		t.Error("formatted fig8 output differs between worker counts")
	}
}

func TestTable1ParallelMatchesSerial(t *testing.T) {
	serial, err := Table1(Options{Quick: true, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table1(Options{Quick: true, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("row %d: serial %+v, parallel %+v", i, serial[i], par[i])
		}
	}
}
