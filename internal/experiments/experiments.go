// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) plus the illustrative outputs of Section III.
// Each experiment returns both structured results and a formatted text
// rendering; cmd/experiments writes them to disk and bench_test.go wraps
// them as benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/devmodel"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/telemetry"
	"ipmgo/internal/workloads"
)

// Options selects the experiment scale.
type Options struct {
	// Quick runs scaled-down variants (fewer iterations, ensemble
	// members, ranks) for tests and CI; the full variants reproduce the
	// paper's configuration.
	Quick bool
	// Seed varies the noise seeds of ensemble experiments.
	Seed int64
	// Workers bounds how many independent trials of an ensemble
	// experiment (fig8, fig10, table1) run concurrently. Each trial owns
	// a private DES engine and seeded RNGs, and results are collected by
	// index, so output is byte-identical at any worker count. <= 1 runs
	// serially.
	Workers int
	// Metrics, when non-nil, receives live Prometheus-style samples from
	// every job an experiment runs (see cluster.Config.Metrics), so a
	// long experiment sweep can be watched from a /metrics endpoint.
	Metrics *telemetry.Registry
	// Queue enables the driver command-queue layer on every job an
	// experiment runs; QueueFlushDepth/QueueFlushInterval tune the flush
	// heuristics (see cluster.Config).
	Queue              bool
	QueueFlushDepth    int
	QueueFlushInterval time.Duration
	// Device overrides the device backend of every job an experiment
	// runs (see devmodel); the zero value keeps the Dirac default.
	Device devmodel.Spec
}

// applyQueue copies the queue and device-backend settings onto one
// job's cluster config.
func (o Options) applyQueue(cfg *cluster.Config) {
	cfg.Queue = o.Queue
	cfg.QueueFlushDepth = o.QueueFlushDepth
	cfg.QueueFlushInterval = o.QueueFlushInterval
	if o.Device.Defined() {
		cfg.Device = o.Device
		cfg.GPU = o.Device.GPU
	}
}

// workers returns the effective pool size (serial unless set).
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// monitoringFor maps the paper's three monitoring levels (Figs. 4-6) to
// wrapper options.
func monitoringFor(kernelTiming, hostIdle bool) ipmcuda.Options {
	return ipmcuda.Options{KernelTiming: kernelTiming, HostIdle: hostIdle}
}

// runSquare executes the Fig. 3 program on one Dirac node with the given
// monitoring level and returns the job profile.
func runSquare(o Options, opts ipmcuda.Options) (*ipm.JobProfile, error) {
	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = opts
	cfg.Metrics = o.Metrics
	o.applyQueue(&cfg)
	cfg.Command = "./cuda.ipm"
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.Square(env, workloads.DefaultSquare()); err != nil {
			panic(err)
		}
	})
	if err != nil {
		return nil, err
	}
	return res.Profile, nil
}

func bannerOf(jp *ipm.JobProfile) (string, error) {
	var sb strings.Builder
	if err := ipm.WriteBanner(&sb, jp, ipm.BannerOptions{}); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Fig4 reproduces the banner with host-side timing only.
func Fig4(o Options) (string, error) {
	jp, err := runSquare(o, monitoringFor(false, false))
	if err != nil {
		return "", err
	}
	return bannerOf(jp)
}

// Fig5 reproduces the banner with GPU kernel timing enabled.
func Fig5(o Options) (string, error) {
	jp, err := runSquare(o, monitoringFor(true, false))
	if err != nil {
		return "", err
	}
	return bannerOf(jp)
}

// Fig6 reproduces the banner with kernel timing and implicit host
// blocking identification enabled.
func Fig6(o Options) (string, error) {
	jp, err := runSquare(o, monitoringFor(true, true))
	if err != nil {
		return "", err
	}
	return bannerOf(jp)
}

// Fig7 reproduces the monitoring-timeline schematic as an event trace:
// the (a)...(h) steps of the paper's figure, with virtual timestamps and
// the layer (app / ipm / gpu) each step occurs in.
func Fig7(o Options) (string, error) {
	var events []ipmcuda.TraceEvent
	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{
		KernelTiming: true,
		HostIdle:     true,
		Trace:        func(ev ipmcuda.TraceEvent) { events = append(events, ev) },
	}
	cfg.Metrics = o.Metrics
	o.applyQueue(&cfg)
	cfg.Command = "./cuda.ipm"
	_, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.Square(env, workloads.DefaultSquare()); err != nil {
			panic(err)
		}
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 7: IPM CUDA monitoring timeline (square kernel)\n")
	fmt.Fprintf(&sb, "%-14s %-5s %s\n", "t", "layer", "step")
	for _, ev := range events {
		fmt.Fprintf(&sb, "%-14v %-5s %s\n", ev.At, ev.Layer, ev.What)
	}
	return sb.String(), nil
}

func pct(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
