package experiments

import (
	"fmt"
	"strings"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/parallel"
	"ipmgo/internal/workloads"
)

// Table1Row is one line of the paper's Table I: the GPU kernel execution
// time of one SDK benchmark as measured by the (simulated) CUDA profiler
// and by IPM's event-based timing, and their relative difference.
type Table1Row struct {
	Benchmark   string
	Invocations int
	Profiler    time.Duration
	IPM         time.Duration
	DiffPercent float64
}

// Table1 runs the eight SDK benchmarks with both the CUDA profiler and
// IPM attached and compares total kernel times, reproducing Table I. The
// benchmarks are independent single-node simulations and run on the
// worker pool, with the row order fixed by the suite order.
func Table1(o Options) ([]Table1Row, error) {
	suite := workloads.SDKSuite()
	return parallel.Map(len(suite), o.workers(), func(i int) (Table1Row, error) {
		bench := suite[i]
		cfg := cluster.Dirac(1, 1)
		cfg.Monitor = true
		cfg.CUDA = monitoringFor(true, true)
		cfg.CUDAProfile = true
		cfg.Metrics = o.Metrics
		o.applyQueue(&cfg)
		cfg.Command = "./" + bench.Name
		res, err := cluster.Run(cfg, func(env *cluster.Env) {
			if err := bench.Run(env); err != nil {
				panic(err)
			}
		})
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1: %s: %w", bench.Name, err)
		}
		profiler := res.Profilers[0].TotalKernelTime()
		var ipmTime time.Duration
		for _, ft := range res.Profile.FuncTotals() {
			if strings.HasPrefix(ft.Name, "@CUDA_EXEC_STRM") && !strings.Contains(ft.Name, ":") {
				ipmTime += ft.Stats.Total
			}
		}
		return Table1Row{
			Benchmark:   bench.Name,
			Invocations: bench.Invocations,
			Profiler:    profiler,
			IPM:         ipmTime,
			DiffPercent: 100 * float64(ipmTime-profiler) / float64(profiler),
		}, nil
	})
}

// FormatTable1 renders the rows like the paper's Table I.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: GPU kernel execution time, CUDA profiler vs IPM\n")
	fmt.Fprintf(&sb, "%-22s %12s %16s %16s %12s\n",
		"Benchmark", "Invocations", "Profiler (s)", "IPM (s)", "Diff (%)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %12d %16.6f %16.6f %12.2f\n",
			r.Benchmark, r.Invocations, r.Profiler.Seconds(), r.IPM.Seconds(), r.DiffPercent)
	}
	return sb.String()
}
