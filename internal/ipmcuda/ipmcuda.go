// Package ipmcuda implements IPM's CUDA monitoring layer (paper Section
// III): a decorator around the cudart.API interface that
//
//   - times every runtime API call host-side and records it in the
//     performance hash table (Section III-A, Fig. 2),
//   - tags memory transfers with their direction, e.g. "cudaMemcpy(D2H)",
//   - recovers GPU-side kernel execution time with the CUDA event API and
//     a statically sized kernel timing table, reported as
//     @CUDA_EXEC_STRMxx pseudo-entries (Section III-B), checking for
//     completed kernels only inside device-to-host transfers to bound the
//     polling overhead, and
//   - measures implicit host blocking in synchronous memory operations by
//     issuing a cudaStreamSynchronize first and accounting the wait as
//     @CUDA_HOST_IDLE (Section III-C); cudaMemset is excluded, matching
//     the paper's microbenchmark finding.
//
// The wrapped value implements cudart.API and cudart.Driver, so the
// application cannot tell it is monitored — the Go rendering of dynamic
// library interposition.
package ipmcuda

import (
	"errors"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/ipm"
)

// DefaultKTTSize is the default number of kernel timing table slots.
const DefaultKTTSize = 1024

// Options selects which monitoring features are active, mirroring the
// paper's Figs. 4 (host timing only), 5 (+kernel timing) and 6 (+host
// idle).
type Options struct {
	// KernelTiming enables event-based GPU kernel timing (the KTT).
	KernelTiming bool
	// HostIdle enables implicit-host-blocking measurement.
	HostIdle bool
	// KTTSize overrides the kernel timing table capacity.
	KTTSize int
	// CheckEveryCall checks the KTT for completed kernels on every
	// wrapped call instead of only in D2H transfers — the costly policy
	// the paper rejects; kept as an ablation.
	CheckEveryCall bool
	// EventOverheadCorrection is subtracted from every event-bracketed
	// kernel timing, the fidelity improvement the paper lists as under
	// investigation. Zero reproduces the published behaviour.
	EventOverheadCorrection time.Duration
	// WrapperOverhead is the host-side cost charged per intercepted call
	// (default 150 ns, of the order IPM reports).
	WrapperOverhead time.Duration
	// KernelWatts, CopyWatts and MemsetWatts are the active power draws
	// of the device's engine classes (from the devmodel backend's power
	// model), used to attribute joules per call site: kernel energy is
	// priced over the event-measured device busy time at KTT flush,
	// copy/memset energy over the host-timed call interval. All three
	// zero (the default) disables attribution entirely — the legacy
	// no-power behaviour.
	KernelWatts float64
	CopyWatts   float64
	MemsetWatts float64
	// Trace, if non-nil, receives the monitoring-step timeline used to
	// reproduce the paper's Fig. 7 schematic.
	Trace func(TraceEvent)
}

// TraceEvent is one step of the monitoring timeline (Fig. 7 letters).
type TraceEvent struct {
	At    time.Duration
	Layer string // "app" | "ipm" | "gpu"
	What  string
}

func (o Options) withDefaults() Options {
	if o.KTTSize <= 0 {
		o.KTTSize = DefaultKTTSize
	}
	if o.WrapperOverhead == 0 {
		o.WrapperOverhead = 150 * time.Nanosecond
	}
	return o
}

// kttSlot is one entry of the kernel timing table: the bracketing events,
// the stream, and the kernel identity (the paper stores the kernel
// function pointer passed to cudaLaunch; we store the kernel name).
type kttSlot struct {
	used        bool
	start, stop cudart.Event
	created     bool
	stream      cudart.Stream
	kernel      string
}

// Monitor is the CUDA interposition layer. It implements cudart.API and
// cudart.Driver by delegation to the wrapped implementation.
type Monitor struct {
	inner cudart.API
	drv   cudart.Driver // non-nil when inner also implements the driver API
	mon   *ipm.Monitor
	proc  *des.Proc
	opts  Options

	ktt        []kttSlot
	kttFree    []int // indices of free slots (LIFO)
	kttArmed   []int // indices of armed slots, in arm order
	kttDropped int64 // launches not timed because the KTT was full

	// Mirror of the pending ConfigureCall stack, so the Launch wrapper
	// knows which stream the kernel goes to.
	cfgStreams []cudart.Stream

	// Memoized pseudo-entry handles for the KTT flush path: the
	// @CUDA_EXEC_STRMxx and @CUDA_EXEC_STRMxx:kernel names are built and
	// hashed once per (stream, kernel), not once per flushed kernel.
	execStreamRefs map[cudart.Stream]ipm.SigRef
	execKernelRefs map[execKey]ipm.SigRef
}

// execKey identifies a per-kernel pseudo entry.
type execKey struct {
	stream cudart.Stream
	kernel string
}

// execStreamRef returns the memoized @CUDA_EXEC_STRMxx handle.
func (m *Monitor) execStreamRef(s cudart.Stream) ipm.SigRef {
	if r, ok := m.execStreamRefs[s]; ok {
		return r
	}
	r := ipm.NewSigRef(ipm.ExecStreamName(int(s)))
	m.execStreamRefs[s] = r
	return r
}

// execKernelRef returns the memoized @CUDA_EXEC_STRMxx:kernel handle.
func (m *Monitor) execKernelRef(s cudart.Stream, kernel string) ipm.SigRef {
	k := execKey{stream: s, kernel: kernel}
	if r, ok := m.execKernelRefs[k]; ok {
		return r
	}
	r := ipm.NewSigRef(ipm.ExecKernelName(int(s), kernel))
	m.execKernelRefs[k] = r
	return r
}

var (
	_ cudart.API    = (*Monitor)(nil)
	_ cudart.Driver = (*Monitor)(nil)
)

// Wrap interposes IPM between the application and the CUDA runtime.
func Wrap(inner cudart.API, mon *ipm.Monitor, proc *des.Proc, opts Options) *Monitor {
	m := &Monitor{
		inner:          inner,
		mon:            mon,
		proc:           proc,
		opts:           opts.withDefaults(),
		execStreamRefs: make(map[cudart.Stream]ipm.SigRef),
		execKernelRefs: make(map[execKey]ipm.SigRef),
	}
	if d, ok := inner.(cudart.Driver); ok {
		m.drv = d
	}
	m.ktt = make([]kttSlot, m.opts.KTTSize)
	m.kttFree = make([]int, m.opts.KTTSize)
	for i := range m.kttFree {
		m.kttFree[i] = m.opts.KTTSize - 1 - i // pop order 0, 1, 2, ...
	}
	return m
}

// IPM returns the underlying per-rank monitor.
func (m *Monitor) IPM() *ipm.Monitor { return m.mon }

// KTTDropped reports how many kernel launches could not be timed because
// the kernel timing table was full.
func (m *Monitor) KTTDropped() int64 { return m.kttDropped }

func (m *Monitor) trace(layer, what string) {
	if m.opts.Trace != nil {
		m.opts.Trace(TraceEvent{At: m.mon.Now(), Layer: layer, What: what})
	}
}

// overhead charges the wrapper's host cost outside the timed window.
func (m *Monitor) overhead() {
	if m.opts.WrapperOverhead > 0 {
		m.proc.Sleep(m.opts.WrapperOverhead)
	}
}

// timed runs fn bracketed by begin/end timers and records the duration
// under the pre-hashed signature handle — the paper's Fig. 2 wrapper
// anatomy, with the name hash memoized at package init.
func (m *Monitor) timed(ref ipm.SigRef, bytes int64, fn func()) {
	m.overhead()
	begin := m.mon.Now()
	fn()
	m.mon.ObserveRef(ref, bytes, m.mon.Now()-begin)
	if m.opts.CheckEveryCall {
		m.checkKTT()
	}
}

// timedE is the error-propagating form of timed: a call returning a
// non-success status additionally increments the signature's error
// counter, so the fault model can attribute failures per call site.
// cudaErrorNotReady is a polling result, not a failure, and is never
// counted.
func (m *Monitor) timedE(ref ipm.SigRef, bytes int64, fn func() error) error {
	return m.timedEW(ref, bytes, 0, fn)
}

// timedEW is timedE plus energy attribution: watts priced over the
// measured interval folds into the same hash entry as a
// zero-observation merge, so the timing statistics and telemetry spans
// stay byte-identical to the unpowered path. watts <= 0 charges
// nothing.
func (m *Monitor) timedEW(ref ipm.SigRef, bytes int64, watts float64, fn func() error) error {
	m.overhead()
	begin := m.mon.Now()
	err := fn()
	d := m.mon.Now() - begin
	if err != nil && !errors.Is(err, cudart.ErrNotReady) {
		m.mon.ObserveErrRef(ref, bytes, d)
	} else {
		m.mon.ObserveRef(ref, bytes, d)
	}
	m.foldEnergy(ref, bytes, watts, d)
	if m.opts.CheckEveryCall {
		m.checkKTT()
	}
	return err
}

// timedW is the energy-attributing form of timed (driver-API wrappers,
// which surface errors by value rather than by return).
func (m *Monitor) timedW(ref ipm.SigRef, bytes int64, watts float64, fn func()) {
	m.overhead()
	begin := m.mon.Now()
	fn()
	d := m.mon.Now() - begin
	m.mon.ObserveRef(ref, bytes, d)
	m.foldEnergy(ref, bytes, watts, d)
	if m.opts.CheckEveryCall {
		m.checkKTT()
	}
}

// foldEnergy attributes watts sustained over d to ref's hash entry.
func (m *Monitor) foldEnergy(ref ipm.SigRef, bytes int64, watts float64, d time.Duration) {
	if nj := ipm.EnergyNJ(watts, d); nj != 0 {
		m.mon.ObserveNRef(ref, bytes, ipm.Stats{Energy: nj})
	}
}

// ---- Kernel timing table (Section III-B) ----

// findSlot returns a free KTT slot index or -1.
func (m *Monitor) findSlot() int {
	if n := len(m.kttFree); n > 0 {
		i := m.kttFree[n-1]
		m.kttFree = m.kttFree[:n-1]
		return i
	}
	return -1
}

// releaseSlot returns a slot to the free list.
func (m *Monitor) releaseSlot(i int) {
	m.ktt[i].used = false
	m.kttFree = append(m.kttFree, i)
}

// armSlot creates (once) and records the start event for a launch.
func (m *Monitor) armSlot(i int, stream cudart.Stream, kernel string) bool {
	s := &m.ktt[i]
	if !s.created {
		start, err := m.inner.EventCreate()
		if err != nil {
			return false
		}
		stop, err := m.inner.EventCreate()
		if err != nil {
			return false
		}
		s.start, s.stop, s.created = start, stop, true
	}
	if err := m.inner.EventRecord(s.start, stream); err != nil {
		return false
	}
	s.used = true
	s.stream = stream
	s.kernel = kernel
	m.kttArmed = append(m.kttArmed, i)
	m.trace("ipm", "record start event (b)")
	return true
}

// unarm removes a just-armed slot (the most recent entry) after a
// downstream failure and frees it.
func (m *Monitor) unarm(i int) {
	if n := len(m.kttArmed); n > 0 && m.kttArmed[n-1] == i {
		m.kttArmed = m.kttArmed[:n-1]
	}
	m.releaseSlot(i)
}

// checkKTT queries every armed slot for completion and flushes finished
// kernels into the hash table (the (h) step of Fig. 7).
func (m *Monitor) checkKTT() {
	remaining := m.kttArmed[:0]
	for _, i := range m.kttArmed {
		s := &m.ktt[i]
		if err := m.inner.EventQuery(s.stop); err != nil {
			remaining = append(remaining, i) // not finished
			continue
		}
		d, err := m.inner.EventElapsedTime(s.start, s.stop)
		m.releaseSlot(i)
		if err != nil {
			continue
		}
		if c := m.opts.EventOverheadCorrection; c > 0 {
			if d > c {
				d -= c
			} else {
				d = 0
			}
		}
		stat := ipm.Stats{Count: 1, Total: d, Min: d, Max: d}
		m.mon.ObserveNRef(m.execStreamRef(s.stream), 0, stat)
		// Kernel energy (power × event-measured device busy time) goes on
		// the per-kernel entry only: rank totals sum every entry's energy,
		// so pricing the per-stream summary too would double-count.
		stat.Energy = ipm.EnergyNJ(m.opts.KernelWatts, d)
		m.mon.ObserveNRef(m.execKernelRef(s.stream, s.kernel), 0, stat)
		m.trace("ipm", "KTT flush "+s.kernel+" (h)")
	}
	m.kttArmed = remaining
}

// Flush synchronises the device and drains the kernel timing table. The
// harness calls it at application end (IPM's finalisation), since a kernel
// not followed by any D2H transfer would otherwise stay unreported.
func (m *Monitor) Flush() {
	if !m.opts.KernelTiming {
		return
	}
	// Guarded: a KTT bookkeeping bug at finalisation must not take down an
	// application that already ran to completion.
	m.mon.Guard("ktt-flush", func() {
		m.inner.ThreadSynchronize()
		m.checkKTT()
	})
}

// ---- Host idle measurement (Section III-C) ----

// hostIdle issues a StreamSynchronize for the affected stream ahead of an
// implicitly blocking call and accounts the wait as @CUDA_HOST_IDLE.
func (m *Monitor) hostIdle(s cudart.Stream) {
	if !m.opts.HostIdle {
		return
	}
	m.trace("ipm", "host idle sync")
	begin := m.mon.Now()
	if err := m.inner.StreamSynchronize(s); err != nil {
		return
	}
	if idle := m.mon.Now() - begin; idle > 0 {
		m.mon.ObserveRef(refHostIdle, 0, idle)
	}
}
