package ipmcuda

import (
	"testing"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/ipm"
	"ipmgo/internal/perfmodel"
)

// TestEveryWrapperRecordsItsSymbol drives each wrapped entry point once
// and checks the hash table holds exactly the expected event names — the
// completeness property of the generated wrapper layer ("the full set of
// calls in the CUDA runtime and driver API").
func TestEveryWrapperRecordsItsSymbol(t *testing.T) {
	app := func(api cudart.API, p *des.Proc) {
		m := api.(*Monitor)
		k := &cudart.Func{Name: "k", FixedCost: perfmodel.KernelCost{Fixed: time.Millisecond}}

		d, _ := api.Malloc(4096)
		pinned, _ := api.HostAlloc(4096)
		api.Memcpy(cudart.DevicePtr(d), cudart.PinnedPtr(pinned), 4096, cudart.MemcpyHostToDevice)
		s, _ := api.StreamCreate()
		api.MemcpyAsync(cudart.HostPtr(nil), cudart.DevicePtr(d), 4096, cudart.MemcpyDeviceToHost, s)
		api.MemcpyToSymbol("sym", []byte{1, 2})
		api.Memset(d, 0, 4096)
		api.MemGetInfo()

		api.ConfigureCall(cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, s)
		api.SetupArgument(d, 8, 0)
		api.Launch(k)

		ev, _ := api.EventCreate()
		api.EventRecord(ev, s)
		api.EventQuery(ev)
		api.EventSynchronize(ev)
		ev2, _ := api.EventCreate()
		api.EventRecord(ev2, s)
		api.EventSynchronize(ev2)
		api.EventElapsedTime(ev, ev2)
		api.EventDestroy(ev2)

		api.StreamSynchronize(s)
		api.ThreadSynchronize()
		api.StreamDestroy(s)
		api.GetDeviceCount()
		api.GetDeviceProperties()
		api.GetDevice()
		api.SetDevice(0)
		api.GetLastError()
		api.PeekAtLastError()
		api.Free(d)

		// Driver surface.
		m.CuInit()
		dd, _ := m.CuMemAlloc(64)
		m.CuMemcpyHtoD(dd, make([]byte, 64))
		m.CuMemsetD8(dd, 1, 64)
		m.CuLaunchKernel(k, cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0)
		m.CuStreamSynchronize(0)
		m.CuCtxSynchronize()
		m.CuMemcpyDtoH(make([]byte, 64), dd)
		m.CuMemFree(dd)
	}
	m := run(t, Options{KernelTiming: true, HostIdle: true}, app)

	want := []string{
		"cudaMalloc", "cudaHostAlloc", "cudaMemcpy(H2D)", "cudaStreamCreate",
		"cudaMemcpyAsync(D2H)", "cudaMemcpyToSymbol", "cudaMemset", "cudaMemGetInfo",
		"cudaConfigureCall", "cudaSetupArgument", "cudaLaunch",
		"cudaEventCreate", "cudaEventRecord", "cudaEventQuery", "cudaEventSynchronize",
		"cudaEventElapsedTime", "cudaEventDestroy",
		"cudaStreamSynchronize", "cudaThreadSynchronize", "cudaStreamDestroy",
		"cudaGetDeviceCount", "cudaGetDeviceProperties", "cudaGetDevice", "cudaSetDevice",
		"cudaGetLastError", "cudaPeekAtLastError", "cudaFree",
		"cuInit", "cuMemAlloc", "cuMemcpyHtoD", "cuMemsetD8", "cuLaunchKernel",
		"cuStreamSynchronize", "cuCtxSynchronize", "cuMemcpyDtoH", "cuMemFree",
	}
	for _, name := range want {
		if s := lookup(t, m, name); s.Count == 0 {
			t.Errorf("wrapper %s recorded nothing", name)
		}
	}
	// Both launches produced kernel timings.
	if s := lookup(t, m, ipm.ExecKernelName(int(1), "k")); s.Count != 1 {
		t.Errorf("runtime-API kernel timing = %+v", s)
	}
	if s := lookup(t, m, ipm.ExecKernelName(0, "k")); s.Count != 1 {
		t.Errorf("driver-API kernel timing = %+v", s)
	}
}

// TestWrapperErrorPassThrough checks that failures cross the wrapper
// unchanged and are still recorded as events.
func TestWrapperErrorPassThrough(t *testing.T) {
	app := func(api cudart.API, p *des.Proc) {
		if err := api.StreamSynchronize(cudart.Stream(42)); err == nil {
			panic("invalid stream accepted through wrapper")
		}
		if err := api.Launch(nil); err == nil {
			panic("nil kernel accepted through wrapper")
		}
		if _, err := api.EventElapsedTime(cudart.Event(1), cudart.Event(2)); err == nil {
			panic("bad events accepted")
		}
	}
	m := run(t, Options{KernelTiming: true}, app)
	if s := lookup(t, m, "cudaStreamSynchronize"); s.Count != 1 || s.Errors != 1 {
		t.Errorf("failed call not recorded/counted: %+v", s)
	}
	if s := lookup(t, m, "cudaLaunch"); s.Count != 1 || s.Errors != 1 {
		t.Errorf("failed launch not recorded/counted: %+v", s)
	}
}
