package ipmcuda

import (
	"ipmgo/internal/cudart"
	"ipmgo/internal/ipm"
	"ipmgo/internal/telemetry"
)

// Pre-hashed signature handles for every monitored symbol. Each constant
// event name is hashed exactly once, at package init, instead of once per
// intercepted call — the SigRef fast path of the performance hash table.
// Symbols that return before their device-side effect completes carry
// the async span class, so the trace exporter and metric consumers can
// separate launch-shaped calls from host-blocking ones; everything else
// keeps the class NewSigRef derives from the name's domain.
var (
	refMalloc         = ipm.NewSigRef("cudaMalloc")
	refFree           = ipm.NewSigRef("cudaFree")
	refHostAlloc      = ipm.NewSigRef("cudaHostAlloc")
	refMemcpyToSymbol = ipm.NewSigRef("cudaMemcpyToSymbol")
	refMemset         = ipm.NewSigRef("cudaMemset")
	refMemGetInfo     = ipm.NewSigRef("cudaMemGetInfo")
	refConfigureCall  = ipm.NewSigRefClass("cudaConfigureCall", telemetry.ClassAsync)
	refSetupArgument  = ipm.NewSigRefClass("cudaSetupArgument", telemetry.ClassAsync)
	refLaunch         = ipm.NewSigRefClass("cudaLaunch", telemetry.ClassAsync)
	refStreamCreate   = ipm.NewSigRef("cudaStreamCreate")
	refStreamDestroy  = ipm.NewSigRef("cudaStreamDestroy")
	refStreamSync     = ipm.NewSigRef("cudaStreamSynchronize")
	refEventCreate    = ipm.NewSigRef("cudaEventCreate")
	refEventRecord    = ipm.NewSigRefClass("cudaEventRecord", telemetry.ClassAsync)
	refEventQuery     = ipm.NewSigRefClass("cudaEventQuery", telemetry.ClassAsync)
	refEventSync      = ipm.NewSigRef("cudaEventSynchronize")
	refEventElapsed   = ipm.NewSigRef("cudaEventElapsedTime")
	refEventDestroy   = ipm.NewSigRef("cudaEventDestroy")
	refThreadSync     = ipm.NewSigRef("cudaThreadSynchronize")
	refGetDeviceCount = ipm.NewSigRef("cudaGetDeviceCount")
	refGetDeviceProps = ipm.NewSigRef("cudaGetDeviceProperties")
	refGetDevice      = ipm.NewSigRef("cudaGetDevice")
	refSetDevice      = ipm.NewSigRef("cudaSetDevice")
	refGetLastError   = ipm.NewSigRef("cudaGetLastError")
	refPeekLastError  = ipm.NewSigRef("cudaPeekAtLastError")
	refHostIdle       = ipm.NewSigRef(ipm.HostIdleName)
	refCuInit         = ipm.NewSigRef("cuInit")
	refCuMemAlloc     = ipm.NewSigRef("cuMemAlloc")
	refCuMemFree      = ipm.NewSigRef("cuMemFree")
	refCuMemcpyHtoD   = ipm.NewSigRef("cuMemcpyHtoD")
	refCuMemcpyDtoH   = ipm.NewSigRef("cuMemcpyDtoH")
	refCuMemsetD8     = ipm.NewSigRef("cuMemsetD8")
	refCuLaunchKernel = ipm.NewSigRefClass("cuLaunchKernel", telemetry.ClassAsync)
	refCuStreamSync   = ipm.NewSigRef("cuStreamSynchronize")
	refCuCtxSync      = ipm.NewSigRef("cuCtxSynchronize")
)

// memcpyKinds is the direction set refs are prebuilt for.
var memcpyKinds = []cudart.MemcpyKind{
	cudart.MemcpyHostToHost,
	cudart.MemcpyHostToDevice,
	cudart.MemcpyDeviceToHost,
	cudart.MemcpyDeviceToDevice,
}

// memcpyRefs prebuilds the direction-tagged refs ("cudaMemcpy(D2H)", ...)
// indexed by cudart.MemcpyKind.
func memcpyRefs(base string) [4]ipm.SigRef {
	var out [4]ipm.SigRef
	for _, k := range memcpyKinds {
		out[k] = ipm.NewSigRef(memcpyName(base, k))
	}
	return out
}

var (
	refMemcpy      = memcpyRefs("cudaMemcpy")
	refMemcpyAsync = memcpyRefs("cudaMemcpyAsync")
)

// memcpyRef selects the prebuilt ref for a direction, falling back to an
// on-the-spot ref for out-of-range kinds.
func memcpyRef(refs *[4]ipm.SigRef, base string, kind cudart.MemcpyKind) ipm.SigRef {
	if kind >= 0 && int(kind) < len(refs) {
		return refs[kind]
	}
	return ipm.NewSigRef(memcpyName(base, kind))
}
