package ipmcuda

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/perfmodel"
)

// randomProgram executes a seeded random sequence of CUDA operations
// (launches of data-mutating kernels, transfers, memsets, syncs) against
// the API and returns the final device buffer contents. The program only
// consults the seed, never the monitoring state, so bare and monitored
// executions must produce identical bytes.
func randomProgram(t *testing.T, seed int64, monitored bool) ([]byte, time.Duration) {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, testSpec())
	const bufLen = 256
	out := make([]byte, bufLen)
	e.Spawn("host", func(p *des.Proc) {
		var api cudart.API = cudart.NewRuntime(p, dev, cudart.Options{})
		var w *Monitor
		if monitored {
			mon := ipm.NewMonitor(0, "h", "prog", p.Now, 0)
			mon.Start()
			w = Wrap(api, mon, p, Options{KernelTiming: true, HostIdle: true})
			api = w
		}
		rng := rand.New(rand.NewSource(seed))
		d, err := api.Malloc(bufLen)
		if err != nil {
			panic(err)
		}
		streams := []cudart.Stream{0}
		s, _ := api.StreamCreate()
		streams = append(streams, s)

		addK := func(delta byte) *cudart.Func {
			return &cudart.Func{
				Name:      "add",
				FixedCost: perfmodel.KernelCost{Fixed: time.Duration(rng.Intn(900)+100) * time.Microsecond},
				Body: func(ctx cudart.LaunchContext) {
					b, err := ctx.Dev.Bytes(ctx.Args.Arg(0).(cudart.DevPtr), bufLen)
					if err != nil {
						return
					}
					for i := range b {
						b[i] += delta
					}
				},
			}
		}

		host := make([]byte, bufLen)
		for op := 0; op < 30; op++ {
			switch rng.Intn(6) {
			case 0: // kernel launch on a random stream
				st := streams[rng.Intn(len(streams))]
				if err := api.LaunchKernel(addK(byte(rng.Intn(7)+1)), cudart.Dim3{X: 4}, cudart.Dim3{X: 64}, st, d); err != nil {
					panic(err)
				}
			case 1: // H2D with random data
				rng.Read(host)
				if err := api.Memcpy(cudart.DevicePtr(d), cudart.HostPtr(host), bufLen, cudart.MemcpyHostToDevice); err != nil {
					panic(err)
				}
			case 2: // blocking D2H (triggers KTT check when monitored)
				if err := api.Memcpy(cudart.HostPtr(host), cudart.DevicePtr(d), bufLen, cudart.MemcpyDeviceToHost); err != nil {
					panic(err)
				}
			case 3: // memset
				if err := api.Memset(d, byte(rng.Intn(256)), bufLen); err != nil {
					panic(err)
				}
			case 4: // sync
				if err := api.ThreadSynchronize(); err != nil {
					panic(err)
				}
			case 5: // async D2H then stream sync
				st := streams[1]
				if err := api.MemcpyAsync(cudart.HostPtr(host), cudart.DevicePtr(d), bufLen, cudart.MemcpyDeviceToHost, st); err != nil {
					panic(err)
				}
				if err := api.StreamSynchronize(st); err != nil {
					panic(err)
				}
			}
		}
		if err := api.ThreadSynchronize(); err != nil {
			panic(err)
		}
		b, err := dev.Bytes(d, bufLen)
		if err != nil {
			panic(err)
		}
		copy(out, b)
		if w != nil {
			w.Flush()
		}
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return out, e.Now()
}

// Property: for any program, monitoring never changes the computed data,
// and never makes the program faster.
func TestPropMonitoringTransparent(t *testing.T) {
	prop := func(seed int64) bool {
		bare, bareWall := randomProgram(t, seed, false)
		mon, monWall := randomProgram(t, seed, true)
		for i := range bare {
			if bare[i] != mon[i] {
				t.Logf("seed %d: byte %d differs: %d vs %d", seed, i, bare[i], mon[i])
				return false
			}
		}
		if monWall < bareWall {
			t.Logf("seed %d: monitored run faster (%v < %v)", seed, monWall, bareWall)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: monitoring overhead stays bounded for any program (< 2% here,
// far looser than the paper's 0.21%, to keep the property robust).
func TestPropMonitoringOverheadBounded(t *testing.T) {
	prop := func(seed int64) bool {
		_, bareWall := randomProgram(t, seed, false)
		_, monWall := randomProgram(t, seed, true)
		dilation := float64(monWall-bareWall) / float64(bareWall)
		if dilation > 0.02 {
			t.Logf("seed %d: dilation %.4f", seed, dilation)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
