package ipmcuda

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/perfmodel"
)

func testSpec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.ContextInit = 100 * time.Millisecond
	s.PCIeLatency = 0
	s.PCIeH2DGBs = 1
	s.PCIeD2HGBs = 1
	s.KernelDispatch = time.Microsecond
	s.KernelLaunch = time.Microsecond
	s.EventRecordCost = 2 * time.Microsecond
	s.APICallCost = 100 * time.Nanosecond
	return s
}

// run executes app as a monitored host process and returns the monitor.
func run(t *testing.T, opts Options, app func(api cudart.API, p *des.Proc)) *Monitor {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, testSpec())
	var wrapped *Monitor
	e.Spawn("host", func(p *des.Proc) {
		rt := cudart.NewRuntime(p, dev, cudart.Options{})
		mon := ipm.NewMonitor(0, "dirac15", "./cuda.ipm", p.Now, 0)
		mon.Start()
		wrapped = Wrap(rt, mon, p, opts)
		app(wrapped, p)
		wrapped.Flush()
		mon.Stop()
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return wrapped
}

// squareApp is the paper's Fig. 3 program against the API interface.
func squareApp(kernelDur time.Duration, n int) func(api cudart.API, p *des.Proc) {
	return func(api cudart.API, p *des.Proc) {
		square := &cudart.Func{Name: "square", FixedCost: perfmodel.KernelCost{Fixed: kernelDur}}
		size := int64(8 * n)
		buf := make([]byte, size)
		dptr, err := api.Malloc(size)
		if err != nil {
			panic(err)
		}
		if err := api.Memcpy(cudart.DevicePtr(dptr), cudart.HostPtr(buf), size, cudart.MemcpyHostToDevice); err != nil {
			panic(err)
		}
		if err := api.ConfigureCall(cudart.Dim3{X: n}, cudart.Dim3{X: 1}, 0, 0); err != nil {
			panic(err)
		}
		api.SetupArgument(dptr, 8, 0)
		api.SetupArgument(n, 8, 8)
		if err := api.Launch(square); err != nil {
			panic(err)
		}
		if err := api.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(dptr), size, cudart.MemcpyDeviceToHost); err != nil {
			panic(err)
		}
		if err := api.Free(dptr); err != nil {
			panic(err)
		}
	}
}

func lookup(t *testing.T, m *Monitor, name string) ipm.Stats {
	t.Helper()
	for _, e := range m.IPM().Table().Entries() {
		if e.Sig.Name == name {
			return e.Stats
		}
	}
	return ipm.Stats{}
}

func TestFig4HostTimingOnly(t *testing.T) {
	m := run(t, Options{}, squareApp(time.Second, 100000))
	// cudaMalloc carries context init.
	if s := lookup(t, m, "cudaMalloc"); s.Count != 1 || s.Total < 100*time.Millisecond {
		t.Errorf("cudaMalloc = %+v", s)
	}
	// D2H includes the implicit kernel wait (~1s) plus the 0.8ms transfer.
	if s := lookup(t, m, "cudaMemcpy(D2H)"); s.Total < time.Second {
		t.Errorf("cudaMemcpy(D2H) = %v, want >= 1s (implicit blocking)", s.Total)
	}
	// H2D is just the transfer.
	if s := lookup(t, m, "cudaMemcpy(H2D)"); s.Total > 10*time.Millisecond {
		t.Errorf("cudaMemcpy(H2D) = %v, want small", s.Total)
	}
	// cudaLaunch is asynchronous and cheap.
	if s := lookup(t, m, "cudaLaunch"); s.Total > time.Millisecond {
		t.Errorf("cudaLaunch = %v, want tiny", s.Total)
	}
	if s := lookup(t, m, "cudaSetupArgument"); s.Count != 2 {
		t.Errorf("cudaSetupArgument count = %d, want 2", s.Count)
	}
	// No pseudo entries without kernel timing.
	if s := lookup(t, m, ipm.ExecStreamName(0)); s.Count != 0 {
		t.Error("kernel timing entry present with KernelTiming off")
	}
	if s := lookup(t, m, ipm.HostIdleName); s.Count != 0 {
		t.Error("host idle entry present with HostIdle off")
	}
}

func TestFig5KernelTiming(t *testing.T) {
	m := run(t, Options{KernelTiming: true}, squareApp(time.Second, 100000))
	s := lookup(t, m, ipm.ExecStreamName(0))
	if s.Count != 1 {
		t.Fatalf("@CUDA_EXEC_STRM00 count = %d, want 1", s.Count)
	}
	// Event-bracketed timing is always >= the true kernel time and close
	// to it (constant event overhead).
	if s.Total < time.Second {
		t.Errorf("kernel timing %v below true duration", s.Total)
	}
	if s.Total > time.Second+time.Millisecond {
		t.Errorf("kernel timing %v too far above true duration", s.Total)
	}
	// Per-kernel breakdown entry exists.
	if ks := lookup(t, m, ipm.ExecKernelName(0, "square")); ks.Count != 1 {
		t.Errorf("per-kernel entry = %+v", ks)
	}
	// D2H still carries the implicit block (host idle off).
	if s := lookup(t, m, "cudaMemcpy(D2H)"); s.Total < time.Second {
		t.Errorf("cudaMemcpy(D2H) = %v", s.Total)
	}
}

func TestFig6HostIdle(t *testing.T) {
	m := run(t, Options{KernelTiming: true, HostIdle: true}, squareApp(time.Second, 100000))
	idle := lookup(t, m, ipm.HostIdleName)
	if idle.Count == 0 || idle.Total < 990*time.Millisecond {
		t.Fatalf("@CUDA_HOST_IDLE = %+v, want ~1s", idle)
	}
	// With the wait peeled off, the D2H transfer itself is now small
	// (paper: 1.16s -> 0.01s).
	d2h := lookup(t, m, "cudaMemcpy(D2H)")
	if d2h.Total > 10*time.Millisecond {
		t.Errorf("cudaMemcpy(D2H) after idle separation = %v, want ~0.8ms", d2h.Total)
	}
	// Kernel timing still present and correct.
	if s := lookup(t, m, ipm.ExecStreamName(0)); s.Total < time.Second {
		t.Errorf("kernel timing = %v", s.Total)
	}
}

func TestKTTFullDropsTiming(t *testing.T) {
	app := func(api cudart.API, p *des.Proc) {
		k := &cudart.Func{Name: "k", FixedCost: perfmodel.KernelCost{Fixed: 10 * time.Millisecond}}
		api.Malloc(8)
		// Launch 3 kernels back-to-back with no D2H in between; KTT size 2.
		for i := 0; i < 3; i++ {
			api.ConfigureCall(cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, 0)
			api.Launch(k)
		}
		api.ThreadSynchronize()
	}
	m := run(t, Options{KernelTiming: true, KTTSize: 2}, app)
	if m.KTTDropped() != 1 {
		t.Errorf("dropped = %d, want 1", m.KTTDropped())
	}
	if s := lookup(t, m, ipm.ExecStreamName(0)); s.Count != 2 {
		t.Errorf("timed kernels = %d, want 2", s.Count)
	}
}

func TestFlushDrainsKTTWithoutD2H(t *testing.T) {
	app := func(api cudart.API, p *des.Proc) {
		k := &cudart.Func{Name: "fire-and-forget", FixedCost: perfmodel.KernelCost{Fixed: 5 * time.Millisecond}}
		api.Malloc(8)
		api.ConfigureCall(cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, 0)
		api.Launch(k)
		// No D2H transfer follows; Flush (called by harness) must recover
		// the timing.
	}
	m := run(t, Options{KernelTiming: true}, app)
	if s := lookup(t, m, ipm.ExecStreamName(0)); s.Count != 1 {
		t.Errorf("flush did not drain KTT: %+v", s)
	}
}

func TestCheckEveryCallAblation(t *testing.T) {
	app := func(api cudart.API, p *des.Proc) {
		k := &cudart.Func{Name: "k", FixedCost: perfmodel.KernelCost{Fixed: time.Millisecond}}
		api.Malloc(8)
		api.ConfigureCall(cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, 0)
		api.Launch(k)
		api.ThreadSynchronize() // kernel done, but no D2H
		// An unrelated cheap call should trigger the flush under the
		// check-every-call policy.
		api.GetDevice()
		if s, _ := findEntry(api.(*Monitor), ipm.ExecStreamName(0)); s.Count != 1 {
			panic("not flushed by unrelated call")
		}
	}
	run(t, Options{KernelTiming: true, CheckEveryCall: true}, app)
}

func findEntry(m *Monitor, name string) (ipm.Stats, bool) {
	for _, e := range m.IPM().Table().Entries() {
		if e.Sig.Name == name {
			return e.Stats, true
		}
	}
	return ipm.Stats{}, false
}

func TestEventOverheadCorrection(t *testing.T) {
	base := run(t, Options{KernelTiming: true}, squareApp(10*time.Millisecond, 1000))
	corr := run(t, Options{KernelTiming: true, EventOverheadCorrection: 2 * time.Microsecond},
		squareApp(10*time.Millisecond, 1000))
	b := lookup(t, base, ipm.ExecStreamName(0)).Total
	c := lookup(t, corr, ipm.ExecStreamName(0)).Total
	if c >= b {
		t.Errorf("corrected %v not below uncorrected %v", c, b)
	}
	if b-c != 2*time.Microsecond {
		t.Errorf("correction delta = %v, want 2us", b-c)
	}
}

func TestTransparencyDataUnchanged(t *testing.T) {
	// The monitored application must compute the same results as the bare
	// one. Run the square kernel with a real body both ways.
	const n = 64
	runOnce := func(monitored bool) []float64 {
		e := des.NewEngine()
		dev := gpusim.NewDevice(e, testSpec())
		out := make([]float64, n)
		e.Spawn("host", func(p *des.Proc) {
			var api cudart.API = cudart.NewRuntime(p, dev, cudart.Options{})
			if monitored {
				mon := ipm.NewMonitor(0, "h", "cmd", p.Now, 0)
				mon.Start()
				api = Wrap(api, mon, p, Options{KernelTiming: true, HostIdle: true})
			}
			square := &cudart.Func{
				Name:      "square",
				FixedCost: perfmodel.KernelCost{Fixed: time.Millisecond},
				Body: func(ctx cudart.LaunchContext) {
					ptr := ctx.Args.Arg(0).(cudart.DevPtr)
					b, _ := ctx.Dev.Bytes(ptr, gpusim.F64Bytes(n))
					v := gpusim.Float64s(b)
					for i := 0; i < n; i++ {
						v.Set(i, v.At(i)*v.At(i))
					}
				},
			}
			buf := make([]byte, gpusim.F64Bytes(n))
			in := make([]float64, n)
			for i := range in {
				in[i] = float64(i) + 0.5
			}
			gpusim.Float64s(buf).CopyIn(in)
			d, _ := api.Malloc(gpusim.F64Bytes(n))
			api.Memcpy(cudart.DevicePtr(d), cudart.HostPtr(buf), gpusim.F64Bytes(n), cudart.MemcpyHostToDevice)
			api.ConfigureCall(cudart.Dim3{X: n}, cudart.Dim3{X: 1}, 0, 0)
			api.SetupArgument(d, 8, 0)
			api.Launch(square)
			api.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(d), gpusim.F64Bytes(n), cudart.MemcpyDeviceToHost)
			gpusim.Float64s(buf).CopyOut(out)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	bare, mon := runOnce(false), runOnce(true)
	for i := range bare {
		if bare[i] != mon[i] {
			t.Fatalf("monitoring changed results at %d: %v vs %v", i, bare[i], mon[i])
		}
	}
}

func TestMonitoringDilationSmall(t *testing.T) {
	// Application-level dilation of monitoring should be well under 1%
	// for a kernel-dominated workload (paper Fig. 8: 0.21%).
	wallOf := func(monitored bool) time.Duration {
		e := des.NewEngine()
		dev := gpusim.NewDevice(e, testSpec())
		e.Spawn("host", func(p *des.Proc) {
			var api cudart.API = cudart.NewRuntime(p, dev, cudart.Options{})
			var w *Monitor
			if monitored {
				mon := ipm.NewMonitor(0, "h", "cmd", p.Now, 0)
				mon.Start()
				w = Wrap(api, mon, p, Options{KernelTiming: true, HostIdle: true})
				api = w
			}
			d, _ := api.Malloc(8)
			k := &cudart.Func{Name: "k", FixedCost: perfmodel.KernelCost{Fixed: 20 * time.Millisecond}}
			buf := make([]byte, 8)
			for i := 0; i < 50; i++ {
				api.ConfigureCall(cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, 0)
				api.Launch(k)
				api.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(d), 8, cudart.MemcpyDeviceToHost)
			}
			if w != nil {
				w.Flush()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	bare, mon := wallOf(false), wallOf(true)
	dilation := float64(mon-bare) / float64(bare)
	if dilation < 0 {
		t.Fatalf("monitored run faster than bare: %v vs %v", mon, bare)
	}
	if dilation > 0.01 {
		t.Errorf("dilation = %.4f, want < 1%%", dilation)
	}
}

func TestTraceTimeline(t *testing.T) {
	var events []TraceEvent
	opts := Options{KernelTiming: true, HostIdle: true, Trace: func(ev TraceEvent) { events = append(events, ev) }}
	run(t, opts, squareApp(100*time.Millisecond, 1000))
	var seq []string
	for _, ev := range events {
		seq = append(seq, ev.What)
	}
	joined := strings.Join(seq, ";")
	for _, want := range []string{"launch (a)", "record start event (b)", "record stop event (c)",
		"cudaMemcpy (f)", "host idle sync", "transfer done (g)", "KTT flush square (h)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("timeline missing %q: %v", want, seq)
		}
	}
	// Ordering: (a) before (b) before (c); flush after transfer.
	idx := func(s string) int { return strings.Index(joined, s) }
	if !(idx("launch (a)") < idx("record start event (b)") &&
		idx("record start event (b)") < idx("record stop event (c)") &&
		idx("transfer done (g)") < idx("KTT flush square (h)")) {
		t.Errorf("timeline out of order: %v", seq)
	}
}

func TestDriverWrappers(t *testing.T) {
	app := func(api cudart.API, p *des.Proc) {
		m := api.(*Monitor)
		if err := m.CuInit(); err != nil {
			panic(err)
		}
		d, err := m.CuMemAlloc(16)
		if err != nil {
			panic(err)
		}
		k := &cudart.Func{Name: "drvk", FixedCost: perfmodel.KernelCost{Fixed: 50 * time.Millisecond}}
		if err := m.CuLaunchKernel(k, cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0); err != nil {
			panic(err)
		}
		out := make([]byte, 16)
		if err := m.CuMemcpyDtoH(out, d); err != nil {
			panic(err)
		}
		m.CuMemFree(d)
	}
	m := run(t, Options{KernelTiming: true, HostIdle: true}, app)
	if s := lookup(t, m, "cuMemcpyDtoH"); s.Count != 1 {
		t.Errorf("cuMemcpyDtoH not recorded: %+v", s)
	}
	if s := lookup(t, m, ipm.ExecKernelName(0, "drvk")); s.Count != 1 {
		t.Errorf("driver-launched kernel not timed: %+v", s)
	}
	if s := lookup(t, m, ipm.HostIdleName); s.Total < 40*time.Millisecond {
		t.Errorf("driver host idle = %+v", s)
	}
}

func TestAsyncMemcpyNoHostIdle(t *testing.T) {
	app := func(api cudart.API, p *des.Proc) {
		d, _ := api.Malloc(8)
		s, _ := api.StreamCreate()
		k := &cudart.Func{Name: "k", FixedCost: perfmodel.KernelCost{Fixed: 100 * time.Millisecond}}
		api.ConfigureCall(cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, s)
		api.Launch(k)
		api.MemcpyAsync(cudart.HostPtr(make([]byte, 8)), cudart.DevicePtr(d), 8, cudart.MemcpyDeviceToHost, s)
		api.StreamSynchronize(s)
	}
	m := run(t, Options{KernelTiming: true, HostIdle: true}, app)
	if s := lookup(t, m, ipm.HostIdleName); s.Count != 0 {
		t.Errorf("async memcpy produced host idle: %+v", s)
	}
	if s := lookup(t, m, "cudaMemcpyAsync(D2H)"); s.Count != 1 {
		t.Errorf("async memcpy not recorded: %+v", s)
	}
	// Kernel on stream 1 timed under STRM01.
	if s := lookup(t, m, ipm.ExecStreamName(1)); s.Count != 1 {
		t.Errorf("stream-1 kernel timing: %+v", s)
	}
}

func TestMemsetNotHostIdleProbed(t *testing.T) {
	app := func(api cudart.API, p *des.Proc) {
		d, _ := api.Malloc(64)
		k := &cudart.Func{Name: "k", FixedCost: perfmodel.KernelCost{Fixed: 200 * time.Millisecond}}
		api.ConfigureCall(cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, 0)
		api.Launch(k)
		api.Memset(d, 0, 64) // must not charge @CUDA_HOST_IDLE
		api.ThreadSynchronize()
	}
	m := run(t, Options{KernelTiming: true, HostIdle: true}, app)
	if s := lookup(t, m, ipm.HostIdleName); s.Count != 0 {
		t.Errorf("memset charged host idle: %+v", s)
	}
}
