package ipmcuda

import (
	"ipmgo/internal/cudart"
)

// Driver API wrappers (cuXxx symbols). Middleware such as the CUBLAS
// thunking layer calls these; the monitoring treatment matches the runtime
// API: cuMemcpyDtoH performs host-idle detection and the KTT completion
// check, cuMemsetD8 is excluded from host-idle (paper Section III-C).

// errNoDriver is returned when the wrapped API does not expose the driver
// surface.
func (m *Monitor) driver() cudart.Driver { return m.drv }

// CuInit wraps cuInit.
func (m *Monitor) CuInit() error {
	var err error
	m.timed(refCuInit, 0, func() { err = m.driver().CuInit() })
	return err
}

// CuMemAlloc wraps cuMemAlloc.
func (m *Monitor) CuMemAlloc(n int64) (cudart.DevPtr, error) {
	var p cudart.DevPtr
	var err error
	m.timed(refCuMemAlloc, n, func() { p, err = m.driver().CuMemAlloc(n) })
	return p, err
}

// CuMemFree wraps cuMemFree.
func (m *Monitor) CuMemFree(p cudart.DevPtr) error {
	var err error
	m.timed(refCuMemFree, 0, func() { err = m.driver().CuMemFree(p) })
	return err
}

// CuMemcpyHtoD wraps the synchronous cuMemcpyHtoD (implicitly blocking).
func (m *Monitor) CuMemcpyHtoD(dst cudart.DevPtr, src []byte) error {
	m.hostIdle(0)
	var err error
	m.timedW(refCuMemcpyHtoD, int64(len(src)), m.opts.CopyWatts, func() { err = m.driver().CuMemcpyHtoD(dst, src) })
	return err
}

// CuMemcpyDtoH wraps the synchronous cuMemcpyDtoH: host-idle detection,
// timed call, then the KTT completion check (device-to-host transfers are
// where IPM polls for finished kernels).
func (m *Monitor) CuMemcpyDtoH(dst []byte, src cudart.DevPtr) error {
	m.hostIdle(0)
	var err error
	m.timedW(refCuMemcpyDtoH, int64(len(dst)), m.opts.CopyWatts, func() { err = m.driver().CuMemcpyDtoH(dst, src) })
	if m.opts.KernelTiming {
		m.checkKTT()
	}
	return err
}

// CuMemsetD8 wraps cuMemsetD8 — like cudaMemset, excluded from host-idle
// measurement.
func (m *Monitor) CuMemsetD8(p cudart.DevPtr, value byte, n int64) error {
	var err error
	m.timedW(refCuMemsetD8, n, m.opts.MemsetWatts, func() { err = m.driver().CuMemsetD8(p, value, n) })
	return err
}

// CuLaunchKernel wraps cuLaunchKernel with the same KTT treatment as
// cudaLaunch.
func (m *Monitor) CuLaunchKernel(fn *cudart.Func, grid, block cudart.Dim3, s cudart.Stream, args ...any) error {
	slot := -1
	if m.opts.KernelTiming && fn != nil {
		slot = m.findSlot()
		if slot < 0 {
			m.kttDropped++
		} else if !m.armSlot(slot, s, fn.Name) {
			m.releaseSlot(slot)
			slot = -1
		}
	}
	var err error
	m.timed(refCuLaunchKernel, 0, func() { err = m.driver().CuLaunchKernel(fn, grid, block, s, args...) })
	if slot >= 0 {
		if rerr := m.inner.EventRecord(m.ktt[slot].stop, s); rerr != nil {
			m.unarm(slot)
		}
	}
	return err
}

// CuStreamSynchronize wraps cuStreamSynchronize.
func (m *Monitor) CuStreamSynchronize(s cudart.Stream) error {
	var err error
	m.timed(refCuStreamSync, 0, func() { err = m.driver().CuStreamSynchronize(s) })
	return err
}

// CuCtxSynchronize wraps cuCtxSynchronize.
func (m *Monitor) CuCtxSynchronize() error {
	var err error
	m.timed(refCuCtxSync, 0, func() { err = m.driver().CuCtxSynchronize() })
	return err
}
