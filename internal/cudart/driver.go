package cudart

// Driver is the CUDA driver API surface (cuXxx symbols). It overlaps the
// runtime API in functionality, as the paper notes; library and middleware
// code prefers it. IPM interposes on both. The simulated Runtime
// implements Driver by delegation onto the same device context.
type Driver interface {
	CuInit() error
	CuMemAlloc(n int64) (DevPtr, error)
	CuMemFree(p DevPtr) error
	CuMemcpyHtoD(dst DevPtr, src []byte) error
	CuMemcpyDtoH(dst []byte, src DevPtr) error
	CuMemsetD8(p DevPtr, value byte, n int64) error
	CuLaunchKernel(fn *Func, grid, block Dim3, s Stream, args ...any) error
	CuStreamSynchronize(s Stream) error
	CuCtxSynchronize() error
}

var _ Driver = (*Runtime)(nil)

// CuInit initialises the driver (and, in this model, the context).
func (r *Runtime) CuInit() error {
	r.ensureInit()
	r.base()
	return nil
}

// CuMemAlloc allocates device memory through the driver API.
func (r *Runtime) CuMemAlloc(n int64) (DevPtr, error) { return r.Malloc(n) }

// CuMemFree frees device memory through the driver API.
func (r *Runtime) CuMemFree(p DevPtr) error { return r.Free(p) }

// CuMemcpyHtoD is the synchronous host-to-device copy of the driver API.
func (r *Runtime) CuMemcpyHtoD(dst DevPtr, src []byte) error {
	return r.Memcpy(DevicePtr(dst), HostPtr(src), int64(len(src)), MemcpyHostToDevice)
}

// CuMemcpyDtoH is the synchronous device-to-host copy of the driver API.
func (r *Runtime) CuMemcpyDtoH(dst []byte, src DevPtr) error {
	return r.Memcpy(HostPtr(dst), DevicePtr(src), int64(len(dst)), MemcpyDeviceToHost)
}

// CuMemsetD8 fills device memory; like cudaMemset it does not implicitly
// block the host.
func (r *Runtime) CuMemsetD8(p DevPtr, value byte, n int64) error { return r.Memset(p, value, n) }

// CuLaunchKernel launches a kernel through the driver API.
func (r *Runtime) CuLaunchKernel(fn *Func, grid, block Dim3, s Stream, args ...any) error {
	return r.LaunchKernel(fn, grid, block, s, args...)
}

// CuStreamSynchronize waits for a stream to drain.
func (r *Runtime) CuStreamSynchronize(s Stream) error { return r.StreamSynchronize(s) }

// CuCtxSynchronize waits for the whole context (device) to go idle.
func (r *Runtime) CuCtxSynchronize() error { return r.ThreadSynchronize() }
