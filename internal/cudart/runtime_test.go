package cudart

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

// fastSpec has no context-init cost and round PCIe numbers, keeping timing
// assertions simple.
func fastSpec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.ContextInit = 0
	s.PCIeLatency = 0
	s.PCIeH2DGBs = 1
	s.PCIeD2HGBs = 1
	s.KernelDispatch = 0
	s.KernelLaunch = 0
	s.EventRecordCost = 0
	s.APICallCost = 0
	return s
}

// run executes fn as a host process with a fresh runtime and returns the
// final virtual time.
func run(t *testing.T, spec perfmodel.GPUSpec, opts Options, fn func(p *des.Proc, rt *Runtime)) time.Duration {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec)
	e.Spawn("host", func(p *des.Proc) {
		fn(p, NewRuntime(p, dev, opts))
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func fixedKernel(name string, d time.Duration) *Func {
	return &Func{Name: name, FixedCost: perfmodel.KernelCost{Fixed: d}}
}

func TestFirstCallPaysContextInit(t *testing.T) {
	spec := fastSpec()
	spec.ContextInit = 2 * time.Second
	var first, second time.Duration
	run(t, spec, Options{}, func(p *des.Proc, rt *Runtime) {
		t0 := p.Now()
		if _, err := rt.Malloc(8); err != nil {
			t.Fatal(err)
		}
		first = p.Now() - t0
		t0 = p.Now()
		if _, err := rt.Malloc(8); err != nil {
			t.Fatal(err)
		}
		second = p.Now() - t0
	})
	if first < 2*time.Second {
		t.Errorf("first Malloc took %v, want >= 2s (context init)", first)
	}
	if second >= 2*time.Second {
		t.Errorf("second Malloc took %v, want cheap", second)
	}
}

func TestSquareExampleRoundTrip(t *testing.T) {
	// The paper's Fig. 3 example: H2D, square kernel, D2H; verify data.
	const N = 1000
	square := &Func{
		Name:      "square",
		FixedCost: perfmodel.KernelCost{Fixed: time.Millisecond},
		Body: func(ctx LaunchContext) {
			ptr := ctx.Args.Arg(0).(DevPtr)
			n := ctx.Args.Arg(1).(int)
			b, err := ctx.Dev.Bytes(ptr, gpusim.F64Bytes(n))
			if err != nil {
				panic(err)
			}
			v := gpusim.Float64s(b)
			for i := 0; i < n; i++ {
				x := v.At(i)
				v.Set(i, x*x)
			}
		},
	}
	host := make([]float64, N)
	for i := range host {
		host[i] = float64(i)
	}
	buf := make([]byte, gpusim.F64Bytes(N))
	gpusim.Float64s(buf).CopyIn(host)

	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		dptr, err := rt.Malloc(gpusim.F64Bytes(N))
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Memcpy(DevicePtr(dptr), HostPtr(buf), gpusim.F64Bytes(N), MemcpyHostToDevice); err != nil {
			t.Fatal(err)
		}
		if err := rt.LaunchKernel(square, Dim3{X: N}, Dim3{X: 1}, 0, dptr, N); err != nil {
			t.Fatal(err)
		}
		if err := rt.Memcpy(HostPtr(buf), DevicePtr(dptr), gpusim.F64Bytes(N), MemcpyDeviceToHost); err != nil {
			t.Fatal(err)
		}
		if err := rt.Free(dptr); err != nil {
			t.Fatal(err)
		}
	})
	out := make([]float64, N)
	gpusim.Float64s(buf).CopyOut(out)
	for i := range out {
		want := float64(i) * float64(i)
		if out[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestSyncMemcpyImplicitlyBlocksBehindKernel(t *testing.T) {
	// Launch an async 1 s kernel, then a tiny sync D2H copy. The copy must
	// not return before the kernel finishes — the behaviour @CUDA_HOST_IDLE
	// quantifies.
	var launchReturned, memcpyReturned time.Duration
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		dptr, _ := rt.Malloc(8)
		if err := rt.LaunchKernel(fixedKernel("slow", time.Second), Dim3{X: 1}, Dim3{X: 1}, 0); err != nil {
			t.Fatal(err)
		}
		launchReturned = p.Now()
		buf := make([]byte, 8)
		if err := rt.Memcpy(HostPtr(buf), DevicePtr(dptr), 8, MemcpyDeviceToHost); err != nil {
			t.Fatal(err)
		}
		memcpyReturned = p.Now()
	})
	if launchReturned >= time.Second {
		t.Errorf("launch blocked: returned at %v", launchReturned)
	}
	if memcpyReturned < time.Second {
		t.Errorf("sync memcpy returned at %v, before kernel completion", memcpyReturned)
	}
}

func TestMemsetDoesNotBlock(t *testing.T) {
	// cudaMemset behind a slow kernel returns immediately (the paper's
	// microbenchmark exception).
	var after time.Duration
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		dptr, _ := rt.Malloc(1 << 20)
		if err := rt.LaunchKernel(fixedKernel("slow", time.Second), Dim3{X: 1}, Dim3{X: 1}, 0); err != nil {
			t.Fatal(err)
		}
		if err := rt.Memset(dptr, 0xAB, 1<<20); err != nil {
			t.Fatal(err)
		}
		after = p.Now()
		rt.ThreadSynchronize()
		b, _ := rt.Device().Bytes(dptr, 4)
		if b[0] != 0xAB {
			t.Errorf("memset payload did not run: %x", b[0])
		}
	})
	if after >= time.Second {
		t.Errorf("Memset blocked until %v", after)
	}
}

func TestMemcpyAsyncReturnsImmediately(t *testing.T) {
	var after time.Duration
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		dptr, _ := rt.Malloc(8)
		s, _ := rt.StreamCreate()
		// nil host buffer: a cost-only transfer with no functional payload.
		if err := rt.MemcpyAsync(DevicePtr(dptr), HostPtr(nil), 1e9, MemcpyHostToDevice, s); err != nil {
			t.Fatal(err)
		}
		after = p.Now()
		rt.StreamSynchronize(s)
		if p.Now() < time.Second {
			t.Errorf("1 GB at 1 GB/s finished at %v, want >= 1s", p.Now())
		}
	})
	if after >= 100*time.Millisecond {
		t.Errorf("MemcpyAsync blocked until %v", after)
	}
}

func TestLaunchWithoutConfigureFails(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		err := rt.Launch(fixedKernel("k", time.Millisecond))
		var ce *Error
		if !errors.As(err, &ce) || ce.Code != CodeInvalidConfiguration {
			t.Errorf("Launch without configure: %v", err)
		}
		if err := rt.SetupArgument(1, 8, 0); err == nil {
			t.Error("SetupArgument without configure should fail")
		}
		// The error is sticky until read.
		if got := rt.GetLastError(); got == nil {
			t.Error("GetLastError lost the sticky error")
		}
		if got := rt.GetLastError(); got != nil {
			t.Errorf("GetLastError did not clear: %v", got)
		}
	})
}

func TestLaunchBlockingOption(t *testing.T) {
	var after time.Duration
	run(t, fastSpec(), Options{LaunchBlocking: true}, func(p *des.Proc, rt *Runtime) {
		rt.Malloc(8) // init
		if err := rt.LaunchKernel(fixedKernel("k", time.Second), Dim3{X: 1}, Dim3{X: 1}, 0); err != nil {
			t.Fatal(err)
		}
		after = p.Now()
	})
	if after < time.Second {
		t.Errorf("blocking launch returned at %v, want >= 1s", after)
	}
}

func TestEventTimingKernel(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		s, _ := rt.StreamCreate()
		start, _ := rt.EventCreate()
		stop, _ := rt.EventCreate()
		if err := rt.EventRecord(start, s); err != nil {
			t.Fatal(err)
		}
		if err := rt.LaunchKernel(fixedKernel("k", 50*time.Millisecond), Dim3{X: 1}, Dim3{X: 1}, s); err != nil {
			t.Fatal(err)
		}
		if err := rt.EventRecord(stop, s); err != nil {
			t.Fatal(err)
		}
		if err := rt.EventQuery(stop); !errors.Is(err, ErrNotReady) {
			t.Errorf("EventQuery before completion = %v, want ErrNotReady", err)
		}
		if _, err := rt.EventElapsedTime(start, stop); !errors.Is(err, ErrNotReady) {
			t.Errorf("ElapsedTime before completion = %v, want ErrNotReady", err)
		}
		if err := rt.EventSynchronize(stop); err != nil {
			t.Fatal(err)
		}
		if err := rt.EventQuery(stop); err != nil {
			t.Errorf("EventQuery after sync = %v", err)
		}
		d, err := rt.EventElapsedTime(start, stop)
		if err != nil {
			t.Fatal(err)
		}
		if d < 50*time.Millisecond || d > 51*time.Millisecond {
			t.Errorf("elapsed = %v, want ~50ms", d)
		}
		if err := rt.EventDestroy(stop); err != nil {
			t.Fatal(err)
		}
		if err := rt.EventQuery(stop); err == nil {
			t.Error("query of destroyed event should fail")
		}
	})
}

func TestStreamSynchronizeNullWaitsForAll(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		s, _ := rt.StreamCreate()
		if err := rt.LaunchKernel(fixedKernel("k", time.Second), Dim3{X: 1}, Dim3{X: 1}, s); err != nil {
			t.Fatal(err)
		}
		if err := rt.StreamSynchronize(0); err != nil {
			t.Fatal(err)
		}
		if p.Now() < time.Second {
			t.Errorf("NULL-stream sync returned at %v with work on stream %d pending", p.Now(), s)
		}
	})
}

func TestMemcpyToSymbol(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		if err := rt.MemcpyToSymbol("cSim", []byte{9, 8, 7}); err != nil {
			t.Fatal(err)
		}
		ptr, ok := rt.SymbolPtr("cSim")
		if !ok {
			t.Fatal("symbol not registered")
		}
		b, err := rt.Device().Bytes(ptr, 3)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != 9 || b[2] != 7 {
			t.Errorf("symbol contents = %v", b)
		}
		// Second copy reuses the allocation.
		if err := rt.MemcpyToSymbol("cSim", []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if rt.Device().AllocCount() != 1 {
			t.Errorf("symbol realloc leaked: %d allocations", rt.Device().AllocCount())
		}
		if err := rt.MemcpyToSymbol("", nil); err == nil {
			t.Error("empty symbol should fail")
		}
	})
}

func TestMemcpyKindValidation(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		d, _ := rt.Malloc(8)
		h := make([]byte, 8)
		cases := []struct {
			dst, src Ptr
			kind     MemcpyKind
		}{
			{HostPtr(h), HostPtr(h), MemcpyHostToDevice},
			{DevicePtr(d), DevicePtr(d), MemcpyDeviceToHost},
			{HostPtr(h), HostPtr(h), MemcpyDeviceToDevice},
			{DevicePtr(d), HostPtr(h), MemcpyHostToHost},
			{DevicePtr(d), HostPtr(h), MemcpyKind(42)},
		}
		for i, c := range cases {
			if err := rt.Memcpy(c.dst, c.src, 8, c.kind); err == nil {
				t.Errorf("case %d: invalid direction accepted", i)
			}
		}
	})
}

func TestUnknownHandles(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		if err := rt.StreamSynchronize(Stream(99)); err == nil {
			t.Error("unknown stream accepted")
		}
		if err := rt.EventRecord(Event(99), 0); err == nil {
			t.Error("unknown event accepted")
		}
		if err := rt.StreamDestroy(Stream(99)); err == nil {
			t.Error("destroy of unknown stream accepted")
		}
		if err := rt.SetDevice(5); err == nil {
			t.Error("SetDevice out of range accepted")
		}
		if n, err := rt.GetDeviceCount(); err != nil || n != 1 {
			t.Errorf("GetDeviceCount = %d, %v", n, err)
		}
	})
}

func TestGetDeviceProperties(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		prop, err := rt.GetDeviceProperties()
		if err != nil {
			t.Fatal(err)
		}
		if prop.Name != "Tesla C2050" || prop.MultiProcessorCount != 14 || prop.ConcurrentKernels != 16 {
			t.Errorf("unexpected properties: %+v", prop)
		}
	})
}

func TestDriverAPIDelegation(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		if err := rt.CuInit(); err != nil {
			t.Fatal(err)
		}
		d, err := rt.CuMemAlloc(4)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.CuMemcpyHtoD(d, []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 4)
		if err := rt.CuMemcpyDtoH(out, d); err != nil {
			t.Fatal(err)
		}
		if out[3] != 4 {
			t.Errorf("driver roundtrip = %v", out)
		}
		if err := rt.CuMemsetD8(d, 0xFF, 4); err != nil {
			t.Fatal(err)
		}
		if err := rt.CuCtxSynchronize(); err != nil {
			t.Fatal(err)
		}
		if err := rt.CuMemcpyDtoH(out, d); err != nil {
			t.Fatal(err)
		}
		if out[0] != 0xFF {
			t.Errorf("CuMemsetD8 payload missing: %v", out)
		}
		if err := rt.CuMemFree(d); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPinnedTransferFaster(t *testing.T) {
	spec := fastSpec()
	spec.PinnedFactor = 2
	var pageable, pinned time.Duration
	run(t, spec, Options{}, func(p *des.Proc, rt *Runtime) {
		d, _ := rt.Malloc(1 << 20)
		buf := make([]byte, 1<<20)
		t0 := p.Now()
		rt.Memcpy(DevicePtr(d), HostPtr(buf), 1<<20, MemcpyHostToDevice)
		pageable = p.Now() - t0
		pb, _ := rt.HostAlloc(1 << 20)
		t0 = p.Now()
		rt.Memcpy(DevicePtr(d), PinnedPtr(pb), 1<<20, MemcpyHostToDevice)
		pinned = p.Now() - t0
	})
	if pinned >= pageable {
		t.Errorf("pinned %v not faster than pageable %v", pinned, pageable)
	}
}

func TestMemGetInfo(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		_, _ = rt.Malloc(1 << 20)
		free, total, err := rt.MemGetInfo()
		if err != nil {
			t.Fatal(err)
		}
		if total-free != 1<<20 {
			t.Errorf("used = %d, want 1MiB", total-free)
		}
	})
}

func TestHostToHostMemcpy(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		src := []byte{1, 2, 3}
		dst := make([]byte, 3)
		if err := rt.Memcpy(HostPtr(dst), HostPtr(src), 3, MemcpyHostToHost); err != nil {
			t.Fatal(err)
		}
		if dst[2] != 3 {
			t.Errorf("H2H copy failed: %v", dst)
		}
	})
}

func TestDim3(t *testing.T) {
	if (Dim3{}).Count() != 1 {
		t.Error("zero Dim3 should count 1")
	}
	if (Dim3{X: 2, Y: 3, Z: 4}).Count() != 24 {
		t.Error("Dim3 count wrong")
	}
}

func TestErrorIs(t *testing.T) {
	err := errCode(CodeNotReady, "detail")
	if !errors.Is(err, ErrNotReady) {
		t.Error("errors.Is on matching code failed")
	}
	if errors.Is(err, ErrMemoryAllocation) {
		t.Error("errors.Is matched wrong code")
	}
	if Code(999).String() == "" {
		t.Error("unknown code String empty")
	}
}

// Property: H2D then D2H round-trips arbitrary payloads.
func TestPropMemcpyRoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		ok := true
		run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
			n := int64(len(data))
			d, err := rt.Malloc(n)
			if err != nil {
				ok = false
				return
			}
			if err := rt.Memcpy(DevicePtr(d), HostPtr(data), n, MemcpyHostToDevice); err != nil {
				ok = false
				return
			}
			out := make([]byte, n)
			if err := rt.Memcpy(HostPtr(out), DevicePtr(d), n, MemcpyDeviceToHost); err != nil {
				ok = false
				return
			}
			for i := range data {
				if out[i] != data[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
