package cudart

import (
	"time"

	"ipmgo/internal/cmdqueue"
	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

// Options tunes host-side costs of the runtime that are not part of the
// GPU specification.
type Options struct {
	// LaunchBlocking makes every Launch wait for kernel completion, like
	// setting CUDA_LAUNCH_BLOCKING=1.
	LaunchBlocking bool
	// DeviceCount is the device count reported by GetDeviceCount
	// (default 1).
	DeviceCount int
	// DeviceQueryCost is the per-call host cost of GetDeviceCount beyond
	// the base API cost (a driver round trip; default 2us).
	DeviceQueryCost time.Duration
	// MallocCost is the host-side cost of cudaMalloc beyond context
	// initialisation (default 10us).
	MallocCost time.Duration
	// HostMemcpyGBs is the host-to-host copy bandwidth (default 8 GB/s).
	HostMemcpyGBs float64
	// Inject, when non-nil, is consulted at the top of every
	// device-touching API call with the cudaXxx symbol name and the
	// current virtual time. A non-nil return becomes the call's (sticky)
	// error and the real operation is skipped — the seam
	// internal/faultsim hooks into. The hook must be deterministic in
	// (call, call order, virtual time); it must never read wall clock.
	Inject func(call string, now time.Duration) error
	// Queue, when non-nil, routes kernel launches, memcpys, memsets and
	// event records through a driver command-queue (internal/cmdqueue)
	// instead of handing them to the device directly: commands batch in
	// the context's submission queue and reach the device at flush time
	// (size/timer/sync-point heuristics), making launch→submit latency
	// part of the simulated schedule and observable as submit stall.
	// Nil preserves the direct path bit-for-bit.
	Queue *cmdqueue.Options
}

func (o Options) withDefaults() Options {
	if o.DeviceCount == 0 {
		o.DeviceCount = 1
	}
	if o.DeviceQueryCost == 0 {
		o.DeviceQueryCost = 2 * time.Microsecond
	}
	if o.MallocCost == 0 {
		o.MallocCost = 10 * time.Microsecond
	}
	if o.HostMemcpyGBs == 0 {
		o.HostMemcpyGBs = 8
	}
	return o
}

// launchConfig is one entry of the execution-configuration stack pushed by
// ConfigureCall.
type launchConfig struct {
	grid, block Dim3
	sharedMem   int64
	stream      Stream
	args        KernelArgs
}

// Runtime is the concrete CUDA runtime bound to one host process (one CUDA
// context). Several Runtimes may share one Device, modelling multiple MPI
// tasks sharing a node's GPU.
type Runtime struct {
	proc *des.Proc
	dev  *gpusim.Device
	opts Options

	inited     bool
	streams    map[Stream]*gpusim.Stream
	nextStream Stream
	events     map[Event]*gpusim.DevEvent
	nextEvent  Event
	pending    []launchConfig
	symbols    map[string]DevPtr
	lastErr    error
	queue      *cmdqueue.Queue // nil: direct submission path
}

var _ API = (*Runtime)(nil)

// NewRuntime creates a CUDA context for the host process on the device.
func NewRuntime(proc *des.Proc, dev *gpusim.Device, opts Options) *Runtime {
	r := &Runtime{
		proc:       proc,
		dev:        dev,
		opts:       opts.withDefaults(),
		streams:    make(map[Stream]*gpusim.Stream),
		nextStream: 1,
		events:     make(map[Event]*gpusim.DevEvent),
		nextEvent:  1,
		symbols:    make(map[string]DevPtr),
	}
	if r.opts.Queue != nil {
		r.queue = cmdqueue.New(dev, *r.opts.Queue)
	}
	return r
}

// Queue returns the context's command queue, or nil on the direct path.
func (r *Runtime) Queue() *cmdqueue.Queue { return r.queue }

// queueFail maps a command-queue error (a lost device draining its
// batch) to the runtime's sticky cudaErrorDeviceLost.
func (r *Runtime) queueFail(err error) error {
	return r.fail(errCode(CodeDeviceLost, "command queue: %v", err))
}

// flushQueue force-submits the context's queued commands at a host
// synchronisation point. No-op on the direct path.
func (r *Runtime) flushQueue() error {
	if r.queue == nil {
		return nil
	}
	if err := r.queue.Flush(); err != nil {
		return r.queueFail(err)
	}
	return nil
}

// Proc returns the host process the runtime is bound to.
func (r *Runtime) Proc() *des.Proc { return r.proc }

// Device returns the underlying simulated device.
func (r *Runtime) Device() *gpusim.Device { return r.dev }

// ensureInit charges the one-time CUDA context creation cost. The paper's
// Fig. 4 shows it surfacing inside the first API call (cudaMalloc, 2.43 s).
func (r *Runtime) ensureInit() {
	if r.inited {
		return
	}
	r.inited = true
	r.proc.Sleep(r.dev.Spec().ContextInit)
}

func (r *Runtime) base() { r.proc.Sleep(r.dev.Spec().APICallCost) }

// fail records err as the sticky last error and returns it.
func (r *Runtime) fail(err error) error {
	r.lastErr = err
	return err
}

// inject consults the fault hook for a call; an injected error stands in
// for the real operation's failure and is sticky like any other.
func (r *Runtime) inject(call string) error {
	if r.opts.Inject == nil {
		return nil
	}
	if err := r.opts.Inject(call, r.proc.Now()); err != nil {
		return r.fail(err)
	}
	return nil
}

func (r *Runtime) stream(s Stream) (*gpusim.Stream, error) {
	if s == 0 {
		return r.dev.DefaultStream(), nil
	}
	gs, ok := r.streams[s]
	if !ok {
		return nil, errCode(CodeInvalidResourceHandle, "unknown stream %d", s)
	}
	return gs, nil
}

// Malloc allocates device memory. The first call pays context
// initialisation.
func (r *Runtime) Malloc(n int64) (DevPtr, error) {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaMalloc"); err != nil {
		return DevPtr{}, err
	}
	r.proc.Sleep(r.opts.MallocCost)
	p, err := r.dev.Alloc(n)
	if err != nil {
		return DevPtr{}, r.fail(errCode(CodeMemoryAllocation, "%v", err))
	}
	return p, nil
}

// Free releases device memory.
func (r *Runtime) Free(p DevPtr) error {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaFree"); err != nil {
		return err
	}
	if err := r.dev.Free(p); err != nil {
		return r.fail(errCode(CodeInvalidDevicePointer, "%v", err))
	}
	return nil
}

// HostAlloc allocates page-locked host memory (cudaHostAlloc /
// cudaMallocHost). Pinning costs time proportional to the size.
func (r *Runtime) HostAlloc(n int64) ([]byte, error) {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaHostAlloc"); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, r.fail(errCode(CodeInvalidValue, "negative size %d", n))
	}
	// Pinning pages: ~2 GB/s.
	r.proc.Sleep(time.Duration(float64(n) / 2e9 * float64(time.Second)))
	return make([]byte, n), nil
}

// memcpyPayload returns the functional data movement for a transfer, or
// nil when either side carries no backing storage.
func (r *Runtime) memcpyPayload(dst, src Ptr, n int64, kind MemcpyKind) func() {
	switch kind {
	case MemcpyHostToDevice:
		if src.Host == nil {
			return nil
		}
		return func() {
			if b, err := r.dev.Bytes(dst.Dev, n); err == nil {
				copy(b, src.Host[:n])
			}
		}
	case MemcpyDeviceToHost:
		if dst.Host == nil {
			return nil
		}
		return func() {
			if b, err := r.dev.Bytes(src.Dev, n); err == nil {
				copy(dst.Host[:n], b)
			}
		}
	case MemcpyDeviceToDevice:
		return func() {
			db, derr := r.dev.Bytes(dst.Dev, n)
			sb, serr := r.dev.Bytes(src.Dev, n)
			if derr == nil && serr == nil {
				copy(db, sb)
			}
		}
	}
	return nil
}

func validateKind(dst, src Ptr, kind MemcpyKind) error {
	switch kind {
	case MemcpyHostToHost:
		if dst.IsDev || src.IsDev {
			return errCode(CodeInvalidMemcpyDirection, "H2H with device pointer")
		}
	case MemcpyHostToDevice:
		if !dst.IsDev || src.IsDev {
			return errCode(CodeInvalidMemcpyDirection, "H2D expects device dst, host src")
		}
	case MemcpyDeviceToHost:
		if dst.IsDev || !src.IsDev {
			return errCode(CodeInvalidMemcpyDirection, "D2H expects host dst, device src")
		}
	case MemcpyDeviceToDevice:
		if !dst.IsDev || !src.IsDev {
			return errCode(CodeInvalidMemcpyDirection, "D2D expects device pointers")
		}
	default:
		return errCode(CodeInvalidMemcpyDirection, "unknown kind %d", kind)
	}
	return nil
}

// Memcpy is the synchronous copy. Per the CUDA 3.x semantics the paper
// exploits, it is issued to the NULL stream and blocks the host until the
// transfer — and, via NULL-stream ordering, all previously submitted
// device work — has completed. This is the implicit host blocking that
// IPM's @CUDA_HOST_IDLE metric exposes.
func (r *Runtime) Memcpy(dst, src Ptr, n int64, kind MemcpyKind) error {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaMemcpy"); err != nil {
		return err
	}
	if err := validateKind(dst, src, kind); err != nil {
		return r.fail(err)
	}
	if kind == MemcpyHostToHost {
		r.proc.Sleep(time.Duration(float64(n) / (r.opts.HostMemcpyGBs * 1e9) * float64(time.Second)))
		if dst.Host != nil && src.Host != nil {
			copy(dst.Host[:n], src.Host[:n])
		}
		return nil
	}
	dir := transferDir(kind)
	pinned := src.Pinned || dst.Pinned
	if r.queue != nil {
		// Synchronous copy: enqueue, force the batch out (a sync point
		// flushes the context's queue), then wait for the copy — the last
		// op the flush placed on the NULL stream.
		if err := r.queue.EnqueueCopy(r.dev.DefaultStream(), memcpySites[kind], dir, n, pinned, r.memcpyPayload(dst, src, n, kind)); err != nil {
			return r.queueFail(err)
		}
		if err := r.flushQueue(); err != nil {
			return err
		}
		if last := r.dev.DefaultStream().Last(); last != nil {
			r.proc.Wait(last.Done())
		}
		return nil
	}
	op := r.dev.EnqueueCopy(r.dev.DefaultStream(), dir, n, pinned, r.memcpyPayload(dst, src, n, kind))
	r.proc.Wait(op.Done())
	return nil
}

// memcpySites / memcpyAsyncSites pre-intern the direction-tagged call
// sites stall is attributed to. The strings must stay byte-identical to
// the signature names ipmcuda records ("cudaMemcpy(H2D)", ...), so the
// queue's OnSubmit hook folds stall into the same hash-table row as the
// call's host timing.
var memcpySites = [...]string{
	MemcpyHostToHost:     "cudaMemcpy(H2H)",
	MemcpyHostToDevice:   "cudaMemcpy(H2D)",
	MemcpyDeviceToHost:   "cudaMemcpy(D2H)",
	MemcpyDeviceToDevice: "cudaMemcpy(D2D)",
}

var memcpyAsyncSites = [...]string{
	MemcpyHostToHost:     "cudaMemcpyAsync(H2H)",
	MemcpyHostToDevice:   "cudaMemcpyAsync(H2D)",
	MemcpyDeviceToHost:   "cudaMemcpyAsync(D2H)",
	MemcpyDeviceToDevice: "cudaMemcpyAsync(D2D)",
}

func transferDir(kind MemcpyKind) perfmodel.TransferDir {
	switch kind {
	case MemcpyHostToDevice:
		return perfmodel.HostToDevice
	case MemcpyDeviceToHost:
		return perfmodel.DeviceToHost
	default:
		return perfmodel.DeviceToDevice
	}
}

// MemcpyAsync enqueues the copy on the given stream and returns
// immediately. (With pageable memory the real runtime may stage the copy;
// we model all async copies as truly asynchronous and note the
// simplification in DESIGN.md.)
func (r *Runtime) MemcpyAsync(dst, src Ptr, n int64, kind MemcpyKind, s Stream) error {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaMemcpyAsync"); err != nil {
		return err
	}
	if err := validateKind(dst, src, kind); err != nil {
		return r.fail(err)
	}
	gs, err := r.stream(s)
	if err != nil {
		return r.fail(err)
	}
	if kind == MemcpyHostToHost {
		if dst.Host != nil && src.Host != nil {
			copy(dst.Host[:n], src.Host[:n])
		}
		return nil
	}
	pinned := src.Pinned || dst.Pinned
	if r.queue != nil {
		if err := r.queue.EnqueueCopy(gs, memcpyAsyncSites[kind], transferDir(kind), n, pinned, r.memcpyPayload(dst, src, n, kind)); err != nil {
			return r.queueFail(err)
		}
		return nil
	}
	r.dev.EnqueueCopy(gs, transferDir(kind), n, pinned, r.memcpyPayload(dst, src, n, kind))
	return nil
}

// MemcpyToSymbol copies host data to a named device symbol (module-scope
// __device__/__constant__ variable), allocating the symbol's storage on
// first use. Like Memcpy it is synchronous.
func (r *Runtime) MemcpyToSymbol(symbol string, src []byte) error {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaMemcpyToSymbol"); err != nil {
		return err
	}
	if symbol == "" {
		return r.fail(errCode(CodeInvalidSymbol, "empty symbol name"))
	}
	n := int64(len(src))
	p, ok := r.symbols[symbol]
	if !ok {
		var err error
		p, err = r.dev.Alloc(n)
		if err != nil {
			return r.fail(errCode(CodeMemoryAllocation, "symbol %s: %v", symbol, err))
		}
		r.symbols[symbol] = p
	}
	payload := func() {
		if b, err := r.dev.Bytes(p, n); err == nil {
			copy(b, src)
		}
	}
	if r.queue != nil {
		if err := r.queue.EnqueueCopy(r.dev.DefaultStream(), "cudaMemcpyToSymbol", perfmodel.HostToDevice, n, false, payload); err != nil {
			return r.queueFail(err)
		}
		if err := r.flushQueue(); err != nil {
			return err
		}
		if last := r.dev.DefaultStream().Last(); last != nil {
			r.proc.Wait(last.Done())
		}
		return nil
	}
	op := r.dev.EnqueueCopy(r.dev.DefaultStream(), perfmodel.HostToDevice, n, false, payload)
	r.proc.Wait(op.Done())
	return nil
}

// SymbolPtr returns the device pointer backing a symbol, for tests and
// kernel bodies.
func (r *Runtime) SymbolPtr(symbol string) (DevPtr, bool) {
	p, ok := r.symbols[symbol]
	return p, ok
}

// Memset fills device memory. Notably it does NOT block the host: the
// paper's microbenchmark found cudaMemset to be the one synchronous-looking
// memory operation without implicit host blocking, and IPM excludes it
// from host-idle accounting.
func (r *Runtime) Memset(p DevPtr, value byte, n int64) error {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaMemset"); err != nil {
		return err
	}
	payload := func() {
		if b, err := r.dev.Bytes(p, n); err == nil {
			for i := range b {
				b[i] = value
			}
		}
	}
	if r.queue != nil {
		if err := r.queue.EnqueueMemset(r.dev.DefaultStream(), "cudaMemset", n, payload); err != nil {
			return r.queueFail(err)
		}
		return nil
	}
	r.dev.EnqueueMemset(r.dev.DefaultStream(), n, payload)
	return nil
}

// MemGetInfo reports free and total device memory.
func (r *Runtime) MemGetInfo() (free, total int64, err error) {
	r.ensureInit()
	r.base()
	if err = r.inject("cudaMemGetInfo"); err != nil {
		return 0, 0, err
	}
	free, total = r.dev.MemInfo()
	return free, total, nil
}

// ConfigureCall pushes an execution configuration for a subsequent Launch.
func (r *Runtime) ConfigureCall(grid, block Dim3, sharedMem int64, s Stream) error {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaConfigureCall"); err != nil {
		return err
	}
	if _, err := r.stream(s); err != nil {
		return r.fail(err)
	}
	r.pending = append(r.pending, launchConfig{grid: grid, block: block, sharedMem: sharedMem, stream: s})
	return nil
}

// SetupArgument appends a kernel argument to the pending configuration.
func (r *Runtime) SetupArgument(arg any, size, offset int64) error {
	r.base()
	if len(r.pending) == 0 {
		return r.fail(errCode(CodeInvalidConfiguration, "cudaSetupArgument without cudaConfigureCall"))
	}
	cfg := &r.pending[len(r.pending)-1]
	cfg.args = append(cfg.args, arg)
	return nil
}

// Launch submits the kernel with the most recent configuration. Launches
// are asynchronous unless Options.LaunchBlocking is set.
func (r *Runtime) Launch(fn *Func) error {
	r.base()
	if err := r.inject("cudaLaunch"); err != nil {
		// The configuration is consumed even when the launch fails, as on
		// real hardware: the next Launch needs its own ConfigureCall.
		if len(r.pending) > 0 {
			r.pending = r.pending[:len(r.pending)-1]
		}
		return err
	}
	if fn == nil {
		return r.fail(errCode(CodeLaunchFailure, "nil kernel"))
	}
	if len(r.pending) == 0 {
		return r.fail(errCode(CodeInvalidConfiguration, "cudaLaunch without cudaConfigureCall"))
	}
	cfg := r.pending[len(r.pending)-1]
	r.pending = r.pending[:len(r.pending)-1]
	gs, err := r.stream(cfg.stream)
	if err != nil {
		return r.fail(err)
	}
	r.proc.Sleep(r.dev.Spec().KernelLaunch)
	cost := fn.cost(cfg.grid, cfg.block, cfg.args)
	var body func()
	if fn.Body != nil {
		ctx := LaunchContext{Dev: r.dev, Grid: cfg.grid, Block: cfg.block, Args: cfg.args}
		body = func() { fn.Body(ctx) }
	}
	if r.queue != nil {
		if err := r.queue.EnqueueKernel(gs, "cudaLaunch", fn.Name, cost, cfg.grid.norm(), cfg.block.norm(), body); err != nil {
			return r.queueFail(err)
		}
		if r.opts.LaunchBlocking {
			if err := r.flushQueue(); err != nil {
				return err
			}
			if last := gs.Last(); last != nil {
				r.proc.Wait(last.Done())
			}
		}
		return nil
	}
	op := r.dev.LaunchKernel(gs, fn.Name, cost, cfg.grid.norm(), cfg.block.norm(), body)
	if r.opts.LaunchBlocking {
		r.proc.Wait(op.Done())
	}
	return nil
}

// LaunchKernel is the convenience form combining
// ConfigureCall+SetupArgument+Launch, analogous to the <<<...>>> syntax
// expansion.
func (r *Runtime) LaunchKernel(fn *Func, grid, block Dim3, s Stream, args ...any) error {
	if err := r.ConfigureCall(grid, block, 0, s); err != nil {
		return err
	}
	for i, a := range args {
		if err := r.SetupArgument(a, 8, int64(8*i)); err != nil {
			return err
		}
	}
	return r.Launch(fn)
}

// StreamCreate creates an asynchronous stream.
func (r *Runtime) StreamCreate() (Stream, error) {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaStreamCreate"); err != nil {
		return 0, err
	}
	gs := r.dev.CreateStream()
	h := r.nextStream
	r.nextStream++
	r.streams[h] = gs
	return h, nil
}

// StreamDestroy destroys a stream created by StreamCreate.
func (r *Runtime) StreamDestroy(s Stream) error {
	r.base()
	gs, ok := r.streams[s]
	if !ok {
		return r.fail(errCode(CodeInvalidResourceHandle, "unknown stream %d", s))
	}
	// Queued commands may still reference the stream; submit them first.
	if err := r.flushQueue(); err != nil {
		return err
	}
	delete(r.streams, s)
	if err := r.dev.DestroyStream(gs); err != nil {
		return r.fail(errCode(CodeInvalidResourceHandle, "%v", err))
	}
	return nil
}

// StreamSynchronize blocks the host until all work submitted to the
// stream has completed. For the NULL stream this waits for the whole
// device (legacy synchronisation behaviour).
func (r *Runtime) StreamSynchronize(s Stream) error {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaStreamSynchronize"); err != nil {
		return err
	}
	if err := r.flushQueue(); err != nil {
		return err
	}
	var last *gpusim.Op
	if s == 0 {
		last = r.dev.LastOp()
	} else {
		gs, err := r.stream(s)
		if err != nil {
			return r.fail(err)
		}
		last = gs.Last()
	}
	if last != nil {
		r.proc.Wait(last.Done())
	}
	return nil
}

// EventCreate creates an event.
func (r *Runtime) EventCreate() (Event, error) {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaEventCreate"); err != nil {
		return 0, err
	}
	h := r.nextEvent
	r.nextEvent++
	r.events[h] = r.dev.NewEvent()
	return h, nil
}

func (r *Runtime) event(ev Event) (*gpusim.DevEvent, error) {
	de, ok := r.events[ev]
	if !ok {
		return nil, errCode(CodeInvalidResourceHandle, "unknown event %d", ev)
	}
	return de, nil
}

// EventRecord inserts the event into the stream.
func (r *Runtime) EventRecord(ev Event, s Stream) error {
	r.base()
	if err := r.inject("cudaEventRecord"); err != nil {
		return err
	}
	de, err := r.event(ev)
	if err != nil {
		return r.fail(err)
	}
	gs, err := r.stream(s)
	if err != nil {
		return r.fail(err)
	}
	if r.queue != nil {
		if err := r.queue.EnqueueEventRecord(gs, "cudaEventRecord", de); err != nil {
			return r.queueFail(err)
		}
		return nil
	}
	de.Record(gs)
	return nil
}

// EventQuery returns nil when the event has completed on the device and
// ErrNotReady otherwise.
func (r *Runtime) EventQuery(ev Event) error {
	r.base()
	de, err := r.event(ev)
	if err != nil {
		return r.fail(err)
	}
	if !de.Query() {
		return ErrNotReady // polling; not recorded as sticky error
	}
	return nil
}

// EventSynchronize blocks until the event completes.
func (r *Runtime) EventSynchronize(ev Event) error {
	r.base()
	if err := r.inject("cudaEventSynchronize"); err != nil {
		return err
	}
	de, err := r.event(ev)
	if err != nil {
		return r.fail(err)
	}
	// The record may still be queued; flush so Done() sees the real op.
	if err := r.flushQueue(); err != nil {
		return err
	}
	if sig := de.Done(); sig != nil {
		r.proc.Wait(sig)
	}
	return nil
}

// EventElapsedTime returns the device-timeline time between two completed
// events.
func (r *Runtime) EventElapsedTime(start, stop Event) (time.Duration, error) {
	r.base()
	a, err := r.event(start)
	if err != nil {
		return 0, r.fail(err)
	}
	b, err := r.event(stop)
	if err != nil {
		return 0, r.fail(err)
	}
	d, err := a.Elapsed(b)
	if err != nil {
		return 0, ErrNotReady
	}
	return d, nil
}

// EventDestroy destroys an event.
func (r *Runtime) EventDestroy(ev Event) error {
	r.base()
	if _, err := r.event(ev); err != nil {
		return r.fail(err)
	}
	delete(r.events, ev)
	return nil
}

// ThreadSynchronize blocks the host until the device is idle
// (cudaThreadSynchronize; deviceSynchronize in later CUDA versions).
func (r *Runtime) ThreadSynchronize() error {
	r.ensureInit()
	r.base()
	if err := r.inject("cudaThreadSynchronize"); err != nil {
		return err
	}
	if err := r.flushQueue(); err != nil {
		return err
	}
	if last := r.dev.LastOp(); last != nil {
		r.proc.Wait(last.Done())
	}
	return nil
}

// GetDeviceCount reports the number of CUDA devices. Like the real call it
// initialises the runtime, which is why it shows up with substantial time
// in the paper's Amber profile.
func (r *Runtime) GetDeviceCount() (int, error) {
	r.ensureInit()
	r.base()
	r.proc.Sleep(r.opts.DeviceQueryCost)
	return r.opts.DeviceCount, nil
}

// GetDeviceProperties reports the properties of the device.
func (r *Runtime) GetDeviceProperties() (DeviceProp, error) {
	r.ensureInit()
	r.base()
	sp := r.dev.Spec()
	return DeviceProp{
		Name:                 sp.Name,
		TotalGlobalMem:       sp.MemBytes,
		MultiProcessorCount:  sp.MultiProcessors,
		ClockRateKHz:         int(sp.ClockGHz * 1e6),
		ConcurrentKernels:    sp.MaxConcurrent,
		MemoryBandwidthGBs:   sp.MemBandwidthGBs,
		PeakDPGFlops:         sp.PeakDPGFlops,
		PeakSPGFlops:         sp.PeakSPGFlops,
		ECCEnabled:           true,
		ComputeCapabilityMaj: 2,
		ComputeCapabilityMin: 0,
	}, nil
}

// GetDevice returns the current device ordinal.
func (r *Runtime) GetDevice() (int, error) {
	r.base()
	return 0, nil
}

// SetDevice selects the current device. Only ordinal 0 exists per node in
// the Dirac model.
func (r *Runtime) SetDevice(dev int) error {
	r.base()
	if dev < 0 || dev >= r.opts.DeviceCount {
		return r.fail(errCode(CodeInvalidValue, "no device %d", dev))
	}
	return nil
}

// GetLastError returns and clears the sticky error from the last failing
// runtime call, mirroring cudaGetLastError.
func (r *Runtime) GetLastError() error {
	r.base()
	err := r.lastErr
	r.lastErr = nil
	return err
}

// PeekAtLastError returns the sticky error without clearing it, mirroring
// cudaPeekAtLastError — the one-bit semantic difference from GetLastError
// that error-checking macros rely on.
func (r *Runtime) PeekAtLastError() error {
	r.base()
	return r.lastErr
}
