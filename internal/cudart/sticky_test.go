package cudart

import (
	"errors"
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

// runRT drives fn in DES process context against a fresh runtime.
func runRT(t *testing.T, opts Options, fn func(r *Runtime)) {
	t.Helper()
	eng := des.NewEngine()
	dev := gpusim.NewDevice(eng, perfmodel.TeslaC2050())
	eng.Spawn("app", func(p *des.Proc) {
		fn(NewRuntime(p, dev, opts))
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
}

// TestStickyErrorSemantics checks the CUDA error-state contract for each
// way of reading it: GetLastError clears the sticky error,
// PeekAtLastError does not, and polling results (cudaErrorNotReady) never
// become sticky.
func TestStickyErrorSemantics(t *testing.T) {
	cases := []struct {
		name string
		// trigger provokes exactly one failing call and returns its error.
		trigger func(r *Runtime) error
		// sticky is whether the failure must be visible afterwards.
		sticky bool
	}{
		{
			name:    "invalid-memcpy-direction",
			trigger: func(r *Runtime) error { return r.Memcpy(Ptr{}, Ptr{}, 8, MemcpyKind(99)) },
			sticky:  true,
		},
		{
			name:    "launch-without-configure",
			trigger: func(r *Runtime) error { return r.Launch(&Func{Name: "k"}) },
			sticky:  true,
		},
		{
			name:    "unknown-stream",
			trigger: func(r *Runtime) error { return r.StreamDestroy(Stream(7)) },
			sticky:  true,
		},
		{
			name:    "bad-set-device",
			trigger: func(r *Runtime) error { return r.SetDevice(3) },
			sticky:  true,
		},
		{
			name: "event-query-not-ready",
			trigger: func(r *Runtime) error {
				ev, err := r.EventCreate()
				if err != nil {
					return err
				}
				s, err := r.StreamCreate()
				if err != nil {
					return err
				}
				if err := r.Memset(DevPtr{}, 0, 1<<20); err != nil {
					return err
				}
				if err := r.EventRecord(ev, s); err != nil {
					return err
				}
				return r.EventQuery(ev)
			},
			sticky: false,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runRT(t, Options{}, func(r *Runtime) {
				if err := r.GetLastError(); err != nil {
					t.Fatalf("fresh runtime has sticky error %v", err)
				}
				err := tc.trigger(r)
				if err == nil {
					t.Fatalf("trigger did not fail")
				}
				if !tc.sticky {
					if !errors.Is(err, ErrNotReady) {
						t.Fatalf("expected cudaErrorNotReady, got %v", err)
					}
					if got := r.PeekAtLastError(); got != nil {
						t.Fatalf("polling result became sticky: %v", got)
					}
					return
				}
				// Peek does not consume the error: repeated peeks agree.
				if got := r.PeekAtLastError(); !errors.Is(got, err) {
					t.Fatalf("PeekAtLastError = %v, want %v", got, err)
				}
				if got := r.PeekAtLastError(); !errors.Is(got, err) {
					t.Fatalf("second PeekAtLastError = %v, want %v", got, err)
				}
				// GetLastError returns the error once and clears it.
				if got := r.GetLastError(); !errors.Is(got, err) {
					t.Fatalf("GetLastError = %v, want %v", got, err)
				}
				if got := r.GetLastError(); got != nil {
					t.Fatalf("GetLastError did not clear: %v", got)
				}
				if got := r.PeekAtLastError(); got != nil {
					t.Fatalf("PeekAtLastError after clear: %v", got)
				}
			})
		})
	}
}

// TestInjectedErrorsSticky checks injected faults behave exactly like
// organic failures: returned, sticky, and cleared only by GetLastError.
func TestInjectedErrorsSticky(t *testing.T) {
	injected := &Error{Code: CodeECCUncorrectable, Detail: "injected"}
	armed := true
	opts := Options{Inject: func(call string, now time.Duration) error {
		if armed && call == "cudaMemcpy" {
			armed = false
			return injected
		}
		return nil
	}}
	runRT(t, opts, func(r *Runtime) {
		d, err := r.Malloc(64)
		if err != nil {
			t.Fatalf("malloc: %v", err)
		}
		host := make([]byte, 64)
		err = r.Memcpy(DevicePtr(d), HostPtr(host), 64, MemcpyHostToDevice)
		if !errors.Is(err, ErrECCUncorrectable) {
			t.Fatalf("injected error = %v", err)
		}
		if got := r.PeekAtLastError(); !errors.Is(got, ErrECCUncorrectable) {
			t.Fatalf("peek = %v", got)
		}
		// The fault was transient: the retried call succeeds but the sticky
		// state still shows the old failure until read.
		if err := r.Memcpy(DevicePtr(d), HostPtr(host), 64, MemcpyHostToDevice); err != nil {
			t.Fatalf("retry: %v", err)
		}
		if got := r.GetLastError(); !errors.Is(got, ErrECCUncorrectable) {
			t.Fatalf("get = %v", got)
		}
		if got := r.GetLastError(); got != nil {
			t.Fatalf("not cleared: %v", got)
		}
	})
}

// TestErrorStringMapping is the table-driven check of the cudaError code
// to name mapping.
func TestErrorStringMapping(t *testing.T) {
	cases := []struct {
		code Code
		want string
	}{
		{CodeSuccess, "cudaSuccess"},
		{CodeMemoryAllocation, "cudaErrorMemoryAllocation"},
		{CodeInitializationError, "cudaErrorInitializationError"},
		{CodeInvalidValue, "cudaErrorInvalidValue"},
		{CodeInvalidDevicePointer, "cudaErrorInvalidDevicePointer"},
		{CodeInvalidMemcpyDirection, "cudaErrorInvalidMemcpyDirection"},
		{CodeInvalidConfiguration, "cudaErrorInvalidConfiguration"},
		{CodeInvalidResourceHandle, "cudaErrorInvalidResourceHandle"},
		{CodeLaunchFailure, "cudaErrorLaunchFailure"},
		{CodeNotReady, "cudaErrorNotReady"},
		{CodeInvalidSymbol, "cudaErrorInvalidSymbol"},
		{CodeECCUncorrectable, "cudaErrorECCUncorrectable"},
		{CodeDeviceLost, "cudaErrorDeviceLost"},
		{Code(99), "cudaError(99)"},
	}
	for _, tc := range cases {
		if got := tc.code.String(); got != tc.want {
			t.Errorf("Code(%d).String() = %q, want %q", int(tc.code), got, tc.want)
		}
		if tc.code == CodeSuccess || tc.code == Code(99) {
			continue
		}
		e := &Error{Code: tc.code, Detail: "d"}
		if got := e.Error(); got != tc.want+": d" {
			t.Errorf("Error() = %q, want %q", got, tc.want+": d")
		}
		if !errors.Is(e, &Error{Code: tc.code}) {
			t.Errorf("errors.Is failed for %v", tc.code)
		}
	}
}
