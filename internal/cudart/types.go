// Package cudart provides a CUDA-3.1-era runtime and driver API on top of
// the simulated GPU in internal/gpusim.
//
// Applications program against the API interface, never a concrete type.
// This is the interposition seam: in a real deployment IPM interposes on
// the dynamically linked libcudart symbols (LD_PRELOAD); here
// internal/ipmcuda wraps an API value with a decorator implementing the
// same interface. Application code is byte-identical with and without
// monitoring, exactly as the paper requires ("no source code changes,
// recompilation, or even re-linking").
//
// The launch interface is the CUDA 3.x triple the paper profiles:
// ConfigureCall pushes an execution configuration, SetupArgument appends
// kernel arguments, and Launch submits the kernel asynchronously.
package cudart

import (
	"fmt"
	"time"

	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

// Code is a cudaError_t-style status code.
type Code int

// Status codes, mirroring the CUDA runtime's cudaError enum (subset).
const (
	CodeSuccess Code = iota
	CodeMemoryAllocation
	CodeInitializationError
	CodeInvalidValue
	CodeInvalidDevicePointer
	CodeInvalidMemcpyDirection
	CodeInvalidConfiguration
	CodeInvalidResourceHandle
	CodeLaunchFailure
	CodeNotReady
	CodeInvalidSymbol
	CodeECCUncorrectable
	CodeDeviceLost
)

var codeNames = map[Code]string{
	CodeSuccess:                "cudaSuccess",
	CodeMemoryAllocation:       "cudaErrorMemoryAllocation",
	CodeInitializationError:    "cudaErrorInitializationError",
	CodeInvalidValue:           "cudaErrorInvalidValue",
	CodeInvalidDevicePointer:   "cudaErrorInvalidDevicePointer",
	CodeInvalidMemcpyDirection: "cudaErrorInvalidMemcpyDirection",
	CodeInvalidConfiguration:   "cudaErrorInvalidConfiguration",
	CodeInvalidResourceHandle:  "cudaErrorInvalidResourceHandle",
	CodeLaunchFailure:          "cudaErrorLaunchFailure",
	CodeNotReady:               "cudaErrorNotReady",
	CodeInvalidSymbol:          "cudaErrorInvalidSymbol",
	CodeECCUncorrectable:       "cudaErrorECCUncorrectable",
	CodeDeviceLost:             "cudaErrorDeviceLost",
}

func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("cudaError(%d)", int(c))
}

// Error is a CUDA status error. A nil error means cudaSuccess.
type Error struct {
	Code   Code
	Detail string
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return e.Code.String()
	}
	return e.Code.String() + ": " + e.Detail
}

// Is makes errors.Is match on the status code, so callers can test
// errors.Is(err, cudart.ErrNotReady) against wrapped errors.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

func errCode(c Code, format string, args ...any) *Error {
	return &Error{Code: c, Detail: fmt.Sprintf(format, args...)}
}

// Sentinel errors for errors.Is tests.
var (
	ErrNotReady         = &Error{Code: CodeNotReady}
	ErrMemoryAllocation = &Error{Code: CodeMemoryAllocation}
	ErrInvalidValue     = &Error{Code: CodeInvalidValue}
	ErrLaunchFailure    = &Error{Code: CodeLaunchFailure}
	ErrECCUncorrectable = &Error{Code: CodeECCUncorrectable}
	ErrDeviceLost       = &Error{Code: CodeDeviceLost}
)

// DevPtr is a device memory pointer (re-exported from gpusim so
// applications only import cudart).
type DevPtr = gpusim.DevPtr

// Stream is a stream handle. The zero Stream is the legacy NULL stream.
type Stream int

// Event is an event handle created by EventCreate.
type Event int

// Dim3 is a CUDA dim3 launch dimension. Zero components are treated as 1.
type Dim3 struct{ X, Y, Z int }

func (d Dim3) norm() [3]int {
	n := [3]int{d.X, d.Y, d.Z}
	for i := range n {
		if n[i] <= 0 {
			n[i] = 1
		}
	}
	return n
}

// Count returns the total number of elements in the dimension.
func (d Dim3) Count() int {
	n := d.norm()
	return n[0] * n[1] * n[2]
}

// MemcpyKind is the direction argument of Memcpy, mirroring
// cudaMemcpyKind.
type MemcpyKind int

const (
	MemcpyHostToHost MemcpyKind = iota
	MemcpyHostToDevice
	MemcpyDeviceToHost
	MemcpyDeviceToDevice
)

func (k MemcpyKind) String() string {
	switch k {
	case MemcpyHostToHost:
		return "H2H"
	case MemcpyHostToDevice:
		return "H2D"
	case MemcpyDeviceToHost:
		return "D2H"
	case MemcpyDeviceToDevice:
		return "D2D"
	}
	return "?"
}

// Ptr is the void*-style argument of Memcpy: either a host buffer or a
// device pointer. Construct with HostPtr, PinnedPtr or DevicePtr.
type Ptr struct {
	Host   []byte
	Dev    DevPtr
	IsDev  bool
	Pinned bool
}

// HostPtr wraps a pageable host buffer.
func HostPtr(b []byte) Ptr { return Ptr{Host: b} }

// PinnedPtr wraps a page-locked host buffer (from HostAlloc), which
// transfers at the pinned PCIe rate and allows true async copies.
func PinnedPtr(b []byte) Ptr { return Ptr{Host: b, Pinned: true} }

// DevicePtr wraps a device pointer.
func DevicePtr(p DevPtr) Ptr { return Ptr{Dev: p, IsDev: true} }

// KernelArgs carries the argument list accumulated by SetupArgument into
// the kernel body.
type KernelArgs []any

// Arg returns the i-th argument, or nil when out of range.
func (a KernelArgs) Arg(i int) any {
	if i < 0 || i >= len(a) {
		return nil
	}
	return a[i]
}

// LaunchContext is passed to a kernel's functional body at execution time.
type LaunchContext struct {
	Dev   *gpusim.Device
	Grid  Dim3
	Block Dim3
	Args  KernelArgs
}

// Func describes a kernel: its name (as the profiler reports it), a cost
// model evaluated at launch time, and an optional functional body run at
// the kernel's completion time in virtual time order.
type Func struct {
	Name string
	// Cost computes the kernel's resource demand from the launch
	// configuration. If nil, FixedCost is used.
	Cost func(grid, block Dim3, args KernelArgs) perfmodel.KernelCost
	// FixedCost is used when Cost is nil.
	FixedCost perfmodel.KernelCost
	// Body, if non-nil, executes the kernel functionally.
	Body func(ctx LaunchContext)
}

func (f *Func) cost(grid, block Dim3, args KernelArgs) perfmodel.KernelCost {
	if f.Cost != nil {
		return f.Cost(grid, block, args)
	}
	return f.FixedCost
}

// DeviceProp mirrors the interesting fields of cudaDeviceProp.
type DeviceProp struct {
	Name                 string
	TotalGlobalMem       int64
	MultiProcessorCount  int
	ClockRateKHz         int
	ConcurrentKernels    int
	MemoryBandwidthGBs   float64
	PeakDPGFlops         float64
	PeakSPGFlops         float64
	ECCEnabled           bool
	ComputeCapabilityMaj int
	ComputeCapabilityMin int
}

// API is the CUDA runtime API surface applications program against, and
// the seam IPM interposes on. Method names map one-to-one to the
// cudaXxx symbols of the CUDA 3.1 runtime.
type API interface {
	// Memory management.
	Malloc(n int64) (DevPtr, error)
	Free(p DevPtr) error
	HostAlloc(n int64) ([]byte, error)
	Memcpy(dst, src Ptr, n int64, kind MemcpyKind) error
	MemcpyAsync(dst, src Ptr, n int64, kind MemcpyKind, s Stream) error
	MemcpyToSymbol(symbol string, src []byte) error
	Memset(p DevPtr, value byte, n int64) error
	MemGetInfo() (free, total int64, err error)

	// Kernel launch (CUDA 3.x execution configuration triple).
	ConfigureCall(grid, block Dim3, sharedMem int64, s Stream) error
	SetupArgument(arg any, size, offset int64) error
	Launch(fn *Func) error
	// LaunchKernel is the <<<grid, block, 0, stream>>> convenience form;
	// implementations expand it to the triple above.
	LaunchKernel(fn *Func, grid, block Dim3, s Stream, args ...any) error

	// Streams.
	StreamCreate() (Stream, error)
	StreamDestroy(s Stream) error
	StreamSynchronize(s Stream) error

	// Events.
	EventCreate() (Event, error)
	EventRecord(ev Event, s Stream) error
	EventQuery(ev Event) error
	EventSynchronize(ev Event) error
	EventElapsedTime(start, stop Event) (time.Duration, error)
	EventDestroy(ev Event) error

	// Device management and synchronisation.
	ThreadSynchronize() error
	GetDeviceCount() (int, error)
	GetDeviceProperties() (DeviceProp, error)
	GetDevice() (int, error)
	SetDevice(dev int) error
	GetLastError() error
	PeekAtLastError() error
}
