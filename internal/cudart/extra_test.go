package cudart

import (
	"errors"
	"testing"
	"time"

	"ipmgo/internal/des"
)

func TestDeviceToDeviceMemcpy(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		a, _ := rt.Malloc(16)
		b, _ := rt.Malloc(16)
		if err := rt.Memcpy(DevicePtr(a), HostPtr([]byte{1, 2, 3, 4}), 4, MemcpyHostToDevice); err != nil {
			t.Fatal(err)
		}
		if err := rt.Memcpy(DevicePtr(b), DevicePtr(a), 4, MemcpyDeviceToDevice); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 4)
		if err := rt.Memcpy(HostPtr(out), DevicePtr(b), 4, MemcpyDeviceToHost); err != nil {
			t.Fatal(err)
		}
		if out[0] != 1 || out[3] != 4 {
			t.Errorf("D2D roundtrip = %v", out)
		}
	})
}

func TestMemcpyAsyncHostToHostAndValidation(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		rt.Malloc(8)
		src, dst := []byte{9, 8}, make([]byte, 2)
		if err := rt.MemcpyAsync(HostPtr(dst), HostPtr(src), 2, MemcpyHostToHost, 0); err != nil {
			t.Fatal(err)
		}
		if dst[0] != 9 {
			t.Errorf("async H2H copy = %v", dst)
		}
		if err := rt.MemcpyAsync(HostPtr(dst), HostPtr(src), 2, MemcpyHostToHost, Stream(77)); err == nil {
			t.Error("unknown stream accepted")
		}
		if err := rt.MemcpyAsync(DevicePtr(DevPtr{}), DevicePtr(DevPtr{}), 2, MemcpyHostToDevice, 0); err == nil {
			t.Error("invalid direction accepted")
		}
	})
}

func TestHostAllocValidation(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		if _, err := rt.HostAlloc(-1); err == nil {
			t.Error("negative host alloc accepted")
		}
		b, err := rt.HostAlloc(128)
		if err != nil || len(b) != 128 {
			t.Errorf("HostAlloc = %d bytes, %v", len(b), err)
		}
	})
}

func TestEventSynchronizeUnrecorded(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		ev, _ := rt.EventCreate()
		// Synchronising an unrecorded event returns immediately (CUDA
		// treats it as complete).
		before := p.Now()
		if err := rt.EventSynchronize(ev); err != nil {
			t.Fatal(err)
		}
		if p.Now() != before {
			t.Error("unrecorded event sync advanced time")
		}
		if err := rt.EventSynchronize(Event(99)); err == nil {
			t.Error("unknown event accepted")
		}
		if err := rt.EventDestroy(Event(99)); err == nil {
			t.Error("unknown destroy accepted")
		}
	})
}

func TestThreadSynchronizeIdleDevice(t *testing.T) {
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		if err := rt.ThreadSynchronize(); err != nil {
			t.Fatal(err) // no work: returns immediately
		}
		if err := rt.StreamSynchronize(0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLaunchBlockingEnv(t *testing.T) {
	// ConfigureCall with an unknown stream fails and records sticky error.
	run(t, fastSpec(), Options{}, func(p *des.Proc, rt *Runtime) {
		if err := rt.ConfigureCall(Dim3{X: 1}, Dim3{X: 1}, 0, Stream(9)); err == nil {
			t.Error("bad configure stream accepted")
		}
		var ce *Error
		if err := rt.GetLastError(); !errors.As(err, &ce) {
			t.Errorf("sticky error = %v", err)
		}
	})
}

func TestMallocOOM(t *testing.T) {
	spec := fastSpec()
	spec.MemBytes = 100
	run(t, spec, Options{}, func(p *des.Proc, rt *Runtime) {
		if _, err := rt.Malloc(1000); !errors.Is(err, ErrMemoryAllocation) {
			t.Errorf("OOM error = %v", err)
		}
		if err := rt.Free(DevPtr{}); err != nil {
			t.Errorf("free of null pointer: %v", err)
		}
	})
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.DeviceCount != 1 || o.DeviceQueryCost != 2*time.Microsecond ||
		o.MallocCost != 10*time.Microsecond || o.HostMemcpyGBs != 8 {
		t.Errorf("defaults = %+v", o)
	}
}
