// Package clsim simulates an OpenCL 1.1-flavoured runtime over the GPU
// simulator, realising the paper's second future-work item: "while our
// present work focused on CUDA, the library-based interposition
// monitoring technique is similarly applicable to OpenCL".
//
// The API surface mirrors the OpenCL host API: contexts, in-order command
// queues (each mapping to a device stream), buffers, kernels with
// explicit argument binding, and events with built-in profiling
// timestamps (clGetEventProfilingInfo), which is how OpenCL tools recover
// device-side execution times. internal/ipmcl interposes on the CL
// interface exactly as ipmcuda does on cudart.API.
package clsim

import (
	"fmt"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

// Handle types, mirroring the opaque cl_* handles.
type (
	// Queue is a cl_command_queue handle.
	Queue int
	// Mem is a cl_mem handle.
	Mem int
	// Event is a cl_event handle.
	Event int
)

// Kernel describes a compiled kernel (cl_kernel): name, cost model and
// optional functional body, with arguments bound via SetKernelArg.
type Kernel struct {
	Name string
	Cost perfmodel.KernelCost
	// Body runs at completion; Args holds the bound arguments by index.
	Body func(dev *gpusim.Device, args map[int]any, global, local []int)

	args map[int]any
}

// CL is the OpenCL host API surface — the interposition seam for
// internal/ipmcl. Method names map to the clXxx entry points.
type CL interface {
	CreateCommandQueue() (Queue, error)
	ReleaseCommandQueue(q Queue) error
	CreateBuffer(size int64) (Mem, error)
	ReleaseMemObject(m Mem) error
	SetKernelArg(k *Kernel, index int, value any) error
	EnqueueNDRangeKernel(q Queue, k *Kernel, global, local []int) (Event, error)
	EnqueueWriteBuffer(q Queue, m Mem, blocking bool, offset int64, data []byte) (Event, error)
	EnqueueReadBuffer(q Queue, m Mem, blocking bool, offset int64, out []byte) (Event, error)
	Finish(q Queue) error
	WaitForEvents(evs ...Event) error
	GetEventProfilingInfo(ev Event) (start, end time.Duration, err error)
}

// Context is the concrete OpenCL context bound to one host process.
type Context struct {
	proc *des.Proc
	dev  *gpusim.Device

	queues    map[Queue]*gpusim.Stream
	nextQueue Queue
	mems      map[Mem]gpusim.DevPtr
	nextMem   Mem
	events    map[Event]*gpusim.Op
	nextEvent Event
	inited    bool
}

var _ CL = (*Context)(nil)

// CreateContext builds an OpenCL context on the device for the host
// process (clCreateContext).
func CreateContext(proc *des.Proc, dev *gpusim.Device) *Context {
	return &Context{
		proc:      proc,
		dev:       dev,
		queues:    make(map[Queue]*gpusim.Stream),
		nextQueue: 1,
		mems:      make(map[Mem]gpusim.DevPtr),
		nextMem:   1,
		events:    make(map[Event]*gpusim.Op),
		nextEvent: 1,
	}
}

// Device returns the underlying simulated device.
func (c *Context) Device() *gpusim.Device { return c.dev }

func (c *Context) ensureInit() {
	if !c.inited {
		c.inited = true
		c.proc.Sleep(c.dev.Spec().ContextInit)
	}
}

func (c *Context) base() { c.proc.Sleep(c.dev.Spec().APICallCost) }

// CreateCommandQueue creates an in-order command queue, backed by a
// device stream.
func (c *Context) CreateCommandQueue() (Queue, error) {
	c.ensureInit()
	c.base()
	q := c.nextQueue
	c.nextQueue++
	c.queues[q] = c.dev.CreateStream()
	return q, nil
}

// ReleaseCommandQueue releases the queue.
func (c *Context) ReleaseCommandQueue(q Queue) error {
	c.base()
	s, ok := c.queues[q]
	if !ok {
		return fmt.Errorf("clsim: invalid queue %d", q)
	}
	delete(c.queues, q)
	return c.dev.DestroyStream(s)
}

func (c *Context) queue(q Queue) (*gpusim.Stream, error) {
	s, ok := c.queues[q]
	if !ok {
		return nil, fmt.Errorf("clsim: invalid queue %d", q)
	}
	return s, nil
}

// CreateBuffer allocates a device buffer (clCreateBuffer).
func (c *Context) CreateBuffer(size int64) (Mem, error) {
	c.ensureInit()
	c.base()
	p, err := c.dev.Alloc(size)
	if err != nil {
		return 0, fmt.Errorf("clsim: %w", err)
	}
	m := c.nextMem
	c.nextMem++
	c.mems[m] = p
	return m, nil
}

// ReleaseMemObject frees the buffer.
func (c *Context) ReleaseMemObject(m Mem) error {
	c.base()
	p, ok := c.mems[m]
	if !ok {
		return fmt.Errorf("clsim: invalid mem object %d", m)
	}
	delete(c.mems, m)
	return c.dev.Free(p)
}

// MemPtr resolves a buffer handle to its device pointer (for kernel
// bodies).
func (c *Context) MemPtr(m Mem) (gpusim.DevPtr, bool) {
	p, ok := c.mems[m]
	return p, ok
}

// SetKernelArg binds an argument (clSetKernelArg). Mem handles are
// resolved to device pointers at bind time.
func (c *Context) SetKernelArg(k *Kernel, index int, value any) error {
	c.base()
	if k == nil {
		return fmt.Errorf("clsim: nil kernel")
	}
	if index < 0 {
		return fmt.Errorf("clsim: negative arg index %d", index)
	}
	if k.args == nil {
		k.args = make(map[int]any)
	}
	if m, ok := value.(Mem); ok {
		p, ok := c.mems[m]
		if !ok {
			return fmt.Errorf("clsim: invalid mem object %d", m)
		}
		k.args[index] = p
		return nil
	}
	k.args[index] = value
	return nil
}

func (c *Context) registerOp(op *gpusim.Op) Event {
	ev := c.nextEvent
	c.nextEvent++
	c.events[ev] = op
	return ev
}

// EnqueueNDRangeKernel launches the kernel asynchronously
// (clEnqueueNDRangeKernel). global/local follow OpenCL's NDRange shape
// (up to 3 dimensions).
func (c *Context) EnqueueNDRangeKernel(q Queue, k *Kernel, global, local []int) (Event, error) {
	c.ensureInit()
	s, err := c.queue(q)
	if err != nil {
		return 0, err
	}
	if k == nil {
		return 0, fmt.Errorf("clsim: nil kernel")
	}
	if len(global) == 0 || len(global) > 3 {
		return 0, fmt.Errorf("clsim: NDRange dimension %d", len(global))
	}
	c.proc.Sleep(c.dev.Spec().KernelLaunch)
	var grid, block [3]int
	for i := range grid {
		grid[i], block[i] = 1, 1
		if i < len(global) {
			grid[i] = global[i]
		}
		if i < len(local) && local[i] > 0 {
			block[i] = local[i]
			grid[i] = (grid[i] + local[i] - 1) / local[i]
		}
	}
	args := k.args
	var body func()
	if k.Body != nil {
		g, l := append([]int(nil), global...), append([]int(nil), local...)
		body = func() { k.Body(c.dev, args, g, l) }
	}
	op := c.dev.LaunchKernel(s, k.Name, k.Cost, grid, block, body)
	return c.registerOp(op), nil
}

// EnqueueWriteBuffer copies host data to the device
// (clEnqueueWriteBuffer); blocking selects synchronous semantics.
func (c *Context) EnqueueWriteBuffer(q Queue, m Mem, blocking bool, offset int64, data []byte) (Event, error) {
	c.ensureInit()
	c.base()
	s, err := c.queue(q)
	if err != nil {
		return 0, err
	}
	p, ok := c.mems[m]
	if !ok {
		return 0, fmt.Errorf("clsim: invalid mem object %d", m)
	}
	n := int64(len(data))
	dst := p.Offset(offset)
	var payload func()
	if data != nil {
		payload = func() {
			if b, err := c.dev.Bytes(dst, n); err == nil {
				copy(b, data)
			}
		}
	}
	op := c.dev.EnqueueCopy(s, perfmodel.HostToDevice, n, false, payload)
	if blocking {
		c.proc.Wait(op.Done())
	}
	return c.registerOp(op), nil
}

// EnqueueReadBuffer copies device data to the host (clEnqueueReadBuffer).
func (c *Context) EnqueueReadBuffer(q Queue, m Mem, blocking bool, offset int64, out []byte) (Event, error) {
	c.ensureInit()
	c.base()
	s, err := c.queue(q)
	if err != nil {
		return 0, err
	}
	p, ok := c.mems[m]
	if !ok {
		return 0, fmt.Errorf("clsim: invalid mem object %d", m)
	}
	n := int64(len(out))
	src := p.Offset(offset)
	var payload func()
	if out != nil {
		payload = func() {
			if b, err := c.dev.Bytes(src, n); err == nil {
				copy(out, b)
			}
		}
	}
	op := c.dev.EnqueueCopy(s, perfmodel.DeviceToHost, n, false, payload)
	if blocking {
		c.proc.Wait(op.Done())
	}
	return c.registerOp(op), nil
}

// Finish blocks until all commands in the queue have completed
// (clFinish).
func (c *Context) Finish(q Queue) error {
	c.base()
	s, err := c.queue(q)
	if err != nil {
		return err
	}
	if last := s.Last(); last != nil {
		c.proc.Wait(last.Done())
	}
	return nil
}

// WaitForEvents blocks until every event has completed
// (clWaitForEvents).
func (c *Context) WaitForEvents(evs ...Event) error {
	c.base()
	for _, ev := range evs {
		op, ok := c.events[ev]
		if !ok {
			return fmt.Errorf("clsim: invalid event %d", ev)
		}
		c.proc.Wait(op.Done())
	}
	return nil
}

// GetEventProfilingInfo returns the device-timeline start and end of the
// command (CL_PROFILING_COMMAND_START/END). The command must have
// completed.
func (c *Context) GetEventProfilingInfo(ev Event) (start, end time.Duration, err error) {
	c.base()
	op, ok := c.events[ev]
	if !ok {
		return 0, 0, fmt.Errorf("clsim: invalid event %d", ev)
	}
	if !op.Done().Fired() {
		return 0, 0, fmt.Errorf("clsim: event %d not complete (CL_PROFILING_INFO_NOT_AVAILABLE)", ev)
	}
	return op.Start, op.End, nil
}
