package clsim

import (
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

func spec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.ContextInit = 0
	s.APICallCost = 0
	s.KernelDispatch = 0
	s.KernelLaunch = 0
	s.PCIeLatency = 0
	s.PCIeH2DGBs = 1
	s.PCIeD2HGBs = 1
	return s
}

func run(t *testing.T, fn func(c *Context, p *des.Proc)) time.Duration {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	e.Spawn("host", func(p *des.Proc) { fn(CreateContext(p, dev), p) })
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func TestFunctionalKernelRoundTrip(t *testing.T) {
	// Doubling kernel: write, execute, read back.
	doubler := &Kernel{
		Name: "doubler",
		Cost: perfmodel.KernelCost{Fixed: time.Millisecond},
		Body: func(dev *gpusim.Device, args map[int]any, global, local []int) {
			ptr := args[0].(gpusim.DevPtr)
			n := args[1].(int)
			b, err := dev.Bytes(ptr, gpusim.F64Bytes(n))
			if err != nil {
				return
			}
			v := gpusim.Float64s(b)
			for i := 0; i < n; i++ {
				v.Set(i, 2*v.At(i))
			}
		},
	}
	run(t, func(c *Context, p *des.Proc) {
		q, err := c.CreateCommandQueue()
		if err != nil {
			t.Fatal(err)
		}
		const n = 100
		buf, err := c.CreateBuffer(gpusim.F64Bytes(n))
		if err != nil {
			t.Fatal(err)
		}
		host := make([]byte, gpusim.F64Bytes(n))
		v := gpusim.Float64s(host)
		for i := 0; i < n; i++ {
			v.Set(i, float64(i))
		}
		if _, err := c.EnqueueWriteBuffer(q, buf, true, 0, host); err != nil {
			t.Fatal(err)
		}
		if err := c.SetKernelArg(doubler, 0, buf); err != nil {
			t.Fatal(err)
		}
		if err := c.SetKernelArg(doubler, 1, n); err != nil {
			t.Fatal(err)
		}
		if _, err := c.EnqueueNDRangeKernel(q, doubler, []int{n}, []int{32}); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, gpusim.F64Bytes(n))
		if _, err := c.EnqueueReadBuffer(q, buf, true, 0, out); err != nil {
			t.Fatal(err)
		}
		ov := gpusim.Float64s(out)
		for i := 0; i < n; i++ {
			if ov.At(i) != 2*float64(i) {
				t.Fatalf("out[%d] = %v, want %v", i, ov.At(i), 2*float64(i))
			}
		}
		if err := c.ReleaseMemObject(buf); err != nil {
			t.Fatal(err)
		}
		if err := c.ReleaseCommandQueue(q); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEventProfilingInfo(t *testing.T) {
	k := &Kernel{Name: "k", Cost: perfmodel.KernelCost{Fixed: 7 * time.Millisecond}}
	run(t, func(c *Context, p *des.Proc) {
		q, _ := c.CreateCommandQueue()
		ev, err := c.EnqueueNDRangeKernel(q, k, []int{64}, []int{64})
		if err != nil {
			t.Fatal(err)
		}
		// Not complete yet: profiling info unavailable.
		if _, _, err := c.GetEventProfilingInfo(ev); err == nil {
			t.Error("profiling info available before completion")
		}
		if err := c.WaitForEvents(ev); err != nil {
			t.Fatal(err)
		}
		start, end, err := c.GetEventProfilingInfo(ev)
		if err != nil {
			t.Fatal(err)
		}
		if end-start != 7*time.Millisecond {
			t.Errorf("profiled duration = %v, want 7ms", end-start)
		}
	})
}

func TestBlockingVsAsyncRead(t *testing.T) {
	k := &Kernel{Name: "slow", Cost: perfmodel.KernelCost{Fixed: 100 * time.Millisecond}}
	var asyncReturn time.Duration
	total := run(t, func(c *Context, p *des.Proc) {
		q, _ := c.CreateCommandQueue()
		buf, _ := c.CreateBuffer(1024)
		c.EnqueueNDRangeKernel(q, k, []int{1}, nil)
		if _, err := c.EnqueueReadBuffer(q, buf, false, 0, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
		asyncReturn = p.Now()
		c.Finish(q)
	})
	if asyncReturn >= 100*time.Millisecond {
		t.Errorf("async read blocked until %v", asyncReturn)
	}
	if total < 100*time.Millisecond {
		t.Errorf("Finish returned at %v before kernel completion", total)
	}
}

func TestQueueOrdering(t *testing.T) {
	// Two commands on one in-order queue serialise; on two queues they
	// overlap.
	k := &Kernel{Name: "k", Cost: perfmodel.KernelCost{Fixed: 50 * time.Millisecond}}
	oneQueue := run(t, func(c *Context, p *des.Proc) {
		q, _ := c.CreateCommandQueue()
		c.EnqueueNDRangeKernel(q, k, []int{1}, nil)
		c.EnqueueNDRangeKernel(q, k, []int{1}, nil)
		c.Finish(q)
	})
	twoQueues := run(t, func(c *Context, p *des.Proc) {
		q1, _ := c.CreateCommandQueue()
		q2, _ := c.CreateCommandQueue()
		c.EnqueueNDRangeKernel(q1, k, []int{1}, nil)
		c.EnqueueNDRangeKernel(q2, k, []int{1}, nil)
		c.Finish(q1)
		c.Finish(q2)
	})
	if oneQueue < 100*time.Millisecond {
		t.Errorf("in-order queue did not serialise: %v", oneQueue)
	}
	if twoQueues >= oneQueue {
		t.Errorf("two queues (%v) did not overlap vs one (%v)", twoQueues, oneQueue)
	}
}

func TestValidation(t *testing.T) {
	run(t, func(c *Context, p *des.Proc) {
		if _, err := c.EnqueueNDRangeKernel(Queue(99), &Kernel{Name: "k"}, []int{1}, nil); err == nil {
			t.Error("invalid queue accepted")
		}
		q, _ := c.CreateCommandQueue()
		if _, err := c.EnqueueNDRangeKernel(q, nil, []int{1}, nil); err == nil {
			t.Error("nil kernel accepted")
		}
		if _, err := c.EnqueueNDRangeKernel(q, &Kernel{Name: "k"}, nil, nil); err == nil {
			t.Error("empty NDRange accepted")
		}
		if _, err := c.EnqueueNDRangeKernel(q, &Kernel{Name: "k"}, []int{1, 1, 1, 1}, nil); err == nil {
			t.Error("4D NDRange accepted")
		}
		if _, err := c.EnqueueWriteBuffer(q, Mem(99), true, 0, nil); err == nil {
			t.Error("invalid mem accepted")
		}
		if err := c.SetKernelArg(nil, 0, 1); err == nil {
			t.Error("nil kernel arg accepted")
		}
		if err := c.SetKernelArg(&Kernel{Name: "k"}, -1, 1); err == nil {
			t.Error("negative index accepted")
		}
		if err := c.SetKernelArg(&Kernel{Name: "k"}, 0, Mem(99)); err == nil {
			t.Error("invalid mem arg accepted")
		}
		if err := c.WaitForEvents(Event(99)); err == nil {
			t.Error("invalid event accepted")
		}
		if err := c.ReleaseMemObject(Mem(99)); err == nil {
			t.Error("invalid release accepted")
		}
		if err := c.ReleaseCommandQueue(Queue(99)); err == nil {
			t.Error("invalid queue release accepted")
		}
	})
}
