package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleSpans is a small deterministic workload shape: a user region on
// rank0 containing a blocking H2D copy (host span + copy-engine span), an
// async launch with its kernel execution, and an MPI call on rank1.
func sampleSpans() []Span {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Span{
		{Track: "gpu0/strm00", Name: "square", Class: ClassKernel, Start: ms(3) + 5*time.Microsecond, End: ms(6)},
		{Track: "rank0/cpu", Name: "app", Class: ClassRegion, Start: 0, End: ms(10)},
		{Track: "rank0/cpu", Name: "cudaMemcpy(H2D)", Class: ClassSync, Start: ms(1), End: ms(3), Bytes: 1 << 20},
		{Track: "gpu0/copyH2D", Name: "memcpy(h2d)", Class: ClassCopy, Start: ms(1), End: ms(3), Bytes: 1 << 20},
		{Track: "rank0/cpu", Name: "cudaLaunch", Class: ClassAsync, Start: ms(3), End: ms(3) + 10*time.Microsecond},
		{Track: "rank1/cpu", Name: "MPI_Allreduce", Class: ClassMPI, Start: ms(6), End: ms(8), Bytes: 4096},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// traceDoc mirrors the Chrome Trace Event JSON Object Format for schema
// checks.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string         `json:"ph"`
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, complete int
	procNames := map[string]bool{}
	threadNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if name, ok := ev.Args["name"].(string); ok {
				if ev.Name == "process_name" {
					procNames[name] = true
				} else if ev.Name == "thread_name" {
					threadNames[name] = true
				}
			}
		case "X":
			complete++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("event %q has negative ts/dur", ev.Name)
			}
			if ev.Pid == 0 || ev.Tid == 0 {
				t.Errorf("event %q missing pid/tid", ev.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != len(sampleSpans()) {
		t.Errorf("complete events = %d, want %d", complete, len(sampleSpans()))
	}
	for _, p := range []string{"gpu0", "rank0", "rank1"} {
		if !procNames[p] {
			t.Errorf("missing process_name metadata for %q", p)
		}
	}
	for _, th := range []string{"cpu", "strm00", "copyH2D"} {
		if !threadNames[th] {
			t.Errorf("missing thread_name metadata for %q", th)
		}
	}
	// The kernel span carries its class as the trace category.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "square" && ev.Cat != "kernel" {
			t.Errorf("square cat = %q, want kernel", ev.Cat)
		}
		if ev.Ph == "X" && ev.Name == "cudaMemcpy(H2D)" {
			if b, ok := ev.Args["bytes"].(float64); !ok || b != 1<<20 {
				t.Errorf("cudaMemcpy(H2D) args = %v, want bytes=%d", ev.Args, 1<<20)
			}
		}
	}
}

// TestChromeTraceDeterministic checks byte-identity across repeated writes
// and across a permuted (but time-equivalent) input order.
func TestChromeTraceDeterministic(t *testing.T) {
	spans := sampleSpans()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, spans); err != nil {
		t.Fatal(err)
	}
	rev := make([]Span, len(spans))
	for i, s := range spans {
		rev[len(spans)-1-i] = s
	}
	if err := WriteChromeTrace(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("trace output depends on input span order")
	}
}

// TestChromeTraceNesting checks that an enclosing span is emitted before
// the spans it contains when they share a start time, which viewers
// require for correct flame nesting.
func TestChromeTraceNesting(t *testing.T) {
	spans := []Span{
		{Track: "rank0/cpu", Name: "inner", Class: ClassSync, Start: 0, End: time.Millisecond},
		{Track: "rank0/cpu", Name: "outer", Class: ClassRegion, Start: 0, End: 5 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	order := []string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			order = append(order, ev.Name)
		}
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("event order = %v, want [outer inner]", order)
	}
}

func TestSplitTrack(t *testing.T) {
	cases := []struct{ in, proc, thread string }{
		{"rank0/cpu", "rank0", "cpu"},
		{"gpu0/strm00", "gpu0", "strm00"},
		{"solo", "solo", "main"},
		{"a/b/c", "a", "b/c"},
	}
	for _, c := range cases {
		p, th := splitTrack(c.in)
		if p != c.proc || th != c.thread {
			t.Errorf("splitTrack(%q) = (%q, %q), want (%q, %q)", c.in, p, th, c.proc, c.thread)
		}
	}
}
