package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Chrome Trace Event JSON writer. The output is
// the "JSON Object Format" ({"traceEvents": [...]}) with complete ("X")
// events plus process/thread name metadata, which Perfetto and
// chrome://tracing both load directly.
//
// Determinism contract: for the same span set the output is
// byte-identical. Spans are sorted by (start, -duration, track, name)
// before emission — the descending-duration tiebreak ensures an
// enclosing span (a user region, a kernel overlapping its tail event)
// precedes its children, which is what the viewers require for correct
// nesting — and process/thread ids are assigned from the sorted track
// list, never from map iteration order.

// trackID locates one track inside the pid/tid numbering.
type trackID struct {
	pid int
	tid int
}

// splitTrack splits "rank0/cpu" into the Perfetto process ("rank0") and
// thread ("cpu"). A track without '/' becomes process track, thread
// "main".
func splitTrack(track string) (proc, thread string) {
	if i := strings.IndexByte(track, '/'); i >= 0 {
		return track[:i], track[i+1:]
	}
	return track, "main"
}

// assignTracks maps every distinct track to a (pid, tid) pair: processes
// numbered 1.. in sorted order, threads numbered 1.. in sorted track
// order within each process. extra lists counter tracks that carry no
// spans of their own but still need ids.
func assignTracks(spans []Span, extra []string) (map[string]trackID, []string) {
	seen := make(map[string]bool)
	tracks := make([]string, 0, 8)
	for _, s := range spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			tracks = append(tracks, s.Track)
		}
	}
	for _, t := range extra {
		if !seen[t] {
			seen[t] = true
			tracks = append(tracks, t)
		}
	}
	sort.Strings(tracks)
	ids := make(map[string]trackID, len(tracks))
	pids := make(map[string]int)
	tidNext := make(map[string]int)
	for _, t := range tracks {
		proc, _ := splitTrack(t)
		pid, ok := pids[proc]
		if !ok {
			pid = len(pids) + 1
			pids[proc] = pid
		}
		tidNext[proc]++
		ids[t] = trackID{pid: pid, tid: tidNext[proc]}
	}
	return ids, tracks
}

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// usec renders a virtual time as trace microseconds with nanosecond
// precision, the fixed format that keeps output byte-stable.
func usec(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}

// WriteChromeTrace writes the spans as a Chrome Trace Event JSON
// document loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return WriteChromeTraceCounters(w, spans, nil)
}

// WriteChromeTraceCounters writes spans plus counter tracks (Chrome "C"
// events — queue depth over virtual time renders as a stepped area chart
// in Perfetto). Counter points are emitted after the span events, sorted
// by (time, track, name) with recording order as the final tiebreak, so
// the document stays byte-identical for a fixed input. With no counters
// the output is byte-identical to WriteChromeTrace.
func WriteChromeTraceCounters(w io.Writer, spans []Span, counters []CounterPoint) error {
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End > b.End // longer span first: parent before child
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	csorted := append([]CounterPoint(nil), counters...)
	sort.SliceStable(csorted, func(i, j int) bool {
		a, b := csorted[i], csorted[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	ctracks := make([]string, 0, 4)
	for _, p := range csorted {
		ctracks = append(ctracks, p.Track)
	}
	ids, tracks := assignTracks(sorted, ctracks)

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Metadata: name every process once and every thread once, in sorted
	// track order.
	namedProc := make(map[int]bool)
	for _, t := range tracks {
		id := ids[t]
		proc, thread := splitTrack(t)
		if !namedProc[id.pid] {
			namedProc[id.pid] = true
			emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + strconv.Itoa(id.pid) +
				",\"tid\":0,\"args\":{\"name\":" + jstr(proc) + "}}")
		}
		emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + strconv.Itoa(id.pid) +
			",\"tid\":" + strconv.Itoa(id.tid) + ",\"args\":{\"name\":" + jstr(thread) + "}}")
	}

	for _, s := range sorted {
		id := ids[s.Track]
		var sb strings.Builder
		sb.WriteString("{\"ph\":\"X\",\"name\":")
		sb.WriteString(jstr(s.Name))
		sb.WriteString(",\"cat\":\"")
		sb.WriteString(s.Class.String())
		sb.WriteString("\",\"ts\":")
		sb.WriteString(usec(int64(s.Start)))
		sb.WriteString(",\"dur\":")
		sb.WriteString(usec(int64(s.End - s.Start)))
		sb.WriteString(",\"pid\":")
		sb.WriteString(strconv.Itoa(id.pid))
		sb.WriteString(",\"tid\":")
		sb.WriteString(strconv.Itoa(id.tid))
		if s.Bytes > 0 {
			sb.WriteString(",\"args\":{\"bytes\":")
			sb.WriteString(strconv.FormatInt(s.Bytes, 10))
			sb.WriteString("}")
		}
		sb.WriteString("}")
		emit(sb.String())
	}

	// Counter events. Chrome keys a counter by (pid, name); prefixing the
	// thread keeps two queues of the same process on distinct charts.
	for _, p := range csorted {
		id := ids[p.Track]
		_, thread := splitTrack(p.Track)
		var sb strings.Builder
		sb.WriteString("{\"ph\":\"C\",\"name\":")
		sb.WriteString(jstr(thread + " " + p.Name))
		sb.WriteString(",\"ts\":")
		sb.WriteString(usec(int64(p.Time)))
		sb.WriteString(",\"pid\":")
		sb.WriteString(strconv.Itoa(id.pid))
		sb.WriteString(",\"tid\":")
		sb.WriteString(strconv.Itoa(id.tid))
		sb.WriteString(",\"args\":{")
		sb.WriteString(jstr(p.Name))
		sb.WriteString(":")
		sb.WriteString(strconv.FormatFloat(p.Value, 'g', -1, 64))
		sb.WriteString("}}")
		emit(sb.String())
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}
