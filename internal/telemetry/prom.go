package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the Prometheus text exposition side of the
// telemetry layer: a Registry that merges (a) metric snapshots published
// by running simulations and (b) self-observability histograms, and
// renders them in text format 0.0.4 for a /metrics endpoint.
//
// The simulation side republishes samples from inside the DES event loop
// (so reading monitor hash tables never races with the simulation),
// while HTTP scrapes read the latest snapshot under an RWMutex. Several
// concurrent simulations (a parallel ensemble) publish under distinct
// source keys and are merged at render time.

// Label is one label pair of a sample.
type Label struct {
	Key   string
	Value string
}

// Sample is one metric point of a published snapshot.
type Sample struct {
	Name   string // metric family, e.g. "ipm_calls_total"
	Help   string // family help text (first sample of a family wins)
	Type   string // "counter" or "gauge"
	Labels []Label
	Value  float64
}

// Registry collects published samples and histograms and renders them as
// Prometheus text. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	sources  map[string][]Sample
	hists    map[string]*Histogram
	vecs     map[string]*Vec
	histvecs map[string]*HistogramVec

	publishes atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		sources:  make(map[string][]Sample),
		hists:    make(map[string]*Histogram),
		vecs:     make(map[string]*Vec),
		histvecs: make(map[string]*HistogramVec),
	}
}

// Publish replaces the sample snapshot of one source (one running job or
// ensemble trial). Distinct sources coexist and are merged at render
// time.
func (g *Registry) Publish(source string, samples []Sample) {
	g.mu.Lock()
	g.sources[source] = samples
	g.mu.Unlock()
	g.publishes.Add(1)
}

// Publishes returns how many snapshots have been published — a liveness
// diagnostic (a scraper seeing this grow knows the job is still being
// sampled).
func (g *Registry) Publishes() uint64 { return g.publishes.Load() }

// Histogram returns the registered histogram with the given name,
// creating it on first use. Bounds are ignored when the histogram
// already exists.
func (g *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	g.mu.Lock()
	defer g.mu.Unlock()
	if h, ok := g.hists[name]; ok {
		return h
	}
	h := NewHistogram(name, help, bounds)
	g.hists[name] = h
	return h
}

// Vec is a labeled metric family: one metric name, one label key, and a
// lazily created cell per label value (`ipm_queue_depth{queue="ctx0/q0"}`
// style). Per-queue metrics use it so a run with N queues does not need N
// pre-registered series. Safe for concurrent use; the hot path (a
// memoized *VecCell) is a single atomic op.
type Vec struct {
	name string
	help string
	typ  string // "counter" or "gauge"
	key  string // label key

	mu    sync.RWMutex
	cells map[string]*VecCell
}

// VecCell is one series of a Vec. Values are float64 bits in an atomic
// word; callers memoize the cell and Add/Set without further lookups.
type VecCell struct {
	bits atomic.Uint64
}

// Add increments the cell (counter-style).
func (c *VecCell) Add(d float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Set replaces the cell value (gauge-style).
func (c *VecCell) Set(v float64) { c.bits.Store(math.Float64bits(v)) }

// Value returns the current cell value.
func (c *VecCell) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// With returns the cell for one label value, creating it on first use.
func (v *Vec) With(labelValue string) *VecCell {
	v.mu.RLock()
	c, ok := v.cells[labelValue]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.cells[labelValue]; ok {
		return c
	}
	c = &VecCell{}
	v.cells[labelValue] = c
	return c
}

func (g *Registry) vec(name, help, typ, labelKey string) *Vec {
	g.mu.Lock()
	defer g.mu.Unlock()
	if v, ok := g.vecs[name]; ok {
		return v
	}
	v := &Vec{name: name, help: help, typ: typ, key: labelKey, cells: make(map[string]*VecCell)}
	g.vecs[name] = v
	return v
}

// CounterVec returns the labeled counter family with the given name,
// creating it on first use (help/labelKey are ignored when it already
// exists, like Histogram).
func (g *Registry) CounterVec(name, help, labelKey string) *Vec {
	return g.vec(name, help, "counter", labelKey)
}

// GaugeVec returns the labeled gauge family with the given name, creating
// it on first use.
func (g *Registry) GaugeVec(name, help, labelKey string) *Vec {
	return g.vec(name, help, "gauge", labelKey)
}

// HistogramVec is a labeled histogram family: one metric name, one label
// key, and a lazily created Histogram per label value — the shape the
// cluster router's per-peer request-latency metric needs
// (`ipm_peer_latency_ns{peer="http://..."}`). Cells share one bucket
// layout so the family renders as a single coherent Prometheus
// histogram family. Safe for concurrent use; callers memoize the cell
// like they do with Vec.
type HistogramVec struct {
	name   string
	help   string
	key    string // label key
	bounds []float64

	mu    sync.RWMutex
	cells map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(labelValue string) *Histogram {
	v.mu.RLock()
	h, ok := v.cells[labelValue]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.cells[labelValue]; ok {
		return h
	}
	h = NewHistogram(v.name, "", v.bounds)
	v.cells[labelValue] = h
	return h
}

// HistogramVec returns the labeled histogram family with the given name,
// creating it on first use (help/labelKey/bounds are ignored when it
// already exists, like Histogram).
func (g *Registry) HistogramVec(name, help, labelKey string, bounds []float64) *HistogramVec {
	g.mu.Lock()
	defer g.mu.Unlock()
	if v, ok := g.histvecs[name]; ok {
		return v
	}
	v := &HistogramVec{
		name: name, help: help, key: labelKey,
		bounds: append([]float64(nil), bounds...),
		cells:  make(map[string]*Histogram),
	}
	g.histvecs[name] = v
	return v
}

// fnum renders a metric value in the shortest exact form.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels renders {k="v",...} (empty string for no labels).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus renders every family in text format 0.0.4, sorted by
// family name and, within a family, by label string — deterministic for
// a fixed registry state.
func (g *Registry) WritePrometheus(w io.Writer) error {
	g.mu.RLock()
	byFamily := make(map[string][]Sample)
	for _, samples := range g.sources {
		for _, s := range samples {
			byFamily[s.Name] = append(byFamily[s.Name], s)
		}
	}
	hists := make([]*Histogram, 0, len(g.hists))
	for _, h := range g.hists {
		hists = append(hists, h)
	}
	vecs := make([]*Vec, 0, len(g.vecs))
	for _, v := range g.vecs {
		vecs = append(vecs, v)
	}
	hvecs := make([]*HistogramVec, 0, len(g.histvecs))
	for _, v := range g.histvecs {
		hvecs = append(hvecs, v)
	}
	g.mu.RUnlock()

	names := make([]string, 0, len(byFamily)+len(hists)+len(vecs)+len(hvecs))
	for n := range byFamily {
		names = append(names, n)
	}
	histByName := make(map[string]*Histogram, len(hists))
	for _, h := range hists {
		histByName[h.name] = h
		names = append(names, h.name)
	}
	vecByName := make(map[string]*Vec, len(vecs))
	for _, v := range vecs {
		vecByName[v.name] = v
		names = append(names, v.name)
	}
	hvecByName := make(map[string]*HistogramVec, len(hvecs))
	for _, v := range hvecs {
		hvecByName[v.name] = v
		names = append(names, v.name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		if h, ok := histByName[name]; ok {
			writeHistogram(bw, h)
			continue
		}
		if v, ok := hvecByName[name]; ok {
			writeHistogramVec(bw, v)
			continue
		}
		if v, ok := vecByName[name]; ok {
			writeVec(bw, v)
			continue
		}
		fam := byFamily[name]
		if fam[0].Help != "" {
			bw.WriteString("# HELP " + name + " " + fam[0].Help + "\n")
		}
		typ := fam[0].Type
		if typ == "" {
			typ = "gauge"
		}
		bw.WriteString("# TYPE " + name + " " + typ + "\n")
		lines := make([]string, len(fam))
		for i, s := range fam {
			lines[i] = name + renderLabels(s.Labels) + " " + fnum(s.Value) + "\n"
		}
		sort.Strings(lines)
		for _, l := range lines {
			bw.WriteString(l)
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, h *Histogram) {
	if h.help != "" {
		bw.WriteString("# HELP " + h.name + " " + h.help + "\n")
	}
	bw.WriteString("# TYPE " + h.name + " histogram\n")
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		bw.WriteString(h.name + `_bucket{le="` + fnum(bound) + `"} ` +
			strconv.FormatUint(cum, 10) + "\n")
	}
	cum += h.counts[len(h.bounds)].Load()
	bw.WriteString(h.name + `_bucket{le="+Inf"} ` + strconv.FormatUint(cum, 10) + "\n")
	bw.WriteString(h.name + "_sum " + fnum(h.Sum()) + "\n")
	bw.WriteString(h.name + "_count " + strconv.FormatUint(cum, 10) + "\n")
}

// writeHistogramVec renders a labeled histogram family: each cell's
// bucket/sum/count lines carry the vec label ahead of le, cells sorted
// by label value for deterministic output.
func writeHistogramVec(bw *bufio.Writer, v *HistogramVec) {
	if v.help != "" {
		bw.WriteString("# HELP " + v.name + " " + v.help + "\n")
	}
	bw.WriteString("# TYPE " + v.name + " histogram\n")
	v.mu.RLock()
	labels := make([]string, 0, len(v.cells))
	for l := range v.cells {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		h := v.cells[l]
		lp := v.key + `="` + escapeLabel(l) + `"`
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			bw.WriteString(v.name + `_bucket{` + lp + `,le="` + fnum(bound) + `"} ` +
				strconv.FormatUint(cum, 10) + "\n")
		}
		cum += h.counts[len(h.bounds)].Load()
		bw.WriteString(v.name + `_bucket{` + lp + `,le="+Inf"} ` + strconv.FormatUint(cum, 10) + "\n")
		bw.WriteString(v.name + "_sum{" + lp + "} " + fnum(h.Sum()) + "\n")
		bw.WriteString(v.name + "_count{" + lp + "} " + strconv.FormatUint(cum, 10) + "\n")
	}
	v.mu.RUnlock()
}

// writeVec renders a labeled family, one line per cell sorted by label
// value, so output stays deterministic however the cells were created.
func writeVec(bw *bufio.Writer, v *Vec) {
	if v.help != "" {
		bw.WriteString("# HELP " + v.name + " " + v.help + "\n")
	}
	bw.WriteString("# TYPE " + v.name + " " + v.typ + "\n")
	v.mu.RLock()
	labels := make([]string, 0, len(v.cells))
	for l := range v.cells {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		bw.WriteString(v.name + "{" + v.key + `="` + escapeLabel(l) + `"} ` +
			fnum(v.cells[l].Value()) + "\n")
	}
	v.mu.RUnlock()
}

// Handler returns the /metrics HTTP handler.
func (g *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.WritePrometheus(w)
	})
}
