package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestVecRender(t *testing.T) {
	g := NewRegistry()
	depth := g.GaugeVec("ipm_queue_depth", "Queued commands.", "queue")
	flushes := g.CounterVec("ipm_queue_flushes_total", "Batches submitted.", "queue")
	// Cells created out of label order: render must sort by label value.
	depth.With("ctx1/q0").Set(3)
	depth.With("ctx0/q0").Set(1)
	flushes.With("ctx0/q0").Add(2)
	flushes.With("ctx0/q0").Add(3)

	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ipm_queue_depth Queued commands.
# TYPE ipm_queue_depth gauge
ipm_queue_depth{queue="ctx0/q0"} 1
ipm_queue_depth{queue="ctx1/q0"} 3
# HELP ipm_queue_flushes_total Batches submitted.
# TYPE ipm_queue_flushes_total counter
ipm_queue_flushes_total{queue="ctx0/q0"} 5
`
	if got := sb.String(); got != want {
		t.Errorf("vec render:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestVecLabelEscaping(t *testing.T) {
	g := NewRegistry()
	v := g.GaugeVec("odd_labels", "", "queue")
	v.With(`ctx"0\q` + "\n" + `0`).Set(1)
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE odd_labels gauge
odd_labels{queue="ctx\"0\\q\n0"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("escaped render:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestVecRenderDeterministic(t *testing.T) {
	render := func(labels []string) string {
		g := NewRegistry()
		v := g.CounterVec("ipm_queue_flushes_total", "Flushes.", "queue")
		for i, l := range labels {
			v.With(l).Add(float64(i + 1))
		}
		var sb strings.Builder
		if err := g.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := render([]string{"ctx0/q0", "ctx1/q0", "ctx2/q0"})
	// Same cells created in reverse order with the values adjusted to
	// match: render output must not depend on creation order.
	g := NewRegistry()
	v := g.CounterVec("ipm_queue_flushes_total", "Flushes.", "queue")
	v.With("ctx2/q0").Add(3)
	v.With("ctx1/q0").Add(2)
	v.With("ctx0/q0").Add(1)
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if b := sb.String(); a != b {
		t.Errorf("render depends on cell creation order:\n%s\nvs:\n%s", a, b)
	}
}

func TestVecFirstRegistrationWins(t *testing.T) {
	g := NewRegistry()
	a := g.CounterVec("m", "first help", "queue")
	b := g.CounterVec("m", "ignored", "other")
	if a != b {
		t.Fatal("same name returned distinct Vec instances")
	}
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); !strings.Contains(got, "first help") || strings.Contains(got, "ignored") {
		t.Errorf("second registration overrode the first: %s", got)
	}
}

func TestVecCellConcurrency(t *testing.T) {
	g := NewRegistry()
	v := g.CounterVec("c", "", "queue")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cell := v.With("shared")
			for i := 0; i < 1000; i++ {
				cell.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := v.With("shared").Value(); got != 8000 {
		t.Errorf("concurrent adds lost updates: %v, want 8000", got)
	}
}
