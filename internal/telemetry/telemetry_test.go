package telemetry

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

func span(name string, startMs int) Span {
	return Span{
		Track: "rank0/cpu",
		Name:  name,
		Start: time.Duration(startMs) * time.Millisecond,
		End:   time.Duration(startMs+1) * time.Millisecond,
	}
}

func TestRecorderDropOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(span(strconv.Itoa(i), i))
	}
	if got := r.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	// Oldest two were overwritten; the rest come back in recording order.
	for i, s := range snap {
		if want := strconv.Itoa(i + 2); s.Name != want {
			t.Errorf("snap[%d].Name = %q, want %q", i, s.Name, want)
		}
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.Record(span("a", 0))
	r.Record(span("b", 1))
	if got := r.Dropped(); got != 0 {
		t.Errorf("Dropped = %d, want 0", got)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Errorf("Snapshot = %v, want [a b]", snap)
	}
	if r.Cap() != 8 {
		t.Errorf("Cap = %d, want 8", r.Cap())
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	if got := NewRecorder(0).Cap(); got != DefaultCapacity {
		t.Errorf("Cap = %d, want DefaultCapacity %d", got, DefaultCapacity)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Record(span("x", 0)) // must not panic
	if r.Total() != 0 || r.Dropped() != 0 || r.Cap() != 0 {
		t.Errorf("nil recorder reports non-zero counters")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Errorf("nil recorder Snapshot = %v, want nil", snap)
	}
}

// TestRecorderConcurrent hammers the ring from many writers while readers
// snapshot it, for the -race pass.
func TestRecorderConcurrent(t *testing.T) {
	const (
		writers = 8
		each    = 2000
	)
	r := NewRecorder(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(span(strconv.Itoa(w), i))
			}
		}()
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot()
					_ = r.Dropped()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Total(); got != writers*each {
		t.Errorf("Total = %d, want %d", got, writers*each)
	}
	if got := len(r.Snapshot()); got != 128 {
		t.Errorf("Snapshot len = %d, want 128", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("lat", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("Sum = %g, want 106", got)
	}
	// Bucket occupancy: le=1 gets 0.5 and 1; le=2 gets 1.5; le=4 gets 3;
	// +Inf gets 100.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Errorf("nil histogram reports non-zero")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(8, 2, 4)
	want := []float64{8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSpanClassStrings(t *testing.T) {
	cases := map[SpanClass]string{
		ClassSync: "sync", ClassAsync: "async", ClassMPI: "mpi",
		ClassKernel: "kernel", ClassCopy: "copy", ClassGPU: "gpu",
		ClassRegion: "region", ClassIdle: "idle", ClassLib: "lib",
		ClassOther: "other", SpanClass(200): "other",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

// BenchmarkSpanRecord measures the enabled-telemetry hot path: one value
// Span stored into the ring under the mutex. Steady state is 0 allocs/op
// — Span is a value type and the ring is preallocated.
func BenchmarkSpanRecord(b *testing.B) {
	r := NewRecorder(1 << 12)
	s := Span{
		Track: "gpu0/strm01",
		Name:  "gemm_nn",
		Class: ClassKernel,
		Start: 10 * time.Microsecond,
		End:   35 * time.Microsecond,
		Bytes: 1 << 20,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(s)
	}
	if r.Total() != uint64(b.N) {
		b.Fatalf("total = %d, want %d", r.Total(), b.N)
	}
}

// BenchmarkSpanRecordParallel is the same store under contention from an
// ensemble's worth of concurrent writers.
func BenchmarkSpanRecordParallel(b *testing.B) {
	r := NewRecorder(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := Span{Track: "rank0/cpu", Name: "MPI_Allreduce", Class: ClassMPI}
		for pb.Next() {
			r.Record(s)
		}
	})
}
