package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sampleCounters is the queue-depth counter track riding alongside
// sampleSpans: two submission queues of one rank stepping their depth.
func sampleCounters() []CounterPoint {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []CounterPoint{
		{Track: "ctx0/q0", Name: "depth", Time: ms(1), Value: 1},
		{Track: "ctx0/q0", Name: "depth", Time: ms(2), Value: 2},
		{Track: "ctx0/q0", Name: "depth", Time: ms(3), Value: 0},
		{Track: "ctx0/q1", Name: "depth", Time: ms(2), Value: 1},
		{Track: "ctx0/q1", Name: "depth", Time: ms(6), Value: 0},
	}
}

func TestChromeTraceCountersGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTraceCounters(&buf, sampleSpans(), sampleCounters()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_counters_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestChromeTraceCountersNilMatchesPlain guards the compatibility
// contract: with no counters the two writers are byte-identical, so
// every existing golden stays valid.
func TestChromeTraceCountersNilMatchesPlain(t *testing.T) {
	var plain, withNil bytes.Buffer
	if err := WriteChromeTrace(&plain, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceCounters(&withNil, sampleSpans(), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), withNil.Bytes()) {
		t.Error("WriteChromeTraceCounters(nil) differs from WriteChromeTrace")
	}
}

func TestChromeTraceCountersDeterministic(t *testing.T) {
	spans, counters := sampleSpans(), sampleCounters()
	var a, b bytes.Buffer
	if err := WriteChromeTraceCounters(&a, spans, counters); err != nil {
		t.Fatal(err)
	}
	rs := make([]Span, len(spans))
	for i, s := range spans {
		rs[len(spans)-1-i] = s
	}
	rc := make([]CounterPoint, len(counters))
	for i, p := range counters {
		rc[len(counters)-1-i] = p
	}
	if err := WriteChromeTraceCounters(&b, rs, rc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("counter trace output depends on input order")
	}
}

func TestChromeTraceCountersSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTraceCounters(&buf, sampleSpans(), sampleCounters()); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var counters, lastX, firstC int
	firstC = -1
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			lastX = i
		case "C":
			counters++
			if firstC < 0 {
				firstC = i
			}
			// The counter name is thread-prefixed so two queues of the
			// same process chart separately; args carries the series.
			if ev.Name != "q0 depth" && ev.Name != "q1 depth" {
				t.Errorf("counter name = %q, want q0/q1 depth", ev.Name)
			}
			if _, ok := ev.Args["depth"]; !ok {
				t.Errorf("counter %q missing depth arg: %v", ev.Name, ev.Args)
			}
			if ev.Pid == 0 || ev.Tid == 0 {
				t.Errorf("counter %q missing pid/tid", ev.Name)
			}
		}
	}
	if counters != len(sampleCounters()) {
		t.Errorf("counter events = %d, want %d", counters, len(sampleCounters()))
	}
	if firstC >= 0 && firstC < lastX {
		t.Error("counter events interleaved with span events; want all counters after spans")
	}
	// The counter-only tracks still get thread metadata.
	named := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if n, ok := ev.Args["name"].(string); ok {
				named[n] = true
			}
		}
	}
	for _, th := range []string{"q0", "q1"} {
		if !named[th] {
			t.Errorf("missing thread_name metadata for counter track %q", th)
		}
	}
}

// TestCounterRing checks the recorder's counter ring: lazy allocation,
// oldest-first snapshots, and drop accounting past capacity.
func TestCounterRing(t *testing.T) {
	rec := NewRecorder(16) // counter ring floors at 1024 points
	if got := rec.CounterSnapshot(); got != nil {
		t.Errorf("fresh recorder counter snapshot = %v, want nil", got)
	}
	const total = 1030 // 6 past the ring floor: oldest 6 overwritten
	for i := 0; i < total; i++ {
		rec.RecordCounter(CounterPoint{Track: "ctx0/q0", Name: "depth",
			Time: time.Duration(i) * time.Millisecond, Value: float64(i)})
	}
	pts := rec.CounterSnapshot()
	if len(pts) != 1024 {
		t.Fatalf("snapshot holds %d points, want 1024 (capacity)", len(pts))
	}
	for i, p := range pts {
		if want := float64(i + total - 1024); p.Value != want {
			t.Fatalf("point %d value = %v, want %v (oldest-first order)", i, p.Value, want)
		}
	}
	if rec.CounterTotal() != total || rec.CounterDropped() != total-1024 {
		t.Errorf("total/dropped = %d/%d, want %d/%d", rec.CounterTotal(), rec.CounterDropped(), total, total-1024)
	}
	var nilRec *Recorder
	nilRec.RecordCounter(CounterPoint{}) // nil-safe no-op
	if nilRec.CounterSnapshot() != nil || nilRec.CounterTotal() != 0 {
		t.Error("nil recorder counter accessors not zero")
	}
}
