// Package telemetry is the streaming observability layer of the ipmgo
// monitor: a lock-light, fixed-capacity span recorder plus two exporters
// (a Chrome Trace Event / Perfetto JSON writer and a Prometheus text
// registry).
//
// IPM's published design is strictly post-mortem — a banner and an XML
// log after the job ends. This package adds the live view modern
// operations require without giving up IPM's discipline of bounded
// memory and near-zero overhead:
//
//   - spans are recorded into a fixed-capacity ring buffer that drops the
//     oldest spans under pressure and counts every drop, so a monitored
//     run can report its own telemetry fidelity;
//   - when no recorder is attached the instrumented layers pay exactly
//     one nil-check branch per event;
//   - span timestamps are virtual (DES) times, so trace files are
//     byte-identical across repeated runs and worker counts.
//
// The package has no dependencies beyond the standard library and is
// imported by the monitor core (internal/ipm), the wrapper families, and
// the GPU simulator.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// SpanClass classifies a span for exporters: it becomes the Chrome trace
// "cat" field and selects the metric family a span feeds.
type SpanClass uint8

const (
	// ClassSync is a host-side API call that blocks until its effect is
	// complete (cudaMemcpy, cudaStreamSynchronize, ...).
	ClassSync SpanClass = iota
	// ClassAsync is a host-side API call that returns before the device
	// work completes (cudaLaunch, cudaMemcpyAsync, ...).
	ClassAsync
	// ClassMPI is a communication call.
	ClassMPI
	// ClassKernel is on-device kernel execution.
	ClassKernel
	// ClassCopy is a copy-engine transfer.
	ClassCopy
	// ClassGPU is any other device-side operation (memset, event record).
	ClassGPU
	// ClassRegion is a user region (MPI_Pcontrol bracket).
	ClassRegion
	// ClassIdle is implicit host blocking (@CUDA_HOST_IDLE).
	ClassIdle
	// ClassLib is an accelerated-library call (CUBLAS, CUFFT).
	ClassLib
	// ClassQueue is driver command-queue activity (a batch submit span on
	// a per-queue track).
	ClassQueue
	// ClassOther is everything else (I/O, OpenMP, pseudo entries).
	ClassOther
)

// String returns the exporter-facing category name.
func (c SpanClass) String() string {
	switch c {
	case ClassSync:
		return "sync"
	case ClassAsync:
		return "async"
	case ClassMPI:
		return "mpi"
	case ClassKernel:
		return "kernel"
	case ClassCopy:
		return "copy"
	case ClassGPU:
		return "gpu"
	case ClassRegion:
		return "region"
	case ClassIdle:
		return "idle"
	case ClassLib:
		return "lib"
	case ClassQueue:
		return "queue"
	}
	return "other"
}

// Span is one timed interval on a named track. Track names follow the
// "process/thread" convention ("rank0/cpu", "gpu0/strm01",
// "gpu0/copyH2D"); the trace exporter splits them at the first '/' into
// a Perfetto process and thread. Timestamps are virtual times.
type Span struct {
	Track string
	Name  string
	Class SpanClass
	Start time.Duration
	End   time.Duration
	Bytes int64 // operand size, 0 when not applicable
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// CounterPoint is one sample of a numeric counter track (e.g. a command
// queue's depth over virtual time). The trace exporter renders counter
// points as Chrome "C" events, which Perfetto draws as a stepped area
// chart on its own track.
type CounterPoint struct {
	Track string
	Name  string // series name within the track, e.g. "depth"
	Time  time.Duration
	Value float64
}

// DefaultCapacity is the default ring size: enough for the bundled
// workloads at full scale while keeping the buffer tens of megabytes.
const DefaultCapacity = 1 << 18

// Recorder is the fixed-capacity span sink. Record appends under a
// mutex whose critical section is one slot store, so the recorder stays
// cheap on the monitored hot path and safe for the concurrent writers of
// a parallel ensemble; when the ring is full the oldest span is
// overwritten and the drop is counted. A nil *Recorder is a valid,
// always-disabled recorder.
type Recorder struct {
	mu    sync.Mutex
	ring  []Span
	total atomic.Uint64 // spans ever recorded (monotone)

	// Counter points live in their own drop-oldest ring, allocated lazily
	// on the first RecordCounter (runs without command queues pay nothing)
	// at a quarter of the span capacity: depth samples are batched per
	// flush, so they arrive far less often than spans.
	cring  []CounterPoint
	ctotal atomic.Uint64
}

// NewRecorder creates a recorder holding at most capacity spans.
// capacity <= 0 selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]Span, capacity)}
}

// Record appends one span, overwriting the oldest if the ring is full.
// Safe for concurrent use; a no-op on a nil recorder.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	n := r.total.Load()
	r.ring[n%uint64(len(r.ring))] = s
	r.total.Store(n + 1)
	r.mu.Unlock()
}

// RecordCounter appends one counter point, overwriting the oldest if the
// counter ring is full. Safe for concurrent use; a no-op on a nil
// recorder.
func (r *Recorder) RecordCounter(p CounterPoint) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cring == nil {
		c := len(r.ring) / 4
		if c < 1024 {
			c = 1024
		}
		r.cring = make([]CounterPoint, c)
	}
	n := r.ctotal.Load()
	r.cring[n%uint64(len(r.cring))] = p
	r.ctotal.Store(n + 1)
	r.mu.Unlock()
}

// CounterTotal returns the number of counter points ever recorded,
// including dropped ones.
func (r *Recorder) CounterTotal() uint64 {
	if r == nil {
		return 0
	}
	return r.ctotal.Load()
}

// CounterDropped returns how many counter points were overwritten before
// being read.
func (r *Recorder) CounterDropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := uint64(len(r.cring))
	r.mu.Unlock()
	if n := r.ctotal.Load(); c > 0 && n > c {
		return n - c
	}
	return 0
}

// CounterSnapshot copies the retained counter points in recording order
// (oldest first).
func (r *Recorder) CounterSnapshot() []CounterPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.ctotal.Load()
	if n == 0 {
		return nil
	}
	c := uint64(len(r.cring))
	if n <= c {
		return append([]CounterPoint(nil), r.cring[:n]...)
	}
	oldest := n % c
	out := make([]CounterPoint, 0, c)
	out = append(out, r.cring[oldest:]...)
	out = append(out, r.cring[:oldest]...)
	return out
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Total returns the number of spans ever recorded, including dropped
// ones. Safe to read concurrently with writers.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Dropped returns how many spans were overwritten before being read.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if n, c := r.total.Load(), uint64(len(r.ring)); n > c {
		return n - c
	}
	return 0
}

// Snapshot copies the retained spans in recording order (oldest first).
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total.Load()
	c := uint64(len(r.ring))
	if n <= c {
		return append([]Span(nil), r.ring[:n]...)
	}
	oldest := n % c
	out := make([]Span, 0, c)
	out = append(out, r.ring[oldest:]...)
	out = append(out, r.ring[:oldest]...)
	return out
}

// Histogram is a fixed-bucket histogram with atomic counters, used for
// the monitor's self-observability (e.g. the real-time latency of the
// observe path). Bounds are upper bucket edges; one implicit +Inf bucket
// is appended. Safe for concurrent use.
type Histogram struct {
	name   string
	help   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits of the observed-value total
}

// NewHistogram creates a histogram metric with the given upper bounds
// (which must be sorted ascending).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
