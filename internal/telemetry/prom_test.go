package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	g := NewRegistry()
	g.Publish("job1", []Sample{
		{Name: "ipm_calls_total", Help: "Calls.", Type: "counter",
			Labels: []Label{{"rank", "0"}, {"name", "cudaMemcpy(D2H)"}}, Value: 42},
		{Name: "ipm_sim_seconds", Help: "Sim time.", Type: "gauge", Value: 1.5},
	})
	g.Publish("job2", []Sample{
		{Name: "ipm_calls_total", Help: "Calls.", Type: "counter",
			Labels: []Label{{"rank", "1"}, {"name", "MPI_Send"}}, Value: 7},
	})
	h := g.Histogram("obs_latency", "Observe latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(10)

	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP ipm_calls_total Calls.
# TYPE ipm_calls_total counter
ipm_calls_total{rank="0",name="cudaMemcpy(D2H)"} 42
ipm_calls_total{rank="1",name="MPI_Send"} 7
# HELP ipm_sim_seconds Sim time.
# TYPE ipm_sim_seconds gauge
ipm_sim_seconds 1.5
# HELP obs_latency Observe latency.
# TYPE obs_latency histogram
obs_latency_bucket{le="1"} 1
obs_latency_bucket{le="2"} 2
obs_latency_bucket{le="+Inf"} 3
obs_latency_sum 12
obs_latency_count 3
`
	if got != want {
		t.Errorf("WritePrometheus output:\n%s\nwant:\n%s", got, want)
	}
	if g.Publishes() != 2 {
		t.Errorf("Publishes = %d, want 2", g.Publishes())
	}
}

func TestPublishReplacesSource(t *testing.T) {
	g := NewRegistry()
	g.Publish("job", []Sample{{Name: "m", Type: "gauge", Value: 1}})
	g.Publish("job", []Sample{{Name: "m", Type: "gauge", Value: 2}})
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "m 2\n") || strings.Contains(sb.String(), "m 1\n") {
		t.Errorf("republish did not replace snapshot:\n%s", sb.String())
	}
}

func TestEscapeLabel(t *testing.T) {
	g := NewRegistry()
	g.Publish("job", []Sample{{
		Name: "m", Type: "gauge",
		Labels: []Label{{"cmd", `./a.out "x" \y` + "\nz"}},
		Value:  1,
	}})
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `m{cmd="./a.out \"x\" \\y\nz"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped line missing:\n%s\nwant substring %q", sb.String(), want)
	}
}

func TestMetricsHandler(t *testing.T) {
	g := NewRegistry()
	g.Publish("job", []Sample{{Name: "ipm_sim_seconds", Type: "gauge", Value: 3}})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ipm_sim_seconds 3") {
		t.Errorf("scrape body missing sample:\n%s", body)
	}
}
