package ipm

import (
	"fmt"
	"strconv"
	"time"
)

// This file is the streaming fast path of profile ingest: a zero-copy
// scanner over the raw XML bytes that feeds per-task and per-entry
// events to a sink without building the XMLLog/JobProfile DOM and
// without the per-token boxing of encoding/xml.
//
// Correctness contract: for every input on which ScanXMLTolerant
// reports ok=true, its events, warnings, truncation flag, task counts
// and error must be EXACTLY what ParseXMLTolerant would produce for the
// same bytes. The scanner earns that guarantee by handling only the
// clean core grammar and bailing out (ok=false, caller re-parses with
// ParseXMLTolerant) on anything where the encoding/xml non-strict
// decoder has behavior this scanner does not replicate bit-for-bit:
//
//   - any '&' (entity expansion) or byte outside printable ASCII +
//     \t\n\r anywhere in the document (callers prescan for this);
//   - truncation: EOF inside a tag or with elements still open (the
//     decoder's error text is embedded in the salvage warning);
//   - mismatched end tags (the non-strict decoder auto-closes
//     intermediate elements — a different event stream);
//   - unquoted or valueless attributes, '<' or '\r' inside attribute
//     values ('\r' is normalized to '\n' by the decoder);
//   - ':' in names (namespace resolution), names not matching
//     [A-Za-z_][A-Za-z0-9_.-]*;
//   - "<!" constructs (comments error on inner "--" even non-strict,
//     directives are rare) and "]]>" in character data (always an
//     error);
//   - "<?xml ...?>" processing instructions that mention a non-UTF-8
//     encoding (the decoder errors on those anywhere in the document).
//
// Everything else the decoder tolerates is tolerated identically here:
// multiple roots, stray top-level text, duplicate attributes (last
// wins), whitespace around '=', '\t'/'\n' inside attribute values,
// self-closing tags, unknown elements, and the full salvage state
// machine (interleaved tasks, region/func out of place, bad numeric
// attributes).

// ScanHeader carries the ipm_log root attributes. Byte-slice fields
// alias the input buffer and are only valid during the callback.
type ScanHeader struct {
	Version   []byte
	Command   []byte
	Start     []byte
	Stop      []byte
	NTasks    int
	NHosts    int
	Wallclock float64
}

// ScanTask carries one task element's attributes, durations already
// converted with the same rounding FromXML applies.
type ScanTask struct {
	Rank          int
	Host          []byte
	Wallclock     time.Duration
	LoadFactor    float64
	Overflow      int
	Probes        uint64
	Errors        int64
	SubmitStall   time.Duration
	Energy        int64 // nanojoules, converted like joulesToEnergy
	Device        []byte
	MonitorErrors int64
	Lost          bool
	LostAt        time.Duration
	LostReason    []byte
}

// ScanEntry is one func element inside a region: one hash-table entry.
type ScanEntry struct {
	Region      []byte // enclosing region's name attribute, "" if absent
	Name        []byte
	Bytes       int64
	Count       int64
	Total       time.Duration
	Min         time.Duration
	Max         time.Duration
	Errors      int64
	Submits     int64
	SubmitStall time.Duration
	Energy      int64 // nanojoules
}

// ScanSink receives the event stream of one document. Slices passed in
// alias the input; copy anything that must outlive the callback.
// TaskEnd fires exactly once per recovered task (including tasks closed
// implicitly by an interleaved <task>), after its entries.
type ScanSink interface {
	Header(*ScanHeader)
	TaskStart(*ScanTask)
	Entry(*ScanEntry)
	TaskEnd()
}

// ScanXMLTolerant streams data into sink. ok=false means the input
// strayed off the fast-path grammar: nothing about the partial event
// stream or rep should be trusted, and the caller must fall back to
// ParseXMLTolerant. With ok=true, rep and err match ParseXMLTolerant
// exactly (err is non-nil only when no ipm_log root was found).
//
// rep must be zeroed by the caller; its Warnings slice is appended to,
// so a recycled backing array is reused across documents.
func ScanXMLTolerant(data []byte, sink ScanSink, rep *ParseReport) (ok bool, err error) {
	s := scanner{data: data, sink: sink, rep: rep}
	if !s.run() {
		return false, nil
	}
	if !s.seenRoot {
		return true, fmt.Errorf("ipm: no ipm_log root element found")
	}
	// On the fast path every open <task> is closed by a matched end tag
	// or an interleaved start, so the "log ends inside task" salvage
	// branch is unreachable here (an EOF with the task still open is a
	// decoder error, which bails to the fallback).
	rep.TasksRecovered = s.tasks
	rep.TasksDeclared = s.ntasks
	if s.ntasks > s.tasks {
		rep.warnf("log declares %d task(s) but only %d recovered", s.ntasks, s.tasks)
	}
	return true, nil
}

// element kinds dispatched by name.
const (
	elOther = iota
	elRoot
	elTask
	elRegion
	elFunc
)

type scanner struct {
	data []byte
	pos  int
	sink ScanSink
	rep  *ParseReport

	// stack holds the open element names (slices into data). skipFrom
	// is the depth of the outermost element of a skipped subtree
	// (task-before-root, region-outside-task), 0 when not skipping:
	// while len(stack) >= skipFrom > 0, elements are syntax-checked but
	// produce no warnings or events — the dec.Skip() equivalence.
	stack    [][]byte
	skipFrom int

	seenRoot bool
	inTask   bool
	inRegion bool
	tasks    int
	ntasks   int

	hdr        ScanHeader
	task       ScanTask
	entry      ScanEntry
	regionName []byte
}

func (s *scanner) run() bool {
	for s.pos < len(s.data) {
		if c := s.data[s.pos]; c != '<' {
			if !s.text() {
				return false
			}
			continue
		}
		if s.pos+1 >= len(s.data) {
			return false // EOF mid-tag: decoder syntax error
		}
		switch s.data[s.pos+1] {
		case '/':
			if !s.endTag() {
				return false
			}
		case '?':
			if !s.procInst() {
				return false
			}
		case '!':
			return false // comments/directives: off the fast path
		default:
			if !s.startTag() {
				return false
			}
		}
	}
	// Clean EOF is only clean with nothing open.
	return len(s.stack) == 0
}

// text consumes character data up to the next '<'. The decoder accepts
// anything here except the CDATA terminator "]]>"; content is discarded
// (the tolerant parser ignores all character data).
func (s *scanner) text() bool {
	seg := s.data[s.pos:]
	end := len(seg)
	for i := 0; i < end; i++ {
		if seg[i] == '<' {
			end = i
			break
		}
		if seg[i] == ']' && i+2 < len(seg) && seg[i+1] == ']' && seg[i+2] == '>' {
			return false
		}
	}
	s.pos += end
	return true
}

// procInst consumes <?target ...?>. The decoder accepts any PI, but for
// a target of exactly "xml" it scans the body for "encoding=" and
// errors on any charset other than UTF-8 — a document-wide error this
// scanner cannot replicate, so those bail.
func (s *scanner) procInst() bool {
	s.pos += 2 // "<?"
	start := s.pos
	name := s.readName()
	if name == nil {
		return false
	}
	bodyStart := s.pos
	for {
		if s.pos+1 >= len(s.data) {
			return false // EOF inside PI
		}
		if s.data[s.pos] == '?' && s.data[s.pos+1] == '>' {
			break
		}
		s.pos++
	}
	body := s.data[bodyStart:s.pos]
	s.pos += 2
	if string(name) == "xml" && s.pos-start > 3 {
		// Replicate procInst(): a quoted encoding value other than
		// utf-8 (case-insensitive) errors; anything else — including a
		// malformed encoding= with no quote — is accepted.
		if enc, found := piEncoding(body); found && !equalFoldASCII(enc, "utf-8") {
			return false
		}
	}
	return true
}

// piEncoding finds the first `encoding=` in a PI body (substring match,
// as the decoder does) and returns its quoted value.
func piEncoding(body []byte) (val []byte, found bool) {
	for i := 0; i+9 <= len(body); i++ {
		if string(body[i:i+9]) != "encoding=" {
			continue
		}
		rest := body[i+9:]
		if len(rest) == 0 || (rest[0] != '"' && rest[0] != '\'') {
			return nil, false
		}
		q := rest[0]
		for j := 1; j < len(rest); j++ {
			if rest[j] == q {
				return rest[1:j], true
			}
		}
		return nil, false
	}
	return nil, false
}

func equalFoldASCII(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

// readName consumes an XML name restricted to the fast-path grammar
// [A-Za-z_][A-Za-z0-9_.-]*, returning nil (without advancing past valid
// prefix) if the next byte cannot start a name.
func (s *scanner) readName() []byte {
	start := s.pos
	if s.pos >= len(s.data) || !nameStart(s.data[s.pos]) {
		return nil
	}
	s.pos++
	for s.pos < len(s.data) && nameByte(s.data[s.pos]) {
		s.pos++
	}
	return s.data[start:s.pos]
}

func nameStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func nameByte(c byte) bool {
	return nameStart(c) || ('0' <= c && c <= '9') || c == '.' || c == '-'
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func (s *scanner) skipSpace() {
	for s.pos < len(s.data) && isSpace(s.data[s.pos]) {
		s.pos++
	}
}

// endTag consumes </name>, allowing trailing whitespace before '>' as
// the decoder does, and requires it to match the innermost open element
// (the decoder auto-closes on mismatch — a bail).
func (s *scanner) endTag() bool {
	s.pos += 2 // "</"
	name := s.readName()
	if name == nil {
		return false
	}
	s.skipSpace()
	if s.pos >= len(s.data) || s.data[s.pos] != '>' {
		return false
	}
	s.pos++
	if len(s.stack) == 0 || string(s.stack[len(s.stack)-1]) != string(name) {
		return false
	}
	s.stack = s.stack[:len(s.stack)-1]
	if s.skipFrom > 0 {
		if len(s.stack) < s.skipFrom {
			s.skipFrom = 0 // closed the skipped subtree's own element
		}
		return true // suppressed, like tokens consumed by dec.Skip
	}
	s.closeElement(name)
	return true
}

// closeElement applies the tolerant parser's EndElement semantics.
func (s *scanner) closeElement(name []byte) {
	switch string(name) {
	case "task":
		s.finishTask()
	case "region":
		s.inRegion = false
		s.regionName = nil
	}
}

func (s *scanner) finishTask() {
	if s.inTask {
		s.tasks++
		s.inTask = false
		s.inRegion = false
		s.regionName = nil
		s.sink.TaskEnd()
	}
}

// startTag consumes <name attr="v"...> or <name .../>, dispatching the
// tolerant parser's StartElement semantics inline.
func (s *scanner) startTag() bool {
	s.pos++ // '<'
	name := s.readName()
	if name == nil {
		return false
	}

	suppressed := s.skipFrom > 0
	kind := elOther
	skipSubtree := false
	if !suppressed {
		switch string(name) {
		case "ipm_log":
			if s.seenRoot {
				s.rep.warnf("nested ipm_log element ignored")
			} else {
				s.seenRoot = true
				kind = elRoot
				s.hdr = ScanHeader{}
			}
		case "task":
			if !s.seenRoot {
				s.rep.warnf("task element before ipm_log root, skipped")
				skipSubtree = true
			} else {
				if s.inTask {
					s.rep.warnf("task (rank %d) not closed before next task, kept partial", s.task.Rank)
					s.finishTask()
				}
				kind = elTask
				s.task = ScanTask{}
			}
		case "region":
			if !s.inTask {
				s.rep.warnf("region element outside task, skipped")
				skipSubtree = true
			} else {
				kind = elRegion
				s.regionName = nil
			}
		case "func":
			if s.inRegion {
				kind = elFunc
				s.entry = ScanEntry{}
			} else {
				// Warned but not skipped: children are still processed.
				s.rep.warnf("func element outside region, skipped")
			}
		}
	}

	// Attribute loop. Values must be quoted, free of '<' and '\r', with
	// optional whitespace around '=' — exactly the subset on which the
	// decoder returns the raw bytes unchanged.
	selfClosing := false
	for {
		s.skipSpace()
		if s.pos >= len(s.data) {
			return false
		}
		switch s.data[s.pos] {
		case '>':
			s.pos++
		case '/':
			if s.pos+1 >= len(s.data) || s.data[s.pos+1] != '>' {
				return false
			}
			s.pos += 2
			selfClosing = true
		default:
			aname := s.readName()
			if aname == nil {
				return false
			}
			s.skipSpace()
			if s.pos >= len(s.data) || s.data[s.pos] != '=' {
				return false // valueless attribute: decoder invents a value
			}
			s.pos++
			s.skipSpace()
			if s.pos >= len(s.data) {
				return false
			}
			q := s.data[s.pos]
			if q != '"' && q != '\'' {
				return false // unquoted value
			}
			s.pos++
			vstart := s.pos
			for {
				if s.pos >= len(s.data) {
					return false
				}
				c := s.data[s.pos]
				if c == q {
					break
				}
				if c == '<' || c == '\r' {
					return false
				}
				s.pos++
			}
			val := s.data[vstart:s.pos]
			s.pos++
			if kind != elOther {
				s.attr(kind, aname, val)
			}
			continue
		}
		break
	}

	if skipSubtree && !selfClosing {
		// dec.Skip() equivalent: push and suppress until it closes.
		s.stack = append(s.stack, name)
		s.skipFrom = len(s.stack)
		return true
	}
	if !selfClosing {
		s.stack = append(s.stack, name)
	}
	if !suppressed && !skipSubtree {
		s.openElement(kind)
		if selfClosing {
			s.closeElement(name)
		}
	}
	return true
}

// openElement applies the post-attribute StartElement semantics.
func (s *scanner) openElement(kind int) {
	switch kind {
	case elRoot:
		s.ntasks = s.hdr.NTasks
		s.sink.Header(&s.hdr)
	case elTask:
		s.inTask = true
		s.inRegion = false
		s.regionName = nil
		s.sink.TaskStart(&s.task)
	case elRegion:
		s.inRegion = true
	case elFunc:
		s.entry.Region = s.regionName
		s.sink.Entry(&s.entry)
	}
}

// attr applies one attribute to the current semantic element, mirroring
// the tolerant parser's attribute switches (unknown names ignored,
// repeated names overwrite, numeric corruption warns and yields zero).
func (s *scanner) attr(kind int, name, val []byte) {
	switch kind {
	case elRoot:
		switch string(name) {
		case "version":
			s.hdr.Version = val
		case "command":
			s.hdr.Command = val
		case "ntasks":
			s.hdr.NTasks = int(s.attrInt("ipm_log", name, val))
		case "nhosts":
			s.hdr.NHosts = int(s.attrInt("ipm_log", name, val))
		case "start":
			s.hdr.Start = val
		case "stop":
			s.hdr.Stop = val
		case "wallclock":
			s.hdr.Wallclock = s.attrFloat("ipm_log", name, val)
		}
	case elTask:
		switch string(name) {
		case "mpi_rank":
			s.task.Rank = int(s.attrInt("task", name, val))
		case "host":
			s.task.Host = val
		case "wallclock":
			s.task.Wallclock = secsToDuration(s.attrFloat("task", name, val))
		case "hashtable_load":
			s.task.LoadFactor = s.attrFloat("task", name, val)
		case "hashtable_overflow":
			s.task.Overflow = int(s.attrInt("task", name, val))
		case "hashtable_probes":
			s.task.Probes = uint64(s.attrInt("task", name, val))
		case "error_total":
			s.task.Errors = s.attrInt("task", name, val)
		case "submit_stall_total":
			s.task.SubmitStall = secsToDuration(s.attrFloat("task", name, val))
		case "energy_total":
			s.task.Energy = joulesToEnergy(s.attrFloat("task", name, val))
		case "device":
			s.task.Device = val
		case "monitor_errors":
			s.task.MonitorErrors = s.attrInt("task", name, val)
		case "status":
			s.task.Lost = string(val) == "lost"
		case "lost_at":
			s.task.LostAt = secsToDuration(s.attrFloat("task", name, val))
		case "lost_reason":
			s.task.LostReason = val
		}
	case elRegion:
		if string(name) == "name" {
			s.regionName = val
		}
	case elFunc:
		switch string(name) {
		case "name":
			s.entry.Name = val
		case "bytes":
			s.entry.Bytes = s.funcInt(name, val)
		case "count":
			s.entry.Count = s.funcInt(name, val)
		case "ttot":
			s.entry.Total = secsToDuration(s.funcFloat(name, val))
		case "tmin":
			s.entry.Min = secsToDuration(s.funcFloat(name, val))
		case "tmax":
			s.entry.Max = secsToDuration(s.funcFloat(name, val))
		case "error_count":
			s.entry.Errors = s.funcInt(name, val)
		case "submit_count":
			s.entry.Submits = s.funcInt(name, val)
		case "submit_stall":
			s.entry.SubmitStall = secsToDuration(s.funcFloat(name, val))
		case "energy":
			s.entry.Energy = joulesToEnergy(s.funcFloat(name, val))
		}
	}
}

// funcWhere rebuilds the tolerant parser's warning location for func
// attributes: "func" until the name attribute is seen, then
// "func <name>". Cold path only (a warning is being emitted).
func (s *scanner) funcWhere() string {
	if s.entry.Name == nil {
		return "func"
	}
	return "func " + string(s.entry.Name)
}

func (s *scanner) funcInt(name, val []byte) int64 {
	if v, ok := parseInt64(val); ok {
		return v
	}
	return s.slowInt(s.funcWhere(), name, val)
}

func (s *scanner) funcFloat(name, val []byte) float64 {
	if v, ok := parseFloat64(val); ok {
		return v
	}
	return s.slowFloat(s.funcWhere(), name, val)
}

func (s *scanner) attrInt(where string, name, val []byte) int64 {
	if v, ok := parseInt64(val); ok {
		return v
	}
	return s.slowInt(where, name, val)
}

func (s *scanner) attrFloat(where string, name, val []byte) float64 {
	if v, ok := parseFloat64(val); ok {
		return v
	}
	return s.slowFloat(where, name, val)
}

// slowInt/slowFloat are the strconv-backed slow paths, shared so the
// warning text stays byte-identical to the tolerant parser's. They
// allocate (string conversion) but only run on inputs the fast parsers
// reject: corrupt values about to warn, or float shapes outside the
// exact-representation window.
func (s *scanner) slowInt(where string, name, val []byte) int64 {
	v, err := strconv.ParseInt(string(val), 10, 64)
	if err != nil {
		s.rep.warnf("%s: bad %s attribute %q, using 0", where, string(name), string(val))
		return 0
	}
	return v
}

func (s *scanner) slowFloat(where string, name, val []byte) float64 {
	v, err := strconv.ParseFloat(string(val), 64)
	if err != nil {
		s.rep.warnf("%s: bad %s attribute %q, using 0", where, string(name), string(val))
		return 0
	}
	return v
}

// parseInt64 is an allocation-free strconv.ParseInt(s, 10, 64): it
// accepts exactly the valid base-10 int64 strings (sign, digits, range
// checked) and reports ok=false otherwise.
func parseInt64(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
	}
	if i == len(b) {
		return 0, false
	}
	limit := uint64(1)<<63 - 1
	if neg {
		limit = uint64(1) << 63
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (limit-d)/10 {
			return 0, false // overflow: let strconv produce the error
		}
		n = n*10 + d
	}
	if neg {
		return -int64(n), true // n == 1<<63 wraps to MinInt64, as intended
	}
	return int64(n), true
}

// float64pow10 are the powers of ten exactly representable in float64.
var float64pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19,
	1e20, 1e21, 1e22,
}

// parseFloat64 is the exact-representation fast path of
// strconv.ParseFloat(s, 64) (Clinger's algorithm): when the decimal
// mantissa fits in 2^53 and the power of ten is exactly representable,
// one multiply or divide is correctly rounded by IEEE semantics and
// matches strconv bit-for-bit. Everything else — long mantissas, big
// exponents, hex/inf/nan/underscore forms, syntax errors — returns
// ok=false for the strconv slow path.
func parseFloat64(b []byte) (float64, bool) {
	i := 0
	neg := false
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	var mantissa uint64
	sawDigit := false
	nd := 0     // significant digits consumed
	exp10 := 0  // decimal exponent adjustment from the fraction part
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			break
		}
		sawDigit = true
		if c == '0' && nd == 0 {
			continue // leading zeros are not significant
		}
		nd++
		if nd > 19 {
			return 0, false // mantissa may not be exact; strconv decides
		}
		mantissa = mantissa*10 + uint64(c-'0')
	}
	if i < len(b) && b[i] == '.' {
		i++
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				break
			}
			sawDigit = true
			if c == '0' && nd == 0 {
				exp10--
				continue
			}
			nd++
			if nd > 19 {
				return 0, false
			}
			mantissa = mantissa*10 + uint64(c-'0')
			exp10--
		}
	}
	if !sawDigit {
		return 0, false
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		esign := 1
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			if b[i] == '-' {
				esign = -1
			}
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		e := 0
		for ; i < len(b); i++ {
			c := b[i]
			if c < '0' || c > '9' {
				break
			}
			if e < 10000 {
				e = e*10 + int(c-'0')
			}
		}
		exp10 += esign * e
	}
	if i != len(b) {
		return 0, false // trailing garbage (or underscores, hex, inf...)
	}
	if mantissa>>53 != 0 {
		return 0, false // not exactly representable
	}
	f := float64(mantissa)
	switch {
	case exp10 == 0:
	case exp10 > 0 && exp10 <= 15+22:
		// 10^k * small-int is exact for k <= 22; one extra exact
		// scaling step is allowed while the product stays < 1e15.
		if exp10 > 22 {
			f *= float64pow10[exp10-22]
			exp10 = 22
			if f > 1e15 || f < -1e15 {
				return 0, false
			}
		}
		f *= float64pow10[exp10]
	case exp10 < 0 && exp10 >= -22:
		f /= float64pow10[-exp10]
	default:
		return 0, false
	}
	if neg {
		f = -f
	}
	return f, true
}
