package ipm

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// BannerOptions controls the profiling banner written to stdout at program
// termination.
type BannerOptions struct {
	// Full selects the parallel-job banner with the total/avg/min/max
	// summary block (paper Fig. 11). The default compact form is the
	// single-process banner of Figs. 4-6.
	Full bool
	// MaxRows truncates the per-function table (0 = all rows).
	MaxRows int
	// MinTime drops rows whose total time is below the threshold.
	MinTime time.Duration
	// PerKernel includes the per-kernel pseudo entries
	// (@CUDA_EXEC_STRMxx:name). By default the banner shows only the
	// per-stream summary, as in the paper; the per-kernel breakdown
	// lives in the XML log.
	PerKernel bool
}

const bannerWidth = 70

func sec(d time.Duration) float64 { return d.Seconds() }

func hrule(w io.Writer, lead string) {
	line := lead
	for len(line) < bannerWidth {
		line += "#"
	}
	fmt.Fprintln(w, line)
}

// WriteBanner writes the IPM profiling banner for the job.
func WriteBanner(w io.Writer, jp *JobProfile, opts BannerOptions) error {
	bw := &errWriter{w: w}
	hrule(bw, "##IPMv2.0")
	fmt.Fprintln(bw, "#")
	fmt.Fprintf(bw, "# command   : %s\n", jp.Command)
	if opts.Full {
		writeFullHeader(bw, jp)
	} else {
		host := ""
		if len(jp.Ranks) > 0 {
			host = jp.Ranks[0].Host
		}
		fmt.Fprintf(bw, "# host      : %s\n", host)
		fmt.Fprintf(bw, "# wallclock : %.2f\n", sec(jp.Wallclock()))
	}
	fmt.Fprintln(bw, "#")
	writeFuncTable(bw, jp, opts)
	if spilled, load := jp.OverflowedSigs(); spilled > 0 {
		fmt.Fprintln(bw, "#")
		fmt.Fprintf(bw, "# WARNING   : %d signature(s) spilled the fixed hash table (load factor %.2f);\n", spilled, load)
		fmt.Fprintf(bw, "#             statistics above were collected at degraded fidelity\n")
	}
	writeFaultWarnings(bw, jp)
	fmt.Fprintln(bw, "#")
	hrule(bw, "")
	return bw.err
}

// writeFaultWarnings reports the fault-model diagnostics: lost ranks,
// missing snapshots, per-call-site errors and recovered monitor panics.
// Healthy runs emit nothing, keeping the banner byte-identical to the
// fault-free tool.
func writeFaultWarnings(bw io.Writer, jp *JobProfile) {
	lost := jp.LostRanks()
	if len(lost) > 0 {
		fmt.Fprintln(bw, "#")
		for _, r := range lost {
			fmt.Fprintf(bw, "# WARNING   : rank %d (%s) lost at %.2fs (%s)\n",
				r.Rank, r.Host, sec(r.LostAt), r.LostReason)
		}
	}
	if exp := jp.Expected(); exp > jp.NTasks() {
		fmt.Fprintln(bw, "#")
		fmt.Fprintf(bw, "# WARNING   : log declares %d task(s) but only %d were recovered\n",
			exp, jp.NTasks())
	}
	if len(lost) > 0 || jp.Expected() > jp.NTasks() {
		fmt.Fprintf(bw, "#             profile assembled from %d of %d rank(s) — degraded fidelity\n",
			jp.NTasks()-len(lost), jp.Expected())
	}
	if n := jp.TotalErrors(); n > 0 {
		fmt.Fprintln(bw, "#")
		fmt.Fprintf(bw, "# WARNING   : %d monitored call(s) returned an error status\n", n)
	}
	if n := jp.MonitorErrors(); n > 0 {
		fmt.Fprintln(bw, "#")
		fmt.Fprintf(bw, "# WARNING   : %d monitor-internal error(s) recovered; monitoring data may be incomplete\n", n)
	}
}

func writeFullHeader(bw io.Writer, jp *JobProfile) {
	host := ""
	if len(jp.Ranks) > 0 {
		host = jp.Ranks[0].Host
	}
	fmt.Fprintf(bw, "# start     : %-24s host      : %s\n", jp.Start, host)
	fmt.Fprintf(bw, "# stop      : %-24s wallclock : %.2f\n", jp.Stop, sec(jp.Wallclock()))
	fmt.Fprintf(bw, "# mpi_tasks : %-24s %%comm     : %.2f\n",
		fmt.Sprintf("%d on %d nodes", jp.NTasks(), jp.Nodes), jp.CommPercent())
	// The gpu line names the active device backend when the profile
	// recorded one; profiles from before device attribution keep the
	// bare count, so their banners stay byte-identical.
	gpuLabel := fmt.Sprintf("%d devices", jp.Nodes)
	if name := jp.DeviceName(); name != "" {
		gpuLabel = fmt.Sprintf("%d x %s", jp.Nodes, name)
	}
	fmt.Fprintf(bw, "# gpu       : %-24s %%gpu      : %.2f\n", gpuLabel, jp.GPUPercent())
	if e := jp.TotalEnergyJoules(); e > 0 {
		fmt.Fprintf(bw, "# energy    : %.2f J\n", e)
	}
	fmt.Fprintln(bw, "#")

	fmt.Fprintf(bw, "# %-10s: %12s %12s %12s %12s\n", "", "[total]", "<avg>", "min", "max")
	ws := jp.WallclockSpread()
	fmt.Fprintf(bw, "# %-10s: %12.2f %12.2f %12.2f %12.2f\n", "wallclock",
		sec(ws.Total), sec(ws.Avg), sec(ws.Min), sec(ws.Max))
	for _, d := range []Domain{DomainMPI, DomainCUDA, DomainCUBLAS, DomainCUFFT} {
		s := jp.DomainSpread(d)
		if s.Total == 0 {
			continue
		}
		fmt.Fprintf(bw, "# %-10s: %12.2f %12.2f %12.2f %12.2f\n", d.String(),
			sec(s.Total), sec(s.Avg), sec(s.Min), sec(s.Max))
	}

	fmt.Fprintln(bw, "#")
	fmt.Fprintf(bw, "# %-10s:\n", "%wall")
	for _, d := range []Domain{DomainMPI, DomainCUDA, DomainCUBLAS, DomainCUFFT} {
		s := jp.DomainSpread(d)
		if s.Total == 0 {
			continue
		}
		pct := func(x time.Duration, wall time.Duration) float64 {
			if wall == 0 {
				return 0
			}
			return 100 * float64(x) / float64(wall)
		}
		fmt.Fprintf(bw, "# %-10s: %12s %12.2f %12.2f %12.2f\n", d.String(), "",
			pct(s.Avg, ws.Avg), pct(s.Min, ws.Max), pct(s.Max, ws.Min))
	}

	fmt.Fprintln(bw, "#")
	fmt.Fprintf(bw, "# %-10s:\n", "#calls")
	for _, d := range []Domain{DomainMPI, DomainCUDA, DomainCUBLAS, DomainCUFFT} {
		n := jp.CallCounts(d)
		if n == 0 {
			continue
		}
		fmt.Fprintf(bw, "# %-10s: %12d %12d\n", d.String(), n, n/int64(jp.NTasks()))
	}
}

func writeFuncTable(bw io.Writer, jp *JobProfile, opts BannerOptions) {
	fmt.Fprintf(bw, "# %-28s %10s %11s %9s\n", "", "[time]", "[count]", "<%wall>")
	wall := jp.WallclockSpread().Total
	rows := 0
	for _, ft := range jp.FuncTotals() {
		if opts.MaxRows > 0 && rows >= opts.MaxRows {
			break
		}
		if ft.Stats.Total < opts.MinTime {
			continue
		}
		if !opts.PerKernel && strings.Contains(ft.Name, ":") &&
			(strings.HasPrefix(ft.Name, "@CUDA_EXEC_STRM") || strings.HasPrefix(ft.Name, "@CL_EXEC_QUEUE")) {
			continue
		}
		pct := 0.0
		if wall > 0 {
			pct = 100 * float64(ft.Stats.Total) / float64(wall)
		}
		fmt.Fprintf(bw, "# %-28s %10.2f %11d %9.2f\n", ft.Name, sec(ft.Stats.Total), ft.Stats.Count, pct)
		rows++
	}
}

// errWriter latches the first write error, so the banner code can stay
// free of per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}
