package ipm

import (
	"strconv"
	"strings"

	"ipmgo/internal/telemetry"
)

// This file builds the live Prometheus sample set of one monitor: the
// per-signature call statistics plus the monitor's self-metrics (hash
// table load factor, overflow, probe count). It is called from inside
// the simulation's event loop (cluster republishes periodically in
// virtual time), so reading the hash table here never races with the
// wrappers updating it.

// Metric family names served on /metrics.
const (
	MetricCalls      = "ipm_calls_total"
	MetricCallTime   = "ipm_call_seconds_total"
	MetricHostIdle   = "ipm_host_idle_seconds"
	MetricGPUExec    = "ipm_gpu_exec_seconds"
	MetricWallclock  = "ipm_wallclock_seconds"
	MetricLoadFactor = "ipm_table_load_factor"
	MetricOverflow   = "ipm_table_overflowed_sigs"
	MetricProbes     = "ipm_table_probes_total"

	// Fault-model metrics.
	MetricCallErrors      = "ipm_call_errors_total"
	MetricErrors          = "ipm_errors_total"
	MetricMonitorInternal = "ipm_monitor_internal_errors_total"
)

// MetricsSamples renders the monitor's current state as one Prometheus
// sample set: call counts and cumulative durations by signature, the
// derived GPU-execution and host-blocking totals, and the monitor's
// self-metrics. Deterministic for a fixed table state (entries are
// emitted in the table's sorted report order).
func MetricsSamples(m *Monitor) []telemetry.Sample {
	rank := strconv.Itoa(m.rank)
	rankLabel := []telemetry.Label{{Key: "rank", Value: rank}}
	out := []telemetry.Sample{
		{
			Name: MetricWallclock, Help: "Bracketed execution time per rank.",
			Type: "gauge", Labels: rankLabel, Value: m.Wallclock().Seconds(),
		},
		{
			Name: MetricLoadFactor, Help: "Fill ratio of the fixed hash table region.",
			Type: "gauge", Labels: rankLabel, Value: m.table.LoadFactor(),
		},
		{
			Name: MetricOverflow, Help: "Signatures spilled out of the fixed hash table region.",
			Type: "gauge", Labels: rankLabel, Value: float64(m.table.Overflowed()),
		},
		{
			Name: MetricProbes, Help: "Accumulated hash table probe steps (reads and writes).",
			Type: "counter", Labels: rankLabel, Value: float64(m.table.Probes()),
		},
	}

	var hostIdle, gpuExec float64
	var errTotal int64
	for _, e := range m.table.Entries() {
		labels := []telemetry.Label{
			{Key: "rank", Value: rank},
			{Key: "name", Value: e.Sig.Name},
			{Key: "region", Value: regionLabel(e.Sig.Region)},
			{Key: "bytes", Value: strconv.FormatInt(e.Sig.Bytes, 10)},
		}
		out = append(out,
			telemetry.Sample{
				Name: MetricCalls, Help: "Monitored events by signature.",
				Type: "counter", Labels: labels, Value: float64(e.Stats.Count),
			},
			telemetry.Sample{
				Name: MetricCallTime, Help: "Cumulative time by signature.",
				Type: "counter", Labels: labels, Value: e.Stats.Total.Seconds(),
			},
		)
		if e.Stats.Errors > 0 {
			out = append(out, telemetry.Sample{
				Name: MetricCallErrors, Help: "Monitored events that returned an error status, by signature.",
				Type: "counter", Labels: labels, Value: float64(e.Stats.Errors),
			})
			errTotal += e.Stats.Errors
		}
		switch {
		case e.Sig.Name == HostIdleName:
			hostIdle += e.Stats.Total.Seconds()
		case strings.HasPrefix(e.Sig.Name, "@CUDA_EXEC_STRM") && !strings.Contains(e.Sig.Name, ":"):
			gpuExec += e.Stats.Total.Seconds()
		}
	}
	out = append(out,
		telemetry.Sample{
			Name: MetricHostIdle, Help: "Implicit host blocking (@CUDA_HOST_IDLE) per rank.",
			Type: "gauge", Labels: rankLabel, Value: hostIdle,
		},
		telemetry.Sample{
			Name: MetricGPUExec, Help: "Event-timed GPU kernel execution (@CUDA_EXEC_STRMxx) per rank.",
			Type: "gauge", Labels: rankLabel, Value: gpuExec,
		},
		telemetry.Sample{
			Name: MetricErrors, Help: "Monitored call errors per rank (all signatures).",
			Type: "counter", Labels: rankLabel, Value: float64(errTotal),
		},
		telemetry.Sample{
			Name: MetricMonitorInternal, Help: "Panics recovered inside the monitor itself.",
			Type: "counter", Labels: rankLabel, Value: float64(m.internalErrs),
		},
	)
	return out
}
