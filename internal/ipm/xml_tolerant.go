package ipm

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
)

// ParseReport describes what the tolerant parser recovered from a
// damaged log and what it had to guess at.
type ParseReport struct {
	Warnings       []string
	Truncated      bool // input ended mid-document
	TasksRecovered int
	TasksDeclared  int // ntasks attribute, 0 if never seen
}

func (pr *ParseReport) warnf(format string, args ...any) {
	pr.Warnings = append(pr.Warnings, fmt.Sprintf(format, args...))
}

// ParseXMLTolerant reads an IPM XML log, tolerating truncation and
// attribute corruption: a crashed or killed job writes exactly this kind
// of log, and a post-mortem tool that refuses to read it is useless at
// the one moment it matters. Instead of the strict decoder it walks the
// token stream, keeping every complete task seen so far, salvaging the
// in-progress task at a mid-document EOF, and turning malformed numeric
// attributes into warnings plus zero values.
//
// The error return is non-nil only when nothing at all is recoverable
// (no ipm_log root element). Every concession made is listed in the
// report, and the profile's ExpectedRanks is set from the ntasks
// attribute so downstream consumers see the run as partial rather than
// small.
func ParseXMLTolerant(r io.Reader) (*JobProfile, *ParseReport, error) {
	rep := &ParseReport{}
	dec := xml.NewDecoder(r)
	// Non-strict: unclosed elements get invented end tags instead of
	// failing the whole document — a rank that died before writing its
	// closing tags is the expected case here, not an anomaly.
	dec.Strict = false

	var doc XMLLog
	seenRoot := false
	var cur *XMLTask // task being assembled, nil outside <task>
	var curRegion *XMLRegion

	finishTask := func() {
		if cur != nil {
			doc.Tasks = append(doc.Tasks, *cur)
			cur = nil
			curRegion = nil
		}
	}

	attrInt := func(where string, a xml.Attr) int64 {
		v, err := strconv.ParseInt(a.Value, 10, 64)
		if err != nil {
			rep.warnf("%s: bad %s attribute %q, using 0", where, a.Name.Local, a.Value)
			return 0
		}
		return v
	}
	attrFloat := func(where string, a xml.Attr) float64 {
		v, err := strconv.ParseFloat(a.Value, 64)
		if err != nil {
			rep.warnf("%s: bad %s attribute %q, using 0", where, a.Name.Local, a.Value)
			return 0
		}
		return v
	}

loop:
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A syntax error (truncation mid-tag, stray bytes) ends the
			// parse; everything assembled so far is kept.
			rep.Truncated = true
			rep.warnf("log truncated or corrupt: %v", err)
			break
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			if ee, ok := tok.(xml.EndElement); ok {
				switch ee.Name.Local {
				case "task":
					finishTask()
				case "region":
					curRegion = nil
				}
			}
			continue
		}
		switch se.Name.Local {
		case "ipm_log":
			if seenRoot {
				rep.warnf("nested ipm_log element ignored")
				continue
			}
			seenRoot = true
			for _, a := range se.Attr {
				switch a.Name.Local {
				case "version":
					doc.Version = a.Value
				case "command":
					doc.Command = a.Value
				case "ntasks":
					doc.NTasks = int(attrInt("ipm_log", a))
				case "nhosts":
					doc.NHosts = int(attrInt("ipm_log", a))
				case "start":
					doc.Start = a.Value
				case "stop":
					doc.Stop = a.Value
				case "wallclock":
					doc.Wallclock = attrFloat("ipm_log", a)
				}
			}
		case "task":
			if !seenRoot {
				rep.warnf("task element before ipm_log root, skipped")
				if err := dec.Skip(); err != nil {
					rep.Truncated = true
					break loop
				}
				continue
			}
			if cur != nil {
				// Interleaved/unclosed task: keep what the previous one had.
				rep.warnf("task (rank %d) not closed before next task, kept partial", cur.Rank)
				finishTask()
			}
			cur = &XMLTask{}
			where := "task"
			for _, a := range se.Attr {
				switch a.Name.Local {
				case "mpi_rank":
					cur.Rank = int(attrInt(where, a))
				case "host":
					cur.Host = a.Value
				case "wallclock":
					cur.Wallclock = attrFloat(where, a)
				case "hashtable_load":
					cur.HashLoad = attrFloat(where, a)
				case "hashtable_overflow":
					cur.HashOverflow = int(attrInt(where, a))
				case "hashtable_probes":
					cur.HashProbes = uint64(attrInt(where, a))
				case "error_total":
					cur.Errors = attrInt(where, a)
				case "submit_stall_total":
					cur.SubmitStall = attrFloat(where, a)
				case "energy_total":
					cur.Energy = attrFloat(where, a)
				case "device":
					cur.Device = a.Value
				case "monitor_errors":
					cur.MonitorErrs = attrInt(where, a)
				case "status":
					cur.Status = a.Value
				case "lost_at":
					cur.LostAt = attrFloat(where, a)
				case "lost_reason":
					cur.LostReason = a.Value
				}
			}
		case "region":
			if cur == nil {
				rep.warnf("region element outside task, skipped")
				if err := dec.Skip(); err != nil {
					rep.Truncated = true
					break loop
				}
				continue
			}
			cur.Regions = append(cur.Regions, XMLRegion{})
			curRegion = &cur.Regions[len(cur.Regions)-1]
			for _, a := range se.Attr {
				if a.Name.Local == "name" {
					curRegion.Name = a.Value
				}
			}
		case "func":
			if curRegion == nil {
				rep.warnf("func element outside region, skipped")
				continue
			}
			var f XMLFunc
			where := "func"
			for _, a := range se.Attr {
				switch a.Name.Local {
				case "name":
					f.Name = a.Value
					where = "func " + a.Value
				case "bytes":
					f.Bytes = attrInt(where, a)
				case "count":
					f.Count = attrInt(where, a)
				case "ttot":
					f.TTot = attrFloat(where, a)
				case "tmin":
					f.TMin = attrFloat(where, a)
				case "tmax":
					f.TMax = attrFloat(where, a)
				case "error_count":
					f.Errors = attrInt(where, a)
				case "submit_count":
					f.SubmitN = attrInt(where, a)
				case "submit_stall":
					f.SubmitStall = attrFloat(where, a)
				case "energy":
					f.Energy = attrFloat(where, a)
				}
			}
			curRegion.Funcs = append(curRegion.Funcs, f)
		}
	}
	if !seenRoot {
		return nil, rep, fmt.Errorf("ipm: no ipm_log root element found")
	}
	if cur != nil {
		rep.Truncated = true
		rep.warnf("log ends inside task (rank %d), kept partial", cur.Rank)
		finishTask()
	}
	rep.TasksRecovered = len(doc.Tasks)
	rep.TasksDeclared = doc.NTasks
	if doc.NTasks > len(doc.Tasks) {
		rep.warnf("log declares %d task(s) but only %d recovered", doc.NTasks, len(doc.Tasks))
	}
	return FromXML(&doc), rep, nil
}
