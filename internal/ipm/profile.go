package ipm

import (
	"sort"
	"strings"
	"time"
)

// RankProfile is the immutable snapshot of one rank's monitor after the
// run, the unit of cross-rank aggregation.
type RankProfile struct {
	Rank      int
	Host      string
	Wallclock time.Duration
	Entries   []Entry
	MemGB     float64 // resident memory high-water mark, if modelled

	// Overflow is the number of signatures that spilled out of the fixed
	// hash table region, LoadFactor the fill ratio of that region, and
	// Probes the accumulated probe steps — the monitoring-fidelity
	// diagnostics reported by the banner warning, the XML log, and the
	// /metrics endpoint.
	Overflow   int
	LoadFactor float64
	Probes     uint64

	// Fault-model diagnostics: Errors sums per-signature error counts,
	// MonitorErrors counts panics recovered inside the monitor itself, and
	// Lost/LostAt/LostReason describe a rank that died mid-run (its entries
	// are then a truncated, degraded-fidelity view of its execution).
	Errors        int64
	MonitorErrors int64
	Lost          bool
	LostAt        time.Duration
	LostReason    string

	// SubmitStall sums per-signature command-queue submit stall — time
	// commands spent queued between enqueue and driver flush. Zero when
	// the run did not use command queues.
	SubmitStall time.Duration

	// Device names the GPU backend the rank ran against ("Tesla C2050");
	// empty in profiles recorded before device attribution existed.
	Device string
	// Energy sums per-signature attributed device energy in integer
	// nanojoules. Zero when the active device had no power model.
	Energy int64
}

// EnergyJoules renders the rank's attributed energy in joules.
func (rp RankProfile) EnergyJoules() float64 { return float64(rp.Energy) / 1e9 }

// Snapshot freezes a monitor into a RankProfile.
func Snapshot(m *Monitor) RankProfile {
	rp := RankProfile{
		Rank:          m.rank,
		Host:          m.host,
		Wallclock:     m.Wallclock(),
		Entries:       m.table.Entries(),
		Overflow:      m.table.Overflowed(),
		LoadFactor:    m.table.LoadFactor(),
		Probes:        m.table.Probes(),
		MonitorErrors: m.internalErrs,
	}
	for _, e := range rp.Entries {
		rp.Errors += e.Stats.Errors
		rp.SubmitStall += e.Stats.SubmitStall
		rp.Energy += e.Stats.Energy
	}
	return rp
}

// DomainTime sums the rank's host time in a domain. Pseudo-entries are
// excluded from host-time domains and reported via PseudoTime.
func (rp RankProfile) DomainTime(d Domain) time.Duration {
	var t time.Duration
	for _, e := range rp.Entries {
		if Classify(e.Sig.Name) == d {
			t += e.Stats.Total
		}
	}
	return t
}

// FuncTime sums the rank's time in one function name across byte sizes
// and regions.
func (rp RankProfile) FuncTime(name string) time.Duration {
	var t time.Duration
	for _, e := range rp.Entries {
		if e.Sig.Name == name {
			t += e.Stats.Total
		}
	}
	return t
}

// JobProfile aggregates the per-rank profiles of one run — what rank 0
// assembles at finalisation in the real tool.
type JobProfile struct {
	Command string
	Start   string // human-readable timestamps for the banner header
	Stop    string
	Nodes   int
	Ranks   []RankProfile

	// ExpectedRanks is the job size the run was launched with. When it
	// exceeds len(Ranks) the profile is partial: some ranks produced no
	// snapshot at all (e.g. a truncated log). Zero means "same as
	// len(Ranks)".
	ExpectedRanks int
}

// NewJobProfile assembles a job profile from rank snapshots, sorted by
// rank.
func NewJobProfile(command string, nodes int, ranks []RankProfile) *JobProfile {
	sorted := append([]RankProfile(nil), ranks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Rank < sorted[j].Rank })
	return &JobProfile{Command: command, Nodes: nodes, Ranks: sorted}
}

// NTasks returns the number of ranks.
func (jp *JobProfile) NTasks() int { return len(jp.Ranks) }

// Wallclock returns the job wallclock: the maximum over ranks.
func (jp *JobProfile) Wallclock() time.Duration {
	var w time.Duration
	for _, r := range jp.Ranks {
		if r.Wallclock > w {
			w = r.Wallclock
		}
	}
	return w
}

// Spread holds a total/avg/min/max summary over ranks.
type Spread struct {
	Total time.Duration
	Avg   time.Duration
	Min   time.Duration
	Max   time.Duration
}

func spreadOf(vals []time.Duration) Spread {
	if len(vals) == 0 {
		return Spread{}
	}
	s := Spread{Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		s.Total += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Avg = s.Total / time.Duration(len(vals))
	return s
}

// WallclockSpread summarises wallclock across ranks.
func (jp *JobProfile) WallclockSpread() Spread {
	vals := make([]time.Duration, len(jp.Ranks))
	for i, r := range jp.Ranks {
		vals[i] = r.Wallclock
	}
	return spreadOf(vals)
}

// DomainSpread summarises one domain's host time across ranks.
func (jp *JobProfile) DomainSpread(d Domain) Spread {
	vals := make([]time.Duration, len(jp.Ranks))
	for i, r := range jp.Ranks {
		vals[i] = r.DomainTime(d)
	}
	return spreadOf(vals)
}

// FuncSpread summarises one function's time across ranks.
func (jp *JobProfile) FuncSpread(name string) Spread {
	vals := make([]time.Duration, len(jp.Ranks))
	for i, r := range jp.Ranks {
		vals[i] = r.FuncTime(name)
	}
	return spreadOf(vals)
}

// FuncTotal is a per-function aggregate over all ranks, byte sizes and
// regions, the unit of the banner's function table.
type FuncTotal struct {
	Name  string
	Stats Stats
}

// FuncTotals merges entries by function name across ranks, sorted by
// descending total time.
func (jp *JobProfile) FuncTotals() []FuncTotal {
	byName := make(map[string]*Stats)
	for _, r := range jp.Ranks {
		for _, e := range r.Entries {
			s, ok := byName[e.Sig.Name]
			if !ok {
				s = &Stats{}
				byName[e.Sig.Name] = s
			}
			s.Merge(e.Stats)
		}
	}
	out := make([]FuncTotal, 0, len(byName))
	for n, s := range byName {
		out = append(out, FuncTotal{Name: n, Stats: *s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stats.Total != out[j].Stats.Total {
			return out[i].Stats.Total > out[j].Stats.Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CallCounts returns the total number of calls per domain across ranks.
func (jp *JobProfile) CallCounts(d Domain) int64 {
	var n int64
	for _, r := range jp.Ranks {
		for _, e := range r.Entries {
			if Classify(e.Sig.Name) == d {
				n += e.Stats.Count
			}
		}
	}
	return n
}

// CommPercent returns MPI host time as a percentage of total wallclock
// (IPM's headline %comm metric).
func (jp *JobProfile) CommPercent() float64 {
	wall := jp.WallclockSpread().Total
	if wall == 0 {
		return 0
	}
	return 100 * float64(jp.DomainSpread(DomainMPI).Total) / float64(wall)
}

// GPUPercent returns on-GPU kernel execution time (@CUDA_EXEC_* pseudo
// entries) as a percentage of total wallclock — the paper's GPU
// utilisation metric (35.96% for Amber).
func (jp *JobProfile) GPUPercent() float64 {
	wall := jp.WallclockSpread().Total
	if wall == 0 {
		return 0
	}
	var gpu time.Duration
	for _, r := range jp.Ranks {
		for _, e := range r.Entries {
			if strings.HasPrefix(e.Sig.Name, "@CUDA_EXEC_STRM") && !strings.Contains(e.Sig.Name, ":") {
				gpu += e.Stats.Total
			}
		}
	}
	return 100 * float64(gpu) / float64(wall)
}

// HostIdlePercent returns @CUDA_HOST_IDLE as a percentage of wallclock.
func (jp *JobProfile) HostIdlePercent() float64 {
	wall := jp.WallclockSpread().Total
	if wall == 0 {
		return 0
	}
	return 100 * float64(jp.FuncSpread(HostIdleName).Total) / float64(wall)
}

// OverflowedSigs returns the total number of signatures that spilled out
// of the fixed hash table region across ranks, and the worst per-rank
// load factor. Non-zero overflow means the banner's statistics were
// collected at degraded hash-table fidelity (longer probe chains plus a
// heap-allocated spill map).
func (jp *JobProfile) OverflowedSigs() (spilled int, worstLoad float64) {
	for _, r := range jp.Ranks {
		spilled += r.Overflow
		if r.LoadFactor > worstLoad {
			worstLoad = r.LoadFactor
		}
	}
	return spilled, worstLoad
}

// Expected returns the launched job size: ExpectedRanks when recorded,
// else the number of rank snapshots present.
func (jp *JobProfile) Expected() int {
	if jp.ExpectedRanks > len(jp.Ranks) {
		return jp.ExpectedRanks
	}
	return len(jp.Ranks)
}

// LostRanks returns the rank snapshots marked lost, in rank order.
func (jp *JobProfile) LostRanks() []RankProfile {
	var out []RankProfile
	for _, r := range jp.Ranks {
		if r.Lost {
			out = append(out, r)
		}
	}
	return out
}

// TotalErrors sums per-call-site error counts across ranks.
func (jp *JobProfile) TotalErrors() int64 {
	var n int64
	for _, r := range jp.Ranks {
		n += r.Errors
	}
	return n
}

// TotalSubmitStall sums command-queue submit stall across ranks.
func (jp *JobProfile) TotalSubmitStall() time.Duration {
	var t time.Duration
	for _, r := range jp.Ranks {
		t += r.SubmitStall
	}
	return t
}

// TotalEnergy sums attributed device energy across ranks, in integer
// nanojoules.
func (jp *JobProfile) TotalEnergy() int64 {
	var n int64
	for _, r := range jp.Ranks {
		n += r.Energy
	}
	return n
}

// TotalEnergyJoules renders the job's attributed energy in joules.
func (jp *JobProfile) TotalEnergyJoules() float64 {
	return float64(jp.TotalEnergy()) / 1e9
}

// DeviceName returns the GPU backend the job ran against: the first
// non-empty per-rank device string ("" for pre-attribution profiles).
func (jp *JobProfile) DeviceName() string {
	for _, r := range jp.Ranks {
		if r.Device != "" {
			return r.Device
		}
	}
	return ""
}

// MonitorErrors sums monitoring-internal recovered panics across ranks.
func (jp *JobProfile) MonitorErrors() int64 {
	var n int64
	for _, r := range jp.Ranks {
		n += r.MonitorErrors
	}
	return n
}

// Degraded reports whether the profile carries any degraded-fidelity
// marker: lost ranks, missing snapshots, or monitor-internal errors.
func (jp *JobProfile) Degraded() bool {
	return len(jp.LostRanks()) > 0 || jp.Expected() > len(jp.Ranks) || jp.MonitorErrors() > 0
}

// Imbalance returns max/avg for one function across ranks — the paper's
// load-balance measure (ReduceForces imbalance "up to a factor of 55%").
func (jp *JobProfile) Imbalance(name string) float64 {
	s := jp.FuncSpread(name)
	if s.Avg == 0 {
		return 0
	}
	return float64(s.Max) / float64(s.Avg)
}
