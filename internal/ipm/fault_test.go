package ipm

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/telemetry"
)

func TestObserveErrRefCountsErrors(t *testing.T) {
	m, _ := newTestMonitor()
	m.Start()
	ref := NewSigRef("cudaMemcpy(H2D)")
	m.ObserveRef(ref, 4096, time.Millisecond)
	m.ObserveErrRef(ref, 4096, 2*time.Millisecond)
	m.ObserveErrRef(ref, 4096, 3*time.Millisecond)
	s, ok := m.Table().Lookup(Sig{Name: "cudaMemcpy(H2D)", Bytes: 4096})
	if !ok {
		t.Fatal("entry missing")
	}
	if s.Count != 3 || s.Errors != 2 {
		t.Fatalf("stats = %+v, want Count=3 Errors=2", s)
	}
	if s.Total != 6*time.Millisecond {
		t.Fatalf("failed calls not timed: Total = %v", s.Total)
	}
}

func TestObserveErrRefInstrumented(t *testing.T) {
	m, _ := newTestMonitor()
	m.Start()
	// Attaching telemetry flips the monitor to the instrumented
	// observation route; error folding must survive the detour.
	m.AttachTelemetry(telemetry.NewRecorder(16))
	ref := NewSigRef("MPI_Allreduce")
	m.ObserveErrRef(ref, 8, time.Millisecond)
	s, ok := m.Table().Lookup(Sig{Name: "MPI_Allreduce", Bytes: 8})
	if !ok || s.Count != 1 || s.Errors != 1 {
		t.Fatalf("instrumented error path: %+v (ok=%v)", s, ok)
	}
}

func TestGuardRecoversAndCounts(t *testing.T) {
	m, _ := newTestMonitor()
	if m.InternalErrors() != 0 {
		t.Fatal("fresh monitor has internal errors")
	}
	m.Guard("flush", func() { panic("slot table corrupt") })
	m.Guard("metrics", func() {}) // healthy call: no count
	if m.InternalErrors() != 1 {
		t.Fatalf("InternalErrors = %d, want 1", m.InternalErrors())
	}
	if got := m.LastInternalError(); !strings.Contains(got, "flush") || !strings.Contains(got, "slot table corrupt") {
		t.Fatalf("LastInternalError = %q", got)
	}
}

// killLike mimics des.Killed without importing des: Guard must re-panic
// anything exposing Unrecoverable() == true, because a kill is control
// flow, not an internal monitoring error.
type killLike struct{}

func (killLike) Error() string       { return "killed" }
func (killLike) Unrecoverable() bool { return true }

func TestGuardRepanicsUnrecoverable(t *testing.T) {
	m, _ := newTestMonitor()
	defer func() {
		r := recover()
		if _, ok := r.(killLike); !ok {
			t.Fatalf("Guard swallowed the kill: recovered %v", r)
		}
		if m.InternalErrors() != 0 {
			t.Fatalf("kill counted as internal error: %d", m.InternalErrors())
		}
	}()
	m.Guard("app", func() { panic(killLike{}) })
	t.Fatal("unreachable: Guard must re-panic")
}

func TestSnapshotCarriesErrorCounters(t *testing.T) {
	m, fc := newTestMonitor()
	m.Start()
	ref := NewSigRef("cudaLaunch")
	m.ObserveErrRef(ref, 0, time.Millisecond)
	m.Guard("flush", func() { panic("boom") })
	fc.now = time.Second
	m.Stop()
	rp := Snapshot(m)
	if rp.Errors != 1 || rp.MonitorErrors != 1 {
		t.Fatalf("snapshot errors=%d monitorErrors=%d", rp.Errors, rp.MonitorErrors)
	}
}

func TestBannerFaultWarnings(t *testing.T) {
	m, fc := newTestMonitor()
	m.Start()
	m.ObserveErrRef(NewSigRef("cudaMemcpy(H2D)"), 64, time.Millisecond)
	fc.now = time.Second
	m.Stop()
	rp := Snapshot(m)
	rp.Lost = true
	rp.LostAt = 700 * time.Millisecond
	rp.LostReason = "fault plan: rank death"
	healthy := Snapshot(m)
	healthy.Rank = 1
	healthy.Lost = false
	healthy.Errors = 0
	for i := range healthy.Entries {
		healthy.Entries[i].Stats.Errors = 0
	}
	jp := NewJobProfile("./faultdemo", 2, []RankProfile{rp, healthy})

	var b strings.Builder
	if err := WriteBanner(&b, jp, BannerOptions{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"rank 0 (dirac15) lost at 0.70s (fault plan: rank death)",
		"degraded fidelity",
		"returned an error status",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("banner missing %q:\n%s", want, out)
		}
	}

	// A healthy profile emits no fault block at all.
	clean := NewJobProfile("./ok", 1, []RankProfile{healthy})
	b.Reset()
	if err := WriteBanner(&b, clean, BannerOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "WARNING") {
		t.Errorf("healthy banner contains warnings:\n%s", b.String())
	}
}
