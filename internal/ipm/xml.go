package ipm

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"time"
)

// The XML profiling log is IPM's detailed output: the full hash table of
// every task, organised by region. ipm_parse (cmd/ipmparse) consumes it to
// regenerate the banner, produce HTML, or convert to the CUBE format.

// XMLLog is the document root.
type XMLLog struct {
	XMLName   xml.Name  `xml:"ipm_log"`
	Version   string    `xml:"version,attr"`
	Command   string    `xml:"command,attr"`
	NTasks    int       `xml:"ntasks,attr"`
	NHosts    int       `xml:"nhosts,attr"`
	Start     string    `xml:"start,attr,omitempty"`
	Stop      string    `xml:"stop,attr,omitempty"`
	Wallclock float64   `xml:"wallclock,attr"`
	Tasks     []XMLTask `xml:"task"`
}

// NExpected returns the declared job size, falling back to the number of
// task elements actually present (older or hand-built logs).
func (doc *XMLLog) NExpected() int {
	if doc.NTasks > len(doc.Tasks) {
		return doc.NTasks
	}
	return len(doc.Tasks)
}

// XMLTask is one rank's profile. The hashtable_* attributes surface the
// monitor's own fidelity (fill ratio, spilled signatures, probe steps),
// so ipm_parse can report post-mortem whether the statistics were
// collected at degraded hash-table fidelity; they are omitted when zero,
// keeping older logs parseable.
type XMLTask struct {
	Rank         int         `xml:"mpi_rank,attr"`
	Host         string      `xml:"host,attr"`
	Wallclock    float64     `xml:"wallclock,attr"`
	HashLoad     float64     `xml:"hashtable_load,attr,omitempty"`
	HashOverflow int         `xml:"hashtable_overflow,attr,omitempty"`
	HashProbes   uint64      `xml:"hashtable_probes,attr,omitempty"`
	Errors       int64       `xml:"error_total,attr,omitempty"`
	SubmitStall  float64     `xml:"submit_stall_total,attr,omitempty"`
	Energy       float64     `xml:"energy_total,attr,omitempty"` // joules
	Device       string      `xml:"device,attr,omitempty"`
	MonitorErrs  int64       `xml:"monitor_errors,attr,omitempty"`
	Status       string      `xml:"status,attr,omitempty"` // "lost" for a dead rank
	LostAt       float64     `xml:"lost_at,attr,omitempty"`
	LostReason   string      `xml:"lost_reason,attr,omitempty"`
	Regions      []XMLRegion `xml:"region"`
}

// XMLRegion groups hash table entries by user region.
type XMLRegion struct {
	Name  string    `xml:"name,attr"`
	Funcs []XMLFunc `xml:"func"`
}

// XMLFunc is one hash table entry. The submit_* attributes carry the
// driver command-queue accounting (submission count and summed
// enqueue→flush stall, seconds); they are omitted when zero so logs from
// runs without command queues stay byte-identical to older versions.
type XMLFunc struct {
	Name        string  `xml:"name,attr"`
	Bytes       int64   `xml:"bytes,attr"`
	Count       int64   `xml:"count,attr"`
	TTot        float64 `xml:"ttot,attr"`
	TMin        float64 `xml:"tmin,attr"`
	TMax        float64 `xml:"tmax,attr"`
	Errors      int64   `xml:"error_count,attr,omitempty"`
	SubmitN     int64   `xml:"submit_count,attr,omitempty"`
	SubmitStall float64 `xml:"submit_stall,attr,omitempty"`
	Energy      float64 `xml:"energy,attr,omitempty"` // joules
}

// globalRegionName is how the implicit whole-program region appears in the
// log, following IPM's convention.
const globalRegionName = "ipm_global"

func regionLabel(r string) string {
	if r == GlobalRegion {
		return globalRegionName
	}
	return r
}

func regionFromLabel(l string) string {
	if l == globalRegionName {
		return GlobalRegion
	}
	return l
}

// ToXML converts a job profile to its XML document form.
func ToXML(jp *JobProfile) *XMLLog {
	doc := &XMLLog{
		Version:   "2.0",
		Command:   jp.Command,
		NTasks:    jp.NTasks(),
		NHosts:    jp.Nodes,
		Start:     jp.Start,
		Stop:      jp.Stop,
		Wallclock: jp.Wallclock().Seconds(),
	}
	for _, r := range jp.Ranks {
		task := XMLTask{
			Rank: r.Rank, Host: r.Host, Wallclock: r.Wallclock.Seconds(),
			HashLoad: r.LoadFactor, HashOverflow: r.Overflow, HashProbes: r.Probes,
			Errors: r.Errors, SubmitStall: r.SubmitStall.Seconds(), MonitorErrs: r.MonitorErrors,
			Energy: energyToJoules(r.Energy), Device: r.Device,
		}
		if r.Lost {
			task.Status = "lost"
			task.LostAt = r.LostAt.Seconds()
			task.LostReason = r.LostReason
		}
		// Group entries by region, preserving the sorted entry order.
		regionIdx := make(map[string]int)
		for _, e := range r.Entries {
			label := regionLabel(e.Sig.Region)
			i, ok := regionIdx[label]
			if !ok {
				i = len(task.Regions)
				regionIdx[label] = i
				task.Regions = append(task.Regions, XMLRegion{Name: label})
			}
			task.Regions[i].Funcs = append(task.Regions[i].Funcs, XMLFunc{
				Name:        e.Sig.Name,
				Bytes:       e.Sig.Bytes,
				Count:       e.Stats.Count,
				TTot:        e.Stats.Total.Seconds(),
				TMin:        e.Stats.Min.Seconds(),
				TMax:        e.Stats.Max.Seconds(),
				Errors:      e.Stats.Errors,
				SubmitN:     e.Stats.Submits,
				SubmitStall: e.Stats.SubmitStall.Seconds(),
				Energy:      energyToJoules(e.Stats.Energy),
			})
		}
		doc.Tasks = append(doc.Tasks, task)
	}
	return doc
}

// WriteXML writes the job profile as an IPM XML log.
func WriteXML(w io.Writer, jp *JobProfile) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(ToXML(jp)); err != nil {
		return fmt.Errorf("ipm: encoding XML log: %w", err)
	}
	if err := enc.Close(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

func secsToDuration(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}

// energyToJoules / joulesToEnergy convert between the internal integer
// nanojoule representation and the joule-valued energy_* XML attributes,
// the exact counterparts of Seconds()/secsToDuration for durations.
func energyToJoules(nj int64) float64 { return float64(nj) / 1e9 }

func joulesToEnergy(j float64) int64 { return int64(math.Round(j * 1e9)) }

// FromXML converts a parsed XML document back to a JobProfile.
func FromXML(doc *XMLLog) *JobProfile {
	ranks := make([]RankProfile, 0, len(doc.Tasks))
	for _, t := range doc.Tasks {
		rp := RankProfile{
			Rank: t.Rank, Host: t.Host, Wallclock: secsToDuration(t.Wallclock),
			LoadFactor: t.HashLoad, Overflow: t.HashOverflow, Probes: t.HashProbes,
			Errors: t.Errors, SubmitStall: secsToDuration(t.SubmitStall), MonitorErrors: t.MonitorErrs,
			Energy: joulesToEnergy(t.Energy), Device: t.Device,
			Lost: t.Status == "lost", LostAt: secsToDuration(t.LostAt), LostReason: t.LostReason,
		}
		for _, reg := range t.Regions {
			for _, f := range reg.Funcs {
				rp.Entries = append(rp.Entries, Entry{
					Sig: Sig{Name: f.Name, Bytes: f.Bytes, Region: regionFromLabel(reg.Name)},
					Stats: Stats{
						Count:       f.Count,
						Total:       secsToDuration(f.TTot),
						Min:         secsToDuration(f.TMin),
						Max:         secsToDuration(f.TMax),
						Errors:      f.Errors,
						Submits:     f.SubmitN,
						SubmitStall: secsToDuration(f.SubmitStall),
						Energy:      joulesToEnergy(f.Energy),
					},
				})
			}
		}
		if rp.Errors == 0 {
			// Logs without a rolled-up error_total still get the sum.
			for _, e := range rp.Entries {
				rp.Errors += e.Stats.Errors
			}
		}
		if rp.SubmitStall == 0 {
			// Likewise for logs predating submit_stall_total.
			for _, e := range rp.Entries {
				rp.SubmitStall += e.Stats.SubmitStall
			}
		}
		if rp.Energy == 0 {
			// Likewise for logs predating energy_total.
			for _, e := range rp.Entries {
				rp.Energy += e.Stats.Energy
			}
		}
		ranks = append(ranks, rp)
	}
	jp := NewJobProfile(doc.Command, doc.NHosts, ranks)
	jp.Start, jp.Stop = doc.Start, doc.Stop
	if doc.NTasks > len(doc.Tasks) {
		jp.ExpectedRanks = doc.NTasks
	}
	return jp
}

// ParseXML reads an IPM XML log.
func ParseXML(r io.Reader) (*JobProfile, error) {
	var doc XMLLog
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("ipm: parsing XML log: %w", err)
	}
	if doc.XMLName.Local != "ipm_log" {
		return nil, fmt.Errorf("ipm: unexpected root element %q", doc.XMLName.Local)
	}
	return FromXML(&doc), nil
}
