package ipm

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// countSink counts scan events and records the last of each, enough to
// assert the scanner's event stream shape without a rollup.
type countSink struct {
	headers, taskStarts, entries, taskEnds int
	command                                string
	lastTask                               ScanTask
	lastEntry                              struct {
		region, name string
		total        time.Duration
		count        int64
		submits      int64
		submitStall  time.Duration
	}
}

func (c *countSink) Header(h *ScanHeader) {
	c.headers++
	c.command = string(h.Command)
}

func (c *countSink) TaskStart(t *ScanTask) {
	c.taskStarts++
	c.lastTask = *t
	c.lastTask.Host = append([]byte(nil), t.Host...)
}

func (c *countSink) Entry(e *ScanEntry) {
	c.entries++
	c.lastEntry.region = string(e.Region)
	c.lastEntry.name = string(e.Name)
	c.lastEntry.total = e.Total
	c.lastEntry.count = e.Count
	c.lastEntry.submits = e.Submits
	c.lastEntry.submitStall = e.SubmitStall
}

func (c *countSink) TaskEnd() { c.taskEnds++ }

func scan(t *testing.T, doc string) (*countSink, *ParseReport, bool, error) {
	t.Helper()
	sink := &countSink{}
	var rep ParseReport
	ok, err := ScanXMLTolerant([]byte(doc), sink, &rep)
	return sink, &rep, ok, err
}

func TestScanCleanDocument(t *testing.T) {
	doc := `<?xml version="1.0" encoding="UTF-8"?>
<ipm_log version="2.0" command="./hpl" ntasks="2" nhosts="1" wallclock="3.5">
<task mpi_rank="1" host="dirac1" wallclock="3.25">
<region name="ingest">
<func name="MPI_Send" bytes="1024" count="10" ttot="1.5" tmin="0.1" tmax="0.3"/>
<func name="cudaMemcpy(H2D)" count="4" ttot="0.25"/>
</region>
</task>
<task mpi_rank="0" host="dirac2" wallclock="3.5" status="lost" lost_at="2.5" lost_reason="watchdog"/>
</ipm_log>`
	sink, rep, ok, err := scan(t, doc)
	if !ok || err != nil {
		t.Fatalf("scanner bailed on clean doc: ok=%v err=%v", ok, err)
	}
	if sink.headers != 1 || sink.taskStarts != 2 || sink.taskEnds != 2 || sink.entries != 2 {
		t.Errorf("events: %+v", sink)
	}
	if sink.command != "./hpl" {
		t.Errorf("command = %q", sink.command)
	}
	if len(rep.Warnings) != 0 || rep.Truncated || rep.TasksRecovered != 2 || rep.TasksDeclared != 2 {
		t.Errorf("report: %+v", rep)
	}
	if !sink.lastTask.Lost || string(sink.lastTask.Host) != "dirac2" {
		t.Errorf("lost task not surfaced: %+v", sink.lastTask)
	}
	if sink.lastEntry.name != "cudaMemcpy(H2D)" || sink.lastEntry.region != "ingest" ||
		sink.lastEntry.count != 4 || sink.lastEntry.total != 250*time.Millisecond {
		t.Errorf("entry: %+v", sink.lastEntry)
	}
}

func TestScanBailCases(t *testing.T) {
	// Inputs where the non-strict decoder has behavior the scanner does
	// not replicate: each must bail (ok=false), never mis-parse.
	for _, doc := range []string{
		"<ipm_log>",                  // EOF with open element
		"<ipm_log><task rank=\"0\">", // EOF inside task
		"<ipm_log",                   // EOF mid-tag
		"<a><b></a></b>",             // mismatched end tags
		"<a>]]></a>",                 // ]]> in char data
		"<a x=\"<\"/>",               // '<' in attribute value
		"<a x=\"1\r2\"/>",            // '\r' in attribute value (decoder normalises)
		"<a x=1/>",                   // unquoted attribute
		"<a x/>",                     // valueless attribute
		"<ns:a/>",                    // ':' in name
		"<a 1x=\"1\"/>",              // name not [A-Za-z_]...
		"<!-- c --><a/>",             // <! construct
		"<!DOCTYPE a><a/>",           // directive
		"<?xml version=\"1.0\" encoding=\"latin-1\"?><a/>", // non-UTF-8 PI
		"</a>",         // stray end tag
		"<a/ >",        // space after self-closing slash
		"</a x=\"1\">", // junk in end tag
	} {
		sink := &countSink{}
		var rep ParseReport
		if ok, _ := ScanXMLTolerant([]byte(doc), sink, &rep); ok {
			t.Errorf("scanner accepted %q, must bail to the DOM parser", doc)
		}
	}
}

func TestScanTolerance(t *testing.T) {
	// Decoder-tolerated oddities the scanner must also accept, with the
	// same salvage warnings ParseXMLTolerant emits.
	for _, tc := range []struct {
		doc      string
		warnings int
	}{
		{`<ipm_log></ipm_log>`, 0},
		{`<ipm_log/><ipm_log/>`, 1},                                                    // second root: nested-ignored warning
		{`<ipm_log><unknown><deep/></unknown></ipm_log>`, 0},                           // unknown elements skipped
		{`<ipm_log cmd = "x" ></ipm_log>`, 0},                                          // ws around '='
		{`<ipm_log><task mpi_rank="0"><task mpi_rank="1"></task></task></ipm_log>`, 1}, // interleaved tasks
		{`<ipm_log><region name="r"/></ipm_log>`, 1},                                   // region outside task
		{`<ipm_log><func name="f"/></ipm_log>`, 1},                                     // func outside region
		{`<ipm_log ntasks="4"></ipm_log>`, 1},                                          // declared > recovered
		{`<ipm_log wallclock="bogus"></ipm_log>`, 1},                                   // bad numeric attribute
		{`text<ipm_log></ipm_log>trailing`, 0},                                         // stray top-level text
		{`<ipm_log cmd="a" cmd="b"></ipm_log>`, 0},                                     // duplicate attr, last wins
		{`<ipm_log></ipm_log >`, 0},                                                    // ws before end-tag '>'
		{`<?pi anything?><ipm_log/>`, 0},                                               // non-xml PI
	} {
		sink, rep, ok, err := scan(t, tc.doc)
		if !ok {
			t.Errorf("scanner bailed on tolerated input %q", tc.doc)
			continue
		}
		if err != nil {
			t.Errorf("scan(%q) error: %v", tc.doc, err)
			continue
		}
		if len(rep.Warnings) != tc.warnings {
			t.Errorf("scan(%q) warnings = %q, want %d", tc.doc, rep.Warnings, tc.warnings)
		}
		// And the report must be exactly the DOM parser's.
		_, drep, derr := ParseXMLTolerant(strings.NewReader(tc.doc))
		if derr != nil {
			t.Errorf("reference parser rejected %q: %v", tc.doc, derr)
			continue
		}
		if len(rep.Warnings) != len(drep.Warnings) {
			t.Errorf("scan(%q): %d warnings vs parser's %d", tc.doc, len(rep.Warnings), len(drep.Warnings))
			continue
		}
		for i := range rep.Warnings {
			if rep.Warnings[i] != drep.Warnings[i] {
				t.Errorf("scan(%q) warning %d = %q, parser %q", tc.doc, i, rep.Warnings[i], drep.Warnings[i])
			}
		}
		_ = sink
	}
}

func TestScanNoRootError(t *testing.T) {
	_, _, ok, err := scan(t, "<html>not ipm</html>")
	if !ok {
		t.Fatal("plain non-ipm XML should stay on the fast path")
	}
	_, _, derr := ParseXMLTolerant(strings.NewReader("<html>not ipm</html>"))
	if err == nil || derr == nil || err.Error() != derr.Error() {
		t.Fatalf("no-root error mismatch: scan=%v parse=%v", err, derr)
	}
}

// TestParseInt64MatchesStrconv pins the allocation-free integer fast
// path to strconv.ParseInt on every input it accepts.
func TestParseInt64MatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "42", "007", "-007",
		"9223372036854775807",  // MaxInt64
		"-9223372036854775808", // MinInt64
		"9223372036854775808",  // overflow
		"-9223372036854775809", // underflow
		"92233720368547758070", // way over
		"", "-", "+1", "1x", "x", "1_0", " 1", "1 ",
	}
	for _, s := range cases {
		got, ok := parseInt64([]byte(s))
		want, err := strconv.ParseInt(s, 10, 64)
		if ok {
			if err != nil {
				t.Errorf("parseInt64(%q) accepted what strconv rejects (%v)", s, err)
			} else if got != want {
				t.Errorf("parseInt64(%q) = %d, strconv %d", s, got, want)
			}
		}
		// ok=false is always allowed: the caller falls back to strconv.
	}
}

// TestParseFloat64MatchesStrconv pins the Clinger fast path to
// strconv.ParseFloat bit for bit on every input it accepts.
func TestParseFloat64MatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "0.0", "1", "1.5", "-1.5", "3.25", "0.001", "123456.789",
		"1e3", "1.5e-3", "2.5E+7", "-0", "-0.0",
		"0.1", "0.2", "0.3", // classic non-exact decimals: must defer or match
		"9007199254740993", // 2^53+1: mantissa over 53 bits
		"1e22", "1e23", "1e37", "1e38", "-1e-22", "1e-23",
		"12345678901234567890", // >19 sig digits
		"1.7976931348623157e308",
		"", ".", "e3", "1e", "1.2.3", "0x1p3", "inf", "NaN", "1_000",
	}
	for _, s := range cases {
		got, ok := parseFloat64([]byte(s))
		want, err := strconv.ParseFloat(s, 64)
		if ok {
			if err != nil {
				t.Errorf("parseFloat64(%q) accepted what strconv rejects (%v)", s, err)
			} else if got != want {
				t.Errorf("parseFloat64(%q) = %v (%x), strconv %v (%x)",
					s, got, got, want, want)
			}
		}
	}
}

// TestScanReportReuse proves the recycled-ParseReport contract: a
// second scan with a reset report must not see the first scan's
// warnings.
func TestScanReportReuse(t *testing.T) {
	var rep ParseReport
	sink := &countSink{}
	if ok, _ := ScanXMLTolerant([]byte(`<ipm_log ntasks="9"></ipm_log>`), sink, &rep); !ok {
		t.Fatal("bailed")
	}
	if len(rep.Warnings) != 1 {
		t.Fatalf("warnings = %q", rep.Warnings)
	}
	rep.Warnings = rep.Warnings[:0]
	rep.Truncated, rep.TasksRecovered, rep.TasksDeclared = false, 0, 0
	if ok, err := ScanXMLTolerant([]byte(`<ipm_log></ipm_log>`), sink, &rep); !ok || err != nil {
		t.Fatalf("second scan: ok=%v err=%v", ok, err)
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("stale warnings leaked: %q", rep.Warnings)
	}
}
