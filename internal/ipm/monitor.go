package ipm

import (
	"fmt"
	"time"

	"ipmgo/internal/telemetry"
)

// Clock abstracts the time source so the monitor runs identically against
// the DES virtual clock (in this reproduction) and a real clock.
type Clock func() time.Duration

// GlobalRegion is the implicit region covering the whole execution.
const GlobalRegion = ""

// Monitor is the per-rank IPM instance: a thin layer holding the hash
// table, the wallclock bracket, and the user-region stack
// (MPI_Pcontrol-style). Wrapper layers (internal/ipmcuda, internal/ipmmpi,
// internal/ipmblas) feed it observations.
type Monitor struct {
	rank    int
	host    string
	command string
	clock   Clock

	table   *Table
	start   time.Duration
	stop    time.Duration
	started bool
	stopped bool

	// regions is the user-region stack; regionHashes mirrors it with the
	// memoized hashString of each name so ObserveRef never rehashes the
	// active region. curRegionHash caches the top (hash of GlobalRegion
	// when the stack is empty). regionStarts mirrors the stack with each
	// region's entry time, for telemetry region spans.
	regions       []string
	regionHashes  []uint64
	regionStarts  []time.Duration
	curRegionHash uint64

	// Streaming telemetry. instrumented is the single flag the per-event
	// fast path branches on: false keeps ObserveRef identical to the
	// uninstrumented monitor apart from one predictable branch.
	instrumented bool
	tel          *telemetry.Recorder
	telTrack     string
	obsHist      *telemetry.Histogram

	// Monitoring-internal failures recovered by Guard. A monitoring bug
	// must never abort the monitored application; it is counted and
	// reported instead.
	internalErrs    int64
	lastInternalErr string
}

// NewMonitor creates a monitor for one rank. capacity <= 0 selects the
// default hash table size.
func NewMonitor(rank int, host, command string, clock Clock, capacity int) *Monitor {
	return &Monitor{
		rank:          rank,
		host:          host,
		command:       command,
		clock:         clock,
		table:         NewTable(capacity),
		curRegionHash: hashString(GlobalRegion),
	}
}

// Rank returns the monitored rank.
func (m *Monitor) Rank() int { return m.rank }

// Host returns the host name.
func (m *Monitor) Host() string { return m.host }

// Command returns the monitored command line.
func (m *Monitor) Command() string { return m.command }

// Now returns the monitor's current clock reading.
func (m *Monitor) Now() time.Duration { return m.clock() }

// AttachTelemetry routes a span per observed event (and per user region)
// into rec, on the rank's CPU track. Attach before the run starts;
// passing nil detaches.
func (m *Monitor) AttachTelemetry(rec *telemetry.Recorder) {
	m.tel = rec
	m.telTrack = fmt.Sprintf("rank%d/cpu", m.rank)
	m.instrumented = m.tel != nil || m.obsHist != nil
}

// Telemetry returns the attached span recorder (nil when detached).
func (m *Monitor) Telemetry() *telemetry.Recorder { return m.tel }

// SetLatencyHistogram records the real-time (not virtual-time) latency
// of every table update into h — the monitor measuring its own per-event
// overhead. Passing nil disables the measurement.
func (m *Monitor) SetLatencyHistogram(h *telemetry.Histogram) {
	m.obsHist = h
	m.instrumented = m.tel != nil || m.obsHist != nil
}

// Start brackets the beginning of the monitored execution (MPI_Init /
// first CUDA call in the real tool).
func (m *Monitor) Start() {
	if !m.started {
		m.started = true
		m.start = m.clock()
	}
}

// Stop brackets the end of the monitored execution.
func (m *Monitor) Stop() {
	if m.started && !m.stopped {
		m.stopped = true
		m.stop = m.clock()
	}
}

// Wallclock returns the bracketed execution time (running total if Stop
// has not been called).
func (m *Monitor) Wallclock() time.Duration {
	if !m.started {
		return 0
	}
	if m.stopped {
		return m.stop - m.start
	}
	return m.clock() - m.start
}

// EnterRegion pushes a user region; observations recorded until the
// matching ExitRegion carry its name in their signature. The region name
// is hashed here, once per transition, not per event.
func (m *Monitor) EnterRegion(name string) {
	m.regions = append(m.regions, name)
	m.curRegionHash = hashString(name)
	m.regionHashes = append(m.regionHashes, m.curRegionHash)
	m.regionStarts = append(m.regionStarts, m.clock())
}

// ExitRegion pops the current user region, emitting its telemetry span.
// Popping the global region is a no-op.
func (m *Monitor) ExitRegion() {
	if len(m.regions) > 0 {
		name := m.regions[len(m.regions)-1]
		start := m.regionStarts[len(m.regionStarts)-1]
		m.regions = m.regions[:len(m.regions)-1]
		m.regionHashes = m.regionHashes[:len(m.regionHashes)-1]
		m.regionStarts = m.regionStarts[:len(m.regionStarts)-1]
		if m.tel != nil {
			m.tel.Record(telemetry.Span{
				Track: m.telTrack,
				Name:  name,
				Class: telemetry.ClassRegion,
				Start: start,
				End:   m.clock(),
			})
		}
	}
	if len(m.regionHashes) > 0 {
		m.curRegionHash = m.regionHashes[len(m.regionHashes)-1]
	} else {
		m.curRegionHash = hashString(GlobalRegion)
	}
}

// CurrentRegion returns the active region name (GlobalRegion outside any).
func (m *Monitor) CurrentRegion() string {
	if len(m.regions) == 0 {
		return GlobalRegion
	}
	return m.regions[len(m.regions)-1]
}

// Observe records one completed event with the given operand size. The
// name string is hashed on every call; constant-name call sites should
// hold a SigRef and use ObserveRef instead.
func (m *Monitor) Observe(name string, bytes int64, d time.Duration) {
	if m.instrumented {
		m.observeInstrumented(NewSigRef(name), bytes, d)
		return
	}
	m.table.UpdateHashed(mixSig(hashString(name), m.curRegionHash, bytes),
		Sig{Name: name, Bytes: bytes, Region: m.CurrentRegion()},
		Stats{Count: 1, Total: d, Min: d, Max: d})
}

// ObserveN records a pre-aggregated statistic (used by pseudo-entries that
// batch several completions, e.g. kernel timings flushed together). No
// telemetry span is emitted: a batched statistic has no single interval
// on the timeline (the GPU simulator records device-side spans exactly).
func (m *Monitor) ObserveN(name string, bytes int64, s Stats) {
	m.table.UpdateHashed(mixSig(hashString(name), m.curRegionHash, bytes),
		Sig{Name: name, Bytes: bytes, Region: m.CurrentRegion()}, s)
}

// ObserveRef is the zero-rehash form of Observe: the event name's hash is
// memoized in ref, the active region's hash is memoized on the region
// stack, and only the bytes attribute is mixed in per event. This is the
// per-event fast path of every wrapper layer; with telemetry disabled it
// performs no allocation, no string hashing, and exactly one extra
// branch over the uninstrumented monitor.
func (m *Monitor) ObserveRef(ref SigRef, bytes int64, d time.Duration) {
	if m.instrumented {
		m.observeInstrumented(ref, bytes, d)
		return
	}
	m.table.UpdateHashed(mixSig(ref.hash, m.curRegionHash, bytes),
		Sig{Name: ref.name, Bytes: bytes, Region: m.CurrentRegion()},
		Stats{Count: 1, Total: d, Min: d, Max: d})
}

// observeInstrumented is the telemetry-enabled observe path: the table
// update bracketed by the self-latency measurement, then the span. Kept
// out of ObserveRef so the disabled path stays small enough to inline.
func (m *Monitor) observeInstrumented(ref SigRef, bytes int64, d time.Duration) {
	var t0 time.Time
	if m.obsHist != nil {
		t0 = time.Now()
	}
	m.table.UpdateHashed(mixSig(ref.hash, m.curRegionHash, bytes),
		Sig{Name: ref.name, Bytes: bytes, Region: m.CurrentRegion()},
		Stats{Count: 1, Total: d, Min: d, Max: d})
	if m.obsHist != nil {
		m.obsHist.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	if m.tel != nil {
		end := m.clock()
		m.tel.Record(telemetry.Span{
			Track: m.telTrack,
			Name:  ref.name,
			Class: ref.class,
			Start: end - d,
			End:   end,
			Bytes: bytes,
		})
	}
}

// ObserveErrRef records one completed event that returned an error,
// incrementing the signature's error counter alongside the usual timing
// statistics. Failed calls still consume host time, so they stay in the
// same hash entry as their successes; the Errors field is what telemetry
// and the XML log export per call site.
func (m *Monitor) ObserveErrRef(ref SigRef, bytes int64, d time.Duration) {
	if m.instrumented {
		m.observeInstrumented(ref, bytes, d)
		// The instrumented path shares the success-path update; fold the
		// error flag in with a zero-observation merge.
		m.table.UpdateHashed(mixSig(ref.hash, m.curRegionHash, bytes),
			Sig{Name: ref.name, Bytes: bytes, Region: m.CurrentRegion()},
			Stats{Errors: 1})
		return
	}
	m.table.UpdateHashed(mixSig(ref.hash, m.curRegionHash, bytes),
		Sig{Name: ref.name, Bytes: bytes, Region: m.CurrentRegion()},
		Stats{Count: 1, Total: d, Min: d, Max: d, Errors: 1})
}

// ObserveNRef is the zero-rehash form of ObserveN.
func (m *Monitor) ObserveNRef(ref SigRef, bytes int64, s Stats) {
	m.table.UpdateHashed(mixSig(ref.hash, m.curRegionHash, bytes),
		Sig{Name: ref.name, Bytes: bytes, Region: m.CurrentRegion()}, s)
}

// Timed measures fn with the monitor's clock and records it — the Go
// rendering of the paper's Fig. 2 wrapper anatomy.
func (m *Monitor) Timed(name string, bytes int64, fn func()) {
	begin := m.clock()
	fn()
	m.Observe(name, bytes, m.clock()-begin)
}

// Table exposes the hash table (read-mostly; the wrapper layers update it
// through Observe).
func (m *Monitor) Table() *Table { return m.table }

// unrecoverable matches panic values that carry control flow (e.g. a DES
// process kill) rather than a monitoring bug. Guard re-raises them; the
// duck-typed interface keeps ipm free of a des dependency.
type unrecoverable interface{ Unrecoverable() bool }

// Guard runs fn, recovering any panic it raises: a monitoring bug must
// never abort the monitored application. Recovered panics increment the
// monitor's internal-error counter, exported as the
// monitor_internal_errors metric and reported in the banner. Guard is for
// coarse-grained monitoring work (flushes, snapshots, metric collection)
// — the per-event fast path carries no recover so its cost stays at the
// PR2 baseline.
func (m *Monitor) Guard(where string, fn func()) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if u, ok := r.(unrecoverable); ok && u.Unrecoverable() {
			panic(r)
		}
		m.internalErrs++
		m.lastInternalErr = fmt.Sprintf("%s: %v", where, r)
	}()
	fn()
}

// InternalErrors returns the number of monitoring-internal panics
// recovered by Guard.
func (m *Monitor) InternalErrors() int64 { return m.internalErrs }

// LastInternalError describes the most recent recovered panic, or "".
func (m *Monitor) LastInternalError() string { return m.lastInternalErr }
