package ipm

import (
	"time"
)

// Clock abstracts the time source so the monitor runs identically against
// the DES virtual clock (in this reproduction) and a real clock.
type Clock func() time.Duration

// GlobalRegion is the implicit region covering the whole execution.
const GlobalRegion = ""

// Monitor is the per-rank IPM instance: a thin layer holding the hash
// table, the wallclock bracket, and the user-region stack
// (MPI_Pcontrol-style). Wrapper layers (internal/ipmcuda, internal/ipmmpi,
// internal/ipmblas) feed it observations.
type Monitor struct {
	rank    int
	host    string
	command string
	clock   Clock

	table   *Table
	start   time.Duration
	stop    time.Duration
	started bool
	stopped bool

	// regions is the user-region stack; regionHashes mirrors it with the
	// memoized hashString of each name so ObserveRef never rehashes the
	// active region. curRegionHash caches the top (hash of GlobalRegion
	// when the stack is empty).
	regions       []string
	regionHashes  []uint64
	curRegionHash uint64
}

// NewMonitor creates a monitor for one rank. capacity <= 0 selects the
// default hash table size.
func NewMonitor(rank int, host, command string, clock Clock, capacity int) *Monitor {
	return &Monitor{
		rank:          rank,
		host:          host,
		command:       command,
		clock:         clock,
		table:         NewTable(capacity),
		curRegionHash: hashString(GlobalRegion),
	}
}

// Rank returns the monitored rank.
func (m *Monitor) Rank() int { return m.rank }

// Host returns the host name.
func (m *Monitor) Host() string { return m.host }

// Command returns the monitored command line.
func (m *Monitor) Command() string { return m.command }

// Now returns the monitor's current clock reading.
func (m *Monitor) Now() time.Duration { return m.clock() }

// Start brackets the beginning of the monitored execution (MPI_Init /
// first CUDA call in the real tool).
func (m *Monitor) Start() {
	if !m.started {
		m.started = true
		m.start = m.clock()
	}
}

// Stop brackets the end of the monitored execution.
func (m *Monitor) Stop() {
	if m.started && !m.stopped {
		m.stopped = true
		m.stop = m.clock()
	}
}

// Wallclock returns the bracketed execution time (running total if Stop
// has not been called).
func (m *Monitor) Wallclock() time.Duration {
	if !m.started {
		return 0
	}
	if m.stopped {
		return m.stop - m.start
	}
	return m.clock() - m.start
}

// EnterRegion pushes a user region; observations recorded until the
// matching ExitRegion carry its name in their signature. The region name
// is hashed here, once per transition, not per event.
func (m *Monitor) EnterRegion(name string) {
	m.regions = append(m.regions, name)
	m.curRegionHash = hashString(name)
	m.regionHashes = append(m.regionHashes, m.curRegionHash)
}

// ExitRegion pops the current user region. Popping the global region is a
// no-op.
func (m *Monitor) ExitRegion() {
	if len(m.regions) > 0 {
		m.regions = m.regions[:len(m.regions)-1]
		m.regionHashes = m.regionHashes[:len(m.regionHashes)-1]
	}
	if len(m.regionHashes) > 0 {
		m.curRegionHash = m.regionHashes[len(m.regionHashes)-1]
	} else {
		m.curRegionHash = hashString(GlobalRegion)
	}
}

// CurrentRegion returns the active region name (GlobalRegion outside any).
func (m *Monitor) CurrentRegion() string {
	if len(m.regions) == 0 {
		return GlobalRegion
	}
	return m.regions[len(m.regions)-1]
}

// Observe records one completed event with the given operand size. The
// name string is hashed on every call; constant-name call sites should
// hold a SigRef and use ObserveRef instead.
func (m *Monitor) Observe(name string, bytes int64, d time.Duration) {
	m.table.UpdateHashed(mixSig(hashString(name), m.curRegionHash, bytes),
		Sig{Name: name, Bytes: bytes, Region: m.CurrentRegion()},
		Stats{Count: 1, Total: d, Min: d, Max: d})
}

// ObserveN records a pre-aggregated statistic (used by pseudo-entries that
// batch several completions, e.g. kernel timings flushed together).
func (m *Monitor) ObserveN(name string, bytes int64, s Stats) {
	m.table.UpdateHashed(mixSig(hashString(name), m.curRegionHash, bytes),
		Sig{Name: name, Bytes: bytes, Region: m.CurrentRegion()}, s)
}

// ObserveRef is the zero-rehash form of Observe: the event name's hash is
// memoized in ref, the active region's hash is memoized on the region
// stack, and only the bytes attribute is mixed in per event. This is the
// per-event fast path of every wrapper layer; it performs no allocation
// and no string hashing.
func (m *Monitor) ObserveRef(ref SigRef, bytes int64, d time.Duration) {
	m.table.UpdateHashed(mixSig(ref.hash, m.curRegionHash, bytes),
		Sig{Name: ref.name, Bytes: bytes, Region: m.CurrentRegion()},
		Stats{Count: 1, Total: d, Min: d, Max: d})
}

// ObserveNRef is the zero-rehash form of ObserveN.
func (m *Monitor) ObserveNRef(ref SigRef, bytes int64, s Stats) {
	m.table.UpdateHashed(mixSig(ref.hash, m.curRegionHash, bytes),
		Sig{Name: ref.name, Bytes: bytes, Region: m.CurrentRegion()}, s)
}

// Timed measures fn with the monitor's clock and records it — the Go
// rendering of the paper's Fig. 2 wrapper anatomy.
func (m *Monitor) Timed(name string, bytes int64, fn func()) {
	begin := m.clock()
	fn()
	m.Observe(name, bytes, m.clock()-begin)
}

// Table exposes the hash table (read-mostly; the wrapper layers update it
// through Observe).
func (m *Monitor) Table() *Table { return m.table }
