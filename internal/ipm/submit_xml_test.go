package ipm

import (
	"strings"
	"testing"
	"time"
)

// makeSubmitProfile builds a two-rank profile whose call sites carry
// command-queue submit accounting alongside the usual timing stats.
func makeSubmitProfile() *JobProfile {
	var ranks []RankProfile
	for r := 0; r < 2; r++ {
		fc := &fakeClock{}
		m := NewMonitor(r, "node0", "app", fc.clock, 0)
		m.Start()
		m.ObserveN("cudaLaunch", 0, Stats{
			Count: 40, Total: 10 * time.Millisecond,
			Min: 200 * time.Microsecond, Max: 300 * time.Microsecond,
			Submits: 40, SubmitStall: time.Duration(r+1) * 3 * time.Millisecond,
		})
		m.ObserveN("cudaMemcpy(H2D)", 131072, Stats{
			Count: 40, Total: 200 * time.Millisecond,
			Min: 4 * time.Millisecond, Max: 6 * time.Millisecond,
			Submits: 40, SubmitStall: time.Duration(r+1) * 4 * time.Millisecond,
		})
		m.Observe("cudaMalloc", 131072, 500*time.Millisecond)
		fc.now = 2 * time.Second
		m.Stop()
		ranks = append(ranks, Snapshot(m))
	}
	return NewJobProfile("app", 2, ranks)
}

// TestSubmitXMLRoundTrip drives the writer and both parsers over a
// profile with submit accounting: the attributes must be emitted and
// every Submits/SubmitStall figure must survive the round trip.
func TestSubmitXMLRoundTrip(t *testing.T) {
	jp := makeSubmitProfile()
	var sb strings.Builder
	if err := WriteXML(&sb, jp); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, attr := range []string{`submit_count="40"`, `submit_stall=`, `submit_stall_total=`} {
		if !strings.Contains(out, attr) {
			t.Errorf("serialized profile missing %s:\n%s", attr, out)
		}
	}
	// Entries without submits must not grow the attributes (omitempty).
	if strings.Count(out, "submit_count") != 4 {
		t.Errorf("want submit_count on exactly the 4 queued entries:\n%s", out)
	}

	check := func(name string, got *JobProfile) {
		t.Helper()
		if got.TotalSubmitStall() != jp.TotalSubmitStall() {
			t.Errorf("%s: TotalSubmitStall = %v, want %v", name, got.TotalSubmitStall(), jp.TotalSubmitStall())
		}
		for i, r := range jp.Ranks {
			gr := got.Ranks[i]
			if gr.SubmitStall != r.SubmitStall {
				t.Errorf("%s: rank %d SubmitStall = %v, want %v", name, i, gr.SubmitStall, r.SubmitStall)
			}
			for j, e := range r.Entries {
				ge := gr.Entries[j]
				if ge.Stats.Submits != e.Stats.Submits || ge.Stats.SubmitStall != e.Stats.SubmitStall {
					t.Errorf("%s: rank %d entry %s submits %d/%v, want %d/%v",
						name, i, e.Sig.Name, ge.Stats.Submits, ge.Stats.SubmitStall,
						e.Stats.Submits, e.Stats.SubmitStall)
				}
			}
		}
	}
	strict, err := ParseXML(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	check("strict", strict)
	tolerant, rep, err := ParseXMLTolerant(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("tolerant parse warned on clean output: %q", rep.Warnings)
	}
	check("tolerant", tolerant)
}

// TestScanSubmitAttrs drives the streaming scanner over a document with
// submit attributes: the task's submit_stall_total and each entry's
// submit_count/submit_stall must reach the sink.
func TestScanSubmitAttrs(t *testing.T) {
	doc := `<?xml version="1.0" encoding="UTF-8"?>
<ipm_log command="./a" ntasks="1" nhosts="1" wallclock="2.0">
<task mpi_rank="0" host="h0" wallclock="2.0" submit_stall_total="0.25">
<region name="ipm_global">
<func name="cudaLaunch" count="4" ttot="0.01" submit_count="4" submit_stall="0.002"/>
</region>
</task>
</ipm_log>`
	sink := &countSink{}
	var rep ParseReport
	ok, err := ScanXMLTolerant([]byte(doc), sink, &rep)
	if !ok || err != nil {
		t.Fatalf("scanner bailed on clean doc with submit attrs: ok=%v err=%v", ok, err)
	}
	if sink.lastTask.SubmitStall != 250*time.Millisecond {
		t.Errorf("task stall = %v, want 250ms", sink.lastTask.SubmitStall)
	}
	if sink.lastEntry.submits != 4 || sink.lastEntry.submitStall != 2*time.Millisecond {
		t.Errorf("entry submits = %d/%v, want 4/2ms", sink.lastEntry.submits, sink.lastEntry.submitStall)
	}
}

// TestSubmitStallRederive pins the tolerant parser's two stall sources:
// the task-level submit_stall_total attribute wins when present, and
// logs predating it fall back to summing the per-entry attributes.
func TestSubmitStallRederive(t *testing.T) {
	doc := `<ipm_log command="./a" ntasks="2" nhosts="1" wallclock="2.0">
<task mpi_rank="0" host="h0" wallclock="2.0" submit_stall_total="0.5">
<region name="ipm_global">
<func name="cudaLaunch" count="4" ttot="0.01" submit_count="4" submit_stall="0.002"/>
</region>
</task>
<task mpi_rank="1" host="h1" wallclock="2.0">
<region name="ipm_global">
<func name="cudaLaunch" count="4" ttot="0.01" submit_count="4" submit_stall="0.002"/>
<func name="cudaMemcpy(H2D)" count="2" ttot="0.01" submit_count="2" submit_stall="0.003"/>
</region>
</task>
</ipm_log>`
	jp, _, err := ParseXMLTolerant(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0: the attribute (500ms) wins over the 2ms entry sum.
	if got := jp.Ranks[0].SubmitStall; got != 500*time.Millisecond {
		t.Errorf("rank 0 stall = %v, want the task attribute (500ms)", got)
	}
	// Rank 1: no task attribute, so stall re-derives from the entries.
	if got := jp.Ranks[1].SubmitStall; got != 5*time.Millisecond {
		t.Errorf("rank 1 stall = %v, want 5ms entry sum", got)
	}
}

// TestSubmitAttrsAbsentForOldReports locks backward compatibility in
// both directions: profiles without queue accounting serialize without
// any submit_* attribute, and pre-queue logs parse to zero stall.
func TestSubmitAttrsAbsentForOldReports(t *testing.T) {
	jp := makeJobProfile() // no submit stats anywhere
	var sb strings.Builder
	if err := WriteXML(&sb, jp); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "submit_") {
		t.Errorf("profile without queue stats emitted submit attrs:\n%s", sb.String())
	}
	got, _, err := ParseXMLTolerant(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalSubmitStall() != 0 {
		t.Errorf("pre-queue log parsed to stall %v, want 0", got.TotalSubmitStall())
	}
	for _, r := range got.Ranks {
		for _, e := range r.Entries {
			if e.Stats.Submits != 0 || e.Stats.SubmitStall != 0 {
				t.Errorf("entry %s gained submit stats %d/%v from a pre-queue log",
					e.Sig.Name, e.Stats.Submits, e.Stats.SubmitStall)
			}
		}
	}
}
