// Package ipm implements the core of the IPM (Integrated Performance
// Monitoring) tool described in the paper: the performance-data hash table
// keyed by event signatures, the per-rank monitor, cross-rank aggregation,
// the banner report written at program termination, and the XML profiling
// log consumed by ipm_parse.
//
// IPM's guiding design goals, which this package preserves, are (a) a
// complete runtime event inventory rather than a trace, (b) bounded memory
// via a fixed-size open-addressing hash table, and (c) per-event overhead
// small enough that monitoring can stay enabled for every job on a
// production machine.
package ipm

import (
	"math"
	"time"
)

// Stats accumulates the per-signature statistics IPM stores in each hash
// table entry: the number of calls and the total, minimum and maximum
// duration (the paper stores the average, which is Total/Count).
type Stats struct {
	Count int64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
	// Errors counts the calls (already included in Count) that returned a
	// non-success status — the per-call-site error counters the fault
	// model exports.
	Errors int64
	// Submits counts the driver command-queue submissions attributed to
	// this call site, and SubmitStall the summed enqueue→flush latency of
	// those commands. Both are zero when the run did not use command
	// queues; like Errors they merge independently of Count so the queue
	// layer can fold stall time into an entry the timing update created.
	Submits     int64
	SubmitStall time.Duration
	// Energy is the device energy attributed to this call site, in
	// integer nanojoules (1 W sustained for 1 ns). The watts→nanojoule
	// rounding happens once per observation (see EnergyNJ); every
	// aggregation from there on is an integer sum, so totals are
	// independent of merge order and ensemble parallelism. Zero when the
	// active device has no power model.
	Energy int64
}

// Add folds one observation into the statistics.
func (s *Stats) Add(d time.Duration) {
	if s.Count == 0 || d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Count++
	s.Total += d
}

// Merge folds another accumulator into s (used for cross-rank and
// cross-signature aggregation).
func (s *Stats) Merge(o Stats) {
	// Errors merges independently of Count so an error flag can be folded
	// into an entry the timing update already created. The zero test keeps
	// the (overwhelmingly common) success path from read-modify-writing
	// the entry's error word at all.
	if o.Errors != 0 {
		s.Errors += o.Errors
	}
	if o.Submits != 0 {
		s.Submits += o.Submits
		s.SubmitStall += o.SubmitStall
	}
	// Energy, like Errors, can be folded into an entry after the timing
	// update created it (e.g. kernel energy at KTT flush time).
	if o.Energy != 0 {
		s.Energy += o.Energy
	}
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Total += o.Total
}

// EnergyNJ converts a power draw sustained for d into integer
// nanojoules (1 W for 1 ns is 1 nJ). This is the only float→integer
// rounding point of the energy pipeline: observers call it once per
// observation, and everything downstream sums integers.
func EnergyNJ(watts float64, d time.Duration) int64 {
	if watts <= 0 || d <= 0 {
		return 0
	}
	return int64(math.Round(watts * float64(d)))
}

// EnergyJoules renders the accumulated energy in joules for reports.
func (s Stats) EnergyJoules() float64 { return float64(s.Energy) / 1e9 }

// Avg returns the mean duration, or zero when empty.
func (s Stats) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Sig is an event signature — the hash key of the performance data table.
// It combines the monitored call's name with the attributes IPM folds into
// the key: the operand size in bytes and the active user region. Names
// beginning with '@' are pseudo-functions that do not correspond to a host
// call (e.g. @CUDA_EXEC_STRM00 for on-GPU execution time).
type Sig struct {
	Name   string
	Bytes  int64
	Region string
}

// Pseudo reports whether the signature is a pseudo-function entry.
func (s Sig) Pseudo() bool { return len(s.Name) > 0 && s.Name[0] == '@' }
