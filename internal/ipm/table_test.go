package ipm

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ipmgo/internal/devmodel"
)

func obs(d time.Duration) Stats { return Stats{Count: 1, Total: d, Min: d, Max: d} }

func TestStatsAdd(t *testing.T) {
	var s Stats
	s.Add(5 * time.Millisecond)
	s.Add(2 * time.Millisecond)
	s.Add(9 * time.Millisecond)
	if s.Count != 3 || s.Total != 16*time.Millisecond {
		t.Errorf("count/total = %d/%v", s.Count, s.Total)
	}
	if s.Min != 2*time.Millisecond || s.Max != 9*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Avg() != 16*time.Millisecond/3 {
		t.Errorf("avg = %v", s.Avg())
	}
	if (Stats{}).Avg() != 0 {
		t.Error("empty avg not zero")
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b Stats
	a.Add(time.Millisecond)
	a.Add(3 * time.Millisecond)
	b.Add(2 * time.Millisecond)
	b.Add(10 * time.Millisecond)
	a.Merge(b)
	if a.Count != 4 || a.Total != 16*time.Millisecond || a.Min != time.Millisecond || a.Max != 10*time.Millisecond {
		t.Errorf("merged = %+v", a)
	}
	var empty Stats
	a.Merge(empty) // no-op
	if a.Count != 4 {
		t.Error("merging empty changed stats")
	}
	empty.Merge(a)
	if empty != a {
		t.Error("merge into empty should copy")
	}
}

func TestTableUpdateLookup(t *testing.T) {
	tb := NewTable(64)
	sig := Sig{Name: "cudaMemcpy(D2H)", Bytes: 1024}
	tb.Update(sig, obs(time.Millisecond))
	tb.Update(sig, obs(3*time.Millisecond))
	s, ok := tb.Lookup(sig)
	if !ok || s.Count != 2 || s.Total != 4*time.Millisecond {
		t.Errorf("lookup = %+v, %v", s, ok)
	}
	if _, ok := tb.Lookup(Sig{Name: "missing"}); ok {
		t.Error("lookup of missing key succeeded")
	}
	if tb.Len() != 1 {
		t.Errorf("len = %d", tb.Len())
	}
}

func TestTableDistinguishesAttributes(t *testing.T) {
	tb := NewTable(64)
	tb.Update(Sig{Name: "MPI_Send", Bytes: 8}, obs(time.Millisecond))
	tb.Update(Sig{Name: "MPI_Send", Bytes: 16}, obs(time.Millisecond))
	tb.Update(Sig{Name: "MPI_Send", Bytes: 8, Region: "solver"}, obs(time.Millisecond))
	if tb.Len() != 3 {
		t.Errorf("len = %d, want 3 distinct signatures", tb.Len())
	}
}

func TestTableOverflowSpills(t *testing.T) {
	tb := NewTable(8) // 8 slots, 7 usable
	for i := 0; i < 20; i++ {
		tb.Update(Sig{Name: fmt.Sprintf("f%d", i)}, obs(time.Millisecond))
	}
	if tb.Len() != 20 {
		t.Errorf("len = %d, want 20", tb.Len())
	}
	if tb.Overflowed() == 0 {
		t.Error("expected overflow")
	}
	// All keys still retrievable and updatable.
	for i := 0; i < 20; i++ {
		sig := Sig{Name: fmt.Sprintf("f%d", i)}
		tb.Update(sig, obs(time.Millisecond))
		s, ok := tb.Lookup(sig)
		if !ok || s.Count != 2 {
			t.Fatalf("key f%d lost after overflow: %+v %v", i, s, ok)
		}
	}
}

func TestTableEntriesSorted(t *testing.T) {
	tb := NewTable(64)
	tb.Update(Sig{Name: "small"}, obs(time.Millisecond))
	tb.Update(Sig{Name: "big"}, obs(time.Second))
	tb.Update(Sig{Name: "mid"}, obs(time.Millisecond*500))
	es := tb.Entries()
	if len(es) != 3 || es[0].Sig.Name != "big" || es[2].Sig.Name != "small" {
		t.Errorf("entries order: %v", es)
	}
}

func TestTableLookupAdvancesProbes(t *testing.T) {
	tb := NewTable(64)
	sig := Sig{Name: "cudaLaunch"}
	tb.Update(sig, obs(time.Millisecond))
	before := tb.Probes()
	tb.Lookup(sig)
	if tb.Probes() <= before {
		t.Error("Lookup did not advance the probe counter")
	}
	before = tb.Probes()
	tb.Lookup(Sig{Name: "absent"})
	if tb.Probes() <= before {
		t.Error("missed Lookup did not advance the probe counter")
	}
}

func TestTableLoadFactor(t *testing.T) {
	tb := NewTable(64)
	if lf := tb.LoadFactor(); lf != 0 {
		t.Errorf("empty load factor = %v", lf)
	}
	for i := 0; i < 32; i++ {
		tb.Update(Sig{Name: fmt.Sprintf("f%d", i)}, obs(time.Millisecond))
	}
	if lf := tb.LoadFactor(); lf != 0.5 {
		t.Errorf("load factor = %v, want 0.5", lf)
	}
}

func TestTableOverflowEntriesOrdering(t *testing.T) {
	tb := NewTable(8) // 8 slots, 7 usable, the rest spills
	const n = 24
	for i := 0; i < n; i++ {
		// Distinct totals so the expected order is exact: f0 largest.
		tb.Update(Sig{Name: fmt.Sprintf("f%02d", i)}, obs(time.Duration(n-i)*time.Millisecond))
	}
	if tb.Overflowed() != n-7 {
		t.Fatalf("overflowed = %d, want %d", tb.Overflowed(), n-7)
	}
	es := tb.Entries()
	if len(es) != n {
		t.Fatalf("entries = %d, want %d", len(es), n)
	}
	for i, e := range es {
		if want := fmt.Sprintf("f%02d", i); e.Sig.Name != want {
			t.Fatalf("entries[%d] = %s, want %s (fixed and spill regions must interleave by total)", i, e.Sig.Name, want)
		}
		if i > 0 && es[i-1].Stats.Total < e.Stats.Total {
			t.Fatalf("entries not sorted by descending total at %d", i)
		}
	}
	// Spilled keys stay fully readable and updatable through Lookup.
	for i := 7; i < n; i++ {
		sig := Sig{Name: fmt.Sprintf("f%02d", i)}
		if s, ok := tb.Lookup(sig); !ok || s.Count != 1 {
			t.Fatalf("overflow lookup %s = %+v, %v", sig.Name, s, ok)
		}
	}
}

// TestHashSigDistribution bounds the worst probe chain at 50% load: with a
// well-mixed hash over realistic signatures (wrapper names, page-aligned
// byte counts), open addressing with linear probing must not develop long
// clusters. The bound of 50 is generous — expected max chain at this load
// is O(log n) — so a failure means the hash lost its avalanche.
func TestHashSigDistribution(t *testing.T) {
	names := []string{
		"cudaMemcpy(D2H)", "cudaMemcpy(H2D)", "cudaLaunch", "MPI_Allreduce",
		"MPI_Send", "cublasDgemm", "cublasSetMatrix", "fwrite",
		"@CUDA_EXEC_STRM00", "cufftExecZ2Z",
	}
	regions := []string{"", "solver", "io-phase"}
	tb := NewTable(4096)
	inserted := 0
	worst := uint64(0)
	for i := 0; inserted < 2048; i++ {
		sig := Sig{
			Name:   names[i%len(names)],
			Bytes:  int64(i/len(names)) * 4096, // page-aligned, low bits zero
			Region: regions[i%len(regions)],
		}
		before := tb.Probes()
		tb.Update(sig, obs(time.Microsecond))
		if chain := tb.Probes() - before; chain > worst {
			worst = chain
		}
		inserted = tb.Len()
	}
	if tb.Overflowed() != 0 {
		t.Fatalf("table overflowed at 50%% load: %d", tb.Overflowed())
	}
	if worst > 50 {
		t.Errorf("max probe chain %d at 50%% load exceeds bound 50", worst)
	}
}

// TestObserveRefMatchesStringPath checks the zero-rehash fast path is
// bit-identical to the string path: same entries, same hashes (hence the
// same probe behaviour), for any mix of names, bytes and regions.
func TestObserveRefMatchesStringPath(t *testing.T) {
	clock := func() time.Duration { return 0 }
	a := NewMonitor(0, "h", "c", clock, 64)
	b := NewMonitor(0, "h", "c", clock, 64)
	names := []string{"cudaMemcpy(D2H)", "MPI_Send", "@CUDA_EXEC_STRM00"}
	refs := make([]SigRef, len(names))
	for i, n := range names {
		refs[i] = NewSigRef(n)
	}
	regionOps := []string{"", "solver", "", "fft", ""}
	for r, region := range regionOps {
		if region != "" {
			a.EnterRegion(region)
			b.EnterRegion(region)
		}
		for i := range names {
			bytes := int64(r*1000 + i*4096)
			a.Observe(names[i], bytes, time.Microsecond)
			b.ObserveRef(refs[i], bytes, time.Microsecond)
		}
		if region != "" {
			a.ExitRegion()
			b.ExitRegion()
		}
	}
	ea, eb := a.Table().Entries(), b.Table().Entries()
	if len(ea) != len(eb) {
		t.Fatalf("entry counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if a.Table().Probes() != b.Table().Probes() {
		t.Errorf("probe counts differ (%d vs %d): fast path hashed differently",
			a.Table().Probes(), b.Table().Probes())
	}
}

func TestSigRefAccessors(t *testing.T) {
	r := NewSigRef("cudaLaunch")
	if r.Name() != "cudaLaunch" {
		t.Errorf("name = %q", r.Name())
	}
	if r.Hash() != hashString("cudaLaunch") {
		t.Error("hash not memoized FNV of name")
	}
}

func TestTableCapacityRounding(t *testing.T) {
	tb := NewTable(100)
	if len(tb.entries) != 128 {
		t.Errorf("capacity = %d, want 128", len(tb.entries))
	}
	if NewTable(0).Len() != 0 {
		t.Error("default table not empty")
	}
}

// Property: updating signature-by-signature matches a reference map, for
// any update sequence (including heavy collisions in a tiny table).
func TestPropTableMatchesMap(t *testing.T) {
	prop := func(names []uint8, durs []uint16) bool {
		n := len(names)
		if len(durs) < n {
			n = len(durs)
		}
		tb := NewTable(16)
		ref := make(map[Sig]*Stats)
		for i := 0; i < n; i++ {
			sig := Sig{Name: fmt.Sprintf("f%d", names[i]%40), Bytes: int64(names[i] % 3)}
			d := time.Duration(durs[i]) * time.Microsecond
			tb.Update(sig, obs(d))
			if s, ok := ref[sig]; ok {
				s.Add(d)
			} else {
				c := obs(d)
				ref[sig] = &c
			}
		}
		if tb.Len() != len(ref) {
			return false
		}
		for sig, want := range ref {
			got, ok := tb.Lookup(sig)
			if !ok || got != *want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: merge is order-insensitive for totals/min/max/count.
func TestPropMergeCommutative(t *testing.T) {
	prop := func(a, b []uint16) bool {
		mk := func(ds []uint16) Stats {
			var s Stats
			for _, d := range ds {
				s.Add(time.Duration(d) * time.Microsecond)
			}
			return s
		}
		x, y := mk(a), mk(b)
		xy, yx := x, y
		xy.Merge(y)
		yx.Merge(x)
		return xy == yx
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTableUpdateHit(b *testing.B) {
	tb := NewTable(DefaultTableSize)
	sig := Sig{Name: "cudaLaunch"}
	o := obs(time.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Update(sig, o)
	}
}

func BenchmarkTableUpdateManyKeys(b *testing.B) {
	tb := NewTable(DefaultTableSize)
	sigs := make([]Sig, 512)
	for i := range sigs {
		sigs[i] = Sig{Name: fmt.Sprintf("MPI_Send"), Bytes: int64(i * 8)}
	}
	o := obs(time.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Update(sigs[i&511], o)
	}
}

// BenchmarkMapUpdateManyKeys is the ablation baseline: a plain Go map in
// place of the fixed open-addressing table.
func BenchmarkMapUpdateManyKeys(b *testing.B) {
	m := make(map[Sig]*Stats)
	sigs := make([]Sig, 512)
	for i := range sigs {
		sigs[i] = Sig{Name: "MPI_Send", Bytes: int64(i * 8)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := sigs[i&511]
		if s, ok := m[sig]; ok {
			s.Add(time.Microsecond)
		} else {
			c := obs(time.Microsecond)
			m[sig] = &c
		}
	}
}

// BenchmarkObserveHot compares the per-event recording cost of the
// string-signature path (rehashes the name on every event) against the
// SigRef fast path (name hashed once at wrapper-construction time). The
// sigref variant must run with zero allocations per op.
func BenchmarkObserveHot(b *testing.B) {
	clock := func() time.Duration { return 0 }
	b.Run("string-sig", func(b *testing.B) {
		m := NewMonitor(0, "host", "bench", clock, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Observe("cudaMemcpy(D2H)", 1<<20, time.Microsecond)
		}
	})
	b.Run("sigref", func(b *testing.B) {
		m := NewMonitor(0, "host", "bench", clock, 1024)
		ref := NewSigRef("cudaMemcpy(D2H)")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.ObserveRef(ref, 1<<20, time.Microsecond)
		}
	})
	// Per-backend energy attribution: the same hot path with each
	// registered device backend's copy-engine wattage priced into the
	// observation. The energy fold must stay allocation-free too.
	for _, d := range devmodel.List() {
		d := d
		b.Run("energy-"+d.Name, func(b *testing.B) {
			m := NewMonitor(0, "host", "bench", clock, 1024)
			ref := NewSigRef("cudaMemcpy(D2H)")
			nj := devmodel.EnergyNJ(d.Power.CopyWatts, time.Microsecond)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.ObserveNRef(ref, 1<<20, Stats{Count: 1, Total: time.Microsecond, Min: time.Microsecond, Max: time.Microsecond, Energy: nj})
			}
		})
	}
}
