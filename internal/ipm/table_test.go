package ipm

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func obs(d time.Duration) Stats { return Stats{Count: 1, Total: d, Min: d, Max: d} }

func TestStatsAdd(t *testing.T) {
	var s Stats
	s.Add(5 * time.Millisecond)
	s.Add(2 * time.Millisecond)
	s.Add(9 * time.Millisecond)
	if s.Count != 3 || s.Total != 16*time.Millisecond {
		t.Errorf("count/total = %d/%v", s.Count, s.Total)
	}
	if s.Min != 2*time.Millisecond || s.Max != 9*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Avg() != 16*time.Millisecond/3 {
		t.Errorf("avg = %v", s.Avg())
	}
	if (Stats{}).Avg() != 0 {
		t.Error("empty avg not zero")
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b Stats
	a.Add(time.Millisecond)
	a.Add(3 * time.Millisecond)
	b.Add(2 * time.Millisecond)
	b.Add(10 * time.Millisecond)
	a.Merge(b)
	if a.Count != 4 || a.Total != 16*time.Millisecond || a.Min != time.Millisecond || a.Max != 10*time.Millisecond {
		t.Errorf("merged = %+v", a)
	}
	var empty Stats
	a.Merge(empty) // no-op
	if a.Count != 4 {
		t.Error("merging empty changed stats")
	}
	empty.Merge(a)
	if empty != a {
		t.Error("merge into empty should copy")
	}
}

func TestTableUpdateLookup(t *testing.T) {
	tb := NewTable(64)
	sig := Sig{Name: "cudaMemcpy(D2H)", Bytes: 1024}
	tb.Update(sig, obs(time.Millisecond))
	tb.Update(sig, obs(3*time.Millisecond))
	s, ok := tb.Lookup(sig)
	if !ok || s.Count != 2 || s.Total != 4*time.Millisecond {
		t.Errorf("lookup = %+v, %v", s, ok)
	}
	if _, ok := tb.Lookup(Sig{Name: "missing"}); ok {
		t.Error("lookup of missing key succeeded")
	}
	if tb.Len() != 1 {
		t.Errorf("len = %d", tb.Len())
	}
}

func TestTableDistinguishesAttributes(t *testing.T) {
	tb := NewTable(64)
	tb.Update(Sig{Name: "MPI_Send", Bytes: 8}, obs(time.Millisecond))
	tb.Update(Sig{Name: "MPI_Send", Bytes: 16}, obs(time.Millisecond))
	tb.Update(Sig{Name: "MPI_Send", Bytes: 8, Region: "solver"}, obs(time.Millisecond))
	if tb.Len() != 3 {
		t.Errorf("len = %d, want 3 distinct signatures", tb.Len())
	}
}

func TestTableOverflowSpills(t *testing.T) {
	tb := NewTable(8) // 8 slots, 7 usable
	for i := 0; i < 20; i++ {
		tb.Update(Sig{Name: fmt.Sprintf("f%d", i)}, obs(time.Millisecond))
	}
	if tb.Len() != 20 {
		t.Errorf("len = %d, want 20", tb.Len())
	}
	if tb.Overflowed() == 0 {
		t.Error("expected overflow")
	}
	// All keys still retrievable and updatable.
	for i := 0; i < 20; i++ {
		sig := Sig{Name: fmt.Sprintf("f%d", i)}
		tb.Update(sig, obs(time.Millisecond))
		s, ok := tb.Lookup(sig)
		if !ok || s.Count != 2 {
			t.Fatalf("key f%d lost after overflow: %+v %v", i, s, ok)
		}
	}
}

func TestTableEntriesSorted(t *testing.T) {
	tb := NewTable(64)
	tb.Update(Sig{Name: "small"}, obs(time.Millisecond))
	tb.Update(Sig{Name: "big"}, obs(time.Second))
	tb.Update(Sig{Name: "mid"}, obs(time.Millisecond*500))
	es := tb.Entries()
	if len(es) != 3 || es[0].Sig.Name != "big" || es[2].Sig.Name != "small" {
		t.Errorf("entries order: %v", es)
	}
}

func TestTableCapacityRounding(t *testing.T) {
	tb := NewTable(100)
	if len(tb.entries) != 128 {
		t.Errorf("capacity = %d, want 128", len(tb.entries))
	}
	if NewTable(0).Len() != 0 {
		t.Error("default table not empty")
	}
}

// Property: updating signature-by-signature matches a reference map, for
// any update sequence (including heavy collisions in a tiny table).
func TestPropTableMatchesMap(t *testing.T) {
	prop := func(names []uint8, durs []uint16) bool {
		n := len(names)
		if len(durs) < n {
			n = len(durs)
		}
		tb := NewTable(16)
		ref := make(map[Sig]*Stats)
		for i := 0; i < n; i++ {
			sig := Sig{Name: fmt.Sprintf("f%d", names[i]%40), Bytes: int64(names[i] % 3)}
			d := time.Duration(durs[i]) * time.Microsecond
			tb.Update(sig, obs(d))
			if s, ok := ref[sig]; ok {
				s.Add(d)
			} else {
				c := obs(d)
				ref[sig] = &c
			}
		}
		if tb.Len() != len(ref) {
			return false
		}
		for sig, want := range ref {
			got, ok := tb.Lookup(sig)
			if !ok || got != *want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: merge is order-insensitive for totals/min/max/count.
func TestPropMergeCommutative(t *testing.T) {
	prop := func(a, b []uint16) bool {
		mk := func(ds []uint16) Stats {
			var s Stats
			for _, d := range ds {
				s.Add(time.Duration(d) * time.Microsecond)
			}
			return s
		}
		x, y := mk(a), mk(b)
		xy, yx := x, y
		xy.Merge(y)
		yx.Merge(x)
		return xy == yx
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTableUpdateHit(b *testing.B) {
	tb := NewTable(DefaultTableSize)
	sig := Sig{Name: "cudaLaunch"}
	o := obs(time.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Update(sig, o)
	}
}

func BenchmarkTableUpdateManyKeys(b *testing.B) {
	tb := NewTable(DefaultTableSize)
	sigs := make([]Sig, 512)
	for i := range sigs {
		sigs[i] = Sig{Name: fmt.Sprintf("MPI_Send"), Bytes: int64(i * 8)}
	}
	o := obs(time.Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Update(sigs[i&511], o)
	}
}

// BenchmarkMapUpdateManyKeys is the ablation baseline: a plain Go map in
// place of the fixed open-addressing table.
func BenchmarkMapUpdateManyKeys(b *testing.B) {
	m := make(map[Sig]*Stats)
	sigs := make([]Sig, 512)
	for i := range sigs {
		sigs[i] = Sig{Name: "MPI_Send", Bytes: int64(i * 8)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := sigs[i&511]
		if s, ok := m[sig]; ok {
			s.Add(time.Microsecond)
		} else {
			c := obs(time.Microsecond)
			m[sig] = &c
		}
	}
}
