package ipm

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/telemetry"
)

func TestMonitorTelemetrySpans(t *testing.T) {
	fc := &fakeClock{}
	m := NewMonitor(3, "dirac15", "./cuda.ipm", fc.clock, 0)
	rec := telemetry.NewRecorder(64)
	m.AttachTelemetry(rec)
	m.Start()

	fc.now = 10 * time.Millisecond
	m.ObserveRef(NewSigRef("cudaMemcpy(D2H)"), 4096, 2*time.Millisecond)

	m.EnterRegion("phase1")
	fc.now = 20 * time.Millisecond
	m.Observe("MPI_Send", 8, time.Millisecond)
	fc.now = 30 * time.Millisecond
	m.ExitRegion()

	spans := rec.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	// Every span lands on the rank's CPU track.
	for _, s := range spans {
		if s.Track != "rank3/cpu" {
			t.Errorf("span %q on track %q, want rank3/cpu", s.Name, s.Track)
		}
	}
	memcpy := spans[0]
	if memcpy.Name != "cudaMemcpy(D2H)" || memcpy.Class != telemetry.ClassSync ||
		memcpy.Start != 8*time.Millisecond || memcpy.End != 10*time.Millisecond ||
		memcpy.Bytes != 4096 {
		t.Errorf("memcpy span = %+v", memcpy)
	}
	send := spans[1]
	if send.Name != "MPI_Send" || send.Class != telemetry.ClassMPI {
		t.Errorf("send span = %+v", send)
	}
	region := spans[2]
	if region.Name != "phase1" || region.Class != telemetry.ClassRegion ||
		region.Start != 10*time.Millisecond || region.End != 30*time.Millisecond {
		t.Errorf("region span = %+v", region)
	}

	// Spans must not perturb the table statistics.
	entries := m.Table().Entries()
	if len(entries) != 2 {
		t.Fatalf("table entries = %d, want 2", len(entries))
	}
}

func TestMonitorTelemetryDetached(t *testing.T) {
	m, fc := newTestMonitor()
	rec := telemetry.NewRecorder(8)
	m.AttachTelemetry(rec)
	m.AttachTelemetry(nil)
	fc.now = time.Millisecond
	m.ObserveRef(NewSigRef("cudaFree"), 0, time.Microsecond)
	if rec.Total() != 0 {
		t.Errorf("detached monitor recorded %d spans", rec.Total())
	}
	if m.Telemetry() != nil {
		t.Errorf("Telemetry() non-nil after detach")
	}
}

func TestMonitorLatencyHistogram(t *testing.T) {
	m, _ := newTestMonitor()
	h := telemetry.NewHistogram("lat", "", telemetry.ExpBuckets(8, 2, 10))
	m.SetLatencyHistogram(h)
	ref := NewSigRef("cudaMemcpy(H2D)")
	for i := 0; i < 100; i++ {
		m.ObserveRef(ref, 1<<20, time.Microsecond)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("histogram count = %d, want 100", got)
	}
	if h.Sum() <= 0 {
		t.Errorf("histogram sum = %g, want > 0", h.Sum())
	}
}

func TestDefaultSpanClasses(t *testing.T) {
	cases := map[string]telemetry.SpanClass{
		"MPI_Allreduce":     telemetry.ClassMPI,
		"cudaMemcpy(D2H)":   telemetry.ClassSync,
		"cublasSgemm":       telemetry.ClassLib,
		"cufftExecC2C":      telemetry.ClassLib,
		HostIdleName:        telemetry.ClassIdle,
		"@CUDA_EXEC_STRM00": telemetry.ClassOther,
		"fwrite":            telemetry.ClassOther,
	}
	for name, want := range cases {
		if got := NewSigRef(name).Class(); got != want {
			t.Errorf("NewSigRef(%q).Class() = %v, want %v", name, got, want)
		}
	}
	if got := NewSigRefClass("cudaLaunch", telemetry.ClassAsync).Class(); got != telemetry.ClassAsync {
		t.Errorf("NewSigRefClass override not honoured")
	}
}

// TestXMLFidelityRoundTrip checks that the hash-table fidelity attributes
// survive the XML log, so ipmparse can reconstruct the degraded-fidelity
// diagnosis post-mortem.
func TestXMLFidelityRoundTrip(t *testing.T) {
	fc := &fakeClock{}
	// A tiny table that the workload overflows.
	m := NewMonitor(0, "dirac1", "./a.out", fc.clock, 4)
	m.Start()
	for i := 0; i < 64; i++ {
		m.Observe("cudaMemcpy(D2H)", int64(i*4096), time.Microsecond)
	}
	fc.now = time.Second
	m.Stop()

	rp := Snapshot(m)
	if rp.Overflow == 0 || rp.LoadFactor == 0 || rp.Probes == 0 {
		t.Fatalf("expected non-zero fidelity stats, got %+v", rp)
	}

	jp := NewJobProfile("./a.out", 1, []RankProfile{rp})
	var sb strings.Builder
	if err := WriteXML(&sb, jp); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, attr := range []string{"hashtable_load=", "hashtable_overflow=", "hashtable_probes="} {
		if !strings.Contains(out, attr) {
			t.Errorf("XML log missing %s:\n%s", attr, out)
		}
	}
	got, err := ParseXML(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	gr := got.Ranks[0]
	if gr.Overflow != rp.Overflow || gr.Probes != rp.Probes {
		t.Errorf("fidelity stats did not round-trip: got %+v, want %+v", gr, rp)
	}
	if d := gr.LoadFactor - rp.LoadFactor; d < -1e-9 || d > 1e-9 {
		t.Errorf("load factor drift: %g != %g", gr.LoadFactor, rp.LoadFactor)
	}
}
