package ipm

import "strings"

// Domain classifies monitored events by the subsystem they belong to, for
// the %comm / CUDA / CUFFT summary block of the full banner.
type Domain int

const (
	DomainOther Domain = iota
	DomainMPI
	DomainCUDA // runtime + driver API host calls
	DomainCUBLAS
	DomainCUFFT
	DomainPseudo // @-entries: device-side or derived metrics
)

func (d Domain) String() string {
	switch d {
	case DomainMPI:
		return "MPI"
	case DomainCUDA:
		return "CUDA"
	case DomainCUBLAS:
		return "CUBLAS"
	case DomainCUFFT:
		return "CUFFT"
	case DomainPseudo:
		return "pseudo"
	}
	return "other"
}

// Classify maps an event name to its domain, mirroring how IPM organises
// its metric hierarchy.
func Classify(name string) Domain {
	switch {
	case strings.HasPrefix(name, "@"):
		return DomainPseudo
	case strings.HasPrefix(name, "MPI_"):
		return DomainMPI
	case strings.HasPrefix(name, "cublas"):
		return DomainCUBLAS
	case strings.HasPrefix(name, "cufft"):
		return DomainCUFFT
	case strings.HasPrefix(name, "cuda"), strings.HasPrefix(name, "cu"):
		return DomainCUDA
	}
	return DomainOther
}

// Pseudo-function entry names used by the CUDA monitoring layer.
const (
	HostIdleName = "@CUDA_HOST_IDLE"
)

// ExecStreamName returns the pseudo-function name for kernel execution
// time in a stream, e.g. "@CUDA_EXEC_STRM00".
func ExecStreamName(stream int) string {
	const digits = "0123456789"
	if stream < 0 {
		stream = 0
	}
	if stream < 100 {
		return "@CUDA_EXEC_STRM" + string([]byte{digits[stream/10], digits[stream%10]})
	}
	// Streams beyond 99 are rare; fall back to multi-digit form.
	s := ""
	for stream > 0 {
		s = string(digits[stream%10]) + s
		stream /= 10
	}
	return "@CUDA_EXEC_STRM" + s
}

// ExecKernelName returns the pseudo-function name for per-kernel execution
// time, used in the XML log's per-kernel breakdown,
// e.g. "@CUDA_EXEC_STRM00:square".
func ExecKernelName(stream int, kernel string) string {
	return ExecStreamName(stream) + ":" + kernel
}
