package ipm

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) clock() time.Duration { return f.now }

func newTestMonitor() (*Monitor, *fakeClock) {
	fc := &fakeClock{}
	return NewMonitor(0, "dirac15", "./cuda.ipm", fc.clock, 0), fc
}

func TestMonitorWallclock(t *testing.T) {
	m, fc := newTestMonitor()
	if m.Wallclock() != 0 {
		t.Error("wallclock before start not zero")
	}
	fc.now = time.Second
	m.Start()
	fc.now = 3 * time.Second
	if m.Wallclock() != 2*time.Second {
		t.Errorf("running wallclock = %v", m.Wallclock())
	}
	m.Stop()
	fc.now = 10 * time.Second
	if m.Wallclock() != 2*time.Second {
		t.Errorf("stopped wallclock = %v", m.Wallclock())
	}
	// Idempotent start/stop.
	m.Start()
	m.Stop()
	if m.Wallclock() != 2*time.Second {
		t.Error("restart changed bracket")
	}
}

func TestMonitorObserveAndTimed(t *testing.T) {
	m, fc := newTestMonitor()
	m.Start()
	m.Observe("cudaMalloc", 0, 2430*time.Millisecond)
	m.Timed("cudaMemcpy(D2H)", 800000, func() { fc.now += 1160 * time.Millisecond })
	s, ok := m.Table().Lookup(Sig{Name: "cudaMemcpy(D2H)", Bytes: 800000})
	if !ok || s.Total != 1160*time.Millisecond {
		t.Errorf("timed entry = %+v %v", s, ok)
	}
}

func TestMonitorRegions(t *testing.T) {
	m, _ := newTestMonitor()
	if m.CurrentRegion() != GlobalRegion {
		t.Error("initial region not global")
	}
	m.Observe("MPI_Send", 8, time.Millisecond)
	m.EnterRegion("solver")
	m.Observe("MPI_Send", 8, time.Millisecond)
	m.EnterRegion("inner")
	if m.CurrentRegion() != "inner" {
		t.Error("nested region not active")
	}
	m.ExitRegion()
	m.ExitRegion()
	m.ExitRegion() // extra pop is a no-op
	if m.CurrentRegion() != GlobalRegion {
		t.Error("region stack did not unwind")
	}
	if m.Table().Len() != 2 {
		t.Errorf("expected 2 signatures (global + solver), got %d", m.Table().Len())
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]Domain{
		"MPI_Allreduce":     DomainMPI,
		"cudaMemcpy(D2H)":   DomainCUDA,
		"cuMemAlloc":        DomainCUDA,
		"cublasSetMatrix":   DomainCUBLAS,
		"cufftExecZ2Z":      DomainCUFFT,
		"@CUDA_EXEC_STRM00": DomainPseudo,
		"@CUDA_HOST_IDLE":   DomainPseudo,
		"fopen":             DomainOther,
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestExecStreamName(t *testing.T) {
	if ExecStreamName(0) != "@CUDA_EXEC_STRM00" {
		t.Errorf("stream 0: %s", ExecStreamName(0))
	}
	if ExecStreamName(7) != "@CUDA_EXEC_STRM07" {
		t.Errorf("stream 7: %s", ExecStreamName(7))
	}
	if ExecStreamName(42) != "@CUDA_EXEC_STRM42" {
		t.Errorf("stream 42: %s", ExecStreamName(42))
	}
	if ExecStreamName(123) != "@CUDA_EXEC_STRM123" {
		t.Errorf("stream 123: %s", ExecStreamName(123))
	}
	if ExecStreamName(-1) != "@CUDA_EXEC_STRM00" {
		t.Errorf("negative stream: %s", ExecStreamName(-1))
	}
	if ExecKernelName(0, "square") != "@CUDA_EXEC_STRM00:square" {
		t.Errorf("kernel name: %s", ExecKernelName(0, "square"))
	}
	if !(Sig{Name: "@CUDA_HOST_IDLE"}).Pseudo() {
		t.Error("pseudo detection failed")
	}
	if (Sig{Name: "cudaMalloc"}).Pseudo() {
		t.Error("non-pseudo misdetected")
	}
}

func makeJobProfile() *JobProfile {
	var ranks []RankProfile
	for r := 0; r < 4; r++ {
		fc := &fakeClock{}
		m := NewMonitor(r, "node0", "app", fc.clock, 0)
		m.Start()
		m.Observe("MPI_Allreduce", 64, time.Duration(r+1)*100*time.Millisecond)
		m.Observe("cudaLaunch", 0, 50*time.Millisecond)
		m.ObserveN(ExecStreamName(0), 0, Stats{Count: 10, Total: 2 * time.Second, Min: time.Millisecond, Max: time.Second})
		m.Observe(HostIdleName, 0, 200*time.Millisecond)
		fc.now = 10 * time.Second
		m.Stop()
		ranks = append(ranks, Snapshot(m))
	}
	return NewJobProfile("app", 4, ranks)
}

func TestJobProfileSpreads(t *testing.T) {
	jp := makeJobProfile()
	if jp.NTasks() != 4 || jp.Wallclock() != 10*time.Second {
		t.Fatalf("ntasks/wall = %d/%v", jp.NTasks(), jp.Wallclock())
	}
	ws := jp.WallclockSpread()
	if ws.Total != 40*time.Second || ws.Avg != 10*time.Second {
		t.Errorf("wallclock spread = %+v", ws)
	}
	ms := jp.DomainSpread(DomainMPI)
	if ms.Min != 100*time.Millisecond || ms.Max != 400*time.Millisecond || ms.Total != time.Second {
		t.Errorf("MPI spread = %+v", ms)
	}
	if got := jp.CommPercent(); got < 2.4 || got > 2.6 {
		t.Errorf("comm%% = %.2f, want 2.5", got)
	}
	if got := jp.GPUPercent(); got != 20 {
		t.Errorf("gpu%% = %.2f, want 20", got)
	}
	if got := jp.HostIdlePercent(); got != 2 {
		t.Errorf("idle%% = %.2f, want 2", got)
	}
	// MPI_Allreduce imbalance: max 400ms, avg 250ms.
	if got := jp.Imbalance("MPI_Allreduce"); got < 1.59 || got > 1.61 {
		t.Errorf("imbalance = %.3f, want 1.6", got)
	}
	if jp.CallCounts(DomainMPI) != 4 {
		t.Errorf("MPI calls = %d", jp.CallCounts(DomainMPI))
	}
}

func TestFuncTotalsMergeAcrossRanks(t *testing.T) {
	jp := makeJobProfile()
	fts := jp.FuncTotals()
	if len(fts) == 0 || fts[0].Name != ExecStreamName(0) {
		t.Fatalf("top entry = %+v", fts)
	}
	for _, ft := range fts {
		if ft.Name == "MPI_Allreduce" {
			if ft.Stats.Count != 4 || ft.Stats.Total != time.Second {
				t.Errorf("allreduce total = %+v", ft.Stats)
			}
			return
		}
	}
	t.Error("MPI_Allreduce missing from totals")
}

func TestBannerCompact(t *testing.T) {
	jp := makeJobProfile()
	var sb strings.Builder
	if err := WriteBanner(&sb, jp, BannerOptions{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"##IPMv2.0", "# command   : app", "# wallclock : 10.00",
		"@CUDA_EXEC_STRM00", "[time]", "[count]", "<%wall>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("banner missing %q:\n%s", want, out)
		}
	}
}

func TestBannerFull(t *testing.T) {
	jp := makeJobProfile()
	jp.Start, jp.Stop = "Tue Sep 28 12:35:09 2010", "Tue Sep 28 12:35:55 2010"
	var sb strings.Builder
	if err := WriteBanner(&sb, jp, BannerOptions{Full: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"mpi_tasks : 4 on 4 nodes", "%comm", "wallclock", "[total]", "<avg>",
		"# MPI", "#calls",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("full banner missing %q:\n%s", want, out)
		}
	}
}

func TestBannerRowFiltering(t *testing.T) {
	jp := makeJobProfile()
	var sb strings.Builder
	if err := WriteBanner(&sb, jp, BannerOptions{MaxRows: 1}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "cudaLaunch") {
		t.Error("MaxRows=1 did not truncate")
	}
	sb.Reset()
	if err := WriteBanner(&sb, jp, BannerOptions{MinTime: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "cudaLaunch") {
		t.Error("MinTime did not filter")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	jp := makeJobProfile()
	jp.Start, jp.Stop = "t0", "t1"
	var sb strings.Builder
	if err := WriteXML(&sb, jp); err != nil {
		t.Fatal(err)
	}
	got, err := ParseXML(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != jp.Command || got.NTasks() != jp.NTasks() || got.Nodes != jp.Nodes {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Wallclock() != jp.Wallclock() {
		t.Errorf("wallclock %v != %v", got.Wallclock(), jp.Wallclock())
	}
	// Every entry must survive with exact stats (nanosecond-rounded).
	for i, r := range jp.Ranks {
		gr := got.Ranks[i]
		if len(gr.Entries) != len(r.Entries) {
			t.Fatalf("rank %d entries %d != %d", i, len(gr.Entries), len(r.Entries))
		}
		for j, e := range r.Entries {
			ge := gr.Entries[j]
			if ge.Sig != e.Sig || ge.Stats.Count != e.Stats.Count {
				t.Errorf("rank %d entry %d: %+v != %+v", i, j, ge, e)
			}
			if d := ge.Stats.Total - e.Stats.Total; d < -time.Microsecond || d > time.Microsecond {
				t.Errorf("rank %d entry %d total drift %v", i, j, d)
			}
		}
	}
}

func TestParseXMLErrors(t *testing.T) {
	if _, err := ParseXML(strings.NewReader("not xml")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseXML(strings.NewReader("<wrong/>")); err == nil {
		t.Error("wrong root accepted")
	}
}

func TestRegionsInXML(t *testing.T) {
	fc := &fakeClock{}
	m := NewMonitor(0, "h", "cmd", fc.clock, 0)
	m.Start()
	m.Observe("MPI_Send", 8, time.Millisecond)
	m.EnterRegion("phase1")
	m.Observe("MPI_Send", 8, time.Millisecond)
	m.ExitRegion()
	fc.now = time.Second
	m.Stop()
	jp := NewJobProfile("cmd", 1, []RankProfile{Snapshot(m)})
	var sb strings.Builder
	if err := WriteXML(&sb, jp); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `name="ipm_global"`) || !strings.Contains(out, `name="phase1"`) {
		t.Errorf("regions missing:\n%s", out)
	}
	got, err := ParseXML(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	var regions []string
	for _, e := range got.Ranks[0].Entries {
		regions = append(regions, e.Sig.Region)
	}
	if len(regions) != 2 {
		t.Fatalf("entries = %v", regions)
	}
}
