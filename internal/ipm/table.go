package ipm

import (
	"sort"
)

// DefaultTableSize is the default capacity of the performance data hash
// table (IPM's MAXSIZE_HASH is of this order).
const DefaultTableSize = 8192

// Table is IPM's central performance data hash table: fixed-capacity open
// addressing with linear probing, so per-event cost is a hash plus a short
// probe and memory stays bounded for arbitrarily long runs. If the fixed
// region fills up, entries spill to an overflow map and the spill is
// counted — a monitored run can then report its own degraded fidelity.
type Table struct {
	mask     uint64
	entries  []entry
	used     int
	overflow map[Sig]*Stats
	probes   uint64 // total probe steps, for diagnostics/benchmarks
}

type entry struct {
	inUse bool
	sig   Sig
	stats Stats
}

// NewTable creates a table with the given capacity rounded up to a power
// of two. capacity <= 0 selects DefaultTableSize.
func NewTable(capacity int) *Table {
	if capacity <= 0 {
		capacity = DefaultTableSize
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Table{
		mask:    uint64(n - 1),
		entries: make([]entry, n),
	}
}

// hash is FNV-1a over the signature fields.
func hashSig(s Sig) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s.Name); i++ {
		h ^= uint64(s.Name[i])
		h *= prime
	}
	for i := 0; i < len(s.Region); i++ {
		h ^= uint64(s.Region[i])
		h *= prime
	}
	b := uint64(s.Bytes)
	for i := 0; i < 8; i++ {
		h ^= (b >> (8 * i)) & 0xFF
		h *= prime
	}
	return h
}

// Update folds one observation into the signature's entry, creating it on
// first use.
func (t *Table) Update(sig Sig, d Stats) {
	// Fast path: fixed open-addressing region.
	idx := hashSig(sig) & t.mask
	for i := uint64(0); i <= t.mask; i++ {
		e := &t.entries[(idx+i)&t.mask]
		t.probes++
		if e.inUse {
			if e.sig == sig {
				e.stats.Merge(d)
				return
			}
			continue
		}
		// Leave one slot of headroom so probes of absent keys terminate.
		if t.used < len(t.entries)-1 {
			e.inUse = true
			e.sig = sig
			e.stats = d
			t.used++
			return
		}
		break
	}
	// Spill path.
	if t.overflow == nil {
		t.overflow = make(map[Sig]*Stats)
	}
	if s, ok := t.overflow[sig]; ok {
		s.Merge(d)
	} else {
		c := d
		t.overflow[sig] = &c
	}
}

// Observe is the common single-observation form of Update.
func (t *Table) Observe(sig Sig, d Stats) { t.Update(sig, d) }

// Lookup returns the statistics for a signature and whether it exists.
func (t *Table) Lookup(sig Sig) (Stats, bool) {
	idx := hashSig(sig) & t.mask
	for i := uint64(0); i <= t.mask; i++ {
		e := &t.entries[(idx+i)&t.mask]
		if !e.inUse {
			break
		}
		if e.sig == sig {
			return e.stats, true
		}
	}
	if s, ok := t.overflow[sig]; ok {
		return *s, true
	}
	return Stats{}, false
}

// Len returns the number of distinct signatures stored.
func (t *Table) Len() int { return t.used + len(t.overflow) }

// Overflowed returns the number of signatures that spilled out of the
// fixed region.
func (t *Table) Overflowed() int { return len(t.overflow) }

// Probes returns the accumulated probe count (a load-factor diagnostic).
func (t *Table) Probes() uint64 { return t.probes }

// Entry is a flattened (signature, statistics) pair.
type Entry struct {
	Sig   Sig
	Stats Stats
}

// Entries returns all entries sorted by descending total time, ties broken
// by name then bytes — the order the banner reports.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, t.Len())
	for i := range t.entries {
		if t.entries[i].inUse {
			out = append(out, Entry{t.entries[i].sig, t.entries[i].stats})
		}
	}
	for sig, s := range t.overflow {
		out = append(out, Entry{sig, *s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stats.Total != out[j].Stats.Total {
			return out[i].Stats.Total > out[j].Stats.Total
		}
		if out[i].Sig.Name != out[j].Sig.Name {
			return out[i].Sig.Name < out[j].Sig.Name
		}
		return out[i].Sig.Bytes < out[j].Sig.Bytes
	})
	return out
}
