package ipm

import (
	"sort"
)

// DefaultTableSize is the default capacity of the performance data hash
// table (IPM's MAXSIZE_HASH is of this order).
const DefaultTableSize = 8192

// Table is IPM's central performance data hash table: fixed-capacity open
// addressing with linear probing, so per-event cost is a hash plus a short
// probe and memory stays bounded for arbitrarily long runs. If the fixed
// region fills up, entries spill to an overflow map and the spill is
// counted — a monitored run can then report its own degraded fidelity.
type Table struct {
	mask     uint64
	entries  []entry
	used     int
	overflow map[Sig]*Stats
	probes   uint64 // total probe steps, for diagnostics/benchmarks
}

type entry struct {
	inUse bool
	sig   Sig
	stats Stats
}

// NewTable creates a table with the given capacity rounded up to a power
// of two. capacity <= 0 selects DefaultTableSize.
func NewTable(capacity int) *Table {
	if capacity <= 0 {
		capacity = DefaultTableSize
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Table{
		mask:    uint64(n - 1),
		entries: make([]entry, n),
	}
}

// FNV-1a parameters, shared by hashString and the per-event mixer.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashString is FNV-1a over one string. Wrapper layers call it once per
// constant event name (via NewSigRef) and the monitor once per region
// change; the per-event fast path never rehashes a string.
func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mixSig combines the memoized name and region hashes with the bytes
// attribute into the table hash. This is the only hashing work on the
// per-event fast path: two multiplies plus a splitmix-style finalizer so
// the low bits (the table index) depend on every input bit even for
// page-aligned byte counts.
func mixSig(nameHash, regionHash uint64, bytes int64) uint64 {
	h := nameHash
	h = (h ^ regionHash) * fnvPrime
	h = (h ^ uint64(bytes)) * fnvPrime
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashSig hashes a full signature; the string-keyed slow path of Update
// and Lookup. It agrees with the SigRef fast path by construction.
func hashSig(s Sig) uint64 {
	return mixSig(hashString(s.Name), hashString(s.Region), s.Bytes)
}

// Update folds one observation into the signature's entry, creating it on
// first use.
func (t *Table) Update(sig Sig, d Stats) { t.UpdateHashed(hashSig(sig), sig, d) }

// UpdateHashed is Update with the signature hash supplied by the caller —
// the zero-rehash fast path used by Monitor.ObserveRef. h must equal
// hashSig(sig).
func (t *Table) UpdateHashed(h uint64, sig Sig, d Stats) {
	// Fast path: fixed open-addressing region.
	idx := h & t.mask
	for i := uint64(0); i <= t.mask; i++ {
		e := &t.entries[(idx+i)&t.mask]
		t.probes++
		if e.inUse {
			if e.sig == sig {
				e.stats.Merge(d)
				return
			}
			continue
		}
		// Leave one slot of headroom so probes of absent keys terminate.
		if t.used < len(t.entries)-1 {
			e.inUse = true
			e.sig = sig
			e.stats = d
			t.used++
			return
		}
		break
	}
	// Spill path.
	if t.overflow == nil {
		t.overflow = make(map[Sig]*Stats)
	}
	if s, ok := t.overflow[sig]; ok {
		s.Merge(d)
	} else {
		c := d
		t.overflow[sig] = &c
	}
}

// Observe is the common single-observation form of Update.
func (t *Table) Observe(sig Sig, d Stats) { t.Update(sig, d) }

// Lookup returns the statistics for a signature and whether it exists.
// Like Update it advances the probe counter, so probe statistics reflect
// reads as well as writes.
func (t *Table) Lookup(sig Sig) (Stats, bool) {
	idx := hashSig(sig) & t.mask
	for i := uint64(0); i <= t.mask; i++ {
		e := &t.entries[(idx+i)&t.mask]
		t.probes++
		if !e.inUse {
			break
		}
		if e.sig == sig {
			return e.stats, true
		}
	}
	if s, ok := t.overflow[sig]; ok {
		return *s, true
	}
	return Stats{}, false
}

// Len returns the number of distinct signatures stored.
func (t *Table) Len() int { return t.used + len(t.overflow) }

// Overflowed returns the number of signatures that spilled out of the
// fixed region.
func (t *Table) Overflowed() int { return len(t.overflow) }

// Probes returns the accumulated probe count (a load-factor diagnostic).
func (t *Table) Probes() uint64 { return t.probes }

// LoadFactor returns the fill ratio of the fixed open-addressing region,
// in [0, 1]. The banner's degraded-fidelity note reports it when entries
// have spilled to the overflow map.
func (t *Table) LoadFactor() float64 {
	if len(t.entries) == 0 {
		return 0
	}
	return float64(t.used) / float64(len(t.entries))
}

// Entry is a flattened (signature, statistics) pair.
type Entry struct {
	Sig   Sig
	Stats Stats
}

// Entries returns all entries sorted by descending total time, ties broken
// by name, bytes, then region — the order the banner reports. Fixed-region
// and spilled entries are interleaved by the same ordering, so overflow
// does not perturb the report beyond its own (counted) fidelity loss.
func (t *Table) Entries() []Entry {
	out := make(entrySlice, 0, t.Len())
	for i := range t.entries {
		if t.entries[i].inUse {
			out = append(out, Entry{t.entries[i].sig, t.entries[i].stats})
		}
	}
	for sig, s := range t.overflow {
		out = append(out, Entry{sig, *s})
	}
	sort.Sort(out)
	return out
}

// entrySlice sorts without the per-call closure and reflection of
// sort.Slice — Entries sits on the Snapshot path of every rank.
type entrySlice []Entry

func (s entrySlice) Len() int      { return len(s) }
func (s entrySlice) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s entrySlice) Less(i, j int) bool {
	if s[i].Stats.Total != s[j].Stats.Total {
		return s[i].Stats.Total > s[j].Stats.Total
	}
	if s[i].Sig.Name != s[j].Sig.Name {
		return s[i].Sig.Name < s[j].Sig.Name
	}
	if s[i].Sig.Bytes != s[j].Sig.Bytes {
		return s[i].Sig.Bytes < s[j].Sig.Bytes
	}
	return s[i].Sig.Region < s[j].Sig.Region
}
