package ipm

// SigRef is a precomputed signature handle: an event name plus its
// memoized hash. Wrapper layers construct one SigRef per monitored symbol
// (once, at wrapper construction or package init) and pass it to
// Monitor.ObserveRef on every event, so the hot path never rehashes the
// name string. The bytes attribute and the active region are folded in
// per event by mixSig, which costs two multiplies and a finalizer — the
// region's own string hash is memoized by the monitor's region stack.
type SigRef struct {
	name string
	hash uint64
}

// NewSigRef hashes name once and returns the reusable handle. SigRef is
// immutable and safe to share across goroutines.
func NewSigRef(name string) SigRef {
	return SigRef{name: name, hash: hashString(name)}
}

// Name returns the event name the handle was built from.
func (r SigRef) Name() string { return r.name }

// Hash returns the memoized FNV-1a hash of the name.
func (r SigRef) Hash() uint64 { return r.hash }
