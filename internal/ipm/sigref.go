package ipm

import (
	"strings"

	"ipmgo/internal/telemetry"
)

// SigRef is a precomputed signature handle: an event name plus its
// memoized hash and telemetry span class. Wrapper layers construct one
// SigRef per monitored symbol (once, at wrapper construction or package
// init) and pass it to Monitor.ObserveRef on every event, so the hot
// path never rehashes the name string or reclassifies it. The bytes
// attribute and the active region are folded in per event by mixSig,
// which costs two multiplies and a finalizer — the region's own string
// hash is memoized by the monitor's region stack.
type SigRef struct {
	name  string
	hash  uint64
	class telemetry.SpanClass
}

// NewSigRef hashes name once and returns the reusable handle, with the
// telemetry span class derived from the name's domain. SigRef is
// immutable and safe to share across goroutines.
func NewSigRef(name string) SigRef {
	return NewSigRefClass(name, DefaultSpanClass(name))
}

// NewSigRefClass is NewSigRef with an explicit span class, for symbols
// whose class the name alone cannot determine (the asynchronous CUDA
// calls, the host-idle pseudo entry).
func NewSigRefClass(name string, class telemetry.SpanClass) SigRef {
	return SigRef{name: name, hash: hashString(name), class: class}
}

// DefaultSpanClass maps an event name to its telemetry span class by
// domain. Host-side CUDA calls default to the synchronous class; wrapper
// layers override per symbol via NewSigRefClass.
func DefaultSpanClass(name string) telemetry.SpanClass {
	switch Classify(name) {
	case DomainMPI:
		return telemetry.ClassMPI
	case DomainCUDA:
		return telemetry.ClassSync
	case DomainCUBLAS, DomainCUFFT:
		return telemetry.ClassLib
	case DomainPseudo:
		if strings.HasPrefix(name, HostIdleName) {
			return telemetry.ClassIdle
		}
		return telemetry.ClassOther
	}
	return telemetry.ClassOther
}

// Name returns the event name the handle was built from.
func (r SigRef) Name() string { return r.name }

// Hash returns the memoized FNV-1a hash of the name.
func (r SigRef) Hash() uint64 { return r.hash }

// Class returns the telemetry span class recorded for this symbol.
func (r SigRef) Class() telemetry.SpanClass { return r.class }
