package workloads

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/perfmodel"
)

// HPLConfig parameterises the CUDA-accelerated High Performance Linpack
// model (Fatica-style HPL, the paper's Figs. 8 and 9).
//
// The model follows the structure of the real code: a right-looking LU
// factorisation where each iteration factorises a panel on the CPU,
// broadcasts it, and updates the trailing submatrix on the GPU with the
// CUBLAS kernels the paper's Fig. 9 lists (dgemm_nn_e_kernel,
// dgemm_nt_tex_kernel, dtrsm_gpu_64_mm, transpose). Transfers are
// asynchronous on a dedicated stream (so @CUDA_HOST_IDLE stays near zero)
// and the code synchronises manually through the CUDA event API, which is
// where its residual 2-5 s per rank of cudaEventSynchronize time comes
// from. Kernel durations shrink as the trailing matrix shrinks.
type HPLConfig struct {
	// Iterations is the number of panel steps (default 60).
	Iterations int
	// Scale multiplies every duration and byte count; 1.0 reproduces the
	// paper's ~126 s run on 16 nodes, tests use small values.
	Scale float64
	// SyncTransfers switches the trailing-update transfers to synchronous
	// cudaMemcpy — the untuned variant whose host idle time IPM would
	// flag (kept for the overlap example and ablations).
	SyncTransfers bool
}

// DefaultHPL returns the configuration calibrated against the paper's
// 16-node runs (mean runtime 126.40 s).
func DefaultHPL() HPLConfig { return HPLConfig{Iterations: 60, Scale: 1.0} }

// hplKernels are the four GPU kernels of CUDA HPL with their peak
// per-iteration durations; nn/nt shrink quadratically with the remaining
// fraction, trsm/transpose linearly.
var hplKernels = []struct {
	name      string
	peak      time.Duration
	quadratic bool
}{
	{"dgemm_nn_e_kernel", 4199 * time.Millisecond, true},
	{"dgemm_nt_tex_kernel", 1101 * time.Millisecond, true},
	{"dtrsm_gpu_64_mm", 295 * time.Millisecond, false},
	{"transpose", 147 * time.Millisecond, false},
}

// HPL runs the Linpack model in the environment.
func HPL(env *cluster.Env, cfg HPLConfig) error {
	if cfg.Iterations <= 0 {
		return fmt.Errorf("workloads: hpl: %d iterations", cfg.Iterations)
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	scale := func(d time.Duration) time.Duration { return time.Duration(float64(d) * cfg.Scale) }

	stream, err := env.CUDA.StreamCreate()
	if err != nil {
		return err
	}
	update, err := env.CUDA.EventCreate()
	if err != nil {
		return err
	}
	const panelBytes = 20 << 20
	dPanel, err := env.CUDA.Malloc(panelBytes)
	if err != nil {
		return err
	}
	dOut, err := env.CUDA.Malloc(panelBytes / 2)
	if err != nil {
		return err
	}

	// Per-iteration buffers and launch descriptors are hoisted out of the
	// loop: Bcast/Allreduce copy or consume their arguments before any
	// rank returns from the collective, and LaunchKernel reads the Func at
	// launch time, so reuse is safe and keeps the panel loop off the heap.
	kernFns := make([]*cudart.Func, len(hplKernels))
	for ki, k := range hplKernels {
		kernFns[ki] = &cudart.Func{Name: k.name}
	}
	panelBuf := make([]byte, int(4<<20*cfg.Scale)+1)
	pivot := mpisim.Float64Bytes([]float64{0})
	recv := make([]byte, 8)

	for i := 0; i < cfg.Iterations; i++ {
		f := 1 - float64(i)/float64(cfg.Iterations)
		f2 := f * f

		// Stage the panel on the GPU and run the trailing update
		// asynchronously.
		pb := int64(float64(panelBytes) * f * cfg.Scale)
		if cfg.SyncTransfers {
			if err := env.CUDA.Memcpy(cudart.DevicePtr(dPanel), cudart.HostPtr(nil), pb, cudart.MemcpyHostToDevice); err != nil {
				return err
			}
		} else if err := env.CUDA.MemcpyAsync(cudart.DevicePtr(dPanel), cudart.HostPtr(nil), pb, cudart.MemcpyHostToDevice, stream); err != nil {
			return err
		}

		var gpuWork time.Duration
		for ki, k := range hplKernels {
			frac := f
			if k.quadratic {
				frac = f2
			}
			// Kernel times carry a whisper of per-launch variation (clock
			// throttling, memory layout), so the cross-rank balance is
			// tight but not exactly 1.0.
			d := time.Duration(float64(scale(k.peak)) * frac * (1 + (env.Noise.Factor()-1)*0.1))
			if d < time.Microsecond {
				d = time.Microsecond
			}
			gpuWork += d
			fn := kernFns[ki]
			fn.FixedCost = perfmodel.KernelCost{Fixed: d}
			if err := env.CUDA.LaunchKernel(fn, cudart.Dim3{X: 512}, cudart.Dim3{X: 128}, stream); err != nil {
				return err
			}
		}
		if cfg.SyncTransfers {
			if err := env.CUDA.Memcpy(cudart.HostPtr(nil), cudart.DevicePtr(dOut), pb/2, cudart.MemcpyDeviceToHost); err != nil {
				return err
			}
		} else if err := env.CUDA.MemcpyAsync(cudart.HostPtr(nil), cudart.DevicePtr(dOut), pb/2, cudart.MemcpyDeviceToHost, stream); err != nil {
			return err
		}
		if err := env.CUDA.EventRecord(update, stream); err != nil {
			return err
		}

		// CPU panel factorisation overlaps the GPU update; it is tuned to
		// ~97% of the GPU time, so cudaEventSynchronize absorbs the rest
		// (2-5 s per rank over the full run, as the paper reports).
		env.Compute(time.Duration(0.97 * float64(gpuWork)))

		// Manual synchronisation through the event API, as CUDA HPL does.
		if err := env.CUDA.EventSynchronize(update); err != nil {
			return err
		}

		// Broadcast the factored panel (rotating root) and agree on the
		// pivot.
		root := i % env.Size
		if err := env.MPI.Bcast(panelBuf[:int(4<<20*f*cfg.Scale)+1], root); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(pivot, math.Float64bits(f))
		if err := env.MPI.Allreduce(pivot, recv, mpisim.OpMax); err != nil {
			return err
		}
	}

	// Final residual check: one blocking readback and a reduction.
	if err := env.CUDA.Memcpy(cudart.HostPtr(nil), cudart.DevicePtr(dOut), 1<<20, cudart.MemcpyDeviceToHost); err != nil {
		return err
	}
	if err := env.MPI.Allreduce(mpisim.Float64Bytes([]float64{1}), recv, mpisim.OpSum); err != nil {
		return err
	}
	if err := env.CUDA.Free(dPanel); err != nil {
		return err
	}
	if err := env.CUDA.Free(dOut); err != nil {
		return err
	}
	if err := env.CUDA.EventDestroy(update); err != nil {
		return err
	}
	return env.CUDA.StreamDestroy(stream)
}
