package workloads

import (
	"testing"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
)

func monitoredCfg(nodes, rpn int) cluster.Config {
	cfg := cluster.Dirac(nodes, rpn)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	return cfg
}

func funcStats(jp *ipm.JobProfile, name string) ipm.Stats {
	for _, ft := range jp.FuncTotals() {
		if ft.Name == name {
			return ft.Stats
		}
	}
	return ipm.Stats{}
}

func TestSquareReproducesFig456Semantics(t *testing.T) {
	cfg := monitoredCfg(1, 1)
	cfg.Command = "./cuda.ipm"
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := Square(env, DefaultSquare()); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	jp := res.Profile
	// cudaMalloc carries context init (~1.29 s, Figs. 5/6).
	if s := funcStats(jp, "cudaMalloc"); s.Total < time.Second {
		t.Errorf("cudaMalloc = %v, want >= 1s (context init)", s.Total)
	}
	// Kernel ~1.15 s on stream 0.
	exec := funcStats(jp, ipm.ExecStreamName(0))
	if exec.Count != 1 || exec.Total < 1100*time.Millisecond || exec.Total > 1250*time.Millisecond {
		t.Errorf("@CUDA_EXEC_STRM00 = %+v, want ~1.15s", exec)
	}
	// Host idle absorbs the kernel wait; D2H transfer itself is small.
	idle := funcStats(jp, ipm.HostIdleName)
	if idle.Total < time.Second {
		t.Errorf("@CUDA_HOST_IDLE = %v, want ~1.15s", idle.Total)
	}
	if d2h := funcStats(jp, "cudaMemcpy(D2H)"); d2h.Total > 50*time.Millisecond {
		t.Errorf("cudaMemcpy(D2H) = %v, want small after idle separation", d2h.Total)
	}
	if s := funcStats(jp, "cudaSetupArgument"); s.Count != 2 {
		t.Errorf("cudaSetupArgument count = %d, want 2", s.Count)
	}
}

func TestSquareFunctional(t *testing.T) {
	cfg := cluster.Dirac(1, 1)
	if _, err := cluster.Run(cfg, func(env *cluster.Env) {
		sq := DefaultSquare()
		sq.N = 1000
		sq.Functional = true
		if err := Square(env, sq); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSDKBenchmarkTotalsMatchTable(t *testing.T) {
	for _, b := range SDKSuite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cfg := cluster.Dirac(1, 1)
			cfg.CUDAProfile = true
			res, err := cluster.Run(cfg, func(env *cluster.Env) {
				if err := b.Run(env); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			prof := res.Profilers[0]
			if prof.Invocations() != b.Invocations {
				t.Errorf("invocations = %d, want %d", prof.Invocations(), b.Invocations)
			}
			got := prof.TotalKernelTime()
			diff := float64(got-b.TotalGPU) / float64(b.TotalGPU)
			if diff < -0.001 || diff > 0.001 {
				t.Errorf("total GPU = %v, want %v (diff %.4f)", got, b.TotalGPU, diff)
			}
		})
	}
}

func TestSDKMonitoredKernelTimingAboveProfiler(t *testing.T) {
	b := SDKSuite()[7] // scan: the shortest kernels, largest relative error
	cfg := monitoredCfg(1, 1)
	cfg.CUDAProfile = true
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := b.Run(env); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	profiler := res.Profilers[0].TotalKernelTime()
	var ipmTotal time.Duration
	var ipmCount int64
	for _, ft := range res.Profile.FuncTotals() {
		if ft.Name == ipm.ExecStreamName(0) {
			ipmTotal, ipmCount = ft.Stats.Total, ft.Stats.Count
		}
	}
	if ipmCount != int64(b.Invocations) {
		t.Fatalf("IPM timed %d kernels, want %d", ipmCount, b.Invocations)
	}
	if ipmTotal <= profiler {
		t.Errorf("IPM %v should exceed profiler %v (event overhead)", ipmTotal, profiler)
	}
	rel := float64(ipmTotal-profiler) / float64(profiler)
	if rel > 0.03 {
		t.Errorf("relative error %.4f too large", rel)
	}
}

func TestHPLShape(t *testing.T) {
	cfg := monitoredCfg(4, 1)
	cfg.NoiseAmp = 0.03
	cfg.NoiseSeed = 1
	hpl := HPLConfig{Iterations: 12, Scale: 0.02}
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := HPL(env, hpl); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	jp := res.Profile
	// All four HPL kernels appear, dgemm_nn dominating.
	nn := funcStats(jp, ipm.ExecKernelName(1, "dgemm_nn_e_kernel"))
	if nn.Count != int64(12*jp.NTasks()) {
		t.Errorf("dgemm_nn count = %d", nn.Count)
	}
	for _, k := range []string{"dgemm_nt_tex_kernel", "dtrsm_gpu_64_mm", "transpose"} {
		s := funcStats(jp, ipm.ExecKernelName(1, k))
		if s.Count == 0 {
			t.Errorf("kernel %s missing", k)
		}
		if s.Total >= nn.Total {
			t.Errorf("%s (%v) should be below dgemm_nn (%v)", k, s.Total, nn.Total)
		}
	}
	// Async transfers: near-zero host idle.
	if idle := funcStats(jp, ipm.HostIdleName); float64(idle.Total) > 0.01*float64(jp.WallclockSpread().Total) {
		t.Errorf("host idle = %v, want ~0 for async HPL", idle.Total)
	}
	// Manual event synchronisation present and a small share of wall.
	sync := funcStats(jp, "cudaEventSynchronize")
	if sync.Count == 0 {
		t.Error("no cudaEventSynchronize recorded")
	}
	wall := jp.WallclockSpread().Total
	if frac := float64(sync.Total) / float64(wall); frac > 0.15 {
		t.Errorf("eventSynchronize fraction = %.3f, want small residual", frac)
	}
}

func TestHPLSyncTransfersAblationShowsIdle(t *testing.T) {
	cfg := monitoredCfg(2, 1)
	hpl := HPLConfig{Iterations: 8, Scale: 0.02, SyncTransfers: true}
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := HPL(env, hpl); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if idle := funcStats(res.Profile, ipm.HostIdleName); idle.Count == 0 {
		t.Error("sync-transfer HPL should show host idle time")
	}
}

func runParatec(t *testing.T, procs int, useCUBLAS bool) *cluster.Result {
	t.Helper()
	nodes := 4
	cfg := monitoredCfg(nodes, procs/nodes)
	cfg.LibCostOnly = true
	pc := DefaultParatec(useCUBLAS)
	pc.Iterations = 2
	pc.PlaneWaves = 80000
	pc.HostOtherPerIter = 20 * time.Second
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := Paratec(env, pc); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParatecCUBLASFasterThanMKL(t *testing.T) {
	mkl := runParatec(t, 4, false)
	cub := runParatec(t, 4, true)
	if cub.Wallclock >= mkl.Wallclock {
		t.Errorf("CUBLAS (%v) should beat MKL (%v)", cub.Wallclock, mkl.Wallclock)
	}
	// Thunking: transfers dwarf the zgemm call itself.
	set := funcStats(cub.Profile, "cublasSetMatrix")
	get := funcStats(cub.Profile, "cublasGetMatrix")
	zg := funcStats(cub.Profile, "cublasZgemm")
	if set.Count == 0 || get.Count == 0 || zg.Count == 0 {
		t.Fatal("thunking call sequence missing")
	}
	if set.Total+get.Total <= zg.Total {
		t.Errorf("transfers (%v) should dwarf zgemm (%v)", set.Total+get.Total, zg.Total)
	}
}

func TestParatecGatherGrowsSuperLinearly(t *testing.T) {
	small := runParatec(t, 4, true)
	big := runParatec(t, 16, true)
	gs := funcStats(small.Profile, "MPI_Gather").Total / 4
	gb := funcStats(big.Profile, "MPI_Gather").Total / 16
	// Per-rank gather time should grow much faster than linearly in p.
	if float64(gb) < 3*float64(gs) {
		t.Errorf("per-rank gather p=16 (%v) vs p=4 (%v): want super-linear growth", gb, gs)
	}
}

// runAmber executes the Amber model for the given number of steps.
func runAmber(t *testing.T, steps int) *ipm.JobProfile {
	t.Helper()
	cfg := monitoredCfg(4, 1)
	cfg.Runtime = AmberRuntimeOptions()
	cfg.Command = "pmemd.cuda_MPI -O -i mdin -c inpcrd.equil"
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := Amber(env, AmberConfig{Steps: steps}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Profile
}

func TestAmberShape(t *testing.T) {
	jp := runAmber(t, 200)

	// Steady-state percentages: startup (context init, device queries)
	// amortises over 10000 steps in the paper's run; a short test run
	// measures the marginal per-step shares by differencing two runs.
	short := runAmber(t, 100)
	dWall := jp.WallclockSpread().Total - short.WallclockSpread().Total
	gpuOf := func(p *ipm.JobProfile) time.Duration {
		var g time.Duration
		for _, ft := range p.FuncTotals() {
			if ft.Name == ipm.ExecStreamName(0) {
				g = ft.Stats.Total
			}
		}
		return g
	}
	gpuPct := 100 * float64(gpuOf(jp)-gpuOf(short)) / float64(dWall)
	if gpuPct < 31 || gpuPct > 42 {
		t.Errorf("steady-state GPU%% = %.2f, want ~36", gpuPct)
	}
	dSync := funcStats(jp, "cudaThreadSynchronize").Total - funcStats(short, "cudaThreadSynchronize").Total
	syncPct := 100 * float64(dSync) / float64(dWall)
	if syncPct < 17 || syncPct > 28 {
		t.Errorf("steady-state threadSync%% = %.2f, want ~22.5", syncPct)
	}
	// Host idle near zero despite synchronous transfers.
	if p := jp.HostIdlePercent(); p > 0.5 {
		t.Errorf("host idle %% = %.2f, want ~0", p)
	}
	// 39 distinct Amber kernels (the CUFFT kernel is accounted to the
	// CUFFT library, as in the paper).
	kernels := make(map[string]bool)
	for _, ft := range jp.FuncTotals() {
		if n := ft.Name; len(n) > len("@CUDA_EXEC_STRM00:") && n[:15] == "@CUDA_EXEC_STRM" {
			for i := range n {
				if n[i] == ':' {
					kernels[n[i+1:]] = true
					break
				}
			}
		}
	}
	delete(kernels, "cufft_z2z_kernel")
	if len(kernels) != 39 {
		t.Errorf("distinct kernels = %d, want 39", len(kernels))
	}
	// Imbalance on ReduceForces/ClearForces, balance on PMEShake.
	rf := jp.Imbalance(ipm.ExecKernelName(0, "ReduceForces"))
	if rf < 1.3 || rf > 1.8 {
		t.Errorf("ReduceForces imbalance = %.2f, want ~1.55", rf)
	}
	if sh := jp.Imbalance(ipm.ExecKernelName(0, "PMEShake")); sh > 1.1 {
		t.Errorf("PMEShake imbalance = %.2f, want balanced", sh)
	}
	// CUFFT on rank 0 only.
	fft := funcStats(jp, "cufftExecZ2Z")
	if fft.Count == 0 {
		t.Error("no CUFFT usage")
	}
	r0 := jp.Ranks[0].FuncTime("cufftExecZ2Z")
	if r0 == 0 {
		t.Error("rank 0 has no CUFFT time")
	}
	for _, r := range jp.Ranks[1:] {
		if r.FuncTime("cufftExecZ2Z") != 0 {
			t.Errorf("rank %d unexpectedly uses CUFFT", r.Rank)
		}
	}
	// Expensive cudaGetDeviceCount (2 calls x ~0.52 s per rank).
	gdc := funcStats(jp, "cudaGetDeviceCount")
	if gdc.Count != int64(2*jp.NTasks()) || gdc.Total < time.Duration(jp.NTasks())*time.Second {
		t.Errorf("cudaGetDeviceCount = %+v", gdc)
	}
	// Call-count ratios per step: launches ~12/step, getLastError ~10.7.
	steps := float64(200 * jp.NTasks())
	if c := float64(funcStats(jp, "cudaLaunch").Count) / steps; c < 11.5 || c > 12.5 {
		t.Errorf("launches/step = %.2f, want ~12", c)
	}
	if c := float64(funcStats(jp, "cudaGetLastError").Count) / steps; c < 10 || c > 11.5 {
		t.Errorf("getLastError/step = %.2f, want ~10.7", c)
	}
	if c := float64(funcStats(jp, "cudaMemcpyToSymbol").Count) / steps; c < 1.6 || c > 1.9 {
		t.Errorf("memcpyToSymbol/step = %.2f, want ~1.75", c)
	}
}
