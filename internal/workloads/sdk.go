package workloads

import (
	"fmt"
	"math/rand"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/perfmodel"
)

// SDKBenchmark models one CUDA SDK example used in the paper's Table I:
// the kernel invocation counts are taken from the table and the kernel
// durations are calibrated so that the total GPU time matches the
// published CUDA-profiler column. Per-invocation durations vary
// deterministically (seeded) around the mean, as in the real benchmarks.
type SDKBenchmark struct {
	Name        string
	Kernel      string
	Invocations int
	TotalGPU    time.Duration // published CUDA-profiler total
	Streams     int           // concurrent streams (concurrentKernels: 8)
	BatchSize   int           // launches between D2H transfers
}

// SDKSuite returns the eight benchmarks of Table I with the paper's
// invocation counts and total kernel times.
func SDKSuite() []SDKBenchmark {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	return []SDKBenchmark{
		{Name: "BlackScholes", Kernel: "BlackScholesGPU", Invocations: 512, TotalGPU: ms(2540.677), BatchSize: 64},
		{Name: "FDTD3d", Kernel: "FiniteDifferencesKernel", Invocations: 5, TotalGPU: ms(101.354), BatchSize: 1},
		{Name: "MersenneTwister", Kernel: "RandomGPU", Invocations: 202, TotalGPU: ms(1126.475), BatchSize: 32},
		{Name: "MonteCarlo", Kernel: "MonteCarloOneBlockPerOption", Invocations: 2, TotalGPU: ms(1.988), BatchSize: 1},
		{Name: "concurrentKernels", Kernel: "mykernel", Invocations: 9, TotalGPU: ms(613.755), Streams: 8, BatchSize: 9},
		{Name: "eigenvalues", Kernel: "bisectKernelLarge", Invocations: 300, TotalGPU: ms(5328.266), BatchSize: 30},
		{Name: "quasirandomGenerator", Kernel: "quasirandomGeneratorKernel", Invocations: 42, TotalGPU: ms(39.536), BatchSize: 6},
		{Name: "scan", Kernel: "scanExclusiveShared", Invocations: 3300, TotalGPU: ms(1412.912), BatchSize: 300},
	}
}

// Run executes the benchmark model in the environment: upload input,
// launch the kernels in batches (each batch followed by a blocking D2H
// readback, which is where IPM polls the kernel timing table), download
// the result.
func (b SDKBenchmark) Run(env *cluster.Env) error {
	if b.Invocations <= 0 {
		return fmt.Errorf("workloads: %s: no invocations", b.Name)
	}
	rng := rand.New(rand.NewSource(int64(len(b.Name)) * 7919))
	mean := float64(b.TotalGPU) / float64(b.Invocations)

	// Deterministic per-invocation durations with +-15% spread, corrected
	// to sum exactly to TotalGPU.
	durs := make([]time.Duration, b.Invocations)
	var sum float64
	for i := range durs {
		f := 1 + 0.15*(rng.Float64()*2-1)
		durs[i] = time.Duration(mean * f)
		sum += float64(durs[i])
	}
	scale := float64(b.TotalGPU) / sum
	for i := range durs {
		durs[i] = time.Duration(float64(durs[i]) * scale)
	}

	const bufSize = 1 << 20
	dptr, err := env.CUDA.Malloc(bufSize)
	if err != nil {
		return err
	}
	host := make([]byte, bufSize)
	if err := env.CUDA.Memcpy(cudart.DevicePtr(dptr), cudart.HostPtr(host), bufSize, cudart.MemcpyHostToDevice); err != nil {
		return err
	}

	streams := []cudart.Stream{0}
	if b.Streams > 1 {
		streams = streams[:0]
		for i := 0; i < b.Streams; i++ {
			s, err := env.CUDA.StreamCreate()
			if err != nil {
				return err
			}
			streams = append(streams, s)
		}
	}

	batch := b.BatchSize
	if batch <= 0 {
		batch = 1
	}
	for i := 0; i < b.Invocations; i++ {
		s := streams[i%len(streams)]
		fn := &cudart.Func{Name: b.Kernel, FixedCost: perfmodel.KernelCost{Fixed: durs[i]}}
		if err := env.CUDA.ConfigureCall(cudart.Dim3{X: 128}, cudart.Dim3{X: 256}, 0, s); err != nil {
			return err
		}
		if err := env.CUDA.SetupArgument(dptr, 8, 0); err != nil {
			return err
		}
		if err := env.CUDA.Launch(fn); err != nil {
			return err
		}
		if (i+1)%batch == 0 || i == b.Invocations-1 {
			if b.Streams > 1 {
				// concurrentKernels synchronises explicitly.
				if err := env.CUDA.ThreadSynchronize(); err != nil {
					return err
				}
			}
			if err := env.CUDA.Memcpy(cudart.HostPtr(host), cudart.DevicePtr(dptr), bufSize, cudart.MemcpyDeviceToHost); err != nil {
				return err
			}
		}
	}

	for _, s := range streams {
		if s != 0 {
			if err := env.CUDA.StreamDestroy(s); err != nil {
				return err
			}
		}
	}
	return env.CUDA.Free(dptr)
}
