// Package workloads contains structurally faithful models of the
// applications the paper's evaluation runs on the Dirac cluster: the
// square-kernel example of Fig. 3, the CUDA SDK benchmarks of Table I,
// CUDA-accelerated HPL (Figs. 8 and 9), PARATEC with thunking CUBLAS
// (Fig. 10), and Amber PMEMD (Fig. 11).
//
// Each model issues the same API call mix (names, counts, data volumes,
// stream usage) as the original application, with kernel durations
// calibrated against the published figures; DESIGN.md documents the
// substitution and EXPERIMENTS.md the paper-vs-measured comparison.
package workloads

import (
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

// SquareConfig parameterises the Fig. 3 example program.
type SquareConfig struct {
	N      int // array elements (paper: 100000)
	Repeat int // squaring iterations inside the kernel (paper: 10000)
	// Functional makes the kernel really square the data.
	Functional bool
}

// DefaultSquare returns the paper's parameters.
func DefaultSquare() SquareConfig { return SquareConfig{N: 100000, Repeat: 10000} }

// squareKernelCost models the deliberately inefficient kernel of Fig. 3:
// one thread per block (blockIdx.x only), so only one CUDA core per SM
// does useful work and the loop of REPEAT dependent multiplies serialises.
// On the C2050 this measures ~1.15 s for N=100000, REPEAT=10000 (the
// paper's Figs. 5/6).
func squareKernelCost(cfg SquareConfig) perfmodel.KernelCost {
	// One multiply per element per repeat, sustained at ~0.87 GFlop/s
	// (0.17% of peak): one thread per block leaves 31 of 32 lanes idle
	// and the dependent-multiply loop stalls the pipeline. Calibrated so
	// the paper's N=100000 x REPEAT=10000 kernel takes ~1.15 s.
	const sustained = 0.868e9 // flop/s
	flops := float64(cfg.N) * float64(cfg.Repeat)
	return perfmodel.KernelCost{FLOPs: flops, Efficiency: sustained / 515e9, Floor: time.Microsecond}
}

// Square runs the Fig. 3 program in the environment: malloc, H2D, one
// kernel launch through the ConfigureCall/SetupArgument/Launch triple,
// blocking D2H, free.
func Square(env *cluster.Env, cfg SquareConfig) error {
	size := gpusim.F64Bytes(cfg.N)
	var host []byte
	if cfg.Functional {
		host = make([]byte, size)
		v := gpusim.Float64s(host)
		for i := 0; i < cfg.N; i++ {
			v.Set(i, float64(i))
		}
	}
	kernel := &cudart.Func{
		Name:      "square",
		FixedCost: squareKernelCost(cfg),
	}
	if cfg.Functional {
		kernel.Body = func(ctx cudart.LaunchContext) {
			ptr := ctx.Args.Arg(0).(cudart.DevPtr)
			n := ctx.Args.Arg(1).(int)
			b, err := ctx.Dev.Bytes(ptr, gpusim.F64Bytes(n))
			if err != nil {
				return
			}
			v := gpusim.Float64s(b)
			for i := 0; i < n; i++ {
				x := v.At(i)
				// All REPEAT iterations square the same value; the net
				// effect after the loop of x = x*x is x^(2^REPEAT), which
				// overflows to +Inf for |x|>1 — the example program is a
				// timing toy, so we apply a single squaring like the
				// first iteration.
				v.Set(i, x*x)
			}
		}
	}

	dptr, err := env.CUDA.Malloc(size)
	if err != nil {
		return err
	}
	if err := env.CUDA.Memcpy(cudart.DevicePtr(dptr), cudart.HostPtr(host), size, cudart.MemcpyHostToDevice); err != nil {
		return err
	}
	if err := env.CUDA.ConfigureCall(cudart.Dim3{X: cfg.N}, cudart.Dim3{X: 1}, 0, 0); err != nil {
		return err
	}
	if err := env.CUDA.SetupArgument(dptr, 8, 0); err != nil {
		return err
	}
	if err := env.CUDA.SetupArgument(cfg.N, 8, 8); err != nil {
		return err
	}
	if err := env.CUDA.Launch(kernel); err != nil {
		return err
	}
	if err := env.CUDA.Memcpy(cudart.HostPtr(host), cudart.DevicePtr(dptr), size, cudart.MemcpyDeviceToHost); err != nil {
		return err
	}
	return env.CUDA.Free(dptr)
}
