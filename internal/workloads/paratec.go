package workloads

import (
	"fmt"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/mpisim"
)

// ParatecConfig parameterises the PARATEC model (paper Section IV-D,
// Fig. 10): an ab initio DFT plane-wave code whose BLAS usage is dominated
// by double-complex matrix multiplies (zgemm) on tall-skinny operands
// (local plane-wave slab x band block). Linking against the thunking
// CUBLAS wrappers turns each zgemm into
// cublasSetMatrix x3 + cublasZgemm + cublasGetMatrix, whose blocking
// transfers dwarf the kernel itself — the central observation of the
// paper's PARATEC study.
//
// The model runs strong scaling on 32 nodes: per-rank slabs shrink as
// ranks are added while additional ranks share each node's single GPU, so
// the time in CUBLAS stays roughly constant; per-iteration band gathers
// funnel into single endpoints, whose contention makes MPI_Gather blow up
// at 256 processes.
//
// Absolute times are calibrated to one tenth of the paper's NERSC6-medium
// runs (see EXPERIMENTS.md); ratios and the scaling shape are the
// reproduction targets.
type ParatecConfig struct {
	// Iterations is the number of SCF iterations (default 20).
	Iterations int
	// UseCUBLAS selects thunking CUBLAS; false runs the MKL baseline
	// (host BLAS).
	UseCUBLAS bool
	// PlaneWaves is the global slab height; the per-rank zgemm m is
	// PlaneWaves/size (default 640000).
	PlaneWaves int
	// BandBlock is the zgemm n=k dimension (default 64).
	BandBlock int
	// ZgemmCalls is the number of zgemm calls per rank per iteration
	// (default 25).
	ZgemmCalls int
	// GatherBytes is the global per-iteration gather volume (default 1 MiB).
	GatherBytes int
	// HostOtherPerIter is the global per-iteration CPU time outside BLAS
	// (FFTW, potentials; default 175 s, split across ranks).
	HostOtherPerIter time.Duration
	// MKLGFlops is the per-core MKL zgemm rate (default 4 GFlop/s).
	MKLGFlops float64
}

// DefaultParatec returns the calibrated configuration.
func DefaultParatec(useCUBLAS bool) ParatecConfig {
	return ParatecConfig{
		Iterations:       20,
		UseCUBLAS:        useCUBLAS,
		PlaneWaves:       640000,
		BandBlock:        64,
		ZgemmCalls:       25,
		GatherBytes:      1 << 20,
		HostOtherPerIter: 175 * time.Second,
		MKLGFlops:        4,
	}
}

// Paratec runs the model in the environment.
func Paratec(env *cluster.Env, cfg ParatecConfig) error {
	if cfg.Iterations <= 0 {
		return fmt.Errorf("workloads: paratec: %d iterations", cfg.Iterations)
	}
	p := env.Size
	m := cfg.PlaneWaves / p
	if m < 1 {
		m = 1
	}
	nb := cfg.BandBlock
	zflops := 8 * float64(m) * float64(nb) * float64(nb)
	hostOther := time.Duration(float64(cfg.HostOtherPerIter) / float64(p))
	gatherBytes := cfg.GatherBytes / p
	if gatherBytes < 1 {
		gatherBytes = 1
	}

	left := (env.Rank - 1 + p) % p
	right := (env.Rank + 1) % p

	// Phase regions via the MPI_Pcontrol interface, as instrumented HPC
	// codes do; a no-op when monitoring is off.
	pcontrol := func(level int, name string) {
		if pc, ok := env.MPI.(interface{ Pcontrol(int, string) }); ok {
			pc.Pcontrol(level, name)
		}
	}

	// Communication buffers, reused across iterations.
	overlap := make([]byte, nb*nb*16)
	overlapRecv := make([]byte, len(overlap))
	halo := make([]byte, 8*(m/8+1))
	rbuf := make([]byte, len(halo))
	gatherSend := make([]byte, gatherBytes)
	gatherRecv := make([]byte, p*gatherBytes)

	for iter := 0; iter < cfg.Iterations; iter++ {
		// Plane-wave FFTs and local potential work (FFTW/host). This is
		// the jittery part of the iteration, so the halo waits right
		// after it absorb the resulting skew (the MPI_Wait band of
		// Fig. 10).
		env.Compute(hostOther)

		// Halo exchange of wavefunction slabs with neighbours.
		sreq, err := env.MPI.Isend(halo, right, iter)
		if err != nil {
			return err
		}
		rreq, err := env.MPI.Irecv(rbuf, left, iter)
		if err != nil {
			return err
		}
		if _, err := env.MPI.Wait(rreq); err != nil {
			return err
		}
		if _, err := env.MPI.Wait(sreq); err != nil {
			return err
		}

		// Band-by-band subspace updates: the zgemm workhorse.
		pcontrol(1, "subspace_rotation")
		for c := 0; c < cfg.ZgemmCalls; c++ {
			if cfg.UseCUBLAS {
				if err := paratecZgemmThunk(env, m, nb); err != nil {
					return err
				}
			} else {
				env.Compute(time.Duration(zflops / (cfg.MKLGFlops * 1e9) * float64(time.Second)))
			}
		}
		pcontrol(-1, "subspace_rotation")

		// Orthogonalisation: overlap-matrix reductions.
		pcontrol(1, "orthogonalization")
		for r := 0; r < 4; r++ {
			if err := env.MPI.Allreduce(overlap, overlapRecv, mpisim.OpSum); err != nil {
				return err
			}
		}
		pcontrol(-1, "orthogonalization")

		// Band redistribution: every rank gathers its bands from all
		// others. p rooted gathers per iteration funnel into single
		// endpoints — the contention that makes MPI_Gather dominate at
		// 256 processes in Fig. 10.
		for root := 0; root < p; root++ {
			var gout []byte
			if root == env.Rank {
				gout = gatherRecv
			}
			if err := env.MPI.Gather(gatherSend, gout, root); err != nil {
				return err
			}
		}
	}
	return nil
}

// paratecZgemmThunk performs one thunking zgemm: the call sequence of the
// CUBLAS Fortran thunking wrappers, with cost-only transfers (nil host
// buffers) so simulation cost stays independent of the problem size.
func paratecZgemmThunk(env *cluster.Env, m, nb int) error {
	b := env.BLAS
	da, err := b.Alloc(m*nb, 16)
	if err != nil {
		return err
	}
	defer b.Free(da)
	db, err := b.Alloc(nb*nb, 16)
	if err != nil {
		return err
	}
	defer b.Free(db)
	dc, err := b.Alloc(m*nb, 16)
	if err != nil {
		return err
	}
	defer b.Free(dc)

	if err := b.SetMatrix(m, nb, 16, nil, m, da, m); err != nil {
		return err
	}
	if err := b.SetMatrix(nb, nb, 16, nil, nb, db, nb); err != nil {
		return err
	}
	if err := b.SetMatrix(m, nb, 16, nil, m, dc, m); err != nil {
		return err
	}
	if err := b.Zgemm('N', 'N', m, nb, nb, 1, da, m, db, nb, 0, dc, m); err != nil {
		return err
	}
	return b.GetMatrix(m, nb, 16, dc, m, nil, m)
}
