package workloads

import (
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/perfmodel"
)

// FaultDemoConfig parameterises the fault-injection demonstration
// workload: a compact iterative MPI+CUDA stencil-style loop whose every
// step exercises the full monitored surface (compute, H2D, kernel, D2H,
// allreduce), written so that any injected failure degrades the run
// instead of crashing it.
type FaultDemoConfig struct {
	// Steps is the number of iterations (default 40).
	Steps int
	// N is the working-set size in float64 elements (default 1<<14).
	N int
	// StepCompute is the host compute time per step (default 2ms) — the
	// quantity a straggler fault stretches.
	StepCompute time.Duration
}

// DefaultFaultDemo returns the e2e/demo parameters: a ~250ms-per-rank
// run, long enough for mid-run faults at 50-220ms to land inside it.
func DefaultFaultDemo() FaultDemoConfig {
	return FaultDemoConfig{Steps: 40, N: 1 << 14, StepCompute: 2 * time.Millisecond}
}

func (c FaultDemoConfig) withDefaults() FaultDemoConfig {
	if c.Steps <= 0 {
		c.Steps = 40
	}
	if c.N <= 0 {
		c.N = 1 << 14
	}
	if c.StepCompute <= 0 {
		c.StepCompute = 2 * time.Millisecond
	}
	return c
}

// FaultDemoReport summarises how a rank's run degraded under faults.
type FaultDemoReport struct {
	Steps     int // steps fully completed
	CUDAFails int // CUDA calls that returned an error (after any retries)
	MPIFails  int // collectives that returned an error
	CommOK    bool
}

// FaultDemo runs the demonstration loop. It NEVER panics on an injected
// failure: CUDA errors are counted and the step's device work skipped,
// and the first MPI failure (a dead peer breaking the communicator)
// permanently downgrades the run to communication-free mode — exactly
// the behaviour a monitoring pipeline must survive to produce a partial
// profile from the surviving ranks.
func FaultDemo(env *cluster.Env, cfg FaultDemoConfig) FaultDemoReport {
	cfg = cfg.withDefaults()
	rep := FaultDemoReport{CommOK: true}
	size := gpusim.F64Bytes(cfg.N)
	host := make([]byte, size)
	kernel := &cudart.Func{
		Name:      "relax",
		FixedCost: perfmodel.KernelCost{Fixed: 300 * time.Microsecond},
	}

	dptr, err := env.CUDA.Malloc(size)
	if err != nil {
		// Without device memory the run degrades to host compute and
		// (while possible) collectives.
		rep.CUDAFails++
	}
	sum := make([]byte, 8)
	for step := 0; step < cfg.Steps; step++ {
		if env.IPM != nil {
			env.IPM.EnterRegion("relax-step")
		}
		env.Compute(cfg.StepCompute)
		if err == nil {
			if e := env.CUDA.Memcpy(cudart.DevicePtr(dptr), cudart.HostPtr(host), size, cudart.MemcpyHostToDevice); e != nil {
				rep.CUDAFails++
			} else if e := env.CUDA.LaunchKernel(kernel, cudart.Dim3{X: cfg.N / 256}, cudart.Dim3{X: 256}, 0, dptr, cfg.N); e != nil {
				rep.CUDAFails++
			} else if e := env.CUDA.Memcpy(cudart.HostPtr(host), cudart.DevicePtr(dptr), size, cudart.MemcpyDeviceToHost); e != nil {
				rep.CUDAFails++
			}
		}
		if rep.CommOK {
			if e := env.MPI.Allreduce(mpisim.Float64Bytes([]float64{float64(step)}), sum, mpisim.OpSum); e != nil {
				rep.MPIFails++
				rep.CommOK = false // broken communicator: stop collectives
			}
		}
		if env.IPM != nil {
			env.IPM.ExitRegion()
		}
		rep.Steps++
	}
	if err == nil {
		if e := env.CUDA.Free(dptr); e != nil {
			rep.CUDAFails++
		}
	}
	return rep
}
