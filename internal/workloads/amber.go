package workloads

import (
	"fmt"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/cufft"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/perfmodel"
)

// AmberConfig parameterises the Amber PMEMD model (paper Section IV-E,
// Fig. 11): the multi-GPU CUDA version of the molecular dynamics engine
// running the JAC/DHFR benchmark (23,558 atoms) for 10,000 timesteps on
// 16 nodes.
//
// Calibration targets from the published profile (16 ranks, wallclock
// 45.78 s): ~12 kernel launches per step per rank across 39 distinct
// kernels; GPU utilisation 35.96% of wallclock dominated by
// CalculatePMEOrthogonalNonbondForces (37% of GPU time), ReduceForces
// (18%), PMEShake (10%), ClearForces (8%) and PMEUpdate (7%); 22.5% of
// wallclock in cudaThreadSynchronize; host idle near zero despite
// synchronous transfers (transfers are issued after synchronisation
// points); cudaGetDeviceCount visible because the code re-queries the
// runtime at startup; ReduceForces/ClearForces imbalanced up to ~1.55x
// max/avg across ranks while PMEShake/PMEUpdate stay balanced.
type AmberConfig struct {
	// Steps is the number of MD timesteps (paper: 10000; tests use less).
	Steps int
}

// DefaultAmber returns the paper's run length.
func DefaultAmber() AmberConfig { return AmberConfig{Steps: 10000} }

// AmberRuntimeOptions returns the CUDA runtime options Amber's profile
// implies: the repeated cudaGetDeviceCount calls each take ~0.52 s
// (16.72 s over 32 calls), a driver-reinitialisation quirk of this
// pre-release code.
func AmberRuntimeOptions() cudart.Options {
	return cudart.Options{DeviceQueryCost: 520 * time.Millisecond}
}

// amberKernelMix is the per-step launch mix. Durations are per launch and
// sum (with the "other" rotation below) to ~1.645 ms of GPU time per step
// — 35.96% of the 4.58 ms step time.
var amberKernelMix = []struct {
	name      string
	dur       time.Duration
	launches  int
	imbalance bool // scaled by the per-rank imbalance factor
}{
	{"CalculatePMEOrthogonalNonbondForces", 609 * time.Microsecond, 1, false},
	{"ReduceForces", 148 * time.Microsecond, 2, true},
	{"PMEShake", 165 * time.Microsecond, 1, false},
	{"ClearForces", 66 * time.Microsecond, 2, true},
	{"PMEUpdate", 115 * time.Microsecond, 1, false},
}

// amberOtherKernels are the long tail: 34 further kernels contributing
// ~20% of GPU time, launched in rotation (4 per step).
var amberOtherKernels = func() []string {
	names := []string{
		"PMEForwardFFT", "PMEBackwardFFT", "PMEFillCharges", "PMEGradSum",
		"PMEReduceChargeGrid", "PMEClampedSplines", "CalculateGBBornRadii",
		"CalculateGBNonbondEnergy1", "CalculateGBNonbondEnergy2",
		"CalculateLocalForces", "CalculateCharmmForces", "CalculateNMRForces",
		"UpdateMidpoint", "KineticEnergy", "ScaledMD", "RandomVelocities",
		"RecenterMolecule", "ClearVelocities", "ApplyConstraints",
		"BuildNeighborList", "SortAtoms", "RadixSortBlocks", "ScanExclusive",
		"ReorderAtoms", "ImageAtoms", "LocalToGlobal", "GlobalToLocal",
		"TransposeForces", "AccumulateEnergies", "VirialSum",
		"PressureScale", "BerendsenThermostat", "LangevinSetup", "NTPMolecules",
	}
	return names
}()

// amberImbalance returns the per-rank scale factor for the imbalanced
// kernels: linear from 0.45 to 1.55 across ranks, giving max/avg ~1.55.
func amberImbalance(rank, size int) float64 {
	if size <= 1 {
		return 1
	}
	return 0.45 + 1.10*float64(rank)/float64(size-1)
}

// Amber runs the PMEMD model in the environment.
func Amber(env *cluster.Env, cfg AmberConfig) error {
	if cfg.Steps <= 0 {
		return fmt.Errorf("workloads: amber: %d steps", cfg.Steps)
	}
	imb := amberImbalance(env.Rank, env.Size)

	// Startup: the code queries the runtime (expensively, per the paper's
	// profile) and broadcasts the topology and parameters.
	for i := 0; i < 2; i++ {
		if _, err := env.CUDA.GetDeviceCount(); err != nil {
			return err
		}
	}
	for i := 0; i < 31; i++ {
		if err := env.MPI.Bcast(make([]byte, 64<<10), 0); err != nil {
			return err
		}
	}

	// Device state: coordinates, forces, PME charge grid.
	const atomBytes = 23558 * 3 * 8
	dCrd, err := env.CUDA.Malloc(atomBytes)
	if err != nil {
		return err
	}
	dFrc, err := env.CUDA.Malloc(atomBytes)
	if err != nil {
		return err
	}
	var plan cufft.Plan
	if env.Rank == 0 {
		// The PME reciprocal-space master uses CUFFT.
		if plan, err = env.FFT.Plan2d(64, 64); err != nil {
			return err
		}
	}
	dGrid, err := env.CUDA.Malloc(64 * 64 * 16)
	if err != nil {
		return err
	}

	launch := func(name string, d time.Duration) error {
		fn := &cudart.Func{Name: name, FixedCost: perfmodel.KernelCost{Fixed: d}}
		if err := env.CUDA.ConfigureCall(cudart.Dim3{X: 92}, cudart.Dim3{X: 256}, 0, 0); err != nil {
			return err
		}
		if err := env.CUDA.SetupArgument(dCrd, 8, 0); err != nil {
			return err
		}
		if err := env.CUDA.SetupArgument(dFrc, 8, 8); err != nil {
			return err
		}
		if err := env.CUDA.SetupArgument(len(name), 8, 16); err != nil {
			return err
		}
		return env.CUDA.Launch(fn)
	}

	otherIdx := 0
	for step := 0; step < cfg.Steps; step++ {
		// Per-step constants to the GPU (box parameters etc.). The
		// pattern averages 1.75 calls/step, matching the published count.
		nSym := 2
		if step%4 == 3 {
			nSym = 1
		}
		for i := 0; i < nSym; i++ {
			if err := env.CUDA.MemcpyToSymbol("cSim", make([]byte, 640)); err != nil {
				return err
			}
		}

		// Force kernels.
		for _, k := range amberKernelMix {
			d := k.dur
			if k.imbalance {
				d = time.Duration(float64(d) * imb)
			}
			for l := 0; l < k.launches; l++ {
				if err := launch(k.name, d); err != nil {
					return err
				}
			}
		}
		// Long-tail kernels, 5 per step in rotation (12 launches/step
		// total, matching the published cudaLaunch count).
		for l := 0; l < 5; l++ {
			name := amberOtherKernels[otherIdx%len(amberOtherKernels)]
			otherIdx++
			if err := launch(name, 66*time.Microsecond); err != nil {
				return err
			}
		}
		// PME reciprocal space on the master rank.
		if env.Rank == 0 && step%115 == 0 {
			if err := env.FFT.ExecZ2Z(plan, dGrid, dGrid, cufft.Forward); err != nil {
				return err
			}
		}

		// Host-side bookkeeping overlapping the GPU, then the hard
		// synchronisation the profile shows 22.5% of wallclock in.
		env.Compute(600 * time.Microsecond)
		for i := 0; i < 7; i++ {
			if err := env.CUDA.ThreadSynchronize(); err != nil {
				return err
			}
		}
		if err := env.CUDA.ThreadSynchronize(); err != nil {
			return err
		}

		// Synchronous readbacks of energies and forces (small; the GPU
		// is already drained, so host idle stays near zero).
		for i := 0; i < 2; i++ {
			if err := env.CUDA.Memcpy(cudart.HostPtr(nil), cudart.DevicePtr(dFrc), 16<<10, cudart.MemcpyDeviceToHost); err != nil {
				return err
			}
		}

		// Error checks sprinkled through the step (10.67/step published).
		nErr := 10
		if step%3 == 0 {
			nErr = 12
		}
		for i := 0; i < nErr; i++ {
			if err := env.CUDA.GetLastError(); err != nil {
				return err
			}
		}

		// Serial host integration work.
		env.Compute(2500 * time.Microsecond)

		// MPI: force reduction every 16 steps, energy reduce offset by 8.
		if step%16 == 0 {
			recv := make([]byte, 8)
			if err := env.MPI.Allreduce(mpisim.Float64Bytes([]float64{1}), recv, mpisim.OpSum); err != nil {
				return err
			}
		}
		if step%16 == 8 {
			recv := make([]byte, 8)
			if err := env.MPI.Reduce(mpisim.Float64Bytes([]float64{1}), recv, mpisim.OpSum, 0); err != nil {
				return err
			}
		}
		// Periodic restart: rank 0 writes the coordinates to the shared
		// filesystem (monitored by IPM's I/O layer) and broadcasts the
		// go-ahead.
		if step > 0 && step%500 == 0 {
			if env.Rank == 0 {
				f, err := env.FS.Open("/scratch/jac.rst", true)
				if err != nil {
					return err
				}
				if _, err := f.Write(make([]byte, atomBytes)); err != nil {
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
			if err := env.MPI.Bcast(make([]byte, 1<<20), 0); err != nil {
				return err
			}
		}
	}

	// Final statistics exchange.
	all := make([]byte, env.Size*8)
	if err := env.MPI.Allgather(mpisim.Float64Bytes([]float64{1}), all); err != nil {
		return err
	}
	if env.Rank == 0 {
		if err := env.FFT.Destroy(plan); err != nil {
			return err
		}
	}
	for _, p := range []cudart.DevPtr{dCrd, dFrc, dGrid} {
		if err := env.CUDA.Free(p); err != nil {
			return err
		}
	}
	return nil
}
