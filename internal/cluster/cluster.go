// Package cluster wires the simulated substrates into a GPU cluster and
// runs MPI+CUDA applications on it, with or without IPM monitoring. It
// models NERSC's Dirac cluster, the evaluation platform of the paper: 48
// nodes, two quad-core Xeon 5530s and one Tesla C2050 per node, QDR
// InfiniBand, CUDA 3.1.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"ipmgo/internal/cmdqueue"
	"ipmgo/internal/cublas"
	"ipmgo/internal/cudaprof"
	"ipmgo/internal/cudart"
	"ipmgo/internal/cufft"
	"ipmgo/internal/des"
	"ipmgo/internal/devmodel"
	"ipmgo/internal/faultsim"
	"ipmgo/internal/gpucounters"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/iosim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmblas"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/ipmio"
	"ipmgo/internal/ipmmpi"
	"ipmgo/internal/ipmomp"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/noise"
	"ipmgo/internal/ompsim"
	"ipmgo/internal/perfmodel"
	"ipmgo/internal/telemetry"
)

// Config describes one simulated job.
type Config struct {
	// Nodes is the number of cluster nodes used (each with one GPU).
	Nodes int
	// RanksPerNode is the number of MPI tasks per node; they share the
	// node's GPU (the paper's shared-GPU scenario when > 1).
	RanksPerNode int

	GPU perfmodel.GPUSpec
	// Device selects a device backend from the devmodel registry:
	// copy-engine count and the power model layered on top of the GPU
	// performance spec. The zero value keeps the pre-registry behaviour
	// (one copy engine per direction, no energy attribution). When both
	// Device and GPU are set, GPU remains the performance-model
	// authority, so callers can still tune individual parameters after
	// picking a backend.
	Device devmodel.Spec
	Net    perfmodel.NetSpec
	// FS models the shared parallel filesystem.
	FS iosim.Spec
	// Runtime tunes the CUDA runtime's host-side costs.
	Runtime cudart.Options

	// Queue enables the driver command-queue layer: each rank's CUDA
	// context gets a submission queue ("ctx<rank>/q0") batching kernel
	// launches, memcpys, memsets and event records between the runtime
	// API and the device. QueueFlushDepth/QueueFlushInterval tune the
	// flush heuristics (0 selects cmdqueue defaults). When Monitor is
	// also set, per-call-site submit stall is folded into the IPM hash
	// table; when Telemetry/Metrics are set, each queue gets a Perfetto
	// track (submit spans + depth counter) and labeled Prometheus series.
	Queue              bool
	QueueFlushDepth    int
	QueueFlushInterval time.Duration

	// Monitor enables IPM; CUDA selects the CUDA-layer features.
	Monitor bool
	CUDA    ipmcuda.Options
	// TableSize overrides IPM's hash table capacity (0 = default).
	TableSize int

	// CUDAProfile attaches the simulated CUDA profiler to every device
	// (the CUDA_PROFILE=1 baseline of Table I).
	CUDAProfile bool

	// Counters attaches the PAPI-style GPU counter component to every
	// device (the paper's future-work item 1).
	Counters bool

	// LibCostOnly disables the functional payloads of CUBLAS and CUFFT
	// (timing only), so large workload models stay cheap to simulate.
	LibCostOnly bool

	// Telemetry, when non-nil, records a span for every user region and
	// monitored host call (requires Monitor) and for every device
	// operation, for export as a Perfetto-loadable timeline trace.
	Telemetry *telemetry.Recorder
	// Metrics, when non-nil, receives live Prometheus-style samples.
	// Samples are published from inside the simulation loop every
	// MetricsInterval of virtual time and once at job end, so an HTTP
	// scrape never races with the running simulation.
	Metrics *telemetry.Registry
	// MetricsInterval is the virtual-time publish period (default 50ms).
	MetricsInterval time.Duration

	// Faults, when non-nil, activates deterministic fault injection and
	// the resilience machinery: per-rank CUDA error injectors, straggler
	// clock skew in Compute, scheduled rank deaths and monitor panics,
	// capped-backoff retry of transient CUDA errors, and (when Monitor is
	// also set) a virtual-time watchdog that kills ranks whose monitored
	// activity stalls. Every fault is keyed to virtual time and a PRNG
	// seeded from (Plan.Seed, rank), so a faulty run is byte-identical
	// across repetitions and worker counts.
	Faults *faultsim.Plan

	// Command is the command line recorded in the profile.
	Command string
	// NoiseSeed/NoiseAmp configure run-to-run variability (amp 0 = none).
	NoiseSeed int64
	NoiseAmp  float64

	// Horizon bounds the simulation (default 10h of virtual time).
	Horizon time.Duration
}

// Dirac returns the evaluation platform's configuration for a job on the
// given number of nodes.
func Dirac(nodes, ranksPerNode int) Config {
	dev, _ := devmodel.Lookup("c2050")
	return Config{
		Nodes:        nodes,
		RanksPerNode: ranksPerNode,
		GPU:          perfmodel.TeslaC2050(),
		Device:       dev,
		Net:          perfmodel.QDRInfiniBand(),
		FS:           iosim.GPFSScratch(),
		Command:      "./a.out",
	}
}

// Env is the per-rank execution environment handed to the application:
// exactly the handles a real MPI+CUDA process holds. When monitoring is
// enabled every handle is the IPM-interposed variant; the application
// cannot tell the difference.
type Env struct {
	Rank  int
	Size  int
	Node  int
	Proc  *des.Proc
	CUDA  cudart.API
	MPI   mpisim.Comm
	BLAS  cublas.BLAS
	FFT   cufft.FFT
	FS    FileSystem
	Noise *noise.Model

	// IPM is non-nil when monitoring is enabled.
	IPM *ipm.Monitor
	// Dev is the rank's (possibly shared) GPU.
	Dev *gpusim.Device

	cudaMon *ipmcuda.Monitor
	ompMon  *ipmomp.Monitor
	// skew is the straggler clock multiplier applied to Compute (1 = none).
	skew float64
}

// Parallel runs an OpenMP-style fork/join region on the rank's cores,
// monitored when IPM is enabled.
func (e *Env) Parallel(name string, nthreads int, body func(tid int, p *des.Proc)) (ompsim.RegionStats, error) {
	if e.ompMon != nil {
		return e.ompMon.Parallel(e.Proc, name, nthreads, body)
	}
	return ompsim.Parallel(e.Proc, nthreads, body)
}

// ParallelFor runs a monitored statically scheduled parallel loop.
func (e *Env) ParallelFor(name string, nthreads, n int, iterCost func(i int) time.Duration) (ompsim.RegionStats, error) {
	if e.ompMon != nil {
		return e.ompMon.For(e.Proc, name, nthreads, n, iterCost)
	}
	return ompsim.For(e.Proc, nthreads, n, iterCost)
}

// Compute models host computation of duration d, perturbed by the noise
// model and stretched by the rank's straggler skew when a fault plan
// assigns one.
func (e *Env) Compute(d time.Duration) {
	d = e.Noise.Perturb(d)
	if e.skew > 0 && e.skew != 1 {
		d = time.Duration(float64(d) * e.skew)
	}
	e.Proc.Sleep(d)
}

// File is an open file on the shared filesystem, from the rank's (possibly
// monitored) point of view.
type File interface {
	Write(data []byte) (int, error)
	Read(buf []byte) (int, error)
	SeekTo(offset int64) error
	Close() error
	Size() int64
	Name() string
}

// FileSystem is the per-rank view of the shared parallel filesystem.
type FileSystem interface {
	Open(name string, create bool) (File, error)
	Unlink(name string) error
}

// bareFS adapts iosim.FS to the per-rank FileSystem view.
type bareFS struct {
	fs   *iosim.FS
	proc *des.Proc
}

func (b bareFS) Open(name string, create bool) (File, error) {
	h, err := b.fs.Open(b.proc, name, create)
	if err != nil {
		return nil, err
	}
	return h, nil
}
func (b bareFS) Unlink(name string) error { return b.fs.Unlink(b.proc, name) }

// monFS adapts the IPM-monitored ipmio.FS.
type monFS struct {
	fs   *ipmio.FS
	proc *des.Proc
}

func (m monFS) Open(name string, create bool) (File, error) {
	h, err := m.fs.Open(m.proc, name, create)
	if err != nil {
		return nil, err
	}
	return h, nil
}
func (m monFS) Unlink(name string) error { return m.fs.Unlink(m.proc, name) }

// LostRank records one rank that did not finish: killed by the fault
// plan, by the watchdog, or still blocked when the run was truncated.
type LostRank struct {
	Rank   int
	At     time.Duration
	Reason string
}

// Result is the outcome of one job run.
type Result struct {
	Wallclock time.Duration
	// Profile is the aggregated IPM job profile (nil when unmonitored).
	Profile *ipm.JobProfile
	// Profilers holds one CUDA profiler per node when CUDAProfile is set.
	Profilers []*cudaprof.Profiler
	// Counters holds one counter component per node when Counters is set.
	Counters []*gpucounters.Component

	// Lost lists the ranks that died, in rank order. The profile (when
	// monitoring is on) still carries their partial snapshots, flagged as
	// degraded fidelity.
	Lost []LostRank
	// FaultsInjected counts CUDA errors delivered by the fault plan
	// across all ranks; Retries and GaveUp count the resilience layer's
	// recovered and abandoned transient failures.
	FaultsInjected int64
	Retries        int64
	GaveUp         int64
	// Truncated is non-empty when fault injection was active and the run
	// ended with ranks still blocked (hung-device deadlock with the
	// watchdog disabled, or the horizon expiring). The result is then
	// assembled from whatever the finished ranks produced.
	Truncated string
}

// Run executes app once on the configured cluster and returns the result.
func Run(cfg Config, app func(env *Env)) (*Result, error) {
	if cfg.Nodes <= 0 || cfg.RanksPerNode <= 0 {
		return nil, fmt.Errorf("cluster: bad layout %d nodes x %d ranks", cfg.Nodes, cfg.RanksPerNode)
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 10 * time.Hour
	}
	// Compose the effective device backend. Ad-hoc Configs (zero Device)
	// keep the pre-registry behaviour: one copy engine per direction and
	// no power model, so their output is byte-identical to older
	// releases. With a backend selected, cfg.GPU stays the
	// performance-model authority — callers tune it after Dirac() — and
	// a backend-only Config inherits the backend's GPU spec.
	dev := cfg.Device
	switch {
	case !dev.Defined():
		dev = devmodel.Custom(cfg.GPU)
	case cfg.GPU != (perfmodel.GPUSpec{}):
		dev.GPU = cfg.GPU
	default:
		cfg.GPU = dev.GPU
	}
	if cfg.Monitor && !dev.Power.Zero() {
		// Unset watts inherit the backend's power model; explicit values
		// win, so an experiment can override one engine class.
		if cfg.CUDA.KernelWatts == 0 {
			cfg.CUDA.KernelWatts = dev.Power.KernelWatts
		}
		if cfg.CUDA.CopyWatts == 0 {
			cfg.CUDA.CopyWatts = dev.Power.CopyWatts
		}
		if cfg.CUDA.MemsetWatts == 0 {
			cfg.CUDA.MemsetWatts = dev.Power.MemsetWatts
		}
	}
	size := cfg.Nodes * cfg.RanksPerNode
	eng := des.NewEngine()

	devices := make([]*gpusim.Device, cfg.Nodes)
	profilers := make([]*cudaprof.Profiler, 0, cfg.Nodes)
	counters := make([]*gpucounters.Component, 0, cfg.Nodes)
	for i := range devices {
		devices[i] = gpusim.NewDeviceSpec(eng, dev)
		if cfg.CUDAProfile {
			profilers = append(profilers, cudaprof.Attach(devices[i]))
		}
		if cfg.Counters {
			counters = append(counters, gpucounters.Attach(devices[i]))
		}
		if cfg.Telemetry != nil {
			devices[i].AttachTelemetry(cfg.Telemetry, fmt.Sprintf("gpu%d", i))
		}
	}

	var obsHist *telemetry.Histogram
	if cfg.Metrics != nil {
		obsHist = cfg.Metrics.Histogram(
			"ipm_observe_latency_ns",
			"Real (wall-clock) latency of one Monitor observation in nanoseconds.",
			telemetry.ExpBuckets(8, 2, 12),
		)
	}

	// Queue metric families are shared across ranks; each rank memoizes
	// its own per-queue cells inside the spawn closure below.
	var depthVec, flushVec *telemetry.Vec
	var stallHist *telemetry.Histogram
	if cfg.Queue && cfg.Metrics != nil {
		depthVec = cfg.Metrics.GaugeVec(
			"ipm_queue_depth",
			"Commands currently buffered in the context's submission queue.",
			"queue",
		)
		flushVec = cfg.Metrics.CounterVec(
			"ipm_queue_flushes_total",
			"Batches submitted from the context's queue to the device.",
			"queue",
		)
		stallHist = cfg.Metrics.Histogram(
			"ipm_submit_stall_ns",
			"Virtual time a command waited in the submission queue before device hand-off, in nanoseconds.",
			telemetry.ExpBuckets(64, 2, 16),
		)
	}

	// Power metric families exist only when the backend carries a power
	// model, so legacy runs expose no zero-valued energy series.
	var powerVec, energyVec *telemetry.Vec
	if cfg.Metrics != nil && !dev.Power.Zero() {
		powerVec = cfg.Metrics.GaugeVec(
			"ipm_power_watts",
			"Modeled instantaneous device power draw (idle floor plus active engines), averaged over the last sample interval.",
			"gpu",
		)
		energyVec = cfg.Metrics.CounterVec(
			"ipm_energy_joules_total",
			"Modeled cumulative device energy: idle floor for the device lifetime plus per-engine-class active draw.",
			"gpu",
		)
	}

	world, err := mpisim.NewWorld(eng, mpisim.Config{Size: size, Net: cfg.Net, RanksPerNode: cfg.RanksPerNode})
	if err != nil {
		return nil, err
	}
	if cfg.FS.BandwidthGBs == 0 {
		cfg.FS = iosim.GPFSScratch()
	}
	sharedFS := iosim.NewFS(eng, cfg.FS)

	plan := cfg.Faults
	st := &runState{
		cfg:        &cfg,
		eng:        eng,
		devices:    devices,
		monitors:   make([]*ipm.Monitor, size),
		injectors:  make([]*faultsim.Injector, size),
		resilients: make([]*faultsim.Resilient, size),
		lost:       make([]*LostRank, size),
		done:       make([]bool, size),
	}
	procs := make([]*des.Proc, size)
	ranksDone := 0
	for rank := 0; rank < size; rank++ {
		rank := rank
		node := world.NodeOf(rank)
		procs[rank] = eng.Spawn(fmt.Sprintf("rank%d", rank), func(p *des.Proc) {
			env := &Env{
				Rank:  rank,
				Size:  size,
				Node:  node,
				Proc:  p,
				Dev:   devices[node],
				Noise: noise.New(cfg.NoiseSeed*1000003+int64(rank), cfg.NoiseAmp),
			}
			rtOpts := cfg.Runtime
			if plan != nil {
				in := plan.Injector(rank)
				st.injectors[rank] = in
				rtOpts.Inject = in.Inject
				env.skew = plan.SkewFor(rank)
				// A hanging device loss marks the (possibly shared) GPU
				// lost, so in-flight completions never fire — the hung
				// stream the watchdog exists to catch.
				in.OnDeviceLost(devices[node].MarkLost)
			}
			if cfg.Queue {
				qname := fmt.Sprintf("ctx%d/q0", rank)
				qopts := &cmdqueue.Options{
					FlushDepth:    cfg.QueueFlushDepth,
					FlushInterval: cfg.QueueFlushInterval,
					Name:          qname,
					Telemetry:     cfg.Telemetry,
				}
				if depthVec != nil {
					qopts.Depth = depthVec.With(qname)
					qopts.Flushes = flushVec.With(qname)
					qopts.Stall = stallHist
				}
				if cfg.Monitor {
					// Submit stall folds into the same hash-table row as
					// the call's host timing: the site names the queue
					// reports are byte-identical to the ipmcuda signatures,
					// and the SigRef is memoized per site so the flush path
					// stays allocation-free in steady state.
					refs := make(map[string]ipm.SigRef, 16)
					qopts.OnSubmit = func(site string, bytes int64, stall time.Duration) {
						m := env.IPM
						if m == nil {
							return // flush before the monitor attached
						}
						ref, ok := refs[site]
						if !ok {
							ref = ipm.NewSigRef(site)
							refs[site] = ref
						}
						m.ObserveNRef(ref, bytes, ipm.Stats{Submits: 1, SubmitStall: stall})
					}
				}
				rtOpts.Queue = qopts
			}
			rt := cudart.NewRuntime(p, devices[node], rtOpts)
			comm, err := world.Attach(rank, p)
			if err != nil {
				panic(err)
			}
			env.CUDA = rt
			env.MPI = comm
			env.FS = bareFS{fs: sharedFS, proc: p}
			if cfg.Monitor {
				host := fmt.Sprintf("dirac%d", node+1)
				mon := ipm.NewMonitor(rank, host, cfg.Command, p.Now, cfg.TableSize)
				if cfg.Telemetry != nil {
					mon.AttachTelemetry(cfg.Telemetry)
				}
				if obsHist != nil {
					mon.SetLatencyHistogram(obsHist)
				}
				mon.Start()
				st.monitors[rank] = mon
				env.IPM = mon
				env.cudaMon = ipmcuda.Wrap(rt, mon, p, cfg.CUDA)
				env.CUDA = env.cudaMon
				env.MPI = ipmmpi.Wrap(comm, mon)
				env.FS = monFS{fs: ipmio.Wrap(sharedFS, mon), proc: p}
				env.ompMon = ipmomp.Wrap(mon)
			}
			if plan != nil && !plan.Retry.Disable {
				// Outermost layer, so each retry attempt passes through the
				// monitor again and is recorded like any application call.
				res := faultsim.NewResilient(env.CUDA, p, plan.Retry)
				st.resilients[rank] = res
				env.CUDA = res
			}
			h := cublas.NewHandle(env.CUDA)
			h.SetCostOnly(cfg.LibCostOnly)
			env.BLAS = h
			fftLib := cufft.New(env.CUDA)
			fftLib.SetCostOnly(cfg.LibCostOnly)
			env.FFT = fftLib
			if cfg.Monitor {
				env.BLAS = ipmblas.WrapBLAS(h, st.monitors[rank])
				env.FFT = ipmblas.WrapFFT(env.FFT, st.monitors[rank])
			}

			defer func() {
				if r := recover(); r != nil {
					k, ok := r.(des.Killed)
					if !ok {
						panic(r) // a real bug still aborts the engine
					}
					// Rank death: record it, break the communicator so
					// blocked peers fail fast, and freeze the monitor. No
					// Flush here — it would block on a device that may be
					// hung, and a killed proc cannot block again.
					st.lost[rank] = &LostRank{Rank: rank, At: p.Now(), Reason: k.Reason}
					world.MarkFailed(rank)
				} else if env.cudaMon != nil {
					env.cudaMon.Flush()
				}
				if m := st.monitors[rank]; m != nil {
					m.Stop()
				}
				st.done[rank] = true
				ranksDone++
			}()
			app(env)
		})
	}

	if plan != nil {
		for rank := 0; rank < size; rank++ {
			rank := rank
			if at, ok := plan.DeathFor(rank); ok {
				eng.Schedule(at, func() {
					procs[rank].Kill(fmt.Sprintf("fault plan: rank death at %v", at))
				})
			}
			for _, at := range plan.MonitorPanicsFor(rank) {
				eng.Schedule(at, func() {
					if m := st.monitors[rank]; m != nil {
						m.Guard("injected fault", func() { panic("injected monitor panic") })
					}
				})
			}
		}
	}

	if plan != nil && !plan.Watchdog.Disable && cfg.Monitor {
		// Virtual-time watchdog: a rank whose monitored activity (hash
		// table probes) has not advanced for HangTimeout is declared hung
		// and killed, turning a silent stall (e.g. waiting on a lost
		// device) into an explicit rank death with a partial profile. The
		// timeout must exceed the longest legitimate gap between monitored
		// calls, or stragglers blocked in slow collectives get killed too.
		interval := plan.Watchdog.IntervalOrDefault()
		hangAfter := plan.Watchdog.HangTimeoutOrDefault()
		lastProbes := make([]uint64, size)
		lastChange := make([]time.Duration, size)
		var tick func()
		tick = func() {
			// Kill at most the single stalest rank per tick: when one rank
			// hangs on a dead device, its peers stall too (blocked in a
			// collective waiting for it) and would cross the timeout in the
			// same tick. Killing the hang's origin breaks the collective,
			// unblocks the peers, and the fresh window below lets their
			// probes prove they recovered.
			worst, worstAge := -1, time.Duration(0)
			for r := 0; r < size; r++ {
				m := st.monitors[r]
				if m == nil || st.done[r] {
					continue
				}
				if p := m.Table().Probes(); p != lastProbes[r] {
					lastProbes[r] = p
					lastChange[r] = eng.Now()
					continue
				}
				if age := eng.Now() - lastChange[r]; age >= hangAfter && age > worstAge {
					worst, worstAge = r, age
				}
			}
			if worst >= 0 {
				procs[worst].Kill(fmt.Sprintf("watchdog: no monitored activity for %v", hangAfter))
				for r := 0; r < size; r++ {
					if r != worst {
						lastChange[r] = eng.Now()
					}
				}
			}
			if ranksDone < size {
				eng.ScheduleAfter(interval, tick)
			}
		}
		eng.ScheduleAfter(interval, tick)
	}

	// The power tick samples each device's modeled energy counter on the
	// metrics cadence: the per-interval delta becomes the instantaneous
	// watts gauge and a Perfetto counter point on the device's track, the
	// cumulative total feeds the joules counter. Like every aggregation
	// downstream, it works in integer nanojoules, so the published values
	// are independent of worker count and wall-clock scheduling.
	var powerFinal func()
	if !dev.Power.Zero() && (powerVec != nil || cfg.Telemetry != nil) {
		interval := cfg.MetricsInterval
		if interval <= 0 {
			interval = 50 * time.Millisecond
		}
		lastNJ := make([]int64, len(devices))
		var lastAt time.Duration
		sample := func() {
			now := eng.Now()
			idleNJ := devmodel.EnergyNJ(dev.Power.IdleWatts, now)
			for i, d := range devices {
				totalNJ := idleNJ + d.ActiveEnergyNJ()
				watts := 0.0
				if dt := now - lastAt; dt > 0 {
					// nJ per ns is exactly watts.
					watts = float64(totalNJ-lastNJ[i]) / float64(dt)
				}
				lastNJ[i] = totalNJ
				if powerVec != nil {
					gpu := strconv.Itoa(i)
					powerVec.With(gpu).Set(watts)
					energyVec.With(gpu).Set(devmodel.Joules(totalNJ))
				}
				if cfg.Telemetry != nil {
					cfg.Telemetry.RecordCounter(telemetry.CounterPoint{
						Track: fmt.Sprintf("gpu%d", i),
						Name:  "power_watts",
						Time:  now,
						Value: watts,
					})
				}
			}
			lastAt = now
		}
		var tick func()
		tick = func() {
			sample()
			if ranksDone < size {
				eng.ScheduleAfter(interval, tick)
			}
		}
		eng.ScheduleAfter(interval, tick)
		powerFinal = sample
	}

	if cfg.Metrics != nil {
		// Publish from inside the event loop so sampling the monitor
		// tables never races with the ranks mutating them. The tick stops
		// rescheduling itself once every rank has finished; otherwise it
		// would keep the event queue non-empty forever.
		interval := cfg.MetricsInterval
		if interval <= 0 {
			interval = 50 * time.Millisecond
		}
		var tick func()
		tick = func() {
			cfg.Metrics.Publish(cfg.Command, collectSamples(st))
			if ranksDone < size {
				eng.ScheduleAfter(interval, tick)
			}
		}
		eng.ScheduleAfter(interval, tick)
	}

	res := &Result{Profilers: profilers, Counters: counters}
	if runErr := eng.RunFor(cfg.Horizon); runErr != nil {
		var dl *des.DeadlockError
		var hz *des.HorizonError
		if plan == nil || (!errors.As(runErr, &dl) && !errors.As(runErr, &hz)) {
			return nil, fmt.Errorf("cluster: run: %w", runErr)
		}
		// Under fault injection an unfinished run is itself a monitored
		// outcome: mark the stuck ranks lost and salvage what the rest
		// produced.
		res.Truncated = runErr.Error()
		for r := 0; r < size; r++ {
			if st.done[r] || st.lost[r] != nil {
				continue
			}
			st.lost[r] = &LostRank{Rank: r, At: eng.Now(), Reason: "run truncated: " + runErr.Error()}
			if m := st.monitors[r]; m != nil {
				m.Stop()
			}
		}
	}
	if powerFinal != nil {
		// Final power sample at end-of-job time, so the energy counter
		// covers the whole run.
		powerFinal()
	}
	if cfg.Metrics != nil {
		// Final publish with the end-of-job state.
		cfg.Metrics.Publish(cfg.Command, collectSamples(st))
	}

	res.Wallclock = eng.Now()
	for r := 0; r < size; r++ {
		if l := st.lost[r]; l != nil {
			res.Lost = append(res.Lost, *l)
		}
		if in := st.injectors[r]; in != nil {
			res.FaultsInjected += in.Injected()
		}
		if rs := st.resilients[r]; rs != nil {
			res.Retries += rs.Retries()
			res.GaveUp += rs.GaveUp()
		}
	}
	if cfg.Monitor {
		ranks := make([]ipm.RankProfile, size)
		for i, m := range st.monitors {
			i, m := i, m
			rp := ipm.RankProfile{Rank: i}
			// Guarded: a snapshot of a rank that died mid-update must
			// degrade to an empty profile, not take down the job report.
			m.Guard("snapshot", func() { rp = ipm.Snapshot(m) })
			if cfg.Device.Defined() {
				// Device attribution is stamped only for runs that picked
				// a backend, so ad-hoc Configs keep their pre-registry
				// logs byte-identical.
				rp.Device = dev.GPU.Name
			}
			if l := st.lost[i]; l != nil {
				rp.Lost = true
				rp.LostAt = l.At
				rp.LostReason = l.Reason
			}
			ranks[i] = rp
		}
		res.Profile = ipm.NewJobProfile(cfg.Command, cfg.Nodes, ranks)
	}
	return res, nil
}
