package cluster

import (
	"strconv"

	"ipmgo/internal/des"
	"ipmgo/internal/faultsim"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/telemetry"
)

// runState bundles the per-run bookkeeping shared between the simulation
// loop, the watchdog, the metrics tick, and final result assembly.
type runState struct {
	cfg        *Config
	eng        *des.Engine
	devices    []*gpusim.Device
	monitors   []*ipm.Monitor
	injectors  []*faultsim.Injector
	resilients []*faultsim.Resilient
	lost       []*LostRank
	done       []bool
}

// collectSamples assembles the live metric snapshot for one job: per-rank
// monitor metrics (call counts/times, hash-table fidelity), per-GPU busy
// time, fault/resilience counters, and the telemetry recorder's own
// health. It must run inside the DES event loop — it reads monitor tables
// without locking.
func collectSamples(st *runState) []telemetry.Sample {
	cfg := st.cfg
	out := make([]telemetry.Sample, 0, 64)
	out = append(out, telemetry.Sample{
		Name:  "ipm_sim_seconds",
		Help:  "Current virtual (simulated) time of the job.",
		Type:  "gauge",
		Value: st.eng.Now().Seconds(),
	})
	for _, m := range st.monitors {
		if m == nil {
			continue
		}
		m := m
		// Guarded: a half-dead rank's table must not take the scrape down
		// with it — a failed sample is counted and skipped.
		m.Guard("metrics", func() {
			out = append(out, ipm.MetricsSamples(m)...)
		})
	}
	for i, d := range st.devices {
		gpu := []telemetry.Label{{Key: "gpu", Value: strconv.Itoa(i)}}
		out = append(out,
			telemetry.Sample{
				Name: "ipm_gpu_busy_seconds",
				Help: "Accumulated kernel execution time per GPU (overlapping kernels count multiply).",
				Type: "gauge", Labels: gpu,
				Value: d.BusyKernelTime().Seconds(),
			},
			telemetry.Sample{
				Name: "ipm_gpu_ops_total",
				Help: "Device operations enqueued per GPU.",
				Type: "counter", Labels: gpu,
				Value: float64(d.Ops()),
			},
		)
	}
	if cfg.Faults != nil {
		var injected, retries, gaveUp float64
		var nLost int
		for r := range st.lost {
			if st.lost[r] != nil {
				nLost++
			}
			if in := st.injectors[r]; in != nil {
				injected += float64(in.Injected())
			}
			if rs := st.resilients[r]; rs != nil {
				retries += float64(rs.Retries())
				gaveUp += float64(rs.GaveUp())
			}
		}
		out = append(out,
			telemetry.Sample{
				Name:  "ipm_ranks_lost",
				Help:  "Ranks that have died (fault plan, watchdog, or truncation).",
				Type:  "gauge",
				Value: float64(nLost),
			},
			telemetry.Sample{
				Name:  "ipm_faults_injected_total",
				Help:  "CUDA errors delivered by the fault plan across all ranks.",
				Type:  "counter",
				Value: injected,
			},
			telemetry.Sample{
				Name:  "ipm_fault_retries_total",
				Help:  "Transient CUDA failures recovered by the retry layer.",
				Type:  "counter",
				Value: retries,
			},
			telemetry.Sample{
				Name:  "ipm_fault_giveups_total",
				Help:  "Transient CUDA failures that exhausted the retry budget.",
				Type:  "counter",
				Value: gaveUp,
			},
		)
	}
	if rec := cfg.Telemetry; rec != nil {
		out = append(out,
			telemetry.Sample{
				Name:  "ipm_telemetry_spans_total",
				Help:  "Spans recorded into the telemetry ring buffer.",
				Type:  "counter",
				Value: float64(rec.Total()),
			},
			telemetry.Sample{
				Name:  "ipm_telemetry_spans_dropped_total",
				Help:  "Spans overwritten before export (ring buffer drop-oldest).",
				Type:  "counter",
				Value: float64(rec.Dropped()),
			},
		)
	}
	// A trailing job label keeps every series unique when several jobs
	// with overlapping signatures publish to one registry (an experiment
	// sweep watched from a single /metrics endpoint).
	job := telemetry.Label{Key: "job", Value: cfg.Command}
	for i := range out {
		out[i].Labels = append(out[i].Labels, job)
	}
	return out
}
