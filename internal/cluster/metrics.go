package cluster

import (
	"strconv"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/telemetry"
)

// collectSamples assembles the live metric snapshot for one job: per-rank
// monitor metrics (call counts/times, hash-table fidelity), per-GPU busy
// time, and the telemetry recorder's own health. It must run inside the
// DES event loop — it reads monitor tables without locking.
func collectSamples(cfg *Config, eng *des.Engine, monitors []*ipm.Monitor, devices []*gpusim.Device) []telemetry.Sample {
	out := make([]telemetry.Sample, 0, 64)
	out = append(out, telemetry.Sample{
		Name:  "ipm_sim_seconds",
		Help:  "Current virtual (simulated) time of the job.",
		Type:  "gauge",
		Value: eng.Now().Seconds(),
	})
	for _, m := range monitors {
		if m != nil {
			out = append(out, ipm.MetricsSamples(m)...)
		}
	}
	for i, d := range devices {
		gpu := []telemetry.Label{{Key: "gpu", Value: strconv.Itoa(i)}}
		out = append(out,
			telemetry.Sample{
				Name: "ipm_gpu_busy_seconds",
				Help: "Accumulated kernel execution time per GPU (overlapping kernels count multiply).",
				Type: "gauge", Labels: gpu,
				Value: d.BusyKernelTime().Seconds(),
			},
			telemetry.Sample{
				Name: "ipm_gpu_ops_total",
				Help: "Device operations enqueued per GPU.",
				Type: "counter", Labels: gpu,
				Value: float64(d.Ops()),
			},
		)
	}
	if rec := cfg.Telemetry; rec != nil {
		out = append(out,
			telemetry.Sample{
				Name:  "ipm_telemetry_spans_total",
				Help:  "Spans recorded into the telemetry ring buffer.",
				Type:  "counter",
				Value: float64(rec.Total()),
			},
			telemetry.Sample{
				Name:  "ipm_telemetry_spans_dropped_total",
				Help:  "Spans overwritten before export (ring buffer drop-oldest).",
				Type:  "counter",
				Value: float64(rec.Dropped()),
			},
		)
	}
	// A trailing job label keeps every series unique when several jobs
	// with overlapping signatures publish to one registry (an experiment
	// sweep watched from a single /metrics endpoint).
	job := telemetry.Label{Key: "job", Value: cfg.Command}
	for i := range out {
		out[i].Labels = append(out[i].Labels, job)
	}
	return out
}
