package cluster

import (
	"testing"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/perfmodel"
)

// miniApp launches a kernel, copies data back and reduces across ranks.
func miniApp(env *Env) {
	d, err := env.CUDA.Malloc(64)
	if err != nil {
		panic(err)
	}
	k := &cudart.Func{Name: "mini", FixedCost: perfmodel.KernelCost{Fixed: 5 * time.Millisecond}}
	if err := env.CUDA.LaunchKernel(k, cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0); err != nil {
		panic(err)
	}
	buf := make([]byte, 64)
	if err := env.CUDA.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(d), 64, cudart.MemcpyDeviceToHost); err != nil {
		panic(err)
	}
	recv := make([]byte, 8)
	if err := env.MPI.Allreduce(mpisim.Float64Bytes([]float64{1}), recv, mpisim.OpSum); err != nil {
		panic(err)
	}
	if got := mpisim.BytesFloat64(recv)[0]; got != float64(env.Size) {
		panic("allreduce wrong")
	}
	env.Compute(time.Millisecond)
}

func TestMonitoredRunProducesProfile(t *testing.T) {
	cfg := Dirac(2, 2)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = "./mini"
	res, err := Run(cfg, miniApp)
	if err != nil {
		t.Fatal(err)
	}
	jp := res.Profile
	if jp == nil {
		t.Fatal("no profile")
	}
	if jp.NTasks() != 4 || jp.Nodes != 2 {
		t.Errorf("layout = %d tasks on %d nodes", jp.NTasks(), jp.Nodes)
	}
	if jp.DomainSpread(ipm.DomainMPI).Total == 0 {
		t.Error("no MPI time recorded")
	}
	if jp.DomainSpread(ipm.DomainCUDA).Total == 0 {
		t.Error("no CUDA time recorded")
	}
	if jp.GPUPercent() <= 0 {
		t.Error("no GPU kernel time recorded")
	}
	if jp.Ranks[0].Host != "dirac1" || jp.Ranks[3].Host != "dirac2" {
		t.Errorf("hosts: %s %s", jp.Ranks[0].Host, jp.Ranks[3].Host)
	}
}

func TestUnmonitoredRunHasNoProfile(t *testing.T) {
	res, err := Run(Dirac(1, 2), miniApp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Error("unexpected profile")
	}
	if res.Wallclock <= 0 {
		t.Error("no wallclock")
	}
}

func TestCUDAProfileAttaches(t *testing.T) {
	cfg := Dirac(2, 1)
	cfg.CUDAProfile = true
	res, err := Run(cfg, miniApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profilers) != 2 {
		t.Fatalf("profilers = %d", len(res.Profilers))
	}
	for i, p := range res.Profilers {
		if p.Invocations() != 1 {
			t.Errorf("node %d kernel invocations = %d, want 1", i, p.Invocations())
		}
	}
}

func TestSharedGPUSlowsKernels(t *testing.T) {
	// Two ranks sharing one GPU with NULL-stream kernels must serialise;
	// one rank per node with the same work finishes faster in wallclock
	// per kernel count.
	app := func(env *Env) {
		k := &cudart.Func{Name: "busy", FixedCost: perfmodel.KernelCost{Fixed: 50 * time.Millisecond}}
		for i := 0; i < 4; i++ {
			env.CUDA.LaunchKernel(k, cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0)
		}
		env.CUDA.ThreadSynchronize()
	}
	shared, err := Run(Dirac(1, 2), app)
	if err != nil {
		t.Fatal(err)
	}
	exclusive, err := Run(Dirac(2, 1), app)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Wallclock <= exclusive.Wallclock {
		t.Errorf("shared GPU (%v) should be slower than exclusive (%v)", shared.Wallclock, exclusive.Wallclock)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Dirac(2, 2)
	cfg.Monitor = true
	cfg.NoiseAmp = 0.01
	cfg.NoiseSeed = 7
	a, err := Run(cfg, miniApp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, miniApp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Wallclock != b.Wallclock {
		t.Errorf("nondeterministic: %v vs %v", a.Wallclock, b.Wallclock)
	}
	cfg.NoiseSeed = 8
	c, err := Run(cfg, miniApp)
	if err != nil {
		t.Fatal(err)
	}
	if c.Wallclock == a.Wallclock {
		t.Error("different seed produced identical run (noise inactive?)")
	}
}

func TestSharedFilesystemMonitored(t *testing.T) {
	cfg := Dirac(1, 2)
	cfg.Monitor = true
	res, err := Run(cfg, func(env *Env) {
		if env.Rank == 0 {
			f, err := env.FS.Open("/scratch/ckpt", true)
			if err != nil {
				panic(err)
			}
			if _, err := f.Write(make([]byte, 1<<20)); err != nil {
				panic(err)
			}
			if err := f.Close(); err != nil {
				panic(err)
			}
		}
		env.MPI.Barrier()
		if env.Rank == 1 {
			f, err := env.FS.Open("/scratch/ckpt", false)
			if err != nil {
				panic(err)
			}
			buf := make([]byte, 1<<20)
			if n, err := f.Read(buf); err != nil || n != 1<<20 {
				panic("short read")
			}
			f.Close()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 wrote, rank 1 read; both monitored.
	if got := res.Profile.Ranks[0].FuncTime("fwrite"); got == 0 {
		t.Error("fwrite not recorded on rank 0")
	}
	if got := res.Profile.Ranks[1].FuncTime("fread"); got == 0 {
		t.Error("fread not recorded on rank 1")
	}
	if got := res.Profile.FuncSpread("fopen").Total; got == 0 {
		t.Error("fopen not recorded")
	}
}

func TestCountersAttach(t *testing.T) {
	cfg := Dirac(2, 1)
	cfg.Counters = true
	res, err := Run(cfg, miniApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counters) != 2 {
		t.Fatalf("counters = %d components", len(res.Counters))
	}
	for i, c := range res.Counters {
		if len(c.Samples()) != 1 {
			t.Errorf("node %d counter samples = %d, want 1", i, len(c.Samples()))
		}
	}
}

func TestHorizonExceeded(t *testing.T) {
	cfg := Dirac(1, 1)
	cfg.Horizon = time.Millisecond
	_, err := Run(cfg, func(env *Env) { env.Proc.Sleep(time.Hour) })
	if err == nil {
		t.Fatal("horizon violation not reported")
	}
}

func TestParallelRegionUnmonitored(t *testing.T) {
	res, err := Run(Dirac(1, 1), func(env *Env) {
		stats, err := env.Parallel("r", 4, func(tid int, p *des.Proc) {
			p.Sleep(time.Millisecond)
		})
		if err != nil || stats.Elapsed != time.Millisecond {
			panic("unmonitored region wrong")
		}
		if _, err := env.ParallelFor("l", 2, 10, func(i int) time.Duration { return time.Microsecond }); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Error("unexpected profile")
	}
}

func TestBadLayoutRejected(t *testing.T) {
	if _, err := Run(Dirac(0, 1), miniApp); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Run(Dirac(1, 0), miniApp); err == nil {
		t.Error("zero ranks accepted")
	}
}
