package cudaprof

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

func spec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.KernelDispatch = 0
	s.ContextInit = 0
	return s
}

func runKernels(t *testing.T, durations map[string][]time.Duration) *Profiler {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	p := Attach(dev)
	e.Spawn("host", func(proc *des.Proc) {
		s := dev.CreateStream()
		var last *gpusim.Op
		// Deterministic order: sort names.
		names := make([]string, 0, len(durations))
		for n := range durations {
			names = append(names, n)
		}
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if names[j] < names[i] {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
		for _, n := range names {
			for _, d := range durations[n] {
				last = dev.LaunchKernel(s, n, perfmodel.KernelCost{Fixed: d}, [3]int{}, [3]int{}, nil)
			}
		}
		if last != nil {
			proc.Wait(last.Done())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStatsAggregation(t *testing.T) {
	p := runKernels(t, map[string][]time.Duration{
		"a": {time.Millisecond, 3 * time.Millisecond},
		"b": {10 * time.Millisecond},
	})
	if p.Invocations() != 3 {
		t.Fatalf("invocations = %d, want 3", p.Invocations())
	}
	if p.TotalKernelTime() != 14*time.Millisecond {
		t.Errorf("total = %v, want 14ms", p.TotalKernelTime())
	}
	stats := p.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats len = %d", len(stats))
	}
	// Sorted by total desc: b first.
	if stats[0].Name != "b" || stats[0].Total != 10*time.Millisecond {
		t.Errorf("stats[0] = %+v", stats[0])
	}
	if stats[1].Name != "a" || stats[1].Invocations != 2 ||
		stats[1].Min != time.Millisecond || stats[1].Max != 3*time.Millisecond {
		t.Errorf("stats[1] = %+v", stats[1])
	}
}

func TestWriteLogFormat(t *testing.T) {
	p := runKernels(t, map[string][]time.Duration{"square": {1153376 * time.Nanosecond}})
	var sb strings.Builder
	if err := p.WriteLog(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# CUDA_PROFILE_LOG_VERSION 2.0") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "method=[ square ] gputime=[ 1153.376 ]") {
		t.Errorf("unexpected log:\n%s", out)
	}
}

func TestChainsPreviousCallback(t *testing.T) {
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	var prior int
	dev.OnKernelComplete = func(gpusim.KernelRecord) { prior++ }
	p := Attach(dev)
	e.Spawn("host", func(proc *des.Proc) {
		op := dev.LaunchKernel(dev.DefaultStream(), "k", perfmodel.KernelCost{Fixed: time.Millisecond}, [3]int{}, [3]int{}, nil)
		proc.Wait(op.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if prior != 1 || p.Invocations() != 1 {
		t.Errorf("chain broken: prior=%d profiler=%d", prior, p.Invocations())
	}
}

func TestEmptyProfiler(t *testing.T) {
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	p := Attach(dev)
	if p.TotalKernelTime() != 0 || len(p.Stats()) != 0 || p.Invocations() != 0 {
		t.Error("empty profiler not empty")
	}
	var sb strings.Builder
	if err := p.WriteLog(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "#") {
		t.Error("empty log missing header")
	}
}
