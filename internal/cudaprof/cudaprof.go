// Package cudaprof simulates the NVIDIA CUDA profiler (the
// CUDA_PROFILE=1 command-line profiler of the CUDA 3.x toolkit): it
// records the exact execution interval of every kernel straight from the
// device simulator and writes a text trace in the profiler's log format.
//
// In the paper's Table I this profiler is the ground-truth baseline that
// IPM's event-bracketed kernel timing is compared against. Here the
// profiler sees the simulator's exact kernel intervals, so the comparison
// measures precisely the overhead IPM's event mechanism adds.
package cudaprof

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ipmgo/internal/gpusim"
)

// Profiler accumulates exact kernel execution records from one device.
type Profiler struct {
	records []gpusim.KernelRecord
	device  string
}

// Attach registers the profiler on the device, chaining any previously
// installed completion callback.
func Attach(dev *gpusim.Device) *Profiler {
	p := &Profiler{device: dev.Model().GPU.Name}
	prev := dev.OnKernelComplete
	dev.OnKernelComplete = func(r gpusim.KernelRecord) {
		if prev != nil {
			prev(r)
		}
		p.records = append(p.records, r)
	}
	return p
}

// Records returns all kernel records in completion order.
func (p *Profiler) Records() []gpusim.KernelRecord { return p.records }

// KernelStat summarises all invocations of one kernel.
type KernelStat struct {
	Name        string
	Invocations int
	Total       time.Duration
	Min, Max    time.Duration
}

// Stats aggregates records per kernel name, sorted by descending total
// time (ties broken by name).
func (p *Profiler) Stats() []KernelStat {
	byName := make(map[string]*KernelStat)
	for _, r := range p.records {
		d := r.Duration()
		s, ok := byName[r.Name]
		if !ok {
			s = &KernelStat{Name: r.Name, Min: d, Max: d}
			byName[r.Name] = s
		}
		s.Invocations++
		s.Total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	out := make([]KernelStat, 0, len(byName))
	for _, s := range byName {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalKernelTime sums the exact execution time over all invocations of
// all kernels — the quantity Table I compares.
func (p *Profiler) TotalKernelTime() time.Duration {
	var t time.Duration
	for _, r := range p.records {
		t += r.Duration()
	}
	return t
}

// Invocations returns the number of kernel invocations recorded.
func (p *Profiler) Invocations() int { return len(p.records) }

// WriteLog writes the trace in the CUDA 3.x command-line profiler's text
// format (gputime in microseconds, as the real tool reports).
func (p *Profiler) WriteLog(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# CUDA_PROFILE_LOG_VERSION 2.0"); err != nil {
		return err
	}
	// The device line names the attached backend; a zero-value Profiler
	// (tests constructing one directly) keeps the historical default.
	device := p.device
	if device == "" {
		device = "Tesla C2050"
	}
	if _, err := fmt.Fprintf(w, "# CUDA_DEVICE 0 %s (simulated)\n", device); err != nil {
		return err
	}
	for _, r := range p.records {
		us := float64(r.Duration()) / float64(time.Microsecond)
		if _, err := fmt.Fprintf(w, "method=[ %s ] gputime=[ %.3f ] streamid=[ %d ]\n",
			r.Name, us, r.Stream); err != nil {
			return err
		}
	}
	return nil
}
