package iosim

import (
	"testing"
	"testing/quick"
	"time"

	"ipmgo/internal/des"
)

func run(t *testing.T, fn func(fs *FS, p *des.Proc)) time.Duration {
	t.Helper()
	e := des.NewEngine()
	fs := NewFS(e, GPFSScratch())
	e.Spawn("rank0", func(p *des.Proc) { fn(fs, p) })
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func TestWriteReadRoundTrip(t *testing.T) {
	run(t, func(fs *FS, p *des.Proc) {
		h, err := fs.Open(p, "/scratch/out.dat", true)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := h.Write([]byte("hello world")); err != nil || n != 11 {
			t.Fatalf("write = %d, %v", n, err)
		}
		if err := h.SeekTo(6); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 16)
		n, err := h.Read(buf)
		if err != nil || n != 5 || string(buf[:5]) != "world" {
			t.Fatalf("read = %d %q %v", n, buf[:n], err)
		}
		// At EOF.
		if n, _ := h.Read(buf); n != 0 {
			t.Errorf("EOF read = %d", n)
		}
		if h.Size() != 11 {
			t.Errorf("size = %d", h.Size())
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(nil); err == nil {
			t.Error("write after close accepted")
		}
	})
}

func TestOpenSemantics(t *testing.T) {
	run(t, func(fs *FS, p *des.Proc) {
		if _, err := fs.Open(p, "/missing", false); err == nil {
			t.Error("open of missing file without create accepted")
		}
		h, err := fs.Open(p, "/a", true)
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte{1, 2, 3})
		h.Close()
		// Reopen sees the data; two handles share the file.
		h2, err := fs.Open(p, "/a", false)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 3)
		if n, _ := h2.Read(buf); n != 3 || buf[2] != 3 {
			t.Errorf("reopen read = %d %v", n, buf)
		}
		if got := fs.Files(); len(got) != 1 || got[0] != "/a" {
			t.Errorf("files = %v", got)
		}
		if err := fs.Unlink(p, "/a"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink(p, "/a"); err == nil {
			t.Error("double unlink accepted")
		}
	})
}

func TestIOTimeScalesWithBytes(t *testing.T) {
	timeFor := func(n int) time.Duration {
		return run(t, func(fs *FS, p *des.Proc) {
			h, _ := fs.Open(p, "/f", true)
			h.Write(make([]byte, n))
			h.Close()
		})
	}
	small, big := timeFor(1<<10), timeFor(1<<26)
	if big <= small {
		t.Errorf("64MiB write (%v) not slower than 1KiB (%v)", big, small)
	}
	// 64 MiB at 1.2 GB/s ~ 56 ms.
	if big < 40*time.Millisecond || big > 100*time.Millisecond {
		t.Errorf("64MiB write = %v, want ~56ms", big)
	}
}

func TestContentionSlowsConcurrentWriters(t *testing.T) {
	runN := func(writers int) time.Duration {
		e := des.NewEngine()
		fs := NewFS(e, GPFSScratch())
		for i := 0; i < writers; i++ {
			i := i
			e.Spawn("w", func(p *des.Proc) {
				h, _ := fs.Open(p, "/f"+string(rune('a'+i)), true)
				h.Write(make([]byte, 8<<20))
				h.Close()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if one, four := runN(1), runN(4); four <= one {
		t.Errorf("4 concurrent writers (%v) not slower than 1 (%v)", four, one)
	}
}

func TestSeekValidation(t *testing.T) {
	run(t, func(fs *FS, p *des.Proc) {
		h, _ := fs.Open(p, "/f", true)
		if err := h.SeekTo(-1); err == nil {
			t.Error("negative seek accepted")
		}
		if h.Name() != "/f" {
			t.Errorf("name = %s", h.Name())
		}
	})
}

// Property: data written at any offset reads back identically.
func TestPropWriteReadAtOffset(t *testing.T) {
	prop := func(off uint16, data []byte) bool {
		ok := true
		run(t, func(fs *FS, p *des.Proc) {
			h, _ := fs.Open(p, "/p", true)
			h.SeekTo(int64(off))
			h.Write(data)
			h.SeekTo(int64(off))
			buf := make([]byte, len(data))
			n, _ := h.Read(buf)
			if n != len(data) {
				ok = len(data) == 0
				return
			}
			for i := range data {
				if buf[i] != data[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
