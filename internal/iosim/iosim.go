// Package iosim simulates a parallel file system for file-I/O
// monitoring. IPM's event inventory covers POSIX I/O alongside MPI and
// CUDA (paper Section II: "recently been extended to cover a number of
// other domains such as OpenMP and file-I/O"); this package provides the
// substrate: a shared filesystem with metadata latency, per-client
// streaming bandwidth, and server-side contention when many ranks do I/O
// at once — the behaviour of the GPFS scratch system on a Dirac-class
// cluster.
//
// Files are functional (bytes written can be read back) and all
// operations consume virtual time on the calling process.
package iosim

import (
	"fmt"
	"sort"
	"time"

	"ipmgo/internal/des"
)

// Spec models the filesystem's performance characteristics.
type Spec struct {
	Name         string
	MetadataLat  time.Duration // open/close/stat round trip
	BandwidthGBs float64       // per-stream bandwidth
	// ContentionFactor divides effective bandwidth by
	// 1 + ContentionFactor*(activeStreams-1).
	ContentionFactor float64
}

// GPFSScratch returns parameters representative of a mid-2010s GPFS
// scratch filesystem.
func GPFSScratch() Spec {
	return Spec{
		Name:             "gpfs-scratch",
		MetadataLat:      500 * time.Microsecond,
		BandwidthGBs:     1.2,
		ContentionFactor: 0.5,
	}
}

// FS is a simulated shared filesystem. All ranks of a job share one FS
// value.
type FS struct {
	eng    *des.Engine
	spec   Spec
	files  map[string]*file
	active int // concurrently transferring streams
}

type file struct {
	data []byte
}

// Handle is an open file descriptor bound to one process.
type Handle struct {
	fs     *FS
	proc   *des.Proc
	name   string
	f      *file
	offset int64
	closed bool
}

// NewFS creates a filesystem on the engine.
func NewFS(eng *des.Engine, spec Spec) *FS {
	return &FS{eng: eng, spec: spec, files: make(map[string]*file)}
}

// Spec returns the filesystem's performance model.
func (fs *FS) Spec() Spec { return fs.spec }

// Files lists existing paths, sorted.
func (fs *FS) Files() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Open opens a file for reading and writing, creating it if create is
// set. It charges the metadata round trip.
func (fs *FS) Open(proc *des.Proc, name string, create bool) (*Handle, error) {
	proc.Sleep(fs.spec.MetadataLat)
	f, ok := fs.files[name]
	if !ok {
		if !create {
			return nil, fmt.Errorf("iosim: open %s: no such file", name)
		}
		f = &file{}
		fs.files[name] = f
	}
	return &Handle{fs: fs, proc: proc, name: name, f: f}, nil
}

// Unlink removes a file (metadata cost).
func (fs *FS) Unlink(proc *des.Proc, name string) error {
	proc.Sleep(fs.spec.MetadataLat)
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("iosim: unlink %s: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// transfer charges the time for moving n bytes under the current
// contention level.
func (fs *FS) transfer(proc *des.Proc, n int64) {
	fs.active++
	bw := fs.spec.BandwidthGBs / (1 + fs.spec.ContentionFactor*float64(fs.active-1))
	d := time.Duration(float64(n) / (bw * 1e9) * float64(time.Second))
	proc.Sleep(d)
	fs.active--
}

func (h *Handle) check() error {
	if h.closed {
		return fmt.Errorf("iosim: %s: file closed", h.name)
	}
	return nil
}

// Write appends/overwrites at the current offset and advances it.
func (h *Handle) Write(data []byte) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	end := h.offset + int64(len(data))
	if int64(len(h.f.data)) < end {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[h.offset:end], data)
	h.offset = end
	h.fs.transfer(h.proc, int64(len(data)))
	return len(data), nil
}

// Read fills buf from the current offset and advances it. Returns the
// byte count read (possibly short at EOF).
func (h *Handle) Read(buf []byte) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	if h.offset >= int64(len(h.f.data)) {
		return 0, nil // EOF
	}
	n := copy(buf, h.f.data[h.offset:])
	h.offset += int64(n)
	h.fs.transfer(h.proc, int64(n))
	return n, nil
}

// SeekTo sets the offset (no I/O cost).
func (h *Handle) SeekTo(offset int64) error {
	if err := h.check(); err != nil {
		return err
	}
	if offset < 0 {
		return fmt.Errorf("iosim: %s: negative offset %d", h.name, offset)
	}
	h.offset = offset
	return nil
}

// Size returns the current file size.
func (h *Handle) Size() int64 { return int64(len(h.f.data)) }

// Close closes the handle (metadata cost).
func (h *Handle) Close() error {
	if err := h.check(); err != nil {
		return err
	}
	h.closed = true
	h.proc.Sleep(h.fs.spec.MetadataLat)
	return nil
}

// Name returns the file path.
func (h *Handle) Name() string { return h.name }
