// Package ipmblas implements IPM's monitoring layer for accelerated
// numerical libraries (paper Section III-D): decorators for the CUBLAS
// and CUFFT interfaces that time every library call and record the size
// of the operation in the bytes attribute of the event signature, so that
// later analysis can correlate achieved performance with operand size.
//
// There are two monitoring levels on a real system: the library calls
// themselves (these wrappers, cublasDgemm etc.) and the CUDA runtime calls
// the library issues internally (covered by internal/ipmcuda when the
// library's runtime handle is wrapped). Both compose here exactly as with
// LD_PRELOAD.
package ipmblas

import (
	"ipmgo/internal/cublas"
	"ipmgo/internal/cudart"
	"ipmgo/internal/cufft"
	"ipmgo/internal/ipm"
)

// BLAS wraps a cublas.BLAS with IPM monitoring.
type BLAS struct {
	inner cublas.BLAS
	mon   *ipm.Monitor
}

var _ cublas.BLAS = (*BLAS)(nil)

// WrapBLAS interposes IPM between the application and CUBLAS.
func WrapBLAS(inner cublas.BLAS, mon *ipm.Monitor) *BLAS {
	return &BLAS{inner: inner, mon: mon}
}

// Pre-hashed signature handles, one per monitored library symbol: each
// constant name is hashed once at package init, never per call.
var (
	refAlloc     = ipm.NewSigRef("cublasAlloc")
	refFree      = ipm.NewSigRef("cublasFree")
	refSetMatrix = ipm.NewSigRef("cublasSetMatrix")
	refGetMatrix = ipm.NewSigRef("cublasGetMatrix")
	refSetVector = ipm.NewSigRef("cublasSetVector")
	refGetVector = ipm.NewSigRef("cublasGetVector")
	refDaxpy     = ipm.NewSigRef("cublasDaxpy")
	refDscal     = ipm.NewSigRef("cublasDscal")
	refDcopy     = ipm.NewSigRef("cublasDcopy")
	refDdot      = ipm.NewSigRef("cublasDdot")
	refDnrm2     = ipm.NewSigRef("cublasDnrm2")
	refIdamax    = ipm.NewSigRef("cublasIdamax")
	refDgemv     = ipm.NewSigRef("cublasDgemv")
	refDgemm     = ipm.NewSigRef("cublasDgemm")
	refZgemm     = ipm.NewSigRef("cublasZgemm")
	refDtrsm     = ipm.NewSigRef("cublasDtrsm")
	refShutdown  = ipm.NewSigRef("cublasShutdown")
	refPlan1d    = ipm.NewSigRef("cufftPlan1d")
	refPlan2d    = ipm.NewSigRef("cufftPlan2d")
	refExecZ2Z   = ipm.NewSigRef("cufftExecZ2Z")
	refDestroy   = ipm.NewSigRef("cufftDestroy")
)

func (b *BLAS) timed(ref ipm.SigRef, bytes int64, fn func()) {
	begin := b.mon.Now()
	fn()
	b.mon.ObserveRef(ref, bytes, b.mon.Now()-begin)
}

// Alloc wraps cublasAlloc.
func (b *BLAS) Alloc(n, elemSize int) (cudart.DevPtr, error) {
	var p cudart.DevPtr
	var err error
	b.timed(refAlloc, int64(n)*int64(elemSize), func() { p, err = b.inner.Alloc(n, elemSize) })
	return p, err
}

// Free wraps cublasFree.
func (b *BLAS) Free(p cudart.DevPtr) error {
	var err error
	b.timed(refFree, 0, func() { err = b.inner.Free(p) })
	return err
}

// SetMatrix wraps cublasSetMatrix.
func (b *BLAS) SetMatrix(rows, cols, elemSize int, src []byte, lda int, dst cudart.DevPtr, ldb int) error {
	var err error
	n := int64(rows) * int64(cols) * int64(elemSize)
	b.timed(refSetMatrix, n, func() { err = b.inner.SetMatrix(rows, cols, elemSize, src, lda, dst, ldb) })
	return err
}

// GetMatrix wraps cublasGetMatrix.
func (b *BLAS) GetMatrix(rows, cols, elemSize int, src cudart.DevPtr, lda int, dst []byte, ldb int) error {
	var err error
	n := int64(rows) * int64(cols) * int64(elemSize)
	b.timed(refGetMatrix, n, func() { err = b.inner.GetMatrix(rows, cols, elemSize, src, lda, dst, ldb) })
	return err
}

// SetVector wraps cublasSetVector.
func (b *BLAS) SetVector(n, elemSize int, src []byte, incx int, dst cudart.DevPtr, incy int) error {
	var err error
	b.timed(refSetVector, int64(n)*int64(elemSize), func() { err = b.inner.SetVector(n, elemSize, src, incx, dst, incy) })
	return err
}

// GetVector wraps cublasGetVector.
func (b *BLAS) GetVector(n, elemSize int, src cudart.DevPtr, incx int, dst []byte, incy int) error {
	var err error
	b.timed(refGetVector, int64(n)*int64(elemSize), func() { err = b.inner.GetVector(n, elemSize, src, incx, dst, incy) })
	return err
}

// Daxpy wraps cublasDaxpy.
func (b *BLAS) Daxpy(n int, alpha float64, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) error {
	var err error
	b.timed(refDaxpy, int64(n)*8, func() { err = b.inner.Daxpy(n, alpha, x, incx, y, incy) })
	return err
}

// Dscal wraps cublasDscal.
func (b *BLAS) Dscal(n int, alpha float64, x cudart.DevPtr, incx int) error {
	var err error
	b.timed(refDscal, int64(n)*8, func() { err = b.inner.Dscal(n, alpha, x, incx) })
	return err
}

// Dcopy wraps cublasDcopy.
func (b *BLAS) Dcopy(n int, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) error {
	var err error
	b.timed(refDcopy, int64(n)*8, func() { err = b.inner.Dcopy(n, x, incx, y, incy) })
	return err
}

// Ddot wraps cublasDdot.
func (b *BLAS) Ddot(n int, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) (float64, error) {
	var v float64
	var err error
	b.timed(refDdot, int64(n)*8, func() { v, err = b.inner.Ddot(n, x, incx, y, incy) })
	return v, err
}

// Dnrm2 wraps cublasDnrm2.
func (b *BLAS) Dnrm2(n int, x cudart.DevPtr, incx int) (float64, error) {
	var v float64
	var err error
	b.timed(refDnrm2, int64(n)*8, func() { v, err = b.inner.Dnrm2(n, x, incx) })
	return v, err
}

// Idamax wraps cublasIdamax.
func (b *BLAS) Idamax(n int, x cudart.DevPtr, incx int) (int, error) {
	var v int
	var err error
	b.timed(refIdamax, int64(n)*8, func() { v, err = b.inner.Idamax(n, x, incx) })
	return v, err
}

// Dgemv wraps cublasDgemv.
func (b *BLAS) Dgemv(trans byte, m, n int, alpha float64, a cudart.DevPtr, lda int,
	x cudart.DevPtr, incx int, beta float64, y cudart.DevPtr, incy int) error {
	var err error
	b.timed(refDgemv, int64(m)*int64(n)*8, func() {
		err = b.inner.Dgemv(trans, m, n, alpha, a, lda, x, incx, beta, y, incy)
	})
	return err
}

// Dgemm wraps cublasDgemm. The bytes attribute records the operand
// footprint so performance can be correlated with operation size.
func (b *BLAS) Dgemm(ta, tb byte, m, n, k int, alpha float64, a cudart.DevPtr, lda int,
	bb cudart.DevPtr, ldb int, beta float64, c cudart.DevPtr, ldc int) error {
	var err error
	bytes := 8 * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n))
	b.timed(refDgemm, bytes, func() {
		err = b.inner.Dgemm(ta, tb, m, n, k, alpha, a, lda, bb, ldb, beta, c, ldc)
	})
	return err
}

// Zgemm wraps cublasZgemm.
func (b *BLAS) Zgemm(ta, tb byte, m, n, k int, alpha complex128, a cudart.DevPtr, lda int,
	bb cudart.DevPtr, ldb int, beta complex128, c cudart.DevPtr, ldc int) error {
	var err error
	bytes := 16 * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n))
	b.timed(refZgemm, bytes, func() {
		err = b.inner.Zgemm(ta, tb, m, n, k, alpha, a, lda, bb, ldb, beta, c, ldc)
	})
	return err
}

// Dtrsm wraps cublasDtrsm.
func (b *BLAS) Dtrsm(side, uplo, trans, diag byte, m, n int, alpha float64,
	a cudart.DevPtr, lda int, bb cudart.DevPtr, ldb int) error {
	var err error
	b.timed(refDtrsm, int64(m)*int64(n)*8, func() {
		err = b.inner.Dtrsm(side, uplo, trans, diag, m, n, alpha, a, lda, bb, ldb)
	})
	return err
}

// Shutdown wraps cublasShutdown.
func (b *BLAS) Shutdown() error {
	var err error
	b.timed(refShutdown, 0, func() { err = b.inner.Shutdown() })
	return err
}

// FFT wraps a cufft.FFT with IPM monitoring.
type FFT struct {
	inner cufft.FFT
	mon   *ipm.Monitor
	sizes map[cufft.Plan]int64 // transform footprint per plan for bytes
}

var _ cufft.FFT = (*FFT)(nil)

// WrapFFT interposes IPM between the application and CUFFT.
func WrapFFT(inner cufft.FFT, mon *ipm.Monitor) *FFT {
	return &FFT{inner: inner, mon: mon, sizes: make(map[cufft.Plan]int64)}
}

func (f *FFT) timed(ref ipm.SigRef, bytes int64, fn func()) {
	begin := f.mon.Now()
	fn()
	f.mon.ObserveRef(ref, bytes, f.mon.Now()-begin)
}

// Plan1d wraps cufftPlan1d.
func (f *FFT) Plan1d(nx, batch int) (cufft.Plan, error) {
	var p cufft.Plan
	var err error
	f.timed(refPlan1d, int64(nx)*int64(batch)*16, func() { p, err = f.inner.Plan1d(nx, batch) })
	if err == nil {
		f.sizes[p] = int64(nx) * int64(batch) * 16
	}
	return p, err
}

// Plan2d wraps cufftPlan2d.
func (f *FFT) Plan2d(nx, ny int) (cufft.Plan, error) {
	var p cufft.Plan
	var err error
	f.timed(refPlan2d, int64(nx)*int64(ny)*16, func() { p, err = f.inner.Plan2d(nx, ny) })
	if err == nil {
		f.sizes[p] = int64(nx) * int64(ny) * 16
	}
	return p, err
}

// ExecZ2Z wraps cufftExecZ2Z.
func (f *FFT) ExecZ2Z(plan cufft.Plan, idata, odata cudart.DevPtr, direction int) error {
	var err error
	f.timed(refExecZ2Z, f.sizes[plan], func() { err = f.inner.ExecZ2Z(plan, idata, odata, direction) })
	return err
}

// Destroy wraps cufftDestroy.
func (f *FFT) Destroy(plan cufft.Plan) error {
	var err error
	f.timed(refDestroy, 0, func() { err = f.inner.Destroy(plan) })
	delete(f.sizes, plan)
	return err
}
