package ipmblas

import (
	"testing"
	"time"

	"ipmgo/internal/cublas"
	"ipmgo/internal/cudart"
	"ipmgo/internal/cufft"
	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/perfmodel"
)

func spec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.ContextInit = 0
	s.APICallCost = 0
	return s
}

// harness runs fn with a fully monitored stack: IPM wraps the CUDA runtime
// (ipmcuda) AND the libraries (ipmblas), as on a real deployment.
func harness(t *testing.T, fn func(b cublas.BLAS, f cufft.FFT, mon *ipm.Monitor)) *ipm.Monitor {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	var mon *ipm.Monitor
	e.Spawn("host", func(p *des.Proc) {
		rt := cudart.NewRuntime(p, dev, cudart.Options{})
		mon = ipm.NewMonitor(0, "dirac1", "paratec", p.Now, 0)
		mon.Start()
		api := ipmcuda.Wrap(rt, mon, p, ipmcuda.Options{KernelTiming: true, HostIdle: true})
		h, err := cublas.Init(api)
		if err != nil {
			t.Error(err)
			return
		}
		fn(WrapBLAS(h, mon), WrapFFT(cufft.New(api), mon), mon)
		api.Flush()
		mon.Stop()
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return mon
}

func entry(mon *ipm.Monitor, name string) (ipm.Stats, int64) {
	var s ipm.Stats
	var bytes int64
	for _, e := range mon.Table().Entries() {
		if e.Sig.Name == name {
			s.Merge(e.Stats)
			bytes = e.Sig.Bytes
		}
	}
	return s, bytes
}

func TestThunkingGemmFullyMonitored(t *testing.T) {
	const m, n, k = 16, 16, 16
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = 1
	}
	for i := range b {
		b[i] = 2
	}
	mon := harness(t, func(bl cublas.BLAS, f cufft.FFT, mon *ipm.Monitor) {
		if err := cublas.DgemmThunk(bl, 'N', 'N', m, n, k, 1, a, m, b, k, 0, c, m); err != nil {
			t.Error(err)
		}
	})
	// Result correct through the double-monitored stack.
	for i := range c {
		if c[i] != 32 { // 16 * 1 * 2
			t.Fatalf("c[%d] = %v, want 32", i, c[i])
		}
	}
	// Library-level events present with byte attributes.
	if s, bytes := entry(mon, "cublasSetMatrix"); s.Count != 3 || bytes != m*k*8 {
		t.Errorf("cublasSetMatrix = %+v bytes=%d", s, bytes)
	}
	if s, _ := entry(mon, "cublasGetMatrix"); s.Count != 1 {
		t.Errorf("cublasGetMatrix = %+v", s)
	}
	if s, bytes := entry(mon, "cublasDgemm"); s.Count != 1 || bytes != 8*(m*k+k*n+m*n) {
		t.Errorf("cublasDgemm = %+v bytes=%d", s, bytes)
	}
	// Runtime-level events from inside the library also present.
	if s, _ := entry(mon, "cudaMemcpy(H2D)"); s.Count != 3 {
		t.Errorf("inner cudaMemcpy(H2D) = %+v", s)
	}
	// The dgemm kernel was timed on the GPU.
	if s, _ := entry(mon, ipm.ExecKernelName(0, "dgemm_nn_kernel")); s.Count != 1 {
		t.Errorf("kernel timing entry = %+v", s)
	}
}

func TestLibraryTimeIncludesTransferDominance(t *testing.T) {
	// For a small gemm the paper's observation holds: transfer time dwarfs
	// compute. Use a matrix large enough to be measurable.
	const m, n, k = 64, 64, 64
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	c := make([]float64, m*n)
	mon := harness(t, func(bl cublas.BLAS, f cufft.FFT, mon *ipm.Monitor) {
		if err := cublas.DgemmThunk(bl, 'N', 'N', m, n, k, 1, a, m, b, k, 0, c, m); err != nil {
			t.Error(err)
		}
	})
	set, _ := entry(mon, "cublasSetMatrix")
	get, _ := entry(mon, "cublasGetMatrix")
	gemm, _ := entry(mon, "cublasDgemm")
	transfer := set.Total + get.Total
	if transfer <= gemm.Total {
		t.Errorf("transfers (%v) should dominate launch-side gemm time (%v) for 64^3", transfer, gemm.Total)
	}
}

func TestFFTMonitored(t *testing.T) {
	mon := harness(t, func(bl cublas.BLAS, f cufft.FFT, mon *ipm.Monitor) {
		plan, err := f.Plan1d(256, 2)
		if err != nil {
			t.Error(err)
			return
		}
		d, err := bl.Alloc(256*2, 16)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.ExecZ2Z(plan, d, d, cufft.Forward); err != nil {
			t.Error(err)
		}
		if err := f.Destroy(plan); err != nil {
			t.Error(err)
		}
	})
	if s, bytes := entry(mon, "cufftExecZ2Z"); s.Count != 1 || bytes != 256*2*16 {
		t.Errorf("cufftExecZ2Z = %+v bytes=%d", s, bytes)
	}
	if s, _ := entry(mon, "cufftPlan1d"); s.Count != 1 {
		t.Errorf("cufftPlan1d = %+v", s)
	}
	if s, _ := entry(mon, "cufftDestroy"); s.Count != 1 {
		t.Errorf("cufftDestroy = %+v", s)
	}
	// CUFFT kernel timed on device.
	if s, _ := entry(mon, ipm.ExecKernelName(0, "cufft_z2z_kernel")); s.Count != 1 {
		t.Errorf("fft kernel timing = %+v", s)
	}
}

func TestDomainClassificationOfLibraryCalls(t *testing.T) {
	mon := harness(t, func(bl cublas.BLAS, f cufft.FFT, mon *ipm.Monitor) {
		d, _ := bl.Alloc(64, 8)
		bl.Dscal(64, 2, d, 1)
		plan, _ := f.Plan1d(64, 1)
		dd, _ := bl.Alloc(64, 16)
		f.ExecZ2Z(plan, dd, dd, cufft.Forward)
	})
	jp := ipm.NewJobProfile("x", 1, []ipm.RankProfile{ipm.Snapshot(mon)})
	if jp.DomainSpread(ipm.DomainCUBLAS).Total == 0 {
		t.Error("no CUBLAS domain time")
	}
	if jp.DomainSpread(ipm.DomainCUFFT).Total == 0 {
		t.Error("no CUFFT domain time")
	}
	if jp.DomainSpread(ipm.DomainCUDA).Total == 0 {
		t.Error("no CUDA domain time")
	}
}
