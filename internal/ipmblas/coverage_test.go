package ipmblas

import (
	"testing"

	"ipmgo/internal/cublas"
	"ipmgo/internal/cudart"
	"ipmgo/internal/cufft"
	"ipmgo/internal/ipm"
)

// TestEveryBLASWrapperRecords drives each wrapped library entry point and
// checks its event lands in the hash table under the cublas*/cufft* name.
func TestEveryBLASWrapperRecords(t *testing.T) {
	mon := harness(t, func(b cublas.BLAS, f cufft.FFT, mon *ipm.Monitor) {
		const n = 8
		x, err := b.Alloc(n*n, 8)
		if err != nil {
			t.Fatal(err)
		}
		y, _ := b.Alloc(n*n, 8)
		z, _ := b.Alloc(n*n, 16)

		host := make([]byte, n*n*8)
		b.SetMatrix(n, n, 8, host, n, x, n)
		b.GetMatrix(n, n, 8, x, n, host, n)
		b.SetVector(n, 8, host[:n*8], 1, y, 1)
		b.GetVector(n, 8, y, 1, host[:n*8], 1)

		b.Daxpy(n, 1.5, x, 1, y, 1)
		b.Dscal(n, 2, x, 1)
		b.Dcopy(n, x, 1, y, 1)
		if _, err := b.Ddot(n, x, 1, y, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Dnrm2(n, x, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Idamax(n, x, 1); err != nil {
			t.Fatal(err)
		}
		b.Dgemv('N', n, n, 1, x, n, y, 1, 0, y, 1)
		b.Dgemm('N', 'N', n, n, n, 1, x, n, y, n, 0, x, n)
		b.Zgemm('N', 'N', 4, 4, 4, 1, z, 4, z, 4, 0, z, 4)
		b.Dtrsm('L', 'L', 'N', 'U', n, n, 1, x, n, y, n)
		b.Free(z)
		b.Shutdown()

		plan2, err := f.Plan2d(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := b.Alloc(16, 16)
		f.ExecZ2Z(plan2, g, g, cufft.Forward)
		f.Destroy(plan2)
	})
	want := []string{
		"cublasAlloc", "cublasFree", "cublasSetMatrix", "cublasGetMatrix",
		"cublasSetVector", "cublasGetVector",
		"cublasDaxpy", "cublasDscal", "cublasDcopy", "cublasDdot", "cublasDnrm2",
		"cublasIdamax", "cublasDgemv", "cublasDgemm", "cublasZgemm", "cublasDtrsm",
		"cublasShutdown",
		"cufftPlan2d", "cufftExecZ2Z", "cufftDestroy",
	}
	for _, name := range want {
		if s, _ := entry(mon, name); s.Count == 0 {
			t.Errorf("wrapper %s recorded nothing", name)
		}
	}
	// Every monitored library call classifies into its library domain.
	for _, name := range want {
		var wantDom ipm.Domain
		switch {
		case name[:6] == "cublas":
			wantDom = ipm.DomainCUBLAS
		default:
			wantDom = ipm.DomainCUFFT
		}
		if got := ipm.Classify(name); got != wantDom {
			t.Errorf("Classify(%s) = %v", name, got)
		}
	}
}

// TestBLASWrapperErrorPassThrough checks error propagation and recording.
func TestBLASWrapperErrorPassThrough(t *testing.T) {
	mon := harness(t, func(b cublas.BLAS, f cufft.FFT, mon *ipm.Monitor) {
		if _, err := b.Alloc(-1, 8); err == nil {
			t.Error("negative alloc accepted through wrapper")
		}
		d, _ := b.Alloc(8, 8)
		if err := b.Dgemm('X', 'N', 1, 1, 1, 1, d, 1, d, 1, 0, d, 1); err == nil {
			t.Error("bad transpose accepted through wrapper")
		}
		if err := f.ExecZ2Z(cufft.Plan(99), cudart.DevPtr{}, cudart.DevPtr{}, cufft.Forward); err == nil {
			t.Error("bad plan accepted through wrapper")
		}
		if _, err := f.Plan1d(0, 0); err == nil {
			t.Error("bad plan1d accepted through wrapper")
		}
	})
	if s, _ := entry(mon, "cublasDgemm"); s.Count != 1 {
		t.Errorf("failed dgemm not recorded: %+v", s)
	}
	if s, _ := entry(mon, "cufftExecZ2Z"); s.Count != 1 {
		t.Errorf("failed exec not recorded: %+v", s)
	}
}
