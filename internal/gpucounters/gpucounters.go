// Package gpucounters implements the paper's first future-work item: GPU
// hardware performance counters exposed through a Component-PAPI-style
// interface, "to gain more insight into kernel behavior than is possible
// from timing information only".
//
// At publication time NVIDIA shipped no documented counter interface; the
// authors expected one to appear via PAPI's component mechanism (which
// IPM already supported). This package simulates that future: the device
// simulator derives per-kernel counter values from each kernel's cost
// model and launch geometry, and a PAPI-like EventSet API lets tools read
// them. internal/ipmcuda can attach a Component so counter totals land in
// the IPM profile next to the timings.
package gpucounters

import (
	"fmt"
	"math"
	"sort"

	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

// Counter identifies one GPU hardware counter, named after the CUPTI-era
// event names.
type Counter string

// The supported counter set.
const (
	InstExecuted  Counter = "inst_executed"      // executed instructions
	FlopCountDP   Counter = "flop_count_dp"      // double-precision flops
	FlopCountSP   Counter = "flop_count_sp"      // single-precision flops
	DramReadBytes Counter = "dram_read_bytes"    // device memory reads
	DramWriteB    Counter = "dram_write_bytes"   // device memory writes
	WarpsLaunched Counter = "warps_launched"     // warps over the grid
	ActiveCycles  Counter = "active_cycles"      // SM active cycles
	Occupancy     Counter = "achieved_occupancy" // percent x100, averaged
	KernelCount   Counter = "kernel_invocations" // bookkeeping counter
)

// AllCounters lists every supported counter in a stable order.
func AllCounters() []Counter {
	return []Counter{
		InstExecuted, FlopCountDP, FlopCountSP, DramReadBytes, DramWriteB,
		WarpsLaunched, ActiveCycles, Occupancy, KernelCount,
	}
}

// Sample is the counter vector of one kernel execution.
type Sample struct {
	Kernel string
	Stream int
	Values map[Counter]uint64
}

// derive computes the counter vector of one kernel record from its cost
// model — the simulated "hardware" truth.
func derive(spec perfmodel.GPUSpec, rec gpusim.KernelRecord, cost perfmodel.KernelCost) Sample {
	s := Sample{Kernel: rec.Name, Stream: rec.Stream, Values: make(map[Counter]uint64)}

	dur := rec.Duration().Seconds()
	flops := cost.FLOPs
	memBytes := cost.MemBytes
	if flops == 0 && memBytes == 0 {
		// Fixed-duration or unregistered kernels: attribute work at the
		// modelled efficiency so counters remain meaningful.
		eff := cost.Efficiency
		if eff <= 0 {
			eff = 0.5
		}
		flops = dur * spec.PeakDPGFlops * 1e9 * eff
		memBytes = dur * spec.MemBandwidthGBs * 1e9 * eff * 0.25
	}

	threads := rec.GridDim[0] * rec.GridDim[1] * rec.GridDim[2] *
		rec.BlockDim[0] * rec.BlockDim[1] * rec.BlockDim[2]
	if threads < 1 {
		threads = 1
	}
	warps := (threads + 31) / 32

	if cost.SP {
		s.Values[FlopCountSP] = uint64(flops)
	} else {
		s.Values[FlopCountDP] = uint64(flops)
	}
	// ~60% of the read+write traffic is reads for typical kernels.
	s.Values[DramReadBytes] = uint64(memBytes * 0.6)
	s.Values[DramWriteB] = uint64(memBytes * 0.4)
	// One FMA carries 2 flops; add a 30% integer/control overhead.
	s.Values[InstExecuted] = uint64(flops / 2 * 1.3)
	s.Values[WarpsLaunched] = uint64(warps)
	s.Values[ActiveCycles] = uint64(dur * spec.ClockGHz * 1e9)
	s.Values[KernelCount] = 1

	// Achieved occupancy: warps per SM against the Fermi limit of 48
	// resident warps, capped at 100%.
	occ := float64(warps) / float64(spec.MultiProcessors) / 48 * 100
	if occ > 100 {
		occ = 100
	}
	s.Values[Occupancy] = uint64(math.Round(occ * 100)) // percent x100
	return s
}

// Component is the PAPI-component-like access point: attach it to a
// device and read counters through EventSets.
type Component struct {
	spec    perfmodel.GPUSpec
	samples []Sample
	costs   map[string]perfmodel.KernelCost
}

// Attach registers the component on the device, chaining any existing
// completion callback. Counter values derive from each launch's cost
// model (carried in the kernel record); kernels with pure fixed-duration
// costs get duration-derived estimates. RegisterKernel can override the
// cost model per kernel name.
func Attach(dev *gpusim.Device) *Component {
	c := &Component{spec: dev.Spec(), costs: make(map[string]perfmodel.KernelCost)}
	prev := dev.OnKernelComplete
	dev.OnKernelComplete = func(rec gpusim.KernelRecord) {
		if prev != nil {
			prev(rec)
		}
		cost := rec.Cost
		if override, ok := c.costs[rec.Name]; ok {
			cost = override
		}
		c.samples = append(c.samples, derive(c.spec, rec, cost))
	}
	return c
}

// RegisterKernel overrides the cost model used to derive counters for a
// kernel name (e.g. to refine a fixed-duration kernel's arithmetic).
func (c *Component) RegisterKernel(name string, cost perfmodel.KernelCost) {
	c.costs[name] = cost
}

// Samples returns all per-kernel counter samples in completion order.
func (c *Component) Samples() []Sample { return c.samples }

// EventSet is a PAPI-style selection of counters read as a group.
type EventSet struct {
	comp     *Component
	counters []Counter
	start    int // sample index at Start
	running  bool
}

// NewEventSet creates an event set over the given counters.
func (c *Component) NewEventSet(counters ...Counter) (*EventSet, error) {
	if len(counters) == 0 {
		return nil, fmt.Errorf("gpucounters: empty event set")
	}
	valid := make(map[Counter]bool)
	for _, k := range AllCounters() {
		valid[k] = true
	}
	for _, k := range counters {
		if !valid[k] {
			return nil, fmt.Errorf("gpucounters: unknown counter %q", k)
		}
	}
	return &EventSet{comp: c, counters: counters}, nil
}

// Start begins counting (PAPI_start).
func (es *EventSet) Start() error {
	if es.running {
		return fmt.Errorf("gpucounters: event set already running")
	}
	es.start = len(es.comp.samples)
	es.running = true
	return nil
}

// Read returns the counter totals accumulated since Start (PAPI_read).
func (es *EventSet) Read() ([]uint64, error) {
	if !es.running {
		return nil, fmt.Errorf("gpucounters: event set not running")
	}
	out := make([]uint64, len(es.counters))
	n := 0
	var occSum uint64
	for _, s := range es.comp.samples[es.start:] {
		n++
		for i, k := range es.counters {
			if k == Occupancy {
				continue
			}
			out[i] += s.Values[k]
		}
		occSum += s.Values[Occupancy]
	}
	for i, k := range es.counters {
		if k == Occupancy && n > 0 {
			out[i] = occSum / uint64(n) // occupancy averages, not sums
		}
	}
	return out, nil
}

// Stop ends counting and returns the final totals (PAPI_stop).
func (es *EventSet) Stop() ([]uint64, error) {
	v, err := es.Read()
	if err != nil {
		return nil, err
	}
	es.running = false
	return v, nil
}

// KernelTotal is the aggregated counter vector of one kernel name.
type KernelTotal struct {
	Kernel      string
	Invocations int
	Values      map[Counter]uint64
}

// PerKernelTotals aggregates all samples by kernel name, sorted by name.
// Occupancy is averaged; everything else sums.
func (c *Component) PerKernelTotals() []KernelTotal {
	byName := make(map[string]*KernelTotal)
	for _, s := range c.samples {
		t, ok := byName[s.Kernel]
		if !ok {
			t = &KernelTotal{Kernel: s.Kernel, Values: make(map[Counter]uint64)}
			byName[s.Kernel] = t
		}
		t.Invocations++
		for k, v := range s.Values {
			t.Values[k] += v
		}
	}
	out := make([]KernelTotal, 0, len(byName))
	for _, t := range byName {
		if t.Invocations > 0 {
			t.Values[Occupancy] /= uint64(t.Invocations)
		}
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}
